(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5), then times the experiment drivers and the
   per-injection pipeline with Bechamel.

     dune exec bench/main.exe

   Absolute numbers differ from the paper's (the SUTs are in-process
   simulators, not daemons on a 2008 workstation); the tables' shapes are
   the reproduction target.  The paper reports 2.2 s per injection for
   MySQL, 6 s for Postgres and 1.1 s for Apache — dominated by process
   start-up; the "injection/..." rows below are the same pipeline without
   the process boundary. *)

open Bechamel
open Toolkit
module Json = Conferr_obsv.Json

let seed = 42

(* Every measured section writes its numbers machine-readable to a
   tracked BENCH_<section>.json next to the human-readable stdout table,
   so regressions show up in review as artifact diffs.  Sections a host
   cannot measure honestly record {"skipped": true} with the reason
   instead of omitting the file. *)
let write_artifact path obj =
  let oc = open_out path in
  output_string oc (Json.to_string obj);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n" path

let skipped_artifact path ~bench ~reason =
  write_artifact path
    (Json.Obj
       [
         ("bench", Json.Str bench);
         ("skipped", Json.Bool true);
         ("reason", Json.Str reason);
       ])

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate the evaluation                                    *)
(* ------------------------------------------------------------------ *)

let print_tables () =
  print_endline (Conferr.Paper.run_all ~seed ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Ablations for the design choices DESIGN.md calls out                 *)
(* ------------------------------------------------------------------ *)

let overall_rate (t : Conferr.Compare.t) =
  let detected, total =
    List.fold_left
      (fun (d, n) (r : Conferr.Compare.directive_result) ->
        (d + r.detected, n + r.experiments))
      (0, 0) t.Conferr.Compare.per_directive
  in
  if total = 0 then 0. else 100. *. float_of_int detected /. float_of_int total

let compare_with sampler sut config =
  match
    Conferr.Compare.run
      ~rng:(Conferr_util.Rng.create seed)
      ~experiments:10 ~sampler ~sut ~config ()
  with
  | Ok t -> t
  | Error msg -> failwith msg

let print_ablations () =
  print_endline "=== Ablation 1: typo sampling policy (value-typo detection rate) ===\n";
  (* variant-uniform weights substitution/insertion-heavy slips; the
     kind-first policy gives omissions and transpositions equal billing,
     which keeps more typos numerically valid *)
  let policies =
    [
      ("kind-first (paper §5.5 driver)", fun rng w -> Errgen.Typo.random_kind_first rng w);
      ("variant-uniform (Table 1 driver)", fun rng w -> Errgen.Typo.random_any rng w);
    ]
  in
  List.iter
    (fun (name, sampler) ->
      let pg =
        compare_with sampler Suts.Mini_pg.sut
          ("postgresql.conf", Suts.Mini_pg.full_config)
      in
      let mysql =
        compare_with sampler Suts.Mini_mysql.sut ("my.cnf", Suts.Mini_mysql.full_config)
      in
      Printf.printf "  %-34s postgres %5.1f%%   mysql %5.1f%%\n" name (overall_rate pg)
        (overall_rate mysql))
    policies;
  print_newline ();
  print_endline
    "=== Ablation 2: keyboard realism (substitution-only detection rate) ===\n";
  (* keyboard-adjacent substitutions frequently swap a digit for a
     neighbouring digit (accepted); a keyboard-oblivious fuzzer draws
     letters far more often and overestimates detection *)
  let subs_samplers =
    [
      ( "adjacent-key substitutions",
        fun rng w ->
          Conferr_util.Rng.pick_opt rng
            (Errgen.Typo.variants Errgen.Typo.Substitution w) );
      ( "uniform substitutions (no keyboard)",
        fun rng w -> Conferr_util.Rng.pick_opt rng (Errgen.Typo.uniform_substitutions w)
      );
    ]
  in
  List.iter
    (fun (name, sampler) ->
      let pg =
        compare_with sampler Suts.Mini_pg.sut
          ("postgresql.conf", Suts.Mini_pg.full_config)
      in
      let mysql =
        compare_with sampler Suts.Mini_mysql.sut ("my.cnf", Suts.Mini_mysql.full_config)
      in
      Printf.printf "  %-34s postgres %5.1f%%   mysql %5.1f%%\n" name (overall_rate pg)
        (overall_rate mysql))
    subs_samplers;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Executor scaling: sequential vs parallel campaign execution          *)
(* ------------------------------------------------------------------ *)

(* The §5.2 typo faultload against mini-postgres, scaled up so each
   measurement runs long enough to amortize domain spawn-up (~100 us per
   domain).  Times the same scenario list through the executor at 1, 2
   and 4 domains and reports the measured speedup — the paper's
   campaigns are embarrassingly parallel (injections are pure and
   independent), so on an N-core machine this approaches min(jobs, N).
   On a single-core host the same measurement documents the cost of
   oversubscription instead: every OCaml 5 minor collection synchronizes
   all domains, so extra domains without extra cores slow a campaign
   down — which is why 1 stays the default for --jobs. *)
let print_executor_scaling () =
  print_endline "=== Executor scaling (typo faultload of section 5.2) ===\n";
  if Conferr_pool.recommended_jobs () = 1 then begin
    (* every OCaml 5 minor collection synchronizes all domains, so extra
       domains without extra cores measure GC lockstep, not scaling — a
       recorded "slowdown" here would be an artifact of the host, not of
       the executor *)
    print_endline
      "  skipped: single-core host (recommended_jobs = 1) — oversubscribed";
    print_endline
      "  domains only measure GC synchronization overhead, not scaling.";
    print_endline "  Re-run on a multi-core machine for speedup numbers.";
    skipped_artifact "BENCH_executor.json" ~bench:"executor-scaling"
      ~reason:
        "single-core host (recommended_jobs = 1): extra domains measure GC \
         synchronization, not scaling";
    print_newline ()
  end
  else begin
  let sut = Suts.Mini_pg.sut in
  let base =
    match Conferr.Engine.parse_default_config sut with
    | Ok base -> base
    | Error msg -> failwith msg
  in
  let scenarios =
    let rng = Conferr_util.Rng.create seed in
    let faultload =
      { Conferr.Campaign.paper_faultload with typos_per_directive = 40 }
    in
    Conferr.Campaign.typo_scenarios ~rng ~faultload sut base
  in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "  scenarios: %d, cores available: %d\n%!"
    (List.length scenarios) cores;
  let time_run jobs =
    let settings = { Conferr_exec.Executor.default_settings with jobs } in
    let silent _ = () in
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      ignore
        (Conferr_exec.Executor.run_from ~settings ~on_event:silent ~sut ~base
           ~scenarios ());
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  (* warm up (page in the SUT code paths) before timing *)
  ignore (time_run 1);
  let sequential = time_run 1 in
  Printf.printf "  %d domain(s): %8.2f ms   (baseline)\n%!" 1 (sequential *. 1e3);
  let runs =
    (1, sequential)
    :: List.map
         (fun jobs ->
           let t = time_run jobs in
           Printf.printf "  %d domain(s): %8.2f ms   speedup %.2fx\n%!" jobs
             (t *. 1e3) (sequential /. t);
           (jobs, t))
         [ 2; 4 ]
  in
  write_artifact "BENCH_executor.json"
    (Json.Obj
       [
         ("bench", Json.Str "executor-scaling");
         ("sut", Json.Str "postgres");
         ("seed", Json.Num (float_of_int seed));
         ("scenarios", Json.Num (float_of_int (List.length scenarios)));
         ("cores", Json.Num (float_of_int cores));
         ( "runs",
           Json.Arr
             (List.map
                (fun (jobs, t) ->
                  Json.Obj
                    [
                      ("jobs", Json.Num (float_of_int jobs));
                      ("wall_s", Json.Num t);
                      ("speedup", Json.Num (sequential /. t));
                    ])
                runs) );
       ]);
  print_newline ()
  end

(* ------------------------------------------------------------------ *)
(* Sandbox overhead: Engine.run_scenario vs Sandbox.run_scenario        *)
(* ------------------------------------------------------------------ *)

(* Since the hardening pass every executor scenario runs inside
   Conferr_harden.Sandbox (exception containment, crash taxonomy,
   optional fuel accounting).  On a clean faultload — where the sandbox
   catches nothing — the wrap must be close to free; this section times
   both classifiers over the §5.2 mini-postgres faultload (best of 3)
   and reports the relative cost.  doc/harden.md quotes the <5% budget
   this measures. *)
let print_sandbox_overhead () =
  print_endline "=== Sandbox overhead (clean mini-postgres faultload) ===\n";
  let sut = Suts.Mini_pg.sut in
  let base =
    match Conferr.Engine.parse_default_config sut with
    | Ok base -> base
    | Error msg -> failwith msg
  in
  let scenarios =
    Conferr.Campaign.typo_scenarios
      ~rng:(Conferr_util.Rng.create seed)
      ~faultload:Conferr.Campaign.paper_faultload sut base
  in
  let time_loop run_scenario =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      List.iter (fun s -> ignore (run_scenario ~sut ~base s)) scenarios;
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  (* warm up both paths before timing *)
  ignore (time_loop Conferr.Engine.run_scenario);
  ignore (time_loop (fun ~sut ~base s -> Conferr_harden.Sandbox.run_scenario ~sut ~base s));
  let plain = time_loop Conferr.Engine.run_scenario in
  let sandboxed =
    time_loop (fun ~sut ~base s -> Conferr_harden.Sandbox.run_scenario ~sut ~base s)
  in
  let overhead = 100. *. ((sandboxed /. plain) -. 1.) in
  Printf.printf "  scenarios: %d (best of 3 loops)\n" (List.length scenarios);
  Printf.printf "  engine  : %8.2f ms\n" (plain *. 1e3);
  Printf.printf "  sandbox : %8.2f ms   overhead %+.1f%%  (budget <5%%)\n"
    (sandboxed *. 1e3) overhead;
  write_artifact "BENCH_sandbox.json"
    (Json.Obj
       [
         ("bench", Json.Str "sandbox-overhead");
         ("sut", Json.Str "postgres");
         ("seed", Json.Num (float_of_int seed));
         ("scenarios", Json.Num (float_of_int (List.length scenarios)));
         ("engine_s", Json.Num plain);
         ("sandbox_s", Json.Num sandboxed);
         ("overhead_pct", Json.Num overhead);
         ("budget_pct", Json.Num 5.);
       ]);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Tracer overhead: executor with observability off vs on              *)
(* ------------------------------------------------------------------ *)

(* Observability is opt-in, so its cost only matters when asked for:
   with --trace/--metrics every scenario adds a span clock (two
   gettimeofday calls per phase), one ring-buffer append, and a few
   mutex-protected registry updates — a fixed cost of a few
   microseconds per scenario, independent of what the scenario does.
   The in-process stub boots in ~5 us, where the paper's daemons take
   1.1-6 s per injection (process start-up dominates, §5.6); dividing
   a fixed microsecond cost by a stub that exists to *elide* the real
   work would measure the stub, not the tracer.  So the SUT under test
   here is mini-postgres with a restart-weighted boot: each boot
   re-parses the rendered config through the real pgconf parser enough
   times to cost a fraction of a millisecond — still three orders of
   magnitude cheaper than the restart it stands in for, which makes
   the measured ratio a conservative upper bound.  Two full executor
   campaigns (best of 3, jobs=1); doc/obsv.md quotes the <5% budget
   this measures. *)
let print_tracer_overhead () =
  print_endline
    "=== Tracer overhead (executor, restart-weighted postgres faultload) ===\n";
  let inner = Suts.Mini_pg.sut in
  let fmt = List.assoc "postgresql.conf" inner.Suts.Sut.config_files in
  let sut =
    {
      inner with
      Suts.Sut.boot =
        (fun files ->
          (match List.assoc_opt "postgresql.conf" files with
          | Some text ->
            for _ = 1 to 200 do
              ignore (fmt.Formats.Registry.parse text)
            done
          | None -> ());
          inner.Suts.Sut.boot files);
    }
  in
  let base =
    match Conferr.Engine.parse_default_config sut with
    | Ok base -> base
    | Error msg -> failwith msg
  in
  let scenarios =
    Conferr.Campaign.typo_scenarios
      ~rng:(Conferr_util.Rng.create seed)
      ~faultload:Conferr.Campaign.paper_faultload sut base
  in
  let campaign settings =
    ignore
      (Conferr_exec.Executor.run_from ~settings
         ~on_event:(fun _ -> ())
         ~sut ~base ~scenarios ())
  in
  let time_loop mk_settings =
    let best = ref infinity in
    for _ = 1 to 3 do
      let settings = mk_settings () in
      let t0 = Unix.gettimeofday () in
      campaign settings;
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let plain_settings () = Conferr_exec.Executor.default_settings in
  let observed_settings () =
    {
      Conferr_exec.Executor.default_settings with
      trace = Some (Conferr_obsv.Trace.create ());
      metrics = Some (Conferr_obsv.Metrics.create ());
    }
  in
  (* warm up both paths before timing *)
  ignore (time_loop plain_settings);
  ignore (time_loop observed_settings);
  let plain = time_loop plain_settings in
  let instrumented = time_loop observed_settings in
  let overhead = 100. *. ((instrumented /. plain) -. 1.) in
  Printf.printf "  scenarios     : %d (best of 3 campaigns, jobs=1)\n"
    (List.length scenarios);
  Printf.printf "  obsv off      : %8.2f ms\n" (plain *. 1e3);
  Printf.printf "  trace+metrics : %8.2f ms   overhead %+.1f%%  (budget <5%%)\n"
    (instrumented *. 1e3) overhead;
  write_artifact "BENCH_tracer.json"
    (Json.Obj
       [
         ("bench", Json.Str "tracer-overhead");
         ("sut", Json.Str "postgres");
         ("seed", Json.Num (float_of_int seed));
         ("scenarios", Json.Num (float_of_int (List.length scenarios)));
         ("plain_s", Json.Num plain);
         ("instrumented_s", Json.Num instrumented);
         ("overhead_pct", Json.Num overhead);
         ("budget_pct", Json.Num 5.);
       ]);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Adaptive vs exhaustive signature discovery (lib/adapt)               *)
(* ------------------------------------------------------------------ *)

(* How many SUT runs does each strategy spend to find the distinct
   failure signatures of the paper's typo faultload?  The exhaustive
   campaign executes every scenario; the adaptive loop skips
   byte-identical mutants and stops when discovery plateaus (see
   doc/adapt.md).  Counts, not wall-clock, so the section is meaningful
   on any host. *)
let print_adaptive_discovery () =
  print_endline "=== Adaptive vs exhaustive signature discovery ===\n";
  let rows = ref [] in
  List.iter
    (fun (name, sut) ->
      let base =
        match Conferr.Engine.parse_default_config sut with
        | Ok base -> base
        | Error msg -> failwith msg
      in
      let scenarios =
        Conferr.Campaign.typo_scenarios
          ~rng:(Conferr_util.Rng.create seed)
          ~faultload:Conferr.Campaign.paper_faultload sut base
      in
      let profile = Conferr.Engine.run_from ~sut ~base ~scenarios () in
      let exhaustive_sigs =
        List.length
          (Conferr_exec.Signature.clusters profile.Conferr.Profile.entries)
      in
      let stream =
        Errgen.Gen.of_generator ~rounds:1 ~prefix:"typo" ~seed
          (fun ~rng set ->
            Conferr.Campaign.typo_scenarios ~rng
              ~faultload:Conferr.Campaign.paper_faultload sut set)
          base
      in
      let settings =
        {
          Conferr_adapt.Explore.default_settings with
          batch = 16;
          campaign_seed = seed;
        }
      in
      let r =
        Conferr_adapt.Explore.run_from ~settings ~on_event:(fun _ -> ()) ~sut
          ~base ~stream ()
      in
      Printf.printf
        "  %-10s exhaustive: %3d runs -> %2d signatures | adaptive: %3d runs \
         (%d dup-skipped, %d n/a) -> %2d signatures in %d batches\n"
        name (List.length scenarios) exhaustive_sigs
        r.Conferr_adapt.Explore.executed r.Conferr_adapt.Explore.duplicates
        r.Conferr_adapt.Explore.not_applicable
        (List.length r.Conferr_adapt.Explore.frontier)
        r.Conferr_adapt.Explore.batches;
      rows :=
        Json.Obj
          [
            ("sut", Json.Str name);
            ("exhaustive_runs", Json.Num (float_of_int (List.length scenarios)));
            ("exhaustive_signatures", Json.Num (float_of_int exhaustive_sigs));
            ( "adaptive_runs",
              Json.Num (float_of_int r.Conferr_adapt.Explore.executed) );
            ( "duplicates_skipped",
              Json.Num (float_of_int r.Conferr_adapt.Explore.duplicates) );
            ( "not_applicable",
              Json.Num (float_of_int r.Conferr_adapt.Explore.not_applicable) );
            ( "adaptive_signatures",
              Json.Num
                (float_of_int (List.length r.Conferr_adapt.Explore.frontier)) );
            ("batches", Json.Num (float_of_int r.Conferr_adapt.Explore.batches));
          ]
        :: !rows)
    [ ("postgres", Suts.Mini_pg.sut); ("bind", Suts.Mini_bind.sut) ];
  write_artifact "BENCH_adaptive.json"
    (Json.Obj
       [
         ("bench", Json.Str "adaptive-vs-exhaustive");
         ("seed", Json.Num (float_of_int seed));
         ("suts", Json.Arr (List.rev !rows));
       ]);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Lint throughput: Checker.run over each SUT's stock configuration    *)
(* ------------------------------------------------------------------ *)

(* The gap scan (conferr gaps) lints every mutant of a campaign, so the
   static checker sits on an O(scenarios) path; this section times
   Checker.run over each SUT's parsed stock configuration set (best of
   3 loops of 100 runs) so rule-set growth shows up as a measured
   regression.  doc/lint.md points here. *)
let print_lint_throughput () =
  print_endline "=== Lint throughput (stock configuration sets) ===\n";
  let rows = ref [] in
  List.iter
    (fun (name, sut) ->
      let base =
        match Conferr.Engine.parse_default_config sut with
        | Ok base -> base
        | Error msg -> failwith msg
      in
      let rules =
        match Suts.Lint_rules.for_sut name with
        | Some rules -> rules
        | None -> failwith ("no rule set for " ^ name)
      in
      let nearest = Conferr.Suggest.nearest in
      let runs = 100 in
      let loop () =
        let t0 = Unix.gettimeofday () in
        for _ = 1 to runs do
          ignore (Conferr_lint.Checker.run ~nearest ~rules base)
        done;
        Unix.gettimeofday () -. t0
      in
      ignore (loop ());
      let best = ref infinity in
      for _ = 1 to 3 do
        best := Float.min !best (loop ())
      done;
      let per_run_us = !best /. float_of_int runs *. 1e6 in
      Printf.printf "  %-10s %2d rules  %8.1f us / check  %8.0f checks/s\n"
        name (List.length rules) per_run_us (1e6 /. per_run_us);
      rows :=
        Json.Obj
          [
            ("sut", Json.Str name);
            ("rules", Json.Num (float_of_int (List.length rules)));
            ("us_per_check", Json.Num per_run_us);
            ("checks_per_sec", Json.Num (1e6 /. per_run_us));
          ]
        :: !rows)
    [
      ("postgres", Suts.Mini_pg.sut);
      ("mysql", Suts.Mini_mysql.sut);
      ("apache", Suts.Mini_apache.sut);
      ("bind", Suts.Mini_bind.sut);
      ("djbdns", Suts.Mini_djbdns.sut);
      ("appserver", Suts.Mini_appserver.sut);
    ];
  write_artifact "BENCH_lint.json"
    (Json.Obj
       [
         ("bench", Json.Str "lint-throughput");
         ("suts", Json.Arr (List.rev !rows));
       ]);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Dataflow throughput: the deepened (corpus-level) rule set            *)
(* ------------------------------------------------------------------ *)

(* conferr analyze and the --deep variants of lint/gaps run the
   deepened rule set — relation checks, reference graph, taint — over
   whole configuration sets; gaps --deep puts it on the O(scenarios)
   replay path.  Same protocol as the lint section (best of 3 loops of
   100 runs) so the marginal cost of the deep rules is a measured
   number, not a guess.  doc/lint.md points here. *)
let print_dataflow_throughput () =
  print_endline "=== Dataflow throughput (deepened rule sets) ===\n";
  let rows = ref [] in
  List.iter
    (fun (name, sut) ->
      let base =
        match Conferr.Engine.parse_default_config sut with
        | Ok base -> base
        | Error msg -> failwith msg
      in
      let rules =
        match Suts.Lint_rules.for_sut name with
        | Some rules -> rules
        | None -> failwith ("no rule set for " ^ name)
      in
      let deep = Suts.Dataflow_rules.deepen name rules in
      let nearest = Conferr.Suggest.nearest in
      let runs = 100 in
      let loop () =
        let t0 = Unix.gettimeofday () in
        for _ = 1 to runs do
          ignore (Conferr_lint.Checker.run ~nearest ~rules:deep base);
          ignore
            (Conferr_lint.Dataflow.env_of_set
               ~specs:(Suts.Dataflow_rules.specs name)
               ~canon:(Suts.Dataflow_rules.canon name)
               base)
        done;
        Unix.gettimeofday () -. t0
      in
      ignore (loop ());
      let best = ref infinity in
      for _ = 1 to 3 do
        best := Float.min !best (loop ())
      done;
      let per_run_us = !best /. float_of_int runs *. 1e6 in
      Printf.printf
        "  %-10s %2d rules (%d deep)  %8.1f us / analyze  %8.0f analyses/s\n"
        name (List.length deep)
        (List.length (Suts.Dataflow_rules.deep_rules name))
        per_run_us (1e6 /. per_run_us);
      rows :=
        Json.Obj
          [
            ("sut", Json.Str name);
            ("rules", Json.Num (float_of_int (List.length deep)));
            ( "deep_rules",
              Json.Num
                (float_of_int (List.length (Suts.Dataflow_rules.deep_rules name)))
            );
            ("us_per_analyze", Json.Num per_run_us);
            ("analyses_per_sec", Json.Num (1e6 /. per_run_us));
          ]
        :: !rows)
    [
      ("postgres", Suts.Mini_pg.sut);
      ("mysql", Suts.Mini_mysql.sut);
      ("apache", Suts.Mini_apache.sut);
      ("bind", Suts.Mini_bind.sut);
      ("djbdns", Suts.Mini_djbdns.sut);
      ("appserver", Suts.Mini_appserver.sut);
    ];
  write_artifact "BENCH_dataflow.json"
    (Json.Obj
       [
         ("bench", Json.Str "dataflow-throughput");
         ("suts", Json.Arr (List.rev !rows));
       ]);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel timings                                             *)
(* ------------------------------------------------------------------ *)

let single_scenario_test name (sut : Suts.Sut.t) =
  let base =
    match Conferr.Engine.parse_default_config sut with
    | Ok base -> base
    | Error msg -> failwith msg
  in
  let scenario =
    (* delete the first directive (or record, for zone-style files): a
       representative whole-pipeline run (mutate, serialize, boot,
       functional tests) *)
    let file = fst (List.hd sut.config_files) in
    match
      Errgen.Structural.omit_directives ~file base
      @ Errgen.Structural.omit_directives ~query:"//*[kind()='record']" ~file base
      @ Errgen.Structural.omit_directives ~query:"//*[kind()='element']" ~file base
    with
    | s :: _ -> s
    | [] -> failwith "no scenarios"
  in
  Test.make ~name:(Printf.sprintf "injection/%s" name)
    (Staged.stage (fun () ->
         ignore (Conferr.Engine.run_scenario ~sut ~base scenario)))

let table_tests =
  [
    Test.make ~name:"table1/mysql"
      (Staged.stage (fun () ->
           let rng = Conferr_util.Rng.create seed in
           let sut = Suts.Mini_mysql.sut in
           match Conferr.Engine.parse_default_config sut with
           | Error msg -> failwith msg
           | Ok base ->
             let scenarios =
               Conferr.Campaign.typo_scenarios ~rng
                 ~faultload:Conferr.Campaign.paper_faultload sut base
             in
             ignore (Conferr.Engine.run_from ~sut ~base ~scenarios ())));
    Test.make ~name:"table1/postgres"
      (Staged.stage (fun () ->
           let rng = Conferr_util.Rng.create seed in
           let sut = Suts.Mini_pg.sut in
           match Conferr.Engine.parse_default_config sut with
           | Error msg -> failwith msg
           | Ok base ->
             let scenarios =
               Conferr.Campaign.typo_scenarios ~rng
                 ~faultload:Conferr.Campaign.paper_faultload sut base
             in
             ignore (Conferr.Engine.run_from ~sut ~base ~scenarios ())));
    Test.make ~name:"table1/apache"
      (Staged.stage (fun () ->
           let rng = Conferr_util.Rng.create seed in
           let sut = Suts.Mini_apache.sut in
           let faultload =
             { Conferr.Campaign.paper_faultload with typos_per_directive = 1 }
           in
           match Conferr.Engine.parse_default_config sut with
           | Error msg -> failwith msg
           | Ok base ->
             let scenarios =
               Conferr.Campaign.typo_scenarios ~rng ~faultload sut base
             in
             ignore (Conferr.Engine.run_from ~sut ~base ~scenarios ())));
    Test.make ~name:"table2/structural-variations"
      (Staged.stage (fun () -> ignore (Conferr.Paper.table2 ~seed ())));
    Test.make ~name:"table3/semantic-dns"
      (Staged.stage (fun () -> ignore (Conferr.Paper.table3 ())));
    Test.make ~name:"figure3/db-comparison"
      (Staged.stage (fun () -> ignore (Conferr.Paper.figure3 ~seed ~experiments:3 ())));
    Test.make ~name:"benchmark/process"
      (Staged.stage (fun () ->
           ignore (Conferr.Paper.process_benchmark ~seed ~experiments:3 ())));
    Test.make ~name:"suggest/mysql-recoverability"
      (Staged.stage (fun () ->
           let rng = Conferr_util.Rng.create seed in
           ignore
             (Conferr.Suggest.recoverability ~vocabulary:Suts.Vocabulary.mysql ~rng
                ~samples:3 ())));
  ]

let injection_tests =
  [
    single_scenario_test "mysql" Suts.Mini_mysql.sut;
    single_scenario_test "postgres" Suts.Mini_pg.sut;
    single_scenario_test "apache" Suts.Mini_apache.sut;
    single_scenario_test "bind" Suts.Mini_bind.sut;
    single_scenario_test "djbdns" Suts.Mini_djbdns.sut;
    single_scenario_test "appserver" Suts.Mini_appserver.sut;
  ]

let micro_tests =
  let apache_text = List.assoc "httpd.conf" Suts.Mini_apache.sut.default_config in
  let apache_tree =
    match Formats.Apacheconf.parse apache_text with
    | Ok t -> t
    | Error _ -> failwith "apache config must parse"
  in
  let query = Confpath.compile_exn "//*[kind()='directive']" in
  let rng = Conferr_util.Rng.create 99 in
  [
    Test.make ~name:"micro/parse-httpd.conf"
      (Staged.stage (fun () -> ignore (Formats.Apacheconf.parse apache_text)));
    Test.make ~name:"micro/confpath-select"
      (Staged.stage (fun () -> ignore (Confpath.select query apache_tree)));
    Test.make ~name:"micro/typo-variants"
      (Staged.stage (fun () ->
           ignore (Errgen.Typo.variants Errgen.Typo.Substitution "max_connections")));
    Test.make ~name:"micro/random-typo"
      (Staged.stage (fun () -> ignore (Errgen.Typo.random_any rng "shared_buffers")));
  ]

let benchmark tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let raw_results =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"conferr" ~fmt:"%s %s" tests)
  in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  Analyze.merge ols instances results

let pretty_duration ns =
  if ns < 1e3 then Printf.sprintf "%8.1f ns" ns
  else if ns < 1e6 then Printf.sprintf "%8.2f us" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
  else Printf.sprintf "%8.2f s " (ns /. 1e9)

let print_benchmarks () =
  print_endline "=== Timings (Bechamel, monotonic clock) ===\n";
  let results = benchmark (table_tests @ injection_tests @ micro_tests) in
  let clock = Measure.label Instance.monotonic_clock in
  match Hashtbl.find_opt results clock with
  | None -> print_endline "no results"
  | Some per_test ->
    let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) per_test [] in
    rows
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.iter (fun (name, ols) ->
           match Analyze.OLS.estimates ols with
           | Some [ ns ] -> Printf.printf "%-40s %s / run\n" name (pretty_duration ns)
           | Some _ | None -> Printf.printf "%-40s (no estimate)\n" name)

(* ------------------------------------------------------------------ *)
(* Serve throughput: the daemon's campaign service (doc/serve.md)       *)
(* ------------------------------------------------------------------ *)

(* An in-process daemon (Daemon.handle, no sockets — this measures the
   service, not the loopback stack): submission latency, then aggregate
   scenario throughput for one campaign vs two concurrent campaigns
   multiplexed over the same single-domain scheduler pool.  On one
   worker the concurrent number documents the multiplexing overhead of
   round-robin tenancy (it should stay close to 1.0x); on a multi-core
   host it shows two tenants sharing the pool fairly.  Results are also
   written machine-readable to BENCH_serve.json, which is tracked
   in-repo — regenerate it with `dune exec bench/main.exe serve`. *)
let print_serve_throughput () =
  print_endline "=== Serve throughput (in-process daemon, doc/serve.md) ===\n";
  let module Daemon = Conferr_serve.Daemon in
  let state_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "conferr-bench-serve.%d" (Unix.getpid ()))
  in
  let submission =
    Json.Obj [ ("sut", Json.Str "mini_pg"); ("seed", Json.Num (float_of_int seed)) ]
  in
  let submit daemon =
    match Daemon.submit daemon submission with
    | Ok c -> c
    | Error _ -> failwith "bench submission rejected"
  in
  let total_of c =
    match Json.member "total" (Daemon.summary_json c) with
    | Some (Json.Num n) -> int_of_float n
    | _ -> 0
  in
  (* n concurrent campaigns over one pool: submission wall time, then
     end-to-end wall time until every journal is checkpointed *)
  let run_campaigns n =
    let daemon =
      Daemon.create ~jobs:1 ~max_campaigns:(max 4 n) ~state_dir ()
    in
    let t0 = Unix.gettimeofday () in
    let cs = List.init n (fun _ -> submit daemon) in
    let submit_s = Unix.gettimeofday () -. t0 in
    List.iter (fun c -> Daemon.wait daemon c) cs;
    let total_s = Unix.gettimeofday () -. t0 in
    let scenarios = List.fold_left (fun acc c -> acc + total_of c) 0 cs in
    Daemon.drain daemon;
    (submit_s, total_s, scenarios)
  in
  ignore (run_campaigns 1) (* warm up: page in the SUT code paths *);
  let sub1, wall1, scen1 = run_campaigns 1 in
  let sub2, wall2, scen2 = run_campaigns 2 in
  let rate1 = float_of_int scen1 /. wall1 in
  let rate2 = float_of_int scen2 /. wall2 in
  let submissions_per_sec = 2.0 /. sub2 in
  Printf.printf "  1 campaign : %4d scenarios in %7.2f ms  (%8.0f scenarios/s)\n"
    scen1 (wall1 *. 1e3) rate1;
  Printf.printf "  2 campaigns: %4d scenarios in %7.2f ms  (%8.0f scenarios/s, %.2fx)\n"
    scen2 (wall2 *. 1e3) rate2 (rate2 /. rate1);
  Printf.printf "  submissions: %.0f accepted/s (scenario generation included)\n"
    submissions_per_sec;
  let obj =
    Json.Obj
      [
        ("bench", Json.Str "serve-throughput");
        ("sut", Json.Str "postgres");
        ("seed", Json.Num (float_of_int seed));
        ("pool_jobs", Json.Num 1.);
        ("submissions_per_sec", Json.Num submissions_per_sec);
        ( "single_campaign",
          Json.Obj
            [
              ("scenarios", Json.Num (float_of_int scen1));
              ("wall_s", Json.Num wall1);
              ("scenarios_per_sec", Json.Num rate1);
              ("submit_s", Json.Num sub1);
            ] );
        ( "concurrent_2",
          Json.Obj
            [
              ("scenarios", Json.Num (float_of_int scen2));
              ("wall_s", Json.Num wall2);
              ("scenarios_per_sec", Json.Num rate2);
              ("submit_s", Json.Num sub2);
              ("vs_single", Json.Num (rate2 /. rate1));
            ] );
      ]
  in
  write_artifact "BENCH_serve.json" obj;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Infer throughput: journal mining (lib/infer, doc/infer.md)           *)
(* ------------------------------------------------------------------ *)

(* `conferr infer` replays a whole campaign journal through the evidence
   extractor, the candidate induction and the rule differ, so mining
   sits on an O(journal lines) path like the gap scan; this section runs
   the paper typo faultload once to record a journal, then times the
   full pipeline over it (best of 3) and reports journal lines mined per
   second. *)
let print_infer_throughput () =
  print_endline "=== Infer throughput (mini-postgres campaign journal) ===\n";
  let sut = Suts.Mini_pg.sut in
  let base =
    match Conferr.Engine.parse_default_config sut with
    | Ok base -> base
    | Error msg -> failwith msg
  in
  let scenarios =
    Conferr.Campaign.typo_scenarios
      ~rng:(Conferr_util.Rng.create seed)
      ~faultload:Conferr.Campaign.paper_faultload sut base
  in
  let rules =
    match Suts.Lint_rules.for_sut sut.Suts.Sut.sut_name with
    | Some rules -> rules
    | None -> failwith "no rule set for postgres"
  in
  let path = Filename.temp_file "conferr_bench_infer" ".jsonl" in
  let entries =
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        let settings =
          {
            Conferr_exec.Executor.default_settings with
            journal_path = Some path;
          }
        in
        ignore
          (Conferr_exec.Executor.run_from ~settings
             ~on_event:(fun _ -> ())
             ~sut ~base ~scenarios ());
        Conferr_exec.Journal.load path)
  in
  let run () =
    Conferr_infer.Pipeline.run ~nearest:Conferr.Suggest.nearest ~sut ~rules
      ~scenarios ~entries ~base ~thresholds:Conferr_infer.Confidence.default ()
  in
  ignore (run ()) (* warm up *);
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    ignore (run ());
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  let result = run () in
  let lines = List.length entries in
  let lines_per_sec = float_of_int lines /. !best in
  let recovered, total = Conferr_infer.Infer_report.recovery result in
  Printf.printf "  journal lines : %d (best of 3 pipeline runs)\n" lines;
  Printf.printf "  pipeline      : %8.2f ms   %8.0f lines/s\n" (!best *. 1e3)
    lines_per_sec;
  Printf.printf "  candidates    : %d kept; recovery %d/%d rule ids\n"
    (List.length result.Conferr_infer.Pipeline.candidates)
    recovered total;
  write_artifact "BENCH_infer.json"
    (Json.Obj
       [
         ("bench", Json.Str "infer-throughput");
         ("sut", Json.Str "postgres");
         ("seed", Json.Num (float_of_int seed));
         ("journal_lines", Json.Num (float_of_int lines));
         ("pipeline_s", Json.Num !best);
         ("lines_per_sec", Json.Num lines_per_sec);
         ( "candidates",
           Json.Num
             (float_of_int (List.length result.Conferr_infer.Pipeline.candidates))
         );
         ("recovered", Json.Num (float_of_int recovered));
         ("rule_ids", Json.Num (float_of_int total));
       ]);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Repair throughput: candidate validation (lib/repair, doc/repair.md) *)
(* ------------------------------------------------------------------ *)

(* `conferr repair` spends its time validating candidates: every
   generated edit sequence is applied, re-serialized, re-linted and
   booted through the sandbox.  This section breaks the stock postgres
   configuration with the first scenarios of the paper faultload, runs
   the full pipeline over them (best of 3) and reports candidate
   validations per second — the figure that bounds how many targets a
   journal-mode repair can chew through. *)
let print_repair_throughput () =
  print_endline "=== Repair throughput (mini-postgres faultload targets) ===\n";
  let sut = Suts.Mini_pg.sut in
  let stock =
    match Conferr.Engine.parse_default_config sut with
    | Ok base -> base
    | Error msg -> failwith msg
  in
  let rules =
    match Suts.Lint_rules.for_sut sut.Suts.Sut.sut_name with
    | Some rules -> rules
    | None -> failwith "no rule set for postgres"
  in
  let scenarios =
    Conferr.Faultload.journal_scenarios ~seed sut stock
    |> List.filteri (fun i _ -> i < 40)
  in
  let targets =
    List.filter_map
      (fun (s : Errgen.Scenario.t) ->
        match s.apply stock with
        | Ok broken ->
          Some (Conferr_repair.Pipeline.file_target ~id:s.id broken)
        | Error _ -> None)
      scenarios
  in
  let run () =
    Conferr_repair.Pipeline.run ~nearest:Conferr.Suggest.nearest ~sut ~rules
      ~stock targets
  in
  ignore (run ()) (* warm up *);
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    ignore (run ());
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  let result = run () in
  let repaired, clean, unrepaired, _ = Conferr_repair.Pipeline.counts result in
  let validated = result.Conferr_repair.Pipeline.validated in
  let validations_per_sec = float_of_int validated /. !best in
  Printf.printf "  targets       : %d (best of 3 pipeline runs)\n"
    (List.length targets);
  Printf.printf "  pipeline      : %8.2f ms   %8.0f validations/s\n"
    (!best *. 1e3) validations_per_sec;
  Printf.printf "  verdicts      : %d repaired, %d already clean, %d unrepairable\n"
    repaired clean unrepaired;
  write_artifact "BENCH_repair.json"
    (Json.Obj
       [
         ("bench", Json.Str "repair-throughput");
         ("sut", Json.Str "postgres");
         ("seed", Json.Num (float_of_int seed));
         ("targets", Json.Num (float_of_int (List.length targets)));
         ("pipeline_s", Json.Num !best);
         ("validations", Json.Num (float_of_int validated));
         ("validations_per_sec", Json.Num validations_per_sec);
         ("repaired", Json.Num (float_of_int repaired));
         ("already_clean", Json.Num (float_of_int clean));
         ("unrepairable", Json.Num (float_of_int unrepaired));
       ]);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Journal throughput: single-file v2 vs segmented v3 store            *)
(* ------------------------------------------------------------------ *)

(* The v3 layout exists to take the global append lock off the journal
   hot path: every worker domain writes its own segment.  This section
   measures raw appends/sec for both layouts sequentially (the layouts
   should be within noise of each other — same bytes, same flush per
   line) and, on multi-core hosts, with 4 domains appending through one
   writer, where v2 serializes on the mutex and v3 does not. *)
let print_journal_throughput () =
  print_endline "=== Journal throughput (v2 single file vs v3 segmented store) ===\n";
  let module Journal = Conferr_exec.Journal in
  let n = 20_000 in
  let entry i =
    {
      Journal.scenario_id = Printf.sprintf "bench-%06d" i;
      class_name = "typo/name";
      description = "journal throughput bench";
      seed = Int64.of_int i;
      outcome = Conferr.Outcome.Passed;
      elapsed_ms = 0.1;
      attempts = 1;
      votes = [];
      phase_ms = [];
    }
  in
  let entries = Array.init n entry in
  let temp_path () =
    let p = Filename.temp_file "conferr_bench_journal" "" in
    Sys.remove p;
    p
  in
  let rec rm_rf p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun x -> rm_rf (Filename.concat p x)) (Sys.readdir p);
        Sys.rmdir p
      end
      else Sys.remove p
  in
  let best f =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      f ();
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let seq ?segment_bytes () =
    let path = temp_path () in
    let t =
      best (fun () ->
          let w = Journal.open_append ~fresh:true ?segment_bytes path in
          Array.iter (Journal.append w) entries;
          Journal.close w)
    in
    rm_rf path;
    t
  in
  let par ?segment_bytes jobs =
    let path = temp_path () in
    let per = n / jobs in
    let t =
      best (fun () ->
          let w = Journal.open_append ~fresh:true ?segment_bytes path in
          let workers =
            List.init jobs (fun d ->
                Domain.spawn (fun () ->
                    for i = d * per to (d * per) + per - 1 do
                      Journal.append w entries.(i)
                    done))
          in
          List.iter Domain.join workers;
          Journal.close w)
    in
    rm_rf path;
    t
  in
  let rate t = float_of_int n /. t in
  let v2 = seq () in
  let v3 = seq ~segment_bytes:(1 lsl 20) () in
  Printf.printf "  sequential v2 : %8.2f ms   %9.0f appends/s\n%!" (v2 *. 1e3)
    (rate v2);
  Printf.printf "  sequential v3 : %8.2f ms   %9.0f appends/s\n%!" (v3 *. 1e3)
    (rate v3);
  let parallel =
    if Conferr_pool.recommended_jobs () = 1 then begin
      (* 4 domains on one core measure scheduler thrash, not the
         append-lock contention this section is about *)
      print_endline
        "  parallel      : skipped (single-core host — domains would \
         measure scheduling, not lock contention)";
      Json.Obj
        [
          ("skipped", Json.Bool true);
          ( "reason",
            Json.Str
              "single-core host (recommended_jobs = 1): parallel appends \
               measure scheduling, not lock contention" );
        ]
    end
    else begin
      let jobs = 4 in
      let pv2 = par jobs in
      let pv3 = par ~segment_bytes:(1 lsl 20) jobs in
      Printf.printf
        "  %d domains, v2 : %8.2f ms   %9.0f appends/s  (one file, one lock)\n%!"
        jobs (pv2 *. 1e3) (rate pv2);
      Printf.printf
        "  %d domains, v3 : %8.2f ms   %9.0f appends/s  (a segment per domain)\n%!"
        jobs (pv3 *. 1e3) (rate pv3);
      Json.Obj
        [
          ("jobs", Json.Num (float_of_int jobs));
          ("v2_appends_per_s", Json.Num (rate pv2));
          ("v3_appends_per_s", Json.Num (rate pv3));
        ]
    end
  in
  write_artifact "BENCH_journal.json"
    (Json.Obj
       [
         ("bench", Json.Str "journal-throughput");
         ("entries", Json.Num (float_of_int n));
         ("v2_appends_per_s", Json.Num (rate v2));
         ("v3_appends_per_s", Json.Num (rate v3));
         ("parallel", parallel);
       ]);
  print_newline ()

(* Each measured section is addressable on its own — `bench/main.exe
   serve` (or executor, sandbox, tracer, adaptive, lint, infer)
   regenerates just that section and its BENCH_*.json artifact without
   the (slow) full sweep. *)
let sections =
  [
    ("executor", print_executor_scaling);
    ("sandbox", print_sandbox_overhead);
    ("tracer", print_tracer_overhead);
    ("adaptive", print_adaptive_discovery);
    ("lint", print_lint_throughput);
    ("dataflow", print_dataflow_throughput);
    ("serve", print_serve_throughput);
    ("infer", print_infer_throughput);
    ("repair", print_repair_throughput);
    ("journal", print_journal_throughput);
  ]

let () =
  if Array.length Sys.argv > 1 then
    match List.assoc_opt Sys.argv.(1) sections with
    | Some section -> section ()
    | None ->
      Printf.eprintf "bench: unknown section %S (expected one of: %s)\n"
        Sys.argv.(1)
        (String.concat ", " (List.map fst sections));
      exit 2
  else begin
    print_tables ();
    print_ablations ();
    List.iter (fun (_, section) -> section ()) sections;
    print_benchmarks ()
  end
