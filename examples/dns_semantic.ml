(* Semantic DNS errors (paper §5.4 / Table 3).

     dune exec examples/dns_semantic.exe

   RFC-1912 misconfigurations are generated on a system-independent
   record representation and mapped back to each server's native format.
   For djbdns the "missing PTR" faults cannot even be expressed — its
   combined "=" directive defines the A record and the PTR together —
   which the engine reports as not-applicable. *)

let run_sut sut codec =
  let base =
    match Conferr.Engine.parse_default_config sut with
    | Ok base -> base
    | Error msg -> failwith msg
  in
  let scenarios =
    Dnsmodel.Rfc1912.scenarios ~codec ~faults:Dnsmodel.Rfc1912.all_faults base
    |> Errgen.Scenario.relabel_ids ~prefix:"rfc1912"
  in
  Printf.printf "== %s ==\n" sut.Suts.Sut.version;
  List.iter
    (fun (s : Errgen.Scenario.t) ->
      let outcome = Conferr.Engine.run_scenario ~sut ~base s in
      Printf.printf "  [%-10s] %s\n" (Conferr.Outcome.label outcome) s.description)
    scenarios;
  let profile = Conferr.Engine.run_from ~sut ~base ~scenarios () in
  print_newline ();
  print_string (Conferr.Profile.render profile);
  print_newline ()

let () =
  run_sut Suts.Mini_bind.sut (Dnsmodel.Codec.bind ~zones:Suts.Mini_bind.zones);
  run_sut Suts.Mini_djbdns.sut (Dnsmodel.Codec.tinydns ~file:Suts.Mini_djbdns.data_file);
  print_endline "Paper Table 3 rendering:";
  print_string (Conferr.Paper.render_table3 (Conferr.Paper.table3 ()))
