(* Structural errors and structural variations against Apache
   (paper §2.2, §4.2 and §5.3).

     dune exec examples/apache_structural.exe

   Part 1 checks which semantics-preserving variation classes the server
   accepts (Table 2's Apache column).  Part 2 injects skill-based
   structural faults — omissions, duplications, misplacements — plus a
   rule-based "borrowed directive" from another server's configuration
   dialect, and reports the resilience profile. *)

let () =
  let sut = Suts.Mini_apache.sut in
  let rng = Conferr_util.Rng.create 7 in

  (* Part 1: structural variations (§5.3) *)
  let check =
    Conferr.Structural_check.run ~rng
      ~excluded:[ Errgen.Variations.Reorder_sections ]
      ~sut ()
  in
  print_endline "Structural variation classes accepted by Apache:";
  List.iter
    (fun (r : Conferr.Structural_check.row) ->
      Printf.printf "  %-32s %s\n"
        (Errgen.Variations.class_title r.class_name)
        (Conferr.Structural_check.support_label r.support))
    check.Conferr.Structural_check.rows;
  Printf.printf "  %% of assumptions satisfied: %.0f%%\n\n"
    check.Conferr.Structural_check.satisfied_percent;

  (* Part 2: structural faults (§4.2) *)
  let base =
    match Conferr.Engine.parse_default_config sut with
    | Ok base -> base
    | Error msg -> failwith msg
  in
  let file = "httpd.conf" in
  let borrowed =
    (* a MySQL-style directive pasted into httpd.conf by an operator who
       administers both (rule-based error, §2.2) *)
    Conftree.Node.directive ~value:"16M" "key_buffer_size"
  in
  let scenarios =
    Errgen.Template.union
      [
        Errgen.Structural.omit_sections ~file base;
        Errgen.Structural.duplicate_directives ~file base |> Errgen.Template.limit 30;
        Errgen.Structural.misplace_directives ~file base |> Errgen.Template.sample rng 40;
        Errgen.Structural.borrow_foreign_directive ~donor_name:"mysql"
          ~directive:borrowed ~file base;
      ]
    |> Errgen.Scenario.relabel_ids ~prefix:"structural"
  in
  Printf.printf "Injecting %d structural faults into httpd.conf...\n\n"
    (List.length scenarios);
  let profile = Conferr.Engine.run_from ~sut ~base ~scenarios () in
  print_string (Conferr.Profile.render profile)
