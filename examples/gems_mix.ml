(* A GEMS-weighted mixed faultload (paper §2).

     dune exec examples/gems_mix.exe

   The Generic Error-Modeling System attributes roughly 60% of human
   errors to skill-based slips, 30% to rule-based mistakes and 10% to
   knowledge-based mistakes.  This example assembles one faultload with
   those proportions against mini-MySQL — typos and structural slips for
   the skill level, borrowed directives and format variations for the
   rule level, a value swap standing in for knowledge-level
   misunderstanding — and reports outcomes per cognitive level. *)

module Node = Conftree.Node

let () =
  let sut = Suts.Mini_mysql.sut in
  let rng = Conferr_util.Rng.create 1990 in
  let base =
    match Conferr.Engine.parse_default_config sut with
    | Ok base -> base
    | Error msg -> failwith msg
  in
  let file = "my.cnf" in

  (* skill-based: slips while typing or copy-pasting *)
  let skill =
    Errgen.Template.union
      [
        Conferr.Campaign.typo_scenarios ~rng
          ~faultload:
            { Conferr.Campaign.paper_faultload with typos_per_directive = 2 }
          sut base;
        Errgen.Structural.duplicate_directives ~file base;
        Errgen.Structural.misplace_directives ~file base;
      ]
  in

  (* rule-based: applying another system's configuration habits *)
  let rule =
    Errgen.Template.union
      [
        Errgen.Structural.borrow_foreign_directive ~donor_name:"postgres"
          ~directive:(Node.directive ~value:"24MB" "shared_buffers")
          ~file base;
        Errgen.Structural.borrow_foreign_directive ~donor_name:"apache"
          ~directive:(Node.directive ~value:"/var/log/httpd/error_log" "ErrorLog")
          ~file base;
        (List.concat_map
           (fun class_name ->
             Errgen.Variations.scenarios ~rng ~count:3 class_name ~file base)
           [ Errgen.Variations.Mixed_case_names; Errgen.Variations.Truncated_names ]
         |> List.map (fun (s : Errgen.Scenario.t) ->
                (* variations are normally benign probes; here they stand
                   in for rule-based habit transfer *)
                s));
      ]
  in

  (* knowledge-based: a wrong mental model of what a parameter means *)
  let knowledge =
    let directives =
      match Conftree.Config_set.find base file with
      | Some tree ->
        Node.find_all
          (fun n -> n.Node.kind = Node.kind_directive && n.Node.value <> None)
          tree
      | None -> []
    in
    let rec pairs = function
      | [] -> []
      | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
    in
    pairs directives
    |> List.map (fun ((pa, (na : Node.t)), (pb, (nb : Node.t))) ->
           Errgen.Scenario.make ~id:"" ~class_name:"semantic/value-confusion"
             ~description:
               (Printf.sprintf "confuse %S with %S" na.name nb.name)
             (Errgen.Scenario.edit_in_file ~file (fun t ->
                  let ( let* ) = Option.bind in
                  let* t = Node.replace t pa { na with Node.value = nb.Node.value } in
                  Node.replace t pb { nb with Node.value = na.Node.value })))
  in

  let faultload =
    Errgen.Cognitive.weighted_mix ~rng ~total:100 ~skill ~rule ~knowledge
    |> Errgen.Scenario.relabel_ids ~prefix:"gems"
  in
  Printf.printf "GEMS-weighted faultload: %d scenarios (%d skill pool, %d rule pool, %d \
                 knowledge pool)\n\n"
    (List.length faultload) (List.length skill) (List.length rule)
    (List.length knowledge);
  let profile = Conferr.Engine.run_from ~sut ~base ~scenarios:faultload () in
  print_string (Conferr.Profile.render profile);
  print_newline ();
  print_string (Conferr.Profile.render_by_cognitive_level profile)
