(* Extending ConfErr with a custom error-generator plugin (paper §3.3:
   "users can add other custom templates").

     dune exec examples/custom_plugin.exe

   The plugin below models a knowledge-based mistake the built-in models
   do not cover: an operator who understands each directive in isolation
   but swaps the values of two related directives (e.g. writing the
   relations limit into max_fsm_pages and vice versa).  It composes the
   existing abstract-modify template with a custom candidate-pairing
   rule, then runs through the standard engine untouched — plugins need
   no engine changes. *)

module Node = Conftree.Node

let swap_values_plugin =
  Errgen.Plugin.make ~name:"value-swap"
    ~describe:"swap the values of two related (same-section) directives"
    (fun ~rng:_ set ->
      Conftree.Config_set.to_list set
      |> List.concat_map (fun (file, tree) ->
             let directives =
               Node.find_all
                 (fun n -> n.Node.kind = Node.kind_directive && n.Node.value <> None)
                 tree
             in
             (* pair each directive with its successors *)
             let rec pairs = function
               | [] -> []
               | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
             in
             pairs directives
             |> List.map (fun ((pa, (na : Node.t)), (pb, (nb : Node.t))) ->
                    Errgen.Scenario.make ~id:""
                      ~class_name:"custom/value-swap"
                      ~description:
                        (Printf.sprintf "swap values of %S and %S in %s" na.name nb.name
                           file)
                      (Errgen.Scenario.edit_in_file ~file (fun t ->
                           let ( let* ) = Option.bind in
                           let* t =
                             Node.replace t pa { na with Node.value = nb.Node.value }
                           in
                           Node.replace t pb { nb with Node.value = na.Node.value })))))

let () =
  let sut = Suts.Mini_pg.sut in
  let base =
    match Conferr.Engine.parse_default_config sut with
    | Ok base -> base
    | Error msg -> failwith msg
  in
  let rng = Conferr_util.Rng.create 1 in
  let scenarios = Errgen.Plugin.generate swap_values_plugin ~rng base in
  Printf.printf "%s: %s\n" swap_values_plugin.Errgen.Plugin.name
    swap_values_plugin.Errgen.Plugin.describe;
  Printf.printf "Generated %d scenarios against %s\n\n" (List.length scenarios)
    sut.Suts.Sut.version;
  let profile = Conferr.Engine.run_from ~sut ~base ~scenarios () in
  print_string (Conferr.Profile.render profile);
  print_newline ();
  print_endline "Swaps that went unnoticed (candidates for new constraints):";
  List.iter
    (fun (e : Conferr.Profile.entry) ->
      if e.outcome = Conferr.Outcome.Passed then Printf.printf "  %s\n" e.description)
    profile.Conferr.Profile.entries
