(* Quickstart: measure a database server's resilience to configuration
   typos in under twenty lines of application code.

     dune exec examples/quickstart.exe

   The pipeline is the paper's Figure 1: parse the default configuration
   into its abstract representation, generate fault scenarios from the
   spelling-mistake model, inject each one, boot the (simulated) server,
   run the diagnosis suite, and print the resilience profile. *)

let () =
  let sut = Suts.Mini_pg.sut in
  let rng = Conferr_util.Rng.create 2008 in

  (* 1. Parse the shipped configuration files. *)
  let base =
    match Conferr.Engine.parse_default_config sut with
    | Ok base -> base
    | Error msg -> failwith msg
  in

  (* 2. Instantiate the typo error model against them. *)
  let scenarios =
    Conferr.Campaign.typo_scenarios ~rng
      ~faultload:Conferr.Campaign.paper_faultload sut base
  in
  Printf.printf "Generated %d fault scenarios for %s\n\n" (List.length scenarios)
    sut.Suts.Sut.version;

  (* 3. Inject, run, classify. *)
  let profile = Conferr.Engine.run_from ~sut ~base ~scenarios () in

  (* 4. The resilience profile is ConfErr's sole output. *)
  print_string (Conferr.Profile.render profile);
  print_newline ();

  (* Show a few of the injections that the server did NOT catch: these
     are the latent errors an administrator would ship to production. *)
  let ignored =
    Conferr.Profile.filter
      (fun e -> e.Conferr.Profile.outcome = Conferr.Outcome.Passed)
      profile
  in
  let take n xs = List.filteri (fun i _ -> i < n) xs in
  print_endline "A few silently-accepted mutations:";
  List.iter
    (fun (e : Conferr.Profile.entry) ->
      Printf.printf "  %s  %s\n" e.scenario_id e.description)
    (take 5 ignored.Conferr.Profile.entries)
