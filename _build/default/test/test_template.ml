module Template = Errgen.Template
module Scenario = Errgen.Scenario
module Node = Conftree.Node
module Config_set = Conftree.Config_set

let base =
  Config_set.of_list
    [
      ( "main.conf",
        Node.root
          [
            Node.section "a"
              [ Node.directive ~value:"1" "x"; Node.directive ~value:"2" "y" ];
            Node.section "b" [ Node.directive ~value:"3" "z" ];
          ] );
      ("extra.conf", Node.root [ Node.section "c" [ Node.directive "w" ] ]);
    ]

let apply_exn (s : Scenario.t) set =
  match s.apply set with
  | Ok set' -> set'
  | Error msg -> Alcotest.failf "scenario failed: %s" msg

let tree_of set file = Option.get (Config_set.find set file)

let directive_names tree =
  Node.find_all (fun n -> n.Node.kind = Node.kind_directive) tree
  |> List.map (fun (_, (n : Node.t)) -> n.name)

let test_delete_template () =
  let scenarios =
    Template.delete ~class_name:"t" (Template.target ~file:"main.conf" "//*[kind()='directive']") base
  in
  Alcotest.(check int) "one per directive" 3 (List.length scenarios);
  let mutated = apply_exn (List.hd scenarios) base in
  Alcotest.(check (list string))
    "first directive gone"
    [ "y"; "z" ]
    (directive_names (tree_of mutated "main.conf"))

let test_duplicate_template () =
  let scenarios =
    Template.duplicate ~class_name:"t"
      (Template.target ~file:"main.conf" "//*[kind()='directive' and name()='z']")
      base
  in
  Alcotest.(check int) "one scenario" 1 (List.length scenarios);
  let mutated = apply_exn (List.hd scenarios) base in
  Alcotest.(check (list string))
    "duplicated after original"
    [ "x"; "y"; "z"; "z" ]
    (directive_names (tree_of mutated "main.conf"))

let test_modify_template () =
  let mutate (n : Node.t) =
    [ ({ n with Node.value = Some "9" }, "set to 9"); ({ n with Node.value = None }, "drop value") ]
  in
  let scenarios =
    Template.modify ~class_name:"t" ~mutate
      (Template.target ~file:"main.conf" "//*[kind()='directive']")
      base
  in
  Alcotest.(check int) "two variants per directive" 6 (List.length scenarios);
  let mutated = apply_exn (List.hd scenarios) base in
  match Node.get (tree_of mutated "main.conf") [ 0; 0 ] with
  | Some n -> Alcotest.(check (option string)) "value changed" (Some "9") n.Node.value
  | None -> Alcotest.fail "missing node"

let test_move_template () =
  let scenarios =
    Template.move ~class_name:"t"
      ~src:(Template.target ~file:"main.conf" "//*[kind()='directive' and name()='x']")
      ~dst:(Template.target ~file:"main.conf" "//*[kind()='section']")
      base
  in
  (* destination = the other section only (current parent excluded) *)
  Alcotest.(check int) "one destination" 1 (List.length scenarios);
  let mutated = apply_exn (List.hd scenarios) base in
  let tree = tree_of mutated "main.conf" in
  (match Node.get tree [ 1; 0 ] with
   | Some n -> Alcotest.(check string) "moved into b" "x" n.Node.name
   | None -> Alcotest.fail "missing");
  Alcotest.(check int) "total count preserved" 3 (List.length (directive_names tree))

let test_move_cross_file () =
  let scenarios =
    Template.move ~class_name:"t"
      ~src:(Template.target ~file:"main.conf" "//*[kind()='directive' and name()='y']")
      ~dst:(Template.target ~file:"extra.conf" "//*[kind()='section']")
      base
  in
  Alcotest.(check int) "one destination" 1 (List.length scenarios);
  let mutated = apply_exn (List.hd scenarios) base in
  Alcotest.(check (list string))
    "gone from main" [ "x"; "z" ]
    (directive_names (tree_of mutated "main.conf"));
  Alcotest.(check (list string))
    "arrived in extra" [ "y"; "w" ]
    (directive_names (tree_of mutated "extra.conf"))

let test_copy_template () =
  let scenarios =
    Template.copy_into ~class_name:"t"
      ~src:(Template.target ~file:"main.conf" "//*[kind()='directive' and name()='z']")
      ~dst:(Template.target ~file:"main.conf" "//*[kind()='section']")
      base
  in
  (* both sections are valid copy destinations *)
  Alcotest.(check int) "two destinations" 2 (List.length scenarios);
  let mutated = apply_exn (List.hd scenarios) base in
  Alcotest.(check int) "one more directive" 4
    (List.length (directive_names (tree_of mutated "main.conf")))

let test_insert_foreign () =
  let foreign = Node.directive ~value:"off" "PgOption" in
  let scenarios =
    Template.insert_foreign ~class_name:"t" ~node:foreign ~description:"borrow"
      ~dst:(Template.target ~file:"main.conf" "//*[kind()='section' and name()='a']")
      base
  in
  Alcotest.(check int) "one destination" 1 (List.length scenarios);
  let mutated = apply_exn (List.hd scenarios) base in
  Alcotest.(check bool) "inserted" true
    (List.mem "PgOption" (directive_names (tree_of mutated "main.conf")))

let test_union_and_limit () =
  let a = Template.delete ~class_name:"t" (Template.target ~file:"main.conf" "//*[kind()='directive']") base in
  let b = Template.duplicate ~class_name:"t" (Template.target ~file:"main.conf" "//*[kind()='directive']") base in
  Alcotest.(check int) "union" 6 (List.length (Template.union [ a; b ]));
  Alcotest.(check int) "limit" 2 (List.length (Template.limit 2 (a @ b)))

let test_sample () =
  let a = Template.delete ~class_name:"t" (Template.target ~file:"main.conf" "//*[kind()='directive']") base in
  let rng = Conferr_util.Rng.create 1 in
  Alcotest.(check int) "sample size" 2 (List.length (Template.sample rng 2 a))

let test_stale_scenario_fails () =
  (* Apply a scenario whose target was already removed. *)
  let scenarios =
    Template.delete ~class_name:"t"
      (Template.target ~file:"main.conf" "//*[kind()='directive' and name()='z']")
      base
  in
  let scenario = List.hd scenarios in
  let shrunk =
    Option.get
      (Config_set.update base "main.conf" (fun t -> Node.delete t [ 1 ]))
  in
  Alcotest.(check bool) "errors instead of corrupting" true
    (Result.is_error (scenario.Scenario.apply shrunk))

let test_missing_file_fails () =
  let scenarios =
    Template.delete ~class_name:"t" (Template.target ~file:"main.conf" "//*[kind()='directive']") base
  in
  let scenario = List.hd scenarios in
  Alcotest.(check bool) "missing file" true
    (Result.is_error (scenario.Scenario.apply Config_set.empty))

let test_manifest_csv () =
  let a = Template.delete ~class_name:"t" (Template.target ~file:"main.conf" "//*[kind()='directive']") base in
  let csv = Scenario.manifest_csv (Scenario.relabel_ids ~prefix:"m" a) in
  Alcotest.(check bool) "header" true
    (Conferr_util.Strutil.is_prefix ~prefix:"id,class,description" csv);
  Alcotest.(check int) "one line per scenario + header + trailing"
    (List.length a + 1)
    (List.length (Conferr_util.Strutil.lines csv))

let test_relabel_ids () =
  let a = Template.delete ~class_name:"t" (Template.target ~file:"main.conf" "//*[kind()='directive']") base in
  let labelled = Scenario.relabel_ids ~prefix:"p" a in
  Alcotest.(check (list string))
    "ids"
    [ "p-0001"; "p-0002"; "p-0003" ]
    (List.map (fun (s : Scenario.t) -> s.id) labelled)

let suite =
  [
    Alcotest.test_case "delete" `Quick test_delete_template;
    Alcotest.test_case "duplicate" `Quick test_duplicate_template;
    Alcotest.test_case "modify" `Quick test_modify_template;
    Alcotest.test_case "move" `Quick test_move_template;
    Alcotest.test_case "move cross-file" `Quick test_move_cross_file;
    Alcotest.test_case "copy" `Quick test_copy_template;
    Alcotest.test_case "insert foreign" `Quick test_insert_foreign;
    Alcotest.test_case "union and limit" `Quick test_union_and_limit;
    Alcotest.test_case "sample" `Quick test_sample;
    Alcotest.test_case "stale scenario" `Quick test_stale_scenario_fails;
    Alcotest.test_case "missing file" `Quick test_missing_file_fails;
    Alcotest.test_case "relabel ids" `Quick test_relabel_ids;
    Alcotest.test_case "manifest csv" `Quick test_manifest_csv;
  ]
