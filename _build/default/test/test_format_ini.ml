module Ini = Formats.Ini
module Node = Conftree.Node

let parse_exn text =
  match Ini.parse text with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse error: %s" (Formats.Parse_error.to_string e)

let serialize_exn tree =
  match Ini.serialize tree with
  | Ok s -> s
  | Error msg -> Alcotest.failf "serialize error: %s" msg

let sample = "# top comment\n[mysqld]\nport = 3306\nskip_locking\n\n[client]\nsocket=/tmp/s\n"

let test_parse_sections () =
  let t = parse_exn sample in
  let sections =
    List.filter (fun (n : Node.t) -> n.kind = Node.kind_section) t.Node.children
  in
  Alcotest.(check (list string))
    "section names"
    [ ""; "mysqld"; "client" ]
    (List.map (fun (n : Node.t) -> n.name) sections)

let test_implicit_section () =
  let t = parse_exn sample in
  match t.Node.children with
  | implicit :: _ ->
    Alcotest.(check (option string)) "implicit" (Some "true") (Node.attr implicit "implicit");
    Alcotest.(check int) "holds the comment" 1 (List.length implicit.Node.children)
  | [] -> Alcotest.fail "no sections"

let test_implicit_dropped_when_empty () =
  let t = parse_exn "[a]\nx = 1\n" in
  Alcotest.(check int) "single section" 1 (List.length t.Node.children)

let test_directive_fields () =
  let t = parse_exn sample in
  match Node.get t [ 1; 0 ] with
  | Some d ->
    Alcotest.(check string) "name" "port" d.Node.name;
    Alcotest.(check (option string)) "value" (Some "3306") d.Node.value;
    Alcotest.(check (option string)) "separator preserved" (Some " = ") (Node.attr d "sep")
  | None -> Alcotest.fail "missing directive"

let test_valueless_directive () =
  let t = parse_exn sample in
  match Node.get t [ 1; 1 ] with
  | Some d ->
    Alcotest.(check string) "name" "skip_locking" d.Node.name;
    Alcotest.(check (option string)) "no value" None d.Node.value
  | None -> Alcotest.fail "missing directive"

let test_roundtrip_bytes () =
  Alcotest.(check string) "byte-faithful" sample (serialize_exn (parse_exn sample))

let test_tight_separator_roundtrip () =
  let text = "[s]\na=1\nb  =  2\n" in
  Alcotest.(check string) "spacing kept" text (serialize_exn (parse_exn text))

let test_semicolon_comment () =
  let t = parse_exn "[s]\n; note\nx = 1\n" in
  match Node.get t [ 0; 0 ] with
  | Some c -> Alcotest.(check string) "comment kind" Node.kind_comment c.Node.kind
  | None -> Alcotest.fail "missing"

let test_nested_section_rejected () =
  let tree =
    Node.root [ Node.section "outer" [ Node.section "inner" [] ] ]
  in
  match Ini.serialize tree with
  | Ok _ -> Alcotest.fail "nested sections must not serialize"
  | Error msg ->
    Alcotest.(check bool) "mentions nesting" true
      (Conferr_util.Strutil.contains_substring ~needle:"nested" msg)

let test_non_section_top_level_rejected () =
  let tree = Node.root [ Node.directive "loose" ] in
  Alcotest.(check bool) "rejected" true (Result.is_error (Ini.serialize tree))

let test_word_node_in_section_rejected () =
  let tree =
    Node.root [ Node.section "s" [ Node.make ~value:"w" Node.kind_word ] ]
  in
  Alcotest.(check bool) "rejected" true (Result.is_error (Ini.serialize tree))

let test_empty_input () =
  let t = parse_exn "" in
  Alcotest.(check int) "no sections" 0 (List.length t.Node.children)

let test_value_with_equals () =
  let t = parse_exn "[s]\nopt = a=b\n" in
  match Node.get t [ 0; 0 ] with
  | Some d -> Alcotest.(check (option string)) "splits at first '='" (Some "a=b") d.Node.value
  | None -> Alcotest.fail "missing"

let prop_roundtrip =
  QCheck2.Test.make ~name:"ini: parse after serialize is identity on trees"
    Gen.ini_tree_gen (fun tree ->
      match Ini.serialize tree with
      | Error _ -> QCheck2.assume_fail ()
      | Ok text ->
        (match Ini.parse text with
         | Error _ -> false
         | Ok tree' ->
           (* serialize again: fixpoint after one round *)
           Ini.serialize tree' = Ok text))

let suite =
  [
    Alcotest.test_case "parse sections" `Quick test_parse_sections;
    Alcotest.test_case "implicit section" `Quick test_implicit_section;
    Alcotest.test_case "implicit dropped when empty" `Quick
      test_implicit_dropped_when_empty;
    Alcotest.test_case "directive fields" `Quick test_directive_fields;
    Alcotest.test_case "valueless directive" `Quick test_valueless_directive;
    Alcotest.test_case "roundtrip bytes" `Quick test_roundtrip_bytes;
    Alcotest.test_case "separator roundtrip" `Quick test_tight_separator_roundtrip;
    Alcotest.test_case "semicolon comment" `Quick test_semicolon_comment;
    Alcotest.test_case "nested section rejected" `Quick test_nested_section_rejected;
    Alcotest.test_case "loose directive rejected" `Quick
      test_non_section_top_level_rejected;
    Alcotest.test_case "word node rejected" `Quick test_word_node_in_section_rejected;
    Alcotest.test_case "empty input" `Quick test_empty_input;
    Alcotest.test_case "value with equals" `Quick test_value_with_equals;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
