module Node = Conftree.Node

let sample =
  Node.root
    [
      Node.section "alpha"
        [
          Node.directive ~value:"1" "a1";
          Node.comment "# hello";
          Node.directive ~value:"2" "a2";
        ];
      Node.section "beta" [ Node.directive "b1" ];
      Node.blank;
    ]

let node_t = Alcotest.testable Node.pp Node.equal

let test_constructors () =
  let d = Node.directive ~attrs:[ ("k", "v") ] ~value:"x" "name" in
  Alcotest.(check string) "kind" Node.kind_directive d.Node.kind;
  Alcotest.(check (option string)) "value" (Some "x") d.Node.value;
  Alcotest.(check (option string)) "attr" (Some "v") (Node.attr d "k");
  Alcotest.(check (option string)) "missing attr" None (Node.attr d "nope")

let test_set_remove_attr () =
  let d = Node.directive "d" in
  let d = Node.set_attr d "a" "1" in
  let d = Node.set_attr d "a" "2" in
  Alcotest.(check (option string)) "overwrites" (Some "2") (Node.attr d "a");
  Alcotest.(check int) "no duplicate entries" 1 (List.length d.Node.attrs);
  let d = Node.remove_attr d "a" in
  Alcotest.(check (option string)) "removed" None (Node.attr d "a")

let test_size () = Alcotest.(check int) "counts all nodes" 8 (Node.size sample)

let test_get () =
  Alcotest.(check (option node_t)) "root" (Some sample) (Node.get sample []);
  (match Node.get sample [ 0; 2 ] with
   | Some n -> Alcotest.(check string) "deep get" "a2" n.Node.name
   | None -> Alcotest.fail "expected a node");
  Alcotest.(check (option node_t)) "out of range" None (Node.get sample [ 5 ]);
  Alcotest.(check (option node_t)) "too deep" None (Node.get sample [ 2; 0 ])

let test_fold_order () =
  let kinds = Node.fold (fun _ n acc -> n.Node.kind :: acc) sample [] |> List.rev in
  Alcotest.(check (list string)) "pre-order"
    [ "root"; "section"; "directive"; "comment"; "directive"; "section"; "directive";
      "blank" ]
    kinds

let test_find_all () =
  let directives = Node.find_all (fun n -> n.Node.kind = Node.kind_directive) sample in
  Alcotest.(check int) "three directives" 3 (List.length directives);
  let paths = List.map fst directives in
  Alcotest.(check bool) "document order" true
    (paths = List.sort Conftree.Path.compare paths)

let test_update () =
  match Node.update sample [ 0; 0 ] (fun n -> { n with Node.value = Some "9" }) with
  | None -> Alcotest.fail "update failed"
  | Some t ->
    (match Node.get t [ 0; 0 ] with
     | Some n -> Alcotest.(check (option string)) "updated" (Some "9") n.Node.value
     | None -> Alcotest.fail "node vanished")

let test_replace () =
  let fresh = Node.directive "fresh" in
  match Node.replace sample [ 1; 0 ] fresh with
  | None -> Alcotest.fail "replace failed"
  | Some t ->
    (match Node.get t [ 1; 0 ] with
     | Some n -> Alcotest.(check string) "replaced" "fresh" n.Node.name
     | None -> Alcotest.fail "node vanished")

let test_delete () =
  (match Node.delete sample [ 0; 1 ] with
   | None -> Alcotest.fail "delete failed"
   | Some t ->
     Alcotest.(check int) "one fewer node" (Node.size sample - 1) (Node.size t);
     (match Node.get t [ 0; 1 ] with
      | Some n -> Alcotest.(check string) "sibling shifted" "a2" n.Node.name
      | None -> Alcotest.fail "expected shifted sibling"));
  Alcotest.(check (option node_t)) "cannot delete root" None (Node.delete sample []);
  Alcotest.(check (option node_t)) "missing path" None (Node.delete sample [ 9 ])

let test_insert_child () =
  let d = Node.directive "new" in
  (match Node.insert_child sample ~parent:[ 1 ] ~index:0 d with
   | None -> Alcotest.fail "insert failed"
   | Some t ->
     (match Node.get t [ 1; 0 ] with
      | Some n -> Alcotest.(check string) "inserted first" "new" n.Node.name
      | None -> Alcotest.fail "missing"));
  (* index clamping *)
  match Node.insert_child sample ~parent:[ 1 ] ~index:99 d with
  | None -> Alcotest.fail "clamped insert failed"
  | Some t ->
    (match Node.get t [ 1; 1 ] with
     | Some n -> Alcotest.(check string) "appended" "new" n.Node.name
     | None -> Alcotest.fail "missing")

let test_append_child () =
  match Node.append_child sample ~parent:[ 0 ] (Node.directive "tail") with
  | None -> Alcotest.fail "append failed"
  | Some t ->
    (match Node.get t [ 0; 3 ] with
     | Some n -> Alcotest.(check string) "at end" "tail" n.Node.name
     | None -> Alcotest.fail "missing")

let test_duplicate () =
  match Node.duplicate sample [ 0; 0 ] with
  | None -> Alcotest.fail "duplicate failed"
  | Some t ->
    let a = Node.get t [ 0; 0 ] and b = Node.get t [ 0; 1 ] in
    (match (a, b) with
     | Some a, Some b -> Alcotest.check node_t "copy follows original" a b
     | _ -> Alcotest.fail "missing nodes")

let test_move_across_sections () =
  match Node.move sample ~src:[ 0; 0 ] ~dst_parent:[ 1 ] ~index:0 with
  | None -> Alcotest.fail "move failed"
  | Some t ->
    Alcotest.(check int) "size preserved" (Node.size sample) (Node.size t);
    (match Node.get t [ 1; 0 ] with
     | Some n -> Alcotest.(check string) "arrived" "a1" n.Node.name
     | None -> Alcotest.fail "missing");
    (match Node.get t [ 0; 0 ] with
     | Some n -> Alcotest.(check string) "source shifted" "comment" n.Node.kind
     | None -> Alcotest.fail "missing")

let test_move_within_section_later () =
  (* moving a1 after a2 within the same parent: index accounting must
     compensate for the deletion *)
  match Node.move sample ~src:[ 0; 0 ] ~dst_parent:[ 0 ] ~index:3 with
  | None -> Alcotest.fail "move failed"
  | Some t ->
    let names =
      match Node.children_of t [ 0 ] with
      | Some cs -> List.map (fun (c : Node.t) -> c.name) cs
      | None -> []
    in
    Alcotest.(check (list string)) "order" [ ""; "a2"; "a1" ] names

let test_move_into_own_subtree_refused () =
  Alcotest.(check (option node_t))
    "refused" None
    (Node.move sample ~src:[ 0 ] ~dst_parent:[ 0; 1 ] ~index:0)

let test_copy () =
  match Node.copy sample ~src:[ 0; 0 ] ~dst_parent:[ 1 ] ~index:1 with
  | None -> Alcotest.fail "copy failed"
  | Some t ->
    Alcotest.(check int) "one more node" (Node.size sample + 1) (Node.size t);
    (match Node.get t [ 1; 1 ] with
     | Some n -> Alcotest.(check string) "copied" "a1" n.Node.name
     | None -> Alcotest.fail "missing")

let test_map_nodes () =
  let upper =
    Node.map_nodes
      (fun n -> { n with Node.name = String.uppercase_ascii n.Node.name })
      sample
  in
  match Node.get upper [ 0 ] with
  | Some n -> Alcotest.(check string) "mapped" "ALPHA" n.Node.name
  | None -> Alcotest.fail "missing"

let test_equal_modulo_attrs () =
  let a = Node.directive ~attrs:[ ("x", "1") ] "d" in
  let b = Node.directive ~attrs:[ ("y", "2") ] "d" in
  Alcotest.(check bool) "differ with attrs" false (Node.equal a b);
  Alcotest.(check bool) "equal modulo attrs" true (Node.equal_modulo_attrs a b)

(* --- properties --- *)

let prop_delete_shrinks =
  QCheck2.Test.make ~name:"node: delete removes exactly the subtree size"
    QCheck2.Gen.(pair Gen.rooted_tree_gen (int_range 0 1000))
    (fun (tree, pick) ->
      match Gen.non_root_paths tree with
      | [] -> true
      | paths ->
        let path = List.nth paths (pick mod List.length paths) in
        let sub = Option.get (Conftree.Node.get tree path) in
        (match Conftree.Node.delete tree path with
         | None -> false
         | Some t ->
           Conftree.Node.size t = Conftree.Node.size tree - Conftree.Node.size sub))

let prop_get_after_update =
  QCheck2.Test.make ~name:"node: update reaches exactly the addressed node"
    QCheck2.Gen.(pair Gen.rooted_tree_gen (int_range 0 1000))
    (fun (tree, pick) ->
      let paths = Gen.all_paths tree in
      let path = List.nth paths (pick mod List.length paths) in
      let marked =
        Conftree.Node.update tree path (fun n ->
            Conftree.Node.set_attr n "marked" "yes")
      in
      match marked with
      | None -> false
      | Some t ->
        let marked_nodes =
          Conftree.Node.find_all
            (fun n -> Conftree.Node.attr n "marked" = Some "yes")
            t
        in
        List.length marked_nodes = 1 && fst (List.hd marked_nodes) = path)

let prop_duplicate_grows =
  QCheck2.Test.make ~name:"node: duplicate adds exactly the subtree size"
    QCheck2.Gen.(pair Gen.rooted_tree_gen (int_range 0 1000))
    (fun (tree, pick) ->
      match Gen.non_root_paths tree with
      | [] -> true
      | paths ->
        let path = List.nth paths (pick mod List.length paths) in
        let sub = Option.get (Conftree.Node.get tree path) in
        (match Conftree.Node.duplicate tree path with
         | None -> false
         | Some t ->
           Conftree.Node.size t = Conftree.Node.size tree + Conftree.Node.size sub))

let suite =
  [
    Alcotest.test_case "constructors" `Quick test_constructors;
    Alcotest.test_case "set/remove attr" `Quick test_set_remove_attr;
    Alcotest.test_case "size" `Quick test_size;
    Alcotest.test_case "get" `Quick test_get;
    Alcotest.test_case "fold order" `Quick test_fold_order;
    Alcotest.test_case "find_all" `Quick test_find_all;
    Alcotest.test_case "update" `Quick test_update;
    Alcotest.test_case "replace" `Quick test_replace;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "insert_child" `Quick test_insert_child;
    Alcotest.test_case "append_child" `Quick test_append_child;
    Alcotest.test_case "duplicate" `Quick test_duplicate;
    Alcotest.test_case "move across sections" `Quick test_move_across_sections;
    Alcotest.test_case "move within section" `Quick test_move_within_section_later;
    Alcotest.test_case "move into own subtree" `Quick test_move_into_own_subtree_refused;
    Alcotest.test_case "copy" `Quick test_copy;
    Alcotest.test_case "map_nodes" `Quick test_map_nodes;
    Alcotest.test_case "equal modulo attrs" `Quick test_equal_modulo_attrs;
    QCheck_alcotest.to_alcotest prop_delete_shrinks;
    QCheck_alcotest.to_alcotest prop_get_after_update;
    QCheck_alcotest.to_alcotest prop_duplicate_grows;
  ]
