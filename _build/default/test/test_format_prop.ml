(* Format-level property tests over generated inputs. *)

module Node = Conftree.Node

(* Random but well-formed configuration texts. *)
let ini_text_gen =
  QCheck2.Gen.(
    let directive =
      map2
        (fun name v -> Printf.sprintf "%s = %d" name v)
        Gen.name_gen (int_range 0 9999)
    in
    let line = frequency [ (5, directive); (1, return "# note"); (1, return "") ] in
    map2
      (fun name lines -> String.concat "\n" (Printf.sprintf "[%s]" name :: lines) ^ "\n")
      Gen.name_gen
      (list_size (int_range 0 8) line))

let prop_ini_serialize_parse_fixpoint =
  QCheck2.Test.make ~count:200 ~name:"ini: serialize (parse text) = text"
    ini_text_gen
    (fun text ->
      match Formats.Ini.parse text with
      | Error _ -> false
      | Ok tree -> Formats.Ini.serialize tree = Ok text)

let prop_pgconf_idempotent =
  QCheck2.Test.make ~count:200
    ~name:"pgconf: round-tripping is idempotent after one pass"
    QCheck2.Gen.(
      map
        (fun pairs ->
          String.concat ""
            (List.map (fun (n, v) -> Printf.sprintf "%s = %d\n" n v) pairs))
        (list_size (int_range 0 10) (pair Gen.name_gen (int_range 0 9999))))
    (fun text ->
      match Formats.Registry.round_trip Formats.Registry.pgconf text with
      | Error _ -> false
      | Ok once ->
        (match Formats.Registry.round_trip Formats.Registry.pgconf once with
         | Error _ -> false
         | Ok twice -> once = twice))

(* Random apache-shaped trees: directives and one level of sections. *)
let apache_tree_gen =
  QCheck2.Gen.(
    let directive =
      map2
        (fun name v -> Node.directive ~value:(string_of_int v) name)
        Gen.name_gen (int_range 0 999)
    in
    let section =
      map2
        (fun name children -> Node.section ~attrs:[ ("arg", "*:80") ] name children)
        Gen.name_gen
        (list_size (int_range 0 4) directive)
    in
    map Node.root
      (list_size (int_range 0 6) (frequency [ (3, directive); (1, section) ])))

let prop_apacheconf_tree_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"apacheconf: parse (serialize tree) = tree"
    apache_tree_gen
    (fun tree ->
      match Formats.Apacheconf.serialize tree with
      | Error _ -> false
      | Ok text ->
        (match Formats.Apacheconf.parse text with
         | Error _ -> false
         | Ok tree' -> Node.equal_modulo_attrs tree tree'))

let prop_tinydns_text_fixpoint =
  QCheck2.Gen.(
    let entry =
      map2
        (fun host ip -> Printf.sprintf "=%s:%s" host ip)
        Gen.hostname_gen Gen.ip_gen
    in
    map (fun lines -> String.concat "\n" lines ^ "\n") (list_size (int_range 0 10) entry))
  |> fun gen ->
  QCheck2.Test.make ~count:200 ~name:"tinydns: serialize (parse text) = text" gen
    (fun text ->
      match Formats.Tinydns.parse text with
      | Error _ -> false
      | Ok tree -> Formats.Tinydns.serialize tree = Ok text)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_ini_serialize_parse_fixpoint;
    QCheck_alcotest.to_alcotest prop_pgconf_idempotent;
    QCheck_alcotest.to_alcotest prop_apacheconf_tree_roundtrip;
    QCheck_alcotest.to_alcotest prop_tinydns_text_fixpoint;
  ]
