(* White-box tests for the PostgreSQL simulator: strict validation,
   cross-parameter constraints, Table 2 behaviours. *)

module P = Suts.Mini_pg
module Sut = Suts.Sut

let boot config = P.sut.Sut.boot [ ("postgresql.conf", config) ]

let boot_ok config =
  match boot config with
  | Ok instance -> instance
  | Error msg -> Alcotest.failf "expected successful startup, got: %s" msg

let boot_err config =
  match boot config with
  | Ok _ -> Alcotest.fail "expected startup failure"
  | Error msg -> msg

let tests_pass instance = Sut.all_passed (instance.Sut.run_tests ())

let default_text = List.assoc "postgresql.conf" P.sut.Sut.default_config

let contains needle msg = Conferr_util.Strutil.contains_substring ~needle msg

let test_default_boots () =
  Alcotest.(check bool) "default passes" true (tests_pass (boot_ok default_text))

let test_full_config_boots () =
  Alcotest.(check bool) "full config passes" true (tests_pass (boot_ok P.full_config))

let test_unknown_parameter_fatal () =
  let msg = boot_err "max_connectionz = 100\n" in
  Alcotest.(check bool) "unrecognized" true (contains "unrecognized" msg)

let test_case_insensitive_names () =
  Alcotest.(check bool) "mixed case ok" true
    (tests_pass (boot_ok "MAX_CONNECTIONS = 100\nMax_Fsm_Pages = 153600\n"))

let test_truncated_names_rejected () =
  ignore (boot_err "max_conn = 100\n")

let test_malformed_int_rejected () =
  let msg = boot_err "max_connections = 1o0\n" in
  Alcotest.(check bool) "integer error" true (contains "integer" msg)

let test_out_of_range_rejected () =
  (* contrast with MySQL's silent default *)
  let msg = boot_err "max_connections = 0\n" in
  Alcotest.(check bool) "range error" true (contains "outside the valid range" msg)

let test_memory_units () =
  Alcotest.(check bool) "MB ok" true (tests_pass (boot_ok "shared_buffers = 24MB\n"));
  Alcotest.(check bool) "kB ok" true (tests_pass (boot_ok "shared_buffers = 2048kB\n"));
  ignore (boot_err "shared_buffers = 24mb\n") (* unit case matters in 8.2 *);
  ignore (boot_err "shared_buffers = 24MB0\n") (* no trailing junk, unlike MySQL *);
  ignore (boot_err "shared_buffers = 24XB\n")

let test_time_units () =
  Alcotest.(check bool) "min ok" true (tests_pass (boot_ok "checkpoint_timeout = 5min\n"));
  Alcotest.(check bool) "s ok" true (tests_pass (boot_ok "checkpoint_timeout = 300s\n"));
  ignore (boot_err "checkpoint_timeout = 5minn\n");
  ignore (boot_err "checkpoint_timeout = 10\n") (* 10ms below the 30s minimum *)

let test_fsm_constraint () =
  (* the paper's example: 153600 -> 15600 trips the cross-check *)
  let msg = boot_err "max_fsm_pages = 15600\nmax_fsm_relations = 1000\n" in
  Alcotest.(check bool) "names the relation" true (contains "max_fsm_relations" msg);
  Alcotest.(check bool) "ok at exactly 16x" true
    (tests_pass (boot_ok "max_fsm_pages = 16000\nmax_fsm_relations = 1000\n"))

let test_shared_memory_constraint () =
  let msg = boot_err "max_connections = 10000\nshared_buffers = 1MB\n" in
  Alcotest.(check bool) "insufficient shared memory" true (contains "shared" msg)

let test_quoted_values () =
  Alcotest.(check bool) "quoted ok" true (tests_pass (boot_ok "datestyle = 'iso, mdy'\n"));
  ignore (boot_err "datestyle = 'iso, whenever'\n")

let test_enum_datestyle () =
  Alcotest.(check bool) "unquoted ok" true (tests_pass (boot_ok "datestyle = iso\n"));
  ignore (boot_err "datestyle = isoo\n")

let test_string_validators () =
  ignore (boot_err "listen_addresses = 'localhostt'\n");
  ignore (boot_err "log_timezone = 'UTCC'\n");
  ignore (boot_err "lc_messages = 'xx_XX'\n");
  Alcotest.(check bool) "known host ok" true
    (tests_pass (boot_ok "listen_addresses = '*'\n"))

let test_bool_strict () =
  Alcotest.(check bool) "on ok" true (tests_pass (boot_ok "fsync = on\n"));
  ignore (boot_err "fsync = onn\n")

let test_float_strict () =
  Alcotest.(check bool) "float ok" true (tests_pass (boot_ok "random_page_cost = 4.0\n"));
  ignore (boot_err "random_page_cost = 4..0\n")

let test_section_header_rejected () =
  let msg = boot_err "[postgres]\nmax_connections = 100\n" in
  Alcotest.(check bool) "syntax error" true (contains "syntax" msg)

let test_inline_comment_ok () =
  Alcotest.(check bool) "inline comments" true
    (tests_pass (boot_ok "max_connections = 100  # tuned\n"))

let test_space_separator_ok () =
  Alcotest.(check bool) "name value without =" true
    (tests_pass (boot_ok "max_connections 100\n"))

let test_validate_text_direct () =
  Alcotest.(check bool) "ok" true (Result.is_ok (P.validate_text "port = 5432\n"));
  Alcotest.(check bool) "error" true (Result.is_error (P.validate_text "nope = 1\n"))

let test_negative_values () =
  (* log_min_duration_statement accepts -1 (disabled) *)
  Alcotest.(check bool) "-1 accepted" true
    (tests_pass (boot_ok "log_min_duration_statement = -1\n"));
  (* but a negative max_connections is out of range *)
  ignore (boot_err "max_connections = -5\n")

let test_bare_page_units () =
  (* 8.2 reads bare shared_buffers numbers as 8kB pages *)
  Alcotest.(check bool) "3072 pages = 24MB" true
    (tests_pass (boot_ok "shared_buffers = 3072\n"));
  ignore (boot_err "shared_buffers = 10\n") (* 80kB: below the minimum *)

let test_duplicate_directive_last_wins () =
  Alcotest.(check bool) "later value applies" true
    (tests_pass (boot_ok "max_connections = 120\nmax_connections = 100\n"))

let test_full_config_covers_most_specs () =
  let lines = Conferr_util.Strutil.lines P.full_config in
  Alcotest.(check bool) "at least 25 directives" true (List.length lines >= 25);
  Alcotest.(check bool) "no booleans (paper exclusion)" true
    (not (List.exists (contains "fsync") lines))

let suite =
  [
    Alcotest.test_case "default boots" `Quick test_default_boots;
    Alcotest.test_case "full config boots" `Quick test_full_config_boots;
    Alcotest.test_case "unknown parameter" `Quick test_unknown_parameter_fatal;
    Alcotest.test_case "case-insensitive names" `Quick test_case_insensitive_names;
    Alcotest.test_case "truncated names rejected" `Quick test_truncated_names_rejected;
    Alcotest.test_case "malformed int" `Quick test_malformed_int_rejected;
    Alcotest.test_case "out of range" `Quick test_out_of_range_rejected;
    Alcotest.test_case "memory units" `Quick test_memory_units;
    Alcotest.test_case "time units" `Quick test_time_units;
    Alcotest.test_case "fsm constraint" `Quick test_fsm_constraint;
    Alcotest.test_case "shared memory constraint" `Quick test_shared_memory_constraint;
    Alcotest.test_case "quoted values" `Quick test_quoted_values;
    Alcotest.test_case "enum datestyle" `Quick test_enum_datestyle;
    Alcotest.test_case "string validators" `Quick test_string_validators;
    Alcotest.test_case "bool strict" `Quick test_bool_strict;
    Alcotest.test_case "float strict" `Quick test_float_strict;
    Alcotest.test_case "section header rejected" `Quick test_section_header_rejected;
    Alcotest.test_case "inline comment" `Quick test_inline_comment_ok;
    Alcotest.test_case "space separator" `Quick test_space_separator_ok;
    Alcotest.test_case "validate_text" `Quick test_validate_text_direct;
    Alcotest.test_case "negative values" `Quick test_negative_values;
    Alcotest.test_case "bare page units" `Quick test_bare_page_units;
    Alcotest.test_case "duplicate last wins" `Quick test_duplicate_directive_last_wins;
    Alcotest.test_case "full config shape" `Quick test_full_config_covers_most_specs;
  ]
