module Apacheconf = Formats.Apacheconf
module Node = Conftree.Node

let parse_exn text =
  match Apacheconf.parse text with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse error: %s" (Formats.Parse_error.to_string e)

let sample =
  String.concat "\n"
    [
      "# header";
      "Listen 80";
      "ServerName www.example.com";
      "<VirtualHost *:80>";
      "  DocumentRoot /var/www/html";
      "  <Directory \"/var/www/html\">";
      "    Options Indexes";
      "  </Directory>";
      "</VirtualHost>";
      "";
    ]

let test_parse_structure () =
  let t = parse_exn sample in
  Alcotest.(check (list string))
    "top-level kinds"
    [ Node.kind_comment; Node.kind_directive; Node.kind_directive; Node.kind_section ]
    (List.map (fun (n : Node.t) -> n.kind) t.Node.children)

let test_directive_value () =
  let t = parse_exn sample in
  match Node.get t [ 1 ] with
  | Some d ->
    Alcotest.(check string) "name" "Listen" d.Node.name;
    Alcotest.(check (option string)) "value" (Some "80") d.Node.value
  | None -> Alcotest.fail "missing"

let test_section_arg () =
  let t = parse_exn sample in
  match Node.get t [ 3 ] with
  | Some s ->
    Alcotest.(check string) "name" "VirtualHost" s.Node.name;
    Alcotest.(check (option string)) "arg" (Some "*:80") (Node.attr s "arg")
  | None -> Alcotest.fail "missing"

let test_nested_section () =
  let t = parse_exn sample in
  match Node.get t [ 3; 1 ] with
  | Some s ->
    Alcotest.(check string) "nested name" "Directory" s.Node.name;
    (match Node.get t [ 3; 1; 0 ] with
     | Some d -> Alcotest.(check string) "inner directive" "Options" d.Node.name
     | None -> Alcotest.fail "missing inner")
  | None -> Alcotest.fail "missing nested"

let test_tab_separated_directive () =
  let t = parse_exn "Listen\t8080\n" in
  match Node.get t [ 0 ] with
  | Some d ->
    Alcotest.(check string) "name" "Listen" d.Node.name;
    Alcotest.(check (option string)) "value" (Some "8080") d.Node.value
  | None -> Alcotest.fail "missing"

let test_case_insensitive_close () =
  let t = parse_exn "<Directory /tmp>\n</DIRECTORY>\n" in
  Alcotest.(check int) "one section" 1 (List.length t.Node.children)

let test_mismatched_close_rejected () =
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Apacheconf.parse "<Directory /tmp>\n</VirtualHost>\n"))

let test_unclosed_section_rejected () =
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Apacheconf.parse "<Directory /tmp>\nOptions None\n"))

let test_stray_close_rejected () =
  Alcotest.(check bool) "rejected" true (Result.is_error (Apacheconf.parse "</Directory>\n"))

let test_roundtrip_semantics () =
  let t = parse_exn sample in
  match Apacheconf.serialize t with
  | Error msg -> Alcotest.failf "serialize: %s" msg
  | Ok text ->
    let t2 = parse_exn text in
    Alcotest.(check bool) "same structure" true (Node.equal_modulo_attrs t t2)

let test_serialize_indents () =
  let t = parse_exn sample in
  match Apacheconf.serialize t with
  | Ok text ->
    Alcotest.(check bool) "inner directive indented" true
      (Conferr_util.Strutil.contains_substring ~needle:"    Options Indexes" text)
  | Error msg -> Alcotest.failf "serialize: %s" msg

let test_sep_attribute_respected () =
  let t = Node.root [ Node.directive ~attrs:[ ("sep", "\t") ] ~value:"80" "Listen" ] in
  match Apacheconf.serialize t with
  | Ok text -> Alcotest.(check string) "tab used" "Listen\t80\n" text
  | Error msg -> Alcotest.failf "serialize: %s" msg

let suite =
  [
    Alcotest.test_case "parse structure" `Quick test_parse_structure;
    Alcotest.test_case "directive value" `Quick test_directive_value;
    Alcotest.test_case "section arg" `Quick test_section_arg;
    Alcotest.test_case "nested section" `Quick test_nested_section;
    Alcotest.test_case "tab separated" `Quick test_tab_separated_directive;
    Alcotest.test_case "case-insensitive close" `Quick test_case_insensitive_close;
    Alcotest.test_case "mismatched close" `Quick test_mismatched_close_rejected;
    Alcotest.test_case "unclosed section" `Quick test_unclosed_section_rejected;
    Alcotest.test_case "stray close" `Quick test_stray_close_rejected;
    Alcotest.test_case "roundtrip semantics" `Quick test_roundtrip_semantics;
    Alcotest.test_case "serialize indents" `Quick test_serialize_indents;
    Alcotest.test_case "sep attribute" `Quick test_sep_attribute_respected;
  ]
