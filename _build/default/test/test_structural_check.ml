module Structural_check = Conferr.Structural_check
module Variations = Errgen.Variations
module Rng = Conferr_util.Rng

let run ?excluded sut = Structural_check.run ~rng:(Rng.create 7) ~count:5 ?excluded ~sut ()

let support_of t class_name =
  let row =
    List.find (fun (r : Structural_check.row) -> r.class_name = class_name)
      t.Structural_check.rows
  in
  row.Structural_check.support

let test_all_classes_reported () =
  let t = run Suts.Mini_pg.sut in
  Alcotest.(check int) "five rows" 5 (List.length t.Structural_check.rows)

let test_excluded_class_is_na () =
  let t = run ~excluded:[ Variations.Reorder_sections ] Suts.Mini_apache.sut in
  Alcotest.(check bool) "excluded" true
    (support_of t Variations.Reorder_sections = Structural_check.Not_applicable)

let test_inapplicable_class_is_na () =
  (* Postgres has no sections at all *)
  let t = run Suts.Mini_pg.sut in
  Alcotest.(check bool) "no sections" true
    (support_of t Variations.Reorder_sections = Structural_check.Not_applicable)

let test_support_labels () =
  Alcotest.(check string) "yes" "Yes" (Structural_check.support_label Structural_check.Supported);
  Alcotest.(check string) "no" "No" (Structural_check.support_label Structural_check.Unsupported);
  Alcotest.(check string) "n/a" "n/a"
    (Structural_check.support_label Structural_check.Not_applicable)

let test_percent_over_applicable_only () =
  let t = run Suts.Mini_pg.sut in
  let applicable =
    List.filter
      (fun (r : Structural_check.row) ->
        r.Structural_check.support <> Structural_check.Not_applicable)
      t.Structural_check.rows
  in
  let supported =
    List.filter
      (fun (r : Structural_check.row) ->
        r.Structural_check.support = Structural_check.Supported)
      applicable
  in
  let expected =
    100. *. float_of_int (List.length supported) /. float_of_int (List.length applicable)
  in
  Alcotest.(check bool) "consistent" true
    (abs_float (t.Structural_check.satisfied_percent -. expected) < 1e-9)

let test_deterministic () =
  let a = run Suts.Mini_mysql.sut and b = run Suts.Mini_mysql.sut in
  Alcotest.(check bool) "same verdicts" true
    (List.for_all2
       (fun (x : Structural_check.row) (y : Structural_check.row) ->
         x.Structural_check.support = y.Structural_check.support)
       a.Structural_check.rows b.Structural_check.rows)

let suite =
  [
    Alcotest.test_case "all classes" `Quick test_all_classes_reported;
    Alcotest.test_case "excluded is n/a" `Quick test_excluded_class_is_na;
    Alcotest.test_case "inapplicable is n/a" `Quick test_inapplicable_class_is_na;
    Alcotest.test_case "labels" `Quick test_support_labels;
    Alcotest.test_case "percent over applicable" `Quick test_percent_over_applicable_only;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
  ]
