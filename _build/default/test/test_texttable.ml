module Texttable = Conferr_util.Texttable

let check_s = Alcotest.(check string)

let test_render_basic () =
  let out =
    Texttable.render ~header:[ "a"; "bb" ] [ [ "11"; "2" ]; [ "3"; "444" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "header + sep + 2 rows + trailing" 5 (List.length lines);
  Alcotest.(check bool) "separator row dashes" true
    (String.for_all (fun c -> c = '-' || c = ' ') (List.nth lines 1))

let test_render_missing_cells () =
  let out = Texttable.render ~header:[ "x"; "y"; "z" ] [ [ "1" ] ] in
  Alcotest.(check bool) "does not raise and includes row" true
    (Conferr_util.Strutil.contains_substring ~needle:"1" out)

let test_render_right_align () =
  let out =
    Texttable.render
      ~aligns:[ Texttable.Right ]
      ~header:[ "num" ]
      [ [ "7" ] ]
  in
  Alcotest.(check bool) "right aligned" true
    (Conferr_util.Strutil.contains_substring ~needle:"  7" out)

let test_bar () =
  check_s "empty" "" (Texttable.bar ~width:10 0.);
  check_s "full" "##########" (Texttable.bar ~width:10 1.);
  check_s "half" "#####" (Texttable.bar ~width:10 0.5);
  check_s "clamped high" "##########" (Texttable.bar ~width:10 1.7);
  check_s "clamped low" "" (Texttable.bar ~width:10 (-0.3))

let test_percentage () =
  check_s "regular" "42 (42%)" (Texttable.percentage ~count:42 ~total:100);
  check_s "rounding" "1 (33%)" (Texttable.percentage ~count:1 ~total:3);
  check_s "zero total" "0 (0%)" (Texttable.percentage ~count:0 ~total:0)

let suite =
  [
    Alcotest.test_case "render basic" `Quick test_render_basic;
    Alcotest.test_case "render missing cells" `Quick test_render_missing_cells;
    Alcotest.test_case "render right align" `Quick test_render_right_align;
    Alcotest.test_case "bar" `Quick test_bar;
    Alcotest.test_case "percentage" `Quick test_percentage;
  ]
