module Name = Dnsmodel.Name

let check_s = Alcotest.(check string)

let test_normalize () =
  check_s "relative" "www.example.com." (Name.normalize ~origin:"example.com." "www");
  check_s "absolute untouched" "other.org." (Name.normalize ~origin:"example.com." "other.org.");
  check_s "at sign" "example.com." (Name.normalize ~origin:"example.com." "@");
  check_s "lowercased" "www.example.com." (Name.normalize ~origin:"EXAMPLE.COM." "WWW");
  check_s "origin without dot" "www.example.com." (Name.normalize ~origin:"example.com" "www");
  check_s "root origin" "host." (Name.normalize "host");
  check_s "no double dot" "host.example.com." (Name.normalize "host.example.com")

let test_is_absolute () =
  Alcotest.(check bool) "with dot" true (Name.is_absolute "a.b.");
  Alcotest.(check bool) "without" false (Name.is_absolute "a.b");
  Alcotest.(check bool) "empty" false (Name.is_absolute "")

let test_in_domain () =
  Alcotest.(check bool) "below" true
    (Name.in_domain ~domain:"example.com." "www.example.com.");
  Alcotest.(check bool) "itself" true (Name.in_domain ~domain:"example.com." "example.com.");
  Alcotest.(check bool) "outside" false (Name.in_domain ~domain:"example.com." "example.org.");
  Alcotest.(check bool) "suffix but not label boundary" false
    (Name.in_domain ~domain:"example.com." "notexample.com.")

let test_relative_to () =
  check_s "strips origin" "www" (Name.relative_to ~origin:"example.com." "www.example.com.");
  check_s "origin itself" "@" (Name.relative_to ~origin:"example.com." "example.com.");
  check_s "foreign stays absolute" "other.org."
    (Name.relative_to ~origin:"example.com." "other.org.")

let test_reverse_of_ipv4 () =
  Alcotest.(check (option string)) "forms in-addr.arpa"
    (Some "1.0.0.10.in-addr.arpa.")
    (Name.reverse_of_ipv4 "10.0.0.1");
  Alcotest.(check (option string)) "octet out of range" None (Name.reverse_of_ipv4 "300.0.0.1");
  Alcotest.(check (option string)) "not an ip" None (Name.reverse_of_ipv4 "1M0");
  Alcotest.(check (option string)) "too few octets" None (Name.reverse_of_ipv4 "10.0.0")

let test_ipv4_of_reverse () =
  Alcotest.(check (option string)) "inverse" (Some "10.0.0.1")
    (Name.ipv4_of_reverse "1.0.0.10.in-addr.arpa.");
  Alcotest.(check (option string)) "not reverse" None (Name.ipv4_of_reverse "www.example.com.")

let test_labels () =
  Alcotest.(check (list string)) "splits" [ "www"; "example"; "com" ]
    (Name.labels "www.example.com.")

let prop_reverse_roundtrip =
  QCheck2.Test.make ~name:"dns name: reverse_of_ipv4 roundtrips"
    QCheck2.Gen.(quad (int_range 0 255) (int_range 0 255) (int_range 0 255) (int_range 0 255))
    (fun (a, b, c, d) ->
      let ip = Printf.sprintf "%d.%d.%d.%d" a b c d in
      match Name.reverse_of_ipv4 ip with
      | None -> false
      | Some rev -> Name.ipv4_of_reverse rev = Some ip)

let suite =
  [
    Alcotest.test_case "normalize" `Quick test_normalize;
    Alcotest.test_case "is_absolute" `Quick test_is_absolute;
    Alcotest.test_case "in_domain" `Quick test_in_domain;
    Alcotest.test_case "relative_to" `Quick test_relative_to;
    Alcotest.test_case "reverse_of_ipv4" `Quick test_reverse_of_ipv4;
    Alcotest.test_case "ipv4_of_reverse" `Quick test_ipv4_of_reverse;
    Alcotest.test_case "labels" `Quick test_labels;
    QCheck_alcotest.to_alcotest prop_reverse_roundtrip;
  ]
