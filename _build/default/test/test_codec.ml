module Codec = Dnsmodel.Codec
module Record = Dnsmodel.Record
module Config_set = Conftree.Config_set

let bind_codec = Codec.bind ~zones:Suts.Mini_bind.zones

let tinydns_codec = Codec.tinydns ~file:"data"

let bind_base () =
  match Conferr.Engine.parse_default_config Suts.Mini_bind.sut with
  | Ok set -> set
  | Error msg -> Alcotest.failf "parse: %s" msg

let tinydns_base () =
  match Conferr.Engine.parse_default_config Suts.Mini_djbdns.sut with
  | Ok set -> set
  | Error msg -> Alcotest.failf "parse: %s" msg

let decode_exn codec set =
  match codec.Codec.decode set with
  | Ok records -> records
  | Error msg -> Alcotest.failf "decode: %s" msg

let encode_exn codec records set =
  match codec.Codec.encode records set with
  | Ok set' -> set'
  | Error msg -> Alcotest.failf "encode: %s" msg

let test_bind_decode_counts () =
  let records = decode_exn bind_codec (bind_base ()) in
  let count rtype = List.length (List.filter (fun r -> Record.rtype r = rtype) records) in
  Alcotest.(check int) "SOA" 2 (count "SOA");
  Alcotest.(check int) "A" 5 (count "A");
  Alcotest.(check int) "PTR" 5 (count "PTR");
  Alcotest.(check int) "CNAME" 2 (count "CNAME");
  Alcotest.(check int) "MX" 1 (count "MX");
  Alcotest.(check int) "HINFO" 2 (count "HINFO");
  Alcotest.(check int) "RP" 1 (count "RP")

let test_bind_records_tagged_with_file () =
  let records = decode_exn bind_codec (bind_base ()) in
  Alcotest.(check bool) "every record has a file tag" true
    (List.for_all (fun r -> Record.tag r Codec.tag_file <> None) records)

let test_bind_owner_qualified () =
  let records = decode_exn bind_codec (bind_base ()) in
  Alcotest.(check bool) "all owners absolute" true
    (List.for_all (fun (r : Record.t) -> Dnsmodel.Name.is_absolute r.owner) records)

let test_bind_roundtrip () =
  let base = bind_base () in
  let records = decode_exn bind_codec base in
  let set' = encode_exn bind_codec records base in
  let records' = decode_exn bind_codec set' in
  Alcotest.(check int) "same count" (List.length records) (List.length records');
  List.iter2
    (fun a b ->
      if not (Record.equal a b) then
        Alcotest.failf "record changed: %s vs %s" (Record.to_string a)
          (Record.to_string b))
    records records'

let test_bind_encode_respects_edits () =
  let base = bind_base () in
  let records = decode_exn bind_codec base in
  let without_ptr =
    List.filter
      (fun (r : Record.t) ->
        not (Record.rtype r = "PTR" && Record.target r = Some "www.example.com."))
      records
  in
  let set' = encode_exn bind_codec without_ptr base in
  let records' = decode_exn bind_codec set' in
  Alcotest.(check int) "one fewer" (List.length records - 1) (List.length records')

let test_tinydns_decode_combined () =
  let records = decode_exn tinydns_codec (tinydns_base ()) in
  let combined =
    List.filter (fun r -> Record.tag r Codec.tag_combined <> None) records
  in
  (* four '=' lines, each yielding an A and a PTR *)
  Alcotest.(check int) "combined records" 8 (List.length combined);
  let a = List.filter (fun r -> Record.rtype r = "A") combined in
  let ptr = List.filter (fun r -> Record.rtype r = "PTR") combined in
  Alcotest.(check int) "half As" 4 (List.length a);
  Alcotest.(check int) "half PTRs" 4 (List.length ptr)

let test_tinydns_roundtrip () =
  let base = tinydns_base () in
  let records = decode_exn tinydns_codec base in
  let set' = encode_exn tinydns_codec records base in
  let records' = decode_exn tinydns_codec set' in
  let summary rs =
    List.map (fun (r : Record.t) -> (r.owner, Record.rtype r)) rs
    |> List.sort compare
  in
  Alcotest.(check (list (pair string string))) "same records"
    (summary records) (summary records')

let test_tinydns_missing_ptr_inexpressible () =
  let base = tinydns_base () in
  let records = decode_exn tinydns_codec base in
  let without_one_ptr =
    let found = ref false in
    List.filter
      (fun r ->
        if (not !found) && Record.rtype r = "PTR" && Record.tag r Codec.tag_combined <> None
        then begin
          found := true;
          false
        end
        else true)
      records
  in
  match tinydns_codec.Codec.encode without_one_ptr base with
  | Ok _ -> Alcotest.fail "a broken '=' pair must not serialize"
  | Error msg ->
    Alcotest.(check bool) "explains" true
      (Conferr_util.Strutil.contains_substring ~needle:"tinydns-data" msg)

let test_tinydns_mutated_ptr_inexpressible () =
  let base = tinydns_base () in
  let records = decode_exn tinydns_codec base in
  let mutated =
    List.map
      (fun (r : Record.t) ->
        match (r.rdata, Record.tag r Codec.tag_combined) with
        | Record.Ptr _, Some _ -> { r with rdata = Record.Ptr "alias.example.com." }
        | _ -> r)
      records
  in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (tinydns_codec.Codec.encode mutated base))

let test_tinydns_added_record_expressible () =
  let base = tinydns_base () in
  let records = decode_exn tinydns_codec base in
  let extra =
    Record.make
      ~tags:[ (Codec.tag_file, "data") ]
      "example.com." (Record.Cname "www.example.com.")
  in
  let set' = encode_exn tinydns_codec (records @ [ extra ]) base in
  let records' = decode_exn tinydns_codec set' in
  Alcotest.(check int) "one more" (List.length records + 1) (List.length records')

let test_tinydns_rp_inexpressible () =
  let base = tinydns_base () in
  let records = decode_exn tinydns_codec base in
  let extra =
    Record.make
      ~tags:[ (Codec.tag_file, "data") ]
      "example.com."
      (Record.Rp ("hm.example.com.", "txt.example.com."))
  in
  Alcotest.(check bool) "RP has no tinydns encoding" true
    (Result.is_error (tinydns_codec.Codec.encode (records @ [ extra ]) base))

let test_decode_missing_file () =
  Alcotest.(check bool) "bind" true
    (Result.is_error (bind_codec.Codec.decode Config_set.empty));
  Alcotest.(check bool) "tinydns" true
    (Result.is_error (tinydns_codec.Codec.decode Config_set.empty))

let suite =
  [
    Alcotest.test_case "bind decode counts" `Quick test_bind_decode_counts;
    Alcotest.test_case "bind file tags" `Quick test_bind_records_tagged_with_file;
    Alcotest.test_case "bind owners absolute" `Quick test_bind_owner_qualified;
    Alcotest.test_case "bind roundtrip" `Quick test_bind_roundtrip;
    Alcotest.test_case "bind encode edits" `Quick test_bind_encode_respects_edits;
    Alcotest.test_case "tinydns combined decode" `Quick test_tinydns_decode_combined;
    Alcotest.test_case "tinydns roundtrip" `Quick test_tinydns_roundtrip;
    Alcotest.test_case "tinydns missing PTR inexpressible" `Quick
      test_tinydns_missing_ptr_inexpressible;
    Alcotest.test_case "tinydns mutated PTR inexpressible" `Quick
      test_tinydns_mutated_ptr_inexpressible;
    Alcotest.test_case "tinydns added record" `Quick test_tinydns_added_record_expressible;
    Alcotest.test_case "tinydns RP inexpressible" `Quick test_tinydns_rp_inexpressible;
    Alcotest.test_case "decode missing file" `Quick test_decode_missing_file;
  ]
