module Suggest = Conferr.Suggest
module Rng = Conferr_util.Rng

let vocab = Suts.Vocabulary.mysql

let test_nearest () =
  Alcotest.(check (option (pair string int)))
    "one-letter typo" (Some ("port", 1))
    (Suggest.nearest ~vocabulary:vocab "prot");
  Alcotest.(check (option (pair string int)))
    "exact" (Some ("port", 0))
    (Suggest.nearest ~vocabulary:vocab "port");
  Alcotest.(check (option (pair string int))) "empty vocabulary" None
    (Suggest.nearest ~vocabulary:[] "port")

let test_nearest_tie_break () =
  match Suggest.nearest ~vocabulary:[ "bb"; "ba" ] "b" with
  | Some (name, 1) -> Alcotest.(check string) "lexicographic" "ba" name
  | _ -> Alcotest.fail "expected distance-1 match"

let test_suggestions_ordering () =
  let s = Suggest.suggestions ~vocabulary:vocab "max_connection" in
  (match s with
   | first :: _ -> Alcotest.(check string) "closest first" "max_connections" first
   | [] -> Alcotest.fail "expected suggestions");
  Alcotest.(check bool) "bounded distance" true
    (List.for_all
       (fun c -> Conferr_util.Strutil.damerau_levenshtein "max_connection" c <= 2)
       s)

let test_recovery_rate_distinct_names () =
  let rng = Rng.create 9 in
  let rate = Suggest.recovery_rate ~vocabulary:vocab ~rng "key_buffer_size" in
  Alcotest.(check bool)
    (Printf.sprintf "long distinctive names recover well (%.2f)" rate)
    true (rate > 0.8)

let test_recovery_rate_short_name () =
  (* one-letter typos of a 4-letter word are often nearer to nothing
     unique; the rate is meaningfully below the long-name case *)
  let rng = Rng.create 9 in
  let long_rate = Suggest.recovery_rate ~vocabulary:vocab ~rng "myisam_sort_buffer_size" in
  let short_rate = Suggest.recovery_rate ~vocabulary:vocab ~rng "port" in
  Alcotest.(check bool)
    (Printf.sprintf "short %.2f <= long %.2f" short_rate long_rate)
    true (short_rate <= long_rate)

let test_recoverability_summary () =
  let rng = Rng.create 11 in
  let s = Suggest.recoverability ~vocabulary:vocab ~rng ~samples:10 () in
  Alcotest.(check int) "one row per word" (List.length vocab)
    (List.length s.Suggest.per_word);
  Alcotest.(check bool) "mean in range" true (s.Suggest.mean >= 0. && s.Suggest.mean <= 1.);
  Alcotest.(check bool) "render mentions mean" true
    (Conferr_util.Strutil.contains_substring ~needle:"did-you-mean"
       (Suggest.render s))

let test_vocabularies () =
  Alcotest.(check bool) "mysql non-empty" true (Suts.Vocabulary.mysql <> []);
  Alcotest.(check bool) "apache has LoadModule" true
    (List.mem "LoadModule" Suts.Vocabulary.apache);
  Alcotest.(check (list string)) "dns suts name-free" []
    (Suts.Vocabulary.for_sut Suts.Mini_bind.sut);
  Alcotest.(check bool) "for_sut postgres" true
    (Suts.Vocabulary.for_sut Suts.Mini_pg.sut = Suts.Vocabulary.postgres)

let suite =
  [
    Alcotest.test_case "nearest" `Quick test_nearest;
    Alcotest.test_case "nearest tie break" `Quick test_nearest_tie_break;
    Alcotest.test_case "suggestions ordering" `Quick test_suggestions_ordering;
    Alcotest.test_case "recovery long names" `Quick test_recovery_rate_distinct_names;
    Alcotest.test_case "recovery short vs long" `Quick test_recovery_rate_short_name;
    Alcotest.test_case "recoverability summary" `Quick test_recoverability_summary;
    Alcotest.test_case "vocabularies" `Quick test_vocabularies;
  ]
