(* White-box tests for the Apache simulator: module system, lax value
   checking (the paper's flaws), Listen/functional detection. *)

module A = Suts.Mini_apache
module Sut = Suts.Sut

let default_text = List.assoc "httpd.conf" A.sut.Sut.default_config

let boot config = A.sut.Sut.boot [ ("httpd.conf", config) ]

let boot_ok config =
  match boot config with
  | Ok instance -> instance
  | Error msg -> Alcotest.failf "expected successful startup, got: %s" msg

let boot_err config =
  match boot config with
  | Ok _ -> Alcotest.fail "expected startup failure"
  | Error msg -> msg

let tests_pass instance = Sut.all_passed (instance.Sut.run_tests ())

let contains needle msg = Conferr_util.Strutil.contains_substring ~needle msg

let with_line line = default_text ^ line ^ "\n"

let without_line fragment =
  Conferr_util.Strutil.lines default_text
  |> List.filter (fun l -> not (contains fragment l))
  |> Conferr_util.Strutil.unlines

let test_default_boots () =
  Alcotest.(check bool) "default passes" true (tests_pass (boot_ok default_text))

let test_unknown_directive_invalid_command () =
  let msg = boot_err (with_line "Listten 8081") in
  Alcotest.(check bool) "invalid command" true (contains "Invalid command" msg);
  Alcotest.(check bool) "helpful hint" true (contains "misspelled" msg)

let test_directive_names_case_insensitive () =
  Alcotest.(check bool) "mixed case ok" true
    (tests_pass (boot_ok (with_line "TIMEOUT 60")))

let test_module_registry () =
  Alcotest.(check bool) "known" true (A.known_module "mime_module");
  Alcotest.(check bool) "unknown" false (A.known_module "nope_module");
  Alcotest.(check (option string)) "directive ownership" (Some "mime_module")
    (A.directive_module "AddType");
  Alcotest.(check (option string)) "core directive" None (A.directive_module "Listen")

let test_deleting_loadmodule_strands_directives () =
  (* the mechanism behind many of the paper's Apache startup detections *)
  let msg = boot_err (without_line "mod_mime.so") in
  Alcotest.(check bool) "dependent directive invalid" true (contains "Invalid command" msg)

let test_deleting_unused_loadmodule_harmless () =
  Alcotest.(check bool) "no dependents, no error" true
    (tests_pass (boot_ok (without_line "mod_proxy_http.so")))

let test_loadmodule_wrong_path () =
  let msg = boot_err (with_line "LoadModule env_module modules/mod_env2.so") in
  Alcotest.(check bool) "cannot load" true (contains "Cannot load" msg)

let test_loadmodule_unknown_module () =
  let msg = boot_err (with_line "LoadModule quantum_module modules/mod_quantum.so") in
  Alcotest.(check bool) "undefined module" true (contains "undefined module" msg)

let test_missing_listen_refuses_startup () =
  let msg = boot_err (without_line "Listen 80") in
  Alcotest.(check bool) "no sockets" true (contains "no listening sockets" msg)

let test_listen_typo_survives_startup_fails_functionally () =
  (* the paper: 5% of Apache faults are caught only by the HTTP GET *)
  let config =
    Conferr_util.Strutil.lines default_text
    |> List.map (fun l -> if l = "Listen 80" then "Listen 8080" else l)
    |> Conferr_util.Strutil.unlines
  in
  let instance = boot_ok config in
  Alcotest.(check bool) "GET fails" false (tests_pass instance)

let test_listen_invalid_port_rejected () =
  ignore (boot_err (with_line "Listen 8o80"));
  ignore (boot_err (with_line "Listen 123456"))

let test_addtype_accepts_freeform () =
  (* flaw: no RFC-2045 type/subtype validation *)
  Alcotest.(check bool) "nonsense MIME accepted" true
    (tests_pass (boot_ok (with_line "AddType completegarbage .xyz")))

let test_defaulttype_accepts_freeform () =
  Alcotest.(check bool) "flaw" true
    (tests_pass (boot_ok (with_line "DefaultType not-a-mime-type")))

let test_serveradmin_accepts_anything () =
  Alcotest.(check bool) "flaw" true
    (tests_pass (boot_ok (with_line "ServerAdmin not@@an@@address")))

let test_servername_accepts_anything () =
  Alcotest.(check bool) "flaw" true
    (tests_pass (boot_ok (with_line "ServerName !!!not-a-hostname!!!")))

let test_enum_values_strict () =
  ignore (boot_err (with_line "LogLevel wran"));
  ignore (boot_err (with_line "KeepAlive Offf"));
  ignore (boot_err (with_line "Timeout 12s"));
  ignore (boot_err (with_line "ServerTokens Operating"))

let test_user_group_checked () =
  ignore (boot_err (with_line "User apachee"));
  ignore (boot_err (with_line "Group wheel"))

let test_log_path_parent_checked () =
  ignore (boot_err (with_line "ErrorLog /var/lgo/httpd/error_log"));
  Alcotest.(check bool) "piped log ok" true
    (tests_pass (boot_ok (with_line "ErrorLog |/usr/bin/logger")))

let test_options_strict () =
  ignore (boot_err (with_line "Options Indexess"));
  Alcotest.(check bool) "plus/minus accepted" true
    (tests_pass (boot_ok (with_line "Options +Indexes -FollowSymLinks")))

let test_order_allow_strict () =
  ignore (boot_err (default_text ^ "<Directory />\nOrder allow;deny\n</Directory>\n"));
  ignore (boot_err (default_text ^ "<Directory />\nAllow frmo all\n</Directory>\n"))

let test_ifmodule_skipped_body_ignores_errors () =
  (* directives inside an <IfModule> for an absent module are skipped,
     even invalid ones *)
  let config =
    default_text ^ "<IfModule mod_imaginary.c>\nUtterGarbage here\n</IfModule>\n"
  in
  Alcotest.(check bool) "skipped" true (tests_pass (boot_ok config))

let test_ifmodule_present_body_processed () =
  let config =
    default_text ^ "<IfModule mod_mime.c>\nUtterGarbage here\n</IfModule>\n"
  in
  ignore (boot_err config)

let test_ifmodule_negation () =
  let config =
    default_text ^ "<IfModule !mod_imaginary.c>\nAddType text/plain .txt\n</IfModule>\n"
  in
  Alcotest.(check bool) "negated body processed" true (tests_pass (boot_ok config))

let test_documentroot_typo_fails_functionally () =
  (* typo both the main and the vhost DocumentRoot *)
  let config =
    Conferr_util.Strutil.lines default_text
    |> List.map (fun l ->
           if Conferr_util.Strutil.trim l = "DocumentRoot /var/www/html" then
             "DocumentRoot /var/www/htmll"
           else l)
    |> Conferr_util.Strutil.unlines
  in
  let instance = boot_ok config in
  Alcotest.(check bool) "404" false (tests_pass instance)

let test_directive_order_irrelevant () =
  (* module directives may appear before their LoadModule line *)
  let config = "AddType text/x-test .tst\n" ^ default_text in
  Alcotest.(check bool) "two-pass module loading" true (tests_pass (boot_ok config))

let test_duplicate_listen_accumulates () =
  Alcotest.(check bool) "both ports listen" true
    (tests_pass (boot_ok (with_line "Listen 8081")))

let test_ssl_conf_is_part_of_the_configuration () =
  (* a typo'd directive name in ssl.conf is detected at startup, like
     one in httpd.conf: both files form one configuration *)
  let ssl = List.assoc "ssl.conf" A.sut.Sut.default_config in
  let bad_ssl = ssl ^ "SSLEngien on\n" in
  match A.sut.Sut.boot [ ("httpd.conf", default_text); ("ssl.conf", bad_ssl) ] with
  | Error msg -> Alcotest.(check bool) "invalid command" true (contains "Invalid command" msg)
  | Ok _ -> Alcotest.fail "typo in ssl.conf must fail startup"

let test_boot_without_ssl_conf_still_works () =
  Alcotest.(check bool) "httpd.conf alone is enough" true
    (match A.sut.Sut.boot [ ("httpd.conf", default_text) ] with
     | Ok i -> tests_pass i
     | Error _ -> false)

let test_namevirtualhost_duplicate_accepted () =
  (* duplicated NameVirtualHost: last replica overrides, no error *)
  Alcotest.(check bool) "accepted" true
    (tests_pass
       (boot_ok (with_line "NameVirtualHost *:80\nNameVirtualHost *:80")))

let test_serverroot_typo_detected () =
  ignore (boot_err (with_line "ServerRoot /etc/htppd"))

let test_include_missing_file_detected () =
  ignore (boot_err (with_line "Include /etc/httpd/conf.d/missing.conf"))

let test_errordocument_arity () =
  ignore (boot_err (with_line "ErrorDocument 404"));
  Alcotest.(check bool) "two args ok" true
    (tests_pass (boot_ok (with_line "ErrorDocument 404 /missing.html")))

let test_vhost_port_parsing () =
  let config =
    default_text ^ "<VirtualHost *:9090>\nServerName x\nDocumentRoot /var/www/html\n</VirtualHost>\n"
  in
  Alcotest.(check bool) "vhost on another port ok" true (tests_pass (boot_ok config))

let suite =
  [
    Alcotest.test_case "default boots" `Quick test_default_boots;
    Alcotest.test_case "invalid command" `Quick test_unknown_directive_invalid_command;
    Alcotest.test_case "case-insensitive names" `Quick
      test_directive_names_case_insensitive;
    Alcotest.test_case "module registry" `Quick test_module_registry;
    Alcotest.test_case "LoadModule deletion strands" `Quick
      test_deleting_loadmodule_strands_directives;
    Alcotest.test_case "unused LoadModule deletion" `Quick
      test_deleting_unused_loadmodule_harmless;
    Alcotest.test_case "LoadModule wrong path" `Quick test_loadmodule_wrong_path;
    Alcotest.test_case "LoadModule unknown module" `Quick test_loadmodule_unknown_module;
    Alcotest.test_case "missing Listen" `Quick test_missing_listen_refuses_startup;
    Alcotest.test_case "Listen typo functional" `Quick
      test_listen_typo_survives_startup_fails_functionally;
    Alcotest.test_case "Listen invalid port" `Quick test_listen_invalid_port_rejected;
    Alcotest.test_case "AddType freeform (flaw)" `Quick test_addtype_accepts_freeform;
    Alcotest.test_case "DefaultType freeform (flaw)" `Quick
      test_defaulttype_accepts_freeform;
    Alcotest.test_case "ServerAdmin anything (flaw)" `Quick
      test_serveradmin_accepts_anything;
    Alcotest.test_case "ServerName anything (flaw)" `Quick
      test_servername_accepts_anything;
    Alcotest.test_case "enums strict" `Quick test_enum_values_strict;
    Alcotest.test_case "user/group checked" `Quick test_user_group_checked;
    Alcotest.test_case "log path checked" `Quick test_log_path_parent_checked;
    Alcotest.test_case "options strict" `Quick test_options_strict;
    Alcotest.test_case "order/allow strict" `Quick test_order_allow_strict;
    Alcotest.test_case "IfModule skipped" `Quick test_ifmodule_skipped_body_ignores_errors;
    Alcotest.test_case "IfModule present" `Quick test_ifmodule_present_body_processed;
    Alcotest.test_case "IfModule negation" `Quick test_ifmodule_negation;
    Alcotest.test_case "DocumentRoot typo functional" `Quick
      test_documentroot_typo_fails_functionally;
    Alcotest.test_case "directive order irrelevant" `Quick test_directive_order_irrelevant;
    Alcotest.test_case "duplicate Listen" `Quick test_duplicate_listen_accumulates;
    Alcotest.test_case "vhost port" `Quick test_vhost_port_parsing;
    Alcotest.test_case "ssl.conf typos detected" `Quick
      test_ssl_conf_is_part_of_the_configuration;
    Alcotest.test_case "boot without ssl.conf" `Quick test_boot_without_ssl_conf_still_works;
    Alcotest.test_case "NameVirtualHost duplicate" `Quick
      test_namevirtualhost_duplicate_accepted;
    Alcotest.test_case "ServerRoot typo" `Quick test_serverroot_typo_detected;
    Alcotest.test_case "Include missing file" `Quick test_include_missing_file_detected;
    Alcotest.test_case "ErrorDocument arity" `Quick test_errordocument_arity;
  ]
