module Pgconf = Formats.Pgconf
module Node = Conftree.Node

let parse_exn text =
  match Pgconf.parse text with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse error: %s" (Formats.Parse_error.to_string e)

let sample = "# pg config\nmax_connections = 100\ndatestyle = 'iso, mdy'\nfsync on\n\n"

let test_parse_flat () =
  let t = parse_exn sample in
  let directives =
    List.filter (fun (n : Node.t) -> n.kind = Node.kind_directive) t.Node.children
  in
  Alcotest.(check (list string))
    "names"
    [ "max_connections"; "datestyle"; "fsync" ]
    (List.map (fun (n : Node.t) -> n.name) directives)

let test_quoted_value () =
  let t = parse_exn sample in
  match Node.get t [ 2 ] with
  | Some d ->
    Alcotest.(check (option string)) "unquoted in tree" (Some "iso, mdy") d.Node.value;
    Alcotest.(check (option string)) "quote recorded" (Some "true") (Node.attr d "quoted")
  | None -> Alcotest.fail "missing"

let test_space_separator () =
  let t = parse_exn sample in
  match Node.get t [ 3 ] with
  | Some d ->
    Alcotest.(check (option string)) "value" (Some "on") d.Node.value;
    Alcotest.(check (option string)) "space separator" (Some " ") (Node.attr d "sep")
  | None -> Alcotest.fail "missing"

let test_inline_comment_stripped () =
  let t = parse_exn "port = 5432  # the port\n" in
  match Node.get t [ 0 ] with
  | Some d -> Alcotest.(check (option string)) "value clean" (Some "5432") d.Node.value
  | None -> Alcotest.fail "missing"

let test_hash_inside_quotes_kept () =
  let t = parse_exn "search_path = 'a#b'\n" in
  match Node.get t [ 0 ] with
  | Some d -> Alcotest.(check (option string)) "kept" (Some "a#b") d.Node.value
  | None -> Alcotest.fail "missing"

let test_roundtrip_semantics () =
  let t = parse_exn sample in
  match Pgconf.serialize t with
  | Error msg -> Alcotest.failf "serialize: %s" msg
  | Ok text ->
    let t2 = parse_exn text in
    Alcotest.(check bool) "same tree after roundtrip" true (Node.equal t t2)

let test_quotes_reapplied () =
  let t = parse_exn "datestyle = 'iso, mdy'\n" in
  match Pgconf.serialize t with
  | Ok text ->
    Alcotest.(check bool) "quotes in output" true
      (Conferr_util.Strutil.contains_substring ~needle:"'iso, mdy'" text)
  | Error msg -> Alcotest.failf "serialize: %s" msg

let test_sections_rejected () =
  let tree = Node.root [ Node.section "s" [] ] in
  match Pgconf.serialize tree with
  | Ok _ -> Alcotest.fail "sections must not serialize"
  | Error msg ->
    Alcotest.(check bool) "mentions sections" true
      (Conferr_util.Strutil.contains_substring ~needle:"section" msg)

let test_blank_and_comment_preserved () =
  let text = "# c\n\nx = 1\n" in
  let t = parse_exn text in
  Alcotest.(check (list string))
    "kinds"
    [ Node.kind_comment; Node.kind_blank; Node.kind_directive ]
    (List.map (fun (n : Node.t) -> n.kind) t.Node.children);
  match Pgconf.serialize t with
  | Ok out -> Alcotest.(check string) "bytes" text out
  | Error msg -> Alcotest.failf "serialize: %s" msg

let suite =
  [
    Alcotest.test_case "parse flat" `Quick test_parse_flat;
    Alcotest.test_case "quoted value" `Quick test_quoted_value;
    Alcotest.test_case "space separator" `Quick test_space_separator;
    Alcotest.test_case "inline comment" `Quick test_inline_comment_stripped;
    Alcotest.test_case "hash inside quotes" `Quick test_hash_inside_quotes_kept;
    Alcotest.test_case "roundtrip semantics" `Quick test_roundtrip_semantics;
    Alcotest.test_case "quotes reapplied" `Quick test_quotes_reapplied;
    Alcotest.test_case "sections rejected" `Quick test_sections_rejected;
    Alcotest.test_case "blank and comment preserved" `Quick
      test_blank_and_comment_preserved;
  ]
