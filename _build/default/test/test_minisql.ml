module Engine = Minisql.Engine
module Parser = Minisql.Sql_parser
module Value = Minisql.Value
module Ast = Minisql.Ast

let fresh () =
  let e = Engine.create () in
  (match Engine.run e "CREATE DATABASE test" with
   | Engine.Done -> ()
   | _ -> Alcotest.fail "create database failed");
  e

let expect_done e sql =
  match Engine.run e sql with
  | Engine.Done -> ()
  | Engine.Rows _ -> Alcotest.failf "%s: unexpected rows" sql
  | Engine.Sql_error msg -> Alcotest.failf "%s: %s" sql msg

let expect_error e sql =
  match Engine.run e sql with
  | Engine.Sql_error _ -> ()
  | _ -> Alcotest.failf "%s should fail" sql

let expect_rows e sql =
  match Engine.run e sql with
  | Engine.Rows rs -> rs
  | Engine.Done -> Alcotest.failf "%s: no rows" sql
  | Engine.Sql_error msg -> Alcotest.failf "%s: %s" sql msg

(* --- parser --- *)

let test_parse_select () =
  match Parser.parse "SELECT a, b FROM t WHERE a = 1;" with
  | Ok (Ast.Select { columns = Some [ "a"; "b" ]; table = "t"; where = Some w }) ->
    Alcotest.(check string) "where column" "a" w.Ast.column;
    Alcotest.(check bool) "where value" true (w.Ast.value = Value.Int 1)
  | Ok other -> Alcotest.failf "wrong statement: %s" (Format.asprintf "%a" Ast.pp other)
  | Error msg -> Alcotest.fail msg

let test_parse_star () =
  match Parser.parse "select * from t" with
  | Ok (Ast.Select { columns = None; table = "t"; where = None }) -> ()
  | _ -> Alcotest.fail "case-insensitive select star"

let test_parse_string_literal () =
  match Parser.parse "INSERT INTO t VALUES ('it''s', 2)" with
  | Ok (Ast.Insert { values = [ Value.Text "it's"; Value.Int 2 ]; _ }) -> ()
  | _ -> Alcotest.fail "escaped quote"

let test_parse_negative_number () =
  match Parser.parse "INSERT INTO t VALUES (-5)" with
  | Ok (Ast.Insert { values = [ Value.Int (-5) ]; _ }) -> ()
  | _ -> Alcotest.fail "negative literal"

let test_parse_errors () =
  List.iter
    (fun sql ->
      match Parser.parse sql with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s should not parse" sql)
    [
      "SELECT"; "CREATE TABLE t"; "INSERT t VALUES (1)"; "SELECT * FROM"; "FROB x";
      "SELECT * FROM t extra"; "INSERT INTO t VALUES ('unterminated)";
    ]

let test_parse_script () =
  match Parser.parse_script "CREATE DATABASE a; USE a; SELECT * FROM t" with
  | Ok stmts -> Alcotest.(check int) "three" 3 (List.length stmts)
  | Error msg -> Alcotest.fail msg

(* --- engine --- *)

let test_create_insert_select () =
  let e = fresh () in
  expect_done e "CREATE TABLE t (id INT, name TEXT)";
  expect_done e "INSERT INTO t VALUES (1, 'a')";
  expect_done e "INSERT INTO t VALUES (2, 'b')";
  let rs = expect_rows e "SELECT name FROM t WHERE id = 2" in
  Alcotest.(check (list string)) "columns" [ "name" ] rs.Engine.columns;
  Alcotest.(check bool) "row" true (rs.Engine.rows = [ [ Value.Text "b" ] ])

let test_select_star_order () =
  let e = fresh () in
  expect_done e "CREATE TABLE t (id INT, name TEXT)";
  expect_done e "INSERT INTO t VALUES (1, 'a')";
  let rs = expect_rows e "SELECT * FROM t" in
  Alcotest.(check (list string)) "all columns" [ "id"; "name" ] rs.Engine.columns

let test_type_checking () =
  let e = fresh () in
  expect_done e "CREATE TABLE t (id INT)";
  expect_error e "INSERT INTO t VALUES ('oops')";
  expect_error e "INSERT INTO t VALUES (1, 2)"

let test_null_semantics () =
  let e = fresh () in
  expect_done e "CREATE TABLE t (id INT, name TEXT)";
  expect_done e "INSERT INTO t VALUES (NULL, 'x')";
  let rs = expect_rows e "SELECT name FROM t WHERE id = NULL" in
  Alcotest.(check int) "null matches nothing" 0 (List.length rs.Engine.rows)

let test_delete () =
  let e = fresh () in
  expect_done e "CREATE TABLE t (id INT)";
  expect_done e "INSERT INTO t VALUES (1)";
  expect_done e "INSERT INTO t VALUES (2)";
  expect_done e "DELETE FROM t WHERE id = 1";
  let rs = expect_rows e "SELECT * FROM t" in
  Alcotest.(check int) "one left" 1 (List.length rs.Engine.rows);
  expect_done e "DELETE FROM t";
  let rs = expect_rows e "SELECT * FROM t" in
  Alcotest.(check int) "empty" 0 (List.length rs.Engine.rows)

let test_drop () =
  let e = fresh () in
  expect_done e "CREATE TABLE t (id INT)";
  expect_done e "DROP TABLE t";
  expect_error e "SELECT * FROM t";
  expect_error e "DROP TABLE t"

let test_database_management () =
  let e = Engine.create () in
  expect_error e "CREATE TABLE t (id INT)" (* no database selected *);
  expect_done e "CREATE DATABASE d1";
  expect_done e "CREATE DATABASE d2";
  expect_error e "CREATE DATABASE d1";
  Alcotest.(check (list string)) "names" [ "d1"; "d2" ] (Engine.database_names e);
  expect_done e "USE d2";
  expect_done e "CREATE TABLE t (id INT)";
  expect_done e "USE d1";
  expect_error e "SELECT * FROM t" (* t lives in d2 *);
  expect_done e "DROP DATABASE d2";
  expect_error e "USE d2"

let test_duplicate_table () =
  let e = fresh () in
  expect_done e "CREATE TABLE t (id INT)";
  expect_error e "CREATE TABLE t (id INT)"

let test_unknown_column () =
  let e = fresh () in
  expect_done e "CREATE TABLE t (id INT)";
  expect_error e "SELECT nope FROM t";
  expect_done e "INSERT INTO t VALUES (1)";
  expect_error e "SELECT id FROM t WHERE nope = 1"

let test_run_script () =
  let e = Engine.create () in
  (match Engine.run_script e "CREATE DATABASE d; USE d; CREATE TABLE t (x INT); INSERT INTO t VALUES (9)" with
   | Ok n -> Alcotest.(check int) "four statements" 4 n
   | Error msg -> Alcotest.fail msg);
  match Engine.run_script e "INSERT INTO t VALUES (1); INSERT INTO nope VALUES (1)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "script must stop at first error"

let suite =
  [
    Alcotest.test_case "parse select" `Quick test_parse_select;
    Alcotest.test_case "parse star" `Quick test_parse_star;
    Alcotest.test_case "parse string literal" `Quick test_parse_string_literal;
    Alcotest.test_case "parse negative" `Quick test_parse_negative_number;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse script" `Quick test_parse_script;
    Alcotest.test_case "create/insert/select" `Quick test_create_insert_select;
    Alcotest.test_case "select star order" `Quick test_select_star_order;
    Alcotest.test_case "type checking" `Quick test_type_checking;
    Alcotest.test_case "null semantics" `Quick test_null_semantics;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "drop" `Quick test_drop;
    Alcotest.test_case "database management" `Quick test_database_management;
    Alcotest.test_case "duplicate table" `Quick test_duplicate_table;
    Alcotest.test_case "unknown column" `Quick test_unknown_column;
    Alcotest.test_case "run script" `Quick test_run_script;
  ]
