test/test_format_apache.ml: Alcotest Conferr_util Conftree Formats List Result String
