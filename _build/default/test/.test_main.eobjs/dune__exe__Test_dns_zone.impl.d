test/test_dns_zone.ml: Alcotest Dnsmodel List
