test/test_format_namedconf.ml: Alcotest Conftree Formats List Result String
