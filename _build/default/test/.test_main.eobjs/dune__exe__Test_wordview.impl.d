test/test_wordview.ml: Alcotest Conftree Errgen List Option Result
