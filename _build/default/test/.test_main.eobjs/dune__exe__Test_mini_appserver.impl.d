test/test_mini_appserver.ml: Alcotest Conferr Conferr_util Errgen List Suts
