test/test_format_ini.ml: Alcotest Conferr_util Conftree Formats Gen List QCheck2 QCheck_alcotest Result
