test/test_registry.ml: Alcotest Formats List Result
