test/test_suggest.ml: Alcotest Conferr Conferr_util List Printf Suts
