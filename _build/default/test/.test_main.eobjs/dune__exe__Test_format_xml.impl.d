test/test_format_xml.ml: Alcotest Conftree Formats List Result
