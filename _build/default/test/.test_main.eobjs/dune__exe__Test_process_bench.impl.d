test/test_process_bench.ml: Alcotest Conferr Conferr_util List Suts
