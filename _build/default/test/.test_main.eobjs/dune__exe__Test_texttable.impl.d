test/test_texttable.ml: Alcotest Conferr_util List String
