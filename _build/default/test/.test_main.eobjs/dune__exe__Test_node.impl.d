test/test_node.ml: Alcotest Conftree Gen List Option QCheck2 QCheck_alcotest String
