test/test_strutil.ml: Alcotest Conferr_util QCheck2 QCheck_alcotest String
