test/test_mini_pg.ml: Alcotest Conferr_util List Result Suts
