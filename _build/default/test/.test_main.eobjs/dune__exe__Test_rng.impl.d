test/test_rng.ml: Alcotest Conferr_util Fun List QCheck2 QCheck_alcotest
