test/test_config_set.ml: Alcotest Conftree
