test/test_minisql.ml: Alcotest Format List Minisql
