test/test_codec.ml: Alcotest Conferr Conferr_util Conftree Dnsmodel List Result Suts
