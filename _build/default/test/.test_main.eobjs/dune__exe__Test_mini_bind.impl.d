test/test_mini_bind.ml: Alcotest Conferr_util List Suts
