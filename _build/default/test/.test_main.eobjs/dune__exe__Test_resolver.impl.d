test/test_resolver.ml: Alcotest Dnsmodel List
