test/test_format_prop.ml: Conftree Formats Gen List Printf QCheck2 QCheck_alcotest String
