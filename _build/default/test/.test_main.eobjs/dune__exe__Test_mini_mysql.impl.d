test/test_mini_mysql.ml: Alcotest Conferr_util Format List Result Suts
