test/test_structural_check.ml: Alcotest Conferr Conferr_util Errgen List Suts
