test/test_cognitive.ml: Alcotest Conferr Conferr_util Errgen List Printf
