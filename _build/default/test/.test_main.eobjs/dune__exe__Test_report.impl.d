test/test_report.ml: Alcotest Conferr Conferr_util Dnsmodel Lazy List Suts
