test/test_template.ml: Alcotest Conferr_util Conftree Errgen List Option Result
