test/test_format_pgconf.ml: Alcotest Conferr_util Conftree Formats List
