test/test_dns_name.ml: Alcotest Dnsmodel Printf QCheck2 QCheck_alcotest
