test/test_variations.ml: Alcotest Conferr_util Conftree Errgen List Option Printf String
