test/test_engine.ml: Alcotest Conferr Conferr_util Conftree Errgen Formats List Suts
