test/gen.ml: Conftree Dnsmodel List Printf QCheck2 String
