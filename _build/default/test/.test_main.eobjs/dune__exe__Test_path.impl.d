test/test_path.ml: Alcotest Conftree
