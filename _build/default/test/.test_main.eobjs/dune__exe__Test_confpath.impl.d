test/test_confpath.ml: Alcotest Confpath Conftree List Printf
