test/test_campaign.ml: Alcotest Conferr Conferr_util Errgen List Suts
