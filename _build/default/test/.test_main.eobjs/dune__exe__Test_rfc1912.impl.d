test/test_rfc1912.ml: Alcotest Conferr Conferr_util Dnsmodel Errgen List Suts
