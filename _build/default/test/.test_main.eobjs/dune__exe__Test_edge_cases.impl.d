test/test_edge_cases.ml: Alcotest Conferr Conferr_util Conftree Errgen Formats Gen List Minisql Printf QCheck2 QCheck_alcotest String Suts
