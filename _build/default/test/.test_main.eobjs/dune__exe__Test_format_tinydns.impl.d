test/test_format_tinydns.ml: Alcotest Conftree Formats List Result String
