test/test_codec_prop.ml: Conftree Dnsmodel Formats Gen List QCheck2 QCheck_alcotest Result
