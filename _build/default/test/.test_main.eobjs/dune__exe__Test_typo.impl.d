test/test_typo.ml: Alcotest Conferr_util Conftree Errgen Keyboard List Printf QCheck2 QCheck_alcotest String
