test/test_format_zone.ml: Alcotest Conferr_util Conftree Formats List Result String
