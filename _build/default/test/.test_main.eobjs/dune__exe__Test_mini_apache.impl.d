test/test_mini_apache.ml: Alcotest Conferr_util List Suts
