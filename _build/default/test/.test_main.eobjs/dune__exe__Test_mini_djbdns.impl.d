test/test_mini_djbdns.ml: Alcotest Conferr_util Conftree Dnsmodel Formats List Suts
