test/test_paper.ml: Alcotest Conferr Conferr_util Errgen Lazy List Printf String
