test/test_keyboard.ml: Alcotest Char Keyboard List QCheck2 QCheck_alcotest String
