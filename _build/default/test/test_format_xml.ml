module Xmlconf = Formats.Xmlconf
module Node = Conftree.Node

let parse_exn text =
  match Xmlconf.parse text with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse error: %s" (Formats.Parse_error.to_string e)

let sample =
  "<?xml version=\"1.0\"?>\n<config env=\"prod\">\n  <db host=\"localhost\" \
   port=\"5432\"/>\n  <name>My &amp; Co</name>\n  <!-- note -->\n</config>\n"

let test_parse_root () =
  let t = parse_exn sample in
  match t.Node.children with
  | [ root ] ->
    Alcotest.(check string) "tag" "config" root.Node.name;
    Alcotest.(check (option string)) "attr" (Some "prod") (Node.attr root "env");
    Alcotest.(check int) "children" 3 (List.length root.Node.children)
  | _ -> Alcotest.fail "expected one root element"

let test_self_closing_and_attrs () =
  let t = parse_exn sample in
  match Node.get t [ 0; 0 ] with
  | Some db ->
    Alcotest.(check string) "tag" "db" db.Node.name;
    Alcotest.(check (option string)) "host" (Some "localhost") (Node.attr db "host");
    Alcotest.(check (option string)) "port" (Some "5432") (Node.attr db "port")
  | None -> Alcotest.fail "missing"

let test_text_and_entities () =
  let t = parse_exn sample in
  match Node.get t [ 0; 1; 0 ] with
  | Some text ->
    Alcotest.(check string) "kind" Node.kind_text text.Node.kind;
    Alcotest.(check (option string)) "decoded" (Some "My & Co") text.Node.value
  | None -> Alcotest.fail "missing"

let test_comment_node () =
  let t = parse_exn sample in
  match Node.get t [ 0; 2 ] with
  | Some c -> Alcotest.(check string) "kind" Node.kind_comment c.Node.kind
  | None -> Alcotest.fail "missing"

let test_single_quoted_attr () =
  let t = parse_exn "<a x='1'/>" in
  match Node.get t [ 0 ] with
  | Some a -> Alcotest.(check (option string)) "attr" (Some "1") (Node.attr a "x")
  | None -> Alcotest.fail "missing"

let test_escape_unescape () =
  Alcotest.(check string) "escape" "&lt;a&gt; &amp; &quot;b&quot; &apos;c&apos;"
    (Xmlconf.escape "<a> & \"b\" 'c'");
  Alcotest.(check string) "unescape" "<a> & \"b\" 'c'"
    (Xmlconf.unescape "&lt;a&gt; &amp; &quot;b&quot; &apos;c&apos;");
  Alcotest.(check string) "unknown entity preserved" "&nbsp;" (Xmlconf.unescape "&nbsp;");
  Alcotest.(check string) "lone ampersand" "a&b" (Xmlconf.unescape "a&b")

let test_roundtrip () =
  let t = parse_exn sample in
  match Xmlconf.serialize t with
  | Error msg -> Alcotest.failf "serialize: %s" msg
  | Ok text ->
    let t2 = parse_exn text in
    Alcotest.(check bool) "same tree" true (Node.equal t t2)

let test_errors () =
  let rejected text =
    Alcotest.(check bool) text true (Result.is_error (Xmlconf.parse text))
  in
  rejected "<a><b></a></b>";
  rejected "<a>";
  rejected "no xml at all";
  rejected "<a></a><b></b>";
  rejected "<a x=1></a>"

let test_serialize_needs_single_element () =
  Alcotest.(check bool) "empty root" true
    (Result.is_error (Xmlconf.serialize (Node.root [])));
  Alcotest.(check bool) "directive root" true
    (Result.is_error (Xmlconf.serialize (Node.root [ Node.directive "d" ])))

let suite =
  [
    Alcotest.test_case "parse root" `Quick test_parse_root;
    Alcotest.test_case "self-closing + attrs" `Quick test_self_closing_and_attrs;
    Alcotest.test_case "text and entities" `Quick test_text_and_entities;
    Alcotest.test_case "comment node" `Quick test_comment_node;
    Alcotest.test_case "single-quoted attr" `Quick test_single_quoted_attr;
    Alcotest.test_case "escape/unescape" `Quick test_escape_unescape;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "serialize single element" `Quick
      test_serialize_needs_single_element;
  ]
