(* White-box tests for the MySQL simulator's paper-documented quirks
   (§5.2) and Table 2 behaviours. *)

module M = Suts.Mini_mysql
module Sut = Suts.Sut

let boot config = M.sut.Sut.boot [ ("my.cnf", config) ]

let boot_ok config =
  match boot config with
  | Ok instance -> instance
  | Error msg -> Alcotest.failf "expected successful startup, got: %s" msg

let boot_err config =
  match boot config with
  | Ok _ -> Alcotest.fail "expected startup failure"
  | Error msg -> msg

let tests_pass instance = Sut.all_passed (instance.Sut.run_tests ())

let default_text = List.assoc "my.cnf" M.sut.Sut.default_config

(* --- value parsing quirks --- *)

let parsed = Alcotest.testable (fun fmt -> function
    | M.Accepted v -> Format.fprintf fmt "Accepted %Ld" v
    | M.Defaulted -> Format.pp_print_string fmt "Defaulted"
    | M.Rejected m -> Format.fprintf fmt "Rejected %s" m)
  (fun a b ->
    match (a, b) with
    | M.Accepted x, M.Accepted y -> x = y
    | M.Defaulted, M.Defaulted -> true
    | M.Rejected _, M.Rejected _ -> true
    | _, _ -> false)

let size v = M.parse_size ~default:100L ~min:8L ~max:1073741824L v

let test_size_plain () =
  Alcotest.check parsed "plain number" (M.Accepted 64L) (size "64")

let test_size_suffixes () =
  Alcotest.check parsed "K" (M.Accepted 16384L) (size "16K");
  Alcotest.check parsed "M" (M.Accepted 16777216L) (size "16M");
  Alcotest.check parsed "lowercase m" (M.Accepted 1048576L) (size "1m");
  Alcotest.check parsed "G" (M.Accepted 1073741824L) (size "1G")

let test_size_stops_at_first_multiplier () =
  (* the paper's "1M0" flaw: accepted as 1M, trailing junk ignored *)
  Alcotest.check parsed "1M0" (M.Accepted 1048576L) (size "1M0");
  Alcotest.check parsed "16Mxyz" (M.Accepted 16777216L) (size "16Mxyz")

let test_size_leading_multiplier_defaulted () =
  (* values that start with a multiplier are silently ignored *)
  Alcotest.check parsed "M10" M.Defaulted (size "M10");
  Alcotest.check parsed "G" M.Defaulted (size "G")

let test_size_out_of_bounds_silently_defaulted () =
  (* key_buffer_size=1 accepted and ignored although min is 8 *)
  Alcotest.check parsed "below min" M.Defaulted (size "1");
  Alcotest.check parsed "above max" M.Defaulted (size "999999999999")

let test_size_empty_defaulted () = Alcotest.check parsed "no value" M.Defaulted (size "")

let test_size_garbage_rejected () =
  Alcotest.check parsed "letters" (M.Rejected "") (size "abc");
  Alcotest.check parsed "junk after digits" (M.Rejected "") (size "12x3");
  Alcotest.check parsed "leading symbol" (M.Rejected "") (size "!2")

let test_int_strict () =
  let int v = M.parse_int ~default:100L ~min:1L ~max:65535L v in
  Alcotest.check parsed "ok" (M.Accepted 3306L) (int "3306");
  Alcotest.check parsed "no suffix allowed" (M.Rejected "") (int "1K");
  Alcotest.check parsed "out of range defaulted" M.Defaulted (int "99999999");
  Alcotest.check parsed "empty defaulted" M.Defaulted (int "")

(* --- name resolution --- *)

let test_resolve_exact () =
  Alcotest.(check bool) "known" true (M.resolve_name "port" = `Known "port")

let test_resolve_dash_underscore () =
  Alcotest.(check bool) "dashes fold" true
    (M.resolve_name "key-buffer-size" = `Known "key_buffer_size")

let test_resolve_truncated () =
  Alcotest.(check bool) "unambiguous prefix" true
    (M.resolve_name "key_buf" = `Known "key_buffer_size");
  Alcotest.(check bool) "single char" true (M.resolve_name "d" = `Known "datadir")

let test_resolve_ambiguous () =
  Alcotest.(check bool) "max_ is ambiguous" true (M.resolve_name "max_" = `Ambiguous)

let test_resolve_unknown () =
  Alcotest.(check bool) "unknown" true (M.resolve_name "not_a_variable" = `Unknown);
  Alcotest.(check bool) "case-sensitive" true (M.resolve_name "Port" = `Unknown)

(* --- startup behaviour --- *)

let test_default_config_boots_and_passes () =
  Alcotest.(check bool) "functional tests pass" true (tests_pass (boot_ok default_text))

let test_unknown_variable_in_mysqld_rejected () =
  let msg = boot_err "[mysqld]\nprot = 3306\n" in
  Alcotest.(check bool) "unknown variable" true
    (Conferr_util.Strutil.contains_substring ~needle:"unknown variable" msg)

let test_shared_file_sections_latent () =
  (* errors in [mysqldump] / [client] are not seen at daemon startup *)
  let config = M.shared_tools_config ^ "[mysqldump]\nnot_a_real_option = 1\n" in
  Alcotest.(check bool) "daemon starts" true (tests_pass (boot_ok config))

let test_client_section_latent () =
  let config = default_text ^ "[client]\nmisspelled_option = x\n" in
  Alcotest.(check bool) "daemon starts" true (tests_pass (boot_ok config))

let test_shared_tools_config_boots () =
  Alcotest.(check bool) "shipped shared config works" true
    (tests_pass (boot_ok M.shared_tools_config))

let test_bad_bool_rejected () =
  let msg = boot_err "[mysqld]\nold_passwords = maybe\n" in
  Alcotest.(check bool) "boolean error" true
    (Conferr_util.Strutil.contains_substring ~needle:"boolean" msg)

let test_flag_accepts_spurious_value () =
  Alcotest.(check bool) "flag with value accepted" true
    (tests_pass (boot_ok "[mysqld]\nskip_external_locking = banana\n"))

let test_datadir_must_exist () =
  let msg = boot_err "[mysqld]\ndatadir = /var/lib/mysqll\n" in
  Alcotest.(check bool) "errcode 2" true
    (Conferr_util.Strutil.contains_substring ~needle:"Errcode: 2" msg)

let test_socket_must_be_absolute () =
  ignore (boot_err "[mysqld]\nsocket = relative/path.sock\n");
  Alcotest.(check bool) "absolute ok" true
    (tests_pass (boot_ok "[mysqld]\nsocket = /anywhere/at/all.sock\n"))

let test_port_typo_caught_by_functional_tests () =
  (* a digit typo keeps the value numeric: startup accepts it, the
     diagnosis script cannot connect *)
  let instance = boot_ok "[mysqld]\nport = 3307\n" in
  Alcotest.(check bool) "functional failure" false (tests_pass instance)

let test_invalid_port_rejected_at_startup () =
  ignore (boot_err "[mysqld]\nport = 33o6\n")

let test_out_of_bounds_silently_ignored_end_to_end () =
  (* the paper's key_buffer_size=1 example, through the whole stack *)
  Alcotest.(check bool) "accepted and ignored" true
    (tests_pass (boot_ok "[mysqld]\nkey_buffer_size = 1\n"))

let test_duplicate_directive_last_wins () =
  let instance = boot_ok "[mysqld]\nport = 3307\nport = 3306\n" in
  Alcotest.(check bool) "second value used" true (tests_pass instance)

let test_mixed_case_rejected () =
  ignore (boot_err "[mysqld]\nPort = 3306\n")

let test_truncated_names_accepted_end_to_end () =
  Alcotest.(check bool) "truncated names boot" true
    (tests_pass (boot_ok "[mysqld]\npo = 3306\nkey_buf = 16M\n"))

let test_mysqldump_surfaces_latent_errors () =
  (* the daemon boots, but the tool's next run hits the typo *)
  let config = M.shared_tools_config ^ "[mysqldump]\nquikc\n" in
  Alcotest.(check bool) "daemon unaffected" true (tests_pass (boot_ok config));
  (match M.run_mysqldump config with
   | Error msg ->
     Alcotest.(check bool) "mysqldump reports" true
       (Conferr_util.Strutil.contains_substring ~needle:"unknown option" msg)
   | Ok () -> Alcotest.fail "mysqldump must hit the latent typo");
  (* clean shared config: the tool runs fine *)
  Alcotest.(check bool) "clean run" true (Result.is_ok (M.run_mysqldump M.shared_tools_config))

let test_orphan_option_rejected () =
  let msg = boot_err "port = 3306\n[mysqld]\nmax_connections = 100\n" in
  Alcotest.(check bool) "without preceding group" true
    (Conferr_util.Strutil.contains_substring ~needle:"without preceding group" msg)

let test_missing_file () =
  match M.sut.Sut.boot [] with
  | Error msg ->
    Alcotest.(check bool) "reports missing file" true
      (Conferr_util.Strutil.contains_substring ~needle:"my.cnf" msg)
  | Ok _ -> Alcotest.fail "must not boot without a config"

let suite =
  [
    Alcotest.test_case "size plain" `Quick test_size_plain;
    Alcotest.test_case "size suffixes" `Quick test_size_suffixes;
    Alcotest.test_case "size stops at first multiplier (1M0)" `Quick
      test_size_stops_at_first_multiplier;
    Alcotest.test_case "size leading multiplier defaulted" `Quick
      test_size_leading_multiplier_defaulted;
    Alcotest.test_case "size out-of-bounds silent" `Quick
      test_size_out_of_bounds_silently_defaulted;
    Alcotest.test_case "size empty defaulted" `Quick test_size_empty_defaulted;
    Alcotest.test_case "size garbage rejected" `Quick test_size_garbage_rejected;
    Alcotest.test_case "int strict" `Quick test_int_strict;
    Alcotest.test_case "resolve exact" `Quick test_resolve_exact;
    Alcotest.test_case "resolve dash/underscore" `Quick test_resolve_dash_underscore;
    Alcotest.test_case "resolve truncated" `Quick test_resolve_truncated;
    Alcotest.test_case "resolve ambiguous" `Quick test_resolve_ambiguous;
    Alcotest.test_case "resolve unknown + case" `Quick test_resolve_unknown;
    Alcotest.test_case "default config boots" `Quick test_default_config_boots_and_passes;
    Alcotest.test_case "unknown variable rejected" `Quick
      test_unknown_variable_in_mysqld_rejected;
    Alcotest.test_case "tool sections latent" `Quick test_shared_file_sections_latent;
    Alcotest.test_case "client section latent" `Quick test_client_section_latent;
    Alcotest.test_case "shared tools config boots" `Quick test_shared_tools_config_boots;
    Alcotest.test_case "bad bool rejected" `Quick test_bad_bool_rejected;
    Alcotest.test_case "flag spurious value" `Quick test_flag_accepts_spurious_value;
    Alcotest.test_case "datadir must exist" `Quick test_datadir_must_exist;
    Alcotest.test_case "socket absolute" `Quick test_socket_must_be_absolute;
    Alcotest.test_case "port typo functional" `Quick
      test_port_typo_caught_by_functional_tests;
    Alcotest.test_case "invalid port startup" `Quick test_invalid_port_rejected_at_startup;
    Alcotest.test_case "oob ignored end-to-end" `Quick
      test_out_of_bounds_silently_ignored_end_to_end;
    Alcotest.test_case "duplicate last wins" `Quick test_duplicate_directive_last_wins;
    Alcotest.test_case "mixed case rejected" `Quick test_mixed_case_rejected;
    Alcotest.test_case "truncated names end-to-end" `Quick
      test_truncated_names_accepted_end_to_end;
    Alcotest.test_case "mysqldump latent errors" `Quick
      test_mysqldump_surfaces_latent_errors;
    Alcotest.test_case "orphan option rejected" `Quick test_orphan_option_rejected;
    Alcotest.test_case "missing file" `Quick test_missing_file;
  ]
