module Strutil = Conferr_util.Strutil

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let test_is_prefix () =
  check_b "prefix" true (Strutil.is_prefix ~prefix:"max" "max_connections");
  check_b "equal" true (Strutil.is_prefix ~prefix:"abc" "abc");
  check_b "not prefix" false (Strutil.is_prefix ~prefix:"bx" "abc");
  check_b "longer than string" false (Strutil.is_prefix ~prefix:"abcd" "abc");
  check_b "empty prefix" true (Strutil.is_prefix ~prefix:"" "abc")

let test_drop_prefix () =
  Alcotest.(check (option string))
    "drops" (Some "_connections")
    (Strutil.drop_prefix ~prefix:"max" "max_connections");
  Alcotest.(check (option string)) "none" None (Strutil.drop_prefix ~prefix:"x" "abc")

let test_split_on_first () =
  Alcotest.(check (option (pair string string)))
    "splits at first" (Some ("a", "b=c"))
    (Strutil.split_on_first '=' "a=b=c");
  Alcotest.(check (option (pair string string)))
    "missing separator" None (Strutil.split_on_first '=' "abc")

let test_insert_char () =
  check_s "start" "xabc" (Strutil.insert_char "abc" 0 'x');
  check_s "middle" "axbc" (Strutil.insert_char "abc" 1 'x');
  check_s "end" "abcx" (Strutil.insert_char "abc" 3 'x');
  Alcotest.check_raises "out of range" (Invalid_argument "Strutil.insert_char")
    (fun () -> ignore (Strutil.insert_char "abc" 4 'x'))

let test_delete_char () =
  check_s "start" "bc" (Strutil.delete_char "abc" 0);
  check_s "end" "ab" (Strutil.delete_char "abc" 2);
  Alcotest.check_raises "out of range" (Invalid_argument "Strutil.delete_char")
    (fun () -> ignore (Strutil.delete_char "abc" 3))

let test_replace_char () =
  check_s "replace" "aXc" (Strutil.replace_char "abc" 1 'X')

let test_swap_chars () =
  check_s "swap" "bac" (Strutil.swap_chars "abc" 0);
  check_s "swap end" "acb" (Strutil.swap_chars "abc" 1);
  Alcotest.check_raises "out of range" (Invalid_argument "Strutil.swap_chars")
    (fun () -> ignore (Strutil.swap_chars "abc" 2))

let test_levenshtein () =
  check_i "identical" 0 (Strutil.levenshtein "kitten" "kitten");
  check_i "classic" 3 (Strutil.levenshtein "kitten" "sitting");
  check_i "empty" 5 (Strutil.levenshtein "" "hello");
  check_i "single sub" 1 (Strutil.levenshtein "port" "pork")

let test_damerau () =
  check_i "transposition is one slip" 1 (Strutil.damerau_levenshtein "prot" "port");
  check_i "plain distance agrees otherwise" 1 (Strutil.damerau_levenshtein "port" "pork");
  check_i "identical" 0 (Strutil.damerau_levenshtein "listen" "listen");
  check_i "empty" 4 (Strutil.damerau_levenshtein "" "port")

let test_lines_unlines () =
  Alcotest.(check (list string)) "basic" [ "a"; "b" ] (Strutil.lines "a\nb\n");
  Alcotest.(check (list string)) "no trailing" [ "a"; "b" ] (Strutil.lines "a\nb");
  Alcotest.(check (list string)) "empty middle" [ "a"; ""; "b" ] (Strutil.lines "a\n\nb");
  Alcotest.(check (list string)) "empty text" [] (Strutil.lines "");
  check_s "unlines" "a\nb\n" (Strutil.unlines [ "a"; "b" ]);
  check_s "unlines empty" "" (Strutil.unlines [])

let test_pad_right () =
  check_s "pads" "ab   " (Strutil.pad_right 5 "ab");
  check_s "no-op when long" "abcdef" (Strutil.pad_right 3 "abcdef")

let test_contains_substring () =
  check_b "found" true (Strutil.contains_substring ~needle:"ell" "hello");
  check_b "missing" false (Strutil.contains_substring ~needle:"xyz" "hello");
  check_b "empty needle" true (Strutil.contains_substring ~needle:"" "hello");
  check_b "needle longer" false (Strutil.contains_substring ~needle:"hello!" "hello")

let test_repeat () =
  check_s "three" "ababab" (Strutil.repeat 3 "ab");
  check_s "zero" "" (Strutil.repeat 0 "ab")

let prop_insert_delete_inverse =
  QCheck2.Test.make ~name:"strutil: delete undoes insert"
    QCheck2.Gen.(pair (string_size (int_range 1 20)) (pair (int_range 0 20) printable))
    (fun (s, (i, c)) ->
      QCheck2.assume (i <= String.length s);
      Strutil.delete_char (Strutil.insert_char s i c) i = s)

let prop_damerau_bounded_by_levenshtein =
  QCheck2.Test.make ~name:"strutil: damerau <= levenshtein"
    QCheck2.Gen.(pair (string_size (int_range 0 10)) (string_size (int_range 0 10)))
    (fun (a, b) -> Strutil.damerau_levenshtein a b <= Strutil.levenshtein a b)

let prop_levenshtein_symmetric =
  QCheck2.Test.make ~name:"strutil: levenshtein is symmetric"
    QCheck2.Gen.(pair (string_size (int_range 0 12)) (string_size (int_range 0 12)))
    (fun (a, b) -> Strutil.levenshtein a b = Strutil.levenshtein b a)

let prop_swap_involution =
  QCheck2.Test.make ~name:"strutil: swap_chars is an involution"
    QCheck2.Gen.(pair (string_size (int_range 2 20)) (int_range 0 18))
    (fun (s, i) ->
      QCheck2.assume (i + 1 < String.length s);
      Strutil.swap_chars (Strutil.swap_chars s i) i = s)

let suite =
  [
    Alcotest.test_case "is_prefix" `Quick test_is_prefix;
    Alcotest.test_case "drop_prefix" `Quick test_drop_prefix;
    Alcotest.test_case "split_on_first" `Quick test_split_on_first;
    Alcotest.test_case "insert_char" `Quick test_insert_char;
    Alcotest.test_case "delete_char" `Quick test_delete_char;
    Alcotest.test_case "replace_char" `Quick test_replace_char;
    Alcotest.test_case "swap_chars" `Quick test_swap_chars;
    Alcotest.test_case "levenshtein" `Quick test_levenshtein;
    Alcotest.test_case "damerau-levenshtein" `Quick test_damerau;
    Alcotest.test_case "lines/unlines" `Quick test_lines_unlines;
    Alcotest.test_case "pad_right" `Quick test_pad_right;
    Alcotest.test_case "contains_substring" `Quick test_contains_substring;
    Alcotest.test_case "repeat" `Quick test_repeat;
    QCheck_alcotest.to_alcotest prop_insert_delete_inverse;
    QCheck_alcotest.to_alcotest prop_levenshtein_symmetric;
    QCheck_alcotest.to_alcotest prop_damerau_bounded_by_levenshtein;
    QCheck_alcotest.to_alcotest prop_swap_involution;
  ]
