(* Tests for the BIND simulator: zone-load consistency checks and the
   liveness functional tests (paper §5.4 / Table 3). *)

module B = Suts.Mini_bind
module Sut = Suts.Sut

let default_configs = B.sut.Sut.default_config

let named = List.assoc "named.conf" default_configs

let fwd = List.assoc B.forward_zone_file default_configs

let rev = List.assoc B.reverse_zone_file default_configs

let boot ?(named = named) ?(fwd = fwd) ?(rev = rev) () =
  B.sut.Sut.boot
    [ ("named.conf", named); (B.forward_zone_file, fwd); (B.reverse_zone_file, rev) ]

let boot_ok ?named ?fwd ?rev () =
  match boot ?named ?fwd ?rev () with
  | Ok instance -> instance
  | Error msg -> Alcotest.failf "expected zones to load: %s" msg

let boot_err ?named ?fwd ?rev () =
  match boot ?named ?fwd ?rev () with
  | Ok _ -> Alcotest.fail "expected zone load failure"
  | Error msg -> msg

let tests_pass instance = Sut.all_passed (instance.Sut.run_tests ())

let contains needle msg = Conferr_util.Strutil.contains_substring ~needle msg

let test_default_zones_load () =
  Alcotest.(check bool) "forward and reverse answer" true (tests_pass (boot_ok ()))

let test_missing_ptr_not_detected () =
  (* Table 3 row 1: BIND loads fine and the liveness tests pass *)
  let rev' =
    Conferr_util.Strutil.lines rev
    |> List.filter (fun l -> not (contains "www.example.com." l))
    |> Conferr_util.Strutil.unlines
  in
  Alcotest.(check bool) "undetected" true (tests_pass (boot_ok ~rev:rev' ()))

let test_ptr_to_cname_not_detected () =
  (* Table 3 row 2 *)
  let rev' =
    Conferr_util.Strutil.lines rev
    |> List.map (fun l ->
           if contains "2\tIN\tPTR" l then "2\tIN\tPTR\tftp.example.com." else l)
    |> Conferr_util.Strutil.unlines
  in
  Alcotest.(check bool) "undetected" true (tests_pass (boot_ok ~rev:rev' ()))

let test_cname_collision_detected () =
  (* Table 3 row 3: CNAME at a name owning NS data refuses the zone *)
  let fwd' = fwd ^ "@\tIN\tCNAME\twww.example.com.\n" in
  let msg = boot_err ~fwd:fwd' () in
  Alcotest.(check bool) "refused with reason" true (contains "CNAME" msg)

let test_mx_to_cname_detected () =
  (* Table 3 row 4 *)
  let fwd' =
    Conferr_util.Strutil.lines fwd
    |> List.map (fun l ->
           if contains "MX" l then "@\tIN\tMX\t10 ftp.example.com." else l)
    |> Conferr_util.Strutil.unlines
  in
  let msg = boot_err ~fwd:fwd' () in
  Alcotest.(check bool) "alias named" true (contains "alias" msg)

let test_zone_without_soa_refused () =
  let fwd' =
    Conferr_util.Strutil.lines fwd
    |> List.filter (fun l -> not (contains "SOA" l))
    |> Conferr_util.Strutil.unlines
  in
  let msg = boot_err ~fwd:fwd' () in
  Alcotest.(check bool) "missing SOA" true (contains "SOA" msg)

let test_parse_error_reported () =
  let msg = boot_err ~fwd:"www IN NONSENSE data\n" () in
  Alcotest.(check bool) "dns_master_load" true (contains "dns_master_load" msg)

let test_missing_zone_file () =
  match B.sut.Sut.boot [ ("named.conf", named); (B.forward_zone_file, fwd) ] with
  | Error msg -> Alcotest.(check bool) "reports file" true (contains "not found" msg)
  | Ok _ -> Alcotest.fail "must not boot"

let test_forward_liveness_fails_without_zone_data () =
  (* an empty forward zone (SOA only removed -> refused) vs deleting all
     records: delete everything except directives *)
  let fwd' = "$TTL 86400\n" in
  let msg = boot_err ~fwd:fwd' () in
  Alcotest.(check bool) "refused (no SOA)" true (contains "SOA" msg)

let test_zones_mapping () =
  Alcotest.(check int) "two zones" 2 (List.length B.zones);
  Alcotest.(check (option string)) "forward origin" (Some B.forward_origin)
    (List.assoc_opt B.forward_zone_file B.zones)

let test_named_conf_zone_name_typo_functional () =
  (* zone served under a misspelled origin: the daemon starts but the
     admin's queries for example.com go unanswered *)
  let named' =
    Conferr_util.Strutil.lines named
    |> List.map (fun l ->
           if contains "zone \"example.com\"" l then "zone \"examplle.com\" IN {"
           else l)
    |> Conferr_util.Strutil.unlines
  in
  let instance = boot_ok ~named:named' () in
  Alcotest.(check bool) "functional failure" false (tests_pass instance)

let test_named_conf_file_typo_startup () =
  let named' =
    Conferr_util.Strutil.lines named
    |> List.map (fun l ->
           if contains "file \"example.com.zone\"" l then "  file \"example.con.zone\";"
           else l)
    |> Conferr_util.Strutil.unlines
  in
  let msg = boot_err ~named:named' () in
  Alcotest.(check bool) "file not found" true (contains "not found" msg)

let test_named_conf_unknown_option () =
  let named' =
    Conferr_util.Strutil.lines named
    |> List.map (fun l -> if contains "recursion" l then "  recursoin no;" else l)
    |> Conferr_util.Strutil.unlines
  in
  let msg = boot_err ~named:named' () in
  Alcotest.(check bool) "unknown option" true (contains "unknown option" msg)

let test_named_conf_bad_zone_type () =
  let named' =
    Conferr_util.Strutil.lines named
    |> List.map (fun l -> if contains "type master" l then "  type mastre;" else l)
    |> Conferr_util.Strutil.unlines
  in
  let msg = boot_err ~named:named' () in
  Alcotest.(check bool) "unknown type" true (contains "unknown type" msg)

let test_named_conf_missing_directory () =
  let named' =
    Conferr_util.Strutil.lines named
    |> List.map (fun l ->
           if contains "directory" l then "  directory \"/var/namde\";" else l)
    |> Conferr_util.Strutil.unlines
  in
  let msg = boot_err ~named:named' () in
  Alcotest.(check bool) "directory not found" true (contains "not found" msg)

let suite =
  [
    Alcotest.test_case "default zones load" `Quick test_default_zones_load;
    Alcotest.test_case "missing PTR undetected" `Quick test_missing_ptr_not_detected;
    Alcotest.test_case "PTR to CNAME undetected" `Quick test_ptr_to_cname_not_detected;
    Alcotest.test_case "CNAME collision detected" `Quick test_cname_collision_detected;
    Alcotest.test_case "MX to alias detected" `Quick test_mx_to_cname_detected;
    Alcotest.test_case "zone without SOA" `Quick test_zone_without_soa_refused;
    Alcotest.test_case "parse error" `Quick test_parse_error_reported;
    Alcotest.test_case "missing zone file" `Quick test_missing_zone_file;
    Alcotest.test_case "empty zone refused" `Quick
      test_forward_liveness_fails_without_zone_data;
    Alcotest.test_case "zones mapping" `Quick test_zones_mapping;
    Alcotest.test_case "named.conf zone-name typo" `Quick
      test_named_conf_zone_name_typo_functional;
    Alcotest.test_case "named.conf file typo" `Quick test_named_conf_file_typo_startup;
    Alcotest.test_case "named.conf unknown option" `Quick test_named_conf_unknown_option;
    Alcotest.test_case "named.conf bad zone type" `Quick test_named_conf_bad_zone_type;
    Alcotest.test_case "named.conf missing directory" `Quick
      test_named_conf_missing_directory;
  ]
