module Node = Conftree.Node

let tree =
  Node.root
    [
      Node.section "server"
        [
          Node.directive ~value:"80" "listen";
          Node.directive ~value:"/var/www" "root";
          Node.section "tls" [ Node.directive ~value:"on" "enabled" ];
        ];
      Node.section "client" [ Node.directive ~value:"8080" "listen" ];
      Node.directive ~attrs:[ ("flag", "x") ] "global";
    ]

let select q = Confpath.select_str_exn q tree

let names q = List.map (fun (_, (n : Node.t)) -> n.name) (select q)

let paths q = List.map fst (select q)

let check_names what q expected = Alcotest.(check (list string)) what expected (names q)

let test_root_children () =
  check_names "absolute single name" "/server" [ "server" ];
  check_names "any child" "/*" [ "server"; "client"; "global" ]

let test_descendant () =
  check_names "all listens" "//listen" [ "listen"; "listen" ];
  Alcotest.(check (list (list int)))
    "paths in document order"
    [ [ 0; 0 ]; [ 1; 0 ] ]
    (paths "//listen")

let test_nested_path () =
  check_names "two steps" "/server/tls" [ "tls" ];
  check_names "three steps" "/server/tls/enabled" [ "enabled" ]

let test_kind_predicate () =
  Alcotest.(check int) "all directives" 5
    (List.length (select "//*[kind()='directive']"));
  Alcotest.(check int) "all sections" 3 (List.length (select "//*[kind()='section']"))

let test_value_predicate () =
  check_names "by value" "//*[value()='8080']" [ "listen" ];
  Alcotest.(check (list (list int))) "inside client" [ [ 1; 0 ] ]
    (paths "//*[value()='8080']")

let test_attr_predicate () =
  check_names "attr equality" "//*[@flag='x']" [ "global" ];
  check_names "attr existence" "//*[@flag]" [ "global" ];
  check_names "attr mismatch" "//*[@flag='y']" []

let test_position_predicates () =
  check_names "first child" "/*[1]" [ "server" ];
  check_names "second" "/*[2]" [ "client" ];
  check_names "last()" "/*[last()]" [ "global" ]

let test_parent_and_self () =
  check_names "parent of tls" "/server/tls/.." [ "server" ];
  check_names "self" "/server/." [ "server" ]

let test_boolean_predicates () =
  check_names "and" "//*[kind()='directive' and value()='80']" [ "listen" ];
  Alcotest.(check int) "or" 3
    (List.length (select "//*[value()='80' or value()='8080' or value()='on']"));
  Alcotest.(check int) "not" 3
    (List.length (select "//*[kind()='directive' and not(name()='listen')]"))

let test_contains () =
  check_names "contains on value" "//*[contains(value(),'var')]" [ "root" ];
  check_names "contains on name" "//*[contains(name(),'lis')]" [ "listen"; "listen" ]

let test_neq () = check_names "!=" "/server/*[name()!='listen' and kind()='directive']" [ "root" ]

let test_starts_with () =
  check_names "starts-with on name" "//*[starts-with(name(),'lis')]" [ "listen"; "listen" ];
  check_names "starts-with on value" "//*[starts-with(value(),'/var')]" [ "root" ];
  check_names "no match" "//*[starts-with(name(),'zzz')]" []

let test_dedup () =
  (* //* from multiple contexts must not duplicate nodes *)
  let all = select "//*" in
  let distinct = List.sort_uniq compare (List.map fst all) in
  Alcotest.(check int) "no duplicates" (List.length distinct) (List.length all)

let test_parse_errors () =
  let bad q =
    match Confpath.compile q with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "dangling bracket" true (bad "//a[");
  Alcotest.(check bool) "unterminated string" true (bad "//a[@b='x]");
  Alcotest.(check bool) "stray token" true (bad "//a]b");
  Alcotest.(check bool) "bad char" true (bad "//a{}")

let test_to_string_roundtrip () =
  let queries =
    [ "/server/tls"; "//listen"; "//*[kind()='directive']"; "/*[2]"; "//a[@x='1']" ]
  in
  List.iter
    (fun q ->
      let ast = Confpath.compile_exn q in
      let printed = Confpath.to_string ast in
      let reparsed = Confpath.compile_exn printed in
      Alcotest.(check (list (list int)))
        (Printf.sprintf "roundtrip %s" q)
        (List.map fst (Confpath.select ast tree))
        (List.map fst (Confpath.select reparsed tree)))
    queries

let test_matches () =
  let q = Confpath.compile_exn "//listen" in
  Alcotest.(check bool) "matches" true (Confpath.matches q tree [ 0; 0 ]);
  Alcotest.(check bool) "does not match" false (Confpath.matches q tree [ 0; 1 ])

let suite =
  [
    Alcotest.test_case "root children" `Quick test_root_children;
    Alcotest.test_case "descendant" `Quick test_descendant;
    Alcotest.test_case "nested path" `Quick test_nested_path;
    Alcotest.test_case "kind predicate" `Quick test_kind_predicate;
    Alcotest.test_case "value predicate" `Quick test_value_predicate;
    Alcotest.test_case "attr predicate" `Quick test_attr_predicate;
    Alcotest.test_case "position predicates" `Quick test_position_predicates;
    Alcotest.test_case "parent and self" `Quick test_parent_and_self;
    Alcotest.test_case "boolean predicates" `Quick test_boolean_predicates;
    Alcotest.test_case "contains" `Quick test_contains;
    Alcotest.test_case "neq" `Quick test_neq;
    Alcotest.test_case "starts-with" `Quick test_starts_with;
    Alcotest.test_case "dedup" `Quick test_dedup;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "to_string roundtrip" `Quick test_to_string_roundtrip;
    Alcotest.test_case "matches" `Quick test_matches;
  ]
