(* Tests for the djbdns simulator: syntax-only checking, no referential
   consistency (paper §5.4 / Table 3). *)

module D = Suts.Mini_djbdns
module Sut = Suts.Sut

let data = List.assoc D.data_file D.sut.Sut.default_config

let boot text = D.sut.Sut.boot [ (D.data_file, text) ]

let boot_ok text =
  match boot text with
  | Ok instance -> instance
  | Error msg -> Alcotest.failf "expected tinydns-data to compile: %s" msg

let boot_err text =
  match boot text with
  | Ok _ -> Alcotest.fail "expected a compile failure"
  | Error msg -> msg

let tests_pass instance = Sut.all_passed (instance.Sut.run_tests ())

let contains needle msg = Conferr_util.Strutil.contains_substring ~needle msg

let test_default_data_compiles () =
  Alcotest.(check bool) "both zones answer" true (tests_pass (boot_ok data))

let test_no_consistency_checks () =
  (* CNAME colliding with the NS owner and an MX to an alias both pass:
     tinydns-data checks syntax only (Table 3 rows 3-4: "not found") *)
  let polluted =
    data ^ "Cexample.com:www.example.com\n"
    ^ "@example.com::ftp.example.com:20\n"
  in
  Alcotest.(check bool) "undetected" true (tests_pass (boot_ok polluted))

let test_bad_ip_rejected () =
  let msg = boot_err "=www.example.com:10.0.0\n" in
  Alcotest.(check bool) "IPv4 check" true (contains "IPv4" msg)

let test_unknown_operator_rejected () =
  let msg = boot_err "?www.example.com:10.0.0.1\n" in
  Alcotest.(check bool) "syntax error" true (contains "tinydns-data" msg)

let test_equals_defines_both_mappings () =
  let instance = boot_ok data in
  (* the functional suite covers liveness; check A+PTR via a dedicated
     resolver built the same way *)
  ignore instance;
  match Formats.Tinydns.parse data with
  | Error _ -> Alcotest.fail "parse"
  | Ok tree ->
    let set = Conftree.Config_set.of_list [ (D.data_file, tree) ] in
    let codec = Dnsmodel.Codec.tinydns ~file:D.data_file in
    (match codec.Dnsmodel.Codec.decode set with
     | Error msg -> Alcotest.fail msg
     | Ok records ->
       let zones =
         [
           Dnsmodel.Zone.make ~origin:"example.com." records;
           Dnsmodel.Zone.make ~origin:"0.0.10.in-addr.arpa."
             (List.filter
                (fun (r : Dnsmodel.Record.t) ->
                  Dnsmodel.Name.in_domain ~domain:"0.0.10.in-addr.arpa." r.owner)
                records);
         ]
       in
       let resolver = Dnsmodel.Resolver.create zones in
       Alcotest.(check (list string)) "forward" [ "10.0.0.2" ]
         (Dnsmodel.Resolver.lookup_a resolver "www.example.com");
       Alcotest.(check (list string)) "reverse" [ "www.example.com." ]
         (Dnsmodel.Resolver.lookup_ptr resolver ~ip:"10.0.0.2"))

let test_missing_data_file () =
  match D.sut.Sut.boot [] with
  | Error msg -> Alcotest.(check bool) "reports" true (contains "data" msg)
  | Ok _ -> Alcotest.fail "must not boot"

let test_empty_data_fails_liveness () =
  let instance = boot_ok "# nothing here\n" in
  Alcotest.(check bool) "no zones answer" false (tests_pass instance)

let suite =
  [
    Alcotest.test_case "default compiles" `Quick test_default_data_compiles;
    Alcotest.test_case "no consistency checks" `Quick test_no_consistency_checks;
    Alcotest.test_case "bad IP rejected" `Quick test_bad_ip_rejected;
    Alcotest.test_case "unknown operator" `Quick test_unknown_operator_rejected;
    Alcotest.test_case "= defines A and PTR" `Quick test_equals_defines_both_mappings;
    Alcotest.test_case "missing data file" `Quick test_missing_data_file;
    Alcotest.test_case "empty data" `Quick test_empty_data_fails_liveness;
  ]
