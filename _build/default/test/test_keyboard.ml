module Layout = Keyboard.Layout

let qwerty = Layout.us_qwerty

let test_find () =
  (match Layout.find qwerty 'a' with
   | Some (k, Layout.Plain) -> Alcotest.(check char) "key" 'a' k.Layout.unshifted
   | _ -> Alcotest.fail "expected plain 'a'");
  (match Layout.find qwerty 'A' with
   | Some (k, Layout.Shifted) -> Alcotest.(check char) "key" 'a' k.Layout.unshifted
   | _ -> Alcotest.fail "expected shifted 'A'");
  Alcotest.(check bool) "untypeable" true (Layout.find qwerty '\200' = None)

let test_neighbors_plain () =
  let n = Layout.neighbors qwerty 'g' in
  List.iter
    (fun c ->
      if not (List.mem c n) then
        Alcotest.failf "'%c' should neighbour 'g' (got %s)" c
          (String.concat "" (List.map (String.make 1) n)))
    [ 'f'; 'h'; 't'; 'y'; 'v'; 'b' ];
  Alcotest.(check bool) "no self" false (List.mem 'g' n);
  Alcotest.(check bool) "far keys excluded" false (List.mem 'p' n)

let test_neighbors_preserve_modifier () =
  (* neighbours of an uppercase letter are uppercase (same Shift) *)
  let n = Layout.neighbors qwerty 'G' in
  Alcotest.(check bool) "has F" true (List.mem 'F' n);
  Alcotest.(check bool) "no lowercase" true
    (List.for_all (fun c -> not (c >= 'a' && c <= 'z')) n)

let test_neighbors_digits () =
  let n = Layout.neighbors qwerty '5' in
  Alcotest.(check bool) "digit neighbours" true (List.mem '4' n && List.mem '6' n);
  Alcotest.(check bool) "letter row below" true (List.mem 'r' n || List.mem 't' n)

let test_neighbors_sorted_unique () =
  let n = Layout.neighbors qwerty 'k' in
  Alcotest.(check (list char)) "sorted" (List.sort_uniq Char.compare n) n

let test_shift_variant () =
  Alcotest.(check (option char)) "letter" (Some 'A') (Layout.shift_variant qwerty 'a');
  Alcotest.(check (option char)) "upper" (Some 'a') (Layout.shift_variant qwerty 'A');
  Alcotest.(check (option char)) "digit" (Some '%') (Layout.shift_variant qwerty '5');
  Alcotest.(check (option char)) "symbol" (Some '5') (Layout.shift_variant qwerty '%');
  Alcotest.(check (option char)) "unknown" None (Layout.shift_variant qwerty '\200')

let test_can_type_all_ascii_letters () =
  String.iter
    (fun c ->
      if not (Layout.can_type qwerty c) then Alcotest.failf "cannot type %C" c)
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-=/."

let test_all_chars () =
  let chars = Layout.all_chars qwerty in
  Alcotest.(check bool) "contains letters and symbols" true
    (List.mem 'q' chars && List.mem '~' chars);
  Alcotest.(check (list char)) "sorted unique" (List.sort_uniq Char.compare chars) chars

let test_qwertz_differs () =
  let qwertz = Layout.ch_qwertz in
  (* 'z' and 'y' swap rows between the layouts *)
  let row_of layout c =
    match Layout.find layout c with Some (k, _) -> k.Layout.row | None -> -1
  in
  Alcotest.(check int) "z top row on qwertz" 1 (row_of qwertz 'z');
  Alcotest.(check int) "z bottom row on qwerty" 3 (row_of qwerty 'z');
  Alcotest.(check bool) "different neighbours for t" true
    (Layout.neighbors qwerty 't' <> Layout.neighbors qwertz 't')

let test_make_validates () =
  Alcotest.check_raises "mismatched rows"
    (Invalid_argument "Layout.make: row strings must have equal length") (fun () ->
      ignore (Layout.make ~name:"bad" [ (0, 0.0, "ab", "A") ]))

let prop_shift_involution =
  QCheck2.Test.make ~name:"keyboard: shift_variant is an involution on letters"
    QCheck2.Gen.(char_range 'a' 'z')
    (fun c ->
      match Layout.shift_variant qwerty c with
      | Some s -> Layout.shift_variant qwerty s = Some c
      | None -> false)

let prop_neighbors_symmetric =
  QCheck2.Test.make ~name:"keyboard: lowercase adjacency is symmetric"
    QCheck2.Gen.(pair (char_range 'a' 'z') (char_range 'a' 'z'))
    (fun (a, b) ->
      let n_a = Layout.neighbors qwerty a and n_b = Layout.neighbors qwerty b in
      List.mem b n_a = List.mem a n_b)

let suite =
  [
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "neighbors plain" `Quick test_neighbors_plain;
    Alcotest.test_case "neighbors preserve modifier" `Quick
      test_neighbors_preserve_modifier;
    Alcotest.test_case "neighbors digits" `Quick test_neighbors_digits;
    Alcotest.test_case "neighbors sorted unique" `Quick test_neighbors_sorted_unique;
    Alcotest.test_case "shift variant" `Quick test_shift_variant;
    Alcotest.test_case "can type ascii" `Quick test_can_type_all_ascii_letters;
    Alcotest.test_case "all_chars" `Quick test_all_chars;
    Alcotest.test_case "qwertz differs" `Quick test_qwertz_differs;
    Alcotest.test_case "make validates" `Quick test_make_validates;
    QCheck_alcotest.to_alcotest prop_shift_involution;
    QCheck_alcotest.to_alcotest prop_neighbors_symmetric;
  ]
