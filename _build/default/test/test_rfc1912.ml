module Rfc1912 = Dnsmodel.Rfc1912
module Record = Dnsmodel.Record
module Codec = Dnsmodel.Codec

let records =
  [
    Record.make
      ~tags:[ (Codec.tag_file, "fwd") ]
      "example.com."
      (Record.Soa
         { mname = "ns1.example.com."; rname = "hm.example.com."; serial = 1; refresh = 2;
           retry = 3; expire = 4; minimum = 5 });
    Record.make ~tags:[ (Codec.tag_file, "fwd") ] "example.com."
      (Record.Ns "ns1.example.com.");
    Record.make ~tags:[ (Codec.tag_file, "fwd") ] "ns1.example.com." (Record.A "10.0.0.1");
    Record.make ~tags:[ (Codec.tag_file, "fwd") ] "www.example.com." (Record.A "10.0.0.2");
    Record.make ~tags:[ (Codec.tag_file, "fwd") ] "ftp.example.com."
      (Record.Cname "www.example.com.");
    Record.make ~tags:[ (Codec.tag_file, "fwd") ] "web.example.com."
      (Record.Cname "www.example.com.");
    Record.make ~tags:[ (Codec.tag_file, "fwd") ] "example.com."
      (Record.Mx (10, "mail.example.com."));
    Record.make ~tags:[ (Codec.tag_file, "fwd") ] "mail.example.com." (Record.A "10.0.0.3");
    Record.make ~tags:[ (Codec.tag_file, "rev") ] "2.0.0.10.in-addr.arpa."
      (Record.Ptr "www.example.com.");
  ]

let instances fault = Rfc1912.instantiate fault records

let test_missing_ptr () =
  match instances Rfc1912.Missing_ptr with
  | [ (mutated, descr) ] ->
    Alcotest.(check int) "one fewer record" (List.length records - 1) (List.length mutated);
    Alcotest.(check bool) "names the PTR" true
      (Conferr_util.Strutil.contains_substring ~needle:"2.0.0.10.in-addr.arpa." descr)
  | other -> Alcotest.failf "expected one instance, got %d" (List.length other)

let test_ptr_to_cname () =
  let is = instances Rfc1912.Ptr_to_cname in
  (* one PTR x two aliases *)
  Alcotest.(check int) "instances" 2 (List.length is);
  List.iter
    (fun (mutated, _) ->
      let ptr =
        List.find (fun r -> Record.rtype r = "PTR") mutated
      in
      match Record.target ptr with
      | Some t ->
        Alcotest.(check bool) "points at an alias" true
          (List.mem t [ "ftp.example.com."; "web.example.com." ])
      | None -> Alcotest.fail "ptr lost target")
    is

let test_cname_collision_with_ns () =
  let is = instances Rfc1912.Cname_collision_with_ns in
  Alcotest.(check bool) "at least one instance" true (is <> []);
  List.iter
    (fun (mutated, _) ->
      Alcotest.(check int) "adds one record" (List.length records + 1) (List.length mutated);
      let added = List.nth mutated (List.length mutated - 1) in
      Alcotest.(check string) "a CNAME" "CNAME" (Record.rtype added);
      Alcotest.(check (option string)) "placed in the NS owner's file" (Some "fwd")
        (Record.tag added Codec.tag_file))
    is

let test_mx_to_cname () =
  let is = instances Rfc1912.Mx_to_cname in
  Alcotest.(check int) "one MX x two aliases" 2 (List.length is);
  List.iter
    (fun (mutated, _) ->
      let mx = List.find (fun r -> Record.rtype r = "MX") mutated in
      match mx.Record.rdata with
      | Record.Mx (pref, target) ->
        Alcotest.(check int) "preference kept" 10 pref;
        Alcotest.(check bool) "targets an alias" true
          (List.mem target [ "ftp.example.com."; "web.example.com." ])
      | _ -> Alcotest.fail "not an MX")
    is

let test_cname_chain () =
  let is = instances Rfc1912.Cname_chain in
  Alcotest.(check int) "two aliases chained both ways" 2 (List.length is)

let test_missing_forward_a () =
  match instances Rfc1912.Missing_forward_a with
  | [ (mutated, _) ] ->
    Alcotest.(check bool) "www A removed" true
      (not
         (List.exists
            (fun (r : Record.t) ->
              Record.rtype r = "A" && r.owner = "www.example.com.")
            mutated))
  | other -> Alcotest.failf "expected one instance, got %d" (List.length other)

let test_no_opportunity () =
  let no_alias =
    List.filter (fun r -> Record.rtype r <> "CNAME") records
  in
  Alcotest.(check int) "no aliases, no mx-to-cname" 0
    (List.length (Rfc1912.instantiate Rfc1912.Mx_to_cname no_alias))

let test_paper_faults () =
  Alcotest.(check int) "four rows" 4 (List.length Rfc1912.paper_faults);
  Alcotest.(check string) "first row wording" "Missing PTR"
    (Rfc1912.fault_description (List.hd Rfc1912.paper_faults))

let test_scenarios_end_to_end () =
  let codec = Codec.bind ~zones:Suts.Mini_bind.zones in
  match Conferr.Engine.parse_default_config Suts.Mini_bind.sut with
  | Error msg -> Alcotest.failf "parse: %s" msg
  | Ok base ->
    let scenarios = Rfc1912.scenarios ~codec ~faults:Rfc1912.all_faults base in
    Alcotest.(check bool) "non-empty" true (scenarios <> []);
    List.iter
      (fun (s : Errgen.Scenario.t) ->
        match s.apply base with
        | Ok _ -> ()
        | Error msg -> Alcotest.failf "bind scenario should apply: %s" msg)
      scenarios

let suite =
  [
    Alcotest.test_case "missing PTR" `Quick test_missing_ptr;
    Alcotest.test_case "PTR to CNAME" `Quick test_ptr_to_cname;
    Alcotest.test_case "CNAME/NS collision" `Quick test_cname_collision_with_ns;
    Alcotest.test_case "MX to CNAME" `Quick test_mx_to_cname;
    Alcotest.test_case "CNAME chain" `Quick test_cname_chain;
    Alcotest.test_case "missing forward A" `Quick test_missing_forward_a;
    Alcotest.test_case "no opportunity" `Quick test_no_opportunity;
    Alcotest.test_case "paper faults" `Quick test_paper_faults;
    Alcotest.test_case "scenarios end-to-end" `Quick test_scenarios_end_to_end;
  ]
