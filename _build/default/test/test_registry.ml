module Registry = Formats.Registry

let test_all_present () =
  Alcotest.(check (list string))
    "names"
    [ "ini"; "pgconf"; "apacheconf"; "xmlconf"; "bindzone"; "tinydns"; "namedconf" ]
    (List.map (fun (t : Registry.t) -> t.name) Registry.all)

let test_find () =
  Alcotest.(check bool) "known" true (Registry.find "ini" <> None);
  Alcotest.(check bool) "unknown" true (Registry.find "toml" = None)

let test_round_trip_helper () =
  (match Registry.round_trip Registry.pgconf "a = 1\n" with
   | Ok text -> Alcotest.(check string) "identity-ish" "a = 1\n" text
   | Error msg -> Alcotest.failf "round trip failed: %s" msg);
  Alcotest.(check bool) "parse error propagates" true
    (Result.is_error (Registry.round_trip Registry.xmlconf "not xml"))

let suite =
  [
    Alcotest.test_case "all present" `Quick test_all_present;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "round_trip helper" `Quick test_round_trip_helper;
  ]
