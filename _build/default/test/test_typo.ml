module Typo = Errgen.Typo
module Strutil = Conferr_util.Strutil
module Rng = Conferr_util.Rng

let words_of variants = List.map fst variants

let test_omission () =
  let vs = words_of (Typo.variants Typo.Omission "port") in
  Alcotest.(check (list string)) "all single-char drops"
    [ "ort"; "prt"; "pot"; "por" ]
    vs

let test_omission_short_word () =
  Alcotest.(check (list string)) "single letter is kept" []
    (words_of (Typo.variants Typo.Omission "p"))

let test_insertion_uses_neighbors () =
  let vs = words_of (Typo.variants Typo.Insertion "a") in
  Alcotest.(check bool) "non-empty" true (vs <> []);
  Alcotest.(check bool) "doubling excluded by default (paper model)" false
    (List.mem "aa" vs);
  Alcotest.(check bool) "doubling available opt-in" true
    (List.mem "aa" (words_of (Typo.variants ~include_doubling:true Typo.Insertion "a")));
  List.iter
    (fun w ->
      Alcotest.(check int) "one longer" 2 (String.length w);
      let inserted = if w.[0] = 'a' then w.[1] else w.[0] in
      let neighbours = Keyboard.Layout.neighbors Keyboard.Layout.us_qwerty 'a' in
      Alcotest.(check bool)
        (Printf.sprintf "%c neighbours a" inserted)
        true
        (List.mem inserted neighbours))
    vs

let test_substitution_uses_neighbors () =
  let vs = words_of (Typo.variants Typo.Substitution "ab") in
  List.iter
    (fun w ->
      Alcotest.(check int) "same length" 2 (String.length w);
      Alcotest.(check int) "distance one" 1 (Strutil.levenshtein "ab" w))
    vs;
  let neighbours_a = Keyboard.Layout.neighbors Keyboard.Layout.us_qwerty 'a' in
  Alcotest.(check bool) "first-position substitutions are neighbours" true
    (List.for_all
       (fun w -> w.[1] <> 'b' || List.mem w.[0] neighbours_a)
       vs)

let test_case_alteration () =
  let vs = words_of (Typo.variants Typo.Case_alteration "aB3") in
  Alcotest.(check bool) "flips lower" true (List.mem "AB3" vs);
  Alcotest.(check bool) "flips upper" true (List.mem "ab3" vs);
  Alcotest.(check int) "digits not flipped" 2 (List.length vs)

let test_transposition () =
  let vs = words_of (Typo.variants Typo.Transposition "abc") in
  Alcotest.(check (list string)) "adjacent swaps" [ "bac"; "acb" ] vs

let test_transposition_skips_equal_pair () =
  let vs = words_of (Typo.variants Typo.Transposition "aab") in
  Alcotest.(check (list string)) "identical pair skipped" [ "aba" ] vs

let test_variants_never_include_original () =
  List.iter
    (fun kind ->
      List.iter
        (fun (w, _) ->
          if w = "listen" then
            Alcotest.failf "kind %s produced the original word" (Typo.kind_name kind))
        (Typo.variants kind "listen"))
    Typo.all_kinds

let test_variants_deduplicated () =
  List.iter
    (fun kind ->
      let ws = words_of (Typo.variants kind "abba") in
      Alcotest.(check int)
        (Typo.kind_name kind)
        (List.length (List.sort_uniq compare ws))
        (List.length ws))
    Typo.all_kinds

let test_random_variant_member () =
  let rng = Rng.create 17 in
  for _ = 1 to 50 do
    match Typo.random_variant rng Typo.Substitution "server" with
    | None -> Alcotest.fail "expected a variant"
    | Some (w, _) ->
      let all = words_of (Typo.variants Typo.Substitution "server") in
      Alcotest.(check bool) "member of enumeration" true (List.mem w all)
  done

let test_random_any_exhausts_empty () =
  let rng = Rng.create 17 in
  Alcotest.(check bool) "empty word has no typos" true (Typo.random_any rng "" = None)

let test_random_kind_first () =
  let rng = Rng.create 18 in
  match Typo.random_kind_first rng "value" with
  | None -> Alcotest.fail "expected a typo"
  | Some (w, descr) ->
    Alcotest.(check bool) "differs" true (w <> "value");
    Alcotest.(check bool) "labelled with a kind" true
      (List.exists
         (fun k -> Strutil.is_prefix ~prefix:(Typo.kind_name k) descr)
         Typo.all_kinds)

let test_wordview_scenarios_equivalent_to_direct () =
  (* the two-stage (word view) pipeline and the direct modify path must
     mutate configurations identically *)
  let module Node = Conftree.Node in
  let tree =
    Node.root
      [ Node.section "s" [ Node.directive ~value:"8080" "listen" ] ]
  in
  let set = Conftree.Config_set.of_list [ ("f", tree) ] in
  let via_wordview =
    Typo.wordview_scenarios ~class_prefix:"wv" ~word_type:"directive-name"
      ~kinds:[ Typo.Omission ] ~file:"f" set
  in
  let direct =
    Typo.scenarios ~class_prefix:"direct" ~part:Typo.Name ~kinds:[ Typo.Omission ]
      (Errgen.Template.target ~file:"f" "//*[kind()='directive']")
      set
  in
  Alcotest.(check int) "same scenario count" (List.length direct)
    (List.length via_wordview);
  let results scenarios =
    List.map
      (fun (s : Errgen.Scenario.t) ->
        match s.apply set with
        | Ok mutated ->
          (match Conftree.Config_set.find mutated "f" with
           | Some t ->
             (match Node.get t [ 0; 0 ] with
              | Some d -> d.Node.name
              | None -> "?")
           | None -> "?")
        | Error _ -> "!")
      scenarios
    |> List.sort compare
  in
  Alcotest.(check (list string)) "same mutations" (results direct)
    (results via_wordview)

let test_uniform_substitutions () =
  let vs = Typo.uniform_substitutions "ab" in
  Alcotest.(check bool) "larger than adjacent set" true
    (List.length vs > List.length (Typo.variants Typo.Substitution "ab"));
  List.iter
    (fun (w, _) -> Alcotest.(check int) "distance 1" 1 (Strutil.levenshtein "ab" w))
    vs

let test_dvorak_layout_changes_neighbors () =
  let qwerty_subs = Typo.variants ~layout:Keyboard.Layout.us_qwerty Typo.Substitution "port" in
  let dvorak_subs = Typo.variants ~layout:Keyboard.Layout.us_dvorak Typo.Substitution "port" in
  Alcotest.(check bool) "different slip sets" true
    (List.map fst qwerty_subs <> List.map fst dvorak_subs)

let prop_all_variants_distance_bounded =
  let kind_gen = QCheck2.Gen.oneofl Typo.all_kinds in
  QCheck2.Test.make ~name:"typo: every variant is within edit distance 2"
    QCheck2.Gen.(pair kind_gen (string_size ~gen:(char_range 'a' 'z') (int_range 1 10)))
    (fun (kind, word) ->
      List.for_all
        (fun (w, _) -> Strutil.levenshtein word w <= 2 && w <> word)
        (Typo.variants kind word))

let prop_omission_shrinks =
  QCheck2.Test.make ~name:"typo: omissions are one shorter"
    QCheck2.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 2 12))
    (fun word ->
      List.for_all
        (fun (w, _) -> String.length w = String.length word - 1)
        (Typo.variants Typo.Omission word))

let prop_random_any_nonempty_for_letters =
  QCheck2.Test.make ~name:"typo: random_any succeeds on letter words"
    QCheck2.Gen.(pair int (string_size ~gen:(char_range 'a' 'z') (int_range 2 10)))
    (fun (seed, word) ->
      Typo.random_any (Rng.create seed) word <> None)

let suite =
  [
    Alcotest.test_case "omission" `Quick test_omission;
    Alcotest.test_case "omission short word" `Quick test_omission_short_word;
    Alcotest.test_case "insertion neighbours" `Quick test_insertion_uses_neighbors;
    Alcotest.test_case "substitution neighbours" `Quick test_substitution_uses_neighbors;
    Alcotest.test_case "case alteration" `Quick test_case_alteration;
    Alcotest.test_case "transposition" `Quick test_transposition;
    Alcotest.test_case "transposition equal pair" `Quick
      test_transposition_skips_equal_pair;
    Alcotest.test_case "never original" `Quick test_variants_never_include_original;
    Alcotest.test_case "deduplicated" `Quick test_variants_deduplicated;
    Alcotest.test_case "random variant member" `Quick test_random_variant_member;
    Alcotest.test_case "random any empty" `Quick test_random_any_exhausts_empty;
    Alcotest.test_case "random kind first" `Quick test_random_kind_first;
    Alcotest.test_case "wordview equivalence" `Quick
      test_wordview_scenarios_equivalent_to_direct;
    Alcotest.test_case "uniform substitutions" `Quick test_uniform_substitutions;
    Alcotest.test_case "dvorak layout" `Quick test_dvorak_layout_changes_neighbors;
    QCheck_alcotest.to_alcotest prop_all_variants_distance_bounded;
    QCheck_alcotest.to_alcotest prop_omission_shrinks;
    QCheck_alcotest.to_alcotest prop_random_any_nonempty_for_letters;
  ]
