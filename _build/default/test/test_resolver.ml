module Record = Dnsmodel.Record
module Zone = Dnsmodel.Zone
module Resolver = Dnsmodel.Resolver

let soa mname =
  Record.Soa
    { mname; rname = "hm.example.com."; serial = 1; refresh = 2; retry = 3; expire = 4;
      minimum = 5 }

let forward =
  Zone.make ~origin:"example.com."
    [
      Record.make "example.com." (soa "ns1.example.com.");
      Record.make "example.com." (Record.Ns "ns1.example.com.");
      Record.make "www.example.com." (Record.A "10.0.0.2");
      Record.make "ftp.example.com." (Record.Cname "www.example.com.");
      Record.make "chain.example.com." (Record.Cname "ftp.example.com.");
      Record.make "loop1.example.com." (Record.Cname "loop2.example.com.");
      Record.make "loop2.example.com." (Record.Cname "loop1.example.com.");
      Record.make "example.com." (Record.Mx (10, "mail.example.com."));
      Record.make "mail.example.com." (Record.A "10.0.0.3");
      Record.make "sub.example.com." (Record.Txt "hello");
    ]

let reverse =
  Zone.make ~origin:"0.0.10.in-addr.arpa."
    [
      Record.make "0.0.10.in-addr.arpa." (soa "ns1.example.com.");
      Record.make "2.0.0.10.in-addr.arpa." (Record.Ptr "www.example.com.");
    ]

let resolver = Resolver.create [ forward; reverse ]

let test_simple_a () =
  Alcotest.(check (list string)) "a record" [ "10.0.0.2" ]
    (Resolver.lookup_a resolver "www.example.com")

let test_case_insensitive () =
  Alcotest.(check (list string)) "case folded" [ "10.0.0.2" ]
    (Resolver.lookup_a resolver "WWW.Example.COM.")

let test_cname_chase () =
  Alcotest.(check (list string)) "through one alias" [ "10.0.0.2" ]
    (Resolver.lookup_a resolver "ftp.example.com");
  Alcotest.(check (list string)) "through two aliases" [ "10.0.0.2" ]
    (Resolver.lookup_a resolver "chain.example.com")

let test_cname_answer_includes_chain () =
  match Resolver.query resolver ~name:"ftp.example.com." ~rtype:"A" with
  | Resolver.Answer records ->
    Alcotest.(check (list string)) "chain then target" [ "CNAME"; "A" ]
      (List.map Record.rtype records)
  | _ -> Alcotest.fail "expected an answer"

let test_cname_query_not_chased () =
  match Resolver.query resolver ~name:"ftp.example.com." ~rtype:"CNAME" with
  | Resolver.Answer [ r ] -> Alcotest.(check string) "the cname itself" "CNAME" (Record.rtype r)
  | _ -> Alcotest.fail "expected the CNAME record"

let test_cname_loop () =
  (match Resolver.query resolver ~name:"loop1.example.com." ~rtype:"A" with
   | Resolver.Cname_loop -> ()
   | _ -> Alcotest.fail "expected loop detection")

let test_no_data () =
  match Resolver.query resolver ~name:"sub.example.com." ~rtype:"A" with
  | Resolver.No_data -> ()
  | _ -> Alcotest.fail "expected NoData"

let test_nxdomain () =
  match Resolver.query resolver ~name:"missing.example.com." ~rtype:"A" with
  | Resolver.Nx_domain -> ()
  | _ -> Alcotest.fail "expected NXDOMAIN"

let test_not_authoritative () =
  match Resolver.query resolver ~name:"www.other.org." ~rtype:"A" with
  | Resolver.Not_authoritative -> ()
  | _ -> Alcotest.fail "expected not authoritative"

let test_ptr_lookup () =
  Alcotest.(check (list string)) "reverse" [ "www.example.com." ]
    (Resolver.lookup_ptr resolver ~ip:"10.0.0.2");
  Alcotest.(check (list string)) "missing reverse" []
    (Resolver.lookup_ptr resolver ~ip:"10.0.0.3");
  Alcotest.(check (list string)) "malformed ip" []
    (Resolver.lookup_ptr resolver ~ip:"not-an-ip")

let test_soa_queries () =
  (match Resolver.query resolver ~name:"example.com." ~rtype:"SOA" with
   | Resolver.Answer _ -> ()
   | _ -> Alcotest.fail "forward apex must answer");
  match Resolver.query resolver ~name:"0.0.10.in-addr.arpa." ~rtype:"soa" with
  | Resolver.Answer _ -> ()
  | _ -> Alcotest.fail "reverse apex must answer (case-insensitive type)"

let test_longest_origin_match () =
  let sub =
    Zone.make ~origin:"sub.example.com."
      [
        Record.make "sub.example.com." (soa "ns1.example.com.");
        Record.make "deep.sub.example.com." (Record.A "10.1.1.1");
      ]
  in
  let r = Resolver.create [ forward; sub ] in
  Alcotest.(check (list string)) "delegated zone wins" [ "10.1.1.1" ]
    (Resolver.lookup_a r "deep.sub.example.com.")

let suite =
  [
    Alcotest.test_case "simple A" `Quick test_simple_a;
    Alcotest.test_case "case-insensitive" `Quick test_case_insensitive;
    Alcotest.test_case "cname chase" `Quick test_cname_chase;
    Alcotest.test_case "answer includes chain" `Quick test_cname_answer_includes_chain;
    Alcotest.test_case "cname query not chased" `Quick test_cname_query_not_chased;
    Alcotest.test_case "cname loop" `Quick test_cname_loop;
    Alcotest.test_case "no data" `Quick test_no_data;
    Alcotest.test_case "nxdomain" `Quick test_nxdomain;
    Alcotest.test_case "not authoritative" `Quick test_not_authoritative;
    Alcotest.test_case "ptr lookup" `Quick test_ptr_lookup;
    Alcotest.test_case "soa queries" `Quick test_soa_queries;
    Alcotest.test_case "longest origin match" `Quick test_longest_origin_match;
  ]
