module Wordview = Errgen.Wordview
module Node = Conftree.Node

let tree =
  Node.root
    [
      Node.section "db"
        [ Node.directive ~value:"5432" "port"; Node.comment "# c"; Node.directive "fsync" ];
      Node.section "" [ Node.directive ~value:"x" "anon" ];
    ]

let test_forward_shape () =
  let view = Wordview.of_tree tree in
  (* one line per named section + one per directive *)
  Alcotest.(check int) "lines" 4 (List.length view.Node.children);
  let words = Wordview.words view in
  Alcotest.(check int) "word tokens" 6 (List.length words)

let test_word_types () =
  let view = Wordview.of_tree tree in
  let of_type t = List.length (Wordview.words ~word_type:t view) in
  Alcotest.(check int) "directive names" 3 (of_type "directive-name");
  Alcotest.(check int) "directive values" 2 (of_type "directive-value");
  Alcotest.(check int) "section names" 1 (of_type "section-name")

let test_roundtrip_identity () =
  let view = Wordview.of_tree tree in
  match Wordview.apply_to_tree ~word_view:view tree with
  | Ok t -> Alcotest.(check bool) "unchanged" true (Node.equal t tree)
  | Error msg -> Alcotest.failf "apply failed: %s" msg

let test_mutation_maps_back () =
  let view = Wordview.of_tree tree in
  (* find the word token holding the port value and typo it *)
  let path, _ =
    List.hd (Wordview.words ~word_type:"directive-value" view)
  in
  let view' =
    Option.get
      (Node.update view path (fun w -> { w with Node.value = Some "5433" }))
  in
  match Wordview.apply_to_tree ~word_view:view' tree with
  | Ok t ->
    (match Node.get t [ 0; 0 ] with
     | Some d -> Alcotest.(check (option string)) "value updated" (Some "5433") d.Node.value
     | None -> Alcotest.fail "missing directive")
  | Error msg -> Alcotest.failf "apply failed: %s" msg

let test_name_mutation () =
  let view = Wordview.of_tree tree in
  let path, _ = List.hd (Wordview.words ~word_type:"directive-name" view) in
  let view' =
    Option.get (Node.update view path (fun w -> { w with Node.value = Some "prot" }))
  in
  match Wordview.apply_to_tree ~word_view:view' tree with
  | Ok t ->
    (match Node.get t [ 0; 0 ] with
     | Some d -> Alcotest.(check string) "name updated" "prot" d.Node.name
     | None -> Alcotest.fail "missing")
  | Error msg -> Alcotest.failf "apply failed: %s" msg

let test_dangling_ref_fails () =
  let bogus =
    Node.root
      [
        Node.make ~children:
          [ Node.make ~value:"x" ~attrs:[ ("type", "directive-name"); ("ref", "/9/9") ]
              Node.kind_word ]
          Node.kind_line;
      ]
  in
  Alcotest.(check bool) "error" true
    (Result.is_error (Wordview.apply_to_tree ~word_view:bogus tree))

let suite =
  [
    Alcotest.test_case "forward shape" `Quick test_forward_shape;
    Alcotest.test_case "word types" `Quick test_word_types;
    Alcotest.test_case "roundtrip identity" `Quick test_roundtrip_identity;
    Alcotest.test_case "value mutation maps back" `Quick test_mutation_maps_back;
    Alcotest.test_case "name mutation maps back" `Quick test_name_mutation;
    Alcotest.test_case "dangling ref" `Quick test_dangling_ref_fails;
  ]
