module Campaign = Conferr.Campaign
module Engine = Conferr.Engine
module Rng = Conferr_util.Rng
module Scenario = Errgen.Scenario

let scenarios_for ?(seed = 1) ?(faultload = Campaign.paper_faultload) sut =
  match Engine.parse_default_config sut with
  | Error msg -> Alcotest.failf "parse: %s" msg
  | Ok base -> Campaign.typo_scenarios ~rng:(Rng.create seed) ~faultload sut base

let count_class prefix scenarios =
  List.length
    (List.filter
       (fun (s : Scenario.t) ->
         Conferr_util.Strutil.is_prefix ~prefix s.class_name)
       scenarios)

let test_mysql_counts () =
  let scenarios = scenarios_for Suts.Mini_mysql.sut in
  (* the paper-style default my.cnf: 14 directives in [mysqld] *)
  Alcotest.(check int) "deletions" 14 (count_class "typo/delete" scenarios);
  (* names: 10 sampled directives x 10 typos *)
  Alcotest.(check int) "name typos" 100 (count_class "typo/name" scenarios);
  Alcotest.(check bool) "value typos bounded" true
    (count_class "typo/value" scenarios <= 100)

let test_pg_counts () =
  let scenarios = scenarios_for Suts.Mini_pg.sut in
  Alcotest.(check int) "deletions" 8 (count_class "typo/delete" scenarios);
  Alcotest.(check int) "name typos" 80 (count_class "typo/name" scenarios);
  Alcotest.(check int) "value typos" 80 (count_class "typo/value" scenarios)

let test_deterministic_generation () =
  let a = scenarios_for ~seed:9 Suts.Mini_pg.sut in
  let b = scenarios_for ~seed:9 Suts.Mini_pg.sut in
  Alcotest.(check (list string))
    "same descriptions"
    (List.map (fun (s : Scenario.t) -> s.description) a)
    (List.map (fun (s : Scenario.t) -> s.description) b)

let test_seed_changes_faultload () =
  let a = scenarios_for ~seed:1 Suts.Mini_pg.sut in
  let b = scenarios_for ~seed:2 Suts.Mini_pg.sut in
  Alcotest.(check bool) "different draws" true
    (List.map (fun (s : Scenario.t) -> s.description) a
    <> List.map (fun (s : Scenario.t) -> s.description) b)

let test_no_deletions_option () =
  let faultload = { Campaign.paper_faultload with Campaign.delete_directives = false } in
  let scenarios = scenarios_for ~faultload Suts.Mini_pg.sut in
  Alcotest.(check int) "no deletions" 0 (count_class "typo/delete" scenarios)

let test_ids_unique () =
  let scenarios = scenarios_for Suts.Mini_mysql.sut in
  let ids = List.map (fun (s : Scenario.t) -> s.id) scenarios in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_all_scenarios_apply () =
  match Engine.parse_default_config Suts.Mini_pg.sut with
  | Error msg -> Alcotest.fail msg
  | Ok base ->
    let scenarios =
      Campaign.typo_scenarios ~rng:(Rng.create 3)
        ~faultload:Campaign.paper_faultload Suts.Mini_pg.sut base
    in
    List.iter
      (fun (s : Scenario.t) ->
        match s.apply base with
        | Ok _ -> ()
        | Error msg -> Alcotest.failf "%s failed to apply: %s" s.id msg)
      scenarios

let test_plugin_wrapper () =
  let plugin =
    Campaign.plugin ~faultload:Campaign.paper_faultload Suts.Mini_pg.sut
  in
  match Engine.parse_default_config Suts.Mini_pg.sut with
  | Error msg -> Alcotest.fail msg
  | Ok base ->
    let scenarios = Errgen.Plugin.generate plugin ~rng:(Rng.create 1) base in
    Alcotest.(check bool) "prefixed ids" true
      (List.for_all
         (fun (s : Scenario.t) ->
           Conferr_util.Strutil.is_prefix ~prefix:"typo-postgres" s.id)
         scenarios)

let suite =
  [
    Alcotest.test_case "mysql counts" `Quick test_mysql_counts;
    Alcotest.test_case "pg counts" `Quick test_pg_counts;
    Alcotest.test_case "deterministic" `Quick test_deterministic_generation;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_faultload;
    Alcotest.test_case "no deletions" `Quick test_no_deletions_option;
    Alcotest.test_case "unique ids" `Quick test_ids_unique;
    Alcotest.test_case "all apply" `Quick test_all_scenarios_apply;
    Alcotest.test_case "plugin wrapper" `Quick test_plugin_wrapper;
  ]
