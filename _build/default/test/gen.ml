(* QCheck generators shared across test modules. *)

module Node = Conftree.Node

let name_gen =
  QCheck2.Gen.(
    map (String.concat "_")
      (list_size (int_range 1 3)
         (oneofl [ "port"; "max"; "buffer"; "size"; "log"; "dir"; "cache" ])))

let value_gen =
  QCheck2.Gen.(
    oneof
      [
        map string_of_int (int_range 0 99999);
        oneofl [ "16M"; "512K"; "/var/lib/data"; "on"; "off"; "localhost" ];
      ])

let directive_gen =
  QCheck2.Gen.(
    map2
      (fun name value -> Node.directive ?value name)
      name_gen (option value_gen))

(* A two-level configuration tree: sections of directives with occasional
   comments and blanks — the INI shape. *)
let ini_tree_gen =
  QCheck2.Gen.(
    let line =
      frequency
        [ (6, directive_gen); (1, return (Node.comment "# c")); (1, return Node.blank) ]
    in
    let section =
      map2 (fun name lines -> Node.section name lines) name_gen
        (list_size (int_range 0 6) line)
    in
    map Node.root (list_size (int_range 1 5) section))

(* An arbitrary small tree for structural edit laws. *)
let tree_gen =
  QCheck2.Gen.(
    sized_size (int_range 1 25) @@ fix (fun self n ->
        if n <= 1 then directive_gen
        else
          map2
            (fun name children -> Node.section name children)
            name_gen
            (list_size (int_range 0 4) (self (n / 4)))))

let rooted_tree_gen = QCheck2.Gen.map (fun t -> Node.root [ t ]) tree_gen

(* Random DNS record sets over a fixed origin, for codec properties. *)
let hostname_gen =
  QCheck2.Gen.(
    map
      (fun (a, b) -> Printf.sprintf "%s%d.example.com." a b)
      (pair (oneofl [ "www"; "mail"; "host"; "db"; "app" ]) (int_range 0 9)))

let ip_gen =
  QCheck2.Gen.(
    map
      (fun (c, d) -> Printf.sprintf "10.0.%d.%d" c d)
      (pair (int_range 0 3) (int_range 1 254)))

let record_gen =
  QCheck2.Gen.(
    oneof
      [
        map2
          (fun owner ip ->
            Dnsmodel.Record.make ~tags:[ ("file", "zone") ] owner (Dnsmodel.Record.A ip))
          hostname_gen ip_gen;
        map2
          (fun owner target ->
            Dnsmodel.Record.make ~tags:[ ("file", "zone") ] owner
              (Dnsmodel.Record.Cname target))
          hostname_gen hostname_gen;
        map2
          (fun owner target ->
            Dnsmodel.Record.make ~tags:[ ("file", "zone") ] owner
              (Dnsmodel.Record.Mx (10, target)))
          hostname_gen hostname_gen;
        map2
          (fun owner text ->
            Dnsmodel.Record.make ~tags:[ ("file", "zone") ] owner
              (Dnsmodel.Record.Txt text))
          hostname_gen (oneofl [ "v=spf1 mx -all"; "hello"; "x y z" ]);
        map2
          (fun owner target ->
            Dnsmodel.Record.make ~tags:[ ("file", "zone") ] owner
              (Dnsmodel.Record.Ns target))
          hostname_gen hostname_gen;
      ])

let record_set_gen = QCheck2.Gen.(list_size (int_range 1 15) record_gen)

(* All paths of a tree, in document order. *)
let all_paths tree = Conftree.Node.fold (fun p _ acc -> p :: acc) tree [] |> List.rev

let non_root_paths tree = List.filter (fun p -> p <> []) (all_paths tree)
