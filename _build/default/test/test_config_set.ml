module Config_set = Conftree.Config_set
module Node = Conftree.Node

let tree1 = Node.root [ Node.directive "a" ]
let tree2 = Node.root [ Node.directive "b" ]

let test_of_list_order () =
  let s = Config_set.of_list [ ("x", tree1); ("y", tree2) ] in
  Alcotest.(check (list string)) "insertion order" [ "x"; "y" ] (Config_set.names s)

let test_of_list_replaces () =
  let s = Config_set.of_list [ ("x", tree1); ("x", tree2) ] in
  Alcotest.(check int) "one binding" 1 (Config_set.cardinal s);
  Alcotest.(check bool) "last wins" true
    (match Config_set.find s "x" with Some t -> Node.equal t tree2 | None -> false)

let test_find () =
  let s = Config_set.of_list [ ("x", tree1) ] in
  Alcotest.(check bool) "present" true (Config_set.find s "x" <> None);
  Alcotest.(check bool) "absent" true (Config_set.find s "nope" = None)

let test_update () =
  let s = Config_set.of_list [ ("x", tree1) ] in
  (match Config_set.update s "x" (fun t -> Node.delete t [ 0 ]) with
   | None -> Alcotest.fail "update failed"
   | Some s' ->
     (match Config_set.find s' "x" with
      | Some t -> Alcotest.(check int) "edited" 1 (Node.size t)
      | None -> Alcotest.fail "lost file"));
  Alcotest.(check bool) "missing file" true
    (Config_set.update s "nope" (fun t -> Some t) = None);
  Alcotest.(check bool) "failing edit" true
    (Config_set.update s "x" (fun _ -> None) = None)

let test_map_and_equal () =
  let s = Config_set.of_list [ ("x", tree1); ("y", tree2) ] in
  let s' = Config_set.map (fun _ t -> t) s in
  Alcotest.(check bool) "identity map equal" true (Config_set.equal s s');
  let s'' = Config_set.map (fun _ _ -> Node.root []) s in
  Alcotest.(check bool) "different trees differ" false (Config_set.equal s s'')

let suite =
  [
    Alcotest.test_case "of_list order" `Quick test_of_list_order;
    Alcotest.test_case "of_list replaces" `Quick test_of_list_replaces;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "update" `Quick test_update;
    Alcotest.test_case "map/equal" `Quick test_map_and_equal;
  ]
