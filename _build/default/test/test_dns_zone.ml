module Record = Dnsmodel.Record
module Zone = Dnsmodel.Zone

let soa =
  Record.Soa
    { mname = "ns1.example.com."; rname = "hm.example.com."; serial = 1; refresh = 2;
      retry = 3; expire = 4; minimum = 5 }

let base_records =
  [
    Record.make "example.com." soa;
    Record.make "example.com." (Record.Ns "ns1.example.com.");
    Record.make "ns1.example.com." (Record.A "10.0.0.1");
    Record.make "www.example.com." (Record.A "10.0.0.2");
    Record.make "ftp.example.com." (Record.Cname "www.example.com.");
    Record.make "example.com." (Record.Mx (10, "mail.example.com."));
    Record.make "mail.example.com." (Record.A "10.0.0.3");
  ]

let zone = Zone.make ~origin:"example.com." base_records

let test_rtype () =
  Alcotest.(check (list string))
    "types"
    [ "SOA"; "NS"; "A"; "A"; "CNAME"; "MX"; "A" ]
    (List.map Record.rtype base_records)

let test_target () =
  Alcotest.(check (option string)) "cname target" (Some "www.example.com.")
    (Record.target (List.nth base_records 4));
  Alcotest.(check (option string)) "a has none" None
    (Record.target (List.nth base_records 2))

let test_tags () =
  let r = Record.make ~tags:[ ("file", "zone1") ] "a.example.com." (Record.A "1.2.3.4") in
  Alcotest.(check (option string)) "tag" (Some "zone1") (Record.tag r "file");
  let r2 = Record.with_tag r "file" "zone2" in
  Alcotest.(check (option string)) "replaced" (Some "zone2") (Record.tag r2 "file");
  Alcotest.(check bool) "equal ignores tags" true (Record.equal r r2)

let test_find () =
  Alcotest.(check int) "records at apex" 3
    (List.length (Zone.find zone ~owner:"example.com."));
  Alcotest.(check int) "by type" 1
    (List.length (Zone.find_rtype zone ~owner:"example.com." ~rtype:"MX"));
  Alcotest.(check int) "case-insensitive lookup" 1
    (List.length (Zone.find zone ~owner:"WWW.EXAMPLE.COM."))

let test_owners_order () =
  Alcotest.(check (list string))
    "distinct first-appearance"
    [ "example.com."; "ns1.example.com."; "www.example.com."; "ftp.example.com.";
      "mail.example.com." ]
    (Zone.owners zone)

let test_soa () =
  Alcotest.(check bool) "found" true (Zone.soa zone <> None);
  let no_soa = Zone.make ~origin:"example.com." (List.tl base_records) in
  Alcotest.(check bool) "missing" true (Zone.soa no_soa = None)

let test_add_remove_replace () =
  let extra = Record.make "new.example.com." (Record.A "10.0.0.9") in
  let z = Zone.add zone extra in
  Alcotest.(check int) "added" (List.length base_records + 1) (List.length z.Zone.records);
  let z = Zone.remove z extra in
  Alcotest.(check int) "removed" (List.length base_records) (List.length z.Zone.records);
  let old_record = List.nth base_records 3 in
  let fresh = Record.make "www.example.com." (Record.A "10.9.9.9") in
  let z = Zone.replace zone ~old_record fresh in
  Alcotest.(check bool) "replaced" true
    (List.exists (fun r -> Record.equal r fresh) z.Zone.records)

let test_validate_clean () =
  Alcotest.(check int) "no problems" 0 (List.length (Zone.validate zone))

let test_validate_cname_collision () =
  let bad = Zone.add zone (Record.make "www.example.com." (Record.Cname "ns1.example.com.")) in
  Alcotest.(check bool) "collision reported" true
    (List.exists
       (function Zone.Cname_and_other_data o -> o = "www.example.com." | _ -> false)
       (Zone.validate bad))

let test_validate_mx_alias () =
  let bad =
    Zone.add
      (Zone.remove zone (List.nth base_records 5))
      (Record.make "example.com." (Record.Mx (10, "ftp.example.com.")))
  in
  Alcotest.(check bool) "mx alias reported" true
    (List.exists
       (function Zone.Mx_target_is_alias _ -> true | _ -> false)
       (Zone.validate bad))

let test_validate_ns_alias () =
  let bad =
    Zone.add zone (Record.make "sub.example.com." (Record.Ns "ftp.example.com."))
  in
  Alcotest.(check bool) "ns alias reported" true
    (List.exists
       (function Zone.Ns_target_is_alias _ -> true | _ -> false)
       (Zone.validate bad))

let test_validate_missing_soa () =
  let no_soa = Zone.make ~origin:"example.com." (List.tl base_records) in
  Alcotest.(check bool) "missing soa reported" true
    (List.mem Zone.Missing_soa (Zone.validate no_soa))

let suite =
  [
    Alcotest.test_case "rtype" `Quick test_rtype;
    Alcotest.test_case "target" `Quick test_target;
    Alcotest.test_case "tags" `Quick test_tags;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "owners order" `Quick test_owners_order;
    Alcotest.test_case "soa" `Quick test_soa;
    Alcotest.test_case "add/remove/replace" `Quick test_add_remove_replace;
    Alcotest.test_case "validate clean" `Quick test_validate_clean;
    Alcotest.test_case "validate cname collision" `Quick test_validate_cname_collision;
    Alcotest.test_case "validate mx alias" `Quick test_validate_mx_alias;
    Alcotest.test_case "validate ns alias" `Quick test_validate_ns_alias;
    Alcotest.test_case "validate missing soa" `Quick test_validate_missing_soa;
  ]
