module Path = Conftree.Path

let path = Alcotest.testable Path.pp Path.equal

let test_parent () =
  Alcotest.(check (option (pair path int)))
    "root has no parent" None (Path.parent []);
  Alcotest.(check (option (pair path int)))
    "splits last" (Some ([ 1; 2 ], 3))
    (Path.parent [ 1; 2; 3 ])

let test_child () = Alcotest.check path "extends" [ 1; 2 ] (Path.child [ 1 ] 2)

let test_prefix () =
  Alcotest.(check bool) "is prefix" true (Path.is_prefix ~prefix:[ 1 ] [ 1; 2 ]);
  Alcotest.(check bool) "self prefix" true (Path.is_prefix ~prefix:[ 1 ] [ 1 ]);
  Alcotest.(check bool) "not prefix" false (Path.is_prefix ~prefix:[ 2 ] [ 1; 2 ]);
  Alcotest.(check bool)
    "strict excludes self" false
    (Path.is_strict_prefix ~prefix:[ 1 ] [ 1 ]);
  Alcotest.(check bool)
    "strict includes descendant" true
    (Path.is_strict_prefix ~prefix:[ 1 ] [ 1; 0 ])

let test_compare_document_order () =
  Alcotest.(check bool) "parent before child" true (Path.compare [ 1 ] [ 1; 0 ] < 0);
  Alcotest.(check bool) "sibling order" true (Path.compare [ 1; 0 ] [ 1; 1 ] < 0);
  Alcotest.(check int) "equal" 0 (Path.compare [ 2; 3 ] [ 2; 3 ])

let check_adjust_delete name deleted p expected =
  Alcotest.(check (option path)) name expected (Path.adjust_after_delete ~deleted p)

let test_adjust_after_delete () =
  check_adjust_delete "deleted node itself" [ 1 ] [ 1 ] None;
  check_adjust_delete "inside deleted subtree" [ 1 ] [ 1; 0 ] None;
  check_adjust_delete "later sibling shifts" [ 1 ] [ 2 ] (Some [ 1 ]);
  check_adjust_delete "earlier sibling unchanged" [ 1 ] [ 0 ] (Some [ 0 ]);
  check_adjust_delete "unrelated branch" [ 1; 0 ] [ 2; 5 ] (Some [ 2; 5 ]);
  check_adjust_delete "ancestor survives" [ 1; 0 ] [ 1 ] (Some [ 1 ]);
  check_adjust_delete "deep shift" [ 1; 0 ] [ 1; 2; 3 ] (Some [ 1; 1; 3 ]);
  check_adjust_delete "whole tree" [] [ 0 ] None

let test_adjust_after_insert () =
  Alcotest.check path "pushes later siblings" [ 2 ]
    (Path.adjust_after_insert ~inserted:[ 1 ] [ 1 ]);
  Alcotest.check path "earlier sibling unchanged" [ 0 ]
    (Path.adjust_after_insert ~inserted:[ 1 ] [ 0 ]);
  Alcotest.check path "deep shift" [ 1; 3; 2 ]
    (Path.adjust_after_insert ~inserted:[ 1; 2 ] [ 1; 2; 2 ])

let test_to_string () =
  Alcotest.(check string) "root" "/" (Path.to_string []);
  Alcotest.(check string) "nested" "/0/3/1" (Path.to_string [ 0; 3; 1 ])

let suite =
  [
    Alcotest.test_case "parent" `Quick test_parent;
    Alcotest.test_case "child" `Quick test_child;
    Alcotest.test_case "prefix" `Quick test_prefix;
    Alcotest.test_case "compare" `Quick test_compare_document_order;
    Alcotest.test_case "adjust after delete" `Quick test_adjust_after_delete;
    Alcotest.test_case "adjust after insert" `Quick test_adjust_after_insert;
    Alcotest.test_case "to_string" `Quick test_to_string;
  ]
