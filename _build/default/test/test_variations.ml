module Variations = Errgen.Variations
module Scenario = Errgen.Scenario
module Node = Conftree.Node
module Config_set = Conftree.Config_set
module Rng = Conferr_util.Rng

let tree =
  Node.root
    [
      Node.section "one"
        [
          Node.directive ~attrs:[ ("sep", " = ") ] ~value:"1" "alpha";
          Node.directive ~attrs:[ ("sep", "=") ] ~value:"2" "beta";
          Node.comment "# keep me";
        ];
      Node.section "two" [ Node.directive ~attrs:[ ("sep", "=") ] ~value:"3" "gamma" ];
      Node.section "three" [ Node.directive "delta" ];
    ]

let base = Config_set.of_list [ ("f", tree) ]

let apply_class ?(seed = 5) class_name =
  let rng = Rng.create seed in
  match Variations.scenarios ~rng ~count:1 class_name ~file:"f" base with
  | [ s ] ->
    (match s.Scenario.apply base with
     | Ok set -> Option.get (Config_set.find set "f")
     | Error msg -> Alcotest.failf "variation failed: %s" msg)
  | other -> Alcotest.failf "expected one scenario, got %d" (List.length other)

let directive_names t =
  Node.find_all (fun n -> n.Node.kind = Node.kind_directive) t
  |> List.map (fun (_, (n : Node.t)) -> n.name)

let section_names t =
  List.filter_map
    (fun (n : Node.t) -> if n.kind = Node.kind_section then Some n.name else None)
    t.Node.children

let test_reorder_sections_multiset () =
  let t = apply_class Variations.Reorder_sections in
  Alcotest.(check (list string))
    "same sections" [ "one"; "three"; "two" ]
    (List.sort compare (section_names t));
  Alcotest.(check (list string))
    "directives follow their section" (directive_names tree |> List.sort compare)
    (directive_names t |> List.sort compare)

let test_reorder_directives_keeps_comments () =
  (* comments stay in place; only directives shuffle *)
  let t = apply_class ~seed:3 Variations.Reorder_directives in
  match Node.get t [ 0; 2 ] with
  | Some n -> Alcotest.(check string) "comment still third" Node.kind_comment n.Node.kind
  | None -> Alcotest.fail "missing"

let test_spacing_only_changes_sep () =
  let t = apply_class Variations.Separator_spacing in
  Alcotest.(check (list string)) "names unchanged" (directive_names tree) (directive_names t);
  Node.fold
    (fun _ n () ->
      if n.Node.kind = Node.kind_directive && n.Node.value <> None then
        match Node.attr n "sep" with
        | Some sep ->
          Alcotest.(check bool) "separator is an = variant" true (String.contains sep '=')
        | None -> Alcotest.fail "sep attribute missing")
    t ()

let test_mixed_case_same_letters () =
  let t = apply_class Variations.Mixed_case_names in
  List.iter2
    (fun original mutated ->
      Alcotest.(check string) "case-folded equal" (String.lowercase_ascii original)
        (String.lowercase_ascii mutated))
    (directive_names tree) (directive_names t)

let test_truncation_unambiguous () =
  let t = apply_class Variations.Truncated_names in
  let originals = directive_names tree in
  List.iter2
    (fun original mutated ->
      Alcotest.(check bool)
        (Printf.sprintf "%s is a prefix of %s" mutated original)
        true
        (Conferr_util.Strutil.is_prefix ~prefix:mutated original);
      (* the truncated name must identify its original uniquely *)
      let matching =
        List.filter (Conferr_util.Strutil.is_prefix ~prefix:mutated) originals
      in
      Alcotest.(check (list string)) "unambiguous" [ original ] matching)
    originals (directive_names t)

let test_shortest_unambiguous_prefix () =
  let among = [ "max_allowed_packet"; "max_connections"; "port" ] in
  Alcotest.(check (option int)) "max_a" (Some 5)
    (Variations.shortest_unambiguous_prefix "max_allowed_packet" ~among);
  Alcotest.(check (option int)) "p" (Some 1)
    (Variations.shortest_unambiguous_prefix "port" ~among);
  Alcotest.(check (option int)) "name that prefixes another" None
    (Variations.shortest_unambiguous_prefix "max" ~among:[ "max"; "maximum" ]);
  Alcotest.(check (option int)) "single char" None
    (Variations.shortest_unambiguous_prefix "x" ~among:[ "x" ])

let test_classes_not_applicable () =
  let flat = Config_set.of_list [ ("f", Node.root [ Node.directive "only" ]) ] in
  let rng = Rng.create 1 in
  Alcotest.(check int) "no sections to reorder" 0
    (List.length (Variations.scenarios ~rng ~count:5 Variations.Reorder_sections ~file:"f" flat));
  Alcotest.(check int) "no value separators" 0
    (List.length
       (Variations.scenarios ~rng ~count:5 Variations.Separator_spacing ~file:"f" flat))

let test_scenarios_are_independent () =
  (* Applying one scenario must not change what another produces. *)
  let rng = Rng.create 11 in
  let scenarios =
    Variations.scenarios ~rng ~count:2 Variations.Reorder_sections ~file:"f" base
  in
  match scenarios with
  | [ s1; s2 ] ->
    let first_result = s1.Scenario.apply base in
    let second_before = s2.Scenario.apply base in
    ignore first_result;
    let second_after = s2.Scenario.apply base in
    (match (second_before, second_after) with
     | Ok a, Ok b ->
       Alcotest.(check bool) "deterministic replay" true (Config_set.equal a b)
     | _ -> Alcotest.fail "scenario failed")
  | _ -> Alcotest.fail "expected two scenarios"

let test_class_titles () =
  Alcotest.(check int) "five classes" 5 (List.length Variations.all_classes);
  Alcotest.(check string) "title" "Order of sections"
    (Variations.class_title Variations.Reorder_sections)

let suite =
  [
    Alcotest.test_case "reorder sections multiset" `Quick test_reorder_sections_multiset;
    Alcotest.test_case "reorder keeps comments" `Quick
      test_reorder_directives_keeps_comments;
    Alcotest.test_case "spacing only sep" `Quick test_spacing_only_changes_sep;
    Alcotest.test_case "mixed case letters" `Quick test_mixed_case_same_letters;
    Alcotest.test_case "truncation unambiguous" `Quick test_truncation_unambiguous;
    Alcotest.test_case "shortest prefix" `Quick test_shortest_unambiguous_prefix;
    Alcotest.test_case "not applicable" `Quick test_classes_not_applicable;
    Alcotest.test_case "independent scenarios" `Quick test_scenarios_are_independent;
    Alcotest.test_case "class titles" `Quick test_class_titles;
  ]
