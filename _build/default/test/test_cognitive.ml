module Cognitive = Errgen.Cognitive
module Scenario = Errgen.Scenario
module Rng = Conferr_util.Rng

let test_classification () =
  let check class_name expected =
    Alcotest.(check bool) class_name true (Cognitive.of_class_name class_name = expected)
  in
  check "typo/omission" (Some Cognitive.Skill_based);
  check "typo/delete-directive" (Some Cognitive.Skill_based);
  check "structural/omit-directive" (Some Cognitive.Skill_based);
  check "structural/duplicate-directive" (Some Cognitive.Skill_based);
  check "structural/borrow-foreign" (Some Cognitive.Rule_based);
  check "variation/Order of sections" (Some Cognitive.Rule_based);
  check "semantic/missing-ptr" (Some Cognitive.Knowledge_based);
  check "custom/value-swap" None

let test_gems_shares () =
  let total =
    List.fold_left
      (fun acc l -> acc +. Cognitive.gems_share l)
      0.
      [ Cognitive.Skill_based; Cognitive.Rule_based; Cognitive.Knowledge_based ]
  in
  Alcotest.(check bool) "shares sum to 1" true (abs_float (total -. 1.0) < 1e-9)

let dummy prefix n =
  List.init n (fun i ->
      Scenario.make
        ~id:(Printf.sprintf "%s-%d" prefix i)
        ~class_name:prefix ~description:prefix
        (fun set -> Ok set))

let test_weighted_mix_proportions () =
  let rng = Rng.create 3 in
  let mix =
    Cognitive.weighted_mix ~rng ~total:100 ~skill:(dummy "typo/x" 200)
      ~rule:(dummy "variation/x" 200)
      ~knowledge:(dummy "semantic/x" 200)
  in
  let count prefix =
    List.length
      (List.filter
         (fun (s : Scenario.t) -> s.class_name = prefix)
         mix)
  in
  Alcotest.(check int) "60 skill" 60 (count "typo/x");
  Alcotest.(check int) "30 rule" 30 (count "variation/x");
  Alcotest.(check int) "10 knowledge" 10 (count "semantic/x")

let test_weighted_mix_small_pools () =
  let rng = Rng.create 3 in
  let mix =
    Cognitive.weighted_mix ~rng ~total:100 ~skill:(dummy "typo/x" 5)
      ~rule:(dummy "variation/x" 2) ~knowledge:[]
  in
  Alcotest.(check int) "takes everything available" 7 (List.length mix)

let test_profile_rendering_by_level () =
  let entry class_name outcome =
    { Conferr.Profile.scenario_id = "x"; class_name; description = "d"; outcome }
  in
  let profile =
    Conferr.Profile.make ~sut_name:"demo"
      [
        entry "typo/omission" (Conferr.Outcome.Startup_failure "e");
        entry "typo/omission" Conferr.Outcome.Passed;
        entry "variation/spacing" Conferr.Outcome.Passed;
        entry "semantic/missing-ptr" Conferr.Outcome.Passed;
        entry "custom/thing" Conferr.Outcome.Passed;
      ]
  in
  let text = Conferr.Profile.render_by_cognitive_level profile in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true
        (Conferr_util.Strutil.contains_substring ~needle text))
    [ "skill-based"; "rule-based"; "knowledge-based"; "unclassified" ]

let test_csv_export () =
  let entry =
    {
      Conferr.Profile.scenario_id = "t-1";
      class_name = "typo/name";
      description = "substitute 'a', with \"quotes\"";
      outcome = Conferr.Outcome.Passed;
    }
  in
  let csv = Conferr.Profile.to_csv (Conferr.Profile.make ~sut_name:"x" [ entry ]) in
  Alcotest.(check bool) "header" true
    (Conferr_util.Strutil.is_prefix ~prefix:"scenario_id,outcome" csv);
  Alcotest.(check bool) "quoted field" true
    (Conferr_util.Strutil.contains_substring ~needle:"\"substitute 'a', with \"\"quotes\"\"\"" csv)

let suite =
  [
    Alcotest.test_case "classification" `Quick test_classification;
    Alcotest.test_case "gems shares" `Quick test_gems_shares;
    Alcotest.test_case "weighted mix proportions" `Quick test_weighted_mix_proportions;
    Alcotest.test_case "weighted mix small pools" `Quick test_weighted_mix_small_pools;
    Alcotest.test_case "profile by level" `Quick test_profile_rendering_by_level;
    Alcotest.test_case "csv export" `Quick test_csv_export;
  ]
