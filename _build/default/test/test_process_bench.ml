module Process_bench = Conferr.Process_bench
module Rng = Conferr_util.Rng

let run ?(experiments = 10) ?(proximity = 2) ~sut ~config tasks =
  match
    Process_bench.run ~rng:(Rng.create 21) ~experiments ~proximity ~sut ~config
      ~tasks ()
  with
  | Ok t -> t
  | Error msg -> Alcotest.failf "benchmark failed: %s" msg

let pg_config = ("postgresql.conf", Suts.Mini_pg.full_config)

let test_runs_all_tasks () =
  let t =
    run ~sut:Suts.Mini_pg.sut ~config:pg_config Conferr.Paper.postgres_tasks
  in
  Alcotest.(check int) "one result per task" (List.length Conferr.Paper.postgres_tasks)
    (List.length t.Process_bench.task_results);
  List.iter
    (fun (r : Process_bench.task_result) ->
      Alcotest.(check int) "all experiments ran" 10 r.injections;
      Alcotest.(check bool) "detected bounded" true (r.detected <= r.injections))
    t.Process_bench.task_results

let test_missing_directive_zero_injections () =
  let t =
    run ~sut:Suts.Mini_pg.sut ~config:pg_config
      [ { Process_bench.directive = "not_in_the_file"; new_value = "1" } ]
  in
  match t.Process_bench.task_results with
  | [ r ] -> Alcotest.(check int) "zero injections" 0 r.Process_bench.injections
  | _ -> Alcotest.fail "expected one result"

let test_invalid_task_rejected () =
  match
    Process_bench.run ~rng:(Rng.create 1) ~sut:Suts.Mini_pg.sut ~config:pg_config
      ~tasks:[ { Process_bench.directive = "max_connections"; new_value = "zero" } ]
      ()
  with
  | Error msg ->
    Alcotest.(check bool) "explains" true
      (Conferr_util.Strutil.contains_substring ~needle:"not a valid edit" msg)
  | Ok _ -> Alcotest.fail "an invalid edit is a benchmark bug, not a fault"

let test_detection_rate () =
  let t =
    run ~sut:Suts.Mini_pg.sut ~config:pg_config Conferr.Paper.postgres_tasks
  in
  let rate = Process_bench.detection_rate t in
  Alcotest.(check bool) "in [0,1]" true (rate >= 0. && rate <= 1.)

let test_postgres_beats_mysql () =
  (* the §5.5 conclusion holds under the process benchmark too *)
  let pg = run ~sut:Suts.Mini_pg.sut ~config:pg_config Conferr.Paper.postgres_tasks in
  let mysql =
    run ~sut:Suts.Mini_mysql.sut
      ~config:("my.cnf", Suts.Mini_mysql.full_config)
      Conferr.Paper.mysql_tasks
  in
  Alcotest.(check bool) "postgres more resilient" true
    (Process_bench.detection_rate pg > Process_bench.detection_rate mysql)

let test_render () =
  let t =
    run ~sut:Suts.Mini_pg.sut ~config:pg_config
      [ List.hd Conferr.Paper.postgres_tasks ]
  in
  let text = Process_bench.render t in
  Alcotest.(check bool) "mentions the task" true
    (Conferr_util.Strutil.contains_substring ~needle:"max_connections" text)

let test_proximity_zero_targets_edited_directive () =
  let t =
    run ~proximity:0 ~sut:Suts.Mini_pg.sut ~config:pg_config
      [ { Process_bench.directive = "shared_buffers"; new_value = "32MB" } ]
  in
  match t.Process_bench.task_results with
  | [ r ] -> Alcotest.(check int) "ran" 10 r.Process_bench.injections
  | _ -> Alcotest.fail "expected one result"

let suite =
  [
    Alcotest.test_case "runs all tasks" `Quick test_runs_all_tasks;
    Alcotest.test_case "missing directive" `Quick test_missing_directive_zero_injections;
    Alcotest.test_case "invalid task rejected" `Quick test_invalid_task_rejected;
    Alcotest.test_case "detection rate" `Quick test_detection_rate;
    Alcotest.test_case "postgres beats mysql" `Quick test_postgres_beats_mysql;
    Alcotest.test_case "render" `Quick test_render;
    Alcotest.test_case "proximity zero" `Quick test_proximity_zero_targets_edited_directive;
  ]
