module Tinydns = Formats.Tinydns
module Node = Conftree.Node

let parse_exn text =
  match Tinydns.parse text with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse error: %s" (Formats.Parse_error.to_string e)

let sample =
  String.concat "\n"
    [
      "# comment";
      "=www.example.com:10.0.0.2:86400";
      "+mail.example.com:10.0.0.3";
      "Cftp.example.com:www.example.com";
      "@example.com::mail.example.com:10";
      "";
    ]

let records tree =
  Node.find_all (fun n -> n.Node.kind = Node.kind_record) tree |> List.map snd

let test_parse_ops () =
  let t = parse_exn sample in
  Alcotest.(check (list (option string)))
    "operators"
    [ Some "="; Some "+"; Some "C"; Some "@" ]
    (List.map (fun (n : Node.t) -> Node.attr n "op") (records t))

let test_names_and_fields () =
  let t = parse_exn sample in
  match records t with
  | [ a; _; _; mx ] ->
    Alcotest.(check string) "fqdn" "www.example.com" a.Node.name;
    Alcotest.(check (list string)) "fields" [ "10.0.0.2"; "86400" ] (Tinydns.fields a);
    Alcotest.(check (list string))
      "mx fields with empty ip"
      [ ""; "mail.example.com"; "10" ]
      (Tinydns.fields mx)
  | _ -> Alcotest.fail "expected four records"

let test_comment_and_disabled () =
  let t = parse_exn "# c\n-=off.example.com:1.2.3.4\n" in
  Alcotest.(check (list string))
    "kinds"
    [ Node.kind_comment; Node.kind_comment ]
    (List.map (fun (n : Node.t) -> n.kind) t.Node.children)

let test_unknown_op_rejected () =
  Alcotest.(check bool) "rejected" true (Result.is_error (Tinydns.parse "?bad:1\n"))

let test_roundtrip_bytes () =
  let t = parse_exn sample in
  match Tinydns.serialize t with
  | Ok text -> Alcotest.(check string) "byte-faithful" sample text
  | Error msg -> Alcotest.failf "serialize: %s" msg

let test_entry_builder_roundtrip () =
  let e = Tinydns.entry ~op:'=' ~name:"a.example.com" [ "10.0.0.7"; "3600" ] in
  let tree = Node.root [ e ] in
  match Tinydns.serialize tree with
  | Ok text -> Alcotest.(check string) "line" "=a.example.com:10.0.0.7:3600\n" text
  | Error msg -> Alcotest.failf "serialize: %s" msg

let test_serialize_rejects_foreign_kinds () =
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Tinydns.serialize (Node.root [ Node.section "s" [] ])));
  let no_op = Node.make ~name:"x" Node.kind_record in
  Alcotest.(check bool) "record without operator" true
    (Result.is_error (Tinydns.serialize (Node.root [ no_op ])))

let test_empty_lines () =
  let t = parse_exn "\n\n" in
  Alcotest.(check int) "blanks preserved" 2 (List.length t.Node.children)

let suite =
  [
    Alcotest.test_case "parse ops" `Quick test_parse_ops;
    Alcotest.test_case "names and fields" `Quick test_names_and_fields;
    Alcotest.test_case "comments and disabled" `Quick test_comment_and_disabled;
    Alcotest.test_case "unknown op rejected" `Quick test_unknown_op_rejected;
    Alcotest.test_case "roundtrip bytes" `Quick test_roundtrip_bytes;
    Alcotest.test_case "entry builder" `Quick test_entry_builder_roundtrip;
    Alcotest.test_case "foreign kinds rejected" `Quick
      test_serialize_rejects_foreign_kinds;
    Alcotest.test_case "empty lines" `Quick test_empty_lines;
  ]
