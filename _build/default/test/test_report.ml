module Report = Conferr.Report

let contains needle msg = Conferr_util.Strutil.contains_substring ~needle msg

let pg_report = lazy (Report.generate ~seed:5 Suts.Mini_pg.sut)

let test_sections_present () =
  let r = Lazy.force pg_report in
  let titles = List.map (fun (s : Report.section) -> s.title) r.Report.sections in
  Alcotest.(check bool) "typos" true (List.mem "Resilience to typos" titles);
  Alcotest.(check bool) "cognitive" true (List.mem "Outcomes by cognitive level" titles);
  Alcotest.(check bool) "variations" true
    (List.mem "Structural variations accepted" titles)

let test_render () =
  let text = Report.render (Lazy.force pg_report) in
  Alcotest.(check bool) "names the version" true (contains "PostgreSQL" text);
  Alcotest.(check bool) "markdown headers" true (contains "## Resilience to typos" text)

let test_weaknesses_listed () =
  let r = Lazy.force pg_report in
  let w = Report.weaknesses r in
  Alcotest.(check bool) "some latent errors found" true (w <> [])

let test_semantic_section_for_dns () =
  let r =
    Report.generate ~seed:5
      ~semantic_codec:(Dnsmodel.Codec.bind ~zones:Suts.Mini_bind.zones)
      Suts.Mini_bind.sut
  in
  Alcotest.(check bool) "rfc1912 section" true
    (List.exists
       (fun (s : Report.section) -> contains "RFC-1912" s.title)
       r.Report.sections)

let test_no_semantic_section_without_codec () =
  let r = Lazy.force pg_report in
  Alcotest.(check bool) "absent" false
    (List.exists
       (fun (s : Report.section) -> contains "RFC-1912" s.title)
       r.Report.sections)

let suite =
  [
    Alcotest.test_case "sections present" `Quick test_sections_present;
    Alcotest.test_case "render" `Quick test_render;
    Alcotest.test_case "weaknesses listed" `Quick test_weaknesses_listed;
    Alcotest.test_case "semantic for dns" `Quick test_semantic_section_for_dns;
    Alcotest.test_case "no semantic without codec" `Quick
      test_no_semantic_section_without_codec;
  ]
