module Bindzone = Formats.Bindzone
module Node = Conftree.Node

let parse_exn text =
  match Bindzone.parse text with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse error: %s" (Formats.Parse_error.to_string e)

let sample =
  String.concat "\n"
    [
      "$TTL 86400";
      "; a comment";
      "@\tIN\tSOA\tns1.example.com. hm.example.com. ( 1 2 3 4 5 )";
      "@\tIN\tNS\tns1.example.com.";
      "www\t3600\tIN\tA\t10.0.0.2";
      "\tIN\tMX\t10 mail.example.com.";
      "";
    ]

let records tree =
  Node.find_all (fun n -> n.Node.kind = Node.kind_record) tree |> List.map snd

let test_parse_kinds () =
  let t = parse_exn sample in
  Alcotest.(check (list string))
    "kinds"
    [ Node.kind_directive; Node.kind_comment; Node.kind_record; Node.kind_record;
      Node.kind_record; Node.kind_record ]
    (List.map (fun (n : Node.t) -> n.kind) t.Node.children)

let test_ttl_directive () =
  let t = parse_exn sample in
  match Node.get t [ 0 ] with
  | Some d ->
    Alcotest.(check string) "name" "$TTL" d.Node.name;
    Alcotest.(check (option string)) "value" (Some "86400") d.Node.value
  | None -> Alcotest.fail "missing"

let test_record_fields () =
  let t = parse_exn sample in
  match records t with
  | [ _soa; _ns; a; _mx ] ->
    Alcotest.(check string) "owner as written" "www" a.Node.name;
    Alcotest.(check (option string)) "type" (Some "A") (Node.attr a "type");
    Alcotest.(check (option string)) "ttl" (Some "3600") (Node.attr a "ttl");
    Alcotest.(check (option string)) "class" (Some "IN") (Node.attr a "class");
    Alcotest.(check (option string)) "rdata" (Some "10.0.0.2") a.Node.value
  | _ -> Alcotest.fail "expected four records"

let test_owner_inheritance () =
  let t = parse_exn sample in
  match records t with
  | [ _; _; _; mx ] ->
    Alcotest.(check string) "blank owner written" "" mx.Node.name;
    Alcotest.(check (option string)) "inherited owner" (Some "www") (Node.attr mx "owner")
  | _ -> Alcotest.fail "expected four records"

let test_multiline_soa () =
  let text = "@ IN SOA ns1. hm. (\n  1\n  2\n  3\n  4\n  5 )\n" in
  let t = parse_exn text in
  match records t with
  | [ soa ] ->
    Alcotest.(check (option string)) "type" (Some "SOA") (Node.attr soa "type");
    let rdata = Conftree.Node.value_or ~default:"" soa in
    Alcotest.(check bool) "all fields merged" true
      (List.for_all
         (fun f -> Conferr_util.Strutil.contains_substring ~needle:f rdata)
         [ "ns1."; "hm."; "1"; "5" ])
  | _ -> Alcotest.fail "expected one record"

let test_comment_inside_multiline () =
  let text = "@ IN SOA ns1. hm. ( 1 ; serial\n 2 3 4 5 )\n" in
  Alcotest.(check int) "still one record" 1 (List.length (records (parse_exn text)))

let test_unknown_type_rejected () =
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Bindzone.parse "www IN FROB data\n"))

let test_unbalanced_parens_rejected () =
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Bindzone.parse "@ IN SOA a. b. ( 1 2 3 4 5\n"))

let test_roundtrip_semantics () =
  let t = parse_exn sample in
  match Bindzone.serialize t with
  | Error msg -> Alcotest.failf "serialize: %s" msg
  | Ok text ->
    let t2 = parse_exn text in
    let rtypes tree = List.map (fun (n : Node.t) -> Node.attr n "type") (records tree) in
    Alcotest.(check (list (option string))) "same record types" (rtypes t) (rtypes t2);
    let rdatas tree = List.map (fun (n : Node.t) -> n.Node.value) (records tree) in
    Alcotest.(check (list (option string))) "same rdata" (rdatas t) (rdatas t2)

let test_record_builder () =
  let r = Bindzone.record ~ttl:"60" ~name:"www" ~rtype:"A" "10.0.0.9" in
  Alcotest.(check (option string)) "type" (Some "A") (Node.attr r "type");
  Alcotest.(check (option string)) "ttl" (Some "60") (Node.attr r "ttl");
  Alcotest.(check (option string)) "owner" (Some "www") (Node.attr r "owner")

let test_sections_rejected () =
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Bindzone.serialize (Node.root [ Node.section "s" [] ])))

let suite =
  [
    Alcotest.test_case "parse kinds" `Quick test_parse_kinds;
    Alcotest.test_case "$TTL directive" `Quick test_ttl_directive;
    Alcotest.test_case "record fields" `Quick test_record_fields;
    Alcotest.test_case "owner inheritance" `Quick test_owner_inheritance;
    Alcotest.test_case "multiline SOA" `Quick test_multiline_soa;
    Alcotest.test_case "comment inside multiline" `Quick test_comment_inside_multiline;
    Alcotest.test_case "unknown type rejected" `Quick test_unknown_type_rejected;
    Alcotest.test_case "unbalanced parens" `Quick test_unbalanced_parens_rejected;
    Alcotest.test_case "roundtrip semantics" `Quick test_roundtrip_semantics;
    Alcotest.test_case "record builder" `Quick test_record_builder;
    Alcotest.test_case "sections rejected" `Quick test_sections_rejected;
  ]
