(* Integration tests asserting the paper-shaped results.  Fixed seeds
   keep them deterministic; tolerances match the reproduction target
   ("who wins, by roughly what factor"), not exact historical numbers. *)

module Paper = Conferr.Paper
module Profile = Conferr.Profile
module Compare = Conferr.Compare
module Structural_check = Conferr.Structural_check
module Variations = Errgen.Variations

let table1 = lazy (Paper.table1 ~seed:42 ())

let summary_of name =
  let { Paper.profiles } = Lazy.force table1 in
  let p = List.find (fun p -> p.Profile.sut_name = name) profiles in
  Profile.summarize p

let rate s = Profile.detection_rate s

let ignored_fraction s =
  if s.Profile.total = 0 then 0.
  else float_of_int s.Profile.ignored /. float_of_int s.Profile.total

let test_table1_database_detection_high () =
  (* MySQL and Postgres detect the large majority of typos at startup *)
  Alcotest.(check bool) "mysql >= 60%" true (rate (summary_of "mysql") >= 0.6);
  Alcotest.(check bool) "postgres >= 60%" true (rate (summary_of "postgres") >= 0.6)

let test_table1_apache_ignores_most () =
  let apache = summary_of "apache" in
  Alcotest.(check bool) "apache ignores > 50%" true (ignored_fraction apache > 0.5);
  Alcotest.(check bool) "apache detects far less than the databases" true
    (rate apache < rate (summary_of "mysql") -. 0.2
     && rate apache < rate (summary_of "postgres") -. 0.2)

let test_table1_functional_detection_small () =
  List.iter
    (fun name ->
      let s = summary_of name in
      let f =
        if s.Profile.total = 0 then 0.
        else float_of_int s.Profile.functional /. float_of_int s.Profile.total
      in
      Alcotest.(check bool) (name ^ " functional <= 10%") true (f <= 0.1))
    [ "mysql"; "postgres"; "apache" ]

let test_table1_no_na () =
  (* every typo scenario is expressible in the native formats *)
  List.iter
    (fun name ->
      Alcotest.(check int) (name ^ " n/a") 0 (summary_of name).Profile.not_applicable)
    [ "mysql"; "postgres"; "apache" ]

let find_row (check : Structural_check.t) class_name =
  let row =
    List.find (fun (r : Structural_check.row) -> r.class_name = class_name)
      check.Structural_check.rows
  in
  Structural_check.support_label row.support

let test_table2_matches_paper_exactly () =
  let { Paper.checks } = Paper.table2 ~seed:42 () in
  let check name = List.find (fun c -> c.Structural_check.sut_name = name) checks in
  let mysql = check "mysql" and pg = check "postgres" and apache = check "apache" in
  (* paper Table 2, cell by cell *)
  Alcotest.(check string) "mysql sections" "Yes" (find_row mysql Variations.Reorder_sections);
  Alcotest.(check string) "pg sections" "n/a" (find_row pg Variations.Reorder_sections);
  Alcotest.(check string) "apache sections" "n/a" (find_row apache Variations.Reorder_sections);
  Alcotest.(check string) "mysql directives" "Yes" (find_row mysql Variations.Reorder_directives);
  Alcotest.(check string) "pg directives" "Yes" (find_row pg Variations.Reorder_directives);
  Alcotest.(check string) "apache directives" "Yes" (find_row apache Variations.Reorder_directives);
  Alcotest.(check string) "mysql spaces" "Yes" (find_row mysql Variations.Separator_spacing);
  Alcotest.(check string) "pg spaces" "Yes" (find_row pg Variations.Separator_spacing);
  Alcotest.(check string) "apache spaces" "Yes" (find_row apache Variations.Separator_spacing);
  Alcotest.(check string) "mysql case" "No" (find_row mysql Variations.Mixed_case_names);
  Alcotest.(check string) "pg case" "Yes" (find_row pg Variations.Mixed_case_names);
  Alcotest.(check string) "apache case" "Yes" (find_row apache Variations.Mixed_case_names);
  Alcotest.(check string) "mysql truncation" "Yes" (find_row mysql Variations.Truncated_names);
  Alcotest.(check string) "pg truncation" "No" (find_row pg Variations.Truncated_names);
  Alcotest.(check string) "apache truncation" "No" (find_row apache Variations.Truncated_names)

let test_table2_percentages () =
  let { Paper.checks } = Paper.table2 ~seed:42 () in
  let pct name =
    (List.find (fun c -> c.Structural_check.sut_name = name) checks)
      .Structural_check.satisfied_percent
  in
  Alcotest.(check int) "mysql 80%" 80 (int_of_float (pct "mysql"));
  Alcotest.(check int) "pg 75%" 75 (int_of_float (pct "postgres"));
  Alcotest.(check int) "apache 75%" 75 (int_of_float (pct "apache"))

let test_table3_matches_paper_exactly () =
  let { Paper.rows } = Paper.table3 () in
  let labels =
    List.map (fun (r : Paper.table3_row) ->
        (Paper.verdict_label r.bind, Paper.verdict_label r.djbdns))
      rows
  in
  Alcotest.(check (list (pair string string)))
    "all four rows"
    [
      ("not found", "N/A");      (* 1. Missing PTR *)
      ("not found", "N/A");      (* 2. PTR pointing to CNAME *)
      ("found", "not found");    (* 3. dupl name for NS and CNAME *)
      ("found", "not found");    (* 4. MX pointing to CNAME *)
    ]
    labels

let figure3 = lazy (Paper.figure3 ~seed:42 ())

let bucket results name bin =
  let r = List.find (fun (r : Compare.t) -> r.Compare.sut_name = name) results in
  List.assoc bin (Compare.distribution r)

let test_figure3_pg_excellent_dominates () =
  let { Paper.results } = Lazy.force figure3 in
  (* paper: Postgres detects >75% of typos in ~45% of its directives *)
  let excellent = bucket results "postgres" Compare.Excellent in
  Alcotest.(check bool)
    (Printf.sprintf "postgres excellent %.0f%% in [25, 65]" excellent)
    true
    (excellent >= 25. && excellent <= 65.)

let test_figure3_mysql_poor_dominates () =
  let { Paper.results } = Lazy.force figure3 in
  (* paper: MySQL detects <25% of typos in ~45% of its directives *)
  let poor = bucket results "mysql" Compare.Poor in
  (* 20 experiments per directive put several directives near the 25%
     bin boundary; across seeds the poor bucket spans ~45-70% *)
  Alcotest.(check bool)
    (Printf.sprintf "mysql poor %.0f%% in [30, 75]" poor)
    true
    (poor >= 30. && poor <= 75.)

let test_figure3_postgres_wins () =
  let { Paper.results } = Lazy.force figure3 in
  let top_half results name =
    bucket results name Compare.Excellent +. bucket results name Compare.Good
  in
  Alcotest.(check bool) "postgres clearly more resilient" true
    (top_half results "postgres" > top_half results "mysql" +. 20.)

let test_bins () =
  Alcotest.(check bool) "0 poor" true (Compare.bin_of_rate 0. = Compare.Poor);
  Alcotest.(check bool) "0.25 poor" true (Compare.bin_of_rate 0.25 = Compare.Poor);
  Alcotest.(check bool) "0.3 fair" true (Compare.bin_of_rate 0.3 = Compare.Fair);
  Alcotest.(check bool) "0.6 good" true (Compare.bin_of_rate 0.6 = Compare.Good);
  Alcotest.(check bool) "1.0 excellent" true (Compare.bin_of_rate 1.0 = Compare.Excellent)

let test_distribution_sums_to_100 () =
  let { Paper.results } = Lazy.force figure3 in
  List.iter
    (fun r ->
      let total =
        List.fold_left (fun acc (_, pct) -> acc +. pct) 0. (Compare.distribution r)
      in
      Alcotest.(check bool)
        (r.Compare.sut_name ^ " sums to 100")
        true
        (abs_float (total -. 100.) < 1e-6))
    results

let test_figure_dns_extension () =
  let profiles = Paper.figure_dns ~seed:42 ~experiments:5 () in
  Alcotest.(check (list string)) "both servers" [ "bind"; "djbdns" ]
    (List.map (fun (p : Profile.t) -> p.Profile.sut_name) profiles);
  List.iter
    (fun p ->
      let s = Profile.summarize p in
      Alcotest.(check bool) "ran injections" true (s.Profile.total > 0);
      (* both DNS servers ignore the majority of record-data typos *)
      Alcotest.(check bool)
        (p.Profile.sut_name ^ " detection below 50%")
        true
        (Profile.detection_rate s < 0.5))
    profiles

let test_run_all_contains_every_section () =
  let text = Paper.run_all ~seed:42 () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true
        (Conferr_util.Strutil.contains_substring ~needle text))
    [
      "Table 1"; "Table 2"; "Table 3"; "Figure 3"; "Configuration-process";
      "BIND vs djbdns";
    ]

let test_renderings_non_empty () =
  let shortish s = String.length s > 50 in
  Alcotest.(check bool) "table1" true (shortish (Paper.render_table1 (Lazy.force table1)));
  Alcotest.(check bool) "table2" true (shortish (Paper.render_table2 (Paper.table2 ~seed:1 ())));
  Alcotest.(check bool) "table3" true (shortish (Paper.render_table3 (Paper.table3 ())));
  Alcotest.(check bool) "figure3" true
    (shortish (Paper.render_figure3 (Lazy.force figure3)))

let suite =
  [
    Alcotest.test_case "table1 database detection" `Slow test_table1_database_detection_high;
    Alcotest.test_case "table1 apache ignores" `Slow test_table1_apache_ignores_most;
    Alcotest.test_case "table1 functional small" `Slow test_table1_functional_detection_small;
    Alcotest.test_case "table1 no n/a" `Slow test_table1_no_na;
    Alcotest.test_case "table2 exact cells" `Slow test_table2_matches_paper_exactly;
    Alcotest.test_case "table2 percentages" `Slow test_table2_percentages;
    Alcotest.test_case "table3 exact" `Slow test_table3_matches_paper_exactly;
    Alcotest.test_case "figure3 pg excellent" `Slow test_figure3_pg_excellent_dominates;
    Alcotest.test_case "figure3 mysql poor" `Slow test_figure3_mysql_poor_dominates;
    Alcotest.test_case "figure3 postgres wins" `Slow test_figure3_postgres_wins;
    Alcotest.test_case "bins" `Quick test_bins;
    Alcotest.test_case "distribution sums" `Slow test_distribution_sums_to_100;
    Alcotest.test_case "figure_dns extension" `Slow test_figure_dns_extension;
    Alcotest.test_case "run_all sections" `Slow test_run_all_contains_every_section;
    Alcotest.test_case "renderings" `Slow test_renderings_non_empty;
  ]
