(* Unit and property tests for the deterministic PRNG. *)

module Rng = Conferr_util.Rng

let check = Alcotest.(check bool)

let test_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  let xs = List.init 100 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 100 (fun _ -> Rng.next_int64 b) in
  check "same seed, same stream" true (xs = ys)

let test_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 10 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 10 (fun _ -> Rng.next_int64 b) in
  check "different seeds diverge" true (xs <> ys)

let test_copy_independent () =
  let a = Rng.create 3 in
  let b = Rng.copy a in
  let xa = Rng.next_int64 a in
  let xb = Rng.next_int64 b in
  Alcotest.(check int64) "copy starts from the same state" xa xb;
  ignore (Rng.next_int64 a);
  let ya = Rng.next_int64 a and yb = Rng.next_int64 b in
  check "copies then diverge by consumption" true (ya <> yb)

let test_split_independent () =
  let a = Rng.create 4 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 20 (fun _ -> Rng.next_int64 b) in
  check "split streams differ" true (xs <> ys)

let test_int_bounds () =
  let rng = Rng.create 5 in
  for bound = 1 to 50 do
    for _ = 1 to 50 do
      let v = Rng.int rng bound in
      if v < 0 || v >= bound then
        Alcotest.failf "Rng.int %d produced %d" bound v
    done
  done

let test_int_invalid () =
  let rng = Rng.create 6 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_pick_empty () =
  let rng = Rng.create 6 in
  Alcotest.check_raises "empty list" (Invalid_argument "Rng.pick: empty list") (fun () ->
      ignore (Rng.pick rng []))

let test_pick_singleton () =
  let rng = Rng.create 6 in
  Alcotest.(check int) "singleton" 9 (Rng.pick rng [ 9 ])

let test_pick_opt () =
  let rng = Rng.create 6 in
  check "empty gives None" true (Rng.pick_opt rng ([] : int list) = None);
  check "non-empty gives Some" true (Rng.pick_opt rng [ 1; 2 ] <> None)

let test_shuffle_permutation () =
  let rng = Rng.create 8 in
  let xs = List.init 30 Fun.id in
  let ys = Rng.shuffle rng xs in
  Alcotest.(check (list int)) "same multiset" xs (List.sort compare ys)

let test_sample_distinct () =
  let rng = Rng.create 9 in
  let xs = List.init 20 Fun.id in
  let s = Rng.sample rng 8 xs in
  Alcotest.(check int) "size" 8 (List.length s);
  Alcotest.(check int) "distinct" 8 (List.length (List.sort_uniq compare s))

let test_sample_caps_at_length () =
  let rng = Rng.create 9 in
  let s = Rng.sample rng 10 [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "all elements" [ 1; 2; 3 ] (List.sort compare s)

let test_float_range () =
  let rng = Rng.create 10 in
  for _ = 1 to 1000 do
    let f = Rng.float rng 2.5 in
    if f < 0. || f >= 2.5 then Alcotest.failf "float out of range: %f" f
  done

let test_bool_varies () =
  let rng = Rng.create 11 in
  let bs = List.init 100 (fun _ -> Rng.bool rng) in
  check "both values occur" true (List.mem true bs && List.mem false bs)

let prop_int_uniformish =
  QCheck2.Test.make ~name:"rng: int stays in bounds for random seeds/bounds"
    QCheck2.Gen.(pair int (int_range 1 10000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_shuffle_multiset =
  QCheck2.Test.make ~name:"rng: shuffle preserves the multiset"
    QCheck2.Gen.(pair int (list small_int))
    (fun (seed, xs) ->
      let rng = Rng.create seed in
      List.sort compare (Rng.shuffle rng xs) = List.sort compare xs)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "different seeds" `Quick test_different_seeds;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
    Alcotest.test_case "pick empty" `Quick test_pick_empty;
    Alcotest.test_case "pick singleton" `Quick test_pick_singleton;
    Alcotest.test_case "pick_opt" `Quick test_pick_opt;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "sample distinct" `Quick test_sample_distinct;
    Alcotest.test_case "sample caps" `Quick test_sample_caps_at_length;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "bool varies" `Quick test_bool_varies;
    QCheck_alcotest.to_alcotest prop_int_uniformish;
    QCheck_alcotest.to_alcotest prop_shuffle_multiset;
  ]
