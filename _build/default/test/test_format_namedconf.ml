module Namedconf = Formats.Namedconf
module Node = Conftree.Node

let parse_exn text =
  match Namedconf.parse text with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse error: %s" (Formats.Parse_error.to_string e)

let sample =
  String.concat "\n"
    [
      "// main configuration";
      "options {";
      "  directory \"/var/named\";";
      "  recursion no;";
      "};";
      "";
      "zone \"example.com\" IN {";
      "  type master;";
      "  file \"example.com.zone\";";
      "};";
      "";
    ]

let test_parse_structure () =
  let t = parse_exn sample in
  let kinds = List.map (fun (n : Node.t) -> n.kind) t.Node.children in
  Alcotest.(check (list string))
    "top level"
    [ Node.kind_comment; Node.kind_section; Node.kind_blank; Node.kind_section ]
    kinds

let test_options_block () =
  let t = parse_exn sample in
  match Node.get t [ 1 ] with
  | Some s ->
    Alcotest.(check string) "name" "options" s.Node.name;
    (match Node.get t [ 1; 0 ] with
     | Some d ->
       Alcotest.(check string) "directive" "directory" d.Node.name;
       Alcotest.(check (option string)) "value keeps quotes" (Some "\"/var/named\"")
         d.Node.value
     | None -> Alcotest.fail "missing directive")
  | None -> Alcotest.fail "missing options"

let test_zone_block_arg () =
  let t = parse_exn sample in
  match Node.get t [ 3 ] with
  | Some s ->
    Alcotest.(check string) "name" "zone" s.Node.name;
    Alcotest.(check (option string)) "unquoted arg without class" (Some "example.com")
      (Node.attr s "arg")
  | None -> Alcotest.fail "missing zone"

let test_statement_without_semicolon_rejected () =
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Namedconf.parse "options {\n  recursion no\n};\n"))

let test_unbalanced_braces_rejected () =
  Alcotest.(check bool) "unclosed" true
    (Result.is_error (Namedconf.parse "options {\n  recursion no;\n"));
  Alcotest.(check bool) "stray close" true (Result.is_error (Namedconf.parse "};\n"))

let test_inline_comments () =
  let t = parse_exn "options {\n  recursion no; // hmm\n};\n" in
  match Node.get t [ 0; 0 ] with
  | Some d -> Alcotest.(check (option string)) "clean value" (Some "no") d.Node.value
  | None -> Alcotest.fail "missing"

let test_roundtrip () =
  let t = parse_exn sample in
  match Namedconf.serialize t with
  | Error msg -> Alcotest.failf "serialize: %s" msg
  | Ok text ->
    let t2 = parse_exn text in
    Alcotest.(check bool) "same tree" true (Node.equal_modulo_attrs t t2
                                            || Node.equal t t2)

let test_nested_blocks () =
  let text = "zone \"x\" {\n  masters {\n    port 53;\n  };\n};\n" in
  let t = parse_exn text in
  match Node.get t [ 0; 0 ] with
  | Some inner -> Alcotest.(check string) "nested section" "masters" inner.Node.name
  | None -> Alcotest.fail "missing nested block"

let suite =
  [
    Alcotest.test_case "parse structure" `Quick test_parse_structure;
    Alcotest.test_case "options block" `Quick test_options_block;
    Alcotest.test_case "zone block arg" `Quick test_zone_block_arg;
    Alcotest.test_case "missing semicolon" `Quick test_statement_without_semicolon_rejected;
    Alcotest.test_case "unbalanced braces" `Quick test_unbalanced_braces_rejected;
    Alcotest.test_case "inline comments" `Quick test_inline_comments;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "nested blocks" `Quick test_nested_blocks;
  ]
