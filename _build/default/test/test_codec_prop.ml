(* Property tests for the DNS codecs over generated record sets. *)

module Codec = Dnsmodel.Codec
module Record = Dnsmodel.Record
module Config_set = Conftree.Config_set
module Node = Conftree.Node

let bind_codec = Codec.bind ~zones:[ ("zone", "example.com.") ]

(* An empty skeleton zone file the encoder can write into. *)
let skeleton =
  Config_set.of_list
    [ ("zone", Node.root [ Node.directive ~value:"86400" "$TTL" ]) ]

let summary records =
  List.map
    (fun (r : Record.t) -> (r.owner, Record.rtype r, Record.to_string r))
    records
  |> List.sort compare

let prop_bind_encode_decode_roundtrip =
  QCheck2.Test.make ~count:200
    ~name:"codec: bind encode then decode preserves the record set"
    Gen.record_set_gen
    (fun records ->
      match bind_codec.Codec.encode records skeleton with
      | Error _ -> false
      | Ok set ->
        (* re-parse through the actual text format, like the engine does *)
        (match Config_set.find set "zone" with
         | None -> false
         | Some tree ->
           (match Formats.Bindzone.serialize tree with
            | Error _ -> false
            | Ok text ->
              (match Formats.Bindzone.parse text with
               | Error _ -> false
               | Ok tree' ->
                 (match
                    bind_codec.Codec.decode (Config_set.of_list [ ("zone", tree') ])
                  with
                  | Error _ -> false
                  | Ok records' -> summary records = summary records')))))

let prop_bind_encode_total =
  QCheck2.Test.make ~count:200 ~name:"codec: bind can express any generated record set"
    Gen.record_set_gen
    (fun records -> Result.is_ok (bind_codec.Codec.encode records skeleton))

let tinydns_codec = Codec.tinydns ~file:"data"

let tinydns_skeleton = Config_set.of_list [ ("data", Node.root []) ]

let retag records =
  List.map (fun r -> Record.with_tag r Codec.tag_file "data") records

let prop_tinydns_roundtrip_untangled =
  (* generated records carry no combined groups, so tinydns can always
     express them individually *)
  QCheck2.Test.make ~count:200
    ~name:"codec: tinydns roundtrips record sets without combined pairs"
    Gen.record_set_gen
    (fun records ->
      let records = retag records in
      match tinydns_codec.Codec.encode records tinydns_skeleton with
      | Error _ -> false
      | Ok set ->
        (match tinydns_codec.Codec.decode set with
         | Error _ -> false
         | Ok records' ->
           (* NS entries regain implicit structure on decode; compare a
              weaker invariant: every original owner/type pair survives *)
           List.for_all
             (fun (r : Record.t) ->
               List.exists
                 (fun (r' : Record.t) ->
                   r'.owner = r.owner && Record.rtype r' = Record.rtype r)
                 records')
             records))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_bind_encode_decode_roundtrip;
    QCheck_alcotest.to_alcotest prop_bind_encode_total;
    QCheck_alcotest.to_alcotest prop_tinydns_roundtrip_untangled;
  ]
