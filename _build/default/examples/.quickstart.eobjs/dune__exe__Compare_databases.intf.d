examples/compare_databases.mli:
