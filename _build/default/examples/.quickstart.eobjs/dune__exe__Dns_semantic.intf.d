examples/dns_semantic.mli:
