examples/compare_databases.ml: Conferr Conferr_util List Printf Suts
