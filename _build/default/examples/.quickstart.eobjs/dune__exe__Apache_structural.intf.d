examples/apache_structural.mli:
