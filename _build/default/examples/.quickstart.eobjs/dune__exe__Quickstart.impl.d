examples/quickstart.ml: Conferr Conferr_util List Printf Suts
