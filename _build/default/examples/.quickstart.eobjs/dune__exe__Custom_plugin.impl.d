examples/custom_plugin.ml: Conferr Conferr_util Conftree Errgen List Option Printf Suts
