examples/gems_mix.ml: Conferr Conferr_util Conftree Errgen List Option Printf Suts
