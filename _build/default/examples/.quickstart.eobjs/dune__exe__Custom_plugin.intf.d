examples/custom_plugin.mli:
