examples/quickstart.mli:
