examples/dns_semantic.ml: Conferr Dnsmodel Errgen List Printf Suts
