examples/apache_structural.ml: Conferr Conferr_util Conftree Errgen List Printf Suts
