examples/gems_mix.mli:
