(* Comparing error resilience across functionally-equivalent systems
   (paper §5.5 / Figure 3).

     dune exec examples/compare_databases.exe

   The benchmark simulates the configuration process: starting from a
   file that sets most available directives to their defaults, it
   injects one typo at a time into each directive's value (20
   experiments per directive) and measures how often the system detects
   it, then buckets every directive into detection ranges. *)

let () =
  let rng = Conferr_util.Rng.create 55 in
  let experiments = 20 in
  let run sut config =
    match Conferr.Compare.run ~rng ~experiments ~sut ~config () with
    | Ok t -> t
    | Error msg -> failwith msg
  in
  let pg = run Suts.Mini_pg.sut ("postgresql.conf", Suts.Mini_pg.full_config) in
  let mysql = run Suts.Mini_mysql.sut ("my.cnf", Suts.Mini_mysql.full_config) in

  print_endline "Resilience to typos in directive values (20 experiments each):\n";
  print_string (Conferr.Compare.render_figure3 [ pg; mysql ]);
  print_newline ();

  (* Per-directive drill-down: the weakest directives of each system,
     i.e. where silent misconfiguration is most likely. *)
  let weakest (t : Conferr.Compare.t) =
    t.Conferr.Compare.per_directive
    |> List.sort (fun (a : Conferr.Compare.directive_result) b ->
           compare a.detected b.detected)
    |> List.filteri (fun i _ -> i < 5)
  in
  List.iter
    (fun (t : Conferr.Compare.t) ->
      Printf.printf "Weakest directives of %s:\n" t.Conferr.Compare.sut_name;
      List.iter
        (fun (d : Conferr.Compare.directive_result) ->
          Printf.printf "  %-28s %2d/%2d typos detected\n" d.directive d.detected
            d.experiments)
        (weakest t);
      print_newline ())
    [ pg; mysql ]
