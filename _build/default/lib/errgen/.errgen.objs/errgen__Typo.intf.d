lib/errgen/typo.mli: Conferr_util Conftree Keyboard Scenario Template
