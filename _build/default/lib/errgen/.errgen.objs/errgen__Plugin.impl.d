lib/errgen/plugin.ml: Conferr_util Conftree Scenario
