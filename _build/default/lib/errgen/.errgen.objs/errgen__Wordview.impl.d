lib/errgen/wordview.ml: Conftree List Option Result String
