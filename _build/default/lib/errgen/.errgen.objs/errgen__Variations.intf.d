lib/errgen/variations.mli: Conferr_util Conftree Scenario
