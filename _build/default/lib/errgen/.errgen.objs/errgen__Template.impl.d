lib/errgen/template.ml: Conferr_util Confpath Conftree List Option Printf Result Scenario
