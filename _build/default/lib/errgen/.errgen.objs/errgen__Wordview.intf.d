lib/errgen/wordview.mli: Conftree
