lib/errgen/structural.mli: Conftree Scenario
