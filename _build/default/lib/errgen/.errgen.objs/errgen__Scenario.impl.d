lib/errgen/scenario.ml: Conftree List Printf String
