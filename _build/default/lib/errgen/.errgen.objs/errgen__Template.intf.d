lib/errgen/template.mli: Conferr_util Confpath Conftree Scenario
