lib/errgen/plugin.mli: Conferr_util Conftree Scenario
