lib/errgen/cognitive.ml: Conferr_util Float
