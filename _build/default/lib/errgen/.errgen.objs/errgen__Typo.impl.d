lib/errgen/typo.ml: Conferr_util Conftree Fun Hashtbl Keyboard List Option Printf Scenario String Template Wordview
