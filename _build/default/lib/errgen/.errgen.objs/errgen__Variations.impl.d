lib/errgen/variations.ml: Char Conferr_util Conftree List Printf Scenario String
