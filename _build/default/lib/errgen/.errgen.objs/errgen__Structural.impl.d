lib/errgen/structural.ml: Conftree Printf Template
