lib/errgen/cognitive.mli: Conferr_util Scenario
