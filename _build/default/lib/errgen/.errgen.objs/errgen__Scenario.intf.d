lib/errgen/scenario.mli: Conftree
