module Node = Conftree.Node
module Rng = Conferr_util.Rng
module Strutil = Conferr_util.Strutil

type class_name =
  | Reorder_sections
  | Reorder_directives
  | Separator_spacing
  | Mixed_case_names
  | Truncated_names

let all_classes =
  [ Reorder_sections; Reorder_directives; Separator_spacing; Mixed_case_names;
    Truncated_names ]

let class_title = function
  | Reorder_sections -> "Order of sections"
  | Reorder_directives -> "Order of directives"
  | Separator_spacing -> "Spaces near separators"
  | Mixed_case_names -> "Mixed-case directive names"
  | Truncated_names -> "Truncatable directive names"

let is_section (n : Node.t) = n.kind = Node.kind_section

let is_directive (n : Node.t) = n.kind = Node.kind_directive

(* Shuffle only the given kind of child, leaving comments and blanks in
   place so the variation is purely about ordering. *)
let shuffle_children rng pred (n : Node.t) =
  let targets = List.filter pred n.children in
  if List.length targets < 2 then n
  else begin
    let shuffled = ref (Rng.shuffle rng targets) in
    let take () =
      match !shuffled with
      | [] -> assert false
      | x :: rest ->
        shuffled := rest;
        x
    in
    { n with children = List.map (fun c -> if pred c then take () else c) n.children }
  end

let reorder_sections rng tree = shuffle_children rng is_section tree

let reorder_directives rng tree =
  let shuffle_in n = shuffle_children rng is_directive n in
  (* Directives can sit at top level (flat formats) or inside sections. *)
  Node.map_nodes
    (fun n -> if is_section n || n.Node.kind = Node.kind_root then shuffle_in n else n)
    (shuffle_in tree)

let equals_spacings = [ "="; " = "; "  =  "; " ="; "= "; "\t=\t" ]

let whitespace_spacings = [ " "; "  "; "\t"; "   " ]

let vary_spacing rng tree =
  let spacings_for n =
    (* Formats with an '=' separator keep it; whitespace-separated
       formats (Apache) only vary the blank run. *)
    match Node.attr n "sep" with
    | Some s when String.contains s '=' -> equals_spacings
    | Some _ -> whitespace_spacings
    | None -> whitespace_spacings
  in
  Node.map_nodes
    (fun n ->
      if is_directive n && n.Node.value <> None then
        Node.set_attr n "sep" (Rng.pick rng (spacings_for n))
      else n)
    tree

let mix_case rng s =
  String.map
    (fun c ->
      if Rng.bool rng then
        if c >= 'a' && c <= 'z' then Char.uppercase_ascii c
        else if c >= 'A' && c <= 'Z' then Char.lowercase_ascii c
        else c
      else c)
    s

let mixed_case rng tree =
  Node.map_nodes
    (fun n -> if is_directive n then { n with Node.name = mix_case rng n.name } else n)
    tree

let shortest_unambiguous_prefix name ~among =
  let others = List.filter (fun o -> o <> name) among in
  let len = String.length name in
  let rec try_len l =
    if l >= len then None
    else begin
      let prefix = String.sub name 0 l in
      if List.exists (fun o -> Strutil.is_prefix ~prefix o) others then try_len (l + 1)
      else Some l
    end
  in
  if len <= 1 then None else try_len 1

let directive_names tree =
  Node.find_all is_directive tree |> List.map (fun (_, n) -> n.Node.name)

let truncate_names rng tree =
  let names = directive_names tree in
  Node.map_nodes
    (fun n ->
      if is_directive n then
        match shortest_unambiguous_prefix n.Node.name ~among:names with
        | None -> n
        | Some min_len ->
          let len = String.length n.Node.name in
          (* Random cut between the shortest safe prefix and full length;
             cutting at full length leaves the name intact, which keeps
             some directives untouched in each variation. *)
          let cut = min_len + Rng.int rng (len - min_len + 1) in
          { n with Node.name = String.sub n.Node.name 0 cut }
      else n)
    tree

let applies class_ tree =
  match class_ with
  | Reorder_sections ->
    List.length (List.filter is_section tree.Node.children) >= 2
  | Reorder_directives ->
    Node.fold
      (fun _ n acc ->
        acc
        || List.length (List.filter is_directive n.Node.children) >= 2)
      tree false
  | Separator_spacing ->
    Node.fold (fun _ n acc -> acc || (is_directive n && n.Node.value <> None)) tree false
  | Mixed_case_names | Truncated_names ->
    Node.fold (fun _ n acc -> acc || is_directive n) tree false

let transform class_ rng tree =
  match class_ with
  | Reorder_sections -> reorder_sections rng tree
  | Reorder_directives -> reorder_directives rng tree
  | Separator_spacing -> vary_spacing rng tree
  | Mixed_case_names -> mixed_case rng tree
  | Truncated_names -> truncate_names rng tree

let scenarios ~rng ~count class_ ~file set =
  match Conftree.Config_set.find set file with
  | None -> []
  | Some tree when not (applies class_ tree) -> []
  | Some _ ->
    List.init count (fun i ->
        (* Each scenario owns an independent RNG stream so applying one
           scenario does not perturb the others. *)
        let stream = Rng.split rng in
        Scenario.make
          ~id:(Printf.sprintf "variation-%d" i)
          ~class_name:(Printf.sprintf "variation/%s" (class_title class_))
          ~description:(Printf.sprintf "%s (random variation %d)" (class_title class_) i)
          (fun set ->
            Scenario.edit_in_file ~file
              (fun tree -> Some (transform class_ (Rng.copy stream) tree))
              set))
