let directives_query = "//*[kind()='directive']"

let sections_query = "//*[kind()='section']"

let omit_directives ?(query = directives_query) ~file set =
  Template.delete ~class_name:"structural/omit-directive"
    (Template.target ~file query) set

let omit_sections ?(query = sections_query) ~file set =
  Template.delete ~class_name:"structural/omit-section"
    (Template.target ~file query) set

let duplicate_directives ?(query = directives_query) ~file set =
  Template.duplicate ~class_name:"structural/duplicate-directive"
    (Template.target ~file query) set

let misplace_directives ?(src_query = directives_query) ?(dst_query = sections_query)
    ~file set =
  Template.move ~class_name:"structural/misplace-directive"
    ~src:(Template.target ~file src_query)
    ~dst:(Template.target ~file dst_query)
    set

let duplicate_into_other_sections ?(src_query = directives_query)
    ?(dst_query = sections_query) ~file set =
  Template.copy_into ~class_name:"structural/copy-directive"
    ~src:(Template.target ~file src_query)
    ~dst:(Template.target ~file dst_query)
    set

let borrow_foreign_directive ~donor_name ~directive ~file ?(dst_query = sections_query)
    set =
  Template.insert_foreign ~class_name:"structural/borrow-foreign"
    ~node:directive
    ~description:
      (Printf.sprintf "borrow %s directive %S" donor_name directive.Conftree.Node.name)
    ~dst:(Template.target ~file dst_query)
    set

let all_skill_based ~file set =
  Template.union
    [
      omit_directives ~file set;
      omit_sections ~file set;
      duplicate_directives ~file set;
      misplace_directives ~file set;
    ]
