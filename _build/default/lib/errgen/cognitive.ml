module Strutil = Conferr_util.Strutil
module Rng = Conferr_util.Rng

type level = Skill_based | Rule_based | Knowledge_based

let name = function
  | Skill_based -> "skill-based"
  | Rule_based -> "rule-based"
  | Knowledge_based -> "knowledge-based"

let gems_share = function
  | Skill_based -> 0.6
  | Rule_based -> 0.3
  | Knowledge_based -> 0.1

let of_class_name class_name =
  let has prefix = Strutil.is_prefix ~prefix class_name in
  if has "typo/" || has "compare/" || has "process-bench/" then Some Skill_based
  else if has "structural/borrow" then Some Rule_based
  else if has "structural/" then Some Skill_based
  else if has "variation/" then Some Rule_based
  else if has "semantic/" then Some Knowledge_based
  else None

let weighted_mix ~rng ~total ~skill ~rule ~knowledge =
  let quota level = int_of_float (Float.round (gems_share level *. float_of_int total)) in
  let draw pool level = Rng.sample rng (quota level) pool in
  draw skill Skill_based @ draw rule Rule_based @ draw knowledge Knowledge_based
