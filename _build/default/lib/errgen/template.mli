(** Error templates (paper §3.3).

    Templates describe parameterized transformations of configuration
    trees; instantiating a template against an initial configuration set
    yields concrete {!Scenario.t} values, one per applicable target.

    Simple templates (delete, duplicate, modify, move, copy) take a
    ConfPath query designating the candidate nodes.  Complex templates
    (union, sample, limit) combine the scenario sets produced by other
    templates. *)

type target = { file : string; query : Confpath.query }

val target : file:string -> string -> target
(** [target ~file q] compiles the query text; raises
    [Confpath.Parser.Parse_error] on a malformed query. *)

(** {1 Simple templates} *)

val delete : class_name:string -> target -> Conftree.Config_set.t -> Scenario.t list
(** One scenario per node matched by the query: remove that node. *)

val duplicate : class_name:string -> target -> Conftree.Config_set.t -> Scenario.t list
(** One scenario per match: insert a copy right after the original. *)

val modify :
  class_name:string ->
  mutate:(Conftree.Node.t -> (Conftree.Node.t * string) list) ->
  target -> Conftree.Config_set.t -> Scenario.t list
(** The abstract modify template.  [mutate node] returns the list of
    mutated variants with a description each; one scenario per (target,
    variant). *)

val move :
  class_name:string -> src:target -> dst:target ->
  Conftree.Config_set.t -> Scenario.t list
(** One scenario per (source node, destination parent) pair with the
    destination not inside the source and different from the source's
    current parent.  Source and destination may be in different files of
    the set (cross-file errors). *)

val copy_into :
  class_name:string -> src:target -> dst:target ->
  Conftree.Config_set.t -> Scenario.t list
(** Like {!move} but the original stays (copy-paste errors); the current
    parent is also a valid destination (duplicating into the same
    section). *)

val insert_foreign :
  class_name:string -> node:Conftree.Node.t -> description:string ->
  dst:target -> Conftree.Config_set.t -> Scenario.t list
(** Insert a node "borrowed" from another program's configuration under
    each destination parent (rule-based errors, paper §2.2). *)

(** {1 Complex templates} *)

val union : Scenario.t list list -> Scenario.t list

val sample : Conferr_util.Rng.t -> int -> Scenario.t list -> Scenario.t list
(** Random subset of a given size (without replacement). *)

val limit : int -> Scenario.t list -> Scenario.t list
(** First [n] scenarios. *)
