(** Semantics-preserving structural variations (paper §5.3).

    These are not faults: an ideal system accepts every configuration in
    a variation class.  ConfErr generates random members of each class
    and checks whether the SUT still starts and passes its functional
    tests, yielding the "Resilience to structural errors" table.

    Classes (paper's list):
    - any ordering of sections
    - any ordering of directives within a section
    - redundant whitespace between names, separators and values
    - mixed-case directive names
    - truncated (but unambiguous) directive names *)

type class_name =
  | Reorder_sections
  | Reorder_directives
  | Separator_spacing
  | Mixed_case_names
  | Truncated_names

val all_classes : class_name list

val class_title : class_name -> string

val scenarios :
  rng:Conferr_util.Rng.t -> count:int -> class_name -> file:string ->
  Conftree.Config_set.t -> Scenario.t list
(** [count] random whole-file variations of the class.  Classes that do
    not apply to the file's shape (e.g. section reordering on a file with
    fewer than two sections) yield an empty list — reported as "n/a" in
    the results table. *)

val shortest_unambiguous_prefix : string -> among:string list -> int option
(** [shortest_unambiguous_prefix name ~among] is the length of the
    shortest proper prefix of [name] that is not a prefix of any other
    element of [among]; [None] when no proper prefix is unambiguous. *)
