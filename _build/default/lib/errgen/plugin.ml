type t = {
  name : string;
  describe : string;
  generate : rng:Conferr_util.Rng.t -> Conftree.Config_set.t -> Scenario.t list;
}

let make ~name ~describe generate = { name; describe; generate }

let generate t ~rng set =
  Scenario.relabel_ids ~prefix:t.name (t.generate ~rng set)
