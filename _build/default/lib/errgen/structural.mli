(** Structural-error generator (paper §2.2 and §4.2).

    Skill-based slips: omission of directives or sections, duplication of
    directives (copy-paste), misplacement of directives into other
    sections.  Rule-based mistakes: "borrowing" a directive from another
    program's similar-looking configuration. *)

val omit_directives :
  ?query:string -> file:string -> Conftree.Config_set.t -> Scenario.t list
(** One scenario per directive: remove it.  [query] defaults to every
    directive in the file. *)

val omit_sections :
  ?query:string -> file:string -> Conftree.Config_set.t -> Scenario.t list

val duplicate_directives :
  ?query:string -> file:string -> Conftree.Config_set.t -> Scenario.t list

val misplace_directives :
  ?src_query:string -> ?dst_query:string -> file:string ->
  Conftree.Config_set.t -> Scenario.t list
(** Move each directive into each other section of the same file. *)

val duplicate_into_other_sections :
  ?src_query:string -> ?dst_query:string -> file:string ->
  Conftree.Config_set.t -> Scenario.t list
(** Copy each directive into other sections (copy-paste gone wrong). *)

val borrow_foreign_directive :
  donor_name:string -> directive:Conftree.Node.t -> file:string ->
  ?dst_query:string -> Conftree.Config_set.t -> Scenario.t list
(** Insert a directive taken from [donor_name]'s configuration format
    into each matched section. *)

val all_skill_based :
  file:string -> Conftree.Config_set.t -> Scenario.t list
(** Union of omissions, duplications and misplacements for one file. *)
