(** Error-generator plugin interface.

    A plugin bundles a named error model: given the initial configuration
    set it synthesizes the fault scenarios to inject (paper §4).  The
    engine is oblivious to how scenarios were produced, so new error
    models are added by providing new values of this type. *)

type t = {
  name : string;
  describe : string;
  generate : rng:Conferr_util.Rng.t -> Conftree.Config_set.t -> Scenario.t list;
}

val make :
  name:string -> describe:string ->
  (rng:Conferr_util.Rng.t -> Conftree.Config_set.t -> Scenario.t list) -> t

val generate : t -> rng:Conferr_util.Rng.t -> Conftree.Config_set.t -> Scenario.t list
(** Runs the plugin and assigns stable scenario ids prefixed with the
    plugin name. *)
