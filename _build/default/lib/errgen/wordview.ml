module Node = Conftree.Node
module Path = Conftree.Path

let attr_ref = "ref"
let attr_type = "type"

let word ~word_type ~ref_path text =
  Node.make ~value:text
    ~attrs:[ (attr_type, word_type); (attr_ref, Path.to_string ref_path) ]
    Node.kind_word

let line children = Node.make ~children Node.kind_line

let of_tree tree =
  let lines =
    Node.fold
      (fun path (n : Node.t) acc ->
        if n.kind = Node.kind_directive then
          let name_word = word ~word_type:"directive-name" ~ref_path:path n.name in
          let value_words =
            match n.value with
            | None -> []
            | Some v -> [ word ~word_type:"directive-value" ~ref_path:path v ]
          in
          line (name_word :: value_words) :: acc
        else if n.kind = Node.kind_section && n.name <> "" then
          line [ word ~word_type:"section-name" ~ref_path:path n.name ] :: acc
        else acc)
      tree []
    |> List.rev
  in
  Node.root lines

let parse_ref s =
  if s = "/" then Some []
  else
    String.split_on_char '/' s
    |> List.filter (fun x -> x <> "")
    |> List.map int_of_string_opt
    |> fun parts -> if List.mem None parts then None else Some (List.map Option.get parts)

let apply_word original (w : Node.t) =
  let ( let* ) = Option.bind in
  let resolve () =
    let* ref_text = Node.attr w attr_ref in
    let* word_type = Node.attr w attr_type in
    let* path = parse_ref ref_text in
    let* text = w.value in
    let* tree =
      Node.update original path (fun n ->
          match word_type with
          | "directive-name" | "section-name" -> { n with Node.name = text }
          | "directive-value" -> { n with Node.value = Some text }
          | _ -> n)
    in
    Some tree
  in
  match resolve () with
  | Some tree -> Ok tree
  | None -> Error "word token has a dangling ref or missing type"

let apply_to_tree ~word_view original =
  let word_nodes =
    Node.fold
      (fun _ n acc -> if n.Node.kind = Node.kind_word then n :: acc else acc)
      word_view []
  in
  List.fold_left
    (fun acc w -> Result.bind acc (fun tree -> apply_word tree w))
    (Ok original) word_nodes

let words ?word_type view =
  Node.find_all
    (fun n ->
      n.Node.kind = Node.kind_word
      &&
      match word_type with
      | None -> true
      | Some t -> Node.attr n attr_type = Some t)
    view
