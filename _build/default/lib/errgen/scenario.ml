type t = {
  id : string;
  class_name : string;
  description : string;
  apply : Conftree.Config_set.t -> (Conftree.Config_set.t, string) result;
}

let make ~id ~class_name ~description apply = { id; class_name; description; apply }

let edit_in_file ~file edit set =
  match Conftree.Config_set.update set file edit with
  | Some set' -> Ok set'
  | None ->
    (match Conftree.Config_set.find set file with
     | None -> Error (Printf.sprintf "configuration file %S is not in the set" file)
     | Some _ -> Error "the edit no longer applies to this configuration")

let relabel_ids ~prefix scenarios =
  List.mapi
    (fun i s -> { s with id = Printf.sprintf "%s-%04d" prefix (i + 1) })
    scenarios

let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let manifest_csv scenarios =
  let line s = String.concat "," (List.map csv_field [ s.id; s.class_name; s.description ]) in
  String.concat "\n" (("id,class,description" :: List.map line scenarios) @ [ "" ])
