(** Fault scenarios.

    A fault scenario (paper §3.1) is a function that mutates a set of
    abstract configuration representations, together with enough metadata
    to report it in the resilience profile. *)

type t = {
  id : string;            (** stable unique identifier within a campaign *)
  class_name : string;    (** fault class, e.g. ["typo/omission"] *)
  description : string;   (** human-readable account of the mutation *)
  apply : Conftree.Config_set.t -> (Conftree.Config_set.t, string) result;
}

val make :
  id:string -> class_name:string -> description:string ->
  (Conftree.Config_set.t -> (Conftree.Config_set.t, string) result) -> t

val edit_in_file :
  file:string ->
  (Conftree.Node.t -> Conftree.Node.t option) ->
  Conftree.Config_set.t ->
  (Conftree.Config_set.t, string) result
(** Helper: apply a tree edit to one file of the set; a missing file or a
    failing edit becomes [Error]. *)

val relabel_ids : prefix:string -> t list -> t list
(** Re-number scenario ids as [prefix-0001], [prefix-0002], ... *)

val manifest_csv : t list -> string
(** Record of a generated faultload: one CSV line per scenario
    ([id,class,description]) so a campaign can be archived and compared
    across versions. *)
