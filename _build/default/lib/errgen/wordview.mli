(** The typo-plugin representation of a configuration (paper Figure 2.c).

    Maps a structural tree (sections of directives) into a flat tree of
    lines whose children are typed word tokens, and back.  The mapping
    stores the originating node's path in a [ref] attribute — the
    "additional information that complements the representation" the
    paper uses to enable the reverse transformation (§3.2).

    Word tokens carry a [type] attribute: [directive-name],
    [directive-value], or [section-name]; plugins use it to restrict
    injection to a part of the configuration. *)

val of_tree : Conftree.Node.t -> Conftree.Node.t
(** Forward transformation to the word view. *)

val apply_to_tree : word_view:Conftree.Node.t -> Conftree.Node.t ->
  (Conftree.Node.t, string) result
(** [apply_to_tree ~word_view original] maps an (edited) word view back
    onto the original structural tree.  Fails when a [ref] no longer
    resolves (e.g. the word view was edited structurally rather than
    textually). *)

val words : ?word_type:string -> Conftree.Node.t ->
  (Conftree.Path.t * Conftree.Node.t) list
(** All word tokens of a word view, optionally filtered by type. *)
