module Node = Conftree.Node
module Path = Conftree.Path
module Config_set = Conftree.Config_set

type target = { file : string; query : Confpath.query }

let target ~file q = { file; query = Confpath.compile_exn q }

let select_in set { file; query } =
  match Config_set.find set file with
  | None -> []
  | Some tree -> List.map (fun (p, n) -> (file, p, n)) (Confpath.select query tree)

let describe_node (n : Node.t) =
  match n.value with
  | Some v when n.name <> "" -> Printf.sprintf "%s %S (=%S)" n.kind n.name v
  | Some v -> Printf.sprintf "%s (=%S)" n.kind v
  | None -> Printf.sprintf "%s %S" n.kind n.name

let delete ~class_name tgt set =
  select_in set tgt
  |> List.map (fun (file, path, node) ->
         Scenario.make ~id:"" ~class_name
           ~description:
             (Printf.sprintf "delete %s at %s:%s" (describe_node node) file
                (Path.to_string path))
           (Scenario.edit_in_file ~file (fun tree -> Node.delete tree path)))

let duplicate ~class_name tgt set =
  select_in set tgt
  |> List.map (fun (file, path, node) ->
         Scenario.make ~id:"" ~class_name
           ~description:
             (Printf.sprintf "duplicate %s at %s:%s" (describe_node node) file
                (Path.to_string path))
           (Scenario.edit_in_file ~file (fun tree -> Node.duplicate tree path)))

let modify ~class_name ~mutate tgt set =
  select_in set tgt
  |> List.concat_map (fun (file, path, node) ->
         mutate node
         |> List.map (fun (variant, what) ->
                Scenario.make ~id:"" ~class_name
                  ~description:
                    (Printf.sprintf "%s in %s at %s:%s" what (describe_node node) file
                       (Path.to_string path))
                  (Scenario.edit_in_file ~file (fun tree ->
                       Node.replace tree path variant))))

let move ~class_name ~src ~dst set =
  let sources = select_in set src in
  let destinations = select_in set dst in
  List.concat_map
    (fun (sfile, spath, snode) ->
      let current_parent = Option.map fst (Path.parent spath) in
      destinations
      |> List.filter (fun (dfile, dpath, _) ->
             not (dfile = sfile && Path.is_prefix ~prefix:spath dpath)
             && not (dfile = sfile && Some dpath = Option.map (fun p -> p) current_parent))
      |> List.map (fun (dfile, dpath, dnode) ->
             let description =
               Printf.sprintf "move %s from %s:%s into %s at %s:%s"
                 (describe_node snode) sfile (Path.to_string spath)
                 (describe_node dnode) dfile (Path.to_string dpath)
             in
             Scenario.make ~id:"" ~class_name ~description (fun set ->
                 if sfile = dfile then
                   Scenario.edit_in_file ~file:sfile
                     (fun tree -> Node.move tree ~src:spath ~dst_parent:dpath ~index:0)
                     set
                 else
                   (* Cross-file: delete from the source, insert into the
                      destination. *)
                   let ( let* ) = Result.bind in
                   let* set =
                     Scenario.edit_in_file ~file:sfile
                       (fun tree -> Node.delete tree spath)
                       set
                   in
                   Scenario.edit_in_file ~file:dfile
                     (fun tree -> Node.insert_child tree ~parent:dpath ~index:0 snode)
                     set)))
    sources

let copy_into ~class_name ~src ~dst set =
  let sources = select_in set src in
  let destinations = select_in set dst in
  List.concat_map
    (fun (sfile, spath, snode) ->
      destinations
      |> List.filter (fun (dfile, dpath, _) ->
             not (dfile = sfile && Path.is_prefix ~prefix:spath dpath))
      |> List.map (fun (dfile, dpath, dnode) ->
             let description =
               Printf.sprintf "copy %s from %s:%s into %s at %s:%s"
                 (describe_node snode) sfile (Path.to_string spath)
                 (describe_node dnode) dfile (Path.to_string dpath)
             in
             Scenario.make ~id:"" ~class_name ~description (fun set ->
                 Scenario.edit_in_file ~file:dfile
                   (fun tree -> Node.insert_child tree ~parent:dpath ~index:0 snode)
                   set)))
    sources

let insert_foreign ~class_name ~node ~description ~dst set =
  select_in set dst
  |> List.map (fun (dfile, dpath, dnode) ->
         Scenario.make ~id:"" ~class_name
           ~description:
             (Printf.sprintf "%s into %s at %s:%s" description (describe_node dnode)
                dfile (Path.to_string dpath))
           (fun set ->
             Scenario.edit_in_file ~file:dfile
               (fun tree -> Node.append_child tree ~parent:dpath node)
               set))

let union = List.concat

let sample rng n scenarios = Conferr_util.Rng.sample rng n scenarios

let limit n scenarios = List.filteri (fun i _ -> i < n) scenarios
