(** GEMS cognitive levels (paper §2).

    The Generic Error-Modeling System distinguishes three levels of
    cognitive processing; ConfErr's error classes map onto them, and the
    framework can weight a mixed faultload by the GEMS error-share
    figures (roughly 60% skill-based slips, 30% rule-based mistakes, 10%
    knowledge-based mistakes). *)

type level = Skill_based | Rule_based | Knowledge_based

val name : level -> string

val gems_share : level -> float
(** The approximate share of general human errors GEMS attributes to the
    level: 0.6 / 0.3 / 0.1. *)

val of_class_name : string -> level option
(** Classify a scenario class name: [typo/*] and the skill-based
    structural classes are {!Skill_based}; borrowed-directive and
    variation classes are {!Rule_based}; [semantic/*] is
    {!Knowledge_based}.  Unknown prefixes map to [None]. *)

val weighted_mix :
  rng:Conferr_util.Rng.t ->
  total:int ->
  skill:Scenario.t list ->
  rule:Scenario.t list ->
  knowledge:Scenario.t list ->
  Scenario.t list
(** Draw a faultload of [total] scenarios with the GEMS proportions
    (without replacement within each pool; pools smaller than their
    quota contribute everything they have). *)
