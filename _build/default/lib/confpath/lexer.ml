type token =
  | SLASH
  | DSLASH
  | STAR
  | DOT
  | DOTDOT
  | AT
  | LBRACK
  | RBRACK
  | LPAREN
  | RPAREN
  | COMMA
  | EQ
  | NEQ
  | AND
  | OR
  | IDENT of string
  | STRING of string
  | INT of int
  | EOF

exception Lex_error of string

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '-'

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let rec scan i acc =
    if i >= n then List.rev (EOF :: acc)
    else
      match input.[i] with
      | ' ' | '\t' | '\n' -> scan (i + 1) acc
      | '/' when i + 1 < n && input.[i + 1] = '/' -> scan (i + 2) (DSLASH :: acc)
      | '/' -> scan (i + 1) (SLASH :: acc)
      | '*' -> scan (i + 1) (STAR :: acc)
      | '.' when i + 1 < n && input.[i + 1] = '.' -> scan (i + 2) (DOTDOT :: acc)
      | '.' -> scan (i + 1) (DOT :: acc)
      | '@' -> scan (i + 1) (AT :: acc)
      | '[' -> scan (i + 1) (LBRACK :: acc)
      | ']' -> scan (i + 1) (RBRACK :: acc)
      | '(' -> scan (i + 1) (LPAREN :: acc)
      | ')' -> scan (i + 1) (RPAREN :: acc)
      | ',' -> scan (i + 1) (COMMA :: acc)
      | '=' -> scan (i + 1) (EQ :: acc)
      | '!' when i + 1 < n && input.[i + 1] = '=' -> scan (i + 2) (NEQ :: acc)
      | ('\'' | '"') as quote ->
        let rec find j =
          if j >= n then raise (Lex_error "unterminated string literal")
          else if input.[j] = quote then j
          else find (j + 1)
        in
        let close = find (i + 1) in
        scan (close + 1) (STRING (String.sub input (i + 1) (close - i - 1)) :: acc)
      | c when is_digit c ->
        let rec span j = if j < n && is_digit input.[j] then span (j + 1) else j in
        let stop = span i in
        scan stop (INT (int_of_string (String.sub input i (stop - i))) :: acc)
      | c when is_name_char c ->
        let rec span j = if j < n && is_name_char input.[j] then span (j + 1) else j in
        let stop = span i in
        let word = String.sub input i (stop - i) in
        let tok =
          match word with "and" -> AND | "or" -> OR | _ -> IDENT word
        in
        scan stop (tok :: acc)
      | c -> raise (Lex_error (Printf.sprintf "unexpected character %C at offset %d" c i))
  in
  scan 0 []

let pp_token fmt = function
  | SLASH -> Format.pp_print_string fmt "/"
  | DSLASH -> Format.pp_print_string fmt "//"
  | STAR -> Format.pp_print_string fmt "*"
  | DOT -> Format.pp_print_string fmt "."
  | DOTDOT -> Format.pp_print_string fmt ".."
  | AT -> Format.pp_print_string fmt "@"
  | LBRACK -> Format.pp_print_string fmt "["
  | RBRACK -> Format.pp_print_string fmt "]"
  | LPAREN -> Format.pp_print_string fmt "("
  | RPAREN -> Format.pp_print_string fmt ")"
  | COMMA -> Format.pp_print_string fmt ","
  | EQ -> Format.pp_print_string fmt "="
  | NEQ -> Format.pp_print_string fmt "!="
  | AND -> Format.pp_print_string fmt "and"
  | OR -> Format.pp_print_string fmt "or"
  | IDENT s -> Format.fprintf fmt "ident(%s)" s
  | STRING s -> Format.fprintf fmt "string(%S)" s
  | INT i -> Format.fprintf fmt "int(%d)" i
  | EOF -> Format.pp_print_string fmt "<eof>"
