module Node = Conftree.Node
module Path = Conftree.Path

type result_set = (Path.t * Node.t) list

let value_of root (path, (node : Node.t)) = function
  | Ast.Attr a -> Node.attr node a
  | Ast.Kind -> Some node.kind
  | Ast.Node_name -> Some node.name
  | Ast.Node_value -> node.value
  | Ast.Literal s ->
    ignore root;
    ignore path;
    Some s

let rec pred_holds root ~position ~set_size ctx = function
  | Ast.Position n -> position = n
  | Ast.Last -> position = set_size
  | Ast.Exists v -> value_of root ctx v <> None
  | Ast.Compare (a, cmp, b) ->
    (match (value_of root ctx a, value_of root ctx b) with
     | Some va, Some vb -> (match cmp with Ast.Eq -> va = vb | Ast.Neq -> va <> vb)
     | _, _ -> (match cmp with Ast.Eq -> false | Ast.Neq -> true))
  | Ast.Contains (a, b) ->
    (match (value_of root ctx a, value_of root ctx b) with
     | Some hay, Some needle -> Conferr_util.Strutil.contains_substring ~needle hay
     | _, _ -> false)
  | Ast.Starts_with (a, b) ->
    (match (value_of root ctx a, value_of root ctx b) with
     | Some s, Some prefix -> Conferr_util.Strutil.is_prefix ~prefix s
     | _, _ -> false)
  | Ast.And (p, q) ->
    pred_holds root ~position ~set_size ctx p && pred_holds root ~position ~set_size ctx q
  | Ast.Or (p, q) ->
    pred_holds root ~position ~set_size ctx p || pred_holds root ~position ~set_size ctx q
  | Ast.Not p -> not (pred_holds root ~position ~set_size ctx p)

let name_test_holds test (node : Node.t) =
  match test with Ast.Any -> true | Ast.Name n -> node.name = n

let rec descendants_or_self path (node : Node.t) =
  (path, node)
  :: List.concat
       (List.mapi (fun i c -> descendants_or_self (path @ [ i ]) c) node.children)

(* Candidates produced by one step from one context node, in document
   order, before predicates. *)
let axis_candidates root (path, (node : Node.t)) = function
  | Ast.Child -> List.mapi (fun i c -> (path @ [ i ], c)) node.children
  | Ast.Descendant ->
    (match descendants_or_self path node with [] -> [] | _self :: rest -> rest)
  | Ast.Self -> [ (path, node) ]
  | Ast.Parent ->
    (match Path.parent path with
     | None -> []
     | Some (parent_path, _) ->
       (match Node.get root parent_path with
        | None -> []
        | Some parent -> [ (parent_path, parent) ]))

let apply_preds root preds candidates =
  List.fold_left
    (fun cands pred ->
      let size = List.length cands in
      List.filteri
        (fun i ctx -> pred_holds root ~position:(i + 1) ~set_size:size ctx pred)
        cands)
    candidates preds

let step_eval root contexts { Ast.axis; test; preds } =
  let per_context ctx =
    axis_candidates root ctx axis
    |> List.filter (fun (_, n) -> name_test_holds test n)
    |> apply_preds root preds
  in
  let all = List.concat_map per_context contexts in
  (* Deduplicate by path, keeping document order. *)
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (p, _) ->
      if Hashtbl.mem seen p then false
      else begin
        Hashtbl.add seen p ();
        true
      end)
    all
  |> List.sort (fun (a, _) (b, _) -> Path.compare a b)

let eval { Ast.absolute = _; steps } root =
  List.fold_left (step_eval root) [ ([], root) ] steps

let matches query root path =
  List.exists (fun (p, _) -> Path.equal p path) (eval query root)
