(** ConfPath query evaluation over configuration trees. *)

type result_set = (Conftree.Path.t * Conftree.Node.t) list
(** Matches in document order, without duplicates. *)

val eval : Ast.t -> Conftree.Node.t -> result_set
(** [eval query root] evaluates [query] with [root] as both the context
    node and the document root.  Relative and absolute queries coincide
    because evaluation always starts at the root. *)

val matches : Ast.t -> Conftree.Node.t -> Conftree.Path.t -> bool
(** [matches query root path] is true when [path] is among the query's
    results. *)
