(** Tokenizer for ConfPath queries. *)

type token =
  | SLASH          (** [/] *)
  | DSLASH         (** [//] *)
  | STAR
  | DOT
  | DOTDOT
  | AT
  | LBRACK
  | RBRACK
  | LPAREN
  | RPAREN
  | COMMA
  | EQ
  | NEQ
  | AND
  | OR
  | IDENT of string  (** names, including function names *)
  | STRING of string (** single- or double-quoted literal *)
  | INT of int
  | EOF

exception Lex_error of string

val tokenize : string -> token list
(** Raises {!Lex_error} on malformed input (unterminated string, stray
    character). *)

val pp_token : Format.formatter -> token -> unit
