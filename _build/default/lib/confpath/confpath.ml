(** ConfPath: the XPath-subset query language ConfErr uses to designate
    mutation targets in configuration trees.

    {[
      let q = Confpath.compile_exn "//directive[name()='Listen']" in
      let hits = Confpath.select q tree
    ]} *)

module Ast = Ast
module Lexer = Lexer
module Parser = Parser
module Eval = Eval

type query = Ast.t

let compile = Parser.parse

let compile_exn = Parser.parse_exn

let select query tree = Eval.eval query tree

let select_str_exn query_text tree = Eval.eval (compile_exn query_text) tree

let matches = Eval.matches

let to_string = Ast.to_string
