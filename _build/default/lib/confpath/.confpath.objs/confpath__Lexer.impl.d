lib/confpath/lexer.ml: Format List Printf String
