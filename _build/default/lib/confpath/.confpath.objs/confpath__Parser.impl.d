lib/confpath/parser.ml: Ast Format Lexer List
