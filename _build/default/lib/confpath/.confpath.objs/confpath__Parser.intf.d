lib/confpath/parser.mli: Ast
