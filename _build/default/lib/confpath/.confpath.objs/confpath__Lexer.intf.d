lib/confpath/lexer.mli: Format
