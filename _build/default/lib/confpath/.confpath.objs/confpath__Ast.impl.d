lib/confpath/ast.ml: Format List
