lib/confpath/confpath.ml: Ast Eval Lexer Parser
