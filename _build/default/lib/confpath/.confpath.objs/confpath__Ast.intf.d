lib/confpath/ast.mli: Format
