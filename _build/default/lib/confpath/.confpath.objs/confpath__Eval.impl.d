lib/confpath/eval.ml: Ast Conferr_util Conftree Hashtbl List
