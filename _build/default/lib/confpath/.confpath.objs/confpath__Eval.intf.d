lib/confpath/eval.mli: Ast Conftree
