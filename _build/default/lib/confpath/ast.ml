type axis = Child | Descendant | Parent | Self

type name_test = Name of string | Any

type value_expr = Attr of string | Kind | Node_name | Node_value | Literal of string

type cmp = Eq | Neq

type pred =
  | Compare of value_expr * cmp * value_expr
  | Exists of value_expr
  | Position of int
  | Last
  | Contains of value_expr * value_expr
  | Starts_with of value_expr * value_expr
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type step = { axis : axis; test : name_test; preds : pred list }

type t = { absolute : bool; steps : step list }

let pp_value_expr fmt = function
  | Attr a -> Format.fprintf fmt "@%s" a
  | Kind -> Format.pp_print_string fmt "kind()"
  | Node_name -> Format.pp_print_string fmt "name()"
  | Node_value -> Format.pp_print_string fmt "value()"
  | Literal s -> Format.fprintf fmt "'%s'" s

let rec pp_pred fmt = function
  | Compare (a, Eq, b) -> Format.fprintf fmt "%a=%a" pp_value_expr a pp_value_expr b
  | Compare (a, Neq, b) -> Format.fprintf fmt "%a!=%a" pp_value_expr a pp_value_expr b
  | Exists v -> pp_value_expr fmt v
  | Position n -> Format.pp_print_int fmt n
  | Last -> Format.pp_print_string fmt "last()"
  | Contains (a, b) ->
    Format.fprintf fmt "contains(%a,%a)" pp_value_expr a pp_value_expr b
  | Starts_with (a, b) ->
    Format.fprintf fmt "starts-with(%a,%a)" pp_value_expr a pp_value_expr b
  | And (a, b) -> Format.fprintf fmt "%a and %a" pp_pred a pp_pred b
  | Or (a, b) -> Format.fprintf fmt "%a or %a" pp_pred a pp_pred b
  | Not p -> Format.fprintf fmt "not(%a)" pp_pred p

let pp_step fmt { axis; test; preds } =
  (match (axis, test) with
   | Parent, _ -> Format.pp_print_string fmt ".."
   | Self, _ -> Format.pp_print_string fmt "."
   | (Child | Descendant), Name n -> Format.pp_print_string fmt n
   | (Child | Descendant), Any -> Format.pp_print_string fmt "*");
  List.iter (fun p -> Format.fprintf fmt "[%a]" pp_pred p) preds

let pp fmt { absolute; steps } =
  let sep i { axis; _ } =
    match axis with
    | Descendant -> "//"
    | Child | Parent | Self -> if i = 0 && not absolute then "" else "/"
  in
  List.iteri
    (fun i step -> Format.fprintf fmt "%s%a" (sep i step) pp_step step)
    steps

let to_string t = Format.asprintf "%a" pp t
