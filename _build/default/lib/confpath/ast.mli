(** Abstract syntax of ConfPath queries.

    ConfPath is the XPath subset ConfErr uses to select mutation targets
    inside configuration trees (paper §3.3: "target nodes are easily
    specified via an XPath query"). *)

type axis =
  | Child        (** default axis: [name] *)
  | Descendant   (** [//name] *)
  | Parent       (** [..] *)
  | Self         (** [.] *)

type name_test = Name of string | Any

type value_expr =
  | Attr of string   (** [@key] *)
  | Kind             (** [kind()] *)
  | Node_name        (** [name()] *)
  | Node_value       (** [value()] *)
  | Literal of string

type cmp = Eq | Neq

type pred =
  | Compare of value_expr * cmp * value_expr
  | Exists of value_expr      (** attribute present / value present *)
  | Position of int           (** 1-based position, e.g. [\[2\]] *)
  | Last                      (** [\[last()\]] *)
  | Contains of value_expr * value_expr
  | Starts_with of value_expr * value_expr
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type step = { axis : axis; test : name_test; preds : pred list }

type t = { absolute : bool; steps : step list }

val pp : Format.formatter -> t -> unit

val to_string : t -> string
