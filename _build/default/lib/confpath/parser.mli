(** Recursive-descent parser for ConfPath queries.

    Grammar (informal):
    {v
      query  ::= ('/' | '//')? step (('/' | '//') step)*
      step   ::= '.' | '..' | (name | '*') pred*
      pred   ::= '[' or-expr ']'
      or     ::= and ('or' and)*
      and    ::= atom ('and' atom)*
      atom   ::= INT | 'last()' | 'not(' or ')'
               | 'contains(' value ',' value ')'
               | value (('=' | '!=') value)?
      value  ::= '@'name | 'kind()' | 'name()' | 'value()' | STRING
    v} *)

exception Parse_error of string

val parse : string -> (Ast.t, string) result
(** Never raises: lexing and parsing failures are returned as [Error]. *)

val parse_exn : string -> Ast.t
(** Raises {!Parse_error}. *)
