exception Parse_error of string

type state = { mutable toks : Lexer.token list }

let peek st = match st.toks with [] -> Lexer.EOF | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok what =
  if peek st = tok then advance st
  else
    raise
      (Parse_error
         (Format.asprintf "expected %s, found %a" what Lexer.pp_token (peek st)))

let parse_value_expr st =
  match peek st with
  | Lexer.AT ->
    advance st;
    (match peek st with
     | Lexer.IDENT name ->
       advance st;
       Ast.Attr name
     | t -> raise (Parse_error (Format.asprintf "expected attribute name after @, found %a" Lexer.pp_token t)))
  | Lexer.STRING s ->
    advance st;
    Ast.Literal s
  | Lexer.IDENT ("kind" | "name" | "value" as fn) ->
    advance st;
    expect st Lexer.LPAREN "(";
    expect st Lexer.RPAREN ")";
    (match fn with
     | "kind" -> Ast.Kind
     | "name" -> Ast.Node_name
     | _ -> Ast.Node_value)
  | t -> raise (Parse_error (Format.asprintf "expected value expression, found %a" Lexer.pp_token t))

let rec parse_or st =
  let left = parse_and st in
  if peek st = Lexer.OR then begin
    advance st;
    Ast.Or (left, parse_or st)
  end
  else left

and parse_and st =
  let left = parse_atom st in
  if peek st = Lexer.AND then begin
    advance st;
    Ast.And (left, parse_and st)
  end
  else left

and parse_atom st =
  match peek st with
  | Lexer.INT n ->
    advance st;
    Ast.Position n
  | Lexer.IDENT "last" ->
    advance st;
    expect st Lexer.LPAREN "(";
    expect st Lexer.RPAREN ")";
    Ast.Last
  | Lexer.IDENT "not" ->
    advance st;
    expect st Lexer.LPAREN "(";
    let inner = parse_or st in
    expect st Lexer.RPAREN ")";
    Ast.Not inner
  | Lexer.IDENT "contains" ->
    advance st;
    expect st Lexer.LPAREN "(";
    let a = parse_value_expr st in
    expect st Lexer.COMMA ",";
    let b = parse_value_expr st in
    expect st Lexer.RPAREN ")";
    Ast.Contains (a, b)
  | Lexer.IDENT "starts-with" ->
    advance st;
    expect st Lexer.LPAREN "(";
    let a = parse_value_expr st in
    expect st Lexer.COMMA ",";
    let b = parse_value_expr st in
    expect st Lexer.RPAREN ")";
    Ast.Starts_with (a, b)
  | _ ->
    let left = parse_value_expr st in
    (match peek st with
     | Lexer.EQ ->
       advance st;
       Ast.Compare (left, Ast.Eq, parse_value_expr st)
     | Lexer.NEQ ->
       advance st;
       Ast.Compare (left, Ast.Neq, parse_value_expr st)
     | Lexer.RBRACK | Lexer.AND | Lexer.OR | Lexer.RPAREN | Lexer.COMMA -> Ast.Exists left
     | t -> raise (Parse_error (Format.asprintf "unexpected token %a in predicate" Lexer.pp_token t)))

let parse_preds st =
  let rec loop acc =
    if peek st = Lexer.LBRACK then begin
      advance st;
      let p = parse_or st in
      expect st Lexer.RBRACK "]";
      loop (p :: acc)
    end
    else List.rev acc
  in
  loop []

let parse_step st axis =
  match peek st with
  | Lexer.DOT ->
    advance st;
    { Ast.axis = (match axis with Ast.Descendant -> Ast.Descendant | _ -> Ast.Self);
      test = Ast.Any; preds = [] }
  | Lexer.DOTDOT ->
    advance st;
    { Ast.axis = Ast.Parent; test = Ast.Any; preds = parse_preds st }
  | Lexer.STAR ->
    advance st;
    { Ast.axis = axis; test = Ast.Any; preds = parse_preds st }
  | Lexer.IDENT name ->
    advance st;
    { Ast.axis = axis; test = Ast.Name name; preds = parse_preds st }
  | t -> raise (Parse_error (Format.asprintf "expected a step, found %a" Lexer.pp_token t))

let parse_query st =
  let absolute, first_axis =
    match peek st with
    | Lexer.SLASH ->
      advance st;
      (true, Ast.Child)
    | Lexer.DSLASH ->
      advance st;
      (true, Ast.Descendant)
    | _ -> (false, Ast.Child)
  in
  let first = parse_step st first_axis in
  let rec more acc =
    match peek st with
    | Lexer.SLASH ->
      advance st;
      more (parse_step st Ast.Child :: acc)
    | Lexer.DSLASH ->
      advance st;
      more (parse_step st Ast.Descendant :: acc)
    | Lexer.EOF -> List.rev acc
    | t -> raise (Parse_error (Format.asprintf "unexpected token %a after step" Lexer.pp_token t))
  in
  { Ast.absolute; steps = more [ first ] }

let parse_exn input =
  let toks =
    try Lexer.tokenize input
    with Lexer.Lex_error msg -> raise (Parse_error msg)
  in
  parse_query { toks }

let parse input =
  match parse_exn input with
  | ast -> Ok ast
  | exception Parse_error msg -> Error msg
