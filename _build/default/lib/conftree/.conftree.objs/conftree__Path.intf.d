lib/conftree/path.mli: Format
