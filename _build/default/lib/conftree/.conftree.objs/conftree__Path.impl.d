lib/conftree/path.ml: Format Int List
