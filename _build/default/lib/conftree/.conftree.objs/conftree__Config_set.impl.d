lib/conftree/config_set.ml: List Node
