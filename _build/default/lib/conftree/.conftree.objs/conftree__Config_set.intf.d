lib/conftree/config_set.mli: Node
