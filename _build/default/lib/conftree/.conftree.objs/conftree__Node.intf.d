lib/conftree/node.mli: Format Path
