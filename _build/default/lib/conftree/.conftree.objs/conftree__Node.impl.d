lib/conftree/node.ml: Format List Option Path String
