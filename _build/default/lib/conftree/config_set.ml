type t = (string * Node.t) list

let empty = []

let add t name node =
  if List.mem_assoc name t then
    List.map (fun (n, v) -> if n = name then (n, node) else (n, v)) t
  else t @ [ (name, node) ]

let of_list bindings = List.fold_left (fun acc (n, v) -> add acc n v) empty bindings

let to_list t = t

let find t name = List.assoc_opt name t

let names t = List.map fst t

let update t name f =
  match List.assoc_opt name t with
  | None -> None
  | Some node ->
    (match f node with
     | None -> None
     | Some node' -> Some (add t name node'))

let map f t = List.map (fun (n, v) -> (n, f n v)) t

let equal a b =
  List.length a = List.length b
  && List.for_all2 (fun (n1, v1) (n2, v2) -> n1 = n2 && Node.equal v1 v2) a b

let cardinal = List.length
