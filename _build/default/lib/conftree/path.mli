(** Paths identify nodes inside a configuration tree.

    A path is the list of child indices walked from the root; [[]] is the
    root itself.  Paths are the currency between query evaluation
    ({!Confpath}) and tree edits ({!Node}). *)

type t = int list

val root : t

val child : t -> int -> t
(** [child p i] extends [p] with child index [i]. *)

val parent : t -> (t * int) option
(** [parent p] splits off the last step: [Some (prefix, last_index)],
    or [None] for the root. *)

val is_prefix : prefix:t -> t -> bool
(** [is_prefix ~prefix p] holds when [prefix] is an ancestor-or-self
    of [p]. *)

val is_strict_prefix : prefix:t -> t -> bool

val compare : t -> t -> int
(** Lexicographic; document order for siblings. *)

val equal : t -> t -> bool

val adjust_after_delete : deleted:t -> t -> t option
(** [adjust_after_delete ~deleted p] rewrites [p] so it designates the
    same node after the node at [deleted] was removed.  Returns [None]
    when [p] pointed inside the deleted subtree. *)

val adjust_after_insert : inserted:t -> t -> t
(** [adjust_after_insert ~inserted p] rewrites [p] so it designates the
    same node after a new node was inserted at position [inserted]. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Renders as ["/0/3/1"]; the root is ["/"]. *)
