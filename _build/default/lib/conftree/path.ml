type t = int list

let root = []

let child p i = p @ [ i ]

let parent p =
  match List.rev p with
  | [] -> None
  | last :: rev_prefix -> Some (List.rev rev_prefix, last)

let rec is_prefix ~prefix p =
  match (prefix, p) with
  | [], _ -> true
  | _, [] -> false
  | a :: pre, b :: rest -> a = b && is_prefix ~prefix:pre rest

let is_strict_prefix ~prefix p = is_prefix ~prefix p && List.length prefix < List.length p

let rec compare a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs, y :: ys ->
    let c = Int.compare x y in
    if c <> 0 then c else compare xs ys

let equal a b = compare a b = 0

let rec adjust_after_delete ~deleted p =
  match (deleted, p) with
  | [], _ -> None (* whole tree deleted *)
  | [ d ], i :: rest ->
    if i = d && rest = [] then None
    else if i = d then None (* inside the deleted subtree *)
    else if i > d then Some ((i - 1) :: rest)
    else Some (i :: rest)
  | _, [] -> Some [] (* p is an ancestor of the deleted node *)
  | d :: ds, i :: rest ->
    if i <> d then Some (i :: rest)
    else
      (match adjust_after_delete ~deleted:ds rest with
       | None -> None
       | Some rest' -> Some (i :: rest'))

let rec adjust_after_insert ~inserted p =
  match (inserted, p) with
  | [], _ -> p
  | [ d ], i :: rest -> if i >= d then (i + 1) :: rest else i :: rest
  | _, [] -> []
  | d :: ds, i :: rest ->
    if i <> d then i :: rest else i :: adjust_after_insert ~inserted:ds rest

let pp fmt p =
  if p = [] then Format.pp_print_string fmt "/"
  else List.iter (fun i -> Format.fprintf fmt "/%d" i) p

let to_string p = Format.asprintf "%a" pp p
