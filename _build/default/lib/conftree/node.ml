type t = {
  kind : string;
  name : string;
  value : string option;
  attrs : (string * string) list;
  children : t list;
}

let kind_root = "root"
let kind_section = "section"
let kind_directive = "directive"
let kind_comment = "comment"
let kind_blank = "blank"
let kind_line = "line"
let kind_word = "word"
let kind_record = "record"
let kind_element = "element"
let kind_text = "text"

let make ?(name = "") ?value ?(attrs = []) ?(children = []) kind =
  { kind; name; value; attrs; children }

let root children = make ~children kind_root

let section ?attrs name children = make ?attrs ~name ~children kind_section

let directive ?attrs ?value name = make ?attrs ?value ~name kind_directive

let comment text = make ~value:text kind_comment

let blank = make kind_blank

let attr t key = List.assoc_opt key t.attrs

let set_attr t key v = { t with attrs = (key, v) :: List.remove_assoc key t.attrs }

let remove_attr t key = { t with attrs = List.remove_assoc key t.attrs }

let value_or ~default t = Option.value ~default t.value

let rec size t = 1 + List.fold_left (fun acc c -> acc + size c) 0 t.children

let rec equal a b =
  a.kind = b.kind && a.name = b.name && a.value = b.value && a.attrs = b.attrs
  && List.length a.children = List.length b.children
  && List.for_all2 equal a.children b.children

let rec equal_modulo_attrs a b =
  a.kind = b.kind && a.name = b.name && a.value = b.value
  && List.length a.children = List.length b.children
  && List.for_all2 equal_modulo_attrs a.children b.children

let rec get t = function
  | [] -> Some t
  | i :: rest ->
    (match List.nth_opt t.children i with
     | None -> None
     | Some c -> get c rest)

let children_of t path = Option.map (fun n -> n.children) (get t path)

let fold f t init =
  let rec go path t acc =
    let acc = f path t acc in
    List.fold_left
      (fun (i, acc) c -> (i + 1, go (path @ [ i ]) c acc))
      (0, acc) t.children
    |> snd
  in
  go [] t init

let find_all pred t =
  fold (fun path n acc -> if pred n then (path, n) :: acc else acc) t [] |> List.rev

let find_first pred t =
  match find_all pred t with [] -> None | x :: _ -> Some x

let update t path f =
  let rec go t = function
    | [] -> Some (f t)
    | i :: rest ->
      (match List.nth_opt t.children i with
       | None -> None
       | Some c ->
         (match go c rest with
          | None -> None
          | Some c' ->
            Some { t with children = List.mapi (fun j x -> if j = i then c' else x) t.children }))
  in
  go t path

let replace t path node = update t path (fun _ -> node)

let delete t path =
  match Path.parent path with
  | None -> None
  | Some (parent_path, idx) ->
    (match get t parent_path with
     | None -> None
     | Some parent when idx >= List.length parent.children -> None
     | Some _ ->
       update t parent_path (fun p ->
           { p with children = List.filteri (fun j _ -> j <> idx) p.children }))

let insert_child t ~parent ~index node =
  match get t parent with
  | None -> None
  | Some p ->
    let n = List.length p.children in
    let index = if index < 0 then 0 else if index > n then n else index in
    let before = List.filteri (fun j _ -> j < index) p.children in
    let after = List.filteri (fun j _ -> j >= index) p.children in
    update t parent (fun p -> { p with children = before @ (node :: after) })

let append_child t ~parent node =
  match get t parent with
  | None -> None
  | Some p -> insert_child t ~parent ~index:(List.length p.children) node

let duplicate t path =
  match (get t path, Path.parent path) with
  | Some node, Some (parent, idx) -> insert_child t ~parent ~index:(idx + 1) node
  | _, _ -> None

let move t ~src ~dst_parent ~index =
  if Path.is_prefix ~prefix:src dst_parent then None
  else
    match get t src with
    | None -> None
    | Some node ->
      (match delete t src with
       | None -> None
       | Some t' ->
         (match Path.adjust_after_delete ~deleted:src dst_parent with
          | None -> None
          | Some dst' ->
            (* When moving within the same parent to a later position, the
               deletion shifted the insertion index by one. *)
            let index =
              match Path.parent src with
              | Some (p, i) when Path.equal p dst_parent && index > i -> index - 1
              | Some _ | None -> index
            in
            insert_child t' ~parent:dst' ~index node))

let copy t ~src ~dst_parent ~index =
  match get t src with
  | None -> None
  | Some node -> insert_child t ~parent:dst_parent ~index node

let rec map_nodes f t = f { t with children = List.map (map_nodes f) t.children }

let rec pp_level level fmt t =
  let indent = String.make (2 * level) ' ' in
  Format.fprintf fmt "%s%s" indent t.kind;
  if t.name <> "" then Format.fprintf fmt " %S" t.name;
  (match t.value with None -> () | Some v -> Format.fprintf fmt " = %S" v);
  List.iter (fun (k, v) -> Format.fprintf fmt " @%s=%S" k v) t.attrs;
  List.iter
    (fun c ->
      Format.pp_print_newline fmt ();
      pp_level (level + 1) fmt c)
    t.children

let pp fmt t = pp_level 0 fmt t

let to_string t = Format.asprintf "%a" pp t
