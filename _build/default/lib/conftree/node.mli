(** Abstract representation of configuration files.

    Following the paper (§3.2), configurations are modelled as trees of
    information items.  Each node carries a [kind] (its role in the
    representation: section, directive, word, record, ...), a [name], an
    optional [value], a property list of string attributes, and ordered
    children.  Trees are immutable; every edit returns a new tree.

    Two representations of the same file differ only in node kinds and
    shape (e.g. the typo plugin views a file as lines of words while the
    structural plugin views it as sections of directives); the same node
    type serves both. *)

type t = {
  kind : string;
  name : string;
  value : string option;
  attrs : (string * string) list;
  children : t list;
}

(** {1 Well-known kinds} *)

val kind_root : string
val kind_section : string
val kind_directive : string
val kind_comment : string
val kind_blank : string
val kind_line : string
val kind_word : string
val kind_record : string
val kind_element : string
val kind_text : string

(** {1 Construction} *)

val make :
  ?name:string -> ?value:string -> ?attrs:(string * string) list ->
  ?children:t list -> string -> t
(** [make kind] builds a node; [name] defaults to [""]. *)

val root : t list -> t
(** Root node wrapping top-level children. *)

val section : ?attrs:(string * string) list -> string -> t list -> t

val directive : ?attrs:(string * string) list -> ?value:string -> string -> t

val comment : string -> t

val blank : t

(** {1 Accessors} *)

val attr : t -> string -> string option

val set_attr : t -> string -> string -> t

val remove_attr : t -> string -> t

val value_or : default:string -> t -> string

val size : t -> int
(** Total node count, including the node itself. *)

val equal : t -> t -> bool
(** Structural equality including attribute lists (order-sensitive). *)

val equal_modulo_attrs : t -> t -> bool
(** Equality ignoring attributes (used to compare configurations whose
    provenance annotations differ). *)

(** {1 Navigation} *)

val get : t -> Path.t -> t option

val children_of : t -> Path.t -> t list option

val fold : (Path.t -> t -> 'a -> 'a) -> t -> 'a -> 'a
(** Pre-order fold over every node with its path. *)

val find_all : (t -> bool) -> t -> (Path.t * t) list
(** All nodes satisfying the predicate, in document order. *)

val find_first : (t -> bool) -> t -> (Path.t * t) option

(** {1 Edits}

    All edits return [None] when the path does not designate a suitable
    node. *)

val update : t -> Path.t -> (t -> t) -> t option
(** Apply a function to the node at the path. *)

val replace : t -> Path.t -> t -> t option

val delete : t -> Path.t -> t option
(** Remove the node at the path.  Deleting the root is refused. *)

val insert_child : t -> parent:Path.t -> index:int -> t -> t option
(** Insert a new child under [parent] at [index] (clamped to the valid
    range). *)

val append_child : t -> parent:Path.t -> t -> t option

val duplicate : t -> Path.t -> t option
(** Insert a copy of the node immediately after itself. *)

val move : t -> src:Path.t -> dst_parent:Path.t -> index:int -> t option
(** Detach the subtree at [src] and re-insert it under [dst_parent].
    Refused when [dst_parent] lies inside the moved subtree. *)

val copy : t -> src:Path.t -> dst_parent:Path.t -> index:int -> t option
(** Like {!move} but keeps the original. *)

val map_nodes : (t -> t) -> t -> t
(** Bottom-up map over every node (children are mapped first). *)

(** {1 Rendering} *)

val pp : Format.formatter -> t -> unit
(** Indented debug rendering. *)

val to_string : t -> string
