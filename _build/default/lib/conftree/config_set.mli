(** A named set of configuration trees.

    The SUT's configuration may span several files (the paper's example:
    [httpd.conf] and [ssl.conf] for Apache); fault scenarios mutate the
    whole set so cross-file errors can be expressed. *)

type t

val empty : t

val of_list : (string * Node.t) list -> t
(** Later bindings for the same file name replace earlier ones. *)

val to_list : t -> (string * Node.t) list
(** In insertion order. *)

val find : t -> string -> Node.t option

val names : t -> string list

val add : t -> string -> Node.t -> t
(** Adds or replaces the tree bound to the file name. *)

val update : t -> string -> (Node.t -> Node.t option) -> t option
(** [update t file f] rewrites one tree; [f] returning [None] or a
    missing [file] yields [None]. *)

val map : (string -> Node.t -> Node.t) -> t -> t

val equal : t -> t -> bool

val cardinal : t -> int
