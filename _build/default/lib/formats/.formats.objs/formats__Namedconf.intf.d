lib/formats/namedconf.mli: Conftree Parse_error
