lib/formats/ini.ml: Buffer Conferr_util Conftree List Option Printf String
