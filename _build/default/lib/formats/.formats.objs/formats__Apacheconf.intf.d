lib/formats/apacheconf.mli: Conftree Parse_error
