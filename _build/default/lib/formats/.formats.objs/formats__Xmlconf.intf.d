lib/formats/xmlconf.mli: Conftree Parse_error
