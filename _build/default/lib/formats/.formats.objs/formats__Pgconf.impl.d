lib/formats/pgconf.ml: Buffer Conferr_util Conftree List Printf String
