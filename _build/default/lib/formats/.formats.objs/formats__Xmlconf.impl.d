lib/formats/xmlconf.ml: Buffer Conftree List Parse_error Printf String
