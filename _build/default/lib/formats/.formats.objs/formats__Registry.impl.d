lib/formats/registry.ml: Apacheconf Bindzone Conftree Ini List Namedconf Parse_error Pgconf Tinydns Xmlconf
