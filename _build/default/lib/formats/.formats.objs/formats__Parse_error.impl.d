lib/formats/parse_error.ml: Format
