lib/formats/apacheconf.ml: Buffer Conferr_util Conftree List Option Parse_error Printf String
