lib/formats/tinydns.ml: Buffer Conferr_util Conftree List Parse_error Printf String
