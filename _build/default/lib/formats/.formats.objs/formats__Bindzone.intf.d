lib/formats/bindzone.mli: Conftree Parse_error
