lib/formats/ini.mli: Conftree Parse_error
