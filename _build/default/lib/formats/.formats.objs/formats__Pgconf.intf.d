lib/formats/pgconf.mli: Conftree Parse_error
