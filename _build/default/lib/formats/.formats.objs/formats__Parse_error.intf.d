lib/formats/parse_error.mli: Format
