lib/formats/tinydns.mli: Conftree Parse_error
