lib/formats/registry.mli: Conftree Parse_error
