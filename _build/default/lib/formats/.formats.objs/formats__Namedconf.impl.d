lib/formats/namedconf.ml: Buffer Conferr_util Conftree List Parse_error Printf String
