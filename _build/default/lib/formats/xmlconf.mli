(** Generic XML configuration files.

    A deliberately small XML subset sufficient for configuration files:
    elements with attributes, text content, comments, and self-closing
    tags.  Processing instructions and the XML declaration are skipped;
    DTDs, namespaces and CDATA are not supported.

    The parsed tree is

    {v root > element
       element > (element | text | comment)* v}

    with XML attributes mapped directly onto node attributes and the
    standard five entities decoded in text and attribute values. *)

val parse : string -> (Conftree.Node.t, Parse_error.t) result

val serialize : Conftree.Node.t -> (string, string) result
(** Fails when the root does not contain exactly one element, or when a
    node kind has no XML equivalent. *)

val escape : string -> string
(** Entity-encode ["&<>\"'"]. *)

val unescape : string -> string
