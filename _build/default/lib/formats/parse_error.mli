(** Parse failures reported by format parsers. *)

type t = { line : int; message : string }
(** [line] is 1-based; 0 means "whole file". *)

val make : ?line:int -> string -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string
