module Node = Conftree.Node

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else if s.[i] = '&' then begin
      let entity_end =
        match String.index_from_opt s i ';' with Some j when j - i <= 6 -> Some j | _ -> None
      in
      match entity_end with
      | None ->
        Buffer.add_char buf '&';
        go (i + 1)
      | Some j ->
        let name = String.sub s (i + 1) (j - i - 1) in
        (match name with
         | "amp" -> Buffer.add_char buf '&'
         | "lt" -> Buffer.add_char buf '<'
         | "gt" -> Buffer.add_char buf '>'
         | "quot" -> Buffer.add_char buf '"'
         | "apos" -> Buffer.add_char buf '\''
         | other -> Buffer.add_string buf ("&" ^ other ^ ";"));
        go (j + 1)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

exception Fail of string

type cursor = { text : string; mutable pos : int }

let peek_char cur = if cur.pos < String.length cur.text then Some cur.text.[cur.pos] else None

let skip_ws cur =
  while
    cur.pos < String.length cur.text
    && (match cur.text.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    cur.pos <- cur.pos + 1
  done

let looking_at cur prefix =
  let lp = String.length prefix in
  cur.pos + lp <= String.length cur.text && String.sub cur.text cur.pos lp = prefix

let expect cur prefix =
  if looking_at cur prefix then cur.pos <- cur.pos + String.length prefix
  else raise (Fail (Printf.sprintf "expected %S at offset %d" prefix cur.pos))

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

let read_name cur =
  let start = cur.pos in
  while cur.pos < String.length cur.text && is_name_char cur.text.[cur.pos] do
    cur.pos <- cur.pos + 1
  done;
  if cur.pos = start then raise (Fail (Printf.sprintf "expected a name at offset %d" start));
  String.sub cur.text start (cur.pos - start)

let read_until cur stop =
  let idx =
    let rec find i =
      if i + String.length stop > String.length cur.text then
        raise (Fail (Printf.sprintf "expected %S before end of input" stop))
      else if String.sub cur.text i (String.length stop) = stop then i
      else find (i + 1)
    in
    find cur.pos
  in
  let content = String.sub cur.text cur.pos (idx - cur.pos) in
  cur.pos <- idx + String.length stop;
  content

let read_attrs cur =
  let rec loop acc =
    skip_ws cur;
    match peek_char cur with
    | Some c when is_name_char c ->
      let name = read_name cur in
      skip_ws cur;
      expect cur "=";
      skip_ws cur;
      let quote =
        match peek_char cur with
        | Some ('"' as q) | Some ('\'' as q) ->
          cur.pos <- cur.pos + 1;
          q
        | _ -> raise (Fail "attribute value must be quoted")
      in
      let stop = String.make 1 quote in
      let value = read_until cur stop in
      loop ((name, unescape value) :: acc)
    | _ -> List.rev acc
  in
  loop []

let rec read_element cur =
  expect cur "<";
  let tag = read_name cur in
  let attrs = read_attrs cur in
  skip_ws cur;
  if looking_at cur "/>" then begin
    expect cur "/>";
    Node.make ~name:tag ~attrs Node.kind_element
  end
  else begin
    expect cur ">";
    let children = read_children cur tag in
    Node.make ~name:tag ~attrs ~children Node.kind_element
  end

and read_children cur parent_tag =
  let close = "</" ^ parent_tag in
  let rec loop acc =
    if looking_at cur close then begin
      cur.pos <- cur.pos + String.length close;
      skip_ws cur;
      expect cur ">";
      List.rev acc
    end
    else if looking_at cur "<!--" then begin
      expect cur "<!--";
      let body = read_until cur "-->" in
      loop (Node.comment body :: acc)
    end
    else if looking_at cur "</" then
      raise (Fail (Printf.sprintf "mismatched closing tag inside <%s>" parent_tag))
    else if looking_at cur "<" then loop (read_element cur :: acc)
    else begin
      (* Text run up to the next '<'. *)
      let start = cur.pos in
      while cur.pos < String.length cur.text && cur.text.[cur.pos] <> '<' do
        cur.pos <- cur.pos + 1
      done;
      if cur.pos >= String.length cur.text then
        raise (Fail (Printf.sprintf "element <%s> is never closed" parent_tag));
      let raw = String.sub cur.text start (cur.pos - start) in
      let trimmed = String.trim raw in
      if trimmed = "" then loop acc
      else loop (Node.make ~value:(unescape trimmed) Node.kind_text :: acc)
    end
  in
  loop []

let skip_prolog cur =
  let rec loop () =
    skip_ws cur;
    if looking_at cur "<?" then begin
      ignore (read_until cur "?>");
      loop ()
    end
    else if looking_at cur "<!--" then begin
      expect cur "<!--";
      ignore (read_until cur "-->");
      loop ()
    end
  in
  loop ()

let parse text =
  let cur = { text; pos = 0 } in
  try
    skip_prolog cur;
    let element = read_element cur in
    skip_ws cur;
    if cur.pos < String.length cur.text then
      Error (Parse_error.make "trailing content after the root element")
    else Ok (Node.root [ element ])
  with Fail msg -> Error (Parse_error.make msg)

let serialize (tree : Node.t) =
  let buf = Buffer.create 512 in
  let rec emit indent (n : Node.t) =
    let pad = String.make (2 * indent) ' ' in
    match n.kind with
    | k when k = Node.kind_element ->
      Buffer.add_string buf pad;
      Buffer.add_char buf '<';
      Buffer.add_string buf n.name;
      List.iter
        (fun (a, v) -> Buffer.add_string buf (Printf.sprintf " %s=\"%s\"" a (escape v)))
        n.attrs;
      if n.children = [] then Buffer.add_string buf "/>\n"
      else begin
        Buffer.add_string buf ">\n";
        List.iter (emit (indent + 1)) n.children;
        Buffer.add_string buf pad;
        Buffer.add_string buf (Printf.sprintf "</%s>\n" n.name)
      end
    | k when k = Node.kind_text ->
      Buffer.add_string buf pad;
      Buffer.add_string buf (escape (Node.value_or ~default:"" n));
      Buffer.add_char buf '\n'
    | k when k = Node.kind_comment ->
      Buffer.add_string buf pad;
      Buffer.add_string buf (Printf.sprintf "<!--%s-->\n" (Node.value_or ~default:"" n));
      Buffer.add_char buf '\n'
    | k -> raise (Failure (Printf.sprintf "XML cannot express %s nodes" k))
  in
  match tree.children with
  | [ element ] when element.kind = Node.kind_element ->
    (try
       emit 0 element;
       Ok (Buffer.contents buf)
     with Failure msg -> Error msg)
  | _ -> Error "an XML document has exactly one root element"
