(** BIND master zone files (RFC 1035 presentation format).

    Supported: [$TTL] and [$ORIGIN] directives, [;] comments, records
    [owner ttl? class? type rdata], blank owner inheriting the previous
    owner, [@] for the origin, and multi-line records grouped by
    parentheses (typical for SOA).

    The parsed tree is

    {v root > (directive | record | comment | blank)* v}

    where a record node has [name] = owner as written, attributes [type],
    and optionally [ttl] and [class], and [value] = the rdata text.
    Owner inheritance is resolved at parse time and recorded in the
    [owner] attribute so plugins can reason about fully-specified
    records while serialization reproduces the original shorthand. *)

val parse : string -> (Conftree.Node.t, Parse_error.t) result

val serialize : Conftree.Node.t -> (string, string) result

val record : ?ttl:string -> name:string -> rtype:string -> string -> Conftree.Node.t
(** [record ~name ~rtype rdata] builds a record node as this parser would. *)
