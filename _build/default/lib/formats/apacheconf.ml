module Node = Conftree.Node
module Strutil = Conferr_util.Strutil

let attr_arg = "arg"

type frame = { name : string; arg : string; mutable nodes : Node.t list }

let parse text =
  let push frame node = frame.nodes <- node :: frame.nodes in
  let finish frame =
    Node.section
      ~attrs:(if frame.arg = "" then [] else [ (attr_arg, frame.arg) ])
      frame.name
      (List.rev frame.nodes)
  in
  let root_frame = { name = ""; arg = ""; nodes = [] } in
  let stack = ref [ root_frame ] in
  let error = ref None in
  let fail lineno msg = if !error = None then error := Some (Parse_error.make ~line:lineno msg) in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let trimmed = Strutil.trim line in
      let top () = match !stack with f :: _ -> f | [] -> root_frame in
      if !error <> None then ()
      else if trimmed = "" then push (top ()) Node.blank
      else if trimmed.[0] = '#' then push (top ()) (Node.comment line)
      else if Strutil.is_prefix ~prefix:"</" trimmed then begin
        let inner = String.sub trimmed 2 (String.length trimmed - 2) in
        let name =
          match String.index_opt inner '>' with
          | Some j -> Strutil.trim (String.sub inner 0 j)
          | None -> Strutil.trim inner
        in
        match !stack with
        | frame :: (parent :: _ as rest) ->
          if String.lowercase_ascii frame.name <> String.lowercase_ascii name then
            fail lineno
              (Printf.sprintf "closing tag </%s> does not match open section <%s>" name
                 frame.name)
          else begin
            stack := rest;
            push parent (finish frame)
          end
        | [ _ ] | [] -> fail lineno (Printf.sprintf "stray closing tag </%s>" name)
      end
      else if trimmed.[0] = '<' then begin
        match String.index_opt trimmed '>' with
        | None -> fail lineno "unterminated section tag"
        | Some j ->
          let inner = String.sub trimmed 1 (j - 1) in
          let name, arg =
            match Strutil.split_on_first ' ' inner with
            | Some (n, a) -> (Strutil.trim n, Strutil.trim a)
            | None -> (Strutil.trim inner, "")
          in
          stack := { name; arg; nodes = [] } :: !stack
      end
      else begin
        (* The name ends at the first blank (space or tab). *)
        let split_idx =
          let rec find i =
            if i >= String.length trimmed then None
            else if trimmed.[i] = ' ' || trimmed.[i] = '\t' then Some i
            else find (i + 1)
          in
          find 0
        in
        let name, value =
          match split_idx with
          | Some i ->
            ( String.sub trimmed 0 i,
              Some (Strutil.trim (String.sub trimmed i (String.length trimmed - i))) )
          | None -> (trimmed, None)
        in
        push (top ()) (Node.directive ?value name)
      end)
    (Strutil.lines text);
  match !error with
  | Some e -> Error e
  | None ->
    (match !stack with
     | [ root ] -> Ok (Node.root (List.rev root.nodes))
     | frame :: _ ->
       Error (Parse_error.make (Printf.sprintf "section <%s> is never closed" frame.name))
     | [] -> Error (Parse_error.make "internal parser error: empty stack"))

let serialize (tree : Node.t) =
  let buf = Buffer.create 512 in
  let rec emit indent (n : Node.t) =
    let pad = String.make (2 * indent) ' ' in
    match n.kind with
    | k when k = Node.kind_blank -> Buffer.add_char buf '\n'
    | k when k = Node.kind_comment ->
      Buffer.add_string buf (Node.value_or ~default:"#" n);
      Buffer.add_char buf '\n'
    | k when k = Node.kind_directive ->
      Buffer.add_string buf pad;
      Buffer.add_string buf n.name;
      (match n.value with
       | None -> ()
       | Some v ->
         (* A "sep" attribute lets whitespace variations round-trip. *)
         Buffer.add_string buf (Option.value ~default:" " (Node.attr n "sep"));
         Buffer.add_string buf v);
      Buffer.add_char buf '\n'
    | k when k = Node.kind_section ->
      Buffer.add_string buf pad;
      (match Node.attr n attr_arg with
       | Some arg -> Buffer.add_string buf (Printf.sprintf "<%s %s>\n" n.name arg)
       | None -> Buffer.add_string buf (Printf.sprintf "<%s>\n" n.name));
      List.iter (emit (indent + 1)) n.children;
      Buffer.add_string buf pad;
      Buffer.add_string buf (Printf.sprintf "</%s>\n" n.name)
    | k -> raise (Failure (Printf.sprintf "cannot express %s nodes" k))
  in
  try
    List.iter (emit 0) tree.children;
    Ok (Buffer.contents buf)
  with Failure msg -> Error msg
