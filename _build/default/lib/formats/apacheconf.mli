(** Apache [httpd.conf]-style configuration files.

    Syntax: one directive per line ([Name arg1 arg2 ...]), container
    sections [<Name arg> ... </Name>] which may nest, [#] comments.
    The parsed tree is

    {v root > (directive | section | comment | blank)*
       section > (directive | section | comment | blank)* v}

    A section's argument (e.g. the ["*:80"] of [<VirtualHost *:80>]) is
    kept in the [arg] attribute.  A directive's [value] is the raw
    argument text after the name. *)

val parse : string -> (Conftree.Node.t, Parse_error.t) result
(** Fails on unbalanced or mismatched section tags. *)

val serialize : Conftree.Node.t -> (string, string) result
