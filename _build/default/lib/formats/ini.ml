module Node = Conftree.Node
module Strutil = Conferr_util.Strutil

let attr_implicit = "implicit"
let attr_sep = "sep"

let parse_line line =
  let trimmed = Strutil.trim line in
  if trimmed = "" then Node.blank
  else if trimmed.[0] = '#' || trimmed.[0] = ';' then Node.comment line
  else if trimmed.[0] = '[' && trimmed.[String.length trimmed - 1] = ']' then
    Node.section (String.sub trimmed 1 (String.length trimmed - 2)) []
  else
    match String.index_opt line '=' with
    | None -> Node.directive (Strutil.trim line)
    | Some i ->
      let name = Strutil.trim (String.sub line 0 i) in
      let value = String.sub line (i + 1) (String.length line - i - 1) in
      (* Keep the spacing around '=' for faithful re-serialization. *)
      let sep =
        let before = String.sub line 0 i in
        let trailing =
          let j = ref (String.length before) in
          while !j > 0 && (before.[!j - 1] = ' ' || before.[!j - 1] = '\t') do
            decr j
          done;
          String.sub before !j (String.length before - !j)
        in
        let leading =
          let k = ref 0 in
          let rest = value in
          while !k < String.length rest && (rest.[!k] = ' ' || rest.[!k] = '\t') do
            incr k
          done;
          String.sub rest 0 !k
        in
        trailing ^ "=" ^ leading
      in
      Node.directive ~attrs:[ (attr_sep, sep) ] ~value:(Strutil.trim value) name

let parse text =
  let nodes = List.map parse_line (Strutil.lines text) in
  (* Group directives under the preceding section header. *)
  let implicit = Node.section ~attrs:[ (attr_implicit, "true") ] "" [] in
  let flush acc current = { current with Node.children = List.rev current.Node.children } :: acc in
  let sections, current =
    List.fold_left
      (fun (acc, current) node ->
        if node.Node.kind = Node.kind_section then (flush acc current, node)
        else
          (acc, { current with Node.children = node :: current.Node.children }))
      ([], implicit) nodes
  in
  let sections = List.rev (flush sections current) in
  (* Drop the implicit section when empty. *)
  let sections =
    List.filter
      (fun (s : Node.t) ->
        not (Node.attr s attr_implicit = Some "true" && s.children = []))
      sections
  in
  Ok (Node.root sections)

let serialize_directive buf (d : Node.t) =
  match d.kind with
  | k when k = Node.kind_blank -> Buffer.add_char buf '\n'
  | k when k = Node.kind_comment ->
    Buffer.add_string buf (Node.value_or ~default:"#" d);
    Buffer.add_char buf '\n'
  | k when k = Node.kind_directive ->
    Buffer.add_string buf d.name;
    (match d.value with
     | None -> ()
     | Some v ->
       let sep = Option.value ~default:" = " (Node.attr d attr_sep) in
       Buffer.add_string buf sep;
       Buffer.add_string buf v);
    Buffer.add_char buf '\n';
    ()
  | k -> raise (Failure (Printf.sprintf "INI sections cannot contain %s nodes" k))

let serialize (tree : Node.t) =
  let buf = Buffer.create 256 in
  try
    List.iter
      (fun (s : Node.t) ->
        if s.kind <> Node.kind_section then
          raise
            (Failure
               (Printf.sprintf "INI files contain only sections at top level, found %s"
                  s.kind));
        if List.exists (fun (c : Node.t) -> c.kind = Node.kind_section) s.children then
          raise (Failure "INI format does not support nested sections");
        if not (Node.attr s attr_implicit = Some "true") then
          Buffer.add_string buf (Printf.sprintf "[%s]\n" s.name);
        List.iter (serialize_directive buf) s.children)
      tree.children;
    Ok (Buffer.contents buf)
  with Failure msg -> Error msg
