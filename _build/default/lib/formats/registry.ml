type t = {
  name : string;
  parse : string -> (Conftree.Node.t, Parse_error.t) result;
  serialize : Conftree.Node.t -> (string, string) result;
}

let ini = { name = "ini"; parse = Ini.parse; serialize = Ini.serialize }

let pgconf = { name = "pgconf"; parse = Pgconf.parse; serialize = Pgconf.serialize }

let apacheconf =
  { name = "apacheconf"; parse = Apacheconf.parse; serialize = Apacheconf.serialize }

let xmlconf = { name = "xmlconf"; parse = Xmlconf.parse; serialize = Xmlconf.serialize }

let bindzone =
  { name = "bindzone"; parse = Bindzone.parse; serialize = Bindzone.serialize }

let tinydns = { name = "tinydns"; parse = Tinydns.parse; serialize = Tinydns.serialize }

let namedconf =
  { name = "namedconf"; parse = Namedconf.parse; serialize = Namedconf.serialize }

let all = [ ini; pgconf; apacheconf; xmlconf; bindzone; tinydns; namedconf ]

let find name = List.find_opt (fun t -> t.name = name) all

let round_trip fmt text =
  match fmt.parse text with
  | Error e -> Error (Parse_error.to_string e)
  | Ok tree -> fmt.serialize tree
