(** First-class format handles: a parser/serializer pair under a name.

    The engine is format-agnostic; SUT descriptions reference formats
    through this registry (mirroring the paper's pluggable
    parser/serializer components). *)

type t = {
  name : string;
  parse : string -> (Conftree.Node.t, Parse_error.t) result;
  serialize : Conftree.Node.t -> (string, string) result;
}

val ini : t
val pgconf : t
val apacheconf : t
val xmlconf : t
val bindzone : t
val tinydns : t
val namedconf : t

val all : t list

val find : string -> t option
(** Lookup by name. *)

val round_trip : t -> string -> (string, string) result
(** [round_trip fmt text] parses and re-serializes; useful for format
    conformance tests. *)
