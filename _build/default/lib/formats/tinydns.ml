module Node = Conftree.Node
module Strutil = Conferr_util.Strutil

let attr_op = "op"

let known_ops = [ '='; '+'; '^'; 'C'; '@'; '.'; '&'; '\''; 'Z' ]

let entry ~op ~name fields =
  let attrs =
    (attr_op, String.make 1 op)
    :: List.mapi (fun i f -> (Printf.sprintf "f%d" (i + 1), f)) fields
  in
  Node.make ~name ~attrs Node.kind_record

let fields (n : Node.t) =
  let rec collect i acc =
    match Node.attr n (Printf.sprintf "f%d" i) with
    | None -> List.rev acc
    | Some f -> collect (i + 1) (f :: acc)
  in
  collect 1 []

let parse_line lineno line =
  if Strutil.trim line = "" then Ok Node.blank
  else
    let op = line.[0] in
    let rest = String.sub line 1 (String.length line - 1) in
    if op = '#' || op = '-' then Ok (Node.comment line)
    else if not (List.mem op known_ops) then
      Error (Parse_error.make ~line:lineno (Printf.sprintf "unknown operator %C" op))
    else
      match String.split_on_char ':' rest with
      | [] -> Error (Parse_error.make ~line:lineno "entry is missing its name")
      | name :: fs -> Ok (entry ~op ~name fs)

let parse text =
  let rec go acc lineno = function
    | [] -> Ok (Node.root (List.rev acc))
    | line :: rest ->
      (match parse_line lineno line with
       | Error e -> Error e
       | Ok node -> go (node :: acc) (lineno + 1) rest)
  in
  go [] 1 (Strutil.lines text)

let serialize (tree : Node.t) =
  let buf = Buffer.create 256 in
  try
    List.iter
      (fun (n : Node.t) ->
        match n.kind with
        | k when k = Node.kind_blank -> Buffer.add_char buf '\n'
        | k when k = Node.kind_comment ->
          Buffer.add_string buf (Node.value_or ~default:"#" n);
          Buffer.add_char buf '\n'
        | k when k = Node.kind_record ->
          let op =
            match Node.attr n attr_op with
            | Some op when String.length op = 1 -> op
            | Some op -> raise (Failure (Printf.sprintf "invalid operator %S" op))
            | None -> raise (Failure "record node is missing its operator")
          in
          Buffer.add_string buf op;
          Buffer.add_string buf (String.concat ":" (n.name :: fields n));
          Buffer.add_char buf '\n'
        | k -> raise (Failure (Printf.sprintf "tinydns-data cannot express %s nodes" k)))
      tree.children;
    Ok (Buffer.contents buf)
  with Failure msg -> Error msg
