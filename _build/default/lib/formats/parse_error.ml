type t = { line : int; message : string }

let make ?(line = 0) message = { line; message }

let pp fmt { line; message } =
  if line = 0 then Format.pp_print_string fmt message
  else Format.fprintf fmt "line %d: %s" line message

let to_string t = Format.asprintf "%a" pp t
