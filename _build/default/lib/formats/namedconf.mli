(** BIND's [named.conf] configuration format (braces-and-semicolons).

    Supported subset:

    {v
      options {
        directory "/var/named";
        recursion no;
      };
      zone "example.com" IN {
        type master;
        file "example.com.zone";
      };
    v}

    The parsed tree is

    {v root > (section | comment | blank)*
       section > (directive | section | comment | blank)* v}

    with the block keyword as the section [name] and the quoted argument
    (e.g. the zone name) in the [arg] attribute; statements become
    directives whose [value] is the argument text without the closing
    [;].  Comments: [//], [#], and [/* ... */] on one line. *)

val parse : string -> (Conftree.Node.t, Parse_error.t) result

val serialize : Conftree.Node.t -> (string, string) result
