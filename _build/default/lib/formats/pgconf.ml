module Node = Conftree.Node
module Strutil = Conferr_util.Strutil

let attr_sep = "sep"
let attr_quoted = "quoted"

let split_name_value trimmed =
  (* name, optionally '=', then the value; names are identifier-like.
     The whitespace around the separator is preserved for byte-faithful
     re-serialization. *)
  match String.index_opt trimmed '=' with
  | Some i ->
    let before = String.sub trimmed 0 i in
    let after = String.sub trimmed (i + 1) (String.length trimmed - i - 1) in
    let name = Strutil.trim before in
    let value = Strutil.trim after in
    let trailing_ws =
      let j = ref (String.length before) in
      while !j > 0 && (before.[!j - 1] = ' ' || before.[!j - 1] = '\t') do
        decr j
      done;
      String.sub before !j (String.length before - !j)
    in
    let leading_ws =
      let k = ref 0 in
      while !k < String.length after && (after.[!k] = ' ' || after.[!k] = '\t') do
        incr k
      done;
      String.sub after 0 !k
    in
    (name, Some value, trailing_ws ^ "=" ^ leading_ws)
  | None ->
    (match Strutil.split_on_first ' ' trimmed with
     | Some (name, rest) -> (Strutil.trim name, Some (Strutil.trim rest), " ")
     | None -> (trimmed, None, "="))

let strip_inline_comment s =
  (* A '#' outside quotes starts a comment. *)
  let n = String.length s in
  let rec scan i in_quote =
    if i >= n then s
    else
      match s.[i] with
      | '\'' -> scan (i + 1) (not in_quote)
      | '#' when not in_quote -> Strutil.trim (String.sub s 0 i)
      | _ -> scan (i + 1) in_quote
  in
  scan 0 false

let parse_line line =
  let trimmed = Strutil.trim line in
  if trimmed = "" then Node.blank
  else if trimmed.[0] = '#' then Node.comment line
  else begin
    let trimmed = strip_inline_comment trimmed in
    let name, value, sep = split_name_value trimmed in
    match value with
    | Some v when String.length v >= 2 && v.[0] = '\'' && v.[String.length v - 1] = '\'' ->
      Node.directive
        ~attrs:[ (attr_sep, sep); (attr_quoted, "true") ]
        ~value:(String.sub v 1 (String.length v - 2))
        name
    | Some v -> Node.directive ~attrs:[ (attr_sep, sep) ] ~value:v name
    | None -> Node.directive name
  end

let parse text = Ok (Node.root (List.map parse_line (Strutil.lines text)))

let serialize (tree : Node.t) =
  let buf = Buffer.create 256 in
  try
    List.iter
      (fun (n : Node.t) ->
        match n.kind with
        | k when k = Node.kind_blank -> Buffer.add_char buf '\n'
        | k when k = Node.kind_comment ->
          Buffer.add_string buf (Node.value_or ~default:"#" n);
          Buffer.add_char buf '\n'
        | k when k = Node.kind_directive ->
          Buffer.add_string buf n.name;
          (match n.value with
           | None -> ()
           | Some v ->
             let sep =
               match Node.attr n attr_sep with
               | Some " " -> " "
               | Some s when String.contains s '=' -> s
               | Some _ | None -> " = "
             in
             Buffer.add_string buf sep;
             if Node.attr n attr_quoted = Some "true" then
               Buffer.add_string buf (Printf.sprintf "'%s'" v)
             else Buffer.add_string buf v);
          Buffer.add_char buf '\n'
        | k when k = Node.kind_section ->
          raise (Failure "the flat key=value format has no sections")
        | k -> raise (Failure (Printf.sprintf "cannot express %s nodes" k)))
      tree.children;
    Ok (Buffer.contents buf)
  with Failure msg -> Error msg
