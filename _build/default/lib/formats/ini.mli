(** INI-style configuration files (the MySQL [my.cnf] family).

    Syntax: [\[section\]] headers, [name = value] or bare [name]
    directives, [#] and [;] comments.  The parsed tree is

    {v root > section* > (directive | comment | blank)* v}

    Directives appearing before the first header land in an implicit
    section (name [""], attribute [implicit=true]).  The original
    separator text around [=] is preserved in the [sep] attribute so a
    parse/serialize round-trip is byte-faithful. *)

val parse : string -> (Conftree.Node.t, Parse_error.t) result

val serialize : Conftree.Node.t -> (string, string) result
(** Fails ([Error]) on trees the format cannot express: nested sections,
    or non-directive nodes where directives are expected. *)
