module Node = Conftree.Node
module Strutil = Conferr_util.Strutil

let attr_type = "type"
let attr_ttl = "ttl"
let attr_class = "class"
let attr_owner = "owner"

let record ?ttl ~name ~rtype rdata =
  let attrs =
    ((attr_type, rtype) :: (match ttl with None -> [] | Some t -> [ (attr_ttl, t) ]))
    @ [ (attr_owner, name) ]
  in
  Node.make ~name ~value:rdata ~attrs Node.kind_record

let strip_comment line =
  (* A ';' outside quotes starts a comment. *)
  let n = String.length line in
  let rec scan i in_quote =
    if i >= n then line
    else
      match line.[i] with
      | '"' -> scan (i + 1) (not in_quote)
      | ';' when not in_quote -> String.sub line 0 i
      | _ -> scan (i + 1) in_quote
  in
  scan 0 false

(* Merge parenthesized multi-line records into single logical lines. *)
let logical_lines text =
  let rec merge acc pending depth = function
    | [] -> if depth > 0 then Error "unbalanced parentheses" else Ok (List.rev acc)
    | raw :: rest ->
      let stripped = strip_comment raw in
      let opens = String.fold_left (fun n c -> if c = '(' then n + 1 else n) 0 stripped in
      let closes = String.fold_left (fun n c -> if c = ')' then n + 1 else n) 0 stripped in
      let depth' = depth + opens - closes in
      if depth' < 0 then Error "unbalanced parentheses"
      else if depth = 0 && depth' = 0 then merge ((raw, stripped) :: acc) "" 0 rest
      else if depth' > 0 then
        (* keep the opening line's own leading whitespace intact: it
           carries the blank-owner convention *)
        let pending' = if depth = 0 then stripped else pending ^ " " ^ stripped in
        merge acc pending' depth' rest
      else begin
        (* Closing line: flush the merged record with parens removed. *)
        let merged = pending ^ " " ^ stripped in
        let cleaned = String.map (fun c -> if c = '(' || c = ')' then ' ' else c) merged in
        merge ((cleaned, cleaned) :: acc) "" 0 rest
      end
  in
  merge [] "" 0 (Strutil.lines text)

let record_types =
  [ "A"; "AAAA"; "NS"; "CNAME"; "SOA"; "PTR"; "MX"; "TXT"; "RP"; "HINFO"; "SRV"; "NAPTR" ]

let is_class s = List.mem (String.uppercase_ascii s) [ "IN"; "CH"; "HS" ]

let is_ttl s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let is_type s = List.mem (String.uppercase_ascii s) record_types

let split_fields s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun f -> f <> "")

let parse_record ~lineno ~prev_owner raw stripped =
  let leading_blank = raw <> "" && (raw.[0] = ' ' || raw.[0] = '\t') in
  let fields = split_fields stripped in
  match fields with
  | [] -> Error (Parse_error.make ~line:lineno "empty record")
  | first :: rest ->
    let owner_written, fields =
      if leading_blank then ("", first :: rest) else (first, rest)
    in
    let owner = if owner_written = "" then prev_owner else owner_written in
    (* Optional TTL and class may appear in either order before the type. *)
    let rec eat ttl cls = function
      | f :: rest when is_ttl f && ttl = None -> eat (Some f) cls rest
      | f :: rest when is_class f && cls = None -> eat ttl (Some f) rest
      | f :: rest when is_type f ->
        Ok (ttl, cls, String.uppercase_ascii f, String.concat " " rest)
      | f :: _ -> Error (Parse_error.make ~line:lineno (Printf.sprintf "unknown record type %S" f))
      | [] -> Error (Parse_error.make ~line:lineno "record is missing a type")
    in
    (match eat None None fields with
     | Error e -> Error e
     | Ok (ttl, cls, rtype, rdata) ->
       let attrs =
         [ (attr_type, rtype); (attr_owner, owner) ]
         @ (match ttl with None -> [] | Some t -> [ (attr_ttl, t) ])
         @ (match cls with None -> [] | Some c -> [ (attr_class, c) ])
       in
       Ok (Node.make ~name:owner_written ~value:rdata ~attrs Node.kind_record, owner))

let parse text =
  match logical_lines text with
  | Error msg -> Error (Parse_error.make msg)
  | Ok lines ->
    let rec go acc prev_owner lineno = function
      | [] -> Ok (Node.root (List.rev acc))
      | (raw, stripped) :: rest ->
        let trimmed = Strutil.trim stripped in
        if trimmed = "" then
          (* Preserve pure comments distinctly from blanks. *)
          let node =
            if Strutil.trim raw <> "" then Node.comment raw else Node.blank
          in
          go (node :: acc) prev_owner (lineno + 1) rest
        else if trimmed.[0] = '$' then begin
          match Strutil.split_on_first ' ' trimmed with
          | Some (dname, dvalue) ->
            let node = Node.directive ~value:(Strutil.trim dvalue) dname in
            go (node :: acc) prev_owner (lineno + 1) rest
          | None ->
            Error (Parse_error.make ~line:lineno (Printf.sprintf "malformed directive %S" trimmed))
        end
        else
          (match parse_record ~lineno ~prev_owner raw stripped with
           | Error e -> Error e
           | Ok (node, owner) -> go (node :: acc) owner (lineno + 1) rest)
    in
    go [] "@" 1 lines

let serialize (tree : Node.t) =
  let buf = Buffer.create 512 in
  try
    List.iter
      (fun (n : Node.t) ->
        match n.kind with
        | k when k = Node.kind_blank -> Buffer.add_char buf '\n'
        | k when k = Node.kind_comment ->
          Buffer.add_string buf (Node.value_or ~default:";" n);
          Buffer.add_char buf '\n'
        | k when k = Node.kind_directive ->
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" n.name (Node.value_or ~default:"" n))
        | k when k = Node.kind_record ->
          let owner = if n.name = "" then "" else n.name in
          let ttl = match Node.attr n attr_ttl with None -> [] | Some t -> [ t ] in
          let cls = match Node.attr n attr_class with None -> [] | Some c -> [ c ] in
          let rtype =
            match Node.attr n attr_type with
            | Some t -> t
            | None -> raise (Failure "record node is missing its type attribute")
          in
          let fields =
            (if owner = "" then [ "" ] else [ owner ])
            @ ttl @ cls
            @ [ rtype; Node.value_or ~default:"" n ]
          in
          Buffer.add_string buf (String.concat "\t" fields);
          Buffer.add_char buf '\n'
        | k when k = Node.kind_section ->
          raise (Failure "zone files have no sections")
        | k -> raise (Failure (Printf.sprintf "cannot express %s nodes" k)))
      tree.children;
    Ok (Buffer.contents buf)
  with Failure msg -> Error msg
