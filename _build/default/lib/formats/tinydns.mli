(** The djbdns / tinydns-data configuration format.

    Each line is one entry: a single-character operator followed by
    colon-separated fields.  The operators this module understands:

    - [=fqdn:ip:ttl]      — A record {e and} the matching PTR (the
                            combined directive the paper's §5.4 relies on)
    - [+fqdn:ip:ttl]      — A record only
    - [^fqdn:p:ttl]       — PTR record only
    - [Cfqdn:p:ttl]       — CNAME
    - [@fqdn:ip:x:dist:ttl] — MX (and an A record for [x] when [ip] set)
    - [.fqdn:ip:x:ttl]    — NS + SOA (+ A for the name server)
    - [&fqdn:ip:x:ttl]    — NS delegation (+ A)
    - ['fqdn:s:ttl]       — TXT
    - [Zfqdn:mname:rname:ser:ref:ret:exp:min:ttl] — explicit SOA
    - [#...]              — comment
    - [-...]              — disabled line (kept as a comment)

    The parsed tree is

    {v root > (record | comment | blank)* v}

    with the operator in the [op] attribute, the fqdn as the node [name],
    and remaining fields as attributes [f1], [f2], ... *)

val parse : string -> (Conftree.Node.t, Parse_error.t) result

val serialize : Conftree.Node.t -> (string, string) result

val entry : op:char -> name:string -> string list -> Conftree.Node.t
(** [entry ~op ~name fields] builds a record node as this parser would. *)

val fields : Conftree.Node.t -> string list
(** The [f1..fn] attributes of a record node, in order. *)
