module Node = Conftree.Node
module Strutil = Conferr_util.Strutil

let attr_arg = "arg"

(* Tokenize into statements and block delimiters, line-oriented enough to
   keep comments attached. *)
type tok =
  | Open_block of string * string   (* keyword, argument text *)
  | Close_block
  | Statement of string * string    (* name, argument text *)
  | Comment_line of string
  | Blank_line

let strip_inline_comment line =
  let n = String.length line in
  let rec scan i in_quote =
    if i >= n then line
    else
      match line.[i] with
      | '"' -> scan (i + 1) (not in_quote)
      | '/' when (not in_quote) && i + 1 < n && line.[i + 1] = '/' ->
        String.sub line 0 i
      | '#' when not in_quote -> String.sub line 0 i
      | _ -> scan (i + 1) in_quote
  in
  scan 0 false

let unquote s =
  let s = Strutil.trim s in
  if String.length s >= 2 && s.[0] = '"' && s.[String.length s - 1] = '"' then
    String.sub s 1 (String.length s - 2)
  else s

let split_first_word s =
  match Strutil.split_on_first ' ' (Strutil.trim s) with
  | Some (w, rest) -> (w, Strutil.trim rest)
  | None -> (Strutil.trim s, "")

let tokenize_line lineno raw =
  let trimmed = Strutil.trim raw in
  if trimmed = "" then Ok [ Blank_line ]
  else if
    Strutil.is_prefix ~prefix:"//" trimmed
    || Strutil.is_prefix ~prefix:"#" trimmed
    || (Strutil.is_prefix ~prefix:"/*" trimmed
       && String.length trimmed >= 4
       && String.sub trimmed (String.length trimmed - 2) 2 = "*/")
  then Ok [ Comment_line raw ]
  else begin
    let code = Strutil.trim (strip_inline_comment trimmed) in
    if code = "" then Ok [ Comment_line raw ]
    else if code = "};" || code = "}" then Ok [ Close_block ]
    else if String.length code >= 1 && code.[String.length code - 1] = '{' then begin
      let head = Strutil.trim (String.sub code 0 (String.length code - 1)) in
      let keyword, arg = split_first_word head in
      (* drop a trailing class token like IN from `zone "x" IN {` *)
      let arg =
        match String.index_opt arg '"' with
        | Some _ -> unquote (Strutil.trim (String.concat "\"" (
            match String.split_on_char '"' arg with
            | _ :: inner :: _ -> [ inner ]
            | other -> other)))
        | None -> Strutil.trim arg
      in
      Ok [ Open_block (keyword, arg) ]
    end
    else if code.[String.length code - 1] = ';' then begin
      let body = Strutil.trim (String.sub code 0 (String.length code - 1)) in
      let name, arg = split_first_word body in
      Ok [ Statement (name, arg) ]
    end
    else
      Error
        (Parse_error.make ~line:lineno
           (Printf.sprintf "statement does not end with ';': %S" code))
  end

type frame = { keyword : string; argument : string; mutable nodes : Node.t list }

let parse text =
  let root = { keyword = ""; argument = ""; nodes = [] } in
  let stack = ref [ root ] in
  let error = ref None in
  let fail e = if !error = None then error := Some e in
  let push node =
    match !stack with f :: _ -> f.nodes <- node :: f.nodes | [] -> ()
  in
  List.iteri
    (fun i raw ->
      if !error = None then
        match tokenize_line (i + 1) raw with
        | Error e -> fail e
        | Ok toks ->
          List.iter
            (fun tok ->
              match tok with
              | Blank_line -> push Node.blank
              | Comment_line text -> push (Node.comment text)
              | Statement (name, arg) ->
                push
                  (if arg = "" then Node.directive name
                   else Node.directive ~value:arg name)
              | Open_block (keyword, argument) ->
                stack := { keyword; argument; nodes = [] } :: !stack
              | Close_block ->
                (match !stack with
                 | frame :: (parent :: _ as rest) ->
                   stack := rest;
                   parent.nodes <-
                     Node.section
                       ~attrs:
                         (if frame.argument = "" then []
                          else [ (attr_arg, frame.argument) ])
                       frame.keyword
                       (List.rev frame.nodes)
                     :: parent.nodes
                 | [ _ ] | [] ->
                   fail (Parse_error.make ~line:(i + 1) "unbalanced '}'")))
            toks)
    (Strutil.lines text);
  match !error with
  | Some e -> Error e
  | None ->
    (match !stack with
     | [ r ] -> Ok (Node.root (List.rev r.nodes))
     | f :: _ ->
       Error (Parse_error.make (Printf.sprintf "block %S is never closed" f.keyword))
     | [] -> Error (Parse_error.make "internal parser error"))

let needs_quotes keyword =
  List.mem keyword [ "zone"; "include"; "key"; "view" ]

let serialize (tree : Node.t) =
  let buf = Buffer.create 512 in
  let rec emit indent (n : Node.t) =
    let pad = String.make (2 * indent) ' ' in
    match n.kind with
    | k when k = Node.kind_blank -> Buffer.add_char buf '\n'
    | k when k = Node.kind_comment ->
      Buffer.add_string buf (Node.value_or ~default:"//" n);
      Buffer.add_char buf '\n'
    | k when k = Node.kind_directive ->
      Buffer.add_string buf pad;
      Buffer.add_string buf n.name;
      (match n.value with
       | None -> ()
       | Some v ->
         Buffer.add_char buf ' ';
         Buffer.add_string buf v);
      Buffer.add_string buf ";\n"
    | k when k = Node.kind_section ->
      Buffer.add_string buf pad;
      (match Node.attr n attr_arg with
       | Some arg when needs_quotes n.name ->
         Buffer.add_string buf (Printf.sprintf "%s \"%s\" {\n" n.name arg)
       | Some arg -> Buffer.add_string buf (Printf.sprintf "%s %s {\n" n.name arg)
       | None -> Buffer.add_string buf (Printf.sprintf "%s {\n" n.name));
      List.iter (emit (indent + 1)) n.children;
      Buffer.add_string buf pad;
      Buffer.add_string buf "};\n"
    | k -> raise (Failure (Printf.sprintf "named.conf cannot express %s nodes" k))
  in
  try
    List.iter (emit 0) tree.children;
    Ok (Buffer.contents buf)
  with Failure msg -> Error msg
