(** Flat [name = value] configuration files (the PostgreSQL
    [postgresql.conf] family).

    PostgreSQL configurations have a single main section (paper §5.1), so
    the parsed tree is

    {v root > (directive | comment | blank)* v}

    The [=] is optional in the native format; whether it was present is
    preserved in the [sep] attribute.  Values may be single-quoted; the
    quoting is preserved in the [quoted] attribute. *)

val parse : string -> (Conftree.Node.t, Parse_error.t) result

val serialize : Conftree.Node.t -> (string, string) result
(** Fails on trees with section nodes: the format has no sections. *)
