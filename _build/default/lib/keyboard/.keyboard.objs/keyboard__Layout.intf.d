lib/keyboard/layout.mli:
