lib/keyboard/layout.ml: Char Float List String
