type key = { row : int; col : float; unshifted : char; shifted : char option }

type t = { name : string; keys : key list }

type modifier = Plain | Shifted

let make ~name rows =
  let keys_of_row (row, start, unshifted, shifted) =
    if String.length unshifted <> String.length shifted then
      invalid_arg "Layout.make: row strings must have equal length";
    List.init (String.length unshifted) (fun i ->
        {
          row;
          col = start +. float_of_int i;
          unshifted = unshifted.[i];
          shifted = Some shifted.[i];
        })
  in
  { name; keys = List.concat_map keys_of_row rows }

(* ANSI staggering: each letter row shifts right relative to the digit
   row. *)
let us_qwerty =
  make ~name:"us-qwerty"
    [
      (0, 0.0, "`1234567890-=", "~!@#$%^&*()_+");
      (1, 1.5, "qwertyuiop[]\\", "QWERTYUIOP{}|");
      (2, 1.75, "asdfghjkl;'", "ASDFGHJKL:\"");
      (3, 2.25, "zxcvbnm,./", "ZXCVBNM<>?");
    ]

let us_dvorak =
  make ~name:"us-dvorak"
    [
      (0, 0.0, "`1234567890[]", "~!@#$%^&*(){}");
      (1, 1.5, "',.pyfgcrl/=\\", "\"<>PYFGCRL?+|");
      (2, 1.75, "aoeuidhtns-", "AOEUIDHTNS_");
      (3, 2.25, ";qjkxbmwvz", ":QJKXBMWVZ");
    ]

let ch_qwertz =
  make ~name:"ch-qwertz"
    [
      (0, 0.0, "\1671234567890'^", "\176+\"*\231%&/()=?`");
      (1, 1.5, "qwertzuiop\232\168", "QWERTZUIOP\252!");
      (2, 2.0, "asdfghjkl\233\224", "ASDFGHJKL\246\228");
      (3, 2.5, "yxcvbnm,.-", "YXCVBNM;:_");
    ]

let find t c =
  let rec search = function
    | [] -> None
    | k :: rest ->
      if k.unshifted = c then Some (k, Plain)
      else if k.shifted = Some c then Some (k, Shifted)
      else search rest
  in
  search t.keys

let distance a b =
  let dr = float_of_int (a.row - b.row) and dc = a.col -. b.col in
  Float.sqrt ((dr *. dr) +. (dc *. dc))

let char_under_modifier k = function
  | Plain -> Some k.unshifted
  | Shifted -> k.shifted

let neighbors ?(radius = 1.35) t c =
  match find t c with
  | None -> []
  | Some (key, modifier) ->
    t.keys
    |> List.filter (fun k -> (not (k == key)) && distance k key <= radius)
    |> List.filter_map (fun k -> char_under_modifier k modifier)
    |> List.filter (fun ch -> ch <> c)
    |> List.sort_uniq Char.compare

let shift_variant t c =
  match find t c with
  | None -> None
  | Some (key, Plain) -> key.shifted
  | Some (key, Shifted) -> Some key.unshifted

let can_type t c = find t c <> None

let all_chars t =
  List.concat_map
    (fun k -> k.unshifted :: (match k.shifted with None -> [] | Some s -> [ s ]))
    t.keys
  |> List.sort_uniq Char.compare
