(** Physical keyboard model.

    The typo plugin (paper §4.1) mimics real slips: to substitute or
    insert a character it locates the key and modifiers that produce the
    character being typed, finds physically adjacent keys, and emits the
    characters those keys produce {e with the same modifiers} — modelling
    an operator's finger landing one key off.

    A layout is a set of keys with planar coordinates (keyboard rows are
    staggered, so columns are fractional). *)

type key = {
  row : int;                (** 0 = digit row, 3 = bottom letter row *)
  col : float;              (** centre of the key, in key-widths *)
  unshifted : char;
  shifted : char option;
}

type t = { name : string; keys : key list }

val make : name:string -> (int * float * string * string) list -> t
(** [make ~name rows] builds a layout from row specs
    [(row_index, start_column, unshifted_chars, shifted_chars)]; the two
    strings must have equal length, each position is one key. *)

val us_qwerty : t
(** Standard US ANSI layout. *)

val us_dvorak : t
(** Dvorak simplified layout — a radically different adjacency
    structure, useful for studying how much slips depend on the
    operator's keyboard. *)

val ch_qwertz : t
(** Swiss-German layout (z/y swapped, different shifted digits) —
    exercising layout portability. *)

type modifier = Plain | Shifted

val find : t -> char -> (key * modifier) option
(** The key and modifier combination that produces the character, if the
    layout can type it. *)

val neighbors : ?radius:float -> t -> char -> char list
(** [neighbors t c] lists the characters produced by pressing keys
    adjacent to [c]'s key while holding [c]'s modifiers.  Characters a
    neighbouring key cannot produce under those modifiers are omitted.
    Result is deduplicated, never contains [c], sorted for determinism.
    [radius] defaults to 1.35 key-widths. *)

val shift_variant : t -> char -> char option
(** The character the same key yields with Shift toggled; [None] when the
    key has no shifted binding or the layout cannot type [c]. *)

val can_type : t -> char -> bool

val all_chars : t -> char list
(** Every character the layout can produce, sorted, deduplicated. *)
