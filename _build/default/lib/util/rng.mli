(** Deterministic, splittable pseudo-random number generator.

    ConfErr campaigns must be reproducible: the same seed always yields the
    same fault scenarios, so a resilience profile can be regenerated and a
    regression can be replayed.  This module implements SplitMix64, a small
    high-quality generator with an explicit state that can be forked into
    independent streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves
    independently. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s remaining stream. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** 30 uniformly random non-negative bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. Raises [Invalid_argument] on
    an empty list. *)

val pick_opt : t -> 'a list -> 'a option

val shuffle : t -> 'a list -> 'a list
(** Uniform permutation (Fisher-Yates over an array copy). *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t n xs] draws [min n (length xs)] distinct elements, in
    shuffled order, without replacement. *)
