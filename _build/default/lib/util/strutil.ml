let is_prefix ~prefix s =
  let lp = String.length prefix in
  String.length s >= lp && String.sub s 0 lp = prefix

let drop_prefix ~prefix s =
  if is_prefix ~prefix s then
    Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
  else None

let split_on_first c s =
  match String.index_opt s c with
  | None -> None
  | Some i -> Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let trim = String.trim

let lowercase = String.lowercase_ascii

let insert_char s i c =
  if i < 0 || i > String.length s then invalid_arg "Strutil.insert_char";
  String.sub s 0 i ^ String.make 1 c ^ String.sub s i (String.length s - i)

let delete_char s i =
  if i < 0 || i >= String.length s then invalid_arg "Strutil.delete_char";
  String.sub s 0 i ^ String.sub s (i + 1) (String.length s - i - 1)

let replace_char s i c =
  if i < 0 || i >= String.length s then invalid_arg "Strutil.replace_char";
  String.mapi (fun j ch -> if j = i then c else ch) s

let swap_chars s i =
  if i < 0 || i + 1 >= String.length s then invalid_arg "Strutil.swap_chars";
  String.mapi
    (fun j ch -> if j = i then s.[i + 1] else if j = i + 1 then s.[i] else ch)
    s

let levenshtein a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) (fun j -> j) in
  let curr = Array.make (lb + 1) 0 in
  for i = 1 to la do
    curr.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      curr.(j) <- min (min (prev.(j) + 1) (curr.(j - 1) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit curr 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let damerau_levenshtein a b =
  (* optimal string alignment: substitution, insertion, deletion, and
     adjacent transposition, all unit cost *)
  let la = String.length a and lb = String.length b in
  let d = Array.make_matrix (la + 1) (lb + 1) 0 in
  for i = 0 to la do
    d.(i).(0) <- i
  done;
  for j = 0 to lb do
    d.(0).(j) <- j
  done;
  for i = 1 to la do
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      d.(i).(j) <-
        min (min (d.(i - 1).(j) + 1) (d.(i).(j - 1) + 1)) (d.(i - 1).(j - 1) + cost);
      if i > 1 && j > 1 && a.[i - 1] = b.[j - 2] && a.[i - 2] = b.[j - 1] then
        d.(i).(j) <- min d.(i).(j) (d.(i - 2).(j - 2) + 1)
    done
  done;
  d.(la).(lb)

let lines s =
  match String.split_on_char '\n' s with
  | [] -> []
  | parts ->
    (* Drop the empty fragment produced by a trailing newline. *)
    let rec strip_last = function
      | [ "" ] -> []
      | [] -> []
      | x :: rest -> x :: strip_last rest
    in
    strip_last parts

let unlines = function
  | [] -> ""
  | ls -> String.concat "\n" ls ^ "\n"

let pad_right n s =
  if String.length s >= n then s else s ^ String.make (n - String.length s) ' '

let contains_substring ~needle hay =
  let ln = String.length needle and lh = String.length hay in
  if ln = 0 then true
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i <= lh - ln do
      if String.sub hay !i ln = needle then found := true else incr i
    done;
    !found
  end

let repeat n s =
  let b = Buffer.create (n * String.length s) in
  for _ = 1 to n do
    Buffer.add_string b s
  done;
  Buffer.contents b
