lib/util/texttable.mli:
