lib/util/strutil.ml: Array Buffer String
