lib/util/texttable.ml: Float List Printf String
