lib/util/rng.mli:
