lib/util/strutil.mli:
