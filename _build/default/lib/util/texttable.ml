type align = Left | Right

let cell_width rows header col =
  let width_of row = try String.length (List.nth row col) with _ -> 0 in
  List.fold_left (fun acc row -> max acc (width_of row)) (width_of header) rows

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let render ?(aligns = []) ~header rows =
  let ncols =
    List.fold_left (fun acc row -> max acc (List.length row)) (List.length header) rows
  in
  let widths = List.init ncols (cell_width rows header) in
  let align_of i = try List.nth aligns i with _ -> Left in
  let cell row i = try List.nth row i with _ -> "" in
  let render_row row =
    List.init ncols (fun i -> pad (align_of i) (List.nth widths i) (cell row i))
    |> String.concat "  "
  in
  let sep = List.map (fun w -> String.make w '-') widths |> String.concat "  " in
  let body = List.map render_row rows in
  String.concat "\n" ((render_row header :: sep :: body) @ [ "" ])

let bar ~width fraction =
  let f = if fraction < 0. then 0. else if fraction > 1. then 1. else fraction in
  let n = int_of_float (Float.round (f *. float_of_int width)) in
  String.make n '#'

let percentage ~count ~total =
  if total = 0 then "0 (0%)"
  else Printf.sprintf "%d (%d%%)" count (int_of_float (Float.round (100. *. float_of_int count /. float_of_int total)))
