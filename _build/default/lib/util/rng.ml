type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 finalizer: Stafford's mix13. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  { state = seed }

let bits30 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 34)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound <= 1 lsl 30 then begin
    (* Rejection sampling to avoid modulo bias. *)
    let rec draw () =
      let r = bits30 t in
      let v = r mod bound in
      if r - v + (bound - 1) < 0 then draw () else v
    in
    draw ()
  end
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int bound))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let pick_opt t = function
  | [] -> None
  | xs -> Some (List.nth xs (int t (List.length xs)))

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let sample t n xs =
  let shuffled = shuffle t xs in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  take (max 0 n) shuffled
