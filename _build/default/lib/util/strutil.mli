(** Small string utilities shared across ConfErr. *)

val is_prefix : prefix:string -> string -> bool
(** [is_prefix ~prefix s] is true iff [s] starts with [prefix]. *)

val drop_prefix : prefix:string -> string -> string option
(** [drop_prefix ~prefix s] returns the remainder of [s] after [prefix],
    or [None] if [prefix] does not start [s]. *)

val split_on_first : char -> string -> (string * string) option
(** [split_on_first c s] splits [s] at the first occurrence of [c],
    excluding the separator. *)

val trim : string -> string
(** Like {!String.trim}; provided for qualified-use style. *)

val lowercase : string -> string

val insert_char : string -> int -> char -> string
(** [insert_char s i c] inserts [c] before position [i] (0..length). *)

val delete_char : string -> int -> string
(** [delete_char s i] removes the character at position [i]. *)

val replace_char : string -> int -> char -> string
(** [replace_char s i c] substitutes position [i] with [c]. *)

val swap_chars : string -> int -> string
(** [swap_chars s i] transposes positions [i] and [i+1]. *)

val levenshtein : string -> string -> int
(** Edit distance (insert/delete/substitute, unit costs). *)

val damerau_levenshtein : string -> string -> int
(** Optimal-string-alignment distance: like {!levenshtein} but an
    adjacent transposition also costs 1 — the right metric for
    typo-recovery, where ["prot"] is one slip away from ["port"]. *)

val lines : string -> string list
(** Split on ['\n']; a trailing newline does not produce an empty final
    line. *)

val unlines : string list -> string
(** Join with ['\n'] and append a final newline when the input is
    non-empty. *)

val pad_right : int -> string -> string
(** [pad_right n s] pads [s] with spaces to at least width [n]. *)

val contains_substring : needle:string -> string -> bool
(** Naive substring search; fine for config-sized inputs. *)

val repeat : int -> string -> string
(** [repeat n s] concatenates [n] copies of [s]. *)
