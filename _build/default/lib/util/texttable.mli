(** Plain-text table and histogram rendering for resilience reports.

    All paper tables are regenerated as aligned ASCII tables; Figure 3 is
    rendered as a horizontal bar chart. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out a table with a separator line under the
    header.  Missing cells render empty; [aligns] defaults to all
    [Left]. *)

val bar : width:int -> float -> string
(** [bar ~width fraction] renders a bar of ['#'] of proportional length
    for [fraction] in [\[0, 1\]]. *)

val percentage : count:int -> total:int -> string
(** Renders ["42 (13%)"]; total 0 renders ["0 (0%)"]. *)
