(** Domain-name handling.

    Names are normalized to lowercase, absolute form with a trailing dot
    (["www.example.com."]). *)

val normalize : ?origin:string -> string -> string
(** [normalize ~origin n] lowercases [n]; relative names (no trailing
    dot) are suffixed with [origin]; ["@"] denotes the origin itself. *)

val is_absolute : string -> bool

val relative_to : origin:string -> string -> string
(** Render a normalized name relative to [origin] when possible:
    ["www.example.com."] under ["example.com."] becomes ["www"]; the
    origin itself becomes ["@"]; names outside the origin stay
    absolute. *)

val in_domain : domain:string -> string -> bool
(** [in_domain ~domain n]: [n] equals [domain] or is below it. *)

val reverse_of_ipv4 : string -> string option
(** ["10.0.0.1"] becomes [Some "1.0.0.10.in-addr.arpa."]; [None] for a
    malformed dotted quad. *)

val ipv4_of_reverse : string -> string option
(** Inverse of {!reverse_of_ipv4}. *)

val labels : string -> string list
(** Labels of a normalized name, most-specific first. *)
