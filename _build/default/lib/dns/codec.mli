(** Transformations between native DNS configuration trees and the
    abstract record representation (paper §5.4).

    "A simple transformation maps the data parsed from the configuration
    files of each SUT into this representation.  Another transformation,
    that maps the record representation to the system-specific
    configuration representation, is used to construct the faulty
    configuration files."

    The tinydns encoder fails — by design — on record sets whose faults
    cannot be expressed in the tinydns-data format: a broken ["="]
    pair (A without its PTR, or vice versa) has no serialization, which
    the engine reports as a not-applicable injection. *)

type t = {
  codec_name : string;
  decode : Conftree.Config_set.t -> (Record.t list, string) result;
  encode :
    Record.t list -> Conftree.Config_set.t -> (Conftree.Config_set.t, string) result;
  (** [encode records original_set] rebuilds the configuration files;
      the original set supplies non-record content ($TTL, comments). *)
}

val bind : zones:(string * string) list -> t
(** [bind ~zones] handles BIND master files; [zones] maps each file name
    in the configuration set to its zone origin. *)

val tinydns : file:string -> t
(** [tinydns ~file] handles a tinydns-data file. *)

(** {1 Tag keys used for provenance} *)

val tag_file : string
val tag_combined : string
val tag_group : string
