type t = { zones : Zone.t list }

let create zones = { zones }

type response =
  | Answer of Record.t list
  | No_data
  | Nx_domain
  | Not_authoritative
  | Cname_loop

let zone_for t name =
  (* Longest-origin match among served zones. *)
  t.zones
  |> List.filter (fun (z : Zone.t) -> Name.in_domain ~domain:z.origin name)
  |> List.sort (fun (a : Zone.t) (b : Zone.t) ->
         Int.compare (String.length b.origin) (String.length a.origin))
  |> function
  | [] -> None
  | z :: _ -> Some z

let query t ~name ~rtype =
  let rtype = String.uppercase_ascii rtype in
  let rec resolve chain name hops =
    if hops > 8 then Cname_loop
    else
      match zone_for t name with
      | None -> if chain = [] then Not_authoritative else Answer (List.rev chain)
      | Some zone ->
        let at_name = Zone.find zone ~owner:name in
        if at_name = [] then if chain = [] then Nx_domain else Answer (List.rev chain)
        else begin
          let wanted = List.filter (fun r -> Record.rtype r = rtype) at_name in
          if wanted <> [] then Answer (List.rev_append chain wanted)
          else
            match
              List.find_opt (fun r -> Record.rtype r = "CNAME") at_name
            with
            | Some ({ Record.rdata = Record.Cname target; _ } as cname)
              when rtype <> "CNAME" ->
              resolve (cname :: chain) (Name.normalize target) (hops + 1)
            | Some _ | None ->
              if chain = [] then No_data else Answer (List.rev chain)
        end
  in
  resolve [] (Name.normalize name) 0

let lookup_a t name =
  match query t ~name ~rtype:"A" with
  | Answer records ->
    List.filter_map
      (fun (r : Record.t) -> match r.rdata with Record.A ip -> Some ip | _ -> None)
      records
  | No_data | Nx_domain | Not_authoritative | Cname_loop -> []

let lookup_ptr t ~ip =
  match Name.reverse_of_ipv4 ip with
  | None -> []
  | Some rev ->
    (match query t ~name:rev ~rtype:"PTR" with
     | Answer records ->
       List.filter_map
         (fun (r : Record.t) ->
           match r.rdata with Record.Ptr n -> Some n | _ -> None)
         records
     | No_data | Nx_domain | Not_authoritative | Cname_loop -> [])
