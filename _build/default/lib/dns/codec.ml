module Node = Conftree.Node
module Config_set = Conftree.Config_set
module Strutil = Conferr_util.Strutil

type t = {
  codec_name : string;
  decode : Config_set.t -> (Record.t list, string) result;
  encode : Record.t list -> Config_set.t -> (Config_set.t, string) result;
}

let tag_file = "file"
let tag_combined = "combined"
let tag_group = "group"

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

(* ------------------------------------------------------------------ *)
(* BIND master files                                                    *)
(* ------------------------------------------------------------------ *)

let fields_of s =
  (* RFC 1035 grouping parentheses are pure layout. *)
  let s = String.map (fun c -> if c = '(' || c = ')' then ' ' else c) s in
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun f -> f <> "")

let strip_quotes s =
  if String.length s >= 2 && s.[0] = '"' && s.[String.length s - 1] = '"' then
    String.sub s 1 (String.length s - 2)
  else s

let parse_rdata ~origin ~rtype rdata =
  let name n = Name.normalize ~origin n in
  let fields = fields_of rdata in
  match (String.uppercase_ascii rtype, fields) with
  | "A", [ ip ] -> Ok (Record.A ip)
  | "NS", [ n ] -> Ok (Record.Ns (name n))
  | "CNAME", [ n ] -> Ok (Record.Cname (name n))
  | "PTR", [ n ] -> Ok (Record.Ptr (name n))
  | "MX", [ pref; x ] ->
    (match int_of_string_opt pref with
     | Some p -> Ok (Record.Mx (p, name x))
     | None -> Error (Printf.sprintf "MX preference %S is not a number" pref))
  | "TXT", _ -> Ok (Record.Txt (strip_quotes (Strutil.trim rdata)))
  | "RP", [ mbox; txt ] -> Ok (Record.Rp (name mbox, name txt))
  | "HINFO", [ cpu; os ] -> Ok (Record.Hinfo (strip_quotes cpu, strip_quotes os))
  | "SOA", [ mname; rname; serial; refresh; retry; expire; minimum ] ->
    let num s =
      match int_of_string_opt s with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "SOA field %S is not a number" s)
    in
    let* serial = num serial in
    let* refresh = num refresh in
    let* retry = num retry in
    let* expire = num expire in
    let* minimum = num minimum in
    Ok (Record.Soa
          { mname = name mname; rname = name rname; serial; refresh; retry; expire;
            minimum })
  | t, _ -> Error (Printf.sprintf "unsupported rdata for type %s: %S" t rdata)

let render_rdata = function
  | Record.A ip -> ip
  | Record.Ns n | Record.Cname n | Record.Ptr n -> n
  | Record.Mx (pref, x) -> Printf.sprintf "%d %s" pref x
  | Record.Txt s -> Printf.sprintf "%S" s
  | Record.Rp (mbox, txt) -> Printf.sprintf "%s %s" mbox txt
  | Record.Hinfo (cpu, os) -> Printf.sprintf "%S %S" cpu os
  | Record.Soa s ->
    Printf.sprintf "%s %s %d %d %d %d %d" s.mname s.rname s.serial s.refresh s.retry
      s.expire s.minimum

let decode_bind_file ~file ~origin tree =
  let default_ttl =
    Node.find_first
      (fun n -> n.Node.kind = Node.kind_directive && String.uppercase_ascii n.name = "$TTL")
      tree
    |> Option.map (fun (_, n) -> Node.value_or ~default:"86400" n)
    |> Option.map int_of_string_opt
    |> Option.join
    |> Option.value ~default:86400
  in
  (* $ORIGIN switches the effective origin for subsequent records. *)
  let decode_one (current_origin, acc) (n : Node.t) =
    if n.kind = Node.kind_directive && String.uppercase_ascii n.name = "$ORIGIN" then
      let new_origin = Name.normalize (Node.value_or ~default:current_origin n) in
      Ok (new_origin, acc)
    else if n.kind = Node.kind_record then begin
      let origin = current_origin in
      let owner_text = Option.value ~default:"@" (Node.attr n "owner") in
      let owner = Name.normalize ~origin owner_text in
      let rtype = Option.value ~default:"" (Node.attr n "type") in
      let ttl =
        Node.attr n "ttl" |> Option.map int_of_string_opt |> Option.join
        |> Option.value ~default:default_ttl
      in
      let* rdata = parse_rdata ~origin ~rtype (Node.value_or ~default:"" n) in
      Ok (current_origin, Record.make ~ttl ~tags:[ (tag_file, file) ] owner rdata :: acc)
    end
    else Ok (current_origin, acc)
  in
  let* _, reversed =
    List.fold_left
      (fun acc n -> Result.bind acc (fun state -> decode_one state n))
      (Ok (Name.normalize origin, []))
      tree.Node.children
  in
  Ok (List.rev reversed)

let encode_bind_file ~file ~origin records original_tree =
  (* Keep leading directives and comments; replace the record block. *)
  let keep =
    List.filter
      (fun (n : Node.t) -> n.kind = Node.kind_directive || n.kind = Node.kind_comment)
      original_tree.Node.children
  in
  let record_nodes =
    List.map
      (fun (r : Record.t) ->
        Formats.Bindzone.record
          ~name:(Name.relative_to ~origin r.owner)
          ~rtype:(Record.rtype r) (render_rdata r.rdata))
      records
  in
  ignore file;
  Node.root (keep @ record_nodes)

let bind ~zones =
  let decode set =
    map_result
      (fun (file, origin) ->
        match Config_set.find set file with
        | None -> Error (Printf.sprintf "zone file %S missing from configuration set" file)
        | Some tree -> decode_bind_file ~file ~origin tree)
      zones
    |> Result.map List.concat
  in
  let encode records set =
    List.fold_left
      (fun acc (file, origin) ->
        let* set = acc in
        match Config_set.find set file with
        | None -> Error (Printf.sprintf "zone file %S missing from configuration set" file)
        | Some original ->
          let mine =
            List.filter (fun r -> Record.tag r tag_file = Some file) records
          in
          Ok (Config_set.add set file (encode_bind_file ~file ~origin mine original)))
      (Ok set) zones
  in
  { codec_name = "bind"; decode; encode }

(* ------------------------------------------------------------------ *)
(* tinydns-data                                                         *)
(* ------------------------------------------------------------------ *)

let host_name ~fqdn x =
  (* tinydns rule of thumb: a bare host label belongs to the entry's
     domain. *)
  if String.contains x '.' then Name.normalize x else Name.normalize (x ^ "." ^ fqdn)

let default_soa ~fqdn ~mname =
  Record.Soa
    {
      mname;
      rname = Name.normalize ("hostmaster." ^ fqdn);
      serial = 1;
      refresh = 16384;
      retry = 2048;
      expire = 1048576;
      minimum = 2560;
    }

let decode_tinydns_entry ~file idx (n : Node.t) =
  let op = Option.value ~default:"?" (Node.attr n "op") in
  let fqdn = Name.normalize n.name in
  let fields = Formats.Tinydns.fields n in
  let field i = List.nth_opt fields i in
  let ttl_of i =
    field i |> Option.map int_of_string_opt |> Option.join |> Option.value ~default:86400
  in
  let base_tags = [ (tag_file, file) ] in
  let group_tags = (tag_group, string_of_int idx) :: base_tags in
  let combined_tags = (tag_combined, string_of_int idx) :: base_tags in
  match (op, fields) with
  | "=", ip :: _ ->
    let ttl = ttl_of 1 in
    (match Name.reverse_of_ipv4 ip with
     | None -> Error (Printf.sprintf "entry %d: %S is not an IPv4 address" idx ip)
     | Some rev ->
       Ok
         [
           Record.make ~ttl ~tags:combined_tags fqdn (Record.A ip);
           Record.make ~ttl ~tags:combined_tags rev (Record.Ptr fqdn);
         ])
  | "+", ip :: _ -> Ok [ Record.make ~ttl:(ttl_of 1) ~tags:base_tags fqdn (Record.A ip) ]
  | "^", p :: _ ->
    Ok [ Record.make ~ttl:(ttl_of 1) ~tags:base_tags fqdn (Record.Ptr (Name.normalize p)) ]
  | "C", p :: _ ->
    Ok
      [ Record.make ~ttl:(ttl_of 1) ~tags:base_tags fqdn (Record.Cname (Name.normalize p)) ]
  | "@", ip :: x :: rest ->
    let dist =
      match rest with d :: _ -> Option.value ~default:0 (int_of_string_opt d) | [] -> 0
    in
    let exchange = host_name ~fqdn x in
    let mx = Record.make ~tags:group_tags fqdn (Record.Mx (dist, exchange)) in
    if ip = "" then Ok [ mx ]
    else Ok [ mx; Record.make ~tags:group_tags exchange (Record.A ip) ]
  | ".", ip :: x :: _ | "&", ip :: x :: _ ->
    let ns = host_name ~fqdn:("ns." ^ fqdn) x in
    let ns_record = Record.make ~tags:group_tags fqdn (Record.Ns ns) in
    let soa_records =
      if op = "." then
        [ Record.make ~tags:group_tags fqdn (default_soa ~fqdn ~mname:ns) ]
      else []
    in
    let a_records =
      if ip = "" then [] else [ Record.make ~tags:group_tags ns (Record.A ip) ]
    in
    Ok (soa_records @ (ns_record :: a_records))
  | "'", s :: _ -> Ok [ Record.make ~ttl:(ttl_of 1) ~tags:base_tags fqdn (Record.Txt s) ]
  | "Z", mname :: rname :: rest ->
    let num i d =
      List.nth_opt rest i |> Option.map int_of_string_opt |> Option.join
      |> Option.value ~default:d
    in
    Ok
      [
        Record.make ~tags:base_tags fqdn
          (Record.Soa
             {
               mname = Name.normalize mname;
               rname = Name.normalize rname;
               serial = num 0 1;
               refresh = num 1 16384;
               retry = num 2 2048;
               expire = num 3 1048576;
               minimum = num 4 2560;
             });
      ]
  | op, _ -> Error (Printf.sprintf "entry %d: cannot decode operator %S" idx op)

let decode_tinydns ~file set =
  match Config_set.find set file with
  | None -> Error (Printf.sprintf "data file %S missing from configuration set" file)
  | Some tree ->
    let entries =
      Node.find_all (fun n -> n.Node.kind = Node.kind_record) tree |> List.map snd
    in
    let* record_lists =
      map_result
        (fun (idx, n) -> decode_tinydns_entry ~file idx n)
        (List.mapi (fun i n -> (i, n)) entries)
    in
    Ok (List.concat record_lists)

(* Group records that originated in one source line back together. *)
let partition_by_tag key records =
  let table = Hashtbl.create 8 in
  let loose = ref [] in
  List.iter
    (fun r ->
      match Record.tag r key with
      | Some id ->
        Hashtbl.replace table id (r :: (try Hashtbl.find table id with Not_found -> []))
      | None -> loose := r :: !loose)
    records;
  let groups = Hashtbl.fold (fun id rs acc -> (id, List.rev rs) :: acc) table [] in
  (List.sort (fun (a, _) (b, _) -> compare a b) groups, List.rev !loose)

let encode_one_record (r : Record.t) =
  let name = r.owner in
  match r.rdata with
  | Record.A ip -> Ok (Formats.Tinydns.entry ~op:'+' ~name [ ip ])
  | Record.Ptr p -> Ok (Formats.Tinydns.entry ~op:'^' ~name [ p ])
  | Record.Cname p -> Ok (Formats.Tinydns.entry ~op:'C' ~name [ p ])
  | Record.Mx (dist, x) ->
    Ok (Formats.Tinydns.entry ~op:'@' ~name [ ""; x; string_of_int dist ])
  | Record.Ns n -> Ok (Formats.Tinydns.entry ~op:'&' ~name [ ""; n ])
  | Record.Txt s -> Ok (Formats.Tinydns.entry ~op:'\'' ~name [ s ])
  | Record.Soa s ->
    Ok
      (Formats.Tinydns.entry ~op:'Z' ~name
         [
           s.mname; s.rname; string_of_int s.serial; string_of_int s.refresh;
           string_of_int s.retry; string_of_int s.expire; string_of_int s.minimum;
         ])
  | Record.Rp _ | Record.Hinfo _ ->
    Error
      (Printf.sprintf "the tinydns-data format cannot express %s records"
         (Record.rtype r))

let encode_combined_group (id, records) =
  (* A '=' line is expressible only while both halves survive intact and
     still agree with each other. *)
  let a_records, others =
    List.partition (fun r -> Record.rtype r = "A") records
  in
  match (a_records, others) with
  | [ a ], [ b ] when Record.rtype b = "PTR" ->
    (match (a.Record.rdata, b.Record.rdata) with
     | Record.A ip, Record.Ptr target
       when Name.reverse_of_ipv4 ip = Some b.Record.owner
            && Name.normalize target = a.Record.owner ->
       Ok (Formats.Tinydns.entry ~op:'=' ~name:a.Record.owner [ ip ])
     | _, _ ->
       Error
         (Printf.sprintf
            "combined '=' entry %s: the mutated A/PTR pair no longer matches, \
             fault is not expressible in tinydns-data"
            id))
  | _, _ ->
    Error
      (Printf.sprintf
         "combined '=' entry %s lost one of its records: an A without its PTR \
          (or vice versa) cannot be written in tinydns-data"
         id)

let encode_tinydns ~file records set =
  match Config_set.find set file with
  | None -> Error (Printf.sprintf "data file %S missing from configuration set" file)
  | Some original ->
    let mine = List.filter (fun r -> Record.tag r tag_file = Some file) records in
    let combined, rest = partition_by_tag tag_combined mine in
    let* combined_nodes = map_result encode_combined_group combined in
    (* Line groups ('.', '&', '@') decompose into individual entries when
       mutated, so they never block serialization. *)
    let groups, loose = partition_by_tag tag_group rest in
    let* group_nodes =
      map_result
        (fun (_, rs) -> map_result encode_one_record rs)
        groups
      |> Result.map List.concat
    in
    let* loose_nodes = map_result encode_one_record loose in
    let comments =
      List.filter
        (fun (n : Node.t) -> n.kind = Node.kind_comment)
        original.Node.children
    in
    Ok
      (Config_set.add set file
         (Node.root (comments @ combined_nodes @ group_nodes @ loose_nodes)))

let tinydns ~file =
  {
    codec_name = "tinydns";
    decode = decode_tinydns ~file;
    encode = encode_tinydns ~file;
  }
