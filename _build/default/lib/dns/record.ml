type rdata =
  | A of string
  | Ns of string
  | Cname of string
  | Soa of soa
  | Ptr of string
  | Mx of int * string
  | Txt of string
  | Rp of string * string
  | Hinfo of string * string

and soa = {
  mname : string;
  rname : string;
  serial : int;
  refresh : int;
  retry : int;
  expire : int;
  minimum : int;
}

type t = { owner : string; ttl : int; rdata : rdata; tags : (string * string) list }

let make ?(ttl = 86400) ?(tags = []) owner rdata =
  { owner = Name.normalize owner; ttl; rdata; tags }

let rtype t =
  match t.rdata with
  | A _ -> "A"
  | Ns _ -> "NS"
  | Cname _ -> "CNAME"
  | Soa _ -> "SOA"
  | Ptr _ -> "PTR"
  | Mx _ -> "MX"
  | Txt _ -> "TXT"
  | Rp _ -> "RP"
  | Hinfo _ -> "HINFO"

let tag t key = List.assoc_opt key t.tags

let with_tag t key v = { t with tags = (key, v) :: List.remove_assoc key t.tags }

let equal a b = a.owner = b.owner && a.ttl = b.ttl && a.rdata = b.rdata

let target t =
  match t.rdata with
  | Ns n | Cname n | Ptr n | Mx (_, n) -> Some n
  | A _ | Soa _ | Txt _ | Rp _ | Hinfo _ -> None

let pp_rdata fmt = function
  | A ip -> Format.pp_print_string fmt ip
  | Ns n | Cname n | Ptr n -> Format.pp_print_string fmt n
  | Mx (pref, x) -> Format.fprintf fmt "%d %s" pref x
  | Txt s -> Format.fprintf fmt "%S" s
  | Rp (mbox, txt) -> Format.fprintf fmt "%s %s" mbox txt
  | Hinfo (cpu, os) -> Format.fprintf fmt "%S %S" cpu os
  | Soa s ->
    Format.fprintf fmt "%s %s %d %d %d %d %d" s.mname s.rname s.serial s.refresh
      s.retry s.expire s.minimum

let pp fmt t =
  Format.fprintf fmt "%s %d %s %a" t.owner t.ttl (rtype t) pp_rdata t.rdata

let to_string t = Format.asprintf "%a" pp t
