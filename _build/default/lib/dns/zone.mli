(** A zone: an origin plus the records at or below it. *)

type t = { origin : string; records : Record.t list }

val make : origin:string -> Record.t list -> t
(** Origin is normalized; records outside the origin are kept (useful
    for glue) but flagged by {!validate}. *)

val find : t -> owner:string -> Record.t list
(** Records whose owner equals the (normalized) name. *)

val find_rtype : t -> owner:string -> rtype:string -> Record.t list

val owners : t -> string list
(** Distinct owner names, in first-appearance order. *)

val soa : t -> Record.t option

val add : t -> Record.t -> t

val remove : t -> Record.t -> t
(** Removes every record equal (modulo tags) to the argument. *)

val replace : t -> old_record:Record.t -> Record.t -> t

(** {1 Consistency} *)

type problem =
  | Cname_and_other_data of string
      (** a name owns a CNAME and records of other types (RFC 1034 §3.6.2) *)
  | Mx_target_is_alias of string * string    (** mx owner, exchange *)
  | Ns_target_is_alias of string * string
  | Missing_soa

val validate : t -> problem list
(** The checks BIND performs when loading a zone (paper Table 3 rows 3
    and 4 are detected through these). *)

val pp_problem : Format.formatter -> problem -> unit
