let is_absolute n = n <> "" && n.[String.length n - 1] = '.'

let normalize ?(origin = ".") n =
  let n = String.lowercase_ascii n and origin = String.lowercase_ascii origin in
  let origin = if is_absolute origin then origin else origin ^ "." in
  if n = "@" || n = "" then origin
  else if is_absolute n then n
  else if origin = "." then n ^ "."
  else n ^ "." ^ origin

let in_domain ~domain n =
  let domain = String.lowercase_ascii domain in
  n = domain
  ||
  let suffix = "." ^ domain in
  String.length n > String.length suffix
  && String.sub n (String.length n - String.length suffix) (String.length suffix)
     = suffix

let relative_to ~origin n =
  let origin = String.lowercase_ascii origin in
  if n = origin then "@"
  else
    let suffix = "." ^ origin in
    if
      String.length n > String.length suffix
      && String.sub n (String.length n - String.length suffix) (String.length suffix)
         = suffix
    then String.sub n 0 (String.length n - String.length suffix)
    else n

let dotted_quad ip =
  match String.split_on_char '.' ip with
  | [ a; b; c; d ] ->
    let octet s =
      match int_of_string_opt s with
      | Some v when v >= 0 && v <= 255 -> Some v
      | Some _ | None -> None
    in
    (match (octet a, octet b, octet c, octet d) with
     | Some a, Some b, Some c, Some d -> Some (a, b, c, d)
     | _, _, _, _ -> None)
  | _ -> None

let reverse_of_ipv4 ip =
  match dotted_quad ip with
  | None -> None
  | Some (a, b, c, d) -> Some (Printf.sprintf "%d.%d.%d.%d.in-addr.arpa." d c b a)

let ipv4_of_reverse name =
  match String.split_on_char '.' (String.lowercase_ascii name) with
  | [ d; c; b; a; "in-addr"; "arpa"; "" ] ->
    let ip = Printf.sprintf "%s.%s.%s.%s" a b c d in
    (match dotted_quad ip with Some _ -> Some ip | None -> None)
  | _ -> None

let labels n =
  String.split_on_char '.' n |> List.filter (fun l -> l <> "")
