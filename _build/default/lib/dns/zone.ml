type t = { origin : string; records : Record.t list }

let make ~origin records = { origin = Name.normalize origin; records }

let find t ~owner =
  let owner = Name.normalize owner in
  List.filter (fun (r : Record.t) -> r.owner = owner) t.records

let find_rtype t ~owner ~rtype =
  List.filter (fun r -> Record.rtype r = rtype) (find t ~owner)

let owners t =
  List.fold_left
    (fun acc (r : Record.t) -> if List.mem r.owner acc then acc else r.owner :: acc)
    [] t.records
  |> List.rev

let soa t =
  List.find_opt (fun (r : Record.t) -> Record.rtype r = "SOA") t.records

let add t r = { t with records = t.records @ [ r ] }

let remove t r =
  { t with records = List.filter (fun x -> not (Record.equal x r)) t.records }

let replace t ~old_record r =
  {
    t with
    records = List.map (fun x -> if Record.equal x old_record then r else x) t.records;
  }

type problem =
  | Cname_and_other_data of string
  | Mx_target_is_alias of string * string
  | Ns_target_is_alias of string * string
  | Missing_soa

let validate t =
  let cname_owners =
    List.filter_map
      (fun (r : Record.t) ->
        match r.rdata with Record.Cname _ -> Some r.owner | _ -> None)
      t.records
  in
  let has_alias name = List.mem (Name.normalize name) cname_owners in
  let collisions =
    owners t
    |> List.filter (fun o ->
           List.mem o cname_owners
           && List.exists
                (fun (r : Record.t) -> r.owner = o && Record.rtype r <> "CNAME")
                t.records)
    |> List.map (fun o -> Cname_and_other_data o)
  in
  let alias_targets =
    List.filter_map
      (fun (r : Record.t) ->
        match r.rdata with
        | Record.Mx (_, x) when has_alias x -> Some (Mx_target_is_alias (r.owner, x))
        | Record.Ns n when has_alias n -> Some (Ns_target_is_alias (r.owner, n))
        | _ -> None)
      t.records
  in
  let soa_problem = match soa t with Some _ -> [] | None -> [ Missing_soa ] in
  collisions @ alias_targets @ soa_problem

let pp_problem fmt = function
  | Cname_and_other_data o ->
    Format.fprintf fmt "%s has a CNAME and other data" o
  | Mx_target_is_alias (owner, x) ->
    Format.fprintf fmt "MX for %s points at alias %s" owner x
  | Ns_target_is_alias (owner, n) ->
    Format.fprintf fmt "NS for %s points at alias %s" owner n
  | Missing_soa -> Format.pp_print_string fmt "zone has no SOA record"
