(** Semantic DNS configuration errors from RFC 1912 (paper §5.4).

    Faults are defined on the abstract record representation and mapped
    back to each server's native format through a {!Codec.t}; faults the
    native format cannot express surface as encode errors, which the
    engine records as not-applicable (the paper's "N/A" entries for
    djbdns). *)

type fault =
  | Missing_ptr
      (** an A record has no matching PTR (RFC 1912 §2.1) — paper err 1 *)
  | Ptr_to_cname
      (** a PTR points at an alias instead of the canonical name — err 2 *)
  | Cname_collision_with_ns
      (** the same name carries both NS and CNAME data — err 3 *)
  | Mx_to_cname
      (** an MX exchange is an alias (RFC 1912 §2.4) — err 4 *)
  | Cname_chain
      (** a CNAME points at another CNAME (RFC 1912 §2.4) *)
  | Missing_forward_a
      (** a PTR whose target has no A record (reverse of err 1) *)

val all_faults : fault list

val paper_faults : fault list
(** The four rows of the paper's Table 3, in order. *)

val fault_name : fault -> string

val fault_description : fault -> string
(** The paper's wording where applicable. *)

val instantiate : fault -> Record.t list -> (Record.t list * string) list
(** All concrete instances of the fault on this record set: each is the
    mutated record list plus a description.  Empty when the record set
    offers no opportunity for the fault. *)

val scenarios :
  codec:Codec.t -> faults:fault list -> Conftree.Config_set.t ->
  Errgen.Scenario.t list
(** End-to-end plugin: decode the configuration, instantiate each fault,
    and wrap every instance as a scenario whose application re-encodes
    through the codec (encode failures surface as scenario errors). *)

val plugin : codec:Codec.t -> faults:fault list -> Errgen.Plugin.t
