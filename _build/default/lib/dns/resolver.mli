(** In-memory authoritative resolution over a set of zones.

    Used by the DNS SUT simulators to answer the functional-test queries
    (forward A lookup and reverse PTR lookup, paper §5.1). *)

type t

val create : Zone.t list -> t

type response =
  | Answer of Record.t list
      (** records of the queried type, possibly preceded by the CNAME
          chain followed to reach them *)
  | No_data       (** the name exists but has no records of that type *)
  | Nx_domain     (** the name does not exist in any served zone *)
  | Not_authoritative  (** no served zone contains the name *)
  | Cname_loop

val query : t -> name:string -> rtype:string -> response
(** CNAME chasing: when the owner has a CNAME and the query is for a
    different type, the chain is followed (up to 8 hops) inside the
    served zones. *)

val lookup_a : t -> string -> string list
(** Convenience: the IPv4 addresses for a name (after CNAME chasing). *)

val lookup_ptr : t -> ip:string -> string list
(** Convenience: the names the reverse record(s) for [ip] point at. *)
