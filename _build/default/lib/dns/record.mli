(** The system-independent DNS record representation (paper §5.4).

    Semantic error generation is defined over "an abstract representation
    that shows the DNS records published by each server"; both BIND and
    djbdns configurations are mapped to and from this model. *)

type rdata =
  | A of string                     (** IPv4 address text *)
  | Ns of string
  | Cname of string
  | Soa of soa
  | Ptr of string
  | Mx of int * string              (** preference, exchange *)
  | Txt of string
  | Rp of string * string           (** mbox, txt domain *)
  | Hinfo of string * string        (** cpu, os *)

and soa = {
  mname : string;
  rname : string;
  serial : int;
  refresh : int;
  retry : int;
  expire : int;
  minimum : int;
}

type t = {
  owner : string;                  (** normalized absolute name *)
  ttl : int;
  rdata : rdata;
  tags : (string * string) list;
  (** provenance annotations carried through transformations, e.g.
      [combined] grouping ids for tinydns ["="] lines *)
}

val make : ?ttl:int -> ?tags:(string * string) list -> string -> rdata -> t
(** Owner is normalized via {!Name.normalize}. *)

val rtype : t -> string
(** ["A"], ["NS"], ["CNAME"], ... *)

val tag : t -> string -> string option

val with_tag : t -> string -> string -> t

val equal : t -> t -> bool
(** Ignores tags. *)

val target : t -> string option
(** The domain name the record points at (NS/CNAME/PTR/MX target),
    [None] for address and text records. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
