lib/dns/record.mli: Format
