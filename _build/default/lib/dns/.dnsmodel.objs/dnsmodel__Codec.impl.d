lib/dns/codec.ml: Conferr_util Conftree Formats Hashtbl List Name Option Printf Record Result String
