lib/dns/rfc1912.ml: Codec Errgen List Name Option Printf Record
