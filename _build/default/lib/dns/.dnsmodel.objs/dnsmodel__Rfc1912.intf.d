lib/dns/rfc1912.mli: Codec Conftree Errgen Record
