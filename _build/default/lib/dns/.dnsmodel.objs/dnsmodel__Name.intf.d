lib/dns/name.mli:
