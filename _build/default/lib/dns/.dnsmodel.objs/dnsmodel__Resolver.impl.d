lib/dns/resolver.ml: Int List Name Record String Zone
