lib/dns/zone.ml: Format List Name Record
