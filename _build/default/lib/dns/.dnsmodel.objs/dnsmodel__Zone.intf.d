lib/dns/zone.mli: Format Record
