lib/dns/record.ml: Format List Name
