lib/dns/codec.mli: Conftree Record
