lib/dns/resolver.mli: Record Zone
