lib/dns/name.ml: List Printf String
