module Scenario = Errgen.Scenario

type fault =
  | Missing_ptr
  | Ptr_to_cname
  | Cname_collision_with_ns
  | Mx_to_cname
  | Cname_chain
  | Missing_forward_a

let all_faults =
  [ Missing_ptr; Ptr_to_cname; Cname_collision_with_ns; Mx_to_cname; Cname_chain;
    Missing_forward_a ]

let paper_faults = [ Missing_ptr; Ptr_to_cname; Cname_collision_with_ns; Mx_to_cname ]

let fault_name = function
  | Missing_ptr -> "missing-ptr"
  | Ptr_to_cname -> "ptr-to-cname"
  | Cname_collision_with_ns -> "cname-collision-ns"
  | Mx_to_cname -> "mx-to-cname"
  | Cname_chain -> "cname-chain"
  | Missing_forward_a -> "missing-forward-a"

let fault_description = function
  | Missing_ptr -> "Missing PTR"
  | Ptr_to_cname -> "PTR pointing to CNAME"
  | Cname_collision_with_ns -> "dupl name for NS and CNAME"
  | Mx_to_cname -> "MX pointing to CNAME"
  | Cname_chain -> "CNAME pointing to CNAME"
  | Missing_forward_a -> "PTR without forward A"

let aliases records =
  List.filter (fun r -> Record.rtype r = "CNAME") records

let remove_record records victim =
  List.filter (fun r -> not (Record.equal r victim)) records

let replace_record records ~old_record fresh =
  List.map (fun r -> if Record.equal r old_record then fresh else r) records

let ptrs records = List.filter (fun r -> Record.rtype r = "PTR") records

let has_a records name =
  List.exists
    (fun (r : Record.t) -> Record.rtype r = "A" && r.owner = Name.normalize name)
    records

let instantiate fault records =
  match fault with
  | Missing_ptr ->
    (* Remove a PTR whose target does have an A record: the forward
       mapping survives, the reverse one disappears. *)
    ptrs records
    |> List.filter (fun r ->
           match r.Record.rdata with
           | Record.Ptr target -> has_a records target
           | _ -> false)
    |> List.map (fun r ->
           ( remove_record records r,
             Printf.sprintf "remove PTR %s -> %s" r.Record.owner
               (Option.value ~default:"?" (Record.target r)) ))
  | Ptr_to_cname ->
    let alias_names = List.map (fun (r : Record.t) -> r.owner) (aliases records) in
    ptrs records
    |> List.concat_map (fun (r : Record.t) ->
           alias_names
           |> List.filter (fun alias -> Some alias <> Record.target r)
           |> List.map (fun alias ->
                  ( replace_record records ~old_record:r
                      { r with Record.rdata = Record.Ptr alias },
                    Printf.sprintf "point PTR %s at alias %s" r.owner alias )))
  | Cname_collision_with_ns ->
    (* Add a CNAME at a name that already owns NS records. *)
    let ns_owners =
      List.filter (fun r -> Record.rtype r = "NS") records
      |> List.map (fun (r : Record.t) -> r.owner)
      |> List.sort_uniq compare
    in
    let a_owners =
      List.filter (fun r -> Record.rtype r = "A") records
      |> List.map (fun (r : Record.t) -> r.owner)
      |> List.sort_uniq compare
    in
    ns_owners
    |> List.concat_map (fun owner ->
           (* The new record must live in the same configuration file as
              the records already at that owner, so encoders place it. *)
           let tags =
             match
               List.find_opt (fun (r : Record.t) -> r.owner = owner) records
             with
             | Some r -> List.filter (fun (k, _) -> k = Codec.tag_file) r.tags
             | None -> []
           in
           a_owners
           |> List.filter (fun t -> t <> owner)
           |> List.map (fun target ->
                  ( records @ [ Record.make ~tags owner (Record.Cname target) ],
                    Printf.sprintf "add CNAME at NS owner %s -> %s" owner target )))
  | Mx_to_cname ->
    let alias_names = List.map (fun (r : Record.t) -> r.owner) (aliases records) in
    records
    |> List.filter (fun r -> Record.rtype r = "MX")
    |> List.concat_map (fun (r : Record.t) ->
           let pref = match r.rdata with Record.Mx (p, _) -> p | _ -> 0 in
           alias_names
           |> List.map (fun alias ->
                  ( replace_record records ~old_record:r
                      { r with Record.rdata = Record.Mx (pref, alias) },
                    Printf.sprintf "point MX for %s at alias %s" r.owner alias )))
  | Cname_chain ->
    let al = aliases records in
    al
    |> List.concat_map (fun (r : Record.t) ->
           al
           |> List.filter (fun (other : Record.t) ->
                  other.owner <> r.owner && Some other.owner <> Record.target r)
           |> List.map (fun (other : Record.t) ->
                  ( replace_record records ~old_record:r
                      { r with Record.rdata = Record.Cname other.owner },
                    Printf.sprintf "chain CNAME %s -> CNAME %s" r.owner other.owner )))
  | Missing_forward_a ->
    (* Remove an A record that a PTR points at: the reverse mapping
       survives, the forward one disappears. *)
    let ptr_targets =
      ptrs records |> List.filter_map Record.target |> List.sort_uniq compare
    in
    records
    |> List.filter (fun (r : Record.t) ->
           Record.rtype r = "A" && List.mem r.owner ptr_targets)
    |> List.map (fun r ->
           ( remove_record records r,
             Printf.sprintf "remove A record of %s" r.Record.owner ))

let scenarios ~codec ~faults set =
  match codec.Codec.decode set with
  | Error _ -> []
  | Ok records ->
    faults
    |> List.concat_map (fun fault ->
           instantiate fault records
           |> List.map (fun (mutated, what) ->
                  Scenario.make ~id:""
                    ~class_name:(Printf.sprintf "semantic/%s" (fault_name fault))
                    ~description:
                      (Printf.sprintf "%s: %s" (fault_description fault) what)
                    (fun set ->
                      match codec.Codec.decode set with
                      | Error e -> Error e
                      | Ok _ -> codec.Codec.encode mutated set)))

let plugin ~codec ~faults =
  Errgen.Plugin.make
    ~name:(Printf.sprintf "semantic-dns-%s" codec.Codec.codec_name)
    ~describe:"RFC-1912 semantic DNS configuration errors"
    (fun ~rng:_ set -> scenarios ~codec ~faults set)
