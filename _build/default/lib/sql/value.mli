(** SQL values for the miniature engine. *)

type t = Int of int | Text of string | Null

type coltype = Tint | Ttext

val type_matches : coltype -> t -> bool
(** [Null] matches every column type. *)

val equal : t -> t -> bool
(** SQL semantics: [Null] equals nothing, not even [Null]. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val coltype_name : coltype -> string

val coltype_of_name : string -> coltype option
(** Case-insensitive; recognizes the usual aliases ([INT], [INTEGER],
    [TEXT], [VARCHAR], [CHAR]). *)
