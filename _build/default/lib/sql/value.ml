type t = Int of int | Text of string | Null

type coltype = Tint | Ttext

let type_matches coltype v =
  match (coltype, v) with
  | _, Null -> true
  | Tint, Int _ -> true
  | Ttext, Text _ -> true
  | Tint, Text _ | Ttext, Int _ -> false

let equal a b =
  match (a, b) with
  | Null, _ | _, Null -> false
  | Int x, Int y -> x = y
  | Text x, Text y -> x = y
  | Int _, Text _ | Text _, Int _ -> false

let pp fmt = function
  | Int i -> Format.pp_print_int fmt i
  | Text s -> Format.fprintf fmt "'%s'" s
  | Null -> Format.pp_print_string fmt "NULL"

let to_string v = Format.asprintf "%a" pp v

let coltype_name = function Tint -> "INT" | Ttext -> "TEXT"

let coltype_of_name s =
  match String.uppercase_ascii s with
  | "INT" | "INTEGER" | "BIGINT" | "SMALLINT" -> Some Tint
  | "TEXT" | "VARCHAR" | "CHAR" | "STRING" -> Some Ttext
  | _ -> None
