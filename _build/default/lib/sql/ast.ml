type condition = { column : string; value : Value.t }

type statement =
  | Create_database of string
  | Drop_database of string
  | Create_table of { table : string; columns : (string * Value.coltype) list }
  | Drop_table of string
  | Insert of { table : string; values : Value.t list }
  | Select of { columns : string list option; table : string; where : condition option }
  | Delete of { table : string; where : condition option }
  | Use of string

let pp_where fmt = function
  | None -> ()
  | Some { column; value } ->
    Format.fprintf fmt " WHERE %s = %a" column Value.pp value

let pp fmt = function
  | Create_database d -> Format.fprintf fmt "CREATE DATABASE %s" d
  | Drop_database d -> Format.fprintf fmt "DROP DATABASE %s" d
  | Create_table { table; columns } ->
    Format.fprintf fmt "CREATE TABLE %s (%s)" table
      (String.concat ", "
         (List.map (fun (c, t) -> c ^ " " ^ Value.coltype_name t) columns))
  | Drop_table t -> Format.fprintf fmt "DROP TABLE %s" t
  | Insert { table; values } ->
    Format.fprintf fmt "INSERT INTO %s VALUES (%s)" table
      (String.concat ", " (List.map Value.to_string values))
  | Select { columns; table; where } ->
    Format.fprintf fmt "SELECT %s FROM %s%a"
      (match columns with None -> "*" | Some cs -> String.concat ", " cs)
      table pp_where where
  | Delete { table; where } -> Format.fprintf fmt "DELETE FROM %s%a" table pp_where where
  | Use d -> Format.fprintf fmt "USE %s" d
