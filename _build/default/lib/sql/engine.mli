(** In-memory execution of {!Ast.statement}s.

    One engine instance models one database server process.  State is
    mutable (tables live in hash tables) because the engine stands in for
    an external daemon whose state the harness starts and discards per
    injection. *)

type t

type result_set = { columns : string list; rows : Value.t list list }

type outcome =
  | Done                    (** statement executed, nothing to return *)
  | Rows of result_set
  | Sql_error of string

val create : unit -> t
(** A fresh server with no databases. *)

val execute : t -> Ast.statement -> outcome

val run : t -> string -> outcome
(** Parse then execute one statement; parse errors become
    [Sql_error]. *)

val run_script : t -> string -> (int, string) result
(** Run [;]-separated statements, stopping at the first error; returns
    the number executed. *)

val database_names : t -> string list
