type token = Word of string | Str of string | Num of int | Punct of char

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.'

exception Fail of string

let tokenize input =
  let n = String.length input in
  let rec scan i acc =
    if i >= n then List.rev acc
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> scan (i + 1) acc
      | '\'' ->
        let rec find j buf =
          if j >= n then raise (Fail "unterminated string literal")
          else if input.[j] = '\'' && j + 1 < n && input.[j + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            find (j + 2) buf
          end
          else if input.[j] = '\'' then (j, Buffer.contents buf)
          else begin
            Buffer.add_char buf input.[j];
            find (j + 1) buf
          end
        in
        let close, s = find (i + 1) (Buffer.create 8) in
        scan (close + 1) (Str s :: acc)
      | c when c >= '0' && c <= '9' ->
        let rec span j = if j < n && input.[j] >= '0' && input.[j] <= '9' then span (j + 1) else j in
        let stop = span i in
        scan stop (Num (int_of_string (String.sub input i (stop - i))) :: acc)
      | '-' when i + 1 < n && input.[i + 1] >= '0' && input.[i + 1] <= '9' ->
        let rec span j = if j < n && input.[j] >= '0' && input.[j] <= '9' then span (j + 1) else j in
        let stop = span (i + 1) in
        scan stop (Num (-int_of_string (String.sub input (i + 1) (stop - i - 1))) :: acc)
      | c when is_word_char c ->
        let rec span j = if j < n && is_word_char input.[j] then span (j + 1) else j in
        let stop = span i in
        scan stop (Word (String.sub input i (stop - i)) :: acc)
      | ('(' | ')' | ',' | '=' | '*' | ';') as c -> scan (i + 1) (Punct c :: acc)
      | c -> raise (Fail (Printf.sprintf "unexpected character %C" c))
  in
  scan 0 []

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let next st =
  match st.toks with
  | [] -> raise (Fail "unexpected end of statement")
  | t :: rest ->
    st.toks <- rest;
    t

let keyword st expected =
  match next st with
  | Word w when String.uppercase_ascii w = expected -> ()
  | _ -> raise (Fail (Printf.sprintf "expected keyword %s" expected))

let identifier st =
  match next st with
  | Word w -> w
  | _ -> raise (Fail "expected an identifier")

let punct st c =
  match next st with
  | Punct p when p = c -> ()
  | _ -> raise (Fail (Printf.sprintf "expected %C" c))

let literal st =
  match next st with
  | Str s -> Value.Text s
  | Num n -> Value.Int n
  | Word w when String.uppercase_ascii w = "NULL" -> Value.Null
  | _ -> raise (Fail "expected a literal value")

let where_clause st =
  match peek st with
  | Some (Word w) when String.uppercase_ascii w = "WHERE" ->
    ignore (next st);
    let column = identifier st in
    punct st '=';
    Some { Ast.column; value = literal st }
  | _ -> None

let comma_separated st parse_item =
  let rec loop acc =
    let item = parse_item st in
    match peek st with
    | Some (Punct ',') ->
      ignore (next st);
      loop (item :: acc)
    | _ -> List.rev (item :: acc)
  in
  loop []

let column_def st =
  let name = identifier st in
  let tname = identifier st in
  match Value.coltype_of_name tname with
  | Some t -> (name, t)
  | None -> raise (Fail (Printf.sprintf "unknown column type %S" tname))

let statement st =
  match next st with
  | Word w ->
    (match String.uppercase_ascii w with
     | "CREATE" ->
       (match String.uppercase_ascii (identifier st) with
        | "DATABASE" -> Ast.Create_database (identifier st)
        | "TABLE" ->
          let table = identifier st in
          punct st '(';
          let columns = comma_separated st column_def in
          punct st ')';
          Ast.Create_table { table; columns }
        | other -> raise (Fail (Printf.sprintf "cannot CREATE %s" other)))
     | "DROP" ->
       (match String.uppercase_ascii (identifier st) with
        | "DATABASE" -> Ast.Drop_database (identifier st)
        | "TABLE" -> Ast.Drop_table (identifier st)
        | other -> raise (Fail (Printf.sprintf "cannot DROP %s" other)))
     | "INSERT" ->
       keyword st "INTO";
       let table = identifier st in
       keyword st "VALUES";
       punct st '(';
       let values = comma_separated st literal in
       punct st ')';
       Ast.Insert { table; values }
     | "SELECT" ->
       let columns =
         match peek st with
         | Some (Punct '*') ->
           ignore (next st);
           None
         | _ -> Some (comma_separated st identifier)
       in
       keyword st "FROM";
       let table = identifier st in
       let where = where_clause st in
       Ast.Select { columns; table; where }
     | "DELETE" ->
       keyword st "FROM";
       let table = identifier st in
       Ast.Delete { table; where = where_clause st }
     | "USE" -> Ast.Use (identifier st)
     | other -> raise (Fail (Printf.sprintf "unknown statement %S" other)))
  | _ -> raise (Fail "a statement starts with a keyword")

let finish st stmt =
  (match peek st with
   | Some (Punct ';') -> ignore (next st)
   | _ -> ());
  match peek st with
  | None -> stmt
  | Some _ -> raise (Fail "trailing tokens after statement")

let parse input =
  match
    let st = { toks = tokenize input } in
    finish st (statement st)
  with
  | stmt -> Ok stmt
  | exception Fail msg -> Error msg

let parse_script input =
  match
    let st = { toks = tokenize input } in
    let rec loop acc =
      match peek st with
      | None -> List.rev acc
      | Some (Punct ';') ->
        ignore (next st);
        loop acc
      | Some _ -> loop (statement st :: acc)
    in
    loop []
  with
  | stmts -> Ok stmts
  | exception Fail msg -> Error msg
