(** Statements understood by the miniature SQL engine. *)

type condition = { column : string; value : Value.t }
(** Equality against a literal; the only predicate the engine needs. *)

type statement =
  | Create_database of string
  | Drop_database of string
  | Create_table of { table : string; columns : (string * Value.coltype) list }
  | Drop_table of string
  | Insert of { table : string; values : Value.t list }
  | Select of { columns : string list option; table : string; where : condition option }
      (** [columns = None] means [*] *)
  | Delete of { table : string; where : condition option }
  | Use of string

val pp : Format.formatter -> statement -> unit
