type table = { columns : (string * Value.coltype) list; mutable rows : Value.t list list }

type database = (string, table) Hashtbl.t

type t = { databases : (string, database) Hashtbl.t; mutable current : string option }

type result_set = { columns : string list; rows : Value.t list list }

type outcome = Done | Rows of result_set | Sql_error of string

let create () = { databases = Hashtbl.create 4; current = None }

let database_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.databases [] |> List.sort compare

let current_db t =
  match t.current with
  | None -> Error "no database selected (USE <db> first)"
  | Some name ->
    (match Hashtbl.find_opt t.databases name with
     | None -> Error (Printf.sprintf "database %S no longer exists" name)
     | Some db -> Ok db)

let find_table (db : database) name : (table, string) result =
  match Hashtbl.find_opt db name with
  | None -> Error (Printf.sprintf "table %S does not exist" name)
  | Some tbl -> Ok tbl

let column_index (tbl : table) column =
  let rec go i = function
    | [] -> Error (Printf.sprintf "column %S does not exist" column)
    | (c, _) :: _ when c = column -> Ok i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 tbl.columns

let row_matches (tbl : table) where row =
  match where with
  | None -> Ok true
  | Some { Ast.column; value } ->
    Result.map (fun i -> Value.equal (List.nth row i) value) (column_index tbl column)

let ( let* ) = Result.bind

let select db ~columns ~table ~where =
  let* tbl = find_table db table in
  let* projection =
    match columns with
    | None -> Ok (List.mapi (fun i (c, _) -> (c, i)) tbl.columns)
    | Some cs ->
      List.fold_left
        (fun acc c ->
          let* acc = acc in
          let* i = column_index tbl c in
          Ok ((c, i) :: acc))
        (Ok []) cs
      |> Result.map List.rev
  in
  let* rows =
    List.fold_left
      (fun acc row ->
        let* acc = acc in
        let* keep = row_matches tbl where row in
        if keep then Ok (List.map (fun (_, i) -> List.nth row i) projection :: acc)
        else Ok acc)
      (Ok []) tbl.rows
    |> Result.map List.rev
  in
  Ok { columns = List.map fst projection; rows }

let insert db ~table ~values =
  let* tbl = find_table db table in
  if List.length values <> List.length tbl.columns then
    Error
      (Printf.sprintf "table %S has %d columns but %d values were supplied" table
         (List.length tbl.columns) (List.length values))
  else if
    not (List.for_all2 (fun (_, ct) v -> Value.type_matches ct v) tbl.columns values)
  then Error (Printf.sprintf "type mismatch inserting into %S" table)
  else begin
    tbl.rows <- tbl.rows @ [ values ];
    Ok ()
  end

let delete db ~table ~where =
  let* tbl = find_table db table in
  let* kept =
    List.fold_left
      (fun acc row ->
        let* acc = acc in
        let* matches = row_matches tbl where row in
        if matches then Ok acc else Ok (row :: acc))
      (Ok []) tbl.rows
    |> Result.map List.rev
  in
  tbl.rows <- kept;
  Ok ()

let execute t stmt =
  let as_outcome = function Ok () -> Done | Error msg -> Sql_error msg in
  match stmt with
  | Ast.Create_database name ->
    if Hashtbl.mem t.databases name then
      Sql_error (Printf.sprintf "database %S already exists" name)
    else begin
      Hashtbl.add t.databases name (Hashtbl.create 4);
      if t.current = None then t.current <- Some name;
      Done
    end
  | Ast.Drop_database name ->
    if not (Hashtbl.mem t.databases name) then
      Sql_error (Printf.sprintf "database %S does not exist" name)
    else begin
      Hashtbl.remove t.databases name;
      if t.current = Some name then t.current <- None;
      Done
    end
  | Ast.Use name ->
    if Hashtbl.mem t.databases name then begin
      t.current <- Some name;
      Done
    end
    else Sql_error (Printf.sprintf "database %S does not exist" name)
  | Ast.Create_table { table; columns } ->
    as_outcome
      (let* db = current_db t in
       if Hashtbl.mem db table then
         Error (Printf.sprintf "table %S already exists" table)
       else if columns = [] then Error "a table needs at least one column"
       else begin
         Hashtbl.add db table { columns; rows = [] };
         Ok ()
       end)
  | Ast.Drop_table table ->
    as_outcome
      (let* db = current_db t in
       let* _ = find_table db table in
       Hashtbl.remove db table;
       Ok ())
  | Ast.Insert { table; values } ->
    as_outcome (Result.bind (current_db t) (fun db -> insert db ~table ~values))
  | Ast.Delete { table; where } ->
    as_outcome (Result.bind (current_db t) (fun db -> delete db ~table ~where))
  | Ast.Select { columns; table; where } ->
    (match Result.bind (current_db t) (fun db -> select db ~columns ~table ~where) with
     | Ok rs -> Rows rs
     | Error msg -> Sql_error msg)

let run t input =
  match Sql_parser.parse input with
  | Error msg -> Sql_error (Printf.sprintf "parse error: %s" msg)
  | Ok stmt -> execute t stmt

let run_script t input =
  match Sql_parser.parse_script input with
  | Error msg -> Error (Printf.sprintf "parse error: %s" msg)
  | Ok stmts ->
    let rec go n = function
      | [] -> Ok n
      | stmt :: rest ->
        (match execute t stmt with
         | Done | Rows _ -> go (n + 1) rest
         | Sql_error msg -> Error msg)
    in
    go 0 stmts
