lib/sql/sql_parser.ml: Ast Buffer List Printf String Value
