lib/sql/value.ml: Format String
