lib/sql/engine.ml: Ast Hashtbl List Printf Result Sql_parser Value
