lib/sql/sql_parser.mli: Ast
