lib/sql/engine.mli: Ast Value
