(** SQL tokenizer and statement parser. *)

val parse : string -> (Ast.statement, string) result
(** Parses a single statement; a trailing [;] is accepted. *)

val parse_script : string -> (Ast.statement list, string) result
(** Parses [;]-separated statements. *)
