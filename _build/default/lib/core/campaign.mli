(** The paper's §5.2 typo faultload.

    Three kinds of errors are injected into the default configuration
    (quoting the paper):

    - deletion of entire directives
    - typos in directive names — "for each section in the default file,
      randomly select [n] directives and introduce a typo in each one's
      name"
    - typos in directive values — same selection, typo in the value

    Sections are the section nodes of each file's tree; top-level
    directives of flat formats count as one implicit section. *)

type faultload = {
  delete_directives : bool;
  directives_per_section : int;
      (** how many directives of each section receive typos (the paper
          uses 10; sections with fewer directives contribute all) *)
  typos_per_directive : int;
      (** independent random typos injected per selected directive, for
          names and for values separately *)
}

val paper_faultload : faultload
(** [{ delete_directives = true; directives_per_section = 10;
      typos_per_directive = 10 }] *)

val typo_scenarios :
  rng:Conferr_util.Rng.t -> faultload:faultload -> Suts.Sut.t ->
  Conftree.Config_set.t -> Errgen.Scenario.t list

val plugin : faultload:faultload -> Suts.Sut.t -> Errgen.Plugin.t
(** The faultload as a ConfErr plugin. *)
