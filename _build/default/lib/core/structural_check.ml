module Variations = Errgen.Variations

type support = Supported | Unsupported | Not_applicable

let support_label = function
  | Supported -> "Yes"
  | Unsupported -> "No"
  | Not_applicable -> "n/a"

type row = { class_name : Variations.class_name; support : support }

type t = { sut_name : string; rows : row list; satisfied_percent : float }

let check_class ~rng ~count ~sut ~base class_name =
  let files = Conftree.Config_set.names base in
  let scenarios =
    List.concat_map
      (fun file -> Variations.scenarios ~rng ~count class_name ~file base)
      files
  in
  if scenarios = [] then Not_applicable
  else begin
    let outcomes =
      List.map (fun s -> Engine.run_scenario ~sut ~base s) scenarios
    in
    (* "either all configuration files created with a class of variations
       are accepted or none is" — we still require all, and treat a
       mutation the format itself could not express as unsupported. *)
    if List.for_all (fun o -> o = Outcome.Passed) outcomes then Supported
    else Unsupported
  end

let run ~rng ?(count = 10) ?(excluded = []) ~sut () =
  match Engine.parse_default_config sut with
  | Error msg ->
    invalid_arg
      (Printf.sprintf "default configuration of %s does not parse: %s"
         sut.Suts.Sut.sut_name msg)
  | Ok base ->
    let rows =
      List.map
        (fun class_name ->
          let support =
            if List.mem class_name excluded then Not_applicable
            else check_class ~rng ~count ~sut ~base class_name
          in
          { class_name; support })
        Variations.all_classes
    in
    let applicable = List.filter (fun r -> r.support <> Not_applicable) rows in
    let supported = List.filter (fun r -> r.support = Supported) applicable in
    let satisfied_percent =
      if applicable = [] then 0.
      else
        100. *. float_of_int (List.length supported)
        /. float_of_int (List.length applicable)
    in
    { sut_name = sut.Suts.Sut.sut_name; rows; satisfied_percent }
