lib/core/process_bench.mli: Conferr_util Suts
