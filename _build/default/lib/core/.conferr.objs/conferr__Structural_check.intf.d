lib/core/structural_check.mli: Conferr_util Errgen Suts
