lib/core/report.ml: Campaign Conferr_util Dnsmodel Engine Errgen List Outcome Printf Profile String Structural_check Suts
