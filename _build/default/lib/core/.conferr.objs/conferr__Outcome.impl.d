lib/core/outcome.ml: Format String
