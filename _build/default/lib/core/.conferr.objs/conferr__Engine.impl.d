lib/core/engine.ml: Conftree Errgen Formats List Logs Outcome Printexc Printf Profile Result String Suts
