lib/core/suggest.ml: Conferr_util Errgen Int List Printf String
