lib/core/suggest.mli: Conferr_util
