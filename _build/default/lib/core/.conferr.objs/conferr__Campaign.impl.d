lib/core/campaign.ml: Conferr_util Conftree Errgen Fun List Printf String Suts
