lib/core/structural_check.ml: Conftree Engine Errgen List Outcome Printf Suts
