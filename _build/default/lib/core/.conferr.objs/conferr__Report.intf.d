lib/core/report.mli: Campaign Dnsmodel Errgen Suts
