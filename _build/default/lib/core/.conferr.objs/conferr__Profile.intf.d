lib/core/profile.mli: Outcome
