lib/core/profile.ml: Conferr_util Errgen List Outcome Printf String
