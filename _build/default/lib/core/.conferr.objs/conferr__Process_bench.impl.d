lib/core/process_bench.ml: Conferr_util Conftree Engine Errgen Fun List Outcome Printf Suts
