lib/core/paper.ml: Campaign Compare Conferr_util Dnsmodel Engine Errgen List Outcome Printf Process_bench Profile String Structural_check Suts
