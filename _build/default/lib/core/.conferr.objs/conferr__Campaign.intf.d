lib/core/campaign.mli: Conferr_util Conftree Errgen Suts
