lib/core/compare.mli: Conferr_util Suts
