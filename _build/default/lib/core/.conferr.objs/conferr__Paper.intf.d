lib/core/paper.mli: Campaign Compare Dnsmodel Process_bench Profile Structural_check
