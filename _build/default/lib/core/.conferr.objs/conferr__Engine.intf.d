lib/core/engine.mli: Conftree Errgen Outcome Profile Suts
