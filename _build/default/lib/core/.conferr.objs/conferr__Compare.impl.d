lib/core/compare.ml: Conferr_util Conftree Engine Errgen Fun List Outcome Printf Suts
