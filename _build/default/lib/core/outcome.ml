type t =
  | Startup_failure of string
  | Test_failure of string list
  | Passed
  | Not_applicable of string

let detected = function
  | Startup_failure _ | Test_failure _ -> true
  | Passed | Not_applicable _ -> false

let label = function
  | Startup_failure _ -> "startup"
  | Test_failure _ -> "functional"
  | Passed -> "ignored"
  | Not_applicable _ -> "n/a"

let pp fmt = function
  | Startup_failure msg -> Format.fprintf fmt "startup failure: %s" msg
  | Test_failure msgs ->
    Format.fprintf fmt "functional-test failure: %s" (String.concat "; " msgs)
  | Passed -> Format.pp_print_string fmt "passed (mutation ignored or handled)"
  | Not_applicable msg -> Format.fprintf fmt "not applicable: %s" msg
