(** Full per-SUT assessment reports.

    Bundles everything ConfErr can say about one system — the typo
    resilience profile (with per-class and per-cognitive-level
    summaries), the structural-variation support table, and for DNS
    servers the semantic fault results — into a single document for the
    developer (the paper's "prompt feedback during development" use
    case). *)

type section = { title : string; body : string }

type t = { sut_name : string; version : string; sections : section list }

val generate :
  ?seed:int ->
  ?faultload:Campaign.faultload ->
  ?excluded_variations:Errgen.Variations.class_name list ->
  ?semantic_codec:Dnsmodel.Codec.t ->
  Suts.Sut.t ->
  t
(** Runs the applicable campaigns.  [semantic_codec] enables the
    RFC-1912 section for DNS SUTs. *)

val render : t -> string
(** Markdown-ish rendering with section headers. *)

val weaknesses : t -> string list
(** The silently-ignored injections, worth a developer's attention. *)
