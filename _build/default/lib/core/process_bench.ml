module Node = Conftree.Node
module Rng = Conferr_util.Rng
module Texttable = Conferr_util.Texttable
module Scenario = Errgen.Scenario
module Typo = Errgen.Typo

type task = { directive : string; new_value : string }

type task_result = { task : task; injections : int; detected : int }

type t = { sut_name : string; task_results : task_result list }

let directives_of tree =
  Node.find_all
    (fun n -> n.Node.kind = Node.kind_directive && n.Node.value <> None)
    tree

(* Apply the administrator's valid edit, then pick typo targets within
   [proximity] positions of it (in document order over directives). *)
let run_task ~rng ~experiments ~proximity ~sut ~file ~base task =
  match Conftree.Config_set.find base file with
  | None -> Error (Printf.sprintf "file %S missing" file)
  | Some tree ->
    let directives = directives_of tree in
    (match
       List.find_opt (fun (_, (n : Node.t)) -> n.name = task.directive) directives
     with
     | None -> Ok { task; injections = 0; detected = 0 }
     | Some (edit_path, edited) ->
       (* the valid transformation *)
       let edited' = { edited with Node.value = Some task.new_value } in
       (match Node.replace tree edit_path edited' with
        | None -> Error "edit failed"
        | Some tree' ->
          let base' = Conftree.Config_set.add base file tree' in
          (* sanity: the transformed configuration must still be valid *)
          (match Engine.serialize_config sut base' with
           | Error msg -> Error (Printf.sprintf "task produces unserializable config: %s" msg)
           | Ok files ->
             (match sut.Suts.Sut.boot files with
              | Error msg ->
                Error
                  (Printf.sprintf "task %S -> %S is not a valid edit: %s" task.directive
                     task.new_value msg)
              | Ok instance ->
                instance.Suts.Sut.shutdown ();
                (* typo targets near the edit *)
                let directives' = directives_of tree' in
                let edit_index =
                  let rec find i = function
                    | [] -> 0
                    | (p, _) :: rest ->
                      if Conftree.Path.equal p edit_path then i else find (i + 1) rest
                  in
                  find 0 directives'
                in
                let nearby =
                  List.filteri
                    (fun i _ -> abs (i - edit_index) <= proximity)
                    directives'
                in
                let outcomes =
                  List.init experiments (fun _ ->
                      let path, node = Rng.pick rng nearby in
                      match node.Node.value with
                      | None -> None
                      | Some w ->
                        (match Typo.random_kind_first rng w with
                         | None -> None
                         | Some (mutated, what) ->
                           let scenario =
                             Scenario.make ~id:"bench"
                               ~class_name:"process-bench/value-typo"
                               ~description:
                                 (Printf.sprintf "%s in %S near edit of %S" what
                                    node.name task.directive)
                               (Scenario.edit_in_file ~file (fun t ->
                                    Node.replace t path
                                      { node with Node.value = Some mutated }))
                           in
                           Some (Engine.run_scenario ~sut ~base:base' scenario)))
                  |> List.filter_map Fun.id
                in
                Ok
                  {
                    task;
                    injections = List.length outcomes;
                    detected = List.length (List.filter Outcome.detected outcomes);
                  }))))

let run ~rng ?(experiments = 20) ?(proximity = 2) ~sut ~config ~tasks () =
  let file, text = config in
  match Engine.parse_config sut [ (file, text) ] with
  | Error msg -> Error msg
  | Ok base ->
    let rec go acc = function
      | [] -> Ok { sut_name = sut.Suts.Sut.sut_name; task_results = List.rev acc }
      | task :: rest ->
        (match run_task ~rng ~experiments ~proximity ~sut ~file ~base task with
         | Error msg -> Error msg
         | Ok result -> go (result :: acc) rest)
    in
    go [] tasks

let detection_rate t =
  let detected, total =
    List.fold_left
      (fun (d, n) r -> (d + r.detected, n + r.injections))
      (0, 0) t.task_results
  in
  if total = 0 then 0. else float_of_int detected /. float_of_int total

let render t =
  let rows =
    List.map
      (fun r ->
        [
          Printf.sprintf "%s := %s" r.task.directive r.task.new_value;
          string_of_int r.injections;
          Texttable.percentage ~count:r.detected ~total:r.injections;
        ])
      t.task_results
  in
  Printf.sprintf "Configuration-process benchmark for %s (overall detection %.0f%%)\n%s"
    t.sut_name
    (100. *. detection_rate t)
    (Texttable.render
       ~aligns:[ Texttable.Left; Texttable.Right; Texttable.Right ]
       ~header:[ "task (valid edit)"; "injections"; "detected" ]
       rows)
