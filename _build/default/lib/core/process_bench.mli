(** The §5.5 configuration-process benchmark.

    "A configuration process can be viewed as the transformation of an
    initial configuration file into a new configuration file. [...]
    ConfErr uses a benchmark script to automatically transform initial
    configuration files into new, valid files; afterward, it creates
    faulty configuration files based on these new files [...]  Errors are
    injected in close proximity to the place where the file has been
    (validly) modified, thus aiming to simulate the common way in which
    errors sneak into configurations."

    A {!task} is one valid administrator edit (set a directive to a new,
    valid value).  For each task, the benchmark applies the edit, then
    injects value typos into directives within [proximity] positions of
    the edited one, and measures how many injections the system
    detects. *)

type task = { directive : string; new_value : string }

type task_result = {
  task : task;
  injections : int;
  detected : int;
      (** startup- or functional-test detections among [injections] *)
}

type t = { sut_name : string; task_results : task_result list }

val run :
  rng:Conferr_util.Rng.t ->
  ?experiments:int ->
  ?proximity:int ->
  sut:Suts.Sut.t ->
  config:(string * string) ->
  tasks:task list ->
  unit ->
  (t, string) result
(** [experiments] typos per task (default 20); [proximity] is the
    maximum distance, in directives, between the valid edit and the
    injected typo (default 2; 0 = only the edited directive itself).
    Tasks whose directive is absent from the configuration are
    reported with zero injections. *)

val detection_rate : t -> float
(** Overall detected / injected across all tasks (0 when empty). *)

val render : t -> string
