module Node = Conftree.Node
module Path = Conftree.Path
module Config_set = Conftree.Config_set
module Rng = Conferr_util.Rng
module Scenario = Errgen.Scenario
module Typo = Errgen.Typo

type faultload = {
  delete_directives : bool;
  directives_per_section : int;
  typos_per_directive : int;
}

let paper_faultload =
  { delete_directives = true; directives_per_section = 10; typos_per_directive = 10 }

(* Every section of the tree, as (section path, directive (path, node)
   list).  The root counts as a section when it directly contains
   directives (flat formats, Apache's main context). *)
let sections_of tree =
  let directives_in path (n : Node.t) =
    List.mapi (fun i c -> (path @ [ i ], c)) n.children
    |> List.filter (fun (_, (c : Node.t)) -> c.kind = Node.kind_directive)
  in
  Node.fold
    (fun path n acc ->
      if n.Node.kind = Node.kind_section || (path = [] && directives_in path n <> [])
      then (path, directives_in path n) :: acc
      else acc)
    tree []
  |> List.rev

let deletion_scenarios file tree =
  Node.fold
    (fun path (n : Node.t) acc ->
      if n.kind = Node.kind_directive || n.kind = Node.kind_record
         || n.kind = Node.kind_element then
        Scenario.make ~id:"" ~class_name:"typo/delete-directive"
          ~description:
            (Printf.sprintf "delete %s %S at %s:%s" n.kind n.name file
               (Path.to_string path))
          (Scenario.edit_in_file ~file (fun t -> Node.delete t path))
        :: acc
      else acc)
    tree []
  |> List.rev

(* Attributes that carry real configuration text a typo can land in:
   tinydns colon-separated fields, zone record types and TTLs, and XML
   element attributes.  Provenance and formatting attributes are not
   typing surfaces. *)
let is_field_attr (node : Node.t) (key, value) =
  value <> ""
  &&
  if node.kind = Node.kind_record then
    (String.length key >= 2 && key.[0] = 'f'
     && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub key 1 (String.length key - 1)))
    || key = "type" || key = "ttl"
  else node.kind = Node.kind_element

let typo_scenario ~file ~path ~part rng (node : Node.t) =
  let target =
    match part with
    | `Name -> if node.name = "" then None else Some (`Name, node.name)
    | `Value ->
      (match node.value with
       | Some w -> Some (`Value, w)
       | None ->
         (* fall back to an attribute-carried value *)
         (match Rng.pick_opt rng (List.filter (is_field_attr node) node.attrs) with
          | Some (key, w) -> Some (`Attr key, w)
          | None -> None))
  in
  match target with
  | None -> None
  | Some (slot, w) ->
    (match Typo.random_any rng w with
     | None -> None
     | Some (mutated, what) ->
       let mutated_node =
         match slot with
         | `Name -> { node with Node.name = mutated }
         | `Value -> { node with Node.value = Some mutated }
         | `Attr key -> Node.set_attr node key mutated
       in
       let part_name = match part with `Name -> "name" | `Value -> "value" in
       Some
         (Scenario.make ~id:""
            ~class_name:(Printf.sprintf "typo/%s" part_name)
            ~description:
              (Printf.sprintf "%s of %S (%s) at %s:%s" what node.name part_name file
                 (Path.to_string path))
            (Scenario.edit_in_file ~file (fun t -> Node.replace t path mutated_node))))

let section_typo_scenarios ~rng ~faultload ~file ~part directives =
  let eligible =
    match part with
    | `Name -> List.filter (fun (_, (n : Node.t)) -> n.name <> "") directives
    | `Value ->
      List.filter
        (fun (_, (n : Node.t)) ->
          n.value <> None || List.exists (is_field_attr n) n.attrs)
        directives
  in
  let chosen = Rng.sample rng faultload.directives_per_section eligible in
  List.concat_map
    (fun (path, node) ->
      List.init faultload.typos_per_directive (fun _ ->
          typo_scenario ~file ~path ~part rng node)
      |> List.filter_map Fun.id)
    chosen

let typo_scenarios ~rng ~faultload (sut : Suts.Sut.t) set =
  ignore sut;
  Config_set.to_list set
  |> List.concat_map (fun (file, tree) ->
         let deletions =
           if faultload.delete_directives then deletion_scenarios file tree else []
         in
         let sections = sections_of tree in
         (* zone-style files carry records instead of directives; the
            whole file counts as one section of records *)
         let records =
           Node.find_all (fun n -> n.Node.kind = Node.kind_record) tree
         in
         let elements =
           Node.find_all (fun n -> n.Node.kind = Node.kind_element) tree
         in
         let sections =
           sections
           @ (if records = [] then [] else [ ([], records) ])
           @ (if elements = [] then [] else [ ([], elements) ])
         in
         let typos part =
           List.concat_map
             (fun (_, directives) ->
               section_typo_scenarios ~rng ~faultload ~file ~part directives)
             sections
         in
         deletions @ typos `Name @ typos `Value)
  |> Scenario.relabel_ids ~prefix:"typo"

let plugin ~faultload sut =
  Errgen.Plugin.make ~name:(Printf.sprintf "typo-%s" sut.Suts.Sut.sut_name)
    ~describe:"spelling mistakes in directive names and values, plus deletions"
    (fun ~rng set -> typo_scenarios ~rng ~faultload sut set)
