(** Classification of one error-injection experiment (paper §3.1).

    Three outcomes are possible once a faulty configuration reaches the
    SUT, plus one for scenarios whose mutation cannot be applied or
    serialized into the native format at all (paper §3.2: "differences in
    the expressiveness of the two representations can prevent this
    operation from completing successfully"). *)

type t =
  | Startup_failure of string
      (** the SUT refused to start — it detected the configuration error *)
  | Test_failure of string list
      (** the SUT started but the functional tests failed (one message
          per failed test) — the error escaped the parser *)
  | Passed
      (** the SUT started and passed all tests: the mutation was either
          harmless or silently ignored *)
  | Not_applicable of string
      (** the scenario could not be expressed in the system's
          configuration language *)

val detected : t -> bool
(** Startup or functional-test detection. *)

val label : t -> string
(** ["startup"], ["functional"], ["ignored"], ["n/a"]. *)

val pp : Format.formatter -> t -> unit
