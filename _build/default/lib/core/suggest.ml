module Strutil = Conferr_util.Strutil
module Texttable = Conferr_util.Texttable

let nearest ~vocabulary word =
  List.fold_left
    (fun best candidate ->
      let d = Strutil.damerau_levenshtein word candidate in
      match best with
      | None -> Some (candidate, d)
      | Some (b, bd) ->
        if d < bd || (d = bd && candidate < b) then Some (candidate, d) else best)
    None vocabulary

let suggestions ?(max_distance = 2) ~vocabulary word =
  vocabulary
  |> List.map (fun c -> (c, Strutil.damerau_levenshtein word c))
  |> List.filter (fun (_, d) -> d <= max_distance)
  |> List.sort (fun (a, da) (b, db) ->
         if da <> db then Int.compare da db else String.compare a b)
  |> List.map fst

let uniquely_nearest ~vocabulary word =
  match nearest ~vocabulary word with
  | None -> None
  | Some (best, d) ->
    let ties =
      List.filter (fun c -> Strutil.damerau_levenshtein word c = d) vocabulary
    in
    if List.length ties = 1 then Some best else None

let recovery_rate ~vocabulary ~rng ?(samples = 50) word =
  let recovered = ref 0 and drawn = ref 0 in
  for _ = 1 to samples do
    match Errgen.Typo.random_any rng word with
    | None -> ()
    | Some (typoed, _) ->
      incr drawn;
      (* a typo that happens to be another valid name would be accepted,
         not suggested about *)
      if
        (not (List.mem typoed vocabulary))
        && uniquely_nearest ~vocabulary typoed = Some word
      then incr recovered
  done;
  if !drawn = 0 then 0. else float_of_int !recovered /. float_of_int !drawn

type summary = { per_word : (string * float) list; mean : float }

let recoverability ~vocabulary ~rng ?(samples = 50) () =
  let per_word =
    List.map (fun w -> (w, recovery_rate ~vocabulary ~rng ~samples w)) vocabulary
  in
  let mean =
    if per_word = [] then 0.
    else
      List.fold_left (fun acc (_, r) -> acc +. r) 0. per_word
      /. float_of_int (List.length per_word)
  in
  { per_word; mean }

let render { per_word; mean } =
  let rows =
    List.map
      (fun (w, r) -> [ w; Printf.sprintf "%.0f%%" (100. *. r) ])
      per_word
  in
  Printf.sprintf
    "Name-typo recoverability with a did-you-mean suggester (mean %.0f%%)\n%s"
    (100. *. mean)
    (Texttable.render
       ~aligns:[ Texttable.Left; Texttable.Right ]
       ~header:[ "directive"; "recoverable typos" ]
       rows)
