(** "Did you mean ...?" analysis of rejected directive names.

    A resilience profile shows {e that} a system rejects a typo; this
    module measures what a rejection {e could} recover.  Given the
    vocabulary of known names, it ranks candidates by Damerau-Levenshtein distance and
    estimates how often a nearest-name suggestion would point the
    operator straight back at the directive they meant — the parser
    improvement a developer would wire in after reading a ConfErr
    report. *)

val nearest : vocabulary:string list -> string -> (string * int) option
(** The closest known name and its edit distance; ties break towards the
    lexicographically smaller name.  [None] on an empty vocabulary. *)

val suggestions :
  ?max_distance:int -> vocabulary:string list -> string -> string list
(** All names within [max_distance] (default 2) of the input, closest
    first (ties lexicographic). *)

val recovery_rate :
  vocabulary:string list -> rng:Conferr_util.Rng.t -> ?samples:int -> string -> float
(** [recovery_rate ~vocabulary ~rng word] draws [samples] (default 50)
    random one-letter typos of [word] and returns the fraction whose
    unique nearest vocabulary entry is [word] itself — the share of name
    typos a "did you mean" suggestion would repair.  Typos that land on
    another valid name, or tie between several names, count as not
    recovered. *)

type summary = { per_word : (string * float) list; mean : float }

val recoverability :
  vocabulary:string list -> rng:Conferr_util.Rng.t -> ?samples:int -> unit -> summary
(** {!recovery_rate} over every vocabulary word. *)

val render : summary -> string
