(** The injection engine: the end-to-end pipeline of Figure 1.

    For each fault scenario: apply the mutation to the abstract
    representation of the initial configuration, serialize the mutated
    trees back to the native formats, start the SUT on the faulty files,
    run the functional tests, and classify the outcome. *)

val parse_default_config : Suts.Sut.t -> (Conftree.Config_set.t, string) result
(** Parse every default configuration file of the SUT with its declared
    format. *)

val parse_config :
  Suts.Sut.t -> (string * string) list -> (Conftree.Config_set.t, string) result
(** Same, over explicit file contents (used by the comparison benchmark,
    which starts from a non-default configuration). *)

val serialize_config :
  Suts.Sut.t -> Conftree.Config_set.t -> ((string * string) list, string) result
(** Inverse of {!parse_config}; fails when a tree is not expressible in
    its file's format. *)

val run_scenario :
  sut:Suts.Sut.t -> base:Conftree.Config_set.t -> Errgen.Scenario.t -> Outcome.t

val run :
  sut:Suts.Sut.t -> scenarios:Errgen.Scenario.t list -> Profile.t
(** Runs every scenario against the SUT's default configuration.
    Raises [Invalid_argument] if the default configuration itself fails
    to parse — a harness bug, not a SUT behaviour. *)

val run_from :
  sut:Suts.Sut.t -> base:Conftree.Config_set.t -> scenarios:Errgen.Scenario.t list ->
  Profile.t

val baseline_ok : Suts.Sut.t -> (unit, string) result
(** Sanity check: the unmodified default configuration must boot and
    pass all functional tests. *)
