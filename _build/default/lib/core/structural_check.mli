(** The §5.3 structural-variation check (Table 2).

    For each variation class, [count] random semantics-preserving
    variations of the default configuration are generated and run; the
    SUT supports the class when every variation starts and passes the
    functional tests. *)

type support = Supported | Unsupported | Not_applicable

val support_label : support -> string
(** ["Yes"], ["No"], ["n/a"]. *)

type row = { class_name : Errgen.Variations.class_name; support : support }

type t = { sut_name : string; rows : row list; satisfied_percent : float }
(** [satisfied_percent] counts [Supported] over applicable classes —
    the paper's "% of assumptions satisfied" line. *)

val run :
  rng:Conferr_util.Rng.t -> ?count:int ->
  ?excluded:Errgen.Variations.class_name list -> sut:Suts.Sut.t -> unit -> t
(** [count] defaults to 10 (the paper's).  [excluded] classes are
    reported as [Not_applicable] without running (used for Apache's
    section ordering, where "sections" are scoping containers rather than
    file divisions). *)
