module Node = Conftree.Node
module Rng = Conferr_util.Rng
module Texttable = Conferr_util.Texttable
module Scenario = Errgen.Scenario
module Typo = Errgen.Typo

type bin = Poor | Fair | Good | Excellent

let bin_name = function
  | Poor -> "Poor"
  | Fair -> "Fair"
  | Good -> "Good"
  | Excellent -> "Excellent"

let all_bins = [ Poor; Fair; Good; Excellent ]

let bin_of_rate r =
  if r <= 0.25 then Poor
  else if r <= 0.5 then Fair
  else if r <= 0.75 then Good
  else Excellent

type directive_result = { directive : string; experiments : int; detected : int }

type t = { sut_name : string; per_directive : directive_result list }

let value_typo_scenario ~sampler ~file ~path rng (node : Node.t) =
  match node.Node.value with
  | None -> None
  | Some w ->
    (match sampler rng w with
     | None -> None
     | Some (mutated, what) ->
       Some
         (Scenario.make ~id:"cmp" ~class_name:"compare/value-typo"
            ~description:(Printf.sprintf "%s in value of %S" what node.name)
            (Scenario.edit_in_file ~file (fun t ->
                 Node.replace t path { node with Node.value = Some mutated }))))

let run ~rng ?(experiments = 20) ?(sampler = Typo.random_kind_first ?layout:None) ~sut
    ~config () =
  let file, text = config in
  match Engine.parse_config sut [ (file, text) ] with
  | Error msg -> Error msg
  | Ok base ->
    (match Conftree.Config_set.find base file with
     | None -> Error (Printf.sprintf "file %S missing after parse" file)
     | Some tree ->
       let directives =
         Node.find_all
           (fun n -> n.Node.kind = Node.kind_directive && n.Node.value <> None)
           tree
       in
       let per_directive =
         List.map
           (fun (path, node) ->
             let outcomes =
               List.init experiments (fun _ ->
                   match value_typo_scenario ~sampler ~file ~path rng node with
                   | None -> None
                   | Some scenario ->
                     Some (Engine.run_scenario ~sut ~base scenario))
               |> List.filter_map Fun.id
             in
             let detected =
               List.length (List.filter Outcome.detected outcomes)
             in
             {
               directive = node.Node.name;
               experiments = List.length outcomes;
               detected;
             })
           directives
       in
       Ok { sut_name = sut.Suts.Sut.sut_name; per_directive })

let distribution t =
  let n = List.length t.per_directive in
  let rate d =
    if d.experiments = 0 then 0.
    else float_of_int d.detected /. float_of_int d.experiments
  in
  List.map
    (fun bin ->
      let count =
        List.length
          (List.filter (fun d -> bin_of_rate (rate d) = bin) t.per_directive)
      in
      (bin, if n = 0 then 0. else 100. *. float_of_int count /. float_of_int n))
    all_bins

let render_figure3 results =
  let header = "detection" :: List.map (fun r -> r.sut_name) results in
  let distributions = List.map distribution results in
  let rows =
    List.map
      (fun bin ->
        bin_name bin
        :: List.map
             (fun dist ->
               Printf.sprintf "%5.1f%%  %s" (List.assoc bin dist)
                 (Texttable.bar ~width:20 (List.assoc bin dist /. 100.)))
             distributions)
      (List.rev all_bins)
  in
  Texttable.render ~header rows
