(** Drivers that regenerate every table and figure of the paper's
    evaluation (§5).

    Each function runs the corresponding experiment against the simulated
    SUTs and returns structured results plus a textual rendering shaped
    like the paper's table.  Seeds make every run reproducible. *)

(** {1 Table 1 — resilience to typos (§5.2)} *)

type table1 = { profiles : Profile.t list }

val table1 : ?seed:int -> ?faultload:Campaign.faultload -> unit -> table1
(** MySQL, Postgres and Apache under the typo faultload. *)

val render_table1 : table1 -> string

(** {1 Table 2 — resilience to structural errors (§5.3)} *)

type table2 = { checks : Structural_check.t list }

val table2 : ?seed:int -> ?count:int -> unit -> table2

val render_table2 : table2 -> string

(** {1 Table 3 — resilience to semantic errors (§5.4)} *)

type verdict = Found | Not_found | Na
(** Whether the SUT detected the injected fault class, or the fault was
    not expressible in its configuration language. *)

val verdict_label : verdict -> string

type table3_row = {
  fault : Dnsmodel.Rfc1912.fault;
  bind : verdict;
  djbdns : verdict;
}

type table3 = { rows : table3_row list }

val table3 : ?seed:int -> ?faults:Dnsmodel.Rfc1912.fault list -> unit -> table3

val render_table3 : table3 -> string

(** {1 Figure 3 — comparing error resilience (§5.5)} *)

type figure3 = { results : Compare.t list }

val figure3 : ?seed:int -> ?experiments:int -> unit -> figure3

val render_figure3 : figure3 -> string

(** {1 Extension: the §5.5 comparison method on the DNS pair} *)

val figure_dns : ?seed:int -> ?experiments:int -> unit -> Profile.t list
(** Typos in record data against BIND and djbdns (value-typo campaign,
    no deletions), comparing how much of a zone's data each server
    validates. *)

val render_figure_dns : Profile.t list -> string

(** {1 Configuration-process benchmark (§5.5's procedure)} *)

val mysql_tasks : Process_bench.task list
val postgres_tasks : Process_bench.task list

val process_benchmark : ?seed:int -> ?experiments:int -> unit -> Process_bench.t list
(** Simulates the administrator's configuration process: valid edits
    followed by typos injected near them (Postgres first, then MySQL). *)

val render_process_benchmark : Process_bench.t list -> string

(** {1 Whole evaluation} *)

val run_all : ?seed:int -> unit -> string
(** Renders all tables and the figure, separated by headers — what
    [bench/main.exe] and the CLI print. *)
