(** The §5.5 comparison benchmark (Figure 3).

    The configuration process is simulated by injecting typos into the
    values of every directive of a configuration that sets most available
    directives to their defaults (booleans and defaultless directives
    excluded, as in the paper).  For each directive, [experiments]
    independent one-typo experiments are run; the fraction detected
    (startup or functional) buckets the directive into one of four
    detection ranges. *)

type bin = Poor | Fair | Good | Excellent

val bin_name : bin -> string

val all_bins : bin list

val bin_of_rate : float -> bin
(** [0, 0.25] poor, (0.25, 0.5] fair, (0.5, 0.75] good, (0.75, 1]
    excellent. *)

type directive_result = { directive : string; experiments : int; detected : int }

type t = { sut_name : string; per_directive : directive_result list }

val run :
  rng:Conferr_util.Rng.t -> ?experiments:int ->
  ?sampler:(Conferr_util.Rng.t -> string -> (string * string) option) ->
  sut:Suts.Sut.t -> config:(string * string) -> unit -> (t, string) result
(** [config] is [(file_name, text)] — the benchmark's starting
    configuration for that SUT.  [experiments] defaults to 20 (the
    paper's count).  [sampler] draws one typo of a value word; it
    defaults to {!Errgen.Typo.random_kind_first} and can be replaced for
    ablation studies (e.g. keyboard-oblivious substitutions). *)

val distribution : t -> (bin * float) list
(** Percentage of directives in each bin (0..100). *)

val render_figure3 : t list -> string
(** Textual rendering of the stacked distribution, one column per SUT. *)
