module Config_set = Conftree.Config_set

let data_file = "data"
let forward_origin = "example.com."
let reverse_origin = "0.0.10.in-addr.arpa."

let data_text =
  String.concat "\n"
    [
      "# tinydns-data for example.com";
      ".example.com:10.0.0.1:ns1.example.com";
      ".0.0.10.in-addr.arpa:10.0.0.1:ns1.example.com";
      "=www.example.com:10.0.0.2";
      "=mail.example.com:10.0.0.3";
      "=host1.example.com:10.0.0.4";
      "=host2.example.com:10.0.0.5";
      "@example.com::mail.example.com:10";
      "'example.com:v=spf1 mx -all";
      "'contact.example.com:ops team";
      "Cftp.example.com:www.example.com";
      "Cwebmail.example.com:mail.example.com";
      "";
    ]

let codec = Dnsmodel.Codec.tinydns ~file:data_file

(* tinydns-data: a pure syntax compiler.  Decoding performs exactly the
   checks it would (operator known, IPv4 well-formed); it builds the cdb
   without ever cross-checking records. *)
let compile text =
  match Formats.Tinydns.parse text with
  | Error e ->
    Error (Printf.sprintf "tinydns-data: %s" (Formats.Parse_error.to_string e))
  | Ok tree ->
    let set = Config_set.of_list [ (data_file, tree) ] in
    (match codec.Dnsmodel.Codec.decode set with
     | Error msg -> Error (Printf.sprintf "tinydns-data: %s" msg)
     | Ok records -> Ok records)

let zones_of records =
  let zone origin =
    Dnsmodel.Zone.make ~origin
      (List.filter
         (fun (r : Dnsmodel.Record.t) ->
           Dnsmodel.Name.in_domain ~domain:origin r.owner)
         records)
  in
  [ zone forward_origin; zone reverse_origin ]

let functional_tests resolver () =
  let apex_answers origin =
    match Dnsmodel.Resolver.query resolver ~name:origin ~rtype:"SOA" with
    | Dnsmodel.Resolver.Answer _ -> true
    | _ -> false
  in
  let forward =
    if apex_answers forward_origin then Sut.passed "dns-forward"
    else Sut.failed "dns-forward" "no answer for the forward zone apex"
  in
  let reverse =
    if apex_answers reverse_origin then Sut.passed "dns-reverse"
    else Sut.failed "dns-reverse" "no answer for the reverse zone apex"
  in
  [ forward; reverse ]

let boot configs =
  match List.assoc_opt data_file configs with
  | None -> Error "data file not found"
  | Some text ->
    (match compile text with
     | Error msg -> Error msg
     | Ok records ->
       let resolver = Dnsmodel.Resolver.create (zones_of records) in
       Ok { Sut.run_tests = functional_tests resolver; shutdown = (fun () -> ()) })

let sut =
  {
    Sut.sut_name = "djbdns";
    version = "djbdns 1.05 (simulated)";
    config_files = [ (data_file, Formats.Registry.tinydns) ];
    default_config = [ (data_file, data_text) ];
    boot;
  }
