let mysql =
  [
    "port"; "socket"; "datadir"; "key_buffer_size"; "max_allowed_packet";
    "table_open_cache"; "sort_buffer_size"; "net_buffer_length"; "read_buffer_size";
    "read_rnd_buffer_size"; "myisam_sort_buffer_size"; "thread_cache_size";
    "max_connections"; "skip_external_locking"; "old_passwords";
    "low_priority_updates";
  ]

let postgres =
  [
    "max_connections"; "shared_buffers"; "max_fsm_pages"; "max_fsm_relations";
    "datestyle"; "lc_messages"; "log_timezone"; "listen_addresses"; "port"; "work_mem";
    "maintenance_work_mem"; "temp_buffers"; "wal_buffers"; "checkpoint_segments";
    "checkpoint_timeout"; "deadlock_timeout"; "statement_timeout"; "vacuum_cost_delay";
    "bgwriter_delay"; "effective_cache_size"; "random_page_cost"; "cpu_tuple_cost";
    "cpu_index_tuple_cost"; "seq_page_cost"; "geqo_threshold";
    "default_statistics_target"; "log_rotation_size"; "log_min_duration_statement";
    "max_prepared_transactions"; "max_locks_per_transaction"; "fsync"; "autovacuum";
    "enable_seqscan"; "log_connections";
  ]

let apache =
  [
    "ServerRoot"; "Listen"; "User"; "Group"; "ServerAdmin"; "ServerName";
    "UseCanonicalName"; "DocumentRoot"; "ErrorLog"; "LogLevel"; "PidFile"; "Timeout";
    "KeepAlive"; "MaxKeepAliveRequests"; "KeepAliveTimeout"; "StartServers";
    "MinSpareServers"; "MaxSpareServers"; "ServerLimit"; "MaxClients";
    "MaxRequestsPerChild"; "DefaultType"; "HostnameLookups"; "ServerTokens";
    "ServerSignature"; "AddDefaultCharset"; "EnableMMAP"; "EnableSendfile";
    "AccessFileName"; "NameVirtualHost"; "Options"; "AllowOverride"; "ErrorDocument";
    "Include"; "TraceEnable"; "LoadModule"; "Order"; "Allow"; "Deny"; "CustomLog";
    "LogFormat"; "AddType"; "AddEncoding"; "AddHandler"; "TypesConfig";
    "DirectoryIndex"; "Alias"; "ScriptAlias"; "Redirect"; "LanguagePriority";
    "AddLanguage"; "ForceLanguagePriority"; "UserDir"; "SetEnvIf"; "BrowserMatch";
    "SetEnv"; "IndexOptions"; "AddIcon"; "AddIconByType"; "DefaultIcon"; "ReadmeName";
    "HeaderName";
  ]

let for_sut (sut : Sut.t) =
  match sut.sut_name with
  | "mysql" -> mysql
  | "postgres" -> postgres
  | "apache" -> apache
  | _ -> []
