(** Directive vocabularies of the simulated systems.

    The names each SUT's parser knows, used by {!Conferr.Suggest} to turn
    an "unknown directive" rejection into a "did you mean ...?"
    diagnosis — the kind of resilience improvement the paper's resilience
    profiles are meant to motivate. *)

val for_sut : Sut.t -> string list
(** The known directive/parameter names of the given SUT; empty for
    systems whose configuration is not name-oriented. *)

val mysql : string list
val postgres : string list
val apache : string list
