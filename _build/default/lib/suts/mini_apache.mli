(** Simulated Apache HTTP Server 2.2.

    Behaviours reproduced (paper §5.2 and Table 2):

    - directive names are case-insensitive; an unknown name aborts
      startup with "Invalid command ... perhaps misspelled or defined by
      a module not included in the server configuration"
    - directives are provided by modules: deleting (or typo-ing) a
      [LoadModule] line makes every directive of that module an invalid
      command — the mechanism behind many startup-detected faults
    - [AddType]/[DefaultType] accept freeform strings instead of
      RFC-2045 [type/subtype] values (flaw); [ServerAdmin] and
      [ServerName] likewise accept anything (flaws)
    - a typo in [Listen]'s port survives startup and is only caught by
      the functional HTTP GET (the paper's 5% functional detections)
    - nested sections ([<VirtualHost>], [<Directory>], [<IfModule>]);
      [<IfModule>] bodies are skipped when the module is absent
    - enum-valued directives ([LogLevel], [KeepAlive], [Options], ...)
      are strictly validated *)

val sut : Sut.t

(** {1 Exposed for white-box unit tests} *)

val known_module : string -> bool

val directive_module : string -> string option
(** The module a directive comes from ([None] = core). *)
