(** The system-under-test interface.

    The paper's harness needs three system-specific components (§5.1):
    initial configuration files, configuration parsers/serializers, and
    scripts to start/stop the system plus a diagnostic suite.  This
    record is the OCaml rendering of that contract.

    The real SUTs are replaced by in-process simulators (see DESIGN.md
    §2); [boot] plays the role of the start script — it parses the
    serialized configuration bytes with the {e system's own} parser
    (quirks included) and either refuses to start (returning the error
    message an administrator would see) or yields a running instance on
    which the functional tests can be run. *)

type test_result = { test_name : string; passed : bool; detail : string }

type instance = {
  run_tests : unit -> test_result list;
      (** the domain-specific diagnostic suite (create/populate/query a
          database, HTTP GET, forward+reverse DNS lookups) *)
  shutdown : unit -> unit;
}

type t = {
  sut_name : string;
  version : string;     (** e.g. ["MySQL 5.1.22 (simulated)"] *)
  config_files : (string * Formats.Registry.t) list;
      (** file name -> format used by the {e injector} to parse and
          re-serialize this file *)
  default_config : (string * string) list;
      (** file name -> pristine configuration text *)
  boot : (string * string) list -> (instance, string) result;
}

val passed : string -> test_result

val failed : string -> string -> test_result

val all_passed : test_result list -> bool

val default_config_text : t -> string -> string
(** Raises [Not_found] for an unknown file name. *)
