(** Simulated PostgreSQL 8.2 server.

    Behaviours reproduced (paper §5.2 and Table 2):

    - every parameter is typed and strictly validated: unknown names,
      malformed values and out-of-range values all abort startup with a
      FATAL message
    - cross-parameter constraints are enforced; in particular
      [max_fsm_pages >= 16 * max_fsm_relations] (the paper's example)
    - parameter names are case-insensitive, truncated names are rejected
    - the file is one flat section; values may be single-quoted
    - memory and time parameters require a {e complete} unit suffix —
      trailing junk after the unit is an error (contrast with
      mini-MySQL's stop-at-first-multiplier flaw) *)

val sut : Sut.t

val full_config : string
(** A configuration with most available directives set to their default
    values — the §5.5 comparison benchmark's starting file (booleans and
    defaultless parameters excluded, as in the paper). *)

(** {1 Exposed for white-box unit tests} *)

val validate_text : string -> (unit, string) result
(** Run only the configuration validation phase of [boot]. *)
