module Strutil = Conferr_util.Strutil

type spec =
  | Pint of { min : int; max : int; default : int }
  | Pmem of { min_kb : int; max_kb : int; default_kb : int }
  | Ptime of { min_ms : int; max_ms : int; default_ms : int }
  | Pfloat of { fmin : float; fmax : float; fdefault : float }
  | Pbool of bool
  | Penum of string list * string
  | Pstring of (string -> bool) * string

let known_hosts = [ "localhost"; "127.0.0.1"; "0.0.0.0"; "*"; "::1" ]

let known_locales = [ "C"; "POSIX"; "en_US.UTF-8"; "en_US"; "de_CH.UTF-8" ]

let known_timezones = [ "UTC"; "GMT"; "Europe/Zurich"; "America/New_York"; "Etc/UTC" ]

let datestyle_tokens = [ "iso"; "sql"; "postgres"; "german"; "mdy"; "dmy"; "ymd" ]

let valid_datestyle v =
  String.split_on_char ',' v
  |> List.map (fun t -> String.lowercase_ascii (Strutil.trim t))
  |> List.for_all (fun t -> t <> "" && List.mem t datestyle_tokens)

(* The paper's default postgresql.conf has 8 directives; these are the
   first eight below.  The remainder participate only in the §5.5
   comparison configuration. *)
let specs =
  [
    ("max_connections", Pint { min = 1; max = 262143; default = 100 });
    ("shared_buffers", Pmem { min_kb = 128; max_kb = 1073741823; default_kb = 24 * 1024 });
    ("max_fsm_pages", Pint { min = 1000; max = max_int; default = 153600 });
    ("max_fsm_relations", Pint { min = 100; max = max_int; default = 1000 });
    ("datestyle", Penum ([], "iso, mdy"));
    ("lc_messages", Pstring ((fun v -> List.mem v known_locales), "en_US.UTF-8"));
    ("log_timezone", Pstring ((fun v -> List.mem v known_timezones), "UTC"));
    ("listen_addresses", Pstring ((fun v -> List.mem v known_hosts), "localhost"));
    (* --- extended set for the comparison benchmark --- *)
    ("port", Pint { min = 1; max = 65535; default = 5432 });
    ("work_mem", Pmem { min_kb = 64; max_kb = 2097151; default_kb = 1024 });
    ("maintenance_work_mem", Pmem { min_kb = 1024; max_kb = 2097151; default_kb = 16384 });
    ("temp_buffers", Pmem { min_kb = 100; max_kb = 1073741823; default_kb = 8 * 1024 });
    ("wal_buffers", Pmem { min_kb = 32; max_kb = 1048576; default_kb = 64 });
    ("checkpoint_segments", Pint { min = 1; max = 1000; default = 3 });
    ("checkpoint_timeout", Ptime { min_ms = 30_000; max_ms = 3600_000; default_ms = 300_000 });
    ("deadlock_timeout", Ptime { min_ms = 1; max_ms = 2147483; default_ms = 1000 });
    ("statement_timeout", Ptime { min_ms = 0; max_ms = max_int; default_ms = 0 });
    ("vacuum_cost_delay", Ptime { min_ms = 0; max_ms = 1000; default_ms = 0 });
    ("bgwriter_delay", Ptime { min_ms = 10; max_ms = 10000; default_ms = 200 });
    ("effective_cache_size", Pmem { min_kb = 8; max_kb = 1073741823; default_kb = 128 * 1024 });
    ("random_page_cost", Pfloat { fmin = 0.0; fmax = 1.0e10; fdefault = 4.0 });
    ("cpu_tuple_cost", Pfloat { fmin = 0.0; fmax = 1.0e10; fdefault = 0.01 });
    ("cpu_index_tuple_cost", Pfloat { fmin = 0.0; fmax = 1.0e10; fdefault = 0.005 });
    ("seq_page_cost", Pfloat { fmin = 0.0; fmax = 1.0e10; fdefault = 1.0 });
    ("geqo_threshold", Pint { min = 2; max = 2147483647; default = 12 });
    ("default_statistics_target", Pint { min = 1; max = 1000; default = 10 });
    ("log_rotation_size", Pmem { min_kb = 0; max_kb = 2097151; default_kb = 10240 });
    ("log_min_duration_statement", Ptime { min_ms = -1; max_ms = max_int; default_ms = -1 });
    ("max_prepared_transactions", Pint { min = 0; max = 262143; default = 5 });
    ("max_locks_per_transaction", Pint { min = 10; max = 10000; default = 64 });
    ("fsync", Pbool true);
    ("autovacuum", Pbool false);
    ("enable_seqscan", Pbool true);
    ("log_connections", Pbool false);
  ]

let is_digit c = c >= '0' && c <= '9'

let split_number_unit v =
  let len = String.length v in
  let start = if len > 0 && (v.[0] = '-' || v.[0] = '+') then 1 else 0 in
  let rec digits i = if i < len && is_digit v.[i] then digits (i + 1) else i in
  let stop = digits start in
  if stop = start then None
  else Some (String.sub v 0 stop, Strutil.trim (String.sub v stop (len - stop)))

let parse_mem name v =
  match split_number_unit v with
  | None -> Error (Printf.sprintf "parameter \"%s\" requires a numeric value" name)
  | Some (digits, unit_text) ->
    let n = int_of_string digits in
    (* 8.2 accepts only exactly-spelled units; "24mb" is invalid. *)
    (match unit_text with
     | "" -> Ok (n * 8) (* bare numbers are 8kB pages, as in 8.2 *)
     | "kB" -> Ok n
     | "MB" -> Ok (n * 1024)
     | "GB" -> Ok (n * 1024 * 1024)
     | _ ->
       Error
         (Printf.sprintf
            "invalid value for parameter \"%s\": \"%s\" (valid units are kB, MB, GB)"
            name v))

let parse_time name v =
  match split_number_unit v with
  | None -> Error (Printf.sprintf "parameter \"%s\" requires a numeric value" name)
  | Some (digits, unit_text) ->
    let n = int_of_string digits in
    (match unit_text with
     | "" | "ms" -> Ok n
     | "s" -> Ok (n * 1000)
     | "min" -> Ok (n * 60_000)
     | "h" -> Ok (n * 3600_000)
     | "d" -> Ok (n * 86_400_000)
     | _ ->
       Error
         (Printf.sprintf
            "invalid value for parameter \"%s\": \"%s\" (valid units are ms, s, min, \
             h, d)"
            name v))

let parse_strict_int name v =
  if v <> "" && String.for_all is_digit v then Ok (int_of_string v)
  else if
    String.length v > 1 && v.[0] = '-' && String.for_all is_digit (String.sub v 1 (String.length v - 1))
  then Ok (int_of_string v)
  else Error (Printf.sprintf "parameter \"%s\" requires an integer value" name)

let parse_float_strict name v =
  match float_of_string_opt v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "parameter \"%s\" requires a numeric value" name)

let out_of_range name v lo hi =
  Error (Printf.sprintf "%d is outside the valid range for parameter \"%s\" (%d .. %d)" v name lo hi)

type state = { values : (string, int) Hashtbl.t; mutable port : int }

let apply_directive state (name, value) =
  let lname = String.lowercase_ascii name in
  match List.assoc_opt lname specs with
  | None ->
    Error (Printf.sprintf "unrecognized configuration parameter \"%s\"" name)
  | Some spec ->
    let v = Option.value ~default:"" value in
    let ( let* ) = Result.bind in
    (match spec with
     | Pint { min; max; default = _ } ->
       let* n = parse_strict_int lname v in
       if n < min || n > max then out_of_range lname n min max
       else begin
         Hashtbl.replace state.values lname n;
         if lname = "port" then state.port <- n;
         Ok ()
       end
     | Pmem { min_kb; max_kb; default_kb = _ } ->
       let* n = parse_mem lname v in
       if n < min_kb || n > max_kb then out_of_range lname n min_kb max_kb
       else begin
         Hashtbl.replace state.values lname n;
         Ok ()
       end
     | Ptime { min_ms; max_ms; default_ms = _ } ->
       let* n = parse_time lname v in
       if n < min_ms || n > max_ms then out_of_range lname n min_ms max_ms
       else begin
         Hashtbl.replace state.values lname n;
         Ok ()
       end
     | Pfloat { fmin; fmax; fdefault = _ } ->
       let* f = parse_float_strict lname v in
       if f < fmin || f > fmax then
         Error
           (Printf.sprintf "%g is outside the valid range for parameter \"%s\"" f lname)
       else Ok ()
     | Pbool _ ->
       (match String.lowercase_ascii v with
        | "on" | "off" | "true" | "false" | "yes" | "no" | "1" | "0" -> Ok ()
        | _ ->
          Error
            (Printf.sprintf "parameter \"%s\" requires a Boolean value" lname))
     | Penum (_, _) when lname = "datestyle" ->
       if valid_datestyle v then Ok ()
       else Error (Printf.sprintf "invalid value for parameter \"datestyle\": \"%s\"" v)
     | Penum (allowed, _) ->
       if List.mem (String.lowercase_ascii v) allowed then Ok ()
       else Error (Printf.sprintf "invalid value for parameter \"%s\": \"%s\"" lname v)
     | Pstring (validate, _) ->
       if validate v then Ok ()
       else Error (Printf.sprintf "invalid value for parameter \"%s\": \"%s\"" lname v))

(* Cross-parameter constraints, checked after the whole file is read
   (the paper highlights the max_fsm_pages one). *)
let check_constraints state =
  let get name default =
    Option.value ~default (Hashtbl.find_opt state.values name)
  in
  let max_fsm_pages = get "max_fsm_pages" 153600 in
  let max_fsm_relations = get "max_fsm_relations" 1000 in
  if max_fsm_pages < 16 * max_fsm_relations then
    Error
      (Printf.sprintf
         "FATAL: max_fsm_pages must be at least 16 * max_fsm_relations (%d < 16 * %d)"
         max_fsm_pages max_fsm_relations)
  else begin
    let shared_buffers_kb = get "shared_buffers" (24 * 1024) in
    let max_connections = get "max_connections" 100 in
    (* shared memory must hold roughly 16kB of bookkeeping per
       connection: another inter-parameter relation of 8.2's bootstrap. *)
    if shared_buffers_kb < max_connections * 16 then
      Error
        (Printf.sprintf
           "FATAL: insufficient shared memory for max_connections = %d (shared_buffers \
            = %dkB)"
           max_connections shared_buffers_kb)
    else Ok ()
  end

let parse_line raw =
  let trimmed = Strutil.trim raw in
  if trimmed = "" || trimmed.[0] = '#' then None
  else begin
    (* strip an inline comment outside quotes *)
    let without_comment =
      let n = String.length trimmed in
      let rec scan i in_quote =
        if i >= n then trimmed
        else
          match trimmed.[i] with
          | '\'' -> scan (i + 1) (not in_quote)
          | '#' when not in_quote -> Strutil.trim (String.sub trimmed 0 i)
          | _ -> scan (i + 1) in_quote
      in
      scan 0 false
    in
    let name, value =
      match Strutil.split_on_first '=' without_comment with
      | Some (n, v) -> (Strutil.trim n, Some (Strutil.trim v))
      | None ->
        (match Strutil.split_on_first ' ' without_comment with
         | Some (n, v) -> (Strutil.trim n, Some (Strutil.trim v))
         | None -> (without_comment, None))
    in
    let unquote v =
      if String.length v >= 2 && v.[0] = '\'' && v.[String.length v - 1] = '\'' then
        String.sub v 1 (String.length v - 2)
      else v
    in
    Some (name, Option.map unquote value)
  end

let validate_text text =
  let state = { values = Hashtbl.create 16; port = 5432 } in
  let directives = List.filter_map parse_line (Strutil.lines text) in
  (* A section header is not valid postgresql.conf syntax at all. *)
  let rec apply = function
    | [] -> check_constraints state
    | (name, _) :: _ when String.length name > 0 && name.[0] = '[' ->
      Error (Printf.sprintf "syntax error in configuration near \"%s\"" name)
    | d :: rest ->
      (match apply_directive state d with
       | Ok () -> apply rest
       | Error msg -> Error msg)
  in
  apply directives

let functional_tests () =
  let engine = Minisql.Engine.create () in
  let script =
    "CREATE DATABASE conferr_test; USE conferr_test; CREATE TABLE probe (id INT, note \
     TEXT); INSERT INTO probe VALUES (1, 'alpha'); INSERT INTO probe VALUES (2, \
     'beta'); SELECT note FROM probe WHERE id = 2;"
  in
  match Minisql.Engine.run_script engine script with
  | Error msg -> [ Sut.passed "db-connect"; Sut.failed "db-crud" msg ]
  | Ok _ -> [ Sut.passed "db-connect"; Sut.passed "db-crud" ]

let boot configs =
  match List.assoc_opt "postgresql.conf" configs with
  | None -> Error "postgresql.conf not found"
  | Some text ->
    (match validate_text text with
     | Error msg -> Error (Printf.sprintf "FATAL: %s" msg)
     | Ok () ->
       Ok { Sut.run_tests = functional_tests; shutdown = (fun () -> ()) })

let default_config =
  String.concat "\n"
    [
      "# PostgreSQL configuration file";
      "max_connections = 100";
      "shared_buffers = 24MB";
      "max_fsm_pages = 153600";
      "max_fsm_relations = 1000";
      "datestyle = 'iso, mdy'";
      "lc_messages = 'en_US.UTF-8'";
      "log_timezone = 'UTC'";
      "listen_addresses = 'localhost'";
      "";
    ]

let full_config =
  let directive (name, spec) =
    match spec with
    | Pint { default; _ } -> Some (Printf.sprintf "%s = %d" name default)
    | Pmem { default_kb; _ } ->
      Some
        (if default_kb mod 1024 = 0 then
           Printf.sprintf "%s = %dMB" name (default_kb / 1024)
         else Printf.sprintf "%s = %dkB" name default_kb)
    | Ptime { default_ms; _ } ->
      Some
        (if default_ms mod 60_000 = 0 && default_ms > 0 then
           Printf.sprintf "%s = %dmin" name (default_ms / 60_000)
         else if default_ms mod 1000 = 0 && default_ms > 0 then
           Printf.sprintf "%s = %ds" name (default_ms / 1000)
         else Printf.sprintf "%s = %dms" name default_ms)
    | Pfloat { fdefault; _ } -> Some (Printf.sprintf "%s = %g" name fdefault)
    | Penum (_, default) -> Some (Printf.sprintf "%s = '%s'" name default)
    | Pstring (_, default) -> Some (Printf.sprintf "%s = '%s'" name default)
    | Pbool _ -> None (* the paper excludes booleans from the benchmark *)
  in
  String.concat "\n" (List.filter_map directive specs) ^ "\n"

let sut =
  {
    Sut.sut_name = "postgres";
    version = "PostgreSQL 8.2.5 (simulated)";
    config_files = [ ("postgresql.conf", Formats.Registry.pgconf) ];
    default_config = [ ("postgresql.conf", default_config) ];
    boot;
  }
