module Config_set = Conftree.Config_set

let forward_origin = "example.com."
let reverse_origin = "0.0.10.in-addr.arpa."
let forward_zone_file = "example.com.zone"
let reverse_zone_file = "0.0.10.in-addr.arpa.zone"

let zones = [ (forward_zone_file, forward_origin); (reverse_zone_file, reverse_origin) ]

let forward_zone_text =
  String.concat "\n"
    [
      "$TTL 86400";
      "; forward zone for example.com";
      "@\tIN\tSOA\tns1.example.com. hostmaster.example.com. ( 2008060101 10800 3600 \
       604800 86400 )";
      "@\tIN\tNS\tns1.example.com.";
      "ns1\tIN\tA\t10.0.0.1";
      "www\tIN\tA\t10.0.0.2";
      "mail\tIN\tA\t10.0.0.3";
      "host1\tIN\tA\t10.0.0.4";
      "host2\tIN\tA\t10.0.0.5";
      "@\tIN\tMX\t10 mail.example.com.";
      "@\tIN\tTXT\t\"v=spf1 mx -all\"";
      "@\tIN\tRP\thostmaster.example.com. contact.example.com.";
      "host1\tIN\tHINFO\t\"PC\" \"Linux\"";
      "host2\tIN\tHINFO\t\"PC\" \"FreeBSD\"";
      "contact\tIN\tTXT\t\"ops team, +41 21 000 00 00\"";
      "ftp\tIN\tCNAME\twww.example.com.";
      "webmail\tIN\tCNAME\tmail.example.com.";
      "";
    ]

let reverse_zone_text =
  String.concat "\n"
    [
      "$TTL 86400";
      "; reverse zone for 10.0.0.0/24";
      "@\tIN\tSOA\tns1.example.com. hostmaster.example.com. ( 2008060101 10800 3600 \
       604800 86400 )";
      "@\tIN\tNS\tns1.example.com.";
      "1\tIN\tPTR\tns1.example.com.";
      "2\tIN\tPTR\twww.example.com.";
      "3\tIN\tPTR\tmail.example.com.";
      "4\tIN\tPTR\thost1.example.com.";
      "5\tIN\tPTR\thost2.example.com.";
      "";
    ]

let named_conf_text =
  String.concat "\n"
    [
      "// named.conf";
      "options {";
      "  directory \"/var/named\";";
      "  recursion no;";
      "  listen-on port 53;";
      "};";
      "zone \"example.com\" IN {";
      "  type master;";
      "  file \"example.com.zone\";";
      "};";
      "zone \"0.0.10.in-addr.arpa\" IN {";
      "  type master;";
      "  file \"0.0.10.in-addr.arpa.zone\";";
      "};";
      "";
    ]

let existing_directories = [ "/var/named"; "/etc/named" ]

let known_zone_types = [ "master"; "slave"; "hint"; "forward" ]

(* named.conf processing: named's own reader, with its own checks. *)
let read_named_conf text =
  match Formats.Namedconf.parse text with
  | Error e ->
    Error
      (Printf.sprintf "named.conf: %s" (Formats.Parse_error.to_string e))
  | Ok tree ->
    let ( let* ) = Result.bind in
    let unquote v =
      let v = Conferr_util.Strutil.trim v in
      if String.length v >= 2 && v.[0] = '"' && v.[String.length v - 1] = '"' then
        String.sub v 1 (String.length v - 2)
      else v
    in
    let check_options (section : Conftree.Node.t) =
      List.fold_left
        (fun acc (d : Conftree.Node.t) ->
          let* () = acc in
          if d.kind <> Conftree.Node.kind_directive then Ok ()
          else
            match (String.lowercase_ascii d.name, d.value) with
            | "directory", Some dir when List.mem (unquote dir) existing_directories ->
              Ok ()
            | "directory", Some dir ->
              Error (Printf.sprintf "named.conf: directory %s not found" dir)
            | "recursion", Some ("yes" | "no") -> Ok ()
            | "recursion", Some other ->
              Error (Printf.sprintf "named.conf: recursion must be yes or no, got %s" other)
            | "listen-on", _ | "allow-query", _ | "forwarders", _ | "version", _ ->
              Ok ()
            | other, _ -> Error (Printf.sprintf "named.conf: unknown option '%s'" other))
        (Ok ()) section.children
    in
    let read_zone (section : Conftree.Node.t) =
      let origin =
        Dnsmodel.Name.normalize
          (Option.value ~default:"" (Conftree.Node.attr section "arg"))
      in
      let find name =
        List.find_opt
          (fun (d : Conftree.Node.t) ->
            d.kind = Conftree.Node.kind_directive
            && String.lowercase_ascii d.name = name)
          section.children
      in
      let* () =
        match find "type" with
        | Some d when List.mem (Conftree.Node.value_or ~default:"" d) known_zone_types ->
          Ok ()
        | Some d ->
          Error
            (Printf.sprintf "zone %s: unknown type '%s'" origin
               (Conftree.Node.value_or ~default:"" d))
        | None -> Error (Printf.sprintf "zone %s: missing 'type'" origin)
      in
      let* file =
        match find "file" with
        | Some d -> Ok (unquote (Conftree.Node.value_or ~default:"" d))
        | None -> Error (Printf.sprintf "zone %s: missing 'file'" origin)
      in
      Ok (file, origin)
    in
    List.fold_left
      (fun acc (n : Conftree.Node.t) ->
        let* decls = acc in
        if n.kind <> Conftree.Node.kind_section then Ok decls
        else
          match String.lowercase_ascii n.name with
          | "options" ->
            let* () = check_options n in
            Ok decls
          | "zone" ->
            let* decl = read_zone n in
            Ok (decls @ [ decl ])
          | other -> Error (Printf.sprintf "named.conf: unknown block '%s'" other))
      (Ok []) tree.children

let load_zones ~zones configs =
  (* named's zone loader: parse each master file, build the zone, run the
     consistency checks BIND performs at load time. *)
  let parse (file, _origin) =
    match List.assoc_opt file configs with
    | None -> Error (Printf.sprintf "zone file %s missing" file)
    | Some text ->
      (match Formats.Bindzone.parse text with
       | Error e ->
         Error
           (Printf.sprintf "dns_master_load: %s: %s" file
              (Formats.Parse_error.to_string e))
       | Ok tree -> Ok (file, tree))
  in
  let rec parse_all acc = function
    | [] -> Ok (List.rev acc)
    | z :: rest ->
      (match parse z with
       | Error e -> Error e
       | Ok parsed -> parse_all (parsed :: acc) rest)
  in
  match parse_all [] zones with
  | Error e -> Error e
  | Ok parsed ->
    let set = Config_set.of_list parsed in
    (match (Dnsmodel.Codec.bind ~zones).Dnsmodel.Codec.decode set with
     | Error msg -> Error (Printf.sprintf "dns_master_load: %s" msg)
     | Ok records ->
       let zone_of (file, origin) =
         Dnsmodel.Zone.make ~origin
           (List.filter
              (fun r -> Dnsmodel.Record.tag r Dnsmodel.Codec.tag_file = Some file)
              records)
       in
       let built = List.map zone_of zones in
       let problems =
         List.concat_map
           (fun z ->
             List.map
               (fun p -> (z.Dnsmodel.Zone.origin, p))
               (Dnsmodel.Zone.validate z))
           built
       in
       (* BIND refuses the zone on these; it has no forward/reverse
          cross-checks, so missing PTRs sail through. *)
       (match problems with
        | (origin, p) :: _ ->
          Error
            (Format.asprintf "zone %s: %a: not loaded due to errors" origin
               Dnsmodel.Zone.pp_problem p)
        | [] -> Ok built))

let functional_tests resolver () =
  let apex_answers origin =
    match Dnsmodel.Resolver.query resolver ~name:origin ~rtype:"SOA" with
    | Dnsmodel.Resolver.Answer _ -> true
    | _ -> false
  in
  let forward =
    if apex_answers forward_origin then Sut.passed "dns-forward"
    else Sut.failed "dns-forward" "no answer for the forward zone apex"
  in
  let reverse =
    if apex_answers reverse_origin then Sut.passed "dns-reverse"
    else Sut.failed "dns-reverse" "no answer for the reverse zone apex"
  in
  [ forward; reverse ]

let boot configs =
  match List.assoc_opt "named.conf" configs with
  | None -> Error "named.conf not found"
  | Some conf_text ->
    (match read_named_conf conf_text with
     | Error msg -> Error msg
     | Ok declared_zones ->
       (* a typo in a zone's file path is a startup failure *)
       (match
          List.find_opt
            (fun (file, _) -> not (List.mem_assoc file configs))
            declared_zones
        with
        | Some (file, origin) ->
          Error
            (Printf.sprintf "zone %s: loading from master file %s failed: file not \
                             found" origin file)
        | None ->
          (match load_zones ~zones:declared_zones configs with
           | Error msg -> Error msg
           | Ok built ->
             let resolver = Dnsmodel.Resolver.create built in
             Ok { Sut.run_tests = functional_tests resolver; shutdown = (fun () -> ()) })))

let sut =
  {
    Sut.sut_name = "bind";
    version = "ISC BIND 9.4.2 (simulated)";
    config_files =
      [
        ("named.conf", Formats.Registry.namedconf);
        (forward_zone_file, Formats.Registry.bindzone);
        (reverse_zone_file, Formats.Registry.bindzone);
      ];
    default_config =
      [
        ("named.conf", named_conf_text);
        (forward_zone_file, forward_zone_text);
        (reverse_zone_file, reverse_zone_text);
      ];
    boot;
  }
