lib/suts/mini_pg.mli: Sut
