lib/suts/mini_apache.mli: Sut
