lib/suts/sut.ml: Formats List
