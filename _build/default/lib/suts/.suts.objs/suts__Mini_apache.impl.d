lib/suts/mini_apache.ml: Conferr_util Conftree Filename Formats List Option Printf String Sut
