lib/suts/mini_djbdns.ml: Conftree Dnsmodel Formats List Printf String Sut
