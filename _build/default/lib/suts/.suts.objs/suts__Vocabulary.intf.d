lib/suts/vocabulary.mli: Sut
