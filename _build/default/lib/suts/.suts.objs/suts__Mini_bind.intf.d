lib/suts/mini_bind.mli: Sut
