lib/suts/mini_pg.ml: Conferr_util Formats Hashtbl List Minisql Option Printf Result String Sut
