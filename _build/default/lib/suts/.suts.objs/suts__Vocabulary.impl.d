lib/suts/vocabulary.ml: Sut
