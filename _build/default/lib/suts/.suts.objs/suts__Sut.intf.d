lib/suts/sut.mli: Formats
