lib/suts/mini_appserver.ml: Conftree Formats List Printf Result String Sut
