lib/suts/mini_mysql.mli: Sut
