lib/suts/mini_appserver.mli: Sut
