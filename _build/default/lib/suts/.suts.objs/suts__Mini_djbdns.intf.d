lib/suts/mini_djbdns.mli: Sut
