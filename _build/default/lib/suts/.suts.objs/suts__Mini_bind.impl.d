lib/suts/mini_bind.ml: Conferr_util Conftree Dnsmodel Format Formats List Option Printf Result String Sut
