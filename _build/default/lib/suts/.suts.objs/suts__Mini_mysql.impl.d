lib/suts/mini_mysql.ml: Char Conferr_util Formats Hashtbl Int64 List Minisql Option Printf String Sut
