type test_result = { test_name : string; passed : bool; detail : string }

type instance = { run_tests : unit -> test_result list; shutdown : unit -> unit }

type t = {
  sut_name : string;
  version : string;
  config_files : (string * Formats.Registry.t) list;
  default_config : (string * string) list;
  boot : (string * string) list -> (instance, string) result;
}

let passed test_name = { test_name; passed = true; detail = "" }

let failed test_name detail = { test_name; passed = false; detail }

let all_passed results = List.for_all (fun r -> r.passed) results

let default_config_text t file =
  match List.assoc_opt file t.default_config with
  | Some text -> text
  | None -> raise Not_found
