module Node = Conftree.Node

let known_elements = [ "server"; "connector"; "logger"; "host"; "realm" ]

let existing_dirs = [ "/srv/webapps"; "/var/log/appserver"; "/etc/appserver" ]

let existing_files = [ "/etc/appserver/users.xml" ]

let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

type state = {
  mutable connector_ports : int list;
  mutable app_base : string;
  mutable default_app : string;
}

let fail fmt = Printf.ksprintf (fun m -> Error m) fmt

let ( let* ) = Result.bind

let rec fold_result f acc = function
  | [] -> Ok acc
  | x :: rest ->
    let* acc = f acc x in
    fold_result f acc rest

let check_attrs ~element ~allowed (n : Node.t) =
  fold_result
    (fun () (key, _) ->
      if List.mem key allowed then Ok ()
      else fail "element <%s> has no attribute %S" element key)
    () n.attrs

let parse_port (n : Node.t) attr_name =
  match Node.attr n attr_name with
  | None -> Ok None
  | Some p when is_digits p ->
    let port = int_of_string p in
    if port >= 1 && port <= 65535 then Ok (Some port)
    else fail "port %d out of range" port
  | Some p -> fail "invalid port %S" p

let handle_connector state (n : Node.t) =
  let* () = check_attrs ~element:"connector" ~allowed:[ "protocol"; "port"; "timeout" ] n in
  let* () =
    match Node.attr n "protocol" with
    | None | Some "http" | Some "https" | Some "ajp" -> Ok ()
    | Some other -> fail "unknown connector protocol %S" other
  in
  let* () =
    match Node.attr n "timeout" with
    | None -> Ok ()
    | Some t when is_digits t -> Ok ()
    | Some t -> fail "invalid connector timeout %S" t
  in
  let* port = parse_port n "port" in
  (match port with
   | Some p -> state.connector_ports <- state.connector_ports @ [ p ]
   | None -> ());
  Ok ()

let handle_logger (n : Node.t) =
  let* () = check_attrs ~element:"logger" ~allowed:[ "level"; "file" ] n in
  let* () =
    match Node.attr n "level" with
    | None | Some "debug" | Some "info" | Some "warn" | Some "error" -> Ok ()
    | Some other -> fail "unknown log level %S" other
  in
  match Node.attr n "file" with
  | None -> Ok ()
  | Some f ->
    let dir =
      match String.rindex_opt f '/' with
      | Some 0 -> "/"
      | Some i -> String.sub f 0 i
      | None -> "."
    in
    if List.mem dir existing_dirs then Ok ()
    else fail "cannot open log file %S" f

let handle_host state (n : Node.t) =
  let* () = check_attrs ~element:"host" ~allowed:[ "name"; "appBase"; "defaultApp" ] n in
  (match Node.attr n "appBase" with
   | Some base -> state.app_base <- base
   | None -> ());
  (match Node.attr n "defaultApp" with
   | Some app -> state.default_app <- app
   | None -> ());
  Ok ()

let handle_realm (n : Node.t) =
  let* () = check_attrs ~element:"realm" ~allowed:[ "users" ] n in
  match Node.attr n "users" with
  | None -> Ok ()
  | Some f when List.mem f existing_files -> Ok ()
  | Some f -> fail "realm user database %S not found" f

let rec process state (n : Node.t) =
  if n.kind <> Node.kind_element then Ok ()
  else
    match String.lowercase_ascii n.name with
    | "server" ->
      let* () = check_attrs ~element:"server" ~allowed:[ "shutdownPort"; "name" ] n in
      fold_result (fun () c -> process state c) () n.children
    | "connector" -> handle_connector state n
    | "logger" -> handle_logger n
    | "host" ->
      let* () = handle_host state n in
      fold_result (fun () c -> process state c) () n.children
    | "realm" -> handle_realm n
    | _ ->
      (* The XML-config flaw: an element this server does not know is
         skipped without a diagnostic — a typo in an element name makes
         the whole subtree silently disappear. *)
      Ok ()

let functional_tests state () =
  let expected_port = 8080 in
  if not (List.mem expected_port state.connector_ports) then
    [
      Sut.failed "http-get"
        (Printf.sprintf "connection refused on %d (connectors: %s)" expected_port
           (String.concat "," (List.map string_of_int state.connector_ports)));
    ]
  else if state.app_base <> "/srv/webapps" then
    [ Sut.failed "http-get" (Printf.sprintf "404: appBase %S has no apps" state.app_base) ]
  else if state.default_app = "" then
    [ Sut.failed "http-get" "404: no default application deployed" ]
  else [ Sut.passed "http-get" ]

let boot configs =
  match List.assoc_opt "server.xml" configs with
  | None -> Error "server.xml not found"
  | Some text ->
    (match Formats.Xmlconf.parse text with
     | Error e ->
       Error (Printf.sprintf "XML parse error: %s" (Formats.Parse_error.to_string e))
     | Ok tree ->
       let state = { connector_ports = []; app_base = ""; default_app = "" } in
       let roots = tree.Node.children in
       (match fold_result (fun () n -> process state n) () roots with
        | Error msg -> Error msg
        | Ok () ->
          if state.connector_ports = [] then Error "no connectors configured"
          else Ok { Sut.run_tests = functional_tests state; shutdown = (fun () -> ()) }))

let default_config =
  String.concat "\n"
    [
      "<?xml version=\"1.0\"?>";
      "<server name=\"appserver\" shutdownPort=\"8005\">";
      "  <connector protocol=\"http\" port=\"8080\" timeout=\"30\"/>";
      "  <connector protocol=\"https\" port=\"8443\"/>";
      "  <logger level=\"info\" file=\"/var/log/appserver/server.log\"/>";
      "  <host name=\"localhost\" appBase=\"/srv/webapps\" defaultApp=\"root\">";
      "    <realm users=\"/etc/appserver/users.xml\"/>";
      "  </host>";
      "</server>";
      "";
    ]

let sut =
  {
    Sut.sut_name = "appserver";
    version = "XML application server (simulated)";
    config_files = [ ("server.xml", Formats.Registry.xmlconf) ];
    default_config = [ ("server.xml", default_config) ];
    boot;
  }
