(** Simulated djbdns (tinydns) 1.05.

    Behaviours reproduced (paper §5.4 and Table 3):

    - a single [data] file in the tinydns-data format, where the ["="]
      directive defines an A record and its PTR together — the
      constructive safety the paper credits djbdns with: a "missing PTR"
      or "PTR to alias" fault cannot even be written down (the injection
      engine reports those scenarios as not applicable)
    - [tinydns-data] performs syntax checks only: no referential
      consistency checking of the published records, so expressible
      semantic faults (CNAME/NS collision, MX to alias) go undetected *)

val sut : Sut.t

val data_file : string

val forward_origin : string
val reverse_origin : string
