module Strutil = Conferr_util.Strutil

(* ------------------------------------------------------------------ *)
(* Variable specifications for the [mysqld] namespace                   *)
(* ------------------------------------------------------------------ *)

type bounds = { min : int64; max : int64; default : int64 }

type spec =
  | Size of bounds       (* accepts K/M/G multiplier suffixes *)
  | Int of bounds
  | Bool of bool
  | Path_existing of string      (* simulated filesystem lookup *)
  | Path_any of string
  | Flag                 (* valueless directive *)

let kb = 1024L
let mb = Int64.mul kb 1024L
let gb = Int64.mul mb 1024L

let mysqld_specs =
  [
    ("port", Int { min = 1L; max = 65535L; default = 3306L });
    ("socket", Path_any "/var/run/mysqld/mysqld.sock");
    ("datadir", Path_existing "/var/lib/mysql");
    ("key_buffer_size", Size { min = 8L; max = Int64.mul 4L gb; default = Int64.mul 16L mb });
    ("max_allowed_packet", Size { min = kb; max = gb; default = mb });
    ("table_open_cache", Int { min = 1L; max = 524288L; default = 64L });
    ("sort_buffer_size", Size { min = Int64.mul 32L kb; max = Int64.mul 4L gb; default = Int64.mul 512L kb });
    ("net_buffer_length", Size { min = kb; max = mb; default = Int64.mul 8L kb });
    ("read_buffer_size", Size { min = Int64.mul 8L kb; max = Int64.mul 2L gb; default = Int64.mul 256L kb });
    ("read_rnd_buffer_size", Size { min = 1L; max = Int64.mul 2L gb; default = Int64.mul 512L kb });
    ("myisam_sort_buffer_size", Size { min = Int64.mul 4L kb; max = Int64.mul 4L gb; default = Int64.mul 8L mb });
    ("thread_cache_size", Int { min = 0L; max = 16384L; default = 8L });
    ("max_connections", Int { min = 1L; max = 100000L; default = 100L });
    ("skip_external_locking", Flag);
    ("old_passwords", Bool false);
    ("low_priority_updates", Bool false);
  ]

(* The simulated host filesystem: directories that exist on the test
   machine.  A typo in a path directive almost surely leaves it. *)
let existing_paths =
  [ "/var/lib/mysql"; "/var/run/mysqld"; "/var/log"; "/tmp"; "/usr/share/mysql" ]

(* ------------------------------------------------------------------ *)
(* The quirky value parsers (paper §5.2)                                *)
(* ------------------------------------------------------------------ *)

type parsed = Accepted of int64 | Defaulted | Rejected of string

let multiplier c =
  match Char.uppercase_ascii c with
  | 'K' -> Some kb
  | 'M' -> Some mb
  | 'G' -> Some gb
  | _ -> None

let is_digit c = c >= '0' && c <= '9'

let clamp { min; max; default = _ } n = n >= min && n <= max

let parse_size ~default ~min ~max v =
  let bounds = { min; max; default } in
  let v = Strutil.trim v in
  if v = "" then Defaulted (* flaw: valueless directive accepted *)
  else if multiplier v.[0] <> None then
    Defaulted (* flaw: value starting with a multiplier silently ignored *)
  else if not (is_digit v.[0]) then
    Rejected (Printf.sprintf "Wrong value: %S is not a number" v)
  else begin
    let len = String.length v in
    let rec digits i = if i < len && is_digit v.[i] then digits (i + 1) else i in
    let stop = digits 0 in
    let n = Int64.of_string (String.sub v 0 stop) in
    if stop = len then if clamp bounds n then Accepted n else Defaulted
    else
      match multiplier v.[stop] with
      | Some m ->
        (* flaw: parsing stops at the first multiplier symbol, so
           "1M0" is accepted as 1M and the trailing junk is ignored *)
        let n = Int64.mul n m in
        if clamp bounds n then Accepted n else Defaulted
      | None -> Rejected (Printf.sprintf "Wrong value: %S is not a number" v)
  end

let parse_int ~default ~min ~max v =
  let bounds = { min; max; default } in
  let v = Strutil.trim v in
  if v = "" then Defaulted
  else if String.for_all is_digit v && String.length v <= 18 then
    let n = Int64.of_string v in
    if clamp bounds n then Accepted n else Defaulted (* flaw: silent *)
  else Rejected (Printf.sprintf "Wrong value: %S is not a number" v)

let fold_dashes s = String.map (fun c -> if c = '-' then '_' else c) s

let resolve_name name =
  let name = fold_dashes name in
  match List.assoc_opt name mysqld_specs with
  | Some _ -> `Known name
  | None ->
    (* MySQL accepts unambiguous prefixes of variable names. *)
    (match
       List.filter (fun (n, _) -> Strutil.is_prefix ~prefix:name n) mysqld_specs
     with
     | [ (full, _) ] -> `Known full
     | [] -> `Unknown
     | _ :: _ :: _ -> `Ambiguous)

(* ------------------------------------------------------------------ *)
(* The system's own config-file reader                                  *)
(* ------------------------------------------------------------------ *)

type line = Section_header of string | Directive of string * string option | Other

let classify_line raw =
  let trimmed = Strutil.trim raw in
  if trimmed = "" || trimmed.[0] = '#' || trimmed.[0] = ';' then Other
  else if trimmed.[0] = '[' && trimmed.[String.length trimmed - 1] = ']' then
    Section_header (String.sub trimmed 1 (String.length trimmed - 2))
  else
    match Strutil.split_on_first '=' trimmed with
    | Some (name, value) -> Directive (Strutil.trim name, Some (Strutil.trim value))
    | None -> Directive (trimmed, None)

let sections_of_text text =
  let add acc section line =
    match acc with
    | (s, lines) :: rest when s = section -> (s, line :: lines) :: rest
    | _ -> (section, [ line ]) :: acc
  in
  List.fold_left
    (fun (current, acc) raw ->
      match classify_line raw with
      | Section_header s -> (s, acc)
      | Directive (n, v) -> (current, add acc current (n, v))
      | Other -> (current, acc))
    ("", []) (Strutil.lines text)
  |> snd
  |> List.rev_map (fun (s, lines) -> (s, List.rev lines))

let section_directives sections name =
  List.filter (fun (s, _) -> s = name) sections |> List.concat_map snd

type state = {
  mutable port : int64;
  mutable datadir : string;
  vars : (string, int64) Hashtbl.t;
}

let apply_mysqld_directive state (name, value) =
  match resolve_name name with
  | `Unknown -> Error (Printf.sprintf "unknown variable '%s'" name)
  | `Ambiguous -> Error (Printf.sprintf "ambiguous option '%s'" name)
  | `Known full ->
    let spec = List.assoc full mysqld_specs in
    (match spec with
     | Flag ->
       (* flaw: a spurious value after a flag is silently ignored *)
       Ok ()
     | Bool default ->
       (match Option.map String.uppercase_ascii value with
        | None -> Ok ()
        | Some ("ON" | "TRUE" | "1") -> Ok ()
        | Some ("OFF" | "FALSE" | "0") ->
          ignore default;
          Ok ()
        | Some other -> Error (Printf.sprintf "invalid boolean value '%s' for %s" other full))
     | Path_any _ ->
       (match value with
        | Some v when v <> "" && v.[0] <> '/' ->
          Error (Printf.sprintf "%s must be an absolute path, got '%s'" full v)
        | Some _ | None -> Ok ())
     | Path_existing _ ->
       (match value with
        | Some v when not (List.mem v existing_paths) ->
          Error (Printf.sprintf "can't read dir of '%s' (Errcode: 2)" v)
        | Some v ->
          state.datadir <- v;
          Ok ()
        | None -> Ok ())
     | Size { min; max; default } ->
       (match parse_size ~default ~min ~max (Option.value ~default:"" value) with
        | Accepted n ->
          Hashtbl.replace state.vars full n;
          Ok ()
        | Defaulted ->
          Hashtbl.replace state.vars full default;
          Ok ()
        | Rejected msg -> Error msg)
     | Int { min; max; default } ->
       (match parse_int ~default ~min ~max (Option.value ~default:"" value) with
        | Accepted n ->
          if full = "port" then state.port <- n else Hashtbl.replace state.vars full n;
          Ok ()
        | Defaulted ->
          if full = "port" then state.port <- 3306L
          else Hashtbl.replace state.vars full default;
          Ok ()
        | Rejected msg -> Error msg))

let functional_tests state () =
  (* The diagnosis script connects with explicit parameters
     (mysql --port=3306 ...), as an administrator checking the default
     install would; it does not read my.cnf, so [client]-section errors
     stay latent, like those of the other auxiliary tools. *)
  let expected_port = 3306L in
  let client =
    if state.port <> expected_port then
      Error
        (Printf.sprintf "mysql: Can't connect to MySQL server on 'localhost:%Ld' (111)"
           expected_port)
    else Ok ()
  in
  match client with
  | Error msg -> [ Sut.failed "db-connect" msg ]
  | Ok () ->
    let engine = Minisql.Engine.create () in
    let script =
      "CREATE DATABASE conferr_test; USE conferr_test; CREATE TABLE probe (id INT, \
       note TEXT); INSERT INTO probe VALUES (1, 'alpha'); INSERT INTO probe VALUES \
       (2, 'beta'); SELECT note FROM probe WHERE id = 2;"
    in
    (match Minisql.Engine.run_script engine script with
     | Error msg -> [ Sut.passed "db-connect"; Sut.failed "db-crud" msg ]
     | Ok _ -> [ Sut.passed "db-connect"; Sut.passed "db-crud" ])

let boot configs =
  match List.assoc_opt "my.cnf" configs with
  | None -> Error "my.cnf not found"
  | Some text ->
    let sections = sections_of_text text in
    let state = { port = 3306L; datadir = "/var/lib/mysql"; vars = Hashtbl.create 16 } in
    (* my_load_defaults refuses options that precede any [group] header *)
    (match section_directives sections "" with
     | (orphan, _) :: _ ->
       Error
         (Printf.sprintf
            "[ERROR] Found option without preceding group in config file: %s" orphan)
     | [] ->
       let daemon_directives = section_directives sections "mysqld" in
       let rec apply = function
         | [] -> Ok ()
         | d :: rest ->
           (match apply_mysqld_directive state d with
            | Ok () -> apply rest
            | Error msg -> Error msg)
       in
       (match apply daemon_directives with
        | Error msg -> Error (Printf.sprintf "[ERROR] mysqld: %s" msg)
        | Ok () ->
          Ok { Sut.run_tests = functional_tests state; shutdown = (fun () -> ()) }))

(* The auxiliary tool the paper's latent-error story is about: mysqldump
   parses its own section of the shared file only when it runs — often
   from an unattended cron job, long after the error was introduced. *)
let mysqldump_options = [ "quick"; "max_allowed_packet"; "single_transaction"; "opt" ]

let run_mysqldump text =
  let sections = sections_of_text text in
  let rec check = function
    | [] -> Ok ()
    | (name, value) :: rest ->
      let folded = fold_dashes name in
      if not (List.mem folded mysqldump_options) then
        Error (Printf.sprintf "mysqldump: unknown option '--%s'" name)
      else if folded = "max_allowed_packet" then
        match
          parse_size ~default:(Int64.mul 16L mb) ~min:kb ~max:gb
            (Option.value ~default:"" value)
        with
        | Accepted _ | Defaulted -> check rest
        | Rejected msg -> Error (Printf.sprintf "mysqldump: %s" msg)
      else check rest
  in
  check (section_directives sections "mysqldump")

let default_config =
  String.concat "\n"
    [
      "# Example MySQL config file.";
      "[mysqld]";
      "port = 3306";
      "socket = /var/run/mysqld/mysqld.sock";
      "datadir = /var/lib/mysql";
      "skip_external_locking";
      "key_buffer_size = 16M";
      "max_allowed_packet = 1M";
      "table_open_cache = 64";
      "sort_buffer_size = 512K";
      "net_buffer_length = 8K";
      "read_buffer_size = 256K";
      "read_rnd_buffer_size = 512K";
      "myisam_sort_buffer_size = 8M";
      "thread_cache_size = 8";
      "max_connections = 100";
      "";
    ]

(* A my.cnf shared with the auxiliary tools, as shipped installs use.
   Errors in the tool sections are not detected when the daemon starts
   (the latent-error design flaw of §5.2); exercised by tests and the
   quickstart example. *)
let shared_tools_config =
  default_config
  ^ String.concat "\n"
      [
        "[mysqldump]";
        "quick";
        "max_allowed_packet = 16M";
        "";
        "[mysqld_safe]";
        "log-error = /var/log/mysqld.log";
        "";
      ]

let full_config =
  (* Most available [mysqld] variables at their defaults: the starting
     file for the §5.5 comparison benchmark (flags and booleans excluded,
     as in the paper). *)
  let directive (name, spec) =
    let size_text n =
      if Int64.rem n gb = 0L && n <> 0L then Printf.sprintf "%LdG" (Int64.div n gb)
      else if Int64.rem n mb = 0L && n <> 0L then Printf.sprintf "%LdM" (Int64.div n mb)
      else if Int64.rem n kb = 0L && n <> 0L then Printf.sprintf "%LdK" (Int64.div n kb)
      else Int64.to_string n
    in
    match spec with
    | Size { default; _ } -> Some (Printf.sprintf "%s = %s" name (size_text default))
    | Int { default; _ } -> Some (Printf.sprintf "%s = %Ld" name default)
    | Path_existing d | Path_any d -> Some (Printf.sprintf "%s = %s" name d)
    | Flag | Bool _ -> None
  in
  "[mysqld]\n" ^ String.concat "\n" (List.filter_map directive mysqld_specs) ^ "\n"

let sut =
  {
    Sut.sut_name = "mysql";
    version = "MySQL 5.1.22 (simulated)";
    config_files = [ ("my.cnf", Formats.Registry.ini) ];
    default_config = [ ("my.cnf", default_config) ];
    boot;
  }
