(* conferr — command-line front end.

   Subcommands mirror the paper's evaluation: typo campaigns (table1),
   structural variations (table2), semantic DNS errors (table3), the
   MySQL/Postgres comparison (figure3), plus generic profile runs against
   any simulated SUT. *)

open Cmdliner

let all_suts = Suts.Catalog.all

let sut_conv =
  let parse s =
    match Suts.Catalog.find s with
    | Some sut -> Ok sut
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown SUT %S (expected one of: %s)" s
              (String.concat ", " Suts.Catalog.names)))
  in
  let print fmt s = Format.pp_print_string fmt s.Suts.Sut.sut_name in
  Arg.conv (parse, print)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log each injection as it runs.")

let setup_logging verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let entries_arg =
  Arg.(
    value & flag
    & info [ "entries" ] ~doc:"Also print the per-injection entries of the profile.")

(* Executor flags (see doc/exec.md). *)

let jobs_arg =
  Arg.(
    value & opt string "1"
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for the campaign (1 = sequential), or $(b,auto) \
           to size the pool to the machine.  Must be at least 1; values \
           beyond max(64, scenario count) are clamped with a warning.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"PATH"
        ~doc:"Append every finished injection to a JSONL journal at $(docv).")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Skip scenarios already recorded in the journal (requires --journal); \
           without this flag an existing journal is restarted from scratch.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Per-scenario deadline; a scenario still running after $(docv) \
              seconds (and its retries) is classified as a harness crash.")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N" ~doc:"Attempts to re-run a timed-out scenario.")

let signatures_arg =
  Arg.(
    value & flag
    & info [ "signatures" ]
        ~doc:"Also print the profile clustered into distinct failure signatures.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Also print campaign execution statistics.")

(* Observability flags (see doc/obsv.md). *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record per-scenario phase spans and write them to $(docv) as \
           Chrome trace-event JSON (load it in ui.perfetto.dev or \
           chrome://tracing).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Collect campaign metrics and write a Prometheus text-format \
           snapshot to $(docv) when the run finishes.")

let segment_bytes_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "segment-bytes" ]
        ~docv:"N"
        ~doc:
          "Write the journal as a v3 segmented store: a directory of segment            files rotated at $(docv) bytes plus a CRC-carrying manifest, each            worker domain appending to its own segment (doc/exec.md). Without            this flag a journal path that already is a store keeps the store            layout.")

(* Build the observers requested by --trace/--metrics, run the campaign,
   then write the files.  With neither flag the campaign runs exactly as
   before (no clock, byte-identical journal and profile). *)
let with_observers ~trace ~metrics f =
  let tracer = Option.map (fun _ -> Conferr_obsv.Trace.create ()) trace in
  let registry = Option.map (fun _ -> Conferr_obsv.Metrics.create ()) metrics in
  let result = f tracer registry in
  (try
     (match (trace, tracer) with
      | Some path, Some t ->
        Conferr_obsv.Trace.write_file t path;
        if Conferr_obsv.Trace.dropped t > 0 then
          Printf.eprintf
            "conferr: warning: trace ring overflow, %d scenario(s) not recorded\n"
            (Conferr_obsv.Trace.dropped t)
      | _ -> ());
     match (metrics, registry) with
     | Some path, Some r -> Conferr_obsv.Metrics.write_file r path
     | _ -> ()
   with Sys_error msg ->
     Printf.eprintf "conferr: %s\n" msg;
     exit 1);
  result

(* --resume without --journal used to be silently ignored (there is
   nothing to resume from); fail loudly instead. *)
let require_journal_for_resume ~journal ~resume =
  if resume && journal = None then begin
    prerr_endline
      "conferr: --resume requires --journal PATH (there is no journal to \
       resume from)";
    exit 2
  end

(* Journals named as *inputs* (fsck, gaps, report --journal) follow the
   shared exit-code convention (doc/exec.md): a path that does not exist
   is a usage error (exit 2), never an empty-journal success. *)
let require_journal_file path =
  if not (Sys.file_exists path) then begin
    Printf.eprintf "conferr: %s: no such journal\n" path;
    exit 2
  end

(* Validate --jobs: parse the grammar (a positive integer or "auto"),
   then check the number against the scenario count; exit 2 on nonsense
   (junk text, 0 or negative), warn and clamp on excess. *)
let checked_jobs ?scenario_count jobs_text =
  let parsed =
    match Conferr_exec.Executor.parse_jobs jobs_text with
    | Ok n -> n
    | Error msg ->
      Printf.eprintf "conferr: %s\n" msg;
      exit 2
  in
  match Conferr_exec.Executor.clamp_jobs ?scenario_count parsed with
  | Error msg ->
    Printf.eprintf "conferr: %s\n" msg;
    exit 2
  | Ok (jobs, warning) ->
    Option.iter (fun w -> Printf.eprintf "conferr: warning: %s\n" w) warning;
    jobs

let checked_segment_bytes segment_bytes =
  match segment_bytes with
  | Some n when n <= 0 ->
    Printf.eprintf "conferr: --segment-bytes must be positive, got %d\n" n;
    exit 2
  | sb -> sb

(* Journals named as *outputs* are validated up front (unwritable
   parent, directory where a file is expected, single file where a
   --segment-bytes store is requested, ...): a path the writer cannot
   plausibly open is a usage error, exit 2, before any campaign work
   starts. *)
let checked_journal_path ?segment_bytes journal =
  (match journal with
   | Some path -> (
     match Conferr_exec.Journal.validate_path ?segment_bytes path with
     | Ok () -> ()
     | Error msg ->
       Printf.eprintf "conferr: %s\n" msg;
       exit 2)
   | None -> ());
  journal

let executor_settings ?scenario_count ?segment_bytes ?journal_io ~jobs ~seed
    ~journal ~resume ~timeout ~retries () =
  require_journal_for_resume ~journal ~resume;
  let segment_bytes = checked_segment_bytes segment_bytes in
  let journal = checked_journal_path ?segment_bytes journal in
  {
    Conferr_exec.Executor.default_settings with
    jobs = checked_jobs ?scenario_count jobs;
    campaign_seed = seed;
    journal_path = journal;
    segment_bytes;
    journal_io;
    resume;
    timeout_s = timeout;
    retries;
  }

(* The executor touches the filesystem only through the journal; surface
   open/rename failures — and storage faults re-labelled as
   Journal.Fault — as a CLI error rather than an uncaught exception. *)
let run_campaign ~settings ~sut ~base ~scenarios () =
  try Conferr_exec.Executor.run_from ~settings ~sut ~base ~scenarios ()
  with
  | Conferr_exec.Journal.Fault msg ->
    Printf.eprintf
      "conferr: journal fault: %s\nconferr: the journal is repairable: run fsck --repair, then resume with --resume\n"
      msg;
    exit 1
  | Sys_error msg ->
    Printf.eprintf "conferr: %s\n" msg;
    exit 1

(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    List.iter
      (fun s ->
        Printf.printf "%-10s %s (files: %s)\n" s.Suts.Sut.sut_name s.Suts.Sut.version
          (String.concat ", " (List.map fst s.Suts.Sut.config_files)))
      all_suts
  in
  Cmd.v (Cmd.info "list-suts" ~doc:"List the simulated systems under test.")
    Term.(const run $ const ())

let profile_cmd =
  let run sut seed entries csv by_level verbose jobs journal resume timeout retries
      signatures stats trace metrics segment_bytes =
    setup_logging verbose;
    let rng = Conferr_util.Rng.create seed in
    match Conferr.Engine.parse_default_config sut with
    | Error msg ->
      prerr_endline msg;
      exit 1
    | Ok base ->
      let scenarios =
        Conferr.Campaign.typo_scenarios ~rng
          ~faultload:Conferr.Campaign.paper_faultload sut base
      in
      let profile, snapshot =
        with_observers ~trace ~metrics (fun tracer registry ->
            let settings =
              {
                (executor_settings ~scenario_count:(List.length scenarios)
                   ?segment_bytes ~jobs ~seed ~journal ~resume ~timeout
                   ~retries ())
                with
                trace = tracer;
                metrics = registry;
              }
            in
            run_campaign ~settings ~sut ~base ~scenarios ())
      in
      if csv then print_string (Conferr.Profile.to_csv profile)
      else begin
        print_string (Conferr.Profile.render profile);
        if by_level then begin
          print_newline ();
          print_string (Conferr.Profile.render_by_cognitive_level profile)
        end;
        if signatures then begin
          print_newline ();
          print_string
            (Conferr_exec.Signature.render
               (Conferr_exec.Signature.clusters profile.Conferr.Profile.entries))
        end;
        if entries then print_string (Conferr.Profile.render_entries profile);
        if stats then begin
          print_newline ();
          print_string (Conferr_exec.Progress.render snapshot)
        end
      end
  in
  let sut =
    Arg.(
      required
      & opt (some sut_conv) None
      & info [ "sut" ] ~docv:"SUT" ~doc:"System under test.")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit the raw profile as CSV.")
  in
  let by_level =
    Arg.(
      value & flag
      & info [ "by-level" ] ~doc:"Also summarize outcomes by GEMS cognitive level.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run the typo faultload against one SUT and print its resilience profile. \
          Campaigns can run on several domains (--jobs), record a resumable \
          journal (--journal, --resume) and bound each injection (--timeout).")
    Term.(
      const run $ sut $ seed_arg $ entries_arg $ csv $ by_level $ verbose_arg
      $ jobs_arg $ journal_arg $ resume_arg $ timeout_arg $ retries_arg
      $ signatures_arg $ stats_arg $ trace_arg $ metrics_arg
      $ segment_bytes_arg)

let benchmark_cmd =
  let run seed experiments =
    print_string
      (Conferr.Paper.render_process_benchmark
         (Conferr.Paper.process_benchmark ~seed ~experiments ()))
  in
  let experiments =
    Arg.(
      value & opt int 20
      & info [ "experiments" ] ~docv:"N" ~doc:"Typos injected per task.")
  in
  Cmd.v
    (Cmd.info "benchmark"
       ~doc:
         "Run the configuration-process benchmark: valid edits followed by typos \
          injected near them (paper section 5.5).")
    Term.(const run $ seed_arg $ experiments)

let table_cmd name doc render =
  let run seed = print_string (render seed) in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ seed_arg)

let table1_cmd =
  table_cmd "table1" "Regenerate Table 1 (resilience to typos)." (fun seed ->
      Conferr.Paper.render_table1 (Conferr.Paper.table1 ~seed ()))

let table2_cmd =
  table_cmd "table2" "Regenerate Table 2 (resilience to structural errors)."
    (fun seed -> Conferr.Paper.render_table2 (Conferr.Paper.table2 ~seed ()))

let table3_cmd =
  table_cmd "table3" "Regenerate Table 3 (resilience to semantic DNS errors)."
    (fun _seed -> Conferr.Paper.render_table3 (Conferr.Paper.table3 ()))

let figure3_cmd =
  table_cmd "figure3" "Regenerate Figure 3 (MySQL vs Postgres value-typo resilience)."
    (fun seed -> Conferr.Paper.render_figure3 (Conferr.Paper.figure3 ~seed ()))

let all_cmd =
  table_cmd "all" "Regenerate every table and figure of the paper's evaluation."
    (fun seed -> Conferr.Paper.run_all ~seed ())

let variations_cmd =
  let run sut seed =
    let t = Conferr.Structural_check.run ~rng:(Conferr_util.Rng.create seed) ~sut () in
    List.iter
      (fun (r : Conferr.Structural_check.row) ->
        Printf.printf "%-32s %s\n"
          (Errgen.Variations.class_title r.class_name)
          (Conferr.Structural_check.support_label r.support))
      t.rows;
    Printf.printf "%% of assumptions satisfied: %.0f%%\n" t.satisfied_percent
  in
  let sut =
    Arg.(
      required
      & opt (some sut_conv) None
      & info [ "sut" ] ~docv:"SUT" ~doc:"System under test.")
  in
  Cmd.v
    (Cmd.info "variations"
       ~doc:"Check which structural variation classes one SUT accepts.")
    Term.(const run $ sut $ seed_arg)

let semantic_cmd =
  let run sut entries jobs journal resume stats trace metrics segment_bytes =
    let codec =
      match sut.Suts.Sut.sut_name with
      | "bind" -> Dnsmodel.Codec.bind ~zones:Suts.Mini_bind.zones
      | "djbdns" -> Dnsmodel.Codec.tinydns ~file:Suts.Mini_djbdns.data_file
      | other ->
        prerr_endline (Printf.sprintf "semantic campaign only supports DNS SUTs, not %s" other);
        exit 1
    in
    match Conferr.Engine.parse_default_config sut with
    | Error msg ->
      prerr_endline msg;
      exit 1
    | Ok base ->
      let scenarios =
        Dnsmodel.Rfc1912.scenarios ~codec ~faults:Dnsmodel.Rfc1912.all_faults base
        |> Errgen.Scenario.relabel_ids ~prefix:"semantic"
      in
      let profile, snapshot =
        with_observers ~trace ~metrics (fun tracer registry ->
            let settings =
              {
                (executor_settings ~scenario_count:(List.length scenarios)
                   ?segment_bytes ~jobs ~seed:42 ~journal ~resume ~timeout:None
                   ~retries:0 ())
                with
                trace = tracer;
                metrics = registry;
              }
            in
            run_campaign ~settings ~sut ~base ~scenarios ())
      in
      print_string (Conferr.Profile.render profile);
      if entries then print_string (Conferr.Profile.render_entries profile);
      if stats then begin
        print_newline ();
        print_string (Conferr_exec.Progress.render snapshot)
      end
  in
  let sut =
    Arg.(
      required
      & opt (some sut_conv) None
      & info [ "sut" ] ~docv:"SUT" ~doc:"DNS system under test (bind or djbdns).")
  in
  Cmd.v
    (Cmd.info "semantic"
       ~doc:"Run the full RFC-1912 semantic fault catalog against a DNS SUT.")
    Term.(
      const run $ sut $ entries_arg $ jobs_arg $ journal_arg $ resume_arg
      $ stats_arg $ trace_arg $ metrics_arg $ segment_bytes_arg)

let explore_cmd =
  let run sut seed entries verbose jobs journal resume timeout retries budget
      batch plateau wallclock quarantine stats trace metrics segment_bytes =
    setup_logging verbose;
    require_journal_for_resume ~journal ~resume;
    let segment_bytes = checked_segment_bytes segment_bytes in
    let journal = checked_journal_path ?segment_bytes journal in
    let stream base =
      Errgen.Gen.of_generator ~prefix:"typo" ~seed
        (fun ~rng set ->
          Conferr.Campaign.typo_scenarios ~rng
            ~faultload:Conferr.Campaign.paper_faultload sut set)
        base
    in
    match
      with_observers ~trace ~metrics (fun tracer registry ->
          let settings =
            {
              Conferr_adapt.Explore.default_settings with
              jobs = checked_jobs jobs;
              batch;
              budget;
              plateau;
              wallclock_s = wallclock;
              timeout_s = timeout;
              retries;
              campaign_seed = seed;
              journal_path = journal;
              segment_bytes;
              resume;
              quarantine_path = quarantine;
              trace = tracer;
              metrics = registry;
            }
          in
          try Conferr_adapt.Explore.run ~settings ~sut ~stream () with
          | Conferr_exec.Journal.Fault msg ->
            Printf.eprintf "conferr: journal fault: %s\n" msg;
            exit 1
          | Sys_error msg ->
            Printf.eprintf "conferr: %s\n" msg;
            exit 1)
    with
    | Error e ->
      prerr_endline (Conferr.Engine.config_error_to_string e);
      exit 1
    | Ok report ->
      print_string (Conferr_adapt.Explore.render report);
      if entries then begin
        print_newline ();
        print_string
          (Conferr.Profile.render_entries report.Conferr_adapt.Explore.profile)
      end;
      if stats then begin
        print_newline ();
        print_string (Conferr.Profile.render report.Conferr_adapt.Explore.profile)
      end
  in
  let sut =
    Arg.(
      required
      & opt (some sut_conv) None
      & info [ "sut" ] ~docv:"SUT" ~doc:"System under test.")
  in
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Stop after $(docv) SUT executions (duplicates and journaled \
             results are free; checked at batch boundaries).")
  in
  let batch =
    Arg.(
      value & opt int 32
      & info [ "batch" ] ~docv:"N" ~doc:"Scenarios scheduled per batch.")
  in
  let plateau =
    Arg.(
      value & opt int 4
      & info [ "plateau" ] ~docv:"K"
          ~doc:
            "Stop after $(docv) consecutive batches discover no new failure \
             signature (0 disables the rule).")
  in
  let wallclock =
    Arg.(
      value
      & opt (some float) None
      & info [ "wallclock" ] ~docv:"SECONDS"
          ~doc:"Stop at the first batch boundary past $(docv) seconds.")
  in
  let quarantine =
    Arg.(
      value
      & opt (some string) None
      & info [ "quarantine" ] ~docv:"DIR"
          ~doc:
            "Quarantine directory of a previous hardened campaign; scenario \
             ids listed in its flaky.txt are deferred to the back of the \
             schedule.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Coverage-guided campaign search: stream typo scenarios, skip \
          byte-identical mutants, and steer batches toward fault classes \
          that keep discovering new failure signatures (doc/adapt.md). \
          Deterministic for a fixed seed, any --jobs.")
    Term.(
      const run $ sut $ seed_arg $ entries_arg $ verbose_arg $ jobs_arg
      $ journal_arg $ resume_arg $ timeout_arg $ retries_arg $ budget $ batch
      $ plateau $ wallclock $ quarantine $ stats_arg $ trace_arg $ metrics_arg
      $ segment_bytes_arg)

let chaos_cmd =
  let run sut seed chaos_seed rate verbose jobs journal resume timeout retries
      quorum breaker quarantine fuel entries stats trace metrics segment_bytes
      disk disk_kill_at =
    setup_logging verbose;
    if rate < 0.0 || rate > 1.0 then begin
      prerr_endline "conferr: --chaos-rate must be within [0; 1]";
      exit 2
    end;
    if (disk || disk_kill_at <> None) && journal = None then begin
      prerr_endline "conferr: --disk/--disk-kill-at require --journal";
      exit 2
    end;
    (* The observers wrap the whole campaign (not just the executor) so
       both chaos injectors can count their faults in the same registry. *)
    let outcome, chaos_stats, disk_stats =
      with_observers ~trace ~metrics (fun tracer registry ->
          let chaos_settings =
            { Conferr_harden.Chaos.default_settings with seed = chaos_seed; rate }
          in
          let chaotic, chaos_stats =
            Conferr_harden.Chaos.wrap ~settings:chaos_settings ?metrics:registry
              sut
          in
          let journal_io, disk_stats =
            if not disk && disk_kill_at = None then (None, None)
            else begin
              let disk_settings =
                {
                  Conferr_harden.Diskchaos.seed = chaos_seed;
                  rate = (if disk then rate else 0.0);
                  kill_at = disk_kill_at;
                  faults =
                    (if disk then Conferr_harden.Diskchaos.all_faults else []);
                }
              in
              let io, st =
                Conferr_harden.Diskchaos.wrap ~settings:disk_settings
                  ?metrics:registry Conferr_harden.Diskchaos.real
              in
              (Some io, Some st)
            end
          in
          match Conferr.Engine.parse_default_config sut with
          | Error msg ->
            prerr_endline msg;
            exit 1
          | Ok base ->
            let scenarios =
              Conferr.Campaign.typo_scenarios ~rng:(Conferr_util.Rng.create seed)
                ~faultload:Conferr.Campaign.paper_faultload sut base
            in
            let settings =
              {
                (executor_settings ~scenario_count:(List.length scenarios)
                   ?segment_bytes ?journal_io ~jobs ~seed ~journal ~resume
                   ~timeout:(Some timeout) ~retries ())
                with
                quorum;
                breaker = (if breaker <= 0 then None else Some breaker);
                quarantine_dir = quarantine;
                fuel;
                trace = tracer;
                metrics = registry;
              }
            in
            (* A storage fault must not hide the disk-chaos stats — they
               are the point of the exercise — so catch the abort here
               and report after printing them. *)
            let outcome =
              try
                Ok
                  (Conferr_exec.Executor.run_from ~settings ~sut:chaotic ~base
                     ~scenarios ())
              with
              | Conferr_exec.Journal.Fault msg ->
                Error (Printf.sprintf "journal fault: %s" msg)
              | Sys_error msg -> Error msg
            in
            (outcome, chaos_stats, disk_stats))
    in
    let print_disk_stats () =
      match disk_stats with
      | None -> ()
      | Some st ->
        Printf.printf "Disk chaos: %d fault(s) injected%s, %d byte(s) written%s\n"
          (Conferr_harden.Diskchaos.injected st)
          (match Conferr_harden.Diskchaos.by_fault st with
           | [] -> ""
           | per ->
             Printf.sprintf " (%s)"
               (String.concat ", "
                  (List.map
                     (fun (f, n) ->
                       Printf.sprintf "%s %d"
                         (Conferr_harden.Diskchaos.fault_label f) n)
                     per)))
          (Conferr_harden.Diskchaos.written_bytes st)
          (if Conferr_harden.Diskchaos.killed st then ", killed" else "")
    in
    match outcome with
    | Error msg ->
      print_disk_stats ();
      Printf.eprintf
        "conferr: journal aborted the campaign: %s\nconferr: the journal is repairable: run fsck --repair, then resume with --resume\n"
        msg;
      exit 1
    | Ok (profile, snapshot) ->
      print_string (Conferr.Profile.render profile);
      if entries then print_string (Conferr.Profile.render_entries profile);
      Printf.printf "\nChaos injection: %d fault(s) injected%s\n"
        (Conferr_harden.Chaos.injected chaos_stats)
        (match Conferr_harden.Chaos.by_fault chaos_stats with
         | [] -> ""
         | per ->
           Printf.sprintf " (%s)"
             (String.concat ", "
                (List.map
                   (fun (f, n) ->
                     Printf.sprintf "%s %d" (Conferr_harden.Chaos.fault_label f) n)
                   per)));
      print_disk_stats ();
      if stats then begin
        print_newline ();
        print_string (Conferr_exec.Progress.render snapshot)
      end
  in
  let sut =
    Arg.(
      required
      & opt (some sut_conv) None
      & info [ "sut" ] ~docv:"SUT" ~doc:"System under test.")
  in
  let chaos_seed =
    Arg.(
      value & opt int Conferr_harden.Chaos.default_settings.Conferr_harden.Chaos.seed
      & info [ "chaos-seed" ] ~docv:"SEED" ~doc:"Seed of the chaos injector.")
  in
  let rate =
    Arg.(
      value & opt float 0.1
      & info [ "chaos-rate" ] ~docv:"P"
          ~doc:"Injection probability per boot/test call, within [0; 1].")
  in
  let timeout =
    Arg.(
      value & opt float 1.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-scenario deadline (chaos hangs rely on it).")
  in
  let quorum =
    Arg.(
      value & opt int 3
      & info [ "quorum" ] ~docv:"K"
          ~doc:
            "Re-run a crashed scenario until $(docv) total attempts voted; \
             1 disables the quorum.")
  in
  let breaker =
    Arg.(
      value & opt int 5
      & info [ "breaker" ] ~docv:"N"
          ~doc:
            "Trip a (SUT x fault class) circuit breaker after $(docv) \
             consecutive crashes; 0 disables the breaker.")
  in
  let quarantine =
    Arg.(
      value
      & opt (some string) None
      & info [ "quarantine" ] ~docv:"DIR"
          ~doc:"Write crash repro bundles and the flaky-id list under $(docv).")
  in
  let fuel =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"STEPS"
          ~doc:"Cooperative step budget per execution (allocation storms \
                burn it).")
  in
  let disk =
    Arg.(
      value & flag
      & info [ "disk" ]
          ~doc:
            "Also inject storage faults under the journal writer (torn and \
             short writes, ENOSPC, dropped fsyncs) at --chaos-rate with \
             --chaos-seed; requires --journal.  A storage fault aborts the \
             campaign with the journal left repairable (fsck --repair) and \
             resumable (doc/harden.md).")
  in
  let disk_kill_at =
    Arg.(
      value
      & opt (some int) None
      & info [ "disk-kill-at" ] ~docv:"BYTES"
          ~doc:
            "Simulate a crash: abort the campaign after exactly $(docv) \
             journal bytes reach storage (a deterministic kill point for \
             crash-consistency testing); requires --journal.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the typo faultload with chaos self-injection: the SUT is \
          wrapped so boot/test calls randomly crash, hang, allocate or flip \
          outcomes, proving the hardened executor (sandbox, quorum, breaker, \
          journal) survives a hostile SUT; --disk extends the hostility to \
          the journal's own storage (doc/harden.md).")
    Term.(
      const run $ sut $ seed_arg $ chaos_seed $ rate $ verbose_arg $ jobs_arg
      $ journal_arg $ resume_arg $ timeout $ retries_arg $ quorum $ breaker
      $ quarantine $ fuel $ entries_arg $ stats_arg $ trace_arg $ metrics_arg
      $ segment_bytes_arg $ disk $ disk_kill_at)

let fsck_cmd =
  let run journal repair format =
    require_journal_file journal;
    let module J = Conferr_exec.Journal in
    let s = J.survey ~repair journal in
    let totals = J.survey_totals s in
    let pre_clean = J.survey_clean s in
    (match format with
     | `Json -> print_endline (Conferr_exec.Json.to_string (J.survey_to_json s))
     | `Text ->
       if
         (not s.J.store)
         && totals.J.valid = 0 && totals.J.torn = 0 && totals.J.corrupt = 0
       then
         (* A 0-byte journal is what a campaign that never reached its first
            append leaves behind; it is clean, not damaged. *)
         Printf.printf "%s: empty journal\n" journal
       else if not s.J.store then begin
         Printf.printf
           "%s: %d valid line(s), %d torn, %d corrupt (valid prefix: %d bytes)\n"
           journal totals.J.valid totals.J.torn totals.J.corrupt
           totals.J.valid_prefix_bytes;
         if (not pre_clean) && repair then
           Printf.printf "repaired: truncated to the %d-byte valid prefix\n"
             totals.J.valid_prefix_bytes
       end
       else begin
         Printf.printf "%s: v3 store, %d segment(s), %d valid line(s), %d torn, %d corrupt\n"
           journal (List.length s.J.segments) totals.J.valid totals.J.torn
           totals.J.corrupt;
         if not s.J.manifest_ok then
           print_endline "manifest: missing or unreadable";
         List.iter
           (fun (seg : J.segment_fsck) ->
             Printf.printf "  %s [%s]: %d valid, %d torn, %d corrupt%s%s\n"
               seg.J.segment (J.standing_label seg.J.standing)
               seg.J.counts.J.valid seg.J.counts.J.torn seg.J.counts.J.corrupt
               (if seg.J.crc_ok then "" else ", crc mismatch")
               (if seg.J.dropped > 0 then
                  Printf.sprintf ", repaired: dropped %d line(s)" seg.J.dropped
                else ""))
           s.J.segments;
         if (not pre_clean) && s.J.repaired then
           print_endline "repaired: segments healed and manifest resealed"
       end);
    if pre_clean || (repair && s.J.repaired) then exit 0
    else if repair then exit 0
    else begin
      (match format with
       | `Text ->
         print_endline
           "journal is damaged; re-run with --repair to heal it"
       | `Json -> ());
      exit 1
    end
  in
  let journal =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"JOURNAL"
          ~doc:"Path of the journal to check: a JSONL file or a v3 store.")
  in
  let repair =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:
            "Heal the journal when torn or corrupt lines are found: a single \
             file is truncated to its valid prefix (atomically); a v3 store \
             has each damaged segment truncated individually, orphan segments \
             dropped, and the manifest resealed.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Report format: $(b,text) (default) or $(b,json) (one object \
             with totals and a per-segment array).")
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Verify a campaign journal line by line (JSON shape and per-line \
          CRC-32) and, for a v3 store, segment by segment against the \
          manifest CRCs; --repair heals what is damaged, --format json \
          reports per-segment counts machine-readably.")
    Term.(const run $ journal $ repair $ format)

let suggest_cmd =
  let run sut seed =
    let vocabulary = Suts.Vocabulary.for_sut sut in
    if vocabulary = [] then begin
      prerr_endline
        (Printf.sprintf "%s has no name-oriented directives to suggest about"
           sut.Suts.Sut.sut_name);
      exit 1
    end;
    let rng = Conferr_util.Rng.create seed in
    print_string
      (Conferr.Suggest.render (Conferr.Suggest.recoverability ~vocabulary ~rng ()))
  in
  let sut =
    Arg.(
      required
      & opt (some sut_conv) None
      & info [ "sut" ] ~docv:"SUT" ~doc:"System under test.")
  in
  Cmd.v
    (Cmd.info "suggest"
       ~doc:
         "Estimate how many directive-name typos a did-you-mean suggester would \
          repair for one SUT.")
    Term.(const run $ sut $ seed_arg)

let read_file ?(missing_exit = 1) path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error msg ->
    Printf.eprintf "conferr: %s\n" msg;
    exit missing_exit

let row_of_entry = Conferr_exec.Dashboard.row_of_entry

(* Journals are inputs here, not outputs: a path that cannot be read is
   a usage error (exit 2) under the shared exit-code convention
   (doc/exec.md). *)
let load_journal path =
  require_journal_file path;
  try Conferr_exec.Journal.load path
  with Sys_error msg ->
    Printf.eprintf "conferr: %s\n" msg;
    exit 2

let report_cmd =
  let check_trace_file path =
    let text = read_file ~missing_exit:2 path in
    match Conferr_exec.Json.of_string (String.trim text) with
    | Error msg ->
      Printf.eprintf "conferr: %s: %s\n" path msg;
      exit 1
    | Ok json ->
      (match Conferr_exec.Json.member "traceEvents" json with
       | Some (Conferr_exec.Json.Arr events) ->
         Printf.printf "trace OK: %d event(s)\n" (List.length events)
       | _ ->
         Printf.eprintf "conferr: %s: no traceEvents array\n" path;
         exit 1)
  in
  let run sut seed journal html metrics check_trace =
    match (check_trace, journal, sut) with
    | Some path, _, _ -> check_trace_file path
    | None, Some jpath, _ ->
      let rows = List.map row_of_entry (load_journal jpath) in
      let metrics_text = Option.map (fun p -> read_file ~missing_exit:2 p) metrics in
      let title = "conferr campaign \xe2\x80\x94 " ^ Filename.basename jpath in
      (try Conferr_obsv.Report.write_file ~title ~rows ?metrics_text html
       with Sys_error msg ->
         Printf.eprintf "conferr: %s\n" msg;
         exit 1);
      Printf.printf "wrote %s (%d row(s))\n" html (List.length rows)
    | None, None, Some sut ->
      let semantic_codec =
        match sut.Suts.Sut.sut_name with
        | "bind" -> Some (Dnsmodel.Codec.bind ~zones:Suts.Mini_bind.zones)
        | "djbdns" -> Some (Dnsmodel.Codec.tinydns ~file:Suts.Mini_djbdns.data_file)
        | _ -> None
      in
      let excluded_variations =
        if sut.Suts.Sut.sut_name = "apache" then
          [ Errgen.Variations.Reorder_sections ]
        else []
      in
      let report =
        Conferr.Report.generate ~seed ~excluded_variations ?semantic_codec sut
      in
      print_string (Conferr.Report.render report)
    | None, None, None ->
      prerr_endline
        "conferr: report needs --sut (full text report), --journal (HTML \
         dashboard) or --check-trace";
      exit 2
  in
  let sut =
    Arg.(
      value
      & opt (some sut_conv) None
      & info [ "sut" ] ~docv:"SUT"
          ~doc:"System under test for the full text report.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"PATH"
          ~doc:
            "Render the HTML resilience dashboard from this campaign journal \
             instead of running campaigns (doc/obsv.md).")
  in
  let html =
    Arg.(
      value & opt string "report.html"
      & info [ "html" ] ~docv:"PATH"
          ~doc:"Output path of the HTML dashboard (with --journal).")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"PATH"
          ~doc:
            "Prometheus snapshot written by a campaign's --metrics flag; \
             feeds the dashboard's hardening panels (with --journal).")
  in
  let check_trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "check-trace" ] ~docv:"PATH"
          ~doc:
            "Validate a Chrome trace-event file written by --trace and print \
             its event count.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Generate the full assessment report for one SUT (all campaigns), \
          or render the HTML dashboard for a recorded campaign journal.")
    Term.(const run $ sut $ seed_arg $ journal $ html $ metrics $ check_trace)

(* ------------------------------------------------------------------ *)
(* Static analysis (doc/lint.md).  lint and gaps share the repo-wide
   exit-code convention: 0 clean, 1 findings, 2 usage error. *)

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FORMAT" ~doc:"Output format, $(b,text) or $(b,json).")

(* lint and analyze additionally speak SARIF 2.1.0 (doc/lint.md); the
   other subcommands keep the plain text/json pair. *)
let lint_format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ]) `Text
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:"Output format: $(b,text), $(b,json) or $(b,sarif) (2.1.0).")

let deep_arg doc = Arg.(value & flag & info [ "deep" ] ~doc)

let required_sut = function
  | Some sut -> sut
  | None ->
    prerr_endline "conferr: --sut SUT is required";
    exit 2

let rules_for sut =
  match Suts.Lint_rules.for_sut sut.Suts.Sut.sut_name with
  | Some rules -> rules
  | None ->
    Printf.eprintf "conferr: no rule set for SUT %s\n" sut.Suts.Sut.sut_name;
    exit 2

(* The scenario set a campaign journal was recorded from is re-derived
   by Conferr.Faultload.journal_scenarios — gaps, infer and repair all
   replay journals against it, so the derivation lives in one module. *)
let regenerate_scenarios ~seed sut base =
  Conferr.Faultload.journal_scenarios ~seed sut base

(* Parse one configuration set for linting: the SUT's default files,
   with any FILE arguments (matched to config files by base name)
   substituted in.  A file that does not parse is not fatal — it becomes
   a SYNTAX finding at the file root, like any other diagnostic. *)
let lint_parse sut overrides =
  List.fold_left
    (fun (set, syntax) (name, fmt) ->
      let text =
        match List.assoc_opt name overrides with
        | Some t -> t
        | None ->
          Option.value ~default:""
            (List.assoc_opt name sut.Suts.Sut.default_config)
      in
      match fmt.Formats.Registry.parse text with
      | Ok tree -> (Conftree.Config_set.add set name tree, syntax)
      | Error e ->
        ( set,
          {
            Conferr_lint.Finding.rule_id = "SYNTAX";
            severity = Conferr_lint.Finding.Error;
            file = name;
            path = [];
            address = "/";
            message = Formats.Parse_error.to_string e;
            suggestion = None;
            related = [];
          }
          :: syntax ))
    (Conftree.Config_set.empty, [])
    sut.Suts.Sut.config_files

let lint_cmd =
  let run sut files format fail_on rules_file deep =
    let sut = required_sut sut in
    let rules =
      match rules_file with
      | None -> rules_for sut
      | Some path ->
        (match Conferr_lint.Rule_file.load (read_file ~missing_exit:2 path) with
        | Ok specs -> List.map Conferr_lint.Rule_file.to_rule specs
        | Error msg ->
          Printf.eprintf "conferr: %s: %s\n" path msg;
          exit 2)
    in
    let rules =
      if deep then Suts.Dataflow_rules.deepen sut.Suts.Sut.sut_name rules
      else rules
    in
    let overrides =
      List.map
        (fun path ->
          let name = Filename.basename path in
          if not (List.mem_assoc name sut.Suts.Sut.config_files) then begin
            Printf.eprintf
              "conferr: %s: %s is not a configuration file of %s (expected: %s)\n"
              path name sut.Suts.Sut.sut_name
              (String.concat ", " (List.map fst sut.Suts.Sut.config_files));
            exit 2
          end;
          (name, read_file ~missing_exit:2 path))
        files
    in
    let set, syntax = lint_parse sut overrides in
    let findings =
      Conferr_lint.Checker.run ~nearest:Conferr.Suggest.nearest ~rules set
    in
    let findings =
      List.sort_uniq
        (Conferr_lint.Finding.compare
           ~file_order:(List.map fst sut.Suts.Sut.config_files))
        (syntax @ findings)
    in
    (match format with
    | `Text -> print_string (Conferr_lint.Checker.render_text findings)
    | `Json ->
      print_endline
        (Conferr_obsv.Json.to_string (Conferr_lint.Checker.to_json findings))
    | `Sarif -> print_string (Conferr_lint.Sarif.render findings));
    if Conferr_lint.Checker.exceeds ~threshold:fail_on findings then exit 1
  in
  let sut =
    Arg.(
      value
      & opt (some sut_conv) None
      & info [ "sut" ] ~docv:"SUT" ~doc:"System under test whose rule set to apply.")
  in
  let files =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:
            "Configuration files to lint, matched to the SUT's configuration \
             files by base name; files not given keep the SUT's default text.  \
             With no $(docv) the SUT's stock configuration is linted.")
  in
  let fail_on =
    Arg.(
      value
      & opt
          (enum
             [
               ("warn", Conferr_lint.Finding.Warning);
               ("error", Conferr_lint.Finding.Error);
             ])
          Conferr_lint.Finding.Error
      & info [ "fail-on" ] ~docv:"SEVERITY"
          ~doc:"Exit 1 when a finding at or above $(docv) (warn or error) exists.")
  in
  let rules_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "rules" ] ~docv:"PATH"
          ~doc:
            "Check against the rule file at $(docv) (the format \
             $(b,conferr infer --emit-rules) writes, doc/infer.md) instead \
             of the SUT's built-in rule set.")
  in
  let deep =
    deep_arg
      "Also apply the SUT's corpus-level (dataflow) rules: relation checks, \
       cross-file shadowing, reference-graph and silent-default taint \
       (doc/lint.md)."
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically check configuration files against the SUT's declarative \
          rule set (doc/lint.md), or against a mined rule file (--rules).  \
          Exit 0 when clean, 1 on findings at or above --fail-on, 2 on usage \
          errors.")
    Term.(const run $ sut $ files $ lint_format_arg $ fail_on $ rules_file $ deep)

(* conferr analyze: the corpus-level pass on its own — the deepened rule
   set over the whole configuration set, plus the abstract-environment
   and reference-graph summaries.  Byte-identical for any --jobs: the
   pool shards per rule and the merged findings are re-sorted with the
   same comparator the sequential path uses. *)
let analyze_cmd =
  let run sut files format fail_on jobs rules_file html metrics =
    let sut = required_sut sut in
    let sut_name = sut.Suts.Sut.sut_name in
    let rules =
      match rules_file with
      | None -> rules_for sut
      | Some path ->
        (match Conferr_lint.Rule_file.load (read_file ~missing_exit:2 path) with
        | Ok specs -> List.map Conferr_lint.Rule_file.to_rule specs
        | Error msg ->
          Printf.eprintf "conferr: %s: %s\n" path msg;
          exit 2)
    in
    let rules = Suts.Dataflow_rules.deepen sut_name rules in
    let overrides =
      List.map
        (fun path ->
          let name = Filename.basename path in
          if not (List.mem_assoc name sut.Suts.Sut.config_files) then begin
            Printf.eprintf
              "conferr: %s: %s is not a configuration file of %s (expected: %s)\n"
              path name sut_name
              (String.concat ", " (List.map fst sut.Suts.Sut.config_files));
            exit 2
          end;
          (name, read_file ~missing_exit:2 path))
        files
    in
    let set, syntax = lint_parse sut overrides in
    let jobs = checked_jobs ~scenario_count:(List.length rules) jobs in
    let findings =
      if jobs <= 1 then
        Conferr_lint.Checker.run ~nearest:Conferr.Suggest.nearest ~rules set
      else
        Conferr_pool.map ~jobs
          (fun _ rule ->
            Conferr_lint.Checker.run ~nearest:Conferr.Suggest.nearest
              ~rules:[ rule ] set)
          (Array.of_list rules)
        |> Array.to_list |> List.concat
    in
    let findings =
      List.sort_uniq
        (Conferr_lint.Finding.compare
           ~file_order:(List.map fst sut.Suts.Sut.config_files))
        (syntax @ findings)
    in
    let env =
      Conferr_lint.Dataflow.env_of_set
        ~specs:(Suts.Dataflow_rules.specs sut_name)
        ~canon:(Suts.Dataflow_rules.canon sut_name)
        set
    in
    let graph =
      Conferr_lint.Refgraph.build set (Suts.Dataflow_rules.edges sut_name set)
    in
    (match format with
    | `Text ->
      print_string (Conferr_lint.Checker.render_text findings);
      Printf.printf "%s\n%s\n"
        (Conferr_lint.Dataflow.summarize env)
        (Conferr_lint.Refgraph.summarize graph)
    | `Json ->
      let open Conferr_obsv.Json in
      print_endline
        (to_string
           (Obj
              [
                ("sut", Str sut_name);
                ("report", Conferr_lint.Checker.to_json findings);
                ("dataflow", Str (Conferr_lint.Dataflow.summarize env));
                ("graph", Str (Conferr_lint.Refgraph.summarize graph));
              ]))
    | `Sarif -> print_string (Conferr_lint.Sarif.render findings));
    Option.iter
      (fun path ->
        let module M = Conferr_obsv.Metrics in
        let registry = M.create () in
        M.declare ~help:"Corpus-level (dataflow) findings by rule" registry
          M.Counter "conferr_dataflow_findings_total";
        let ids = Suts.Dataflow_rules.dataflow_ids sut_name in
        List.iter
          (fun (f : Conferr_lint.Finding.t) ->
            if List.mem f.rule_id ids then
              M.inc
                ~labels:[ ("rule", f.rule_id); ("sut", sut_name) ]
                registry "conferr_dataflow_findings_total")
          findings;
        try M.write_file registry path
        with Sys_error msg ->
          Printf.eprintf "conferr: %s\n" msg;
          exit 2)
      metrics;
    Option.iter
      (fun path ->
        let analysis =
          List.map
            (fun (f : Conferr_lint.Finding.t) ->
              {
                Conferr_obsv.Report.an_rule = f.rule_id;
                an_severity = Conferr_lint.Finding.severity_label f.severity;
                an_file = f.file;
                an_address = f.address;
                an_message = f.message;
                an_related =
                  String.concat ", "
                    (List.map (fun (fl, ad) -> fl ^ ":" ^ ad) f.related);
              })
            findings
        in
        let title = "conferr analyze \xe2\x80\x94 " ^ sut_name in
        try Conferr_obsv.Report.write_file ~title ~rows:[] ~analysis path
        with Sys_error msg ->
          Printf.eprintf "conferr: %s\n" msg;
          exit 2)
      html;
    if Conferr_lint.Checker.exceeds ~threshold:fail_on findings then exit 1
  in
  let sut =
    Arg.(
      value
      & opt (some sut_conv) None
      & info [ "sut" ] ~docv:"SUT"
          ~doc:"System under test whose deep rule profile to apply.")
  in
  let files =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:
            "Configuration files to analyze, matched to the SUT's \
             configuration files by base name (like $(b,conferr lint)); with \
             no $(docv) the SUT's stock configuration set is analyzed.")
  in
  let fail_on =
    Arg.(
      value
      & opt
          (enum
             [
               ("warn", Conferr_lint.Finding.Warning);
               ("error", Conferr_lint.Finding.Error);
             ])
          Conferr_lint.Finding.Error
      & info [ "fail-on" ] ~docv:"SEVERITY"
          ~doc:"Exit 1 when a finding at or above $(docv) (warn or error) exists.")
  in
  let rules_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "rules" ] ~docv:"PATH"
          ~doc:
            "Analyze against the rule file at $(docv) (which may carry \
             $(b,relation) entries, doc/lint.md) instead of the SUT's \
             built-in base rules; the SUT's deep profile is added either way.")
  in
  let html =
    Arg.(
      value
      & opt (some string) None
      & info [ "html" ] ~docv:"PATH"
          ~doc:
            "Also write the HTML dashboard with the corpus-analysis panel to \
             $(docv).")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"PATH"
          ~doc:
            "Write a Prometheus snapshot of conferr_dataflow_findings_total \
             to $(docv).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Corpus-level static analysis of a whole configuration set \
          (doc/lint.md): abstract values per directive, linear relation \
          checks across parameters and files, cross-file reference graph \
          (dangling targets, cycles, shadowing) and silent-default taint.  \
          Exit 0 when clean, 1 on findings at or above --fail-on, 2 on usage \
          errors.")
    Term.(
      const run $ sut $ files $ lint_format_arg $ fail_on $ jobs_arg
      $ rules_file $ html $ metrics)

let gaps_cmd =
  let run sut journal seed format jobs html metrics deep =
    let sut = required_sut sut in
    let rules = rules_for sut in
    let jpath =
      match journal with
      | Some p -> p
      | None ->
        prerr_endline "conferr: gaps requires --journal PATH (a recorded campaign)";
        exit 2
    in
    let entries = load_journal jpath in
    match Conferr.Engine.parse_default_config sut with
    | Error msg ->
      Printf.eprintf "conferr: %s\n" msg;
      exit 2
    | Ok base ->
      let report =
        Conferr_lint_replay.scan
          ~jobs:(checked_jobs ~scenario_count:(List.length entries) jobs)
          ~nearest:Conferr.Suggest.nearest ~deep ~sut ~rules
          ~scenarios:(regenerate_scenarios ~seed sut base)
          ~entries ~base ()
      in
      (match format with
      | `Text -> print_string (Conferr_lint_replay.render report)
      | `Json ->
        print_endline
          (Conferr_obsv.Json.to_string (Conferr_lint_replay.to_json report)));
      let dataflow_ids =
        if deep then Suts.Dataflow_rules.dataflow_ids sut.Suts.Sut.sut_name
        else []
      in
      Option.iter
        (fun path ->
          let registry = Conferr_obsv.Metrics.create () in
          Conferr_lint_replay.record_metrics ~dataflow_ids registry report;
          try Conferr_obsv.Metrics.write_file registry path
          with Sys_error msg ->
            Printf.eprintf "conferr: %s\n" msg;
            exit 2)
        metrics;
      Option.iter
        (fun path ->
          let rows = List.map row_of_entry entries in
          let title =
            "conferr validator gaps \xe2\x80\x94 " ^ Filename.basename jpath
          in
          let analysis =
            if not deep then None
            else
              Some
                (List.concat_map
                   (fun (r : Conferr_lint_replay.row) ->
                     List.filter_map
                       (fun (f : Conferr_lint.Finding.t) ->
                         if List.mem f.rule_id dataflow_ids then
                           Some
                             {
                               Conferr_obsv.Report.an_rule = f.rule_id;
                               an_severity =
                                 Conferr_lint.Finding.severity_label f.severity;
                               an_file = f.file;
                               an_address = f.address;
                               an_message = f.message;
                               an_related =
                                 String.concat ", "
                                   (List.map
                                      (fun (fl, ad) -> fl ^ ":" ^ ad)
                                      f.related);
                             }
                         else None)
                       r.findings)
                   report.Conferr_lint_replay.rows)
          in
          try
            Conferr_obsv.Report.write_file ~title ~rows
              ~gaps:(Conferr_lint_replay.dashboard_rows report)
              ?analysis path
          with Sys_error msg ->
            Printf.eprintf "conferr: %s\n" msg;
            exit 2)
        html;
      if Conferr_lint_replay.gap_total report > 0 then exit 1
  in
  let sut =
    Arg.(
      value
      & opt (some sut_conv) None
      & info [ "sut" ] ~docv:"SUT" ~doc:"System under test the journal was recorded for.")
  in
  let html =
    Arg.(
      value
      & opt (some string) None
      & info [ "html" ] ~docv:"PATH"
          ~doc:
            "Also write the HTML dashboard with the validator-gaps panel to \
             $(docv).")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"PATH"
          ~doc:
            "Write a Prometheus snapshot of the gap counters \
             (conferr_gap_total, conferr_lint_findings_total, and with \
             --deep conferr_dataflow_findings_total) to $(docv).")
  in
  let deep =
    deep_arg
      "Replay with the SUT's corpus-level (dataflow) rules added: relation \
       violations carry both ConfPaths, and silent acceptances predicted by \
       a gap-claiming deep rule are reclassified as agreements \
       (doc/lint.md)."
  in
  Cmd.v
    (Cmd.info "gaps"
       ~doc:
         "Replay a recorded campaign journal through the static checker and \
          diff the static verdict against each dynamic outcome: silent \
          acceptances, late failures and over-strict rejections (doc/lint.md).  \
          Scenarios are regenerated from --seed, which must match the \
          campaign's.  Exit 0 when the two sides agree everywhere, 1 when \
          gaps were found, 2 on usage errors.")
    Term.(
      const run $ sut $ journal_arg $ seed_arg $ format_arg $ jobs_arg $ html
      $ metrics $ deep)

let infer_cmd =
  let run sut journals seed format jobs min_support min_confidence emit_rules
      html metrics =
    let sut = required_sut sut in
    let rules = rules_for sut in
    if journals = [] then begin
      prerr_endline
        "conferr: infer requires at least one --journal PATH (a recorded \
         campaign)";
      exit 2
    end;
    if min_support < 1 then begin
      prerr_endline "conferr: --min-support must be at least 1";
      exit 2
    end;
    if min_confidence < 0. || min_confidence > 1. then begin
      prerr_endline "conferr: --min-confidence must be within [0; 1]";
      exit 2
    end;
    let entries = List.concat_map load_journal journals in
    match Conferr.Engine.parse_default_config sut with
    | Error msg ->
      Printf.eprintf "conferr: %s\n" msg;
      exit 2
    | Ok base ->
      let result =
        Conferr_infer.Pipeline.run
          ~jobs:(checked_jobs ~scenario_count:(List.length entries) jobs)
          ~nearest:Conferr.Suggest.nearest ~sut ~rules
          ~scenarios:(regenerate_scenarios ~seed sut base)
          ~entries ~base
          ~thresholds:{ Conferr_infer.Confidence.min_support; min_confidence }
          ()
      in
      (match format with
      | `Text -> print_string (Conferr_infer.Infer_report.render result)
      | `Json ->
        print_endline
          (Conferr_obsv.Json.to_string
             (Conferr_infer.Infer_report.to_json result)));
      Option.iter
        (fun path ->
          let specs = Conferr_infer.Infer_report.rule_specs result in
          let text =
            Conferr_lint.Rule_file.save ~sut:sut.Suts.Sut.sut_name specs
          in
          (try
             let oc = open_out_bin path in
             Fun.protect
               ~finally:(fun () -> close_out_noerr oc)
               (fun () -> output_string oc text)
           with Sys_error msg ->
             Printf.eprintf "conferr: %s\n" msg;
             exit 2);
          Printf.eprintf "conferr: wrote %d rule(s) to %s\n"
            (List.length specs) path)
        emit_rules;
      Option.iter
        (fun path ->
          let registry = Conferr_obsv.Metrics.create () in
          Conferr_infer.Infer_report.record_metrics registry result;
          try Conferr_obsv.Metrics.write_file registry path
          with Sys_error msg ->
            Printf.eprintf "conferr: %s\n" msg;
            exit 2)
        metrics;
      Option.iter
        (fun path ->
          let rows = List.map row_of_entry entries in
          let title =
            "conferr inferred constraints \xe2\x80\x94 "
            ^ String.concat ", " (List.map Filename.basename journals)
          in
          try
            Conferr_obsv.Report.write_file ~title ~rows
              ~infer:
                (Conferr_infer.Infer_report.dashboard_rows ~hand:rules result)
              path
          with Sys_error msg ->
            Printf.eprintf "conferr: %s\n" msg;
            exit 2)
        html;
      let diff = result.Conferr_infer.Pipeline.diff in
      if
        diff.Conferr_infer.Differ.contradicted <> []
        || diff.Conferr_infer.Differ.missed_by_hand <> []
        || diff.Conferr_infer.Differ.missed_by_inference <> []
      then exit 1
  in
  let sut =
    Arg.(
      value
      & opt (some sut_conv) None
      & info [ "sut" ] ~docv:"SUT"
          ~doc:"System under test the journal(s) were recorded for.")
  in
  let journals =
    Arg.(
      value & opt_all string []
      & info [ "journal" ] ~docv:"PATH"
          ~doc:
            "Recorded campaign journal to mine; repeatable to pool evidence \
             from several campaigns of the same SUT.")
  in
  let min_support =
    Arg.(
      value & opt int 1
      & info [ "min-support" ] ~docv:"N"
          ~doc:"Drop candidates supported by fewer than $(docv) observations.")
  in
  let min_confidence =
    Arg.(
      value & opt float 0.5
      & info [ "min-confidence" ] ~docv:"C"
          ~doc:
            "Drop candidates whose support / (support + contradictions) ratio \
             is below $(docv) (within [0; 1]).")
  in
  let emit_rules =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-rules" ] ~docv:"PATH"
          ~doc:
            "Write the expressible candidates as a loadable rule file to \
             $(docv); check it with $(b,conferr lint --rules) $(docv).")
  in
  let html =
    Arg.(
      value
      & opt (some string) None
      & info [ "html" ] ~docv:"PATH"
          ~doc:
            "Also write the HTML dashboard with the inferred-constraints \
             panel to $(docv).")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"PATH"
          ~doc:
            "Write a Prometheus snapshot of the inference counters \
             (conferr_infer_candidates_total, conferr_infer_rule_diff_total) \
             to $(docv).")
  in
  Cmd.v
    (Cmd.info "infer"
       ~doc:
         "Mine recorded campaign journals for configuration constraints and \
          diff the inferred candidates against the SUT's hand-written rule \
          set (doc/infer.md).  Scenarios are regenerated from --seed, which \
          must match the campaigns'.  Exit 0 when every hand-written rule is \
          recovered and nothing was missed by either side, 1 when the sets \
          differ, 2 on usage errors.")
    Term.(
      const run $ sut $ journals $ seed_arg $ format_arg $ jobs_arg
      $ min_support $ min_confidence $ emit_rules $ html $ metrics)

let repair_cmd =
  let run sut files journal ids seed format jobs rules_file apply html metrics
      deep =
    let sut = required_sut sut in
    let rules, specs =
      match rules_file with
      | None -> (rules_for sut, [])
      | Some path ->
        (match Conferr_lint.Rule_file.load (read_file ~missing_exit:2 path) with
        | Ok specs -> (List.map Conferr_lint.Rule_file.to_rule specs, specs)
        | Error msg ->
          Printf.eprintf "conferr: %s: %s\n" path msg;
          exit 2)
    in
    (* Opt-in: deepened rules make violated relations visible to the
       generator, which turns them into multi-edit candidates. *)
    let rules =
      if deep then Suts.Dataflow_rules.deepen sut.Suts.Sut.sut_name rules
      else rules
    in
    (match (files, journal) with
    | [], None ->
      prerr_endline
        "conferr: repair needs FILE arguments (broken configuration files) or \
         --journal PATH (a recorded campaign)";
      exit 2
    | _ :: _, Some _ ->
      prerr_endline "conferr: give FILE arguments or --journal, not both";
      exit 2
    | _ -> ());
    if apply && journal <> None then begin
      prerr_endline
        "conferr: --apply rewrites the given FILE arguments and has no \
         meaning in --journal mode";
      exit 2
    end;
    let stock =
      match Conferr.Engine.parse_default_config sut with
      | Error msg ->
        Printf.eprintf "conferr: %s\n" msg;
        exit 2
      | Ok base -> base
    in
    let paths_by_name = ref [] in
    let targets =
      match journal with
      | None ->
        let overrides =
          List.map
            (fun path ->
              let name = Filename.basename path in
              if not (List.mem_assoc name sut.Suts.Sut.config_files) then begin
                Printf.eprintf
                  "conferr: %s: %s is not a configuration file of %s \
                   (expected: %s)\n"
                  path name sut.Suts.Sut.sut_name
                  (String.concat ", " (List.map fst sut.Suts.Sut.config_files));
                exit 2
              end;
              paths_by_name := (name, path) :: !paths_by_name;
              (name, read_file ~missing_exit:2 path))
            files
        in
        (* Files that fail to parse are simply absent from the set: the
           whole-file restoration candidate covers them. *)
        let set, _syntax = lint_parse sut overrides in
        let id =
          String.concat "+" (List.map Filename.basename files)
        in
        [ Conferr_repair.Pipeline.file_target ~id set ]
      | Some jpath ->
        let entries = load_journal jpath in
        List.iter
          (fun id ->
            if
              not
                (List.exists
                   (fun (e : Conferr_exec.Journal.entry) -> e.scenario_id = id)
                   entries)
            then begin
              Printf.eprintf "conferr: no journal entry with id '%s'\n" id;
              exit 2
            end)
          ids;
        Conferr_repair.Pipeline.journal_targets ~ids
          ~scenarios:(regenerate_scenarios ~seed sut stock)
          ~stock entries
    in
    let result =
      Conferr_repair.Pipeline.run
        ~jobs:(checked_jobs ~scenario_count:(List.length targets) jobs)
        ~nearest:Conferr.Suggest.nearest ~specs ~sut ~rules ~stock targets
    in
    (match format with
    | `Text -> print_string (Conferr_repair.Repair_report.render result)
    | `Json ->
      print_endline
        (Conferr_obsv.Json.to_string
           (Conferr_repair.Repair_report.to_json result)));
    if apply then
      List.iter
        (fun (r : Conferr_repair.Pipeline.repair) ->
          match r.r_chosen with
          | Some v ->
            List.iter
              (fun (name, text) ->
                match List.assoc_opt name !paths_by_name with
                | None -> ()
                | Some path ->
                  (try
                     let oc = open_out_bin path in
                     Fun.protect
                       ~finally:(fun () -> close_out_noerr oc)
                       (fun () -> output_string oc text)
                   with Sys_error msg ->
                     Printf.eprintf "conferr: %s\n" msg;
                     exit 2);
                  Printf.eprintf "conferr: wrote repaired %s\n" path)
              v.Conferr_repair.Validate.files
          | None -> ())
        result.Conferr_repair.Pipeline.repairs;
    Option.iter
      (fun path ->
        let registry = Conferr_obsv.Metrics.create () in
        Conferr_repair.Repair_report.record_metrics registry result;
        try Conferr_obsv.Metrics.write_file registry path
        with Sys_error msg ->
          Printf.eprintf "conferr: %s\n" msg;
          exit 2)
      metrics;
    Option.iter
      (fun path ->
        let title = "conferr repairs \xe2\x80\x94 " ^ sut.Suts.Sut.sut_name in
        try
          Conferr_obsv.Report.write_file ~title ~rows:[]
            ~repairs:(Conferr_repair.Repair_report.dashboard_rows result)
            path
        with Sys_error msg ->
          Printf.eprintf "conferr: %s\n" msg;
          exit 2)
      html;
    if not (Conferr_repair.Pipeline.all_repaired result) then exit 1
  in
  let sut =
    Arg.(
      value
      & opt (some sut_conv) None
      & info [ "sut" ] ~docv:"SUT"
          ~doc:"System under test whose configuration is being repaired.")
  in
  let files =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:
            "Broken configuration files to repair, matched to the SUT's \
             configuration files by base name (like $(b,conferr lint)); \
             files not given keep the SUT's default text.")
  in
  let ids =
    Arg.(
      value & opt_all string []
      & info [ "id" ] ~docv:"ID"
          ~doc:
            "Repair only the journal entry with this scenario id; repeatable.  \
             Default: every entry in the journal.")
  in
  let rules_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "rules" ] ~docv:"PATH"
          ~doc:
            "Validate repairs against the rule file at $(docv) (the format \
             $(b,conferr infer --emit-rules) writes) instead of the SUT's \
             built-in rule set; its implies-present rules also seed \
             multi-edit cluster candidates.")
  in
  let apply =
    Arg.(
      value & flag
      & info [ "apply" ]
          ~doc:
            "Write each repaired configuration back over the FILE argument it \
             came from (FILE mode only).")
  in
  let html =
    Arg.(
      value
      & opt (some string) None
      & info [ "html" ] ~docv:"PATH"
          ~doc:"Also write the HTML dashboard with the repairs panel to $(docv).")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"PATH"
          ~doc:
            "Write a Prometheus snapshot of the repair counters \
             (conferr_repair_targets_total, conferr_repair_edits_total, \
             conferr_repair_candidates_total) to $(docv).")
  in
  let deep =
    deep_arg
      "Also apply the SUT's corpus-level (dataflow) rules; a violated \
       relation seeds a multi-edit candidate restoring every parameter the \
       relation mentions (doc/repair.md)."
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Synthesize the minimal edit sequence that makes a broken \
          configuration lint-clean and accepted by the SUT's sandboxed \
          validation (doc/repair.md).  Takes broken files directly, or \
          reproduces them from a recorded campaign journal (--journal, \
          scenarios regenerated from --seed which must match the \
          campaign's).  Exit 0 when every target was repaired or already \
          clean, 1 when some target is unrepairable, 2 on usage errors.")
    Term.(
      const run $ sut $ files $ journal_arg $ ids $ seed_arg $ format_arg
      $ jobs_arg $ rules_file $ apply $ html $ metrics $ deep)

(* ------------------------------------------------------------------ *)
(* Service mode (doc/serve.md).  serve runs the daemon; the client
   subcommands talk to a running daemon over its JSON API. *)

module Json = Conferr_obsv.Json

let serve_cmd =
  let run jobs port port_file state_dir max_campaigns segment_bytes
      inject_disk_fault =
    let jobs = checked_jobs jobs in
    if port < 0 || port > 65535 then begin
      prerr_endline "conferr: --port must be within [0; 65535] (0 = ephemeral)";
      exit 2
    end;
    if max_campaigns < 1 then begin
      prerr_endline "conferr: --max-campaigns must be at least 1";
      exit 2
    end;
    let segment_bytes = checked_segment_bytes segment_bytes in
    if Sys.file_exists state_dir && not (Sys.is_directory state_dir) then begin
      Printf.eprintf
        "conferr: --state-dir %s exists and is not a directory\n" state_dir;
      exit 2
    end;
    (* Test hook for the durability smoke: the first campaign submitted
       gets a journal whose storage always reports ENOSPC, so the smoke
       can assert it fails while its co-tenant completes untouched. *)
    let journal_io =
      if not inject_disk_fault then fun _ -> None
      else fun cid ->
        if cid <> "c0001" then None
        else
          let settings =
            {
              Conferr_harden.Diskchaos.default_settings with
              rate = 1.0;
              faults = [ Conferr_harden.Diskchaos.Enospc ];
            }
          in
          Some
            (fst
               (Conferr_harden.Diskchaos.wrap ~settings
                  Conferr_harden.Diskchaos.real))
    in
    let daemon =
      try
        Conferr_serve.Daemon.create ~jobs ~max_campaigns ?segment_bytes
          ~journal_io ~state_dir ()
      with
      | Unix.Unix_error (err, _, _) ->
        Printf.eprintf "conferr: cannot create state dir %s: %s\n" state_dir
          (Unix.error_message err);
        exit 2
      | Sys_error msg ->
        Printf.eprintf "conferr: cannot create state dir: %s\n" msg;
        exit 2
    in
    (try
       Conferr_serve.Daemon.listen daemon ~port ?port_file
         ~banner:(fun bound ->
           Printf.printf
             "conferr serve: listening on 127.0.0.1:%d (%d worker domain(s), \
              max %d concurrent campaign(s), state in %s)\n%!"
             bound jobs max_campaigns state_dir)
         ()
     with Unix.Unix_error (err, _, _) ->
       Printf.eprintf "conferr: cannot listen on port %d: %s\n" port
         (Unix.error_message err);
       exit 1);
    print_endline "conferr serve: drained, journals checkpointed"
  in
  let port =
    Arg.(
      value & opt int 8080
      & info [ "port" ] ~docv:"PORT"
          ~doc:"TCP port to listen on (127.0.0.1 only); 0 picks an ephemeral \
                port.")
  in
  let port_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "port-file" ] ~docv:"PATH"
          ~doc:"Write the bound port number to $(docv) once listening (for \
                scripts using --port 0).")
  in
  let state_dir =
    Arg.(
      value & opt string "conferr-serve"
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:"Directory for per-campaign journals (created if missing).")
  in
  let max_campaigns =
    Arg.(
      value & opt int 4
      & info [ "max-campaigns" ] ~docv:"N"
          ~doc:"Most campaigns queued or running at once; submissions beyond \
                it are answered 429 with Retry-After.")
  in
  let inject_disk_fault =
    Arg.(
      value & flag
      & info [ "inject-disk-fault" ]
          ~doc:
            "Test hook: the first submitted campaign's journal storage \
             always reports ENOSPC, so smoke tests can assert that a \
             journal fault fails only that campaign while co-tenants \
             complete (doc/harden.md).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the campaign service daemon: one shared pool of worker domains, \
          multiple concurrent campaigns as round-robin tenants, a JSON API \
          with streaming progress, live /metrics and /dashboard, graceful \
          SIGTERM drain (doc/serve.md).")
    Term.(
      const run $ jobs_arg $ port $ port_file $ state_dir $ max_campaigns
      $ segment_bytes_arg $ inject_disk_fault)

(* Client-side plumbing: every client subcommand targets one daemon. *)

let port_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"Port of the running daemon.")

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Address of the running daemon.")

let id_pos =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"ID" ~doc:"Campaign id, as returned by submit.")

let client_fail msg =
  Printf.eprintf "conferr: %s\n" msg;
  exit 1

(* Shared exit-code convention: 2xx exits 0, anything else exits 1 after
   printing the body (the daemon's JSON error objects are one line). *)
let print_json_exit (status, json) =
  print_endline (Json.to_string json);
  if status >= 200 && status < 300 then () else exit 1

let submit_cmd =
  let run host port sut seed jobs_cap quorum breaker timeout retries fuel =
    let members =
      List.filter_map Fun.id
        [
          Some ("sut", Json.Str sut);
          Some ("seed", Json.Num (float_of_int seed));
          Option.map (fun n -> ("jobs", Json.Num (float_of_int n))) jobs_cap;
          Option.map (fun n -> ("quorum", Json.Num (float_of_int n))) quorum;
          Option.map (fun n -> ("breaker", Json.Num (float_of_int n))) breaker;
          Option.map (fun s -> ("timeout", Json.Num s)) timeout;
          Option.map (fun n -> ("retries", Json.Num (float_of_int n))) retries;
          Option.map (fun n -> ("fuel", Json.Num (float_of_int n))) fuel;
        ]
    in
    match
      Conferr_serve.Client.post_json ~host ~port ~path:"/campaigns"
        (Json.Obj members) ()
    with
    | Error msg -> client_fail msg
    | Ok reply -> print_json_exit reply
  in
  let sut =
    Arg.(
      required
      & opt (some string) None
      & info [ "sut" ] ~docv:"SUT" ~doc:"System under test (validated by the \
                                         daemon).")
  in
  let opt_int name doc =
    Arg.(value & opt (some int) None & info [ name ] ~docv:"N" ~doc)
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-scenario deadline of this campaign (0 = off).")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a campaign to a running daemon; prints the accepted \
          campaign's status object (id, policy, journal path).")
    Term.(
      const run $ host_arg $ port_arg $ sut $ seed_arg
      $ opt_int "jobs-cap" "Concurrent scenarios of this campaign on the \
                            shared pool."
      $ opt_int "quorum" "Total attempts for crash-suspect outcomes (1 = off)."
      $ opt_int "breaker" "Consecutive-crash breaker threshold (0 = off)."
      $ timeout
      $ opt_int "retries" "Extra attempts after a timeout."
      $ opt_int "fuel" "Cooperative step budget per execution (0 = off).")

let status_cmd =
  let run host port id =
    let path =
      match id with None -> "/campaigns" | Some id -> "/campaigns/" ^ id
    in
    match Conferr_serve.Client.get_json ~host ~port ~path () with
    | Error msg -> client_fail msg
    | Ok reply -> print_json_exit reply
  in
  let id =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Campaign id; omit to list every campaign.")
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:"Show one campaign's status object, or list all campaigns.")
    Term.(const run $ host_arg $ port_arg $ id)

let results_cmd =
  let run host port id =
    match
      Conferr_serve.Client.get_json ~host ~port
        ~path:("/campaigns/" ^ id ^ "/results") ()
    with
    | Error msg -> client_fail msg
    | Ok reply -> print_json_exit reply
  in
  Cmd.v
    (Cmd.info "results"
       ~doc:"Fetch a finished campaign's outcome tally and per-scenario \
             results as JSON.")
    Term.(const run $ host_arg $ port_arg $ id_pos)

let watch_cmd =
  let run host port id from =
    match
      Conferr_serve.Client.stream ~host ~port
        ~path:(Printf.sprintf "/campaigns/%s/events?from=%d" id from)
        ~on_line:print_endline ()
    with
    | Error msg -> client_fail msg
    | Ok 200 -> ()
    | Ok status -> client_fail (Printf.sprintf "daemon answered %d" status)
  in
  let from =
    Arg.(
      value & opt int 0
      & info [ "from" ] ~docv:"N"
          ~doc:"Skip the first $(docv) events (resume an interrupted watch).")
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Stream a campaign's progress events as JSON lines until it \
          finishes; the last line is the terminal campaign event.")
    Term.(const run $ host_arg $ port_arg $ id_pos $ from)

let cancel_cmd =
  let run host port id =
    match
      Conferr_serve.Client.post_json ~host ~port
        ~path:("/campaigns/" ^ id ^ "/cancel")
        (Json.Obj []) ()
    with
    | Error msg -> client_fail msg
    | Ok reply -> print_json_exit reply
  in
  Cmd.v
    (Cmd.info "cancel"
       ~doc:"Drop a campaign's queued scenarios (running ones finish); its \
             journal keeps the completed prefix and stays resumable.")
    Term.(const run $ host_arg $ port_arg $ id_pos)

let get_cmd =
  let run host port path =
    let path = if String.length path > 0 && path.[0] = '/' then path else "/" ^ path in
    match
      Conferr_serve.Client.request ~host ~port ~meth:"GET" ~path ()
    with
    | Error msg -> client_fail msg
    | Ok (status, _, body) ->
      print_string body;
      if status >= 300 then exit 1
  in
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PATH"
          ~doc:"Raw path to fetch, e.g. /metrics, /dashboard, /healthz or \
                /campaigns/ID/journal.")
  in
  Cmd.v
    (Cmd.info "get"
       ~doc:"Fetch one raw path from the daemon and print the body \
             (scripting helper for /metrics, /dashboard, journals).")
    Term.(const run $ host_arg $ port_arg $ path)

let journal_diff_cmd =
  let run left right =
    require_journal_file left;
    require_journal_file right;
    (* The determinism contract (doc/serve.md) excludes wall-clock
       fields: elapsed and per-phase times vary run to run, everything
       else must match exactly. *)
    let normalize (e : Conferr_exec.Journal.entry) =
      Conferr_exec.Journal.entry_to_json
        { e with elapsed_ms = 0.; phase_ms = [] }
      |> Json.to_string
    in
    let load path = List.map normalize (load_journal path) in
    let l = load left and r = load right in
    if l = r then begin
      Printf.printf "%s and %s: identical (%d entries, wall-clock fields \
                     ignored)\n"
        left right (List.length l);
      exit 0
    end
    else begin
      if List.length l <> List.length r then
        Printf.printf "entry counts differ: %d vs %d\n" (List.length l)
          (List.length r);
      List.iteri
        (fun i (a, b) ->
          if a <> b then begin
            Printf.printf "entry %d differs:\n- %s\n+ %s\n" i a b
          end)
        (List.combine
           (List.filteri (fun i _ -> i < min (List.length l) (List.length r)) l)
           (List.filteri (fun i _ -> i < min (List.length l) (List.length r)) r));
      exit 1
    end
  in
  let left =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"LEFT" ~doc:"First journal.")
  in
  let right =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"RIGHT" ~doc:"Second journal.")
  in
  Cmd.v
    (Cmd.info "journal-diff"
       ~doc:
         "Compare two campaign journals modulo wall-clock fields (elapsed_ms, \
          phase_ms) — the serve determinism check: a daemon journal must \
          equal the one-shot CLI journal for the same campaign.  Exit 0 \
          identical, 1 different, 2 usage.")
    Term.(const run $ left $ right)

let main =
  Cmd.group
    (Cmd.info "conferr" ~version:"1.0.0"
       ~doc:"Assess resilience to human configuration errors (DSN'08 reproduction).")
    [
      list_cmd; profile_cmd; explore_cmd; chaos_cmd; fsck_cmd; benchmark_cmd;
      report_cmd; suggest_cmd; lint_cmd; analyze_cmd; gaps_cmd; infer_cmd;
      repair_cmd;
      table1_cmd;
      table2_cmd;
      table3_cmd; figure3_cmd; all_cmd; variations_cmd; semantic_cmd;
      serve_cmd; submit_cmd; status_cmd; results_cmd; watch_cmd; cancel_cmd;
      get_cmd; journal_diff_cmd;
    ]

let () = exit (Cmd.eval main)
