.PHONY: all build test smoke lint-smoke analyze-smoke serve-smoke \
  infer-smoke repair-smoke durability-smoke check bench clean

all: build

build:
	dune build

test:
	dune runtest

# Four smoke campaigns through the CLI, each campaign run twice so the
# second run must resume from the first's journal and re-execute nothing:
#   1. a fixed faultload through the parallel executor (profile);
#   2. a small feedback-directed search (explore);
#   3. a chaos campaign (10% fault injection into the SUT itself), whose
#      journal must then pass fsck (doc/harden.md);
#   4. an observed explore (--trace/--metrics, doc/obsv.md) whose trace
#      must validate and whose journal+metrics must render the HTML
#      dashboard, from the fresh journal and again after a resume.
smoke: build
	rm -f /tmp/conferr.jsonl /tmp/conferr-explore.jsonl /tmp/conferr-chaos.jsonl
	rm -f /tmp/conferr-obsv.jsonl /tmp/conferr-trace.json \
	  /tmp/conferr-metrics.prom /tmp/conferr-report.html
	dune exec bin/main.exe -- profile --sut postgres --jobs 2 \
	  --journal /tmp/conferr.jsonl --stats
	dune exec bin/main.exe -- profile --sut postgres --jobs 2 \
	  --journal /tmp/conferr.jsonl --resume --stats
	dune exec bin/main.exe -- explore --sut postgres --jobs 2 \
	  --budget 48 --batch 16 --journal /tmp/conferr-explore.jsonl --stats
	dune exec bin/main.exe -- explore --sut postgres --jobs 2 \
	  --budget 48 --batch 16 --journal /tmp/conferr-explore.jsonl --resume --stats
	dune exec bin/main.exe -- chaos --sut postgres --jobs 2 --timeout 0.5 \
	  --journal /tmp/conferr-chaos.jsonl --stats
	dune exec bin/main.exe -- fsck /tmp/conferr-chaos.jsonl
	dune exec bin/main.exe -- chaos --sut postgres --jobs 2 --timeout 0.5 \
	  --journal /tmp/conferr-chaos.jsonl --resume --stats
	dune exec bin/main.exe -- explore --sut postgres --jobs 2 \
	  --budget 48 --batch 16 --journal /tmp/conferr-obsv.jsonl \
	  --trace /tmp/conferr-trace.json --metrics /tmp/conferr-metrics.prom
	dune exec bin/main.exe -- report --check-trace /tmp/conferr-trace.json
	dune exec bin/main.exe -- report --journal /tmp/conferr-obsv.jsonl \
	  --metrics /tmp/conferr-metrics.prom --html /tmp/conferr-report.html
	test -s /tmp/conferr-metrics.prom
	test -s /tmp/conferr-report.html
	dune exec bin/main.exe -- explore --sut postgres --jobs 2 \
	  --budget 48 --batch 16 --journal /tmp/conferr-obsv.jsonl --resume \
	  --trace /tmp/conferr-trace.json --metrics /tmp/conferr-metrics.prom
	dune exec bin/main.exe -- report --journal /tmp/conferr-obsv.jsonl \
	  --html /tmp/conferr-report.html
	test -s /tmp/conferr-report.html

# Static-analysis smoke (doc/lint.md):
#   1. every SUT's stock configuration — and the checked-in copies under
#      examples/configs/ — must lint clean;
#   2. a validator-gap scan over a fresh postgres campaign journal must
#      find gaps (exit 1), be byte-identical for --jobs 1 and --jobs 4,
#      and render the dashboard's validator-gaps panel + gap metrics.
lint-smoke: build
	rm -f /tmp/conferr-lint.jsonl /tmp/conferr-gaps-j1.txt \
	  /tmp/conferr-gaps-j4.txt /tmp/conferr-gaps.html /tmp/conferr-gaps.prom
	for sut in postgres mysql apache bind djbdns appserver; do \
	  dune exec bin/main.exe -- lint --sut $$sut --fail-on warn || exit 1; \
	done
	dune exec bin/main.exe -- lint --sut postgres --fail-on warn \
	  examples/configs/postgresql.conf
	dune exec bin/main.exe -- lint --sut bind --fail-on warn \
	  examples/configs/named.conf examples/configs/example.com.zone \
	  examples/configs/0.0.10.in-addr.arpa.zone
	dune exec bin/main.exe -- profile --sut postgres --jobs 2 \
	  --journal /tmp/conferr-lint.jsonl
	dune exec bin/main.exe -- gaps --sut postgres \
	  --journal /tmp/conferr-lint.jsonl > /tmp/conferr-gaps-j1.txt; \
	  test $$? -eq 1
	dune exec bin/main.exe -- gaps --sut postgres --jobs 4 \
	  --journal /tmp/conferr-lint.jsonl > /tmp/conferr-gaps-j4.txt; \
	  test $$? -eq 1
	cmp /tmp/conferr-gaps-j1.txt /tmp/conferr-gaps-j4.txt
	dune exec bin/main.exe -- gaps --sut postgres \
	  --journal /tmp/conferr-lint.jsonl --html /tmp/conferr-gaps.html \
	  --metrics /tmp/conferr-gaps.prom > /dev/null; test $$? -eq 1
	grep -q "Validator gaps" /tmp/conferr-gaps.html
	grep -q conferr_gap_total /tmp/conferr-gaps.prom

# Corpus-analysis smoke (doc/lint.md, dataflow section):
#   1. every SUT's stock configuration set must analyze clean (no
#      relation violations, no taint, no dangling references);
#   2. the paper's pg cross-parameter fault (max_fsm_pages and
#      max_fsm_relations both individually in range but mutually
#      inconsistent) must be caught *statically* as a relation
#      violation naming both ConfPaths, byte-identically for --jobs 1
#      and --jobs 4;
#   3. --format sarif must emit schema-tagged SARIF 2.1.0 carrying the
#      relation result and its related location;
#   4. --html/--metrics must render the corpus-analysis panel and the
#      conferr_dataflow_findings_total counter;
#   5. gaps --deep over a fresh pg campaign must reclassify the silent
#      acceptances that gap-claiming rules predicted: the base scan
#      exits 1 with silent-acceptance rows, the deep scan drives them
#      to zero.
analyze-smoke: build
	rm -rf /tmp/conferr-analyze
	mkdir -p /tmp/conferr-analyze
	for sut in postgres mysql apache bind djbdns appserver; do \
	  dune exec bin/main.exe -- analyze --sut $$sut --fail-on warn || exit 1; \
	done
	sed -e 's/max_fsm_pages = 153600/max_fsm_pages = 1500/' \
	  -e 's/max_fsm_relations = 1000/max_fsm_relations = 20000/' \
	  examples/configs/postgresql.conf \
	  > /tmp/conferr-analyze/postgresql.conf
	dune exec bin/main.exe -- analyze --sut postgres \
	  /tmp/conferr-analyze/postgresql.conf \
	  > /tmp/conferr-analyze/j1.txt; test $$? -eq 1
	grep -q "PG-REL-FSM" /tmp/conferr-analyze/j1.txt
	grep -q "/max_fsm_pages" /tmp/conferr-analyze/j1.txt
	grep -q "/max_fsm_relations" /tmp/conferr-analyze/j1.txt
	dune exec bin/main.exe -- analyze --sut postgres --jobs 4 \
	  /tmp/conferr-analyze/postgresql.conf \
	  > /tmp/conferr-analyze/j4.txt; test $$? -eq 1
	cmp /tmp/conferr-analyze/j1.txt /tmp/conferr-analyze/j4.txt
	dune exec bin/main.exe -- analyze --sut postgres --format sarif \
	  /tmp/conferr-analyze/postgresql.conf \
	  > /tmp/conferr-analyze/out.sarif; test $$? -eq 1
	grep -q '"version":"2.1.0"' /tmp/conferr-analyze/out.sarif
	grep -q 'sarif-2.1.0' /tmp/conferr-analyze/out.sarif
	grep -q 'relatedLocations' /tmp/conferr-analyze/out.sarif
	dune exec bin/main.exe -- analyze --sut postgres \
	  --html /tmp/conferr-analyze/report.html \
	  --metrics /tmp/conferr-analyze/metrics.prom \
	  /tmp/conferr-analyze/postgresql.conf > /dev/null; test $$? -eq 1
	grep -q "Corpus analysis" /tmp/conferr-analyze/report.html
	grep -q conferr_dataflow_findings_total /tmp/conferr-analyze/metrics.prom
	dune exec bin/main.exe -- profile --sut postgres --jobs 2 \
	  --journal /tmp/conferr-analyze/campaign.jsonl > /dev/null
	dune exec bin/main.exe -- gaps --sut postgres \
	  --journal /tmp/conferr-analyze/campaign.jsonl \
	  > /tmp/conferr-analyze/gaps-base.txt; test $$? -eq 1
	dune exec bin/main.exe -- gaps --sut postgres --deep \
	  --journal /tmp/conferr-analyze/campaign.jsonl \
	  > /tmp/conferr-analyze/gaps-deep.txt
	! grep -Eq "silent-acceptance +0$$" /tmp/conferr-analyze/gaps-base.txt
	grep -Eq "silent-acceptance +0$$" /tmp/conferr-analyze/gaps-deep.txt

# Service-mode smoke (doc/serve.md): a real daemon on an ephemeral port.
#   1. submit a mini-postgres campaign through the client and stream its
#      progress events to completion;
#   2. the daemon's journal must equal a one-shot CLI journal for the
#      same campaign modulo wall-clock fields (the determinism contract);
#   3. /metrics must expose the serve counters and /dashboard must serve
#      the live HTML report;
#   4. SIGTERM must drain gracefully: exit 0 and an fsck-clean journal.
# The daemon runs the already-built binary directly — a second dune
# invocation would contend on the build lock while the daemon lives.
serve-smoke: build
	rm -rf /tmp/conferr-serve-state /tmp/conferr-serve.port \
	  /tmp/conferr-serve-cli.jsonl /tmp/conferr-serve-dash.html
	set -e; \
	BIN=_build/default/bin/main.exe; \
	$$BIN serve --port 0 --port-file /tmp/conferr-serve.port \
	  --state-dir /tmp/conferr-serve-state --jobs 2 & \
	DPID=$$!; \
	for i in $$(seq 1 50); do \
	  test -s /tmp/conferr-serve.port && break; sleep 0.1; \
	done; \
	test -s /tmp/conferr-serve.port || { kill $$DPID; exit 1; }; \
	PORT=$$(cat /tmp/conferr-serve.port); \
	$$BIN get --port $$PORT /healthz; \
	$$BIN submit --port $$PORT --sut mini_pg --seed 7; \
	$$BIN watch --port $$PORT c0001 > /dev/null; \
	$$BIN status --port $$PORT c0001; \
	$$BIN results --port $$PORT c0001 > /dev/null; \
	$$BIN profile --sut mini_pg --seed 7 \
	  --journal /tmp/conferr-serve-cli.jsonl > /dev/null; \
	$$BIN journal-diff /tmp/conferr-serve-state/c0001.jsonl \
	  /tmp/conferr-serve-cli.jsonl; \
	$$BIN get --port $$PORT /metrics | grep -q conferr_serve_submissions_total; \
	$$BIN get --port $$PORT /dashboard > /tmp/conferr-serve-dash.html; \
	grep -q "<!doctype html" /tmp/conferr-serve-dash.html; \
	kill -TERM $$DPID; \
	wait $$DPID; \
	$$BIN fsck /tmp/conferr-serve-state/c0001.jsonl

# Inference smoke (doc/infer.md):
#   1. record fresh campaign journals (postgres typos; bind typos +
#      RFC 1912 semantic faults) and mine each back into candidate
#      constraints; both reports must recover a majority of the
#      hand-written rule ids ("majority: yes") — exit 1 is fine, the
#      inferred and hand-written sets legitimately differ;
#   2. the report must be byte-identical for --jobs 1 and --jobs 4;
#   3. --emit-rules must write a rule file conferr lint --rules accepts,
#      and the mined rules must lint the stock configuration clean;
#   4. the dashboard must render the inferred-constraints panel and the
#      metrics snapshot must carry the inference counters.
infer-smoke: build
	rm -f /tmp/conferr-infer-pg.jsonl /tmp/conferr-infer-bind.jsonl \
	  /tmp/conferr-infer-sem.jsonl /tmp/conferr-infer-j1.txt \
	  /tmp/conferr-infer-j4.txt /tmp/conferr-infer-bind.txt \
	  /tmp/conferr-infer.html /tmp/conferr-infer.prom \
	  /tmp/conferr-infer-rules.json
	dune exec bin/main.exe -- profile --sut postgres --jobs 2 \
	  --journal /tmp/conferr-infer-pg.jsonl > /dev/null
	dune exec bin/main.exe -- profile --sut bind --jobs 2 \
	  --journal /tmp/conferr-infer-bind.jsonl > /dev/null
	dune exec bin/main.exe -- semantic --sut bind --jobs 2 \
	  --journal /tmp/conferr-infer-sem.jsonl > /dev/null
	dune exec bin/main.exe -- infer --sut postgres \
	  --journal /tmp/conferr-infer-pg.jsonl > /tmp/conferr-infer-j1.txt; \
	  test $$? -le 1
	grep -q "majority: yes" /tmp/conferr-infer-j1.txt
	dune exec bin/main.exe -- infer --sut postgres --jobs 4 \
	  --journal /tmp/conferr-infer-pg.jsonl > /tmp/conferr-infer-j4.txt; \
	  test $$? -le 1
	cmp /tmp/conferr-infer-j1.txt /tmp/conferr-infer-j4.txt
	dune exec bin/main.exe -- infer --sut bind \
	  --journal /tmp/conferr-infer-bind.jsonl \
	  --journal /tmp/conferr-infer-sem.jsonl \
	  --emit-rules /tmp/conferr-infer-rules.json \
	  --html /tmp/conferr-infer.html \
	  --metrics /tmp/conferr-infer.prom > /tmp/conferr-infer-bind.txt; \
	  test $$? -le 1
	grep -q "majority: yes" /tmp/conferr-infer-bind.txt
	grep -q "Inferred constraints" /tmp/conferr-infer.html
	grep -q conferr_infer_candidates_total /tmp/conferr-infer.prom
	dune exec bin/main.exe -- lint --sut bind --fail-on warn \
	  --rules /tmp/conferr-infer-rules.json
	dune exec bin/main.exe -- infer --sut postgres \
	  --journal /tmp/conferr-infer-pg.jsonl \
	  --emit-rules /tmp/conferr-infer-rules.json > /dev/null; test $$? -le 1
	dune exec bin/main.exe -- lint --sut postgres --fail-on warn \
	  --rules /tmp/conferr-infer-rules.json

# Repair smoke (doc/repair.md): break the stock postgres and bind
# configurations, synthesize repairs, and verify them end to end.
#   1. a directive-name typo in postgresql.conf must be repaired back
#      to stock (exit 0) and --apply must rewrite the file so
#      `lint --fail-on warn` then exits 0;
#   2. a cross-parameter fault (max_fsm_pages / max_fsm_relations both
#      in range but mutually inconsistent) must be repaired by a
#      multi-edit candidate grouped by a mined co-occurrence cluster;
#   3. a typo'd named.conf must be repaired for bind;
#   4. journal-mode repair of a recorded pg campaign must exit 0
#      (everything repairable) and report byte-identical text for
#      --jobs 1 vs --jobs 4.
repair-smoke: build
	rm -rf /tmp/conferr-repair-typo /tmp/conferr-repair-cross \
	  /tmp/conferr-repair-bind
	rm -f /tmp/conferr-repair.jsonl \
	  /tmp/conferr-repair-j1.txt /tmp/conferr-repair-j4.txt \
	  /tmp/conferr-repair.html /tmp/conferr-repair.prom
	mkdir -p /tmp/conferr-repair-typo /tmp/conferr-repair-cross \
	  /tmp/conferr-repair-bind
	sed 's/max_connections/max_connektions/' \
	  examples/configs/postgresql.conf \
	  > /tmp/conferr-repair-typo/postgresql.conf
	dune exec bin/main.exe -- repair --sut postgres --apply \
	  /tmp/conferr-repair-typo/postgresql.conf
	dune exec bin/main.exe -- lint --sut postgres --fail-on warn \
	  /tmp/conferr-repair-typo/postgresql.conf
	cmp examples/configs/postgresql.conf \
	  /tmp/conferr-repair-typo/postgresql.conf
	sed -e 's/max_fsm_pages = 153600/max_fsm_pages = 1500/' \
	  -e 's/max_fsm_relations = 1000/max_fsm_relations = 20000/' \
	  examples/configs/postgresql.conf \
	  > /tmp/conferr-repair-cross/postgresql.conf
	dune exec bin/main.exe -- repair --sut postgres \
	  /tmp/conferr-repair-cross/postgresql.conf \
	  | grep -q "cluster: {max_fsm_pages"
	sed 's/recursion/recursino/' examples/configs/named.conf \
	  > /tmp/conferr-repair-bind/named.conf
	dune exec bin/main.exe -- repair --sut bind \
	  /tmp/conferr-repair-bind/named.conf
	dune exec bin/main.exe -- profile --sut postgres --jobs 2 \
	  --journal /tmp/conferr-repair.jsonl > /dev/null
	dune exec bin/main.exe -- repair --sut postgres --jobs 1 \
	  --journal /tmp/conferr-repair.jsonl > /tmp/conferr-repair-j1.txt
	dune exec bin/main.exe -- repair --sut postgres --jobs 4 \
	  --journal /tmp/conferr-repair.jsonl > /tmp/conferr-repair-j4.txt
	cmp /tmp/conferr-repair-j1.txt /tmp/conferr-repair-j4.txt
	dune exec bin/main.exe -- repair --sut postgres \
	  --journal /tmp/conferr-repair.jsonl \
	  --html /tmp/conferr-repair.html \
	  --metrics /tmp/conferr-repair.prom > /dev/null
	grep -q "Repairs" /tmp/conferr-repair.html
	grep -q conferr_repair_targets_total /tmp/conferr-repair.prom

# Durability smoke (doc/exec.md, doc/harden.md): the v3 segmented
# journal under storage chaos, end to end through the CLI.
#   1. a seeded disk-chaos campaign (--disk, 10% fault rate) at --jobs 4
#      into a --segment-bytes store must terminate (complete, or abort
#      on the first raising fault — either way exit <= 1);
#   2. fsck --repair must heal the store and the JSON report must then
#      say "clean":true;
#   3. a chaos-off --resume must complete and re-execute nothing that
#      was already durable (the resumed journal fscks clean with every
#      scenario exactly once — profile re-verifies via fsck);
#   4. a daemon started with --inject-disk-fault must fail only the
#      faulted campaign (c0001 failed, journal-fault metric exposed)
#      while its co-tenant completes (c0002 done).
durability-smoke: build
	rm -rf /tmp/conferr-dura.v3 /tmp/conferr-dura-state \
	  /tmp/conferr-dura.port /tmp/conferr-dura-fsck.json
	set -e; \
	BIN=_build/default/bin/main.exe; \
	$$BIN chaos --sut postgres --jobs 4 --timeout 0.5 --chaos-rate 0.1 \
	  --journal /tmp/conferr-dura.v3 --segment-bytes 4096 --disk \
	  || test $$? -le 1
	dune exec bin/main.exe -- fsck --repair /tmp/conferr-dura.v3
	dune exec bin/main.exe -- fsck --format json /tmp/conferr-dura.v3 \
	  > /tmp/conferr-dura-fsck.json
	grep -q '"clean":true' /tmp/conferr-dura-fsck.json
	dune exec bin/main.exe -- chaos --sut postgres --jobs 4 --timeout 0.5 \
	  --journal /tmp/conferr-dura.v3 --segment-bytes 4096 --resume --stats
	dune exec bin/main.exe -- fsck /tmp/conferr-dura.v3
	set -e; \
	BIN=_build/default/bin/main.exe; \
	$$BIN serve --port 0 --port-file /tmp/conferr-dura.port \
	  --state-dir /tmp/conferr-dura-state --jobs 2 --segment-bytes 4096 \
	  --inject-disk-fault & \
	DPID=$$!; \
	for i in $$(seq 1 50); do \
	  test -s /tmp/conferr-dura.port && break; sleep 0.1; \
	done; \
	test -s /tmp/conferr-dura.port || { kill $$DPID; exit 1; }; \
	PORT=$$(cat /tmp/conferr-dura.port); \
	$$BIN submit --port $$PORT --sut mini_pg --seed 7; \
	$$BIN submit --port $$PORT --sut mini_pg --seed 7; \
	$$BIN watch --port $$PORT c0002 > /dev/null; \
	$$BIN status --port $$PORT c0001 | grep -q failed; \
	$$BIN status --port $$PORT c0002 | grep -q done; \
	$$BIN get --port $$PORT /metrics | grep -q conferr_journal_faults_total; \
	kill -TERM $$DPID; \
	wait $$DPID

check: build test smoke lint-smoke analyze-smoke serve-smoke infer-smoke \
  repair-smoke durability-smoke

bench:
	dune exec bench/main.exe

clean:
	dune clean
