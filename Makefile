.PHONY: all build test smoke check bench clean

all: build

build:
	dune build

test:
	dune runtest

# Three smoke campaigns through the CLI, each run twice so the second
# run must resume from the first's journal and re-execute nothing:
#   1. a fixed faultload through the parallel executor (profile);
#   2. a small feedback-directed search (explore);
#   3. a chaos campaign (10% fault injection into the SUT itself), whose
#      journal must then pass fsck (doc/harden.md).
smoke: build
	rm -f /tmp/conferr.jsonl /tmp/conferr-explore.jsonl /tmp/conferr-chaos.jsonl
	dune exec bin/main.exe -- profile --sut postgres --jobs 2 \
	  --journal /tmp/conferr.jsonl --stats
	dune exec bin/main.exe -- profile --sut postgres --jobs 2 \
	  --journal /tmp/conferr.jsonl --resume --stats
	dune exec bin/main.exe -- explore --sut postgres --jobs 2 \
	  --budget 48 --batch 16 --journal /tmp/conferr-explore.jsonl --stats
	dune exec bin/main.exe -- explore --sut postgres --jobs 2 \
	  --budget 48 --batch 16 --journal /tmp/conferr-explore.jsonl --resume --stats
	dune exec bin/main.exe -- chaos --sut postgres --jobs 2 --timeout 0.5 \
	  --journal /tmp/conferr-chaos.jsonl --stats
	dune exec bin/main.exe -- fsck /tmp/conferr-chaos.jsonl
	dune exec bin/main.exe -- chaos --sut postgres --jobs 2 --timeout 0.5 \
	  --journal /tmp/conferr-chaos.jsonl --resume --stats

check: build test smoke

bench:
	dune exec bench/main.exe

clean:
	dune clean
