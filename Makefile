.PHONY: all build test smoke check bench clean

all: build

build:
	dune build

test:
	dune runtest

# A small campaign through the parallel executor with a journal, twice:
# the second run must resume from the first's journal and do no work.
smoke: build
	rm -f /tmp/conferr.jsonl
	dune exec bin/main.exe -- profile --sut postgres --jobs 2 \
	  --journal /tmp/conferr.jsonl --stats
	dune exec bin/main.exe -- profile --sut postgres --jobs 2 \
	  --journal /tmp/conferr.jsonl --resume --stats

check: build test smoke

bench:
	dune exec bench/main.exe

clean:
	dune clean
