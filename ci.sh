#!/bin/sh
# CI entry point: full build, the test suites, and a smoke campaign
# through the parallel executor (journal + resume).  Exits non-zero on
# the first failure.
set -eu
cd "$(dirname "$0")"

if command -v make >/dev/null 2>&1; then
  make check
else
  dune build
  dune runtest
  rm -f /tmp/conferr.jsonl
  dune exec bin/main.exe -- profile --sut postgres --jobs 2 \
    --journal /tmp/conferr.jsonl --stats
  dune exec bin/main.exe -- profile --sut postgres --jobs 2 \
    --journal /tmp/conferr.jsonl --resume --stats
fi

echo "ci: all checks passed"
