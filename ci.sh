#!/bin/sh
# CI entry point: delegates to `make check` (build + test suites + the
# profile and explore smoke campaigns with journal + resume).  The
# Makefile is the single source of truth for what CI runs.
set -eu
cd "$(dirname "$0")"

make check

echo "ci: all checks passed"
