(* Tests for the XML application-server simulator: strict attribute
   validation, the silent unknown-element flaw, functional port check. *)

module A = Suts.Mini_appserver
module Sut = Suts.Sut

let default_text = List.assoc "server.xml" A.sut.Sut.default_config

let boot text = A.sut.Sut.boot [ ("server.xml", text) ]

let boot_ok text =
  match boot text with
  | Ok instance -> instance
  | Error msg -> Alcotest.failf "expected startup, got: %s" msg

let boot_err text =
  match boot text with
  | Ok _ -> Alcotest.fail "expected startup failure"
  | Error msg -> msg

let tests_pass instance = Sut.all_passed (instance.Sut.run_tests ())

let contains needle msg = Conferr_util.Strutil.contains_substring ~needle msg

let replace a b text =
  Conferr_util.Strutil.lines text
  |> List.map (fun l ->
         if Conferr_util.Strutil.contains_substring ~needle:a l then b else l)
  |> Conferr_util.Strutil.unlines

let test_default_boots () =
  Alcotest.(check bool) "GET passes" true (tests_pass (boot_ok default_text))

let test_unknown_element_silently_skipped () =
  (* the XML-config flaw: a typo in an element name removes the subtree
     without any diagnostic *)
  let mutated =
    replace "<logger" "  <loger level=\"info\" file=\"/var/log/appserver/server.log\"/>"
      default_text
  in
  Alcotest.(check bool) "still boots and passes" true (tests_pass (boot_ok mutated))

let test_typoed_connector_element_breaks_functionally () =
  (* typo the http connector's element name: the element vanishes, so
     port 8080 is never opened — caught only by the GET *)
  let mutated =
    replace "protocol=\"http\" port=\"8080\""
      "  <conector protocol=\"http\" port=\"8080\"/>" default_text
  in
  let instance = boot_ok mutated in
  Alcotest.(check bool) "functional failure" false (tests_pass instance)

let test_unknown_attribute_rejected () =
  let mutated =
    replace "protocol=\"http\" port=\"8080\""
      "  <connector protocol=\"http\" prot=\"8080\"/>" default_text
  in
  let msg = boot_err mutated in
  Alcotest.(check bool) "attribute error" true (contains "attribute" msg)

let test_invalid_port_rejected () =
  let mutated =
    replace "port=\"8080\"" "  <connector protocol=\"http\" port=\"8o80\"/>" default_text
  in
  let msg = boot_err mutated in
  Alcotest.(check bool) "port error" true (contains "port" msg)

let test_port_typo_functional () =
  let mutated =
    replace "port=\"8080\"" "  <connector protocol=\"http\" port=\"8081\"/>" default_text
  in
  Alcotest.(check bool) "survives startup, fails GET" false
    (tests_pass (boot_ok mutated))

let test_unknown_protocol_rejected () =
  let mutated =
    replace "protocol=\"http\" port=\"8080\""
      "  <connector protocol=\"htp\" port=\"8080\"/>" default_text
  in
  ignore (boot_err mutated)

let test_unknown_level_rejected () =
  let mutated = replace "level=\"info\"" "  <logger level=\"inof\"/>" default_text in
  ignore (boot_err mutated)

let test_log_dir_checked () =
  let mutated =
    replace "<logger" "  <logger level=\"info\" file=\"/var/lgo/appserver/s.log\"/>"
      default_text
  in
  ignore (boot_err mutated)

let test_realm_file_checked () =
  let mutated =
    replace "<realm" "    <realm users=\"/etc/appserver/userz.xml\"/>" default_text
  in
  ignore (boot_err mutated)

let test_appbase_typo_functional () =
  let mutated = replace "appBase=\"/srv/webapps\""
      "  <host name=\"localhost\" appBase=\"/srv/webapp\" defaultApp=\"root\">"
      default_text
  in
  Alcotest.(check bool) "404" false (tests_pass (boot_ok mutated))

let test_malformed_xml_rejected () =
  let msg = boot_err "<server><connector port=\"8080\"</server>" in
  Alcotest.(check bool) "parse error" true (contains "XML" msg)

let test_no_connectors_rejected () =
  let msg = boot_err "<server name=\"x\"></server>" in
  Alcotest.(check bool) "no connectors" true (contains "connector" msg)

let test_engine_integration () =
  match Conferr.Engine.baseline_ok A.sut with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_typo_campaign_runs () =
  (* the generic campaign machinery works on the XML format too *)
  let rng = Conferr_util.Rng.create 5 in
  match Conferr.Engine.parse_default_config A.sut with
  | Error msg -> Alcotest.fail msg
  | Ok base ->
    (* XML trees carry values in attributes, so the typo campaign's
       directive-oriented sampler finds no targets; the structural
       plugin drives element-level faults instead *)
    let scenarios =
      Errgen.Template.delete ~class_name:"structural/omit-element"
        (Errgen.Template.target ~file:"server.xml" "//*[kind()='element']")
      base
      |> Errgen.Template.sample rng 10
    in
    Alcotest.(check bool) "scenarios exist" true (scenarios <> []);
    let profile = Conferr.Engine.run_from ~sut:A.sut ~base ~scenarios () in
    let s = Conferr.Profile.summarize profile in
    Alcotest.(check bool) "ran" true (s.Conferr.Profile.total > 0)

let suite =
  [
    Alcotest.test_case "default boots" `Quick test_default_boots;
    Alcotest.test_case "unknown element skipped (flaw)" `Quick
      test_unknown_element_silently_skipped;
    Alcotest.test_case "typoed connector functional" `Quick
      test_typoed_connector_element_breaks_functionally;
    Alcotest.test_case "unknown attribute" `Quick test_unknown_attribute_rejected;
    Alcotest.test_case "invalid port" `Quick test_invalid_port_rejected;
    Alcotest.test_case "port typo functional" `Quick test_port_typo_functional;
    Alcotest.test_case "unknown protocol" `Quick test_unknown_protocol_rejected;
    Alcotest.test_case "unknown level" `Quick test_unknown_level_rejected;
    Alcotest.test_case "log dir checked" `Quick test_log_dir_checked;
    Alcotest.test_case "realm file checked" `Quick test_realm_file_checked;
    Alcotest.test_case "appBase typo functional" `Quick test_appbase_typo_functional;
    Alcotest.test_case "malformed xml" `Quick test_malformed_xml_rejected;
    Alcotest.test_case "no connectors" `Quick test_no_connectors_rejected;
    Alcotest.test_case "engine baseline" `Quick test_engine_integration;
    Alcotest.test_case "structural campaign" `Quick test_typo_campaign_runs;
  ]
