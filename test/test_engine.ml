module Engine = Conferr.Engine
module Outcome = Conferr.Outcome
module Scenario = Errgen.Scenario
module Node = Conftree.Node

let all_suts =
  [
    Suts.Mini_mysql.sut; Suts.Mini_pg.sut; Suts.Mini_apache.sut; Suts.Mini_bind.sut;
    Suts.Mini_djbdns.sut;
  ]

let test_baselines () =
  List.iter
    (fun (sut : Suts.Sut.t) ->
      match Engine.baseline_ok sut with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s baseline: %s" sut.sut_name msg)
    all_suts

let test_parse_serialize_roundtrip () =
  List.iter
    (fun (sut : Suts.Sut.t) ->
      match Engine.parse_default_config sut with
      | Error msg -> Alcotest.failf "%s parse: %s" sut.Suts.Sut.sut_name msg
      | Ok set ->
        (match Engine.serialize_config sut set with
         | Error msg -> Alcotest.failf "%s serialize: %s" sut.Suts.Sut.sut_name msg
         | Ok files ->
           Alcotest.(check int)
             (sut.Suts.Sut.sut_name ^ " file count")
             (List.length sut.Suts.Sut.config_files)
             (List.length files)))
    all_suts

let noop_scenario =
  Scenario.make ~id:"noop" ~class_name:"test/noop" ~description:"no change" (fun set ->
      Ok set)

let failing_scenario =
  Scenario.make ~id:"fail" ~class_name:"test/fail" ~description:"always fails" (fun _ ->
      Error "cannot apply")

let break_port_scenario =
  Scenario.make ~id:"port" ~class_name:"test/port" ~description:"typo in port"
    (Scenario.edit_in_file ~file:"postgresql.conf" (fun tree ->
         match
           Node.find_first
             (fun n -> n.Node.kind = Node.kind_directive && n.Node.name = "max_connections")
             tree
         with
         | Some (path, node) ->
           Node.replace tree path { node with Node.value = Some "1oo" }
         | None -> None))

let pg_base () =
  match Engine.parse_default_config Suts.Mini_pg.sut with
  | Ok base -> base
  | Error msg -> Alcotest.failf "parse: %s" msg

let test_run_scenario_passed () =
  match Engine.run_scenario ~sut:Suts.Mini_pg.sut ~base:(pg_base ()) noop_scenario with
  | Outcome.Passed -> ()
  | o -> Alcotest.failf "expected Passed, got %s" (Outcome.label o)

let test_run_scenario_not_applicable () =
  match Engine.run_scenario ~sut:Suts.Mini_pg.sut ~base:(pg_base ()) failing_scenario with
  | Outcome.Not_applicable _ -> ()
  | o -> Alcotest.failf "expected N/A, got %s" (Outcome.label o)

let test_run_scenario_startup_failure () =
  match Engine.run_scenario ~sut:Suts.Mini_pg.sut ~base:(pg_base ()) break_port_scenario with
  | Outcome.Startup_failure msg ->
    Alcotest.(check bool) "explains" true
      (Conferr_util.Strutil.contains_substring ~needle:"max_connections" msg)
  | o -> Alcotest.failf "expected startup failure, got %s" (Outcome.label o)

let test_serialization_failure_is_na () =
  (* nest a section inside a section: INI cannot express it *)
  let nest =
    Scenario.make ~id:"nest" ~class_name:"test/nest" ~description:"nest sections"
      (Scenario.edit_in_file ~file:"my.cnf" (fun tree ->
           Node.append_child tree ~parent:[ 0 ] (Node.section "inner" [])))
  in
  match Engine.parse_default_config Suts.Mini_mysql.sut with
  | Error msg -> Alcotest.fail msg
  | Ok base ->
    (match Engine.run_scenario ~sut:Suts.Mini_mysql.sut ~base nest with
     | Outcome.Not_applicable msg ->
       Alcotest.(check bool) "mentions nesting" true
         (Conferr_util.Strutil.contains_substring ~needle:"nested" msg)
     | o -> Alcotest.failf "expected N/A, got %s" (Outcome.label o))

let run_ok ~sut ~scenarios =
  match Engine.run ~sut ~scenarios () with
  | Ok profile -> profile
  | Error e -> Alcotest.fail (Engine.config_error_to_string e)

let test_run_builds_profile () =
  let scenarios = [ noop_scenario; failing_scenario; break_port_scenario ] in
  let profile = run_ok ~sut:Suts.Mini_pg.sut ~scenarios in
  let summary = Conferr.Profile.summarize profile in
  Alcotest.(check int) "applicable" 2 summary.Conferr.Profile.total;
  Alcotest.(check int) "startup" 1 summary.Conferr.Profile.startup;
  Alcotest.(check int) "ignored" 1 summary.Conferr.Profile.ignored;
  Alcotest.(check int) "n/a" 1 summary.Conferr.Profile.not_applicable

let test_cross_file_scenario () =
  (* paper §3.1: transformations apply to the whole set of configuration
     files, enabling cross-file errors — here a record pasted from the
     forward zone file into the reverse one *)
  let sut = Suts.Mini_bind.sut in
  match Engine.parse_default_config sut with
  | Error msg -> Alcotest.fail msg
  | Ok base ->
    let scenarios =
      Errgen.Template.move ~class_name:"structural/cross-file"
        ~src:
          (Errgen.Template.target ~file:Suts.Mini_bind.forward_zone_file
             "//*[kind()='record' and @type='MX']")
        ~dst:
          (Errgen.Template.target ~file:Suts.Mini_bind.reverse_zone_file
             "/.")
        base
    in
    Alcotest.(check bool) "cross-file scenarios generated" true (scenarios <> []);
    List.iter
      (fun (s : Scenario.t) ->
        match s.apply base with
        | Ok mutated ->
          let count file =
            match Conftree.Config_set.find mutated file with
            | Some t ->
              List.length
                (Node.find_all
                   (fun n ->
                     n.Node.kind = Node.kind_record
                     && Node.attr n "type" = Some "MX")
                   t)
            | None -> -1
          in
          Alcotest.(check int) "left the forward zone" 0
            (count Suts.Mini_bind.forward_zone_file);
          Alcotest.(check int) "arrived in the reverse zone" 1
            (count Suts.Mini_bind.reverse_zone_file);
          (* and the engine can run it end to end *)
          ignore (Engine.run_scenario ~sut ~base s)
        | Error msg -> Alcotest.fail msg)
      scenarios

let test_outcome_helpers () =
  Alcotest.(check bool) "startup detected" true (Outcome.detected (Outcome.Startup_failure "x"));
  Alcotest.(check bool) "functional detected" true (Outcome.detected (Outcome.Test_failure [ "t" ]));
  Alcotest.(check bool) "passed not detected" false (Outcome.detected Outcome.Passed);
  Alcotest.(check bool) "na not detected" false (Outcome.detected (Outcome.Not_applicable "m"));
  Alcotest.(check string) "labels" "ignored" (Outcome.label Outcome.Passed)

let test_profile_rendering () =
  let profile = run_ok ~sut:Suts.Mini_pg.sut ~scenarios:[ break_port_scenario ] in
  let text = Conferr.Profile.render profile in
  Alcotest.(check bool) "mentions the SUT" true
    (Conferr_util.Strutil.contains_substring ~needle:"postgres" text);
  let entries = Conferr.Profile.render_entries profile in
  Alcotest.(check bool) "lists the scenario" true
    (Conferr_util.Strutil.contains_substring ~needle:"typo in port" entries)

let test_profile_class_filter () =
  let scenarios = [ noop_scenario; break_port_scenario ] in
  let profile = run_ok ~sut:Suts.Mini_pg.sut ~scenarios in
  let s = Conferr.Profile.summarize_class profile "test/port" in
  Alcotest.(check int) "only that class" 1 s.Conferr.Profile.total;
  Alcotest.(check (list string))
    "class names"
    [ "test/noop"; "test/port" ]
    (Conferr.Profile.class_names profile)

let test_detection_rate () =
  let s =
    { Conferr.Profile.total = 4; startup = 2; functional = 1; ignored = 1;
      crashed = 0; not_applicable = 3 }
  in
  Alcotest.(check bool) "3/4" true (abs_float (Conferr.Profile.detection_rate s -. 0.75) < 1e-9)

(* Failure injection on the harness itself: SUTs that crash must be
   classified, not kill the campaign. *)
let crashing_sut stage =
  {
    Suts.Sut.sut_name = "crasher";
    version = "crasher 0.1";
    config_files = [ ("crash.conf", Formats.Registry.pgconf) ];
    default_config = [ ("crash.conf", "x = 1\n") ];
    boot =
      (fun _ ->
        if stage = `Boot then failwith "segfault during startup"
        else
          Ok
            {
              Suts.Sut.run_tests =
                (fun () ->
                  if stage = `Tests then failwith "segfault under load"
                  else [ Suts.Sut.passed "noop" ]);
              shutdown = (fun () -> ());
            });
  }

let test_crash_during_boot_classified () =
  let sut = crashing_sut `Boot in
  match Engine.parse_default_config sut with
  | Error msg -> Alcotest.fail msg
  | Ok base ->
    (match Engine.run_scenario ~sut ~base noop_scenario with
     | Outcome.Startup_failure msg ->
       Alcotest.(check bool) "names the crash" true
         (Conferr_util.Strutil.contains_substring ~needle:"crashed" msg)
     | o -> Alcotest.failf "expected startup failure, got %s" (Outcome.label o))

let test_crash_during_tests_classified () =
  let sut = crashing_sut `Tests in
  match Engine.parse_default_config sut with
  | Error msg -> Alcotest.fail msg
  | Ok base ->
    (match Engine.run_scenario ~sut ~base noop_scenario with
     | Outcome.Test_failure [ msg ] ->
       Alcotest.(check bool) "names the crash" true
         (Conferr_util.Strutil.contains_substring ~needle:"crashed" msg)
     | o -> Alcotest.failf "expected test failure, got %s" (Outcome.label o))

let test_raising_scenario_classified () =
  let bomb =
    Errgen.Scenario.make ~id:"bomb" ~class_name:"test/bomb" ~description:"raises"
      (fun _ -> failwith "plugin bug")
  in
  match Engine.run_scenario ~sut:Suts.Mini_pg.sut ~base:(pg_base ()) bomb with
  | Outcome.Not_applicable msg ->
    Alcotest.(check bool) "reports the exception" true
      (Conferr_util.Strutil.contains_substring ~needle:"raised" msg)
  | o -> Alcotest.failf "expected N/A, got %s" (Outcome.label o)

let test_bad_default_config_reported () =
  (* a SUT whose own default config does not parse is a harness bug: it
     must surface as a structured error, not an exception *)
  let sut =
    {
      (crashing_sut `Boot) with
      Suts.Sut.sut_name = "misdeclared";
      (* no content for the declared file: parsing cannot succeed *)
      default_config = [];
    }
  in
  match Engine.run ~sut ~scenarios:[ noop_scenario ] () with
  | Ok _ -> Alcotest.fail "expected a config error"
  | Error e ->
    Alcotest.(check string) "names the SUT" "misdeclared" e.Engine.sut_name;
    Alcotest.(check bool) "explains the failure" true
      (String.length (Engine.config_error_to_string e) > 0)

let test_run_from_parallel_matches_sequential () =
  let scenarios = [ noop_scenario; failing_scenario; break_port_scenario ] in
  let base = pg_base () in
  let seq = Engine.run_from ~jobs:1 ~sut:Suts.Mini_pg.sut ~base ~scenarios () in
  let par = Engine.run_from ~jobs:4 ~sut:Suts.Mini_pg.sut ~base ~scenarios () in
  Alcotest.(check string) "identical rendering"
    (Conferr.Profile.render seq) (Conferr.Profile.render par);
  Alcotest.(check (list string)) "identical entry order"
    (List.map (fun (e : Conferr.Profile.entry) -> e.scenario_id) seq.entries)
    (List.map (fun (e : Conferr.Profile.entry) -> e.scenario_id) par.entries)

let suite =
  [
    Alcotest.test_case "baselines green" `Quick test_baselines;
    Alcotest.test_case "bad default config reported" `Quick
      test_bad_default_config_reported;
    Alcotest.test_case "parallel run_from matches sequential" `Quick
      test_run_from_parallel_matches_sequential;
    Alcotest.test_case "crash during boot" `Quick test_crash_during_boot_classified;
    Alcotest.test_case "crash during tests" `Quick test_crash_during_tests_classified;
    Alcotest.test_case "raising scenario" `Quick test_raising_scenario_classified;
    Alcotest.test_case "parse/serialize roundtrip" `Quick test_parse_serialize_roundtrip;
    Alcotest.test_case "scenario passed" `Quick test_run_scenario_passed;
    Alcotest.test_case "scenario n/a" `Quick test_run_scenario_not_applicable;
    Alcotest.test_case "scenario startup failure" `Quick test_run_scenario_startup_failure;
    Alcotest.test_case "serialization n/a" `Quick test_serialization_failure_is_na;
    Alcotest.test_case "run builds profile" `Quick test_run_builds_profile;
    Alcotest.test_case "cross-file scenario" `Quick test_cross_file_scenario;
    Alcotest.test_case "outcome helpers" `Quick test_outcome_helpers;
    Alcotest.test_case "profile rendering" `Quick test_profile_rendering;
    Alcotest.test_case "profile class filter" `Quick test_profile_class_filter;
    Alcotest.test_case "detection rate" `Quick test_detection_rate;
  ]
