module Node = Conftree.Node
module Config_set = Conftree.Config_set

let dir name value = Node.directive ~value name
let root children = Node.make ~kind:"file" ~children ()

let () =
  (* stock = [alpha; beta; gamma=1], broken = [beta; gamma=2] *)
  let stock = Config_set.of_list [ ("f.conf", root [ dir "alpha" "1"; dir "beta" "2"; dir "gamma" "1" ]) ] in
  let broken = Config_set.of_list [ ("f.conf", root [ dir "beta" "2"; dir "gamma" "2" ]) ] in
  let edits = Conferr_repair.Generate.stock_diff ~stock ~broken in
  List.iter
    (fun (e : Conferr_repair.Redit.t) ->
      Printf.printf "edit: %s at %s\n" (Conferr_repair.Redit.op_label e)
        (Conftree.Path.to_string e.path))
    edits;
  match Conferr_repair.Redit.apply broken edits with
  | Error msg -> Printf.printf "APPLY FAILED: %s\n" msg
  | Ok set ->
    (match Config_set.find set "f.conf" with
     | None -> print_endline "no file"
     | Some r ->
       List.iter
         (fun (n : Node.t) ->
           Printf.printf "node %s = %s\n" n.name (Option.value ~default:"" n.value))
         r.Node.children)
