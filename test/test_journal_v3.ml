(* The v3 segmented journal and the Diskchaos storage-fault shim:
   crash consistency under torn/short/ENOSPC/dropped-fsync writes and
   kill -9 at every byte offset (ISSUE 8 acceptance criteria). *)

module Journal = Conferr_exec.Journal
module Segstore = Conferr_exec.Segstore
module Executor = Conferr_exec.Executor
module Progress = Conferr_exec.Progress
module Json = Conferr_exec.Json
module Diskchaos = Conferr_harden.Diskchaos
module Daemon = Conferr_serve.Daemon
module Http = Conferr_serve.Http
module Metrics = Conferr_obsv.Metrics
module Outcome = Conferr.Outcome

let temp_dir_name () =
  let path = Filename.temp_file "conferr_v3_test" "" in
  Sys.remove path;
  path

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let entry i =
  {
    Journal.scenario_id = Printf.sprintf "typo-%04d" i;
    class_name = "typo/name";
    description = "v3";
    seed = Int64.of_int (1000 + i);
    outcome =
      (if i mod 2 = 0 then Outcome.Passed
       else Outcome.Startup_failure "bad directive");
    elapsed_ms = 0.25;
    attempts = 1;
    votes = [];
    phase_ms = [];
  }

let entries n = List.init n entry

let ids es = List.map (fun (e : Journal.entry) -> e.Journal.scenario_id) es

let canonical es = List.map (fun e -> Json.to_string (Journal.entry_to_json e)) es

let write_store ?segment_bytes ?io path es =
  let w = Journal.open_append ~fresh:true ?segment_bytes ?io path in
  List.iter (Journal.append w) es;
  Journal.close w

let silent (_ : Progress.event) = ()

(* -------------------------------------------------------------- *)
(* (a) store round-trip with rotation                              *)
(* -------------------------------------------------------------- *)

let test_store_roundtrip () =
  let dir = temp_dir_name () in
  let es = entries 12 in
  write_store ~segment_bytes:256 dir es;
  Alcotest.(check bool) "path recognized as a store" true (Journal.is_store dir);
  Alcotest.(check bool) "rotation produced several segments" true
    (List.length (Segstore.segment_files dir) > 1);
  Alcotest.(check (list string)) "load returns every entry in order"
    (canonical es) (canonical (Journal.load dir));
  Alcotest.(check bool) "fresh store fscks clean" true
    (Journal.survey_clean (Journal.survey dir));
  let lines =
    String.split_on_char '\n' (String.trim (Journal.read_text dir))
  in
  Alcotest.(check int) "read_text concatenates every line" 12
    (List.length lines);
  rm_rf dir

(* -------------------------------------------------------------- *)
(* (b) v1 / v2 / v3 journals all load the same entries             *)
(* -------------------------------------------------------------- *)

let test_version_compat () =
  let es = entries 5 in
  (* v1: bare entry objects, no CRC wrapper *)
  let v1 = Filename.temp_file "conferr_v3_test" ".jsonl" in
  let oc = open_out v1 in
  List.iter
    (fun e ->
      output_string oc (Json.to_string (Journal.entry_to_json e));
      output_char oc '\n')
    es;
  close_out oc;
  (* v2: the single-file writer *)
  let v2 = Filename.temp_file "conferr_v3_test" ".jsonl" in
  write_store v2 es;
  (* v3: the segmented store *)
  let v3 = temp_dir_name () in
  write_store ~segment_bytes:128 v3 es;
  Alcotest.(check (list string)) "v1 loads" (canonical es)
    (canonical (Journal.load v1));
  Alcotest.(check (list string)) "v2 loads" (canonical es)
    (canonical (Journal.load v2));
  Alcotest.(check (list string)) "v3 loads" (canonical es)
    (canonical (Journal.load v3));
  Alcotest.(check bool) "a single file is not a store" false
    (Journal.is_store v2);
  Sys.remove v1;
  Sys.remove v2;
  rm_rf v3

(* -------------------------------------------------------------- *)
(* (c) merged v3 journal is jobs- and layout-independent           *)
(* -------------------------------------------------------------- *)

let sut = Suts.Mini_pg.sut

let campaign_base () =
  match Conferr.Engine.parse_default_config sut with
  | Ok base -> base
  | Error msg -> Alcotest.failf "postgres default config: %s" msg

let campaign_scenarios ?(limit = max_int) base =
  Conferr.Campaign.typo_scenarios
    ~rng:(Conferr_util.Rng.create 7)
    ~faultload:Conferr.Campaign.paper_faultload sut base
  |> List.filteri (fun i _ -> i < limit)

(* wall-clock aside, the journal must be byte-identical *)
let normalized path =
  List.map
    (fun (e : Journal.entry) ->
      Json.to_string
        (Journal.entry_to_json { e with elapsed_ms = 0.; phase_ms = [] }))
    (Journal.load path)

let run_campaign ?journal_io ?segment_bytes ?(resume = false) ?(jobs = 1) path
    scenarios =
  let base = campaign_base () in
  Executor.run_from
    ~settings:
      {
        Executor.default_settings with
        jobs;
        journal_path = Some path;
        segment_bytes;
        journal_io;
        resume;
      }
    ~on_event:silent ~sut ~base ~scenarios ()

let test_jobs_identity () =
  let base = campaign_base () in
  let scenarios = campaign_scenarios base in
  let seq_store = temp_dir_name () in
  let par_store = temp_dir_name () in
  let par_file = Filename.temp_file "conferr_v3_test" ".jsonl" in
  ignore (run_campaign ~segment_bytes:512 ~jobs:1 seq_store scenarios);
  ignore (run_campaign ~segment_bytes:4096 ~jobs:4 par_store scenarios);
  ignore (run_campaign ~jobs:4 par_file scenarios);
  let seq = normalized seq_store in
  Alcotest.(check (list string))
    "jobs 1 and jobs 4 stores merge to the same journal (any segment size)"
    seq (normalized par_store);
  Alcotest.(check (list string))
    "the v3 merged journal equals the single-file v2 journal" seq
    (normalized par_file);
  rm_rf seq_store;
  rm_rf par_store;
  Sys.remove par_file

(* -------------------------------------------------------------- *)
(* (d) Diskchaos fault semantics, one kind at a time               *)
(* -------------------------------------------------------------- *)

let chaos_io ?(seed = 7) ?(rate = 1.0) ?kill_at faults =
  Diskchaos.wrap ~settings:{ Diskchaos.seed; rate; kill_at; faults }
    Diskchaos.real

let read_file path =
  if not (Sys.file_exists path) then ""
  else In_channel.with_open_bin path In_channel.input_all

let test_fault_semantics () =
  let payload = "hello configuration world\n" in
  (* ENOSPC: the write raises and nothing lands *)
  let path = Filename.temp_file "conferr_v3_test" ".dat" in
  let io, st = chaos_io [ Diskchaos.Enospc ] in
  let f = io.Diskchaos.open_file ~append:false path in
  (try
     f.Diskchaos.write payload;
     Alcotest.fail "ENOSPC write did not raise"
   with Sys_error _ -> ());
  f.Diskchaos.flush ();
  f.Diskchaos.close ();
  Alcotest.(check string) "enospc: nothing written" "" (read_file path);
  Alcotest.(check int) "enospc: counted" 1 (Diskchaos.injected st);
  (* short write: the write raises but a strict prefix landed *)
  let io, _ = chaos_io [ Diskchaos.Short_write ] in
  let f = io.Diskchaos.open_file ~append:false path in
  (try
     f.Diskchaos.write payload;
     Alcotest.fail "short write did not raise"
   with Sys_error _ -> ());
  f.Diskchaos.flush ();
  f.Diskchaos.close ();
  let got = read_file path in
  Alcotest.(check bool) "short write: strict prefix" true
    (String.length got < String.length payload
    && got = String.sub payload 0 (String.length got));
  (* torn write: reports success but a strict prefix landed *)
  let io, _ = chaos_io [ Diskchaos.Torn_write ] in
  let f = io.Diskchaos.open_file ~append:false path in
  f.Diskchaos.write payload;
  f.Diskchaos.flush ();
  f.Diskchaos.close ();
  let got = read_file path in
  Alcotest.(check bool) "torn write: strict prefix, silent" true
    (String.length got < String.length payload
    && got = String.sub payload 0 (String.length got));
  (* fsync drop: the write buffers, the next flush lies and discards *)
  let io, st = chaos_io ~rate:0.5 ~seed:3 [ Diskchaos.Fsync_drop ] in
  let f = io.Diskchaos.open_file ~append:false path in
  let wrote = ref 0 in
  for i = 0 to 9 do
    f.Diskchaos.write (Printf.sprintf "line-%d\n" i);
    f.Diskchaos.flush ();
    incr wrote
  done;
  f.Diskchaos.close ();
  let kept =
    List.length
      (List.filter
         (fun l -> l <> "")
         (String.split_on_char '\n' (read_file path)))
  in
  Alcotest.(check int) "fsync drop: every dropped flush loses its line"
    (!wrote - Diskchaos.injected st)
    kept;
  Alcotest.(check bool) "fsync drop: something was dropped" true
    (Diskchaos.injected st > 0);
  (* kill point: writes land exactly up to the offset, then everything
     raises *)
  let io, st = chaos_io ~rate:0.0 ~kill_at:5 [] in
  let f = io.Diskchaos.open_file ~append:false path in
  (try
     (* bytes buffer on write and hit the kill counter when flushed,
        like the page cache they model *)
     f.Diskchaos.write "0123456789";
     f.Diskchaos.flush ();
     Alcotest.fail "kill point did not fire"
   with Diskchaos.Killed k -> Alcotest.(check int) "kill offset" 5 k);
  Alcotest.(check string) "exactly the bytes before the kill point" "01234"
    (read_file path);
  Alcotest.(check bool) "stats record the kill" true (Diskchaos.killed st);
  Alcotest.(check int) "written_bytes stops at the kill point" 5
    (Diskchaos.written_bytes st);
  (try
     (io.Diskchaos.open_file ~append:true path).Diskchaos.write "x";
     Alcotest.fail "dead io accepted a write"
   with Diskchaos.Killed _ -> ());
  Sys.remove path;
  (* an inert wrap is a configuration error *)
  match Diskchaos.wrap ~settings:{ Diskchaos.seed = 1; rate = 0.5; kill_at = None; faults = [] } Diskchaos.real with
  | _ -> Alcotest.fail "inert wrap accepted"
  | exception Invalid_argument _ -> ()

(* -------------------------------------------------------------- *)
(* (e) crash point at every byte offset across a segment boundary  *)
(* -------------------------------------------------------------- *)

(* The locked property: kill the writer after exactly [off] bytes of
   storage traffic (segment lines and manifest updates alike); then
   - fsck --repair brings the store back to clean,
   - what survived is a prefix of the appended entries, of length
     [ok] or [ok + 1] ([ok] appends returned; the fatal one may or
     may not have become durable first), and
   - appending the non-durable remainder (what --resume does)
     reconstructs exactly the original sequence. *)
let check_kill_at es seg_bytes off =
  let dir = temp_dir_name () in
  let io, st = chaos_io ~rate:0.0 ~kill_at:off [] in
  let ok = ref 0 in
  (try
     let w = Journal.open_append ~fresh:true ~segment_bytes:seg_bytes ~io dir in
     List.iter
       (fun e ->
         Journal.append w e;
         incr ok)
       es;
     Journal.close w
   with Journal.Fault _ -> ());
  if Diskchaos.killed st then begin
    ignore (Journal.survey ~repair:true dir);
    if not (Journal.survey_clean (Journal.survey dir)) then
      Alcotest.failf "offset %d: store not clean after repair" off;
    let durable = Journal.load dir in
    let n = List.length durable in
    if n <> !ok && n <> !ok + 1 then
      Alcotest.failf "offset %d: %d appends returned but %d entries durable"
        off !ok n;
    let expect_prefix = List.filteri (fun i _ -> i < n) es in
    if canonical durable <> canonical expect_prefix then
      Alcotest.failf "offset %d: durable entries are not a prefix" off;
    let rest = List.filteri (fun i _ -> i >= n) es in
    let w = Journal.open_append dir in
    List.iter (Journal.append w) rest;
    Journal.close w;
    if canonical (Journal.load dir) <> canonical es then
      Alcotest.failf "offset %d: resume did not reconstruct the journal" off
  end;
  rm_rf dir

let test_kill_sweep () =
  let es = entries 5 in
  let seg_bytes = 128 in
  (* measure the fault-free byte range so the sweep covers the whole
     write sequence, manifest updates included *)
  let dir = temp_dir_name () in
  let io, st = chaos_io ~rate:0.0 ~kill_at:max_int [] in
  write_store ~segment_bytes:seg_bytes ~io dir es;
  Alcotest.(check bool) "sweep range crosses a segment boundary" true
    (List.length (Segstore.segment_files dir) > 1);
  let total = Diskchaos.written_bytes st in
  rm_rf dir;
  for off = 0 to total do
    check_kill_at es seg_bytes off
  done

let prop_kill_anywhere =
  QCheck2.Test.make ~count:40
    ~name:"journal v3: any kill offset repairs clean and resumes exactly"
    QCheck2.Gen.(
      triple (int_range 1 10) (int_range 64 512) (float_range 0.0 1.0))
    (fun (n, seg_bytes, frac) ->
      let es = entries n in
      let dir = temp_dir_name () in
      let io, st = chaos_io ~rate:0.0 ~kill_at:max_int [] in
      write_store ~segment_bytes:seg_bytes ~io dir es;
      let total = Diskchaos.written_bytes st in
      rm_rf dir;
      let off = int_of_float (frac *. float_of_int total) in
      check_kill_at es seg_bytes off;
      true)

(* -------------------------------------------------------------- *)
(* (f) a seeded fault campaign stays durable, for every fault kind *)
(* -------------------------------------------------------------- *)

let test_campaign_durability () =
  let base = campaign_base () in
  let scenarios = campaign_scenarios ~limit:60 base in
  let total = List.length scenarios in
  List.iter
    (fun fault ->
      let label = Diskchaos.fault_label fault in
      let dir = temp_dir_name () in
      let io, _ = chaos_io ~seed:99 ~rate:0.15 [ fault ] in
      (* the campaign must terminate: either it completes (silent
         faults) or the first raising fault aborts it as Journal.Fault *)
      (try ignore (run_campaign ~journal_io:io ~segment_bytes:2048 ~jobs:4 dir scenarios)
       with Journal.Fault _ -> ());
      ignore (Journal.survey ~repair:true dir);
      Alcotest.(check bool) (label ^ ": fsck --repair leaves a clean store")
        true
        (Journal.survey_clean (Journal.survey dir));
      let durable = ids (Journal.load dir) in
      Alcotest.(check int) (label ^ ": no scenario journaled twice")
        (List.length durable)
        (List.length (List.sort_uniq compare durable));
      (* chaos off: --resume re-executes exactly the non-durable rest *)
      let _, snap = run_campaign ~resume:true ~jobs:4 dir scenarios in
      Alcotest.(check int) (label ^ ": resume re-executes zero durable scenarios")
        (total - List.length durable)
        snap.Progress.finished;
      let final = ids (Journal.load dir) in
      Alcotest.(check (list string))
        (label ^ ": every scenario journaled exactly once")
        (List.sort compare (List.map (fun (s : Errgen.Scenario.t) -> s.id) scenarios))
        (List.sort compare final);
      rm_rf dir)
    Diskchaos.all_faults

(* -------------------------------------------------------------- *)
(* (g) serve: a faulting campaign degrades alone                   *)
(* -------------------------------------------------------------- *)

let post path body =
  {
    Http.meth = "POST";
    target = path;
    path;
    query = [];
    version = "HTTP/1.1";
    headers = [];
    body;
  }

let submit_pg daemon =
  let resp =
    match Daemon.handle daemon (post "/campaigns" {|{"sut":"mini_pg","seed":7}|}) with
    | `Response r -> r
    | `Stream _ -> Alcotest.fail "expected a plain response"
  in
  Alcotest.(check int) "submit accepted" 202 resp.Http.status;
  let id =
    match Json.of_string (String.trim resp.Http.resp_body) with
    | Ok j -> Option.get (Option.bind (Json.member "id" j) Json.str)
    | Error msg -> Alcotest.failf "submit response is not JSON: %s" msg
  in
  match Daemon.find daemon id with
  | Some c -> c
  | None -> Alcotest.failf "campaign %s not registered" id

let test_serve_fault_isolation () =
  let state = temp_dir_name () in
  let journal_io cid =
    if cid <> "c0001" then None
    else
      Some
        (fst
           (Diskchaos.wrap
              ~settings:
                {
                  Diskchaos.default_settings with
                  rate = 1.0;
                  faults = [ Diskchaos.Enospc ];
                }
              Diskchaos.real))
  in
  let daemon =
    Daemon.create ~jobs:1 ~segment_bytes:512 ~journal_io ~state_dir:state ()
  in
  let c1 = submit_pg daemon in
  let c2 = submit_pg daemon in
  Daemon.wait daemon c1;
  Daemon.wait daemon c2;
  Alcotest.(check string) "faulted campaign fails" "failed"
    (Daemon.status_label c1);
  Alcotest.(check string) "co-tenant campaign completes" "done"
    (Daemon.status_label c2);
  let events, closed = Daemon.events_after daemon c1 0 in
  Alcotest.(check bool) "faulted stream closed" true closed;
  Alcotest.(check bool) "terminal event carries the error" true
    (List.exists
       (fun line ->
         match Json.of_string line with
         | Ok j -> Json.member "error" j <> None
         | Error _ -> false)
       events);
  let exposed = Metrics.expose (Daemon.registry daemon) in
  let contains needle =
    let nl = String.length needle and el = String.length exposed in
    let rec go i = i + nl <= el && (String.sub exposed i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "journal fault counter exposed" true
    (contains "conferr_journal_faults_total");
  Alcotest.(check bool) "disk fault gauge exposed" true
    (contains "conferr_serve_disk_faults 1");
  Daemon.drain daemon;
  rm_rf state

(* -------------------------------------------------------------- *)
(* (h) path validation and the fsck JSON report                    *)
(* -------------------------------------------------------------- *)

let test_validate_path () =
  let ok = Filename.temp_file "conferr_v3_test" ".jsonl" in
  Alcotest.(check bool) "plain writable file path is fine" true
    (Result.is_ok (Journal.validate_path ok));
  Alcotest.(check bool) "missing parent directory is an error" true
    (Result.is_error (Journal.validate_path "/nonexistent-dir/journal.jsonl"));
  let dir = temp_dir_name () in
  Unix.mkdir dir 0o755;
  Alcotest.(check bool) "a plain directory is not a single-file journal" true
    (Result.is_error (Journal.validate_path dir));
  Alcotest.(check bool) "an existing file cannot become a store" true
    (Result.is_error (Journal.validate_path ~segment_bytes:512 ok));
  let store = temp_dir_name () in
  write_store ~segment_bytes:256 store (entries 3);
  Alcotest.(check bool) "an existing store is fine with --segment-bytes" true
    (Result.is_ok (Journal.validate_path ~segment_bytes:512 store));
  Alcotest.(check bool) "an existing store is fine without it too" true
    (Result.is_ok (Journal.validate_path store));
  (* the library-level counterpart: opening an impossible path raises
     Fault, not a bare Sys_error *)
  (try
     ignore (Journal.open_append "/nonexistent-dir/journal.jsonl");
     Alcotest.fail "open_append on a missing parent did not raise"
   with Journal.Fault _ -> ());
  Sys.remove ok;
  Unix.rmdir dir;
  rm_rf store

let test_fsck_json () =
  let dir = temp_dir_name () in
  let es = entries 8 in
  write_store ~segment_bytes:256 dir es;
  (* bit rot: garbage appended to a sealed segment breaks both the line
     format and the manifest CRC *)
  let seg =
    match Segstore.segment_files dir with
    | first :: _ -> Filename.concat dir first
    | [] -> Alcotest.fail "store has no segments"
  in
  let oc = open_out_gen [ Open_append ] 0o644 seg in
  output_string oc "{ not json";
  close_out oc;
  let damaged = Journal.survey dir in
  let member name j = Option.get (Json.member name j) in
  let j = Journal.survey_to_json damaged in
  Alcotest.(check bool) "damaged store reports clean:false" true
    (member "clean" j = Json.Bool false);
  Alcotest.(check bool) "totals count the torn line" true
    (member "torn" j = Json.Num 1.);
  (match member "segments" j with
   | Json.Arr segs ->
     Alcotest.(check int) "one object per segment"
       (List.length (Segstore.segment_files dir))
       (List.length segs);
     Alcotest.(check bool) "the damaged segment fails its CRC" true
       (List.exists (fun s -> member "crc_ok" s = Json.Bool false) segs)
   | _ -> Alcotest.fail "segments member is not an array");
  let healed = Journal.survey ~repair:true dir in
  let j = Journal.survey_to_json healed in
  Alcotest.(check bool) "repaired report says clean:true" true
    (member "clean" j = Json.Bool true);
  Alcotest.(check bool) "repaired flag set" true
    (member "repaired" j = Json.Bool true);
  Alcotest.(check (list string)) "every entry survived the repair"
    (canonical es) (canonical (Journal.load dir));
  rm_rf dir

let suite =
  [
    Alcotest.test_case "v3: store round-trip with rotation" `Quick
      test_store_roundtrip;
    Alcotest.test_case "v3: v1/v2/v3 journals all load" `Quick
      test_version_compat;
    Alcotest.test_case "v3: merged journal is jobs- and layout-independent"
      `Slow test_jobs_identity;
    Alcotest.test_case "diskchaos: per-fault semantics" `Quick
      test_fault_semantics;
    Alcotest.test_case "v3: kill at every byte offset repairs and resumes"
      `Slow test_kill_sweep;
    QCheck_alcotest.to_alcotest prop_kill_anywhere;
    Alcotest.test_case "v3: seeded fault campaigns stay durable" `Slow
      test_campaign_durability;
    Alcotest.test_case "serve: journal fault degrades one campaign" `Slow
      test_serve_fault_isolation;
    Alcotest.test_case "v3: journal path validation" `Quick test_validate_path;
    Alcotest.test_case "fsck: JSON report and repair" `Quick test_fsck_json;
  ]
