(* The observability layer: metrics round-trips, trace determinism
   across --jobs, journal v2.1, the HTML dashboard, and the
   inert-by-default contract (ISSUE 4 acceptance criteria). *)

module Engine = Conferr.Engine
module Outcome = Conferr.Outcome
module Metrics = Conferr_obsv.Metrics
module Trace = Conferr_obsv.Trace
module Clock = Conferr_obsv.Clock
module Span = Conferr_obsv.Span
module Report = Conferr_obsv.Report
module Json = Conferr_exec.Json
module Journal = Conferr_exec.Journal
module Executor = Conferr_exec.Executor
module Progress = Conferr_exec.Progress
module Scenario = Errgen.Scenario

let sut = Suts.Mini_pg.sut

let base () =
  match Engine.parse_default_config sut with
  | Ok base -> base
  | Error msg -> Alcotest.failf "postgres default config: %s" msg

let scenarios base =
  Conferr.Campaign.typo_scenarios
    ~rng:(Conferr_util.Rng.create 7)
    ~faultload:Conferr.Campaign.paper_faultload sut base

let silent (_ : Progress.event) = ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let temp_path suffix =
  let path = Filename.temp_file "conferr_obsv_test" suffix in
  Sys.remove path;
  path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* -------------------------------------------------------------- *)
(* (a) Prometheus exposition round-trips exactly                   *)
(* -------------------------------------------------------------- *)

let test_exposition_round_trip () =
  let reg = Metrics.create () in
  Metrics.declare reg Metrics.Counter "conferr_demo_total"
    ~help:"counts\nthings";
  (* label values exercising every escape: backslash, quote, newline *)
  Metrics.inc reg "conferr_demo_total"
    ~labels:[ ("path", "C:\\temp"); ("msg", "say \"hi\"\nnow") ];
  Metrics.inc reg "conferr_demo_total" ~by:2.5 ~labels:[ ("path", "plain") ];
  (* floats that must survive the text format bit-for-bit *)
  Metrics.set reg "conferr_demo_gauge" (0.1 +. 0.2);
  Metrics.set reg "conferr_demo_big" 1e300;
  Metrics.set reg "conferr_demo_tiny" (-1.5e-17);
  Metrics.set reg "conferr_demo_inf" infinity;
  Metrics.set reg "conferr_demo_nan" nan;
  Metrics.observe reg "conferr_demo_ms" 3.2;
  let text = Metrics.expose reg in
  (match Metrics.parse_exposition text with
  | Error msg -> Alcotest.failf "parse_exposition: %s" msg
  | Ok parsed ->
    (* Stdlib.compare treats nan as equal to itself, unlike (=) *)
    Alcotest.(check bool)
      "parse (expose reg) returns exactly (samples reg)" true
      (compare parsed (Metrics.samples reg) = 0));
  Alcotest.(check bool) "help newline folded into the HELP line" true
    (contains text "# HELP conferr_demo_total counts things")

let test_counter_guards () =
  let reg = Metrics.create () in
  Metrics.inc reg "conferr_guard_total";
  Alcotest.check_raises "negative increment rejected"
    (Invalid_argument "Metrics: negative increment of counter conferr_guard_total")
    (fun () -> Metrics.inc reg "conferr_guard_total" ~by:(-1.));
  Alcotest.check_raises "kind conflict rejected"
    (Invalid_argument "Metrics: conferr_guard_total is a counter, not a gauge")
    (fun () -> Metrics.declare reg Metrics.Gauge "conferr_guard_total")

(* -------------------------------------------------------------- *)
(* (b) histogram bucket boundaries are le-inclusive                *)
(* -------------------------------------------------------------- *)

let sample_value samples name labels =
  match
    List.find_opt
      (fun (s : Metrics.sample) -> s.sample_name = name && s.labels = labels)
      samples
  with
  | Some s -> s.value
  | None -> Alcotest.failf "sample %s%s not found" name
              (String.concat "," (List.map snd labels))

let test_histogram_boundaries () =
  let reg = Metrics.create () in
  Metrics.declare reg Metrics.Histogram "h" ~buckets:[ 1.; 2.; 4. ];
  Metrics.observe reg "h" 1.0;
  (* exactly on a bound: belongs to that bucket (le-inclusive) *)
  Metrics.observe reg "h" 1.0000001;
  (* just above: next bucket *)
  Metrics.observe reg "h" 4.5;
  (* beyond the last finite bound: +Inf only *)
  let s = Metrics.samples reg in
  Alcotest.(check (float 0.)) "le=1 holds the on-bound observation" 1.
    (sample_value s "h_bucket" [ ("le", "1") ]);
  Alcotest.(check (float 0.)) "le=2 is cumulative" 2.
    (sample_value s "h_bucket" [ ("le", "2") ]);
  Alcotest.(check (float 0.)) "le=4 unchanged" 2.
    (sample_value s "h_bucket" [ ("le", "4") ]);
  Alcotest.(check (float 0.)) "+Inf counts everything" 3.
    (sample_value s "h_bucket" [ ("le", "+Inf") ]);
  Alcotest.(check (float 0.)) "count" 3. (sample_value s "h_count" []);
  Alcotest.(check (float 1e-9)) "sum" 6.5000001 (sample_value s "h_sum" [])

(* -------------------------------------------------------------- *)
(* (c) the span clock sums passes in pipeline order                *)
(* -------------------------------------------------------------- *)

let test_clock_phases () =
  let c = Clock.create () in
  let probe = Clock.probe c in
  Alcotest.(check int) "wrap is transparent" 3
    (probe.Span.wrap Span.Run (fun () -> 3));
  ignore (probe.Span.wrap Span.Generate (fun () -> ()));
  ignore (probe.Span.wrap Span.Run (fun () -> ()));
  (try probe.Span.wrap Span.Classify (fun () -> failwith "boom")
   with Failure _ -> ());
  let pm = Clock.phase_ms c in
  Alcotest.(check (list string))
    "only phases that ran, in canonical pipeline order"
    [ "generate"; "run"; "classify" ] (List.map fst pm);
  Alcotest.(check int) "four marks recorded (two run passes)" 4
    (List.length (Clock.marks c));
  Alcotest.(check bool) "no negative phase totals" true
    (List.for_all (fun (_, ms) -> ms >= 0.) pm);
  Alcotest.(check string) "span ids are deterministic" (Span.id "typo-0001")
    (Span.id "typo-0001");
  Alcotest.(check int) "span ids are 16 hex digits" 16
    (String.length (Span.id "typo-0001"))

(* -------------------------------------------------------------- *)
(* (d) masked traces are byte-identical across --jobs              *)
(* -------------------------------------------------------------- *)

let run_with_trace jobs =
  let base = base () in
  let scenarios = scenarios base in
  let trace = Trace.create () in
  let _ =
    Executor.run_from
      ~settings:{ Executor.default_settings with jobs; trace = Some trace }
      ~on_event:silent ~sut ~base ~scenarios ()
  in
  (trace, List.length scenarios)

let test_trace_determinism () =
  let t1, n = run_with_trace 1 in
  let t4, _ = run_with_trace 4 in
  let c1 = Trace.chrome ~mask_wall:true t1 in
  let c4 = Trace.chrome ~mask_wall:true t4 in
  Alcotest.(check string) "masked chrome export identical for jobs=1 and 4" c1
    c4;
  Alcotest.(check int) "every scenario recorded" n (Trace.recorded t1);
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped t1);
  match Json.of_string c1 with
  | Error msg -> Alcotest.failf "chrome export is not valid JSON: %s" msg
  | Ok json ->
    (match Json.member "traceEvents" json with
    | Some (Json.Arr events) ->
      Alcotest.(check bool) "one scenario span plus phase spans each" true
        (List.length events > n)
    | _ -> Alcotest.fail "no traceEvents array")

(* -------------------------------------------------------------- *)
(* (e) observability off leaves the journal untouched              *)
(* -------------------------------------------------------------- *)

let run_with_journal ~jobs ~observed path =
  let base = base () in
  let scenarios = scenarios base in
  let settings =
    {
      Executor.default_settings with
      jobs;
      journal_path = Some path;
      metrics = (if observed then Some (Metrics.create ()) else None);
    }
  in
  ignore (Executor.run_from ~settings ~on_event:silent ~sut ~base ~scenarios ())

let strip_timing (e : Journal.entry) = { e with Journal.elapsed_ms = 0. }

let test_metrics_off_byte_identity () =
  let p1 = temp_path ".jsonl" and p4 = temp_path ".jsonl" in
  let po = temp_path ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ p1; p4; po ])
    (fun () ->
      run_with_journal ~jobs:1 ~observed:false p1;
      run_with_journal ~jobs:4 ~observed:false p4;
      run_with_journal ~jobs:1 ~observed:true po;
      Alcotest.(check bool) "unobserved journal has no phase field" false
        (contains (read_file p1) "\"phase\"");
      (* elapsed_ms is real wall time, the single nondeterministic field;
         everything else must serialize identically for any --jobs *)
      let lines path =
        Journal.load path
        |> List.map (fun e -> Json.to_string (Journal.entry_to_json (strip_timing e)))
      in
      Alcotest.(check (list string))
        "journals identical across --jobs up to wall time" (lines p1) (lines p4);
      Alcotest.(check bool) "observed journal carries phase timings" true
        (contains (read_file po) "\"phase\"");
      (* and the observed run changes nothing else *)
      Alcotest.(check (list string))
        "observed journal identical up to wall time and phase" (lines p1)
        (Journal.load po
        |> List.map (fun e ->
               Json.to_string
                 (Journal.entry_to_json
                    { (strip_timing e) with Journal.phase_ms = [] }))))

(* -------------------------------------------------------------- *)
(* (f) journal v2.1: the phase field round-trips and is validated  *)
(* -------------------------------------------------------------- *)

let entry_with_phases =
  {
    Journal.scenario_id = "typo-0001";
    class_name = "typo/value";
    description = "omission at f:p";
    seed = 42L;
    outcome = Outcome.Passed;
    elapsed_ms = 1.5;
    attempts = 1;
    votes = [];
    phase_ms = [ ("spawn", 0.5); ("run", 1.0) ];
  }

let test_journal_phase_round_trip () =
  (match Journal.entry_of_json (Journal.entry_to_json entry_with_phases) with
  | Ok e ->
    Alcotest.(check bool) "entry round-trips with phase_ms" true
      (compare e entry_with_phases = 0)
  | Error msg -> Alcotest.failf "round-trip: %s" msg);
  let plain = { entry_with_phases with Journal.phase_ms = [] } in
  Alcotest.(check bool) "empty phase_ms is omitted from the wire" false
    (contains (Json.to_string (Journal.entry_to_json plain)) "\"phase\"")

let test_journal_phase_ill_typed () =
  let mangle phase_json =
    match Journal.entry_to_json entry_with_phases with
    | Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, v) -> if k = "phase" then (k, phase_json) else (k, v))
           fields)
    | _ -> Alcotest.fail "entry_to_json is not an object"
  in
  let rejects what phase_json =
    match Journal.entry_of_json (mangle phase_json) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "ill-typed phase accepted: %s" what
  in
  rejects "string" (Json.Str "nope");
  rejects "array" (Json.Arr [ Json.Num 1. ]);
  rejects "non-numeric member" (Json.Obj [ ("run", Json.Str "fast") ]);
  rejects "negative duration" (Json.Obj [ ("run", Json.Num (-1.)) ])

let test_fsck_empty_journal () =
  let path = temp_path ".jsonl" in
  let oc = open_out path in
  close_out oc;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let report = Journal.fsck path in
      Alcotest.(check bool) "0-byte journal is clean" true
        (Journal.clean report);
      Alcotest.(check int) "no valid lines" 0 report.Journal.valid;
      Alcotest.(check int) "no torn lines" 0 report.Journal.torn;
      Alcotest.(check int) "no corrupt lines" 0 report.Journal.corrupt)

(* -------------------------------------------------------------- *)
(* (g) the dashboard renders a chaos-shaped campaign               *)
(* -------------------------------------------------------------- *)

let test_report_html () =
  let row id class_name outcome detail signature flaky =
    {
      Report.id;
      class_name;
      outcome;
      detail;
      signature;
      elapsed_ms = 1.25;
      attempts = (if flaky then 3 else 1);
      flaky;
      phase_ms = [ ("spawn", 0.25); ("run", 1.0) ];
    }
  in
  let rows =
    [
      row "typo-0001" "typo/name" "startup" "unknown directive" "s1" false;
      row "typo-0002" "typo/value" "functional" "query failed" "s2" false;
      row "typo-0003" "typo/value" "ignored" "" "s3" false;
      row "typo-0004" "typo/structure" "crashed" "timeout after 1.0s [harness]"
        "s4" true;
      row "typo-0005" "typo/structure" "crashed" "timeout after 1.0s [harness]"
        "s4" false;
      row "typo-0006" "typo/name" "n/a" "inexpressible" "s5" false;
    ]
  in
  let reg = Metrics.create () in
  Metrics.inc reg "conferr_chaos_injections_total" ~labels:[ ("fault", "hang") ];
  Metrics.inc reg "conferr_breaker_trips_total"
    ~labels:[ ("bucket", "pg x typo/structure") ];
  let html =
    Report.html ~title:"chaos campaign" ~rows
      ~metrics_text:(Metrics.expose reg) ()
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "html contains %S" needle) true
        (contains html needle))
    [
      "<html";
      "</html>";
      "<svg";
      "chaos campaign";
      "typo-0004";
      "typo/structure";
      "crashed";
      "conferr_chaos_injections_total";
    ];
  (* self-contained: no external fetches of any kind *)
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "html does not reference %S" needle)
        false (contains html needle))
    [ "http://"; "https://"; "<script src" ];
  let out = temp_path ".html" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists out then Sys.remove out)
    (fun () ->
      Report.write_file ~title:"chaos campaign" ~rows out;
      Alcotest.(check bool) "write_file produces a non-empty file" true
        (String.length (read_file out) > 1000))

(* -------------------------------------------------------------- *)
(* (h) progress counters and the registry agree                    *)
(* -------------------------------------------------------------- *)

let test_progress_metrics_agree () =
  let base = base () in
  let scenarios = scenarios base in
  let reg = Metrics.create () in
  let _, snapshot =
    Executor.run_from
      ~settings:{ Executor.default_settings with jobs = 2; metrics = Some reg }
      ~on_event:silent ~sut ~base ~scenarios ()
  in
  let total name =
    Metrics.family reg name |> List.fold_left (fun acc (_, v) -> acc +. v) 0.
  in
  Alcotest.(check (float 0.)) "started counter matches snapshot"
    (float_of_int snapshot.Progress.started)
    (total "conferr_scenarios_started_total");
  Alcotest.(check (float 0.)) "finished counter matches snapshot"
    (float_of_int snapshot.Progress.finished)
    (total "conferr_scenarios_finished_total");
  Alcotest.(check (float 0.)) "per-outcome families agree"
    (total "conferr_scenarios_finished_total")
    (total "conferr_scenario_outcomes_total");
  List.iter
    (fun (label, n) ->
      Alcotest.(check (option (float 0.)))
        (Printf.sprintf "outcome %s agrees" label)
        (Some (float_of_int n))
        (Metrics.value reg "conferr_scenarios_finished_total"
           ~labels:[ ("outcome", label) ]))
    snapshot.Progress.by_label

let suite =
  [
    Alcotest.test_case "exposition round-trip" `Quick test_exposition_round_trip;
    Alcotest.test_case "counter guards" `Quick test_counter_guards;
    Alcotest.test_case "histogram boundaries" `Quick test_histogram_boundaries;
    Alcotest.test_case "clock phases" `Quick test_clock_phases;
    Alcotest.test_case "trace determinism across jobs" `Quick
      test_trace_determinism;
    Alcotest.test_case "metrics off leaves journal bytes" `Quick
      test_metrics_off_byte_identity;
    Alcotest.test_case "journal v2.1 phase round-trip" `Quick
      test_journal_phase_round_trip;
    Alcotest.test_case "journal v2.1 ill-typed phase" `Quick
      test_journal_phase_ill_typed;
    Alcotest.test_case "fsck: empty journal is clean" `Quick
      test_fsck_empty_journal;
    Alcotest.test_case "report.html renders" `Quick test_report_html;
    Alcotest.test_case "progress and registry agree" `Quick
      test_progress_metrics_agree;
  ]
