(* The serve subsystem (doc/serve.md): HTTP parser totality, scheduler
   fairness, the with_timeout watchdog leak fix, and the daemon's
   lifecycle — determinism vs the one-shot CLI path, backpressure,
   cancel, drain, metrics and dashboard (ISSUE 6 acceptance criteria). *)

module Http = Conferr_serve.Http
module Daemon = Conferr_serve.Daemon
module Scheduler = Conferr_pool.Scheduler
module Executor = Conferr_exec.Executor
module Journal = Conferr_exec.Journal
module Progress = Conferr_exec.Progress
module Metrics = Conferr_obsv.Metrics
module Json = Conferr_obsv.Json
module Policy = Conferr_harden.Policy

(* -------------------------------------------------------------- *)
(* HTTP request parser: totality and edge cases                    *)
(* -------------------------------------------------------------- *)

let parse s = Http.parse_request (Http.reader_of_string s)

let check_error name expected_status s =
  match parse s with
  | `Error (status, _) ->
    Alcotest.(check int) (name ^ ": status") expected_status status
  | `Ok _ -> Alcotest.failf "%s: parsed as a valid request" name
  | `Eof -> Alcotest.failf "%s: parsed as clean EOF" name

let test_parse_simple () =
  match parse "GET /campaigns/c0001?from=3&x=a%20b HTTP/1.1\r\nHost: h\r\nX-One: 1\r\n\r\n" with
  | `Ok req ->
    Alcotest.(check string) "method" "GET" req.Http.meth;
    Alcotest.(check string) "path" "/campaigns/c0001" req.Http.path;
    Alcotest.(check (list (pair string string)))
      "query decoded" [ ("from", "3"); ("x", "a b") ] req.Http.query;
    Alcotest.(check (option string)) "headers lowercased" (Some "1")
      (Http.header req "x-one");
    Alcotest.(check string) "no body" "" req.Http.body;
    Alcotest.(check bool) "1.1 keeps alive" true (Http.keep_alive req)
  | _ -> Alcotest.fail "simple request did not parse"

let test_parse_body () =
  match parse "POST /campaigns HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello" with
  | `Ok req -> Alcotest.(check string) "body" "hello" req.Http.body
  | _ -> Alcotest.fail "body request did not parse"

let test_parse_pipelined () =
  let r =
    Http.reader_of_string
      "GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nok"
  in
  (match Http.parse_request r with
   | `Ok req -> Alcotest.(check string) "first" "/a" req.Http.path
   | _ -> Alcotest.fail "first pipelined request");
  (match Http.parse_request r with
   | `Ok req ->
     Alcotest.(check string) "second" "/b" req.Http.path;
     Alcotest.(check string) "second body" "ok" req.Http.body
   | _ -> Alcotest.fail "second pipelined request");
  match Http.parse_request r with
  | `Eof -> ()
  | _ -> Alcotest.fail "expected clean EOF after the pipeline"

let test_parse_malformed () =
  check_error "empty line soup" 400 "\r\n\r\n\r\n\r\n\r\n\r\n\r\n\r\n\r\nGET / HTTP/1.1\r\n\r\n";
  check_error "two-part request line" 400 "GET /\r\n\r\n";
  check_error "non-token method" 400 "GE T / HTTP/1.1 x\r\n\r\n";
  check_error "relative target" 400 "GET foo HTTP/1.1\r\n\r\n";
  check_error "bad version" 505 "GET / HTTP/2.0\r\n\r\n";
  check_error "truncated request line" 400 "GET / HT";
  check_error "truncated headers" 400 "GET / HTTP/1.1\r\nHost: h\r\n";
  check_error "colonless header" 400 "GET / HTTP/1.1\r\nno colon here\r\n\r\n";
  check_error "header name with space" 400 "GET / HTTP/1.1\r\nbad name: x\r\n\r\n";
  check_error "content-length junk" 400
    "POST / HTTP/1.1\r\nContent-Length: 12abc\r\n\r\n";
  check_error "content-length negative" 400
    "POST / HTTP/1.1\r\nContent-Length: -4\r\n\r\n";
  check_error "conflicting content-lengths" 400
    "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nhi";
  check_error "truncated body" 400 "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nhi";
  check_error "chunked request" 501
    "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n"

let test_parse_limits () =
  check_error "request line too long" 414
    (Printf.sprintf "GET /%s HTTP/1.1\r\n\r\n"
       (String.make (Http.max_line_bytes + 10) 'a'));
  check_error "header line too long" 431
    (Printf.sprintf "GET / HTTP/1.1\r\nx: %s\r\n\r\n"
       (String.make (Http.max_line_bytes + 10) 'b'));
  let many =
    String.concat ""
      (List.init (Http.max_headers + 2) (fun i -> Printf.sprintf "h%d: v\r\n" i))
  in
  check_error "too many headers" 431
    ("GET / HTTP/1.1\r\n" ^ many ^ "\r\n");
  check_error "body over the cap" 413
    (Printf.sprintf "POST / HTTP/1.1\r\nContent-Length: %d\r\n\r\n"
       (Http.max_body_bytes + 1));
  check_error "body absurdly large" 413
    "POST / HTTP/1.1\r\nContent-Length: 99999999999999\r\n\r\n"

(* Totality: whatever the bytes, the parser returns a constructor —
   and every `Error carries a 4xx/5xx status.  This is the property the
   connection handler's no-escaping-exception guarantee rests on. *)
let prop_parser_total =
  QCheck2.Test.make ~count:500 ~name:"http: parse_request is total on junk"
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (0 -- 200))
    (fun s ->
      match parse s with
      | `Ok _ | `Eof -> true
      | `Error (status, _) -> status >= 400 && status < 600)

(* Structured junk: a request-line-shaped prefix with random tails
   exercises the header/body paths more than uniform bytes do. *)
let prop_parser_total_structured =
  QCheck2.Test.make ~count:500
    ~name:"http: parse_request is total on request-shaped junk"
    QCheck2.Gen.(
      pair (string_size ~gen:printable (0 -- 80))
        (string_size ~gen:(char_range '\000' '\255') (0 -- 120)))
    (fun (head, tail) ->
      match parse ("GET /" ^ head ^ " HTTP/1.1\r\n" ^ tail) with
      | `Ok _ | `Eof -> true
      | `Error (status, _) -> status >= 400 && status < 600)

let prop_wellformed_roundtrip =
  QCheck2.Test.make ~count:300
    ~name:"http: well-formed requests parse back their parts"
    QCheck2.Gen.(
      pair
        (string_size ~gen:(char_range 'a' 'z') (1 -- 20))
        (string_size ~gen:(char_range 'a' 'z') (0 -- 200)))
    (fun (path, body) ->
      match
        parse
          (Printf.sprintf "POST /%s HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
             path (String.length body) body)
      with
      | `Ok req -> req.Http.path = "/" ^ path && req.Http.body = body
      | _ -> false)

(* The connection loop itself must not raise either, even when the
   handler does: drive it over a socketpair and read the 500 back. *)
let test_serve_connection_handler_exn () =
  let client, server = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let handler _req = failwith "handler boom" in
  let t = Thread.create (fun () -> Http.serve_connection handler server) () in
  let oc = Unix.out_channel_of_descr client in
  output_string oc "GET / HTTP/1.1\r\n\r\n";
  flush oc;
  let r = Http.reader_of_fd client in
  (match Http.parse_response_head r with
   | Ok (status, _) -> Alcotest.(check int) "handler exn becomes 500" 500 status
   | Error msg -> Alcotest.failf "response head: %s" msg);
  Thread.join t;
  Unix.close client;
  Unix.close server

(* -------------------------------------------------------------- *)
(* Scheduler: fairness, backpressure, cancel, failure propagation  *)
(* -------------------------------------------------------------- *)

(* Round-robin fairness, deterministically: hold the single worker on a
   gate task owned by tenant A, queue four tasks for each tenant, then
   open the gate.  The ring was rotated past A by the gate pick, so the
   trace must strictly alternate B A B A … — neither tenant starves
   within an epoch. *)
let test_scheduler_fairness () =
  let sched = Scheduler.create ~jobs:1 () in
  let a = Scheduler.tenant ~name:"a" sched in
  let b = Scheduler.tenant ~name:"b" sched in
  let gate_lock = Mutex.create () in
  let gate_open = ref false in
  let gate_cond = Condition.create () in
  let trace = ref [] in
  let trace_lock = Mutex.create () in
  let note tag () =
    Mutex.lock trace_lock;
    trace := tag :: !trace;
    Mutex.unlock trace_lock
  in
  let gate () =
    Mutex.lock gate_lock;
    while not !gate_open do
      Condition.wait gate_cond gate_lock
    done;
    Mutex.unlock gate_lock
  in
  Alcotest.(check bool) "gate queued" true (Scheduler.submit a gate = `Queued);
  (* give the worker time to pick the gate before the real tasks land *)
  Thread.delay 0.05;
  for _ = 1 to 4 do
    ignore (Scheduler.submit a (note "a"));
    ignore (Scheduler.submit b (note "b"))
  done;
  Mutex.lock gate_lock;
  gate_open := true;
  Condition.broadcast gate_cond;
  Mutex.unlock gate_lock;
  Scheduler.wait a;
  Scheduler.wait b;
  Scheduler.shutdown sched;
  Alcotest.(check (list string)) "strict round-robin alternation"
    [ "b"; "a"; "b"; "a"; "b"; "a"; "b"; "a" ]
    (List.rev !trace)

let test_scheduler_queue_cap () =
  let sched = Scheduler.create ~jobs:1 () in
  let gate = Mutex.create () in
  Mutex.lock gate;
  let tn = Scheduler.tenant ~queue_cap:2 sched in
  (* the first submission may start running immediately; the cap governs
     the queue behind it *)
  ignore (Scheduler.submit tn (fun () -> Mutex.lock gate; Mutex.unlock gate));
  Thread.delay 0.05;
  Alcotest.(check bool) "1st queued" true (Scheduler.submit tn ignore = `Queued);
  Alcotest.(check bool) "2nd queued" true (Scheduler.submit tn ignore = `Queued);
  Alcotest.(check bool) "3rd rejected" true
    (Scheduler.submit tn ignore = `Rejected);
  Mutex.unlock gate;
  Scheduler.wait tn;
  Scheduler.shutdown sched

let test_scheduler_cancel_and_failure () =
  let sched = Scheduler.create ~jobs:1 () in
  let gate = Mutex.create () in
  Mutex.lock gate;
  let tn = Scheduler.tenant sched in
  ignore (Scheduler.submit tn (fun () -> Mutex.lock gate; Mutex.unlock gate));
  Thread.delay 0.05;
  ignore (Scheduler.submit tn ignore);
  ignore (Scheduler.submit tn ignore);
  let dropped = Scheduler.cancel tn in
  Mutex.unlock gate;
  Scheduler.wait tn;
  Alcotest.(check int) "queued tasks dropped" 2 dropped;
  Alcotest.(check bool) "cancelled tenant rejects" true
    (Scheduler.submit tn ignore = `Rejected);
  let failing = Scheduler.tenant sched in
  ignore (Scheduler.submit failing (fun () -> failwith "task boom"));
  (match Scheduler.wait failing with
   | () -> Alcotest.fail "wait did not re-raise the task failure"
   | exception Failure msg ->
     Alcotest.(check string) "first failure re-raised" "task boom" msg);
  (* the failure is delivered exactly once *)
  Scheduler.wait failing;
  Scheduler.shutdown sched

(* -------------------------------------------------------------- *)
(* with_timeout: the watchdog no longer leaks silently             *)
(* -------------------------------------------------------------- *)

let test_with_timeout_no_leak_on_success () =
  let before = Conferr_pool.abandoned_workers () in
  (match Conferr_pool.with_timeout ~timeout_s:5.0 (fun () -> 41 + 1) with
   | Some 42 -> ()
   | _ -> Alcotest.fail "with_timeout lost the result");
  Alcotest.(check int) "no abandoned workers on success" before
    (Conferr_pool.abandoned_workers ())

let test_with_timeout_abandoned_accounting () =
  let before = Conferr_pool.abandoned_workers () in
  let release = Atomic.make false in
  (match
     Conferr_pool.with_timeout ~timeout_s:0.05 (fun () ->
         while not (Atomic.get release) do
           Thread.yield ()
         done)
   with
   | None -> ()
   | Some () -> Alcotest.fail "expected a timeout");
  Alcotest.(check int) "overrunning worker counted as abandoned" (before + 1)
    (Conferr_pool.abandoned_workers ());
  (* once the stuck computation finishes, the worker un-counts itself *)
  Atomic.set release true;
  let deadline = Unix.gettimeofday () +. 5.0 in
  while
    Conferr_pool.abandoned_workers () > before
    && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.01
  done;
  Alcotest.(check int) "abandoned count drains to zero" before
    (Conferr_pool.abandoned_workers ())

(* -------------------------------------------------------------- *)
(* Daemon lifecycle                                                *)
(* -------------------------------------------------------------- *)

let temp_dir () =
  let path = Filename.temp_file "conferr_serve_test" "" in
  Sys.remove path;
  path

let get path = { Http.meth = "GET"; target = path; path; query = []; version = "HTTP/1.1"; headers = []; body = "" }

let post path body =
  { (get path) with Http.meth = "POST"; body }

let response_of = function
  | `Response r -> r
  | `Stream _ -> Alcotest.fail "expected a plain response, got a stream"

let json_of (resp : Http.response) =
  match Json.of_string (String.trim resp.Http.resp_body) with
  | Ok j -> j
  | Error msg -> Alcotest.failf "response is not JSON: %s" msg

let str_member name json =
  match Option.bind (Json.member name json) Json.str with
  | Some s -> s
  | None -> Alcotest.failf "response has no string member %S" name

let submit_pg ?(extra = []) daemon =
  let resp =
    response_of
      (Daemon.handle daemon
         (post "/campaigns"
            (Json.to_string
               (Json.Obj (("sut", Json.Str "mini_pg")
                          :: ("seed", Json.Num 7.) :: extra)))))
  in
  Alcotest.(check int) "submit accepted" 202 resp.Http.status;
  let id = str_member "id" (json_of resp) in
  match Daemon.find daemon id with
  | Some c -> c
  | None -> Alcotest.failf "campaign %s not registered" id

(* One-shot CLI-path journal for the same campaign, for determinism
   comparisons. *)
let oneshot_journal () =
  let sut = Suts.Mini_pg.sut in
  let base =
    match Conferr.Engine.parse_default_config sut with
    | Ok base -> base
    | Error msg -> Alcotest.failf "postgres default config: %s" msg
  in
  let scenarios =
    Conferr.Campaign.typo_scenarios
      ~rng:(Conferr_util.Rng.create 7)
      ~faultload:Conferr.Campaign.paper_faultload sut base
  in
  let path = Filename.temp_file "conferr_serve_oneshot" ".jsonl" in
  let _ =
    Executor.run_from
      ~settings:
        { Executor.default_settings with campaign_seed = 7;
          journal_path = Some path }
      ~on_event:(fun _ -> ()) ~sut ~base ~scenarios ()
  in
  path

(* The determinism contract: wall-clock fields aside, the daemon's
   journal is the CLI journal. *)
let normalize_entries path =
  List.map
    (fun (e : Journal.entry) ->
      Json.to_string (Journal.entry_to_json { e with elapsed_ms = 0.; phase_ms = [] }))
    (Journal.load path)

let test_daemon_determinism () =
  let daemon = Daemon.create ~jobs:1 ~state_dir:(temp_dir ()) () in
  let c = submit_pg daemon in
  Daemon.wait daemon c;
  Alcotest.(check string) "campaign ran to completion" "done"
    (Daemon.status_label c);
  let summary = Daemon.summary_json c in
  let journal = str_member "journal" summary in
  let oneshot = oneshot_journal () in
  Alcotest.(check (list string))
    "daemon journal == one-shot journal modulo wall-clock"
    (normalize_entries oneshot) (normalize_entries journal);
  Daemon.drain daemon

let test_daemon_concurrent_campaigns () =
  let daemon = Daemon.create ~jobs:1 ~state_dir:(temp_dir ()) () in
  let c1 = submit_pg daemon in
  let c2 = submit_pg daemon in
  Daemon.wait daemon c1;
  Daemon.wait daemon c2;
  Alcotest.(check string) "first completes" "done" (Daemon.status_label c1);
  Alcotest.(check string) "second completes" "done" (Daemon.status_label c2);
  let n1 = normalize_entries (str_member "journal" (Daemon.summary_json c1)) in
  let n2 = normalize_entries (str_member "journal" (Daemon.summary_json c2)) in
  Alcotest.(check (list string))
    "concurrent tenants do not perturb each other's journals" n1 n2;
  Daemon.drain daemon

let test_daemon_backpressure_429 () =
  let daemon = Daemon.create ~jobs:1 ~max_campaigns:1 ~state_dir:(temp_dir ()) () in
  let c1 = submit_pg daemon in
  let resp =
    response_of
      (Daemon.handle daemon
         (post "/campaigns" {|{"sut":"mini_pg"}|}))
  in
  Alcotest.(check int) "second submission bounced" 429 resp.Http.status;
  Alcotest.(check (option string)) "advises when to retry" (Some "1")
    (List.assoc_opt "retry-after" resp.Http.resp_headers);
  Daemon.wait daemon c1;
  (* capacity freed: the same submission is accepted now *)
  let c2 = submit_pg daemon in
  Daemon.wait daemon c2;
  Daemon.drain daemon

let test_daemon_rejects_bad_submissions () =
  let daemon = Daemon.create ~jobs:1 ~state_dir:(temp_dir ()) () in
  let status body =
    (response_of (Daemon.handle daemon (post "/campaigns" body))).Http.status
  in
  Alcotest.(check int) "unknown sut" 400 (status {|{"sut":"no-such"}|});
  Alcotest.(check int) "missing sut" 400 (status {|{"seed":1}|});
  Alcotest.(check int) "invalid policy" 400
    (status {|{"sut":"mini_pg","quorum":0}|});
  Alcotest.(check int) "non-integer seed" 400
    (status {|{"sut":"mini_pg","seed":1.5}|});
  Alcotest.(check int) "junk body" 400 (status "{nope");
  Daemon.drain daemon

let test_daemon_events_and_streaming () =
  let daemon = Daemon.create ~jobs:1 ~state_dir:(temp_dir ()) () in
  let c = submit_pg daemon in
  Daemon.wait daemon c;
  let lines, closed = Daemon.events_after daemon c 0 in
  Alcotest.(check bool) "stream closed after the terminal event" true closed;
  List.iter
    (fun line ->
      match Json.of_string line with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "event line is not JSON (%s): %s" msg line)
    lines;
  (match List.rev lines with
   | last :: _ ->
     let json = Result.get_ok (Json.of_string last) in
     Alcotest.(check string) "terminal event" "campaign"
       (str_member "event" json);
     Alcotest.(check string) "terminal status" "done" (str_member "status" json)
   | [] -> Alcotest.fail "no events recorded");
  let tail, _ = Daemon.events_after daemon c (List.length lines - 1) in
  Alcotest.(check int) "from-index skips delivered events" 1 (List.length tail);
  (* the HTTP stream delivers exactly the buffered lines *)
  (match Daemon.handle daemon (get ("/campaigns/" ^ Daemon.campaign_id c ^ "/events")) with
   | `Stream (_, produce) ->
     let buf = Buffer.create 4096 in
     produce (Buffer.add_string buf);
     Alcotest.(check int) "streamed line count" (List.length lines)
       (List.length
          (String.split_on_char '\n' (String.trim (Buffer.contents buf))))
   | `Response _ -> Alcotest.fail "events endpoint did not stream");
  Daemon.drain daemon

let test_daemon_cancel () =
  let daemon = Daemon.create ~jobs:1 ~state_dir:(temp_dir ()) () in
  let c = submit_pg daemon in
  let resp =
    response_of
      (Daemon.handle daemon
         (post ("/campaigns/" ^ Daemon.campaign_id c ^ "/cancel") ""))
  in
  Alcotest.(check int) "cancel accepted" 200 resp.Http.status;
  Daemon.wait daemon c;
  Alcotest.(check string) "campaign cancelled" "cancelled"
    (Daemon.status_label c);
  (* the journal holds the completed prefix, fsck-clean *)
  let journal = str_member "journal" (Daemon.summary_json c) in
  Alcotest.(check bool) "journal fsck clean" true
    (Journal.clean (Journal.fsck journal));
  Daemon.drain daemon

let test_daemon_metrics_and_dashboard () =
  let daemon = Daemon.create ~jobs:1 ~state_dir:(temp_dir ()) () in
  let c = submit_pg daemon in
  Daemon.wait daemon c;
  let metrics = response_of (Daemon.handle daemon (get "/metrics")) in
  Alcotest.(check int) "metrics 200" 200 metrics.Http.status;
  (match Metrics.parse_exposition metrics.Http.resp_body with
   | Ok samples ->
     Alcotest.(check bool) "exposition has samples" true (samples <> []);
     Alcotest.(check bool) "serve counters present" true
       (List.exists
          (fun (s : Metrics.sample) ->
            s.Metrics.sample_name = "conferr_serve_submissions_total")
          samples);
     Alcotest.(check bool) "executor families present" true
       (List.exists
          (fun (s : Metrics.sample) ->
            s.Metrics.sample_name = "conferr_scenario_outcomes_total")
          samples)
   | Error msg -> Alcotest.failf "exposition does not parse: %s" msg);
  let dash = response_of (Daemon.handle daemon (get "/dashboard")) in
  Alcotest.(check int) "dashboard 200" 200 dash.Http.status;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "dashboard is an HTML document" true
    (contains dash.Http.resp_body "<!doctype html");
  Alcotest.(check bool) "dashboard shows campaign rows" true
    (contains dash.Http.resp_body "typo/delete-directive");
  Daemon.drain daemon

let test_daemon_routes () =
  let daemon = Daemon.create ~jobs:1 ~state_dir:(temp_dir ()) () in
  let status req = (response_of (Daemon.handle daemon req)).Http.status in
  Alcotest.(check int) "healthz" 200 (status (get "/healthz"));
  Alcotest.(check int) "unknown path" 404 (status (get "/nope"));
  Alcotest.(check int) "unknown campaign" 404 (status (get "/campaigns/zz"));
  Alcotest.(check int) "wrong method" 405 (status (post "/metrics" ""));
  Alcotest.(check int) "results before finish is a conflict" 409
    (let c = submit_pg daemon in
     status (get ("/campaigns/" ^ Daemon.campaign_id c ^ "/results")));
  List.iter (fun c -> Daemon.wait daemon c) (Daemon.campaigns daemon);
  Daemon.drain daemon

let test_daemon_drain_interrupts () =
  let daemon = Daemon.create ~jobs:1 ~state_dir:(temp_dir ()) () in
  let c = submit_pg daemon in
  (* drain races the campaign: whichever wins, the campaign must end in
     a terminal state with an fsck-clean journal, and the daemon must
     refuse new submissions *)
  Daemon.drain daemon;
  Alcotest.(check bool) "campaign is terminal" true (Daemon.finished c);
  let journal = str_member "journal" (Daemon.summary_json c) in
  if Sys.file_exists journal then
    Alcotest.(check bool) "journal fsck clean" true
      (Journal.clean (Journal.fsck journal));
  let resp =
    response_of (Daemon.handle daemon (post "/campaigns" {|{"sut":"mini_pg"}|}))
  in
  Alcotest.(check int) "draining daemon answers 503" 503 resp.Http.status

(* -------------------------------------------------------------- *)
(* Odds and ends: --jobs grammar, policy codec, event JSON          *)
(* -------------------------------------------------------------- *)

let test_parse_jobs () =
  Alcotest.(check (result int string)) "plain number" (Ok 4)
    (Executor.parse_jobs "4");
  Alcotest.(check int) "auto resolves to the hardware default"
    (Conferr_pool.recommended_jobs ())
    (Result.get_ok (Executor.parse_jobs " AUTO "));
  Alcotest.(check bool) "junk is an error" true
    (Result.is_error (Executor.parse_jobs "banana"));
  Alcotest.(check bool) "empty is an error" true
    (Result.is_error (Executor.parse_jobs ""))

let test_policy_roundtrip () =
  let p =
    {
      Policy.jobs_cap = 3; quorum = 5; breaker = Some 4; timeout_s = Some 1.5;
      retries = 2; fuel = Some 100;
    }
  in
  Alcotest.(check bool) "of_json (to_json p) = p" true
    (Policy.of_json (Policy.to_json p) = Ok p);
  Alcotest.(check bool) "zero switches option knobs off" true
    (Policy.of_json (Json.Obj [ ("breaker", Json.Num 0.) ])
     = Ok { Policy.default with breaker = None });
  Alcotest.(check bool) "negative quorum rejected" true
    (Result.is_error (Policy.of_json (Json.Obj [ ("quorum", Json.Num (-1.)) ])))

let test_event_to_json () =
  let tag ev =
    str_member "event" (Progress.event_to_json ev)
  in
  Alcotest.(check string) "started" "started"
    (tag (Progress.Started { index = 0; id = "x" }));
  Alcotest.(check string) "finished" "finished"
    (tag (Progress.Finished { index = 0; id = "x"; label = "ok"; elapsed_ms = 1. }));
  Alcotest.(check string) "timeout" "timeout"
    (tag (Progress.Timed_out { index = 0; id = "x"; attempt = 1 }));
  Alcotest.(check string) "breaker" "breaker-tripped"
    (tag (Progress.Breaker_tripped { bucket = "b" }))

let suite =
  [
    Alcotest.test_case "http: simple request" `Quick test_parse_simple;
    Alcotest.test_case "http: body by content-length" `Quick test_parse_body;
    Alcotest.test_case "http: pipelined requests" `Quick test_parse_pipelined;
    Alcotest.test_case "http: malformed inputs yield 4xx/5xx" `Quick
      test_parse_malformed;
    Alcotest.test_case "http: limits enforced" `Quick test_parse_limits;
    QCheck_alcotest.to_alcotest prop_parser_total;
    QCheck_alcotest.to_alcotest prop_parser_total_structured;
    QCheck_alcotest.to_alcotest prop_wellformed_roundtrip;
    Alcotest.test_case "http: handler exception becomes 500" `Quick
      test_serve_connection_handler_exn;
    Alcotest.test_case "scheduler: round-robin fairness" `Quick
      test_scheduler_fairness;
    Alcotest.test_case "scheduler: queue cap rejects" `Quick
      test_scheduler_queue_cap;
    Alcotest.test_case "scheduler: cancel and failure propagation" `Quick
      test_scheduler_cancel_and_failure;
    Alcotest.test_case "with_timeout: success joins its worker" `Quick
      test_with_timeout_no_leak_on_success;
    Alcotest.test_case "with_timeout: abandoned workers are accounted" `Quick
      test_with_timeout_abandoned_accounting;
    Alcotest.test_case "daemon: journal identical to one-shot CLI" `Slow
      test_daemon_determinism;
    Alcotest.test_case "daemon: concurrent campaigns share the pool" `Slow
      test_daemon_concurrent_campaigns;
    Alcotest.test_case "daemon: 429 with Retry-After when full" `Quick
      test_daemon_backpressure_429;
    Alcotest.test_case "daemon: invalid submissions answer 400" `Quick
      test_daemon_rejects_bad_submissions;
    Alcotest.test_case "daemon: event buffer and chunked stream" `Slow
      test_daemon_events_and_streaming;
    Alcotest.test_case "daemon: cancel keeps a clean partial journal" `Quick
      test_daemon_cancel;
    Alcotest.test_case "daemon: live /metrics and /dashboard" `Slow
      test_daemon_metrics_and_dashboard;
    Alcotest.test_case "daemon: routing table" `Quick test_daemon_routes;
    Alcotest.test_case "daemon: drain leaves terminal campaigns" `Quick
      test_daemon_drain_interrupts;
    Alcotest.test_case "cli: --jobs grammar" `Quick test_parse_jobs;
    Alcotest.test_case "policy: json codec" `Quick test_policy_roundtrip;
    Alcotest.test_case "progress: event json tags" `Quick test_event_to_json;
  ]
