(* The static analyzer (ISSUE 5): shipped example configs lint clean and
   match the in-code stock texts byte for byte; every documented
   silent-acceptance behaviour of DESIGN.md's SUT table is flagged by at
   least one rule; finding addresses are valid ConfPath queries selecting
   exactly the finding's node; the validator-gap scan finds the paper's
   gaps and is deterministic for any --jobs. *)

module Engine = Conferr.Engine
module Finding = Conferr_lint.Finding
module Rule = Conferr_lint.Rule
module Checker = Conferr_lint.Checker
module Gap = Conferr_lint.Gap
module Replay = Conferr_lint_replay

let all_suts =
  [
    Suts.Mini_mysql.sut;
    Suts.Mini_pg.sut;
    Suts.Mini_apache.sut;
    Suts.Mini_bind.sut;
    Suts.Mini_djbdns.sut;
    Suts.Mini_appserver.sut;
  ]

let rules_of (sut : Suts.Sut.t) =
  match Suts.Lint_rules.for_sut sut.sut_name with
  | Some rules -> rules
  | None -> Alcotest.failf "no rule set for %s" sut.sut_name

let nearest = Conferr.Suggest.nearest

(* Parse explicit texts with the SUT's formats, as `conferr lint` does. *)
let parse_texts (sut : Suts.Sut.t) files =
  match Engine.parse_config sut files with
  | Ok set -> set
  | Error msg -> Alcotest.failf "%s: %s" sut.sut_name msg

(* Lint the SUT's stock configuration with [overrides] substituted in. *)
let lint_with (sut : Suts.Sut.t) overrides =
  let files =
    List.map
      (fun (name, text) ->
        match List.assoc_opt name overrides with
        | Some text' -> (name, text')
        | None -> (name, text))
      sut.default_config
  in
  Checker.run ~nearest ~rules:(rules_of sut) (parse_texts sut files)

let replace_all ~needle ~by hay =
  let nn = String.length needle in
  let buf = Buffer.create (String.length hay) in
  let i = ref 0 in
  while !i <= String.length hay - nn do
    if String.sub hay !i nn = needle then begin
      Buffer.add_string buf by;
      i := !i + nn
    end
    else begin
      Buffer.add_char buf hay.[!i];
      incr i
    end
  done;
  Buffer.add_string buf (String.sub hay !i (String.length hay - !i));
  Buffer.contents buf

let rule_ids findings = List.map (fun (f : Finding.t) -> f.rule_id) findings

let has_rule id findings = List.mem id (rule_ids findings)

let check_rule ~what id findings =
  Alcotest.(check bool)
    (Printf.sprintf "%s flagged by %s (got: %s)" what id
       (String.concat "," (rule_ids findings)))
    true (has_rule id findings)

(* ---------------- examples/ ---------------- *)

(* Tests run from _build/default/test; the (source_tree examples) dep in
   test/dune copies the shipped examples next to the test tree. *)
let examples_dir =
  List.find_opt Sys.file_exists
    [ "examples/configs"; "../examples/configs"; "../../examples/configs" ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_examples f =
  match examples_dir with
  | Some dir -> f dir
  | None -> Alcotest.fail "examples/configs not found next to the test binary"

let test_examples_byte_equal () =
  with_examples (fun dir ->
      List.iter
        (fun (sut : Suts.Sut.t) ->
          List.iter
            (fun (name, text) ->
              Alcotest.(check string)
                (Printf.sprintf "examples/configs/%s == %s stock text" name
                   sut.sut_name)
                text
                (read_file (Filename.concat dir name)))
            sut.default_config)
        all_suts)

let test_examples_lint_clean () =
  with_examples (fun dir ->
      List.iter
        (fun (sut : Suts.Sut.t) ->
          let files =
            List.map
              (fun (name, _) -> (name, read_file (Filename.concat dir name)))
              sut.default_config
          in
          let findings =
            Checker.run ~nearest ~rules:(rules_of sut) (parse_texts sut files)
          in
          Alcotest.(check (list string))
            (Printf.sprintf "%s examples lint clean" sut.sut_name)
            []
            (List.map Finding.to_text findings))
        all_suts)

(* ---------------- DESIGN.md silent-acceptance behaviours ---------------- *)

let mysql_stock = Suts.Sut.default_config_text Suts.Mini_mysql.sut "my.cnf"

let mysql_with directive =
  [ ("my.cnf", mysql_stock ^ "\n[mysqld]\n" ^ directive ^ "\n") ]

let test_mysql_flaws () =
  let lint ov = lint_with Suts.Mini_mysql.sut ov in
  (* `1M0` == `1M`: parsing stops at the first multiplier *)
  check_rule ~what:"1M0 truncated to 1M" "MY-VALUE-JUNK"
    (lint (mysql_with "max_allowed_packet = 1M0"));
  (* leading multiplier: the whole value is silently defaulted *)
  check_rule ~what:"leading multiplier" "MY-SILENT-DEFAULT"
    (lint (mysql_with "max_allowed_packet = M1"));
  (* out-of-bounds: silently replaced by the default *)
  check_rule ~what:"out-of-bounds value" "MY-SILENT-DEFAULT"
    (lint (mysql_with "max_allowed_packet = 1"));
  (* valueless numeric directive accepted *)
  check_rule ~what:"valueless directive" "MY-MISSING-VALUE"
    (lint (mysql_with "max_allowed_packet"));
  (* unambiguous prefix accepted *)
  check_rule ~what:"truncated name" "MY-PREFIX"
    (lint (mysql_with "max_allowed = 2M"));
  (* latent error in a tool section no daemon parses at boot *)
  check_rule ~what:"latent mysqldump typo" "MY-LATENT"
    (lint [ ("my.cnf", mysql_stock ^ "\n[mysqldump]\nquickk\n") ]);
  (* an unknown [group] is dead weight *)
  check_rule ~what:"unknown section" "MY-SECTION"
    (lint [ ("my.cnf", mysql_stock ^ "\n[mysqldx]\nquick\n") ])

let pg_stock = Suts.Sut.default_config_text Suts.Mini_pg.sut "postgresql.conf"

let test_pg_flaws () =
  (* deleting a stock directive silently reverts to the built-in default *)
  let without_max_connections =
    String.split_on_char '\n' pg_stock
    |> List.filter (fun l ->
           not
             (String.length l >= 15 && String.sub l 0 15 = "max_connections"))
    |> String.concat "\n"
  in
  check_rule ~what:"deleted max_connections" "PG-REQUIRED"
    (lint_with Suts.Mini_pg.sut
       [ ("postgresql.conf", without_max_connections) ]);
  (* a repeated parameter is last-one-wins *)
  check_rule ~what:"duplicate parameter" "PG-DUP"
    (lint_with Suts.Mini_pg.sut
       [ ("postgresql.conf", pg_stock ^ "max_connections = 50\n") ])

let apache_stock =
  Suts.Sut.default_config_text Suts.Mini_apache.sut "httpd.conf"

let test_apache_flaws () =
  let lint text = lint_with Suts.Mini_apache.sut [ ("httpd.conf", text) ] in
  (* ServerName / ServerAdmin / MIME types accepted unchecked *)
  check_rule ~what:"garbage ServerName" "AP-SERVERNAME"
    (lint (apache_stock ^ "ServerName not a hostname\n"));
  check_rule ~what:"garbage ServerAdmin" "AP-SERVERADMIN"
    (lint (apache_stock ^ "ServerAdmin nobody\n"));
  check_rule ~what:"garbage DefaultType" "AP-MIME"
    (lint (apache_stock ^ "DefaultType texthtml\n"));
  check_rule ~what:"garbage AddType" "AP-MIME"
    (lint (apache_stock ^ "AddType texthtml .xyz\n"));
  (* a Listen typo survives startup; only the HTTP probe catches it *)
  check_rule ~what:"Listen port typo" "AP-FUNCTIONAL"
    (lint (replace_all ~needle:"Listen 80" ~by:"Listen 880" apache_stock));
  (* duplicated single-valued directive: last replica wins *)
  check_rule ~what:"duplicate DocumentRoot" "AP-DUP"
    (lint (apache_stock ^ "DocumentRoot \"/tmp\"\n"));
  (* an <IfModule> naming an unknown module hides its body *)
  check_rule ~what:"unknown IfModule" "AP-IFMODULE"
    (lint (apache_stock ^ "<IfModule mod_nonexistent.c>\nListen 81\n</IfModule>\n"))

let bind_forward =
  Suts.Sut.default_config_text Suts.Mini_bind.sut
    Suts.Mini_bind.forward_zone_file

let bind_reverse =
  Suts.Sut.default_config_text Suts.Mini_bind.sut
    Suts.Mini_bind.reverse_zone_file

let test_bind_flaws () =
  (* missing PTR: drop one PTR line from the reverse zone *)
  let reverse' =
    String.split_on_char '\n' bind_reverse
    |> List.filter (fun l ->
           not
             (String.length l >= 1 && l.[0] = '1'
             && Conferr_util.Strutil.contains_substring ~needle:"PTR" l))
    |> String.concat "\n"
  in
  check_rule ~what:"missing PTR" "BD-PTR-MISSING"
    (lint_with Suts.Mini_bind.sut
       [ (Suts.Mini_bind.reverse_zone_file, reverse') ]);
  (* PTR pointing at an alias *)
  let reverse'' =
    replace_all ~needle:"www.example.com." ~by:"ftp.example.com." bind_reverse
  in
  check_rule ~what:"PTR to CNAME" "BD-PTR-ALIAS"
    (lint_with Suts.Mini_bind.sut
       [ (Suts.Mini_bind.reverse_zone_file, reverse'') ]);
  (* CNAME chain *)
  let forward' =
    replace_all ~needle:"CNAME www" ~by:"CNAME webmail" bind_forward
  in
  let findings =
    lint_with Suts.Mini_bind.sut
      [ (Suts.Mini_bind.forward_zone_file, forward') ]
  in
  if not (has_rule "BD-CNAME-CHAIN" findings) then
    (* the stock text may format the CNAME differently; fall back to an
       explicit chained zone *)
    check_rule ~what:"CNAME chain" "BD-CNAME-CHAIN"
      (lint_with Suts.Mini_bind.sut
         [
           ( Suts.Mini_bind.forward_zone_file,
             bind_forward ^ "ftp2    IN CNAME ftp\nftp3    IN CNAME ftp2\n" );
         ])

let djbdns_stock =
  Suts.Sut.default_config_text Suts.Mini_djbdns.sut Suts.Mini_djbdns.data_file

let test_djbdns_flaws () =
  let lint text =
    lint_with Suts.Mini_djbdns.sut [ (Suts.Mini_djbdns.data_file, text) ]
  in
  (* CNAME colliding with other data: published without a word *)
  check_rule ~what:"CNAME collision" "DJ-COLLISION"
    (lint (djbdns_stock ^ "Cwww.example.com:mail.example.com\n"));
  (* CNAME chain *)
  check_rule ~what:"CNAME chain" "DJ-CHAIN"
    (lint (djbdns_stock ^ "Cftp2.example.com:ftp.example.com\n"));
  (* MX target that is an alias *)
  check_rule ~what:"MX to alias" "DJ-ALIAS"
    (lint (djbdns_stock ^ "@example.com::ftp.example.com:10\n"))

let appserver_stock =
  Suts.Sut.default_config_text Suts.Mini_appserver.sut "server.xml"

let test_appserver_flaws () =
  (* unknown element: whole subtree silently skipped *)
  let mutated = replace_all ~needle:"<logger" ~by:"<loger" appserver_stock in
  check_rule ~what:"unknown element" "AS-ELEMENT"
    (lint_with Suts.Mini_appserver.sut [ ("server.xml", mutated) ])

(* ---------------- finding addresses ---------------- *)

(* Every finding's ConfPath address must compile and select exactly the
   finding's path in the finding's file.  The file root is addressed as
   "/", which is not a query — it only pairs with the empty path. *)
let check_finding_address set (f : Finding.t) =
  if f.path = [] then
    Alcotest.(check string)
      "root-anchored finding addressed as /" "/" f.address
  else
    match Conftree.Config_set.find set f.file with
    | None -> Alcotest.failf "finding names unknown file %s" f.file
    | Some tree -> (
      match Confpath.compile f.address with
      | Error e -> Alcotest.failf "address %S does not compile: %s" f.address e
      | Ok q ->
        Alcotest.(check (list (list int)))
          (Printf.sprintf "address %S selects exactly the finding's node"
             f.address)
          [ f.path ]
          (List.map fst (Confpath.select q tree)))

let check_addresses (sut : Suts.Sut.t) findings =
  let set = parse_texts sut sut.default_config in
  List.iter (check_finding_address set) findings

let test_addresses () =
  (* a config with several findings across files *)
  let findings =
    lint_with Suts.Mini_pg.sut
      [
        ( "postgresql.conf",
          "max_connections = 100\nmax_connections = 9999999\nwork_mmem = 1\n"
        );
      ]
  in
  Alcotest.(check bool) "some findings" true (findings <> []);
  (* addresses are validated against the mutated set, not the default *)
  let set =
    parse_texts Suts.Mini_pg.sut
      [
        ( "postgresql.conf",
          "max_connections = 100\nmax_connections = 9999999\nwork_mmem = 1\n"
        );
      ]
  in
  List.iter (check_finding_address set) findings;
  (* and stock-config smoke for every SUT: no findings, but the helper
     also exercises the address machinery on any rule that fires *)
  List.iter (fun sut -> check_addresses sut (lint_with sut [])) all_suts

(* ---------------- determinism ---------------- *)

let test_lint_deterministic () =
  List.iter
    (fun (sut : Suts.Sut.t) ->
      let run () =
        lint_with sut [] |> List.map Finding.to_text |> String.concat ""
      in
      Alcotest.(check string)
        (Printf.sprintf "%s lint byte-stable" sut.sut_name)
        (run ()) (run ()))
    all_suts

(* ---------------- gap taxonomy ---------------- *)

let test_gap_classify () =
  let flagged = Gap.Flagged Finding.Error in
  let cases =
    [
      (flagged, "ignored", Gap.Silent_acceptance);
      (flagged, "functional", Gap.Late_failure);
      (flagged, "startup", Gap.Agree_detected);
      (Gap.Unparseable "x", "ignored", Gap.Silent_acceptance);
      (Gap.Unparseable "x", "startup", Gap.Agree_detected);
      (Gap.Clean, "ignored", Gap.Agree_clean);
      (Gap.Clean, "functional", Gap.Lint_miss);
      (Gap.Clean, "startup", Gap.Over_strict);
      (Gap.Inexpressible "x", "ignored", Gap.Not_comparable);
      (flagged, "crashed", Gap.Not_comparable);
      (flagged, "n/a", Gap.Not_comparable);
    ]
  in
  List.iter
    (fun (static, outcome_label, expected) ->
      Alcotest.(check string)
        (Printf.sprintf "%s x %s" (Gap.static_label static) outcome_label)
        (Gap.kind_label expected)
        (Gap.kind_label (Gap.classify ~static ~outcome_label)))
    cases;
  Alcotest.(check bool)
    "warning reaches the flagged threshold" true
    (Gap.flagged (Gap.verdict_of_findings
       [
         {
           Finding.rule_id = "X";
           severity = Finding.Warning;
           file = "f";
           path = [];
           address = "/";
           message = "m";
           suggestion = None;
           related = [];
         };
       ]))

(* ---------------- validator-gap scan ---------------- *)

let silent (_ : Conferr_exec.Progress.event) = ()

let journal_scan ?(jobs = 1) (sut : Suts.Sut.t) scenarios =
  let base =
    match Engine.parse_default_config sut with
    | Ok b -> b
    | Error m -> Alcotest.failf "%s: %s" sut.sut_name m
  in
  let scenarios = scenarios base in
  let path = Filename.temp_file "conferr_lint_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let settings =
        {
          Conferr_exec.Executor.default_settings with
          journal_path = Some path;
        }
      in
      let _ =
        Conferr_exec.Executor.run_from ~settings ~on_event:silent ~sut ~base
          ~scenarios ()
      in
      let entries = Conferr_exec.Journal.load path in
      Replay.scan ~jobs ~nearest ~sut ~rules:(rules_of sut) ~scenarios
        ~entries ~base ())

let pg_typo_scenarios base =
  Conferr.Campaign.typo_scenarios
    ~rng:(Conferr_util.Rng.create 42)
    ~faultload:Conferr.Campaign.paper_faultload Suts.Mini_pg.sut base

let bind_semantic_scenarios base =
  Dnsmodel.Rfc1912.scenarios
    ~codec:(Dnsmodel.Codec.bind ~zones:Suts.Mini_bind.zones)
    ~faults:Dnsmodel.Rfc1912.all_faults base
  |> Errgen.Scenario.relabel_ids ~prefix:"semantic"

let test_gaps_acceptance () =
  let pg = journal_scan Suts.Mini_pg.sut pg_typo_scenarios in
  let bind = journal_scan Suts.Mini_bind.sut bind_semantic_scenarios in
  let distinct report =
    Replay.clusters Gap.Silent_acceptance report
    |> List.map (fun (c : Replay.cluster) -> (c.c_class, c.c_rule))
  in
  let total = distinct pg @ distinct bind in
  Alcotest.(check bool)
    (Printf.sprintf "at least 3 distinct silent-acceptance gaps (got %d: %s)"
       (List.length total)
       (String.concat ", " (List.map (fun (c, r) -> c ^ "x" ^ r) total)))
    true
    (List.length total >= 3);
  (* the deleted-directive gap (postgres) and the RFC-1912 gaps (bind)
     are exactly the paper's headline findings *)
  Alcotest.(check bool) "pg delete-directive gap" true
    (List.mem ("typo/delete-directive", "PG-REQUIRED") (distinct pg));
  Alcotest.(check bool) "bind missing-ptr gap" true
    (List.exists (fun (c, _) -> c = "semantic/missing-ptr") (distinct bind));
  Alcotest.(check bool) "bind ptr-to-cname gap" true
    (List.exists (fun (c, _) -> c = "semantic/ptr-to-cname") (distinct bind))

let test_gaps_deterministic () =
  let r1 = journal_scan ~jobs:1 Suts.Mini_bind.sut bind_semantic_scenarios in
  let r4 = journal_scan ~jobs:4 Suts.Mini_bind.sut bind_semantic_scenarios in
  Alcotest.(check string) "render byte-identical for jobs 1 vs 4"
    (Replay.render r1) (Replay.render r4);
  Alcotest.(check string) "json byte-identical for jobs 1 vs 4"
    (Conferr_obsv.Json.to_string (Replay.to_json r1))
    (Conferr_obsv.Json.to_string (Replay.to_json r4))

let test_gaps_no_overstrict_on_typos () =
  (* The rules mirror each SUT's own validator, so nothing lint accepts
     may be rejected at startup (no over-strict rows on the stock
     faultload), and nothing that fails only functionally may be
     invisible to lint for pg. *)
  let pg = journal_scan Suts.Mini_pg.sut pg_typo_scenarios in
  Alcotest.(check int) "no over-strict rows" 0
    (Replay.count Gap.Over_strict pg);
  Alcotest.(check int) "no unmatched entries" 0 (List.length pg.unmatched)

let test_dashboard_rows () =
  let report = journal_scan Suts.Mini_bind.sut bind_semantic_scenarios in
  let rows = Replay.dashboard_rows report in
  Alcotest.(check bool) "dashboard rows non-empty" true (rows <> []);
  let html =
    Conferr_obsv.Report.html ~title:"t" ~rows:[] ~gaps:rows ()
  in
  Alcotest.(check bool) "gaps panel rendered" true
    (let needle = "Validator gaps" in
     let nh = String.length html and nn = String.length needle in
     let rec go i = i + nn <= nh && (String.sub html i nn = needle || go (i + 1)) in
     go 0)

let test_metrics () =
  let report = journal_scan Suts.Mini_bind.sut bind_semantic_scenarios in
  let registry = Conferr_obsv.Metrics.create () in
  Replay.record_metrics registry report;
  let text = Conferr_obsv.Metrics.expose registry in
  List.iter
    (fun needle ->
      let nh = String.length text and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub text i nn = needle || go (i + 1)) in
      Alcotest.(check bool) (needle ^ " exported") true (go 0))
    [ "conferr_gap_total"; "conferr_lint_findings_total"; "silent-acceptance" ]

let suite =
  [
    Alcotest.test_case "examples byte-equal to stock configs" `Quick
      test_examples_byte_equal;
    Alcotest.test_case "examples lint clean" `Quick test_examples_lint_clean;
    Alcotest.test_case "mysql silent behaviours flagged" `Quick test_mysql_flaws;
    Alcotest.test_case "postgres silent behaviours flagged" `Quick test_pg_flaws;
    Alcotest.test_case "apache silent behaviours flagged" `Quick
      test_apache_flaws;
    Alcotest.test_case "bind RFC-1912 gaps flagged" `Quick test_bind_flaws;
    Alcotest.test_case "djbdns referential gaps flagged" `Quick
      test_djbdns_flaws;
    Alcotest.test_case "appserver unknown elements flagged" `Quick
      test_appserver_flaws;
    Alcotest.test_case "finding addresses are exact ConfPath queries" `Quick
      test_addresses;
    Alcotest.test_case "lint output byte-stable" `Quick test_lint_deterministic;
    Alcotest.test_case "gap taxonomy table" `Quick test_gap_classify;
    Alcotest.test_case "gap scan acceptance (pg + bind)" `Quick
      test_gaps_acceptance;
    Alcotest.test_case "gap scan deterministic across jobs" `Quick
      test_gaps_deterministic;
    Alcotest.test_case "no over-strict rows on pg typos" `Quick
      test_gaps_no_overstrict_on_typos;
    Alcotest.test_case "dashboard gap rows and panel" `Quick test_dashboard_rows;
    Alcotest.test_case "gap metrics exported" `Quick test_metrics;
  ]
