(* lib/adapt: lazy scenario streams, the mutant dedup cache, and the
   feedback-directed exploration loop (ISSUE 2 acceptance criteria). *)

module Engine = Conferr.Engine
module Profile = Conferr.Profile
module Outcome = Conferr.Outcome
module Gen = Errgen.Gen
module Scenario = Errgen.Scenario
module Signature = Conferr_exec.Signature
module Progress = Conferr_exec.Progress
module Mutant_cache = Conferr_adapt.Mutant_cache
module Explore = Conferr_adapt.Explore

let sut = Suts.Mini_pg.sut

let base () =
  match Engine.parse_default_config sut with
  | Ok base -> base
  | Error msg -> Alcotest.failf "postgres default config: %s" msg

(* the campaign seed used across the exec tests *)
let seed = 7

let typo_generator ~rng set =
  Conferr.Campaign.typo_scenarios ~rng
    ~faultload:Conferr.Campaign.paper_faultload sut set

let exhaustive_scenarios base =
  typo_generator ~rng:(Conferr_util.Rng.create seed) base

let typo_stream ?rounds base =
  Gen.of_generator ?rounds ~prefix:"typo" ~seed typo_generator base

let silent (_ : Progress.event) = ()

let settings_with ?(jobs = 1) ?(batch = 16) ?budget ?(plateau = 0) () =
  {
    Explore.default_settings with
    Explore.jobs;
    batch;
    budget;
    plateau;
    campaign_seed = seed;
  }

(* -------------------------------------------------------------- *)
(* Gen: lazy streams                                               *)
(* -------------------------------------------------------------- *)

let test_gen_basics () =
  let g = Gen.of_list [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "take stops at the end" [ 1; 2; 3 ] (Gen.take 5 g);
  Alcotest.(check bool) "exhausted stays exhausted" true (Gen.next g = None);
  let evens = Gen.filter (fun n -> n mod 2 = 0) (Gen.of_list [ 1; 2; 3; 4; 5 ]) in
  Alcotest.(check (list int)) "filter" [ 2; 4 ] (Gen.take 10 evens);
  let merged =
    Gen.interleave [ Gen.of_list [ 1; 4 ]; Gen.of_list [ 2 ]; Gen.of_list [ 3; 5; 6 ] ]
  in
  Alcotest.(check (list int)) "round-robin interleave" [ 1; 2; 3; 4; 5; 6 ]
    (Gen.take 10 merged);
  let counted =
    Gen.unfold (fun n -> if n < 3 then Some (n, n + 1) else None) 0
  in
  Alcotest.(check (list int)) "unfold" [ 0; 1; 2 ] (Gen.take 10 counted)

let test_gen_seeded_deterministic () =
  let draw rng = Some (Conferr_util.Rng.int rng 1000) in
  let a = Gen.take 20 (Gen.seeded ~seed:5 draw) in
  let b = Gen.take 20 (Gen.seeded ~seed:5 draw) in
  let c = Gen.take 20 (Gen.seeded ~seed:6 draw) in
  Alcotest.(check (list int)) "same seed, same stream" a b;
  Alcotest.(check bool) "different seed, different stream" true (a <> c)

(* Round 0 of a lifted generator IS the classic faultload: same ids,
   same descriptions, in order — so streams subsume lists. *)
let test_gen_round0_is_classic_faultload () =
  let base = base () in
  let classic = exhaustive_scenarios base in
  let n = List.length classic in
  let streamed = Gen.take n (typo_stream ~rounds:1 base) in
  Alcotest.(check (list string)) "ids match"
    (List.map (fun (s : Scenario.t) -> s.id) classic)
    (List.map (fun (s : Scenario.t) -> s.id) streamed);
  Alcotest.(check (list string)) "descriptions match"
    (List.map (fun (s : Scenario.t) -> s.description) classic)
    (List.map (fun (s : Scenario.t) -> s.description) streamed);
  Alcotest.(check bool) "bounded stream ends" true
    (Gen.next (let g = typo_stream ~rounds:1 base in
               ignore (Gen.take n g);
               g)
     = None)

let test_gen_unbounded_rounds () =
  let base = base () in
  let classic = exhaustive_scenarios base in
  let n = List.length classic in
  let g = typo_stream base in
  let two_rounds = Gen.take (n + 5) g in
  Alcotest.(check int) "keeps producing past round 0" (n + 5)
    (List.length two_rounds);
  let round1_ids =
    List.filteri (fun i _ -> i >= n) two_rounds
    |> List.map (fun (s : Scenario.t) -> s.id)
  in
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "round-1 id %s is re-prefixed" id)
        true
        (String.length id > 7 && String.sub id 0 7 = "typo-r1"))
    round1_ids

(* -------------------------------------------------------------- *)
(* Mutant cache                                                    *)
(* -------------------------------------------------------------- *)

(* A mutant with a novel serialized configuration is never skipped:
   deleting N distinct directives yields N distinct configs, and every
   classification must come back Fresh. *)
let test_dedup_novel_never_skipped () =
  let base = base () in
  let deletions = Errgen.Structural.omit_directives ~file:"postgresql.conf" base in
  Alcotest.(check bool) "several deletions" true (List.length deletions > 5);
  let cache = Mutant_cache.create () in
  List.iter
    (fun (s : Scenario.t) ->
      match Mutant_cache.classify cache ~sut ~base s with
      | Mutant_cache.Fresh _ -> ()
      | Mutant_cache.Duplicate_of { first_id; _ } ->
        Alcotest.failf "novel mutant %s wrongly deduped against %s" s.id first_id
      | Mutant_cache.Inexpressible msg ->
        Alcotest.failf "deletion %s inexpressible: %s" s.id msg)
    deletions;
  Alcotest.(check int) "all registered" (List.length deletions)
    (Mutant_cache.size cache);
  Alcotest.(check int) "no hits" 0 (Mutant_cache.hits cache);
  (* ... and a byte-identical re-application is always caught *)
  let first = List.hd deletions in
  let again = { first with Scenario.id = "again-0001" } in
  (match Mutant_cache.classify cache ~sut ~base again with
   | Mutant_cache.Duplicate_of { first_id; _ } ->
     Alcotest.(check string) "points at the first discoverer" first.Scenario.id
       first_id
   | Mutant_cache.Fresh _ -> Alcotest.fail "identical mutant not deduped"
   | Mutant_cache.Inexpressible msg -> Alcotest.failf "inexpressible: %s" msg);
  Alcotest.(check int) "one hit" 1 (Mutant_cache.hits cache)

let test_explore_dedup_properties () =
  let base = base () in
  let report =
    Explore.run_from
      ~settings:(settings_with ())
      ~on_event:silent ~sut ~base ~stream:(typo_stream ~rounds:1 base) ()
  in
  (* every duplicate names an earlier profile entry as its discoverer *)
  let entry_ids =
    List.map
      (fun (e : Profile.entry) -> e.Profile.scenario_id)
      report.Explore.profile.Profile.entries
  in
  List.iter
    (fun (dup, first) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s -> %s provenance" dup first)
        true
        (List.mem first entry_ids && not (List.mem dup entry_ids)))
    report.Explore.duplicate_of;
  Alcotest.(check int) "duplicate count matches provenance list"
    report.Explore.duplicates
    (List.length report.Explore.duplicate_of);
  Alcotest.(check int) "considered = executed + dups + n/a"
    report.Explore.considered
    (report.Explore.executed + report.Explore.duplicates
   + report.Explore.not_applicable + report.Explore.resumed)

(* -------------------------------------------------------------- *)
(* Determinism: --jobs must not change anything reported           *)
(* -------------------------------------------------------------- *)

let test_determinism_across_jobs () =
  let base = base () in
  let run jobs =
    Explore.run_from
      ~settings:(settings_with ~jobs ~batch:16 ~budget:96 ~plateau:4 ())
      ~on_event:silent ~sut ~base ~stream:(typo_stream base) ()
  in
  let r1 = run 1 in
  let r4 = run 4 in
  Alcotest.(check string) "frontier report byte-identical"
    (Explore.render r1) (Explore.render r4);
  Alcotest.(check string) "profile identical"
    (Profile.render r1.Explore.profile)
    (Profile.render r4.Explore.profile);
  Alcotest.(check (list (pair string string))) "dedup provenance identical"
    r1.Explore.duplicate_of r4.Explore.duplicate_of

(* -------------------------------------------------------------- *)
(* Stopping rules                                                  *)
(* -------------------------------------------------------------- *)

(* A stream that exhausts its signatures immediately (every scenario is
   the same no-op mutant) must stop via the plateau rule: one discovery
   batch, then K novelty-free batches of pure dedup. *)
let test_plateau_stop () =
  let base = base () in
  let counter = ref 0 in
  let stream =
    Gen.seeded ~seed:1 (fun _rng ->
        incr counter;
        Some
          (Scenario.make
             ~id:(Printf.sprintf "noop-%04d" !counter)
             ~class_name:"noop" ~description:"no-op at postgresql.conf:/0"
             (fun set -> Ok set)))
  in
  let report =
    Explore.run_from
      ~settings:(settings_with ~batch:8 ~plateau:2 ())
      ~on_event:silent ~sut ~base ~stream ()
  in
  (match report.Explore.stop with
   | Explore.Plateaued 2 -> ()
   | other ->
     Alcotest.failf "expected Plateaued 2, got %s"
       (Explore.stop_reason_to_string other));
  Alcotest.(check int) "discovery batch + 2 empty batches" 3
    report.Explore.batches;
  Alcotest.(check int) "one distinct signature" 1
    (List.length report.Explore.frontier);
  Alcotest.(check int) "the no-op executed exactly once" 1
    report.Explore.executed;
  Alcotest.(check bool) "unbounded stream was cut off" true
    (report.Explore.considered < !counter + 1)

let test_budget_stop () =
  let base = base () in
  let report =
    Explore.run_from
      ~settings:(settings_with ~batch:8 ~budget:20 ())
      ~on_event:silent ~sut ~base ~stream:(typo_stream base) ()
  in
  (match report.Explore.stop with
   | Explore.Budget_exhausted -> ()
   | other ->
     Alcotest.failf "expected Budget_exhausted, got %s"
       (Explore.stop_reason_to_string other));
  Alcotest.(check bool) "budget respected up to one batch of overshoot" true
    (report.Explore.executed >= 20 && report.Explore.executed < 20 + 8)

(* -------------------------------------------------------------- *)
(* Acceptance: adaptive search covers the exhaustive faultload      *)
(* -------------------------------------------------------------- *)

let signature_keys_testable =
  Alcotest.testable
    (fun fmt (k : Signature.key) ->
      Format.fprintf fmt "%s/%s/%s" k.Signature.class_name k.Signature.label
        k.Signature.message)
    ( = )

let test_explore_covers_exhaustive () =
  let base = base () in
  let scenarios = exhaustive_scenarios base in
  let exhaustive_runs = List.length scenarios in
  let exhaustive_profile = Engine.run_from ~sut ~base ~scenarios () in
  let exhaustive_keys =
    Signature.clusters exhaustive_profile.Profile.entries
    |> List.map (fun (c : Signature.cluster) -> c.Signature.key)
    |> List.sort compare
  in
  let report =
    Explore.run_from
      ~settings:(settings_with ())
      ~on_event:silent ~sut ~base ~stream:(typo_stream ~rounds:1 base) ()
  in
  let adaptive_keys =
    List.map (fun (f : Explore.frontier_entry) -> f.Explore.key)
      report.Explore.frontier
    |> List.sort compare
  in
  Alcotest.(check (list signature_keys_testable))
    "same distinct signature keys as the exhaustive faultload"
    exhaustive_keys adaptive_keys;
  Alcotest.(check bool)
    (Printf.sprintf "strictly fewer SUT runs (%d < %d)" report.Explore.executed
       exhaustive_runs)
    true
    (report.Explore.executed < exhaustive_runs);
  Alcotest.(check bool) "dedup did real work" true
    (report.Explore.duplicates > 0)

(* -------------------------------------------------------------- *)
(* Journal resume                                                  *)
(* -------------------------------------------------------------- *)

let temp_journal () =
  let path = Filename.temp_file "conferr_adapt_test" ".jsonl" in
  Sys.remove path;
  path

(* The replay property: resuming an identical exploration re-executes
   nothing and reports the same frontier. *)
let test_journal_resume () =
  let base = base () in
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let settings journal_resume =
        {
          (settings_with ~batch:16 ~plateau:4 ()) with
          Explore.journal_path = Some path;
          resume = journal_resume;
        }
      in
      let first =
        Explore.run_from ~settings:(settings false) ~on_event:silent ~sut ~base
          ~stream:(typo_stream ~rounds:1 base) ()
      in
      Alcotest.(check bool) "first run executed scenarios" true
        (first.Explore.executed > 0);
      let second =
        Explore.run_from ~settings:(settings true) ~on_event:silent ~sut ~base
          ~stream:(typo_stream ~rounds:1 base) ()
      in
      Alcotest.(check int) "resume re-executes nothing" 0
        second.Explore.executed;
      Alcotest.(check int) "every outcome reused from the journal"
        (first.Explore.executed + first.Explore.not_applicable)
        second.Explore.resumed;
      Alcotest.(check bool) "frontier identical after resume" true
        (first.Explore.frontier = second.Explore.frontier);
      Alcotest.(check bool) "energies identical after resume" true
        (first.Explore.energies = second.Explore.energies);
      Alcotest.(check string) "profile identical after resume"
        (Profile.render first.Explore.profile)
        (Profile.render second.Explore.profile))

let suite =
  [
    Alcotest.test_case "gen basics" `Quick test_gen_basics;
    Alcotest.test_case "gen seeded determinism" `Quick
      test_gen_seeded_deterministic;
    Alcotest.test_case "gen round 0 is the classic faultload" `Quick
      test_gen_round0_is_classic_faultload;
    Alcotest.test_case "gen unbounded rounds" `Quick test_gen_unbounded_rounds;
    Alcotest.test_case "novel mutants never skipped" `Quick
      test_dedup_novel_never_skipped;
    Alcotest.test_case "explore dedup provenance" `Quick
      test_explore_dedup_properties;
    Alcotest.test_case "determinism across jobs" `Quick
      test_determinism_across_jobs;
    Alcotest.test_case "plateau stop" `Quick test_plateau_stop;
    Alcotest.test_case "budget stop" `Quick test_budget_stop;
    Alcotest.test_case "explore covers the exhaustive faultload" `Quick
      test_explore_covers_exhaustive;
    Alcotest.test_case "journal resume replays" `Quick test_journal_resume;
  ]
