(* The hardened execution layer (ISSUE 3): sandbox crash taxonomy,
   flaky-run quorum, circuit breaker, chaos self-injection, and journal
   CRC/fsck. *)

module Engine = Conferr.Engine
module Outcome = Conferr.Outcome
module Profile = Conferr.Profile
module Sandbox = Conferr_harden.Sandbox
module Quorum = Conferr_harden.Quorum
module Breaker = Conferr_harden.Breaker
module Chaos = Conferr_harden.Chaos
module Repro = Conferr_harden.Repro
module Executor = Conferr_exec.Executor
module Journal = Conferr_exec.Journal
module Crc32 = Conferr_exec.Crc32
module Json = Conferr_exec.Json
module Progress = Conferr_exec.Progress
module Scenario = Errgen.Scenario

let silent (_ : Progress.event) = ()

let pg = Suts.Mini_pg.sut

let base_of sut =
  match Engine.parse_default_config sut with
  | Ok base -> base
  | Error msg -> Alcotest.failf "default config: %s" msg

let noop_scenario ?(id = "noop-0001") () =
  Scenario.make ~id ~class_name:"test/noop" ~description:"no change" (fun set ->
      Ok set)

let temp_path suffix =
  let path = Filename.temp_file "conferr_harden_test" suffix in
  Sys.remove path;
  path

let temp_dir () =
  let path = temp_path ".d" in
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

(* A SUT whose behavior per boot is scripted by [plan]: each boot pops
   the next action (wrapping on exhaustion), so nondeterminism and crash
   sequences are reproducible in tests. *)
let scripted_sut plan =
  let step = Atomic.make 0 in
  let plan = Array.of_list plan in
  {
    Suts.Sut.sut_name = "scripted";
    version = "scripted 0.1";
    config_files = [ ("s.conf", Formats.Registry.pgconf) ];
    default_config = [ ("s.conf", "x = 1\n") ];
    boot =
      (fun _ ->
        let i = Atomic.fetch_and_add step 1 in
        match plan.(i mod Array.length plan) with
        | `Boot_crash -> failwith "scripted boot crash"
        | `Test_crash ->
          Ok
            {
              Suts.Sut.run_tests = (fun () -> failwith "scripted test crash");
              shutdown = (fun () -> ());
            }
        | `Stack_overflow ->
          let rec blow i = if i = max_int then i else 1 + blow (i + 1) in
          ignore (blow 0);
          assert false
        | `Burn_fuel ->
          Ok
            {
              Suts.Sut.run_tests =
                (fun () ->
                  while true do
                    Sandbox.tick ()
                  done;
                  assert false);
              shutdown = (fun () -> ());
            }
        | `Pass ->
          Ok
            {
              Suts.Sut.run_tests = (fun () -> [ Suts.Sut.passed "noop" ]);
              shutdown = (fun () -> ());
            });
  }

(* -------------------------------------------------------------- *)
(* Sandbox                                                          *)
(* -------------------------------------------------------------- *)

let files_of sut = sut.Suts.Sut.default_config

let test_sandbox_boot_crash () =
  let sut = scripted_sut [ `Boot_crash ] in
  match Sandbox.boot_and_test sut (files_of sut) with
  | Outcome.Crashed { cause = Outcome.Uncaught msg; phase = Outcome.Boot; _ } ->
    Alcotest.(check bool) "names the exception" true
      (Conferr_util.Strutil.contains_substring ~needle:"scripted boot crash" msg)
  | o -> Alcotest.failf "expected boot crash, got %s" (Outcome.label o)

let test_sandbox_test_crash () =
  let sut = scripted_sut [ `Test_crash ] in
  match Sandbox.boot_and_test sut (files_of sut) with
  | Outcome.Crashed { phase = Outcome.Test; _ } -> ()
  | o -> Alcotest.failf "expected test-phase crash, got %s" (Outcome.label o)

let test_sandbox_stack_overflow () =
  let sut = scripted_sut [ `Stack_overflow ] in
  match Sandbox.boot_and_test sut (files_of sut) with
  | Outcome.Crashed { cause = Outcome.Stack_overflow_crash; phase = Outcome.Boot; _ } ->
    ()
  | o -> Alcotest.failf "expected stack-overflow crash, got %s" (Outcome.label o)

let test_sandbox_fuel () =
  let sut = scripted_sut [ `Burn_fuel ] in
  (match Sandbox.boot_and_test ~fuel:500 sut (files_of sut) with
   | Outcome.Crashed { cause = Outcome.Fuel_exhausted 500; phase = Outcome.Test; _ } ->
     ()
   | o -> Alcotest.failf "expected fuel exhaustion, got %s" (Outcome.label o));
  (* without a budget, tick is a no-op for well-behaved SUTs *)
  Alcotest.(check bool) "no ambient fuel" true (Sandbox.fuel_left () = None)

let test_sandbox_matches_engine_when_clean () =
  let base = base_of pg in
  let scenarios =
    Conferr.Campaign.typo_scenarios
      ~rng:(Conferr_util.Rng.create 7)
      ~faultload:Conferr.Campaign.paper_faultload pg base
    |> List.filteri (fun i _ -> i < 40)
  in
  List.iter
    (fun s ->
      let classic = Engine.run_scenario ~sut:pg ~base s in
      let sandboxed = Sandbox.run_scenario ~sut:pg ~base s in
      Alcotest.(check bool)
        (Printf.sprintf "%s agrees" s.Scenario.id)
        true
        (classic = sandboxed))
    scenarios

(* -------------------------------------------------------------- *)
(* Crash taxonomy round-trip                                        *)
(* -------------------------------------------------------------- *)

let test_cause_roundtrip () =
  List.iter
    (fun cause ->
      match Outcome.cause_of_string (Outcome.cause_to_string cause) with
      | Some c -> Alcotest.(check bool) "cause roundtrips" true (c = cause)
      | None ->
        Alcotest.failf "cause %S did not parse back"
          (Outcome.cause_to_string cause))
    [
      Outcome.Uncaught "Failure(\"x:y [z]\")";
      Outcome.Stack_overflow_crash;
      Outcome.Out_of_memory_crash;
      Outcome.Fuel_exhausted 100_000;
      Outcome.Timeout 0.1;
      Outcome.Timeout (1.0 /. 3.0);
      Outcome.Breaker_open "postgres x typo/name";
    ]

(* -------------------------------------------------------------- *)
(* Quorum                                                           *)
(* -------------------------------------------------------------- *)

let crash cause =
  Outcome.Crashed { cause; phase = Outcome.Harness; backtrace = "" }

let test_quorum_vote () =
  let a = Outcome.Passed in
  let b = crash (Outcome.Uncaught "boom") in
  Alcotest.(check bool) "majority wins" true (Quorum.vote [ b; a; a ] = a);
  Alcotest.(check bool) "tie goes to the earliest" true
    (Quorum.vote [ b; a ] = b);
  Alcotest.(check bool) "unanimous" true (Quorum.vote [ a; a; a ] = a);
  (match Quorum.vote [] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "empty vote must raise")

let test_quorum_suspect () =
  Alcotest.(check bool) "crash is suspect" true
    (Quorum.suspect (crash (Outcome.Uncaught "boom")));
  Alcotest.(check bool) "timeout is suspect" true
    (Quorum.suspect (crash (Outcome.Timeout 1.0)));
  Alcotest.(check bool) "breaker skip is not (never executed)" false
    (Quorum.suspect (crash (Outcome.Breaker_open "b")));
  Alcotest.(check bool) "clean outcomes are not" false
    (Quorum.suspect Outcome.Passed || Quorum.suspect (Outcome.Startup_failure "x"))

let test_quorum_run_detects_flake () =
  let outcomes = [| crash (Outcome.Uncaught "boom"); Outcome.Passed; Outcome.Passed |] in
  let v = Quorum.run ~attempts:3 (fun i -> outcomes.(i)) in
  Alcotest.(check bool) "flaky" true v.Quorum.flaky;
  Alcotest.(check bool) "majority outcome" true (v.Quorum.outcome = Outcome.Passed);
  Alcotest.(check int) "all attempts kept" 3 (List.length v.Quorum.attempts);
  let stable = Quorum.run ~attempts:3 (fun _ -> Outcome.Passed) in
  Alcotest.(check bool) "stable is not flaky" false stable.Quorum.flaky

(* -------------------------------------------------------------- *)
(* Breaker                                                          *)
(* -------------------------------------------------------------- *)

let test_breaker_trips_and_recovers () =
  let b = Breaker.create ~threshold:3 ~base_backoff:4 () in
  let sut_name = "pg" and class_name = "typo/name" in
  let note crashed = Breaker.note b ~sut_name ~class_name ~crashed in
  let admit () = Breaker.admit b ~sut_name ~class_name in
  Alcotest.(check bool) "starts closed" true (admit () = `Run);
  Alcotest.(check bool) "first crash counted" true (note true = `Counted);
  Alcotest.(check bool) "second crash counted" true (note true = `Counted);
  (match note true with
   | `Tripped bucket ->
     Alcotest.(check string) "bucket name" "pg x typo/name" bucket
   | `Counted -> Alcotest.fail "third consecutive crash must trip");
  (* open: the next base_backoff scenarios are skipped *)
  for i = 1 to 4 do
    match admit () with
    | `Skip _ -> ()
    | `Run -> Alcotest.failf "admit %d must skip while open" i
  done;
  (* half-open probe; a success closes and resets *)
  Alcotest.(check bool) "probe runs" true (admit () = `Run);
  Alcotest.(check bool) "probe ok" true (note false = `Counted);
  Alcotest.(check bool) "closed again" true (admit () = `Run);
  let trips = Breaker.trips b in
  Alcotest.(check int) "one tripped bucket" 1 (List.length trips);
  let t = List.hd trips in
  Alcotest.(check int) "trip count" 1 t.Breaker.trip_count;
  Alcotest.(check int) "skips recorded" 4 t.Breaker.skipped;
  Alcotest.(check bool) "summary line mentions the bucket" true
    (Conferr_util.Strutil.contains_substring ~needle:"pg x typo/name"
       (Breaker.render_trip t))

let test_breaker_backoff_doubles () =
  let b = Breaker.create ~threshold:2 ~base_backoff:3 () in
  let sut_name = "pg" and class_name = "c" in
  let note crashed = ignore (Breaker.note b ~sut_name ~class_name ~crashed) in
  let count_skips () =
    let n = ref 0 in
    let rec loop () =
      match Breaker.admit b ~sut_name ~class_name with
      | `Skip _ ->
        incr n;
        loop ()
      | `Run -> !n
    in
    loop ()
  in
  note true;
  note true (* trip #1: window 3 *);
  Alcotest.(check int) "first window" 3 (count_skips ());
  note true (* failed probe re-trips: window doubled to 6 *);
  Alcotest.(check int) "doubled window" 6 (count_skips ());
  note false (* healthy probe resets the backoff *);
  note true;
  note true;
  Alcotest.(check int) "reset window" 3 (count_skips ())

(* -------------------------------------------------------------- *)
(* Executor integration: crashes, quorum, breaker, repro            *)
(* -------------------------------------------------------------- *)

let scenarios_n n =
  List.init n (fun i -> noop_scenario ~id:(Printf.sprintf "noop-%04d" i) ())

let test_executor_crash_writes_repro () =
  let sut = scripted_sut [ `Boot_crash ] in
  let base = base_of sut in
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let profile, _ =
        Executor.run_from
          ~settings:{ Executor.default_settings with quarantine_dir = Some dir }
          ~on_event:silent ~sut ~base ~scenarios:(scenarios_n 2) ()
      in
      Alcotest.(check int) "all crashed" 2 (Profile.summarize profile).Profile.crashed;
      let bundle = Filename.concat dir "noop-0000" in
      Alcotest.(check bool) "bundle dir" true (Sys.is_directory bundle);
      Alcotest.(check bool) "crash.txt" true
        (Sys.file_exists (Filename.concat bundle "crash.txt"));
      Alcotest.(check bool) "repro.sh" true
        (Sys.file_exists (Filename.concat bundle "repro.sh"));
      Alcotest.(check bool) "faulty file" true
        (Sys.file_exists (Filename.concat bundle "faulty-s.conf")))

let test_executor_quorum_outvotes_flake () =
  (* first boot crashes, every re-run passes: the quorum must out-vote
     the one-off crash and flag the scenario as flaky *)
  let sut = scripted_sut [ `Boot_crash; `Pass; `Pass; `Pass; `Pass ] in
  let base = base_of sut in
  let dir = temp_dir () in
  let path = temp_path ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      rm_rf dir;
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let profile, snapshot =
        Executor.run_from
          ~settings:
            {
              Executor.default_settings with
              quorum = 3;
              quarantine_dir = Some dir;
              journal_path = Some path;
            }
          ~on_event:silent ~sut ~base ~scenarios:[ noop_scenario () ] ()
      in
      Alcotest.(check int) "flake out-voted: ignored" 1
        (Profile.summarize profile).Profile.ignored;
      Alcotest.(check int) "flaky counted" 1 snapshot.Progress.flaky;
      Alcotest.(check (list string)) "quarantined as flaky" [ "noop-0001" ]
        (Repro.load_flaky dir);
      match Journal.load path with
      | [ e ] ->
        Alcotest.(check int) "attempts journaled" 3 e.Journal.attempts;
        Alcotest.(check int) "all votes journaled" 3 (List.length e.Journal.votes)
      | es -> Alcotest.failf "expected 1 journal entry, got %d" (List.length es))

let test_executor_breaker_short_circuits () =
  let sut = scripted_sut [ `Boot_crash ] in
  let base = base_of sut in
  let profile, snapshot =
    Executor.run_from
      ~settings:{ Executor.default_settings with breaker = Some 3 }
      ~on_event:silent ~sut ~base ~scenarios:(scenarios_n 10) ()
  in
  Alcotest.(check int) "everything crashed" 10
    (Profile.summarize profile).Profile.crashed;
  Alcotest.(check bool) "some scenarios skipped without execution" true
    (snapshot.Progress.breaker_skipped > 0);
  Alcotest.(check bool) "trip reported" true
    (List.mem_assoc "scripted x test/noop" snapshot.Progress.breaker_trips);
  let breaker_outcomes =
    List.filter
      (fun (e : Profile.entry) ->
        match e.outcome with
        | Outcome.Crashed { cause = Outcome.Breaker_open _; _ } -> true
        | _ -> false)
      profile.Profile.entries
  in
  Alcotest.(check int) "skips classified as breaker crashes"
    snapshot.Progress.breaker_skipped
    (List.length breaker_outcomes)

let test_clamp_jobs () =
  (match Executor.clamp_jobs 0 with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "jobs 0 must be rejected");
  (match Executor.clamp_jobs (-3) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "negative jobs must be rejected");
  Alcotest.(check bool) "sane value untouched" true
    (Executor.clamp_jobs 5 = Ok (5, None));
  (match Executor.clamp_jobs 1000 with
   | Ok (64, Some _) -> ()
   | _ -> Alcotest.fail "unknown count clamps to 64");
  (match Executor.clamp_jobs ~scenario_count:100 1000 with
   | Ok (100, Some _) -> ()
   | _ -> Alcotest.fail "large campaigns clamp to the scenario count");
  Alcotest.(check bool) "within the scenario-count cap" true
    (Executor.clamp_jobs ~scenario_count:100 70 = Ok (70, None))

(* -------------------------------------------------------------- *)
(* Chaos acceptance                                                 *)
(* -------------------------------------------------------------- *)

let chaos_settings =
  {
    Chaos.seed = 99;
    rate = 0.1;
    hang_s = 5.0;
    storm_blocks = 20_000;
    faults = [ Chaos.Crash; Chaos.Hang; Chaos.Storm; Chaos.Flip ];
  }

let test_chaos_campaign_terminates_and_resumes () =
  let base = base_of pg in
  let scenarios =
    Conferr.Campaign.typo_scenarios
      ~rng:(Conferr_util.Rng.create 7)
      ~faultload:Conferr.Campaign.paper_faultload pg base
    |> List.filteri (fun i _ -> i < 60)
  in
  let chaotic, _stats = Chaos.wrap ~settings:chaos_settings pg in
  let path = temp_path ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let settings =
        {
          Executor.default_settings with
          jobs = 4;
          timeout_s = Some 0.25;
          quorum = 3;
          breaker = Some 5;
          journal_path = Some path;
        }
      in
      let _, snapshot =
        Executor.run_from ~settings ~on_event:silent ~sut:chaotic ~base
          ~scenarios ()
      in
      Alcotest.(check int) "terminates having run everything" 60
        snapshot.Progress.finished;
      (* the journal is sound and holds every scenario exactly once *)
      let report = Journal.fsck path in
      Alcotest.(check int) "no torn lines" 0 report.Journal.torn;
      Alcotest.(check int) "no corrupt lines" 0 report.Journal.corrupt;
      let ids =
        List.map (fun (e : Journal.entry) -> e.Journal.scenario_id)
          (Journal.load path)
      in
      Alcotest.(check int) "journaled exactly once" 60 (List.length ids);
      Alcotest.(check int) "no duplicate ids" 60
        (List.length (List.sort_uniq compare ids));
      (* resuming the same journal re-executes nothing, deterministically *)
      let resumed_profile, resumed_snap =
        Executor.run_from
          ~settings:{ settings with resume = true }
          ~on_event:silent ~sut:chaotic ~base ~scenarios ()
      in
      Alcotest.(check int) "resume re-executes nothing" 0
        resumed_snap.Progress.finished;
      Alcotest.(check int) "resume restores all" 60 resumed_snap.Progress.resumed;
      (* the resumed profile is deterministic: scenario-list order,
         regardless of the completion order the journal recorded *)
      Alcotest.(check (list string)) "resume restores scenario order"
        (List.map (fun (s : Scenario.t) -> s.Scenario.id) scenarios)
        (List.map
           (fun (e : Profile.entry) -> e.Profile.scenario_id)
           resumed_profile.Profile.entries))

let test_chaos_off_is_transparent () =
  let base = base_of pg in
  let scenarios =
    Conferr.Campaign.typo_scenarios
      ~rng:(Conferr_util.Rng.create 7)
      ~faultload:Conferr.Campaign.paper_faultload pg base
    |> List.filteri (fun i _ -> i < 30)
  in
  let wrapped, stats = Chaos.wrap ~settings:{ chaos_settings with rate = 0.0 } pg in
  let plain, _ =
    Executor.run_from ~on_event:silent ~sut:pg ~base ~scenarios ()
  in
  let chaotic, _ =
    Executor.run_from ~on_event:silent ~sut:wrapped ~base ~scenarios ()
  in
  Alcotest.(check string) "profiles byte-identical with chaos off"
    (Profile.render plain) (Profile.render chaotic);
  Alcotest.(check int) "nothing injected" 0 (Chaos.injected stats)

(* -------------------------------------------------------------- *)
(* Journal v2: CRC, fsck, repair, v1 compatibility                  *)
(* -------------------------------------------------------------- *)

let test_crc32_known_values () =
  (* reference vectors for IEEE CRC-32 ("check" value of the catalogue) *)
  Alcotest.(check string) "123456789" "cbf43926"
    (Crc32.to_hex (Crc32.string "123456789"));
  Alcotest.(check string) "empty" "00000000" (Crc32.to_hex (Crc32.string ""));
  Alcotest.(check bool) "incremental equals whole" true
    (Crc32.update (Crc32.string "12345") "6789" = Crc32.string "123456789");
  Alcotest.(check bool) "hex roundtrip" true
    (Crc32.of_hex "cbf43926" = Some (Crc32.string "123456789"));
  Alcotest.(check bool) "bad hex rejected" true
    (Crc32.of_hex "xyz" = None && Crc32.of_hex "0bf4392" = None)

let sample_entries n =
  List.init n (fun i ->
      {
        Journal.scenario_id = Printf.sprintf "typo-%04d" i;
        class_name = "typo/name";
        description = Printf.sprintf "scenario %d" i;
        seed = Int64.of_int (1000 + i);
        outcome =
          (if i mod 2 = 0 then Outcome.Startup_failure "unknown directive"
           else Outcome.Passed);
        elapsed_ms = 0.5;
        attempts = 1;
        votes = [];
        phase_ms = [];
      })

let write_journal entries =
  let path = temp_path ".jsonl" in
  let w = Journal.open_append ~fresh:true path in
  List.iter (Journal.append w) entries;
  Journal.close w;
  path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let test_fsck_clean_journal () =
  let entries = sample_entries 5 in
  let path = write_journal entries in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let r = Journal.fsck path in
      Alcotest.(check bool) "clean" true (Journal.clean r);
      Alcotest.(check int) "all valid" 5 r.Journal.valid;
      Alcotest.(check bool) "prefix covers the file" true
        (r.Journal.valid_prefix_bytes = String.length (read_file path)))

(* The torn-write property: truncating a well-formed journal at *every*
   byte offset yields at most one damaged line, repair always produces a
   clean journal, and the repaired journal loads a prefix of the
   original entries. *)
let test_fsck_truncation_property () =
  let entries = sample_entries 4 in
  let full = read_file (write_journal entries) in
  let len = String.length full in
  let path = temp_path ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      for cut = 0 to len do
        write_file path (String.sub full 0 cut);
        let r = Journal.fsck path in
        if r.Journal.torn + r.Journal.corrupt > 1 then
          Alcotest.failf "cut at %d: more than one damaged line" cut;
        if r.Journal.valid_prefix_bytes > cut then
          Alcotest.failf "cut at %d: prefix beyond the file" cut;
        let loaded = List.length (Journal.load path) in
        if loaded <> r.Journal.valid then
          Alcotest.failf "cut at %d: load found %d but fsck %d" cut loaded
            r.Journal.valid;
        let pre = Journal.repair path in
        if (pre.Journal.valid, pre.Journal.torn, pre.Journal.corrupt)
           <> (r.Journal.valid, r.Journal.torn, r.Journal.corrupt)
        then Alcotest.failf "cut at %d: repair reported a different fsck" cut;
        let post = Journal.fsck path in
        if not (Journal.clean post) then
          Alcotest.failf "cut at %d: repair left damage" cut;
        let kept = Journal.load path in
        let expected = List.filteri (fun i _ -> i < List.length kept) entries in
        if kept <> expected then
          Alcotest.failf "cut at %d: repaired journal is not a prefix" cut
      done)

let test_fsck_detects_corruption () =
  let entries = sample_entries 3 in
  let path = write_journal entries in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* flip one byte inside the middle entry, keeping the JSON valid:
         the CRC must catch it *)
      let data = read_file path in
      let target = "scenario 1" in
      let idx =
        let n = String.length target in
        let rec find i =
          if i + n > String.length data then
            Alcotest.failf "target %S not found in journal" target
          else if String.sub data i n = target then i
          else find (i + 1)
        in
        find 0
      in
      let corrupted = Bytes.of_string data in
      Bytes.set corrupted (idx + String.length target - 1) '9';
      write_file path (Bytes.to_string corrupted);
      let r = Journal.fsck path in
      Alcotest.(check int) "one corrupt line" 1 r.Journal.corrupt;
      Alcotest.(check int) "others valid" 2 r.Journal.valid;
      Alcotest.(check int) "nothing torn" 0 r.Journal.torn;
      (* load skips it; repair keeps only the prefix before the damage *)
      Alcotest.(check int) "load skips the corrupt line" 2
        (List.length (Journal.load path));
      ignore (Journal.repair path);
      Alcotest.(check int) "repair truncates to the valid prefix" 1
        (List.length (Journal.load path)))

let test_journal_v1_compat () =
  (* a PR-2-era journal: bare entry objects, no wrapper, no CRC *)
  let path = temp_path ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let v1_line e =
        (* strip the v2 fields to mimic the old writer *)
        match Journal.entry_to_json e with
        | Json.Obj fields ->
          Json.to_string
            (Json.Obj (List.filter (fun (k, _) -> k <> "attempts" && k <> "votes") fields))
        | _ -> assert false
      in
      let entries = sample_entries 3 in
      write_file path
        (String.concat "" (List.map (fun e -> v1_line e ^ "\n") entries));
      let loaded = Journal.load path in
      Alcotest.(check int) "v1 lines load" 3 (List.length loaded);
      List.iter
        (fun (e : Journal.entry) ->
          Alcotest.(check int) "attempts default to 1" 1 e.Journal.attempts;
          Alcotest.(check bool) "no votes" true (e.Journal.votes = []))
        loaded;
      let r = Journal.fsck path in
      Alcotest.(check bool) "v1 journal fscks clean" true (Journal.clean r);
      Alcotest.(check int) "v1 lines count as valid" 3 r.Journal.valid)

let test_repro_flaky_list_dedupes () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      Repro.record_flaky ~dir [ "a"; "b"; "a" ];
      Repro.record_flaky ~dir [ "b"; "c" ];
      Alcotest.(check (list string)) "unique union, in write order"
        [ "a"; "b"; "c" ] (Repro.load_flaky dir))

let suite =
  [
    Alcotest.test_case "sandbox boot crash" `Quick test_sandbox_boot_crash;
    Alcotest.test_case "sandbox test crash" `Quick test_sandbox_test_crash;
    Alcotest.test_case "sandbox stack overflow" `Quick test_sandbox_stack_overflow;
    Alcotest.test_case "sandbox fuel budget" `Quick test_sandbox_fuel;
    Alcotest.test_case "sandbox matches engine when clean" `Quick
      test_sandbox_matches_engine_when_clean;
    Alcotest.test_case "crash cause roundtrip" `Quick test_cause_roundtrip;
    Alcotest.test_case "quorum vote" `Quick test_quorum_vote;
    Alcotest.test_case "quorum suspects" `Quick test_quorum_suspect;
    Alcotest.test_case "quorum detects flakes" `Quick test_quorum_run_detects_flake;
    Alcotest.test_case "breaker trips and recovers" `Quick
      test_breaker_trips_and_recovers;
    Alcotest.test_case "breaker backoff doubles" `Quick test_breaker_backoff_doubles;
    Alcotest.test_case "executor writes repro bundles" `Quick
      test_executor_crash_writes_repro;
    Alcotest.test_case "executor quorum out-votes flakes" `Quick
      test_executor_quorum_outvotes_flake;
    Alcotest.test_case "executor breaker short-circuits" `Quick
      test_executor_breaker_short_circuits;
    Alcotest.test_case "clamp jobs" `Quick test_clamp_jobs;
    Alcotest.test_case "chaos campaign terminates and resumes" `Slow
      test_chaos_campaign_terminates_and_resumes;
    Alcotest.test_case "chaos off is transparent" `Quick
      test_chaos_off_is_transparent;
    Alcotest.test_case "crc32 known values" `Quick test_crc32_known_values;
    Alcotest.test_case "fsck clean journal" `Quick test_fsck_clean_journal;
    Alcotest.test_case "fsck truncation property" `Quick
      test_fsck_truncation_property;
    Alcotest.test_case "fsck detects corruption" `Quick test_fsck_detects_corruption;
    Alcotest.test_case "journal v1 compatibility" `Quick test_journal_v1_compat;
    Alcotest.test_case "flaky list dedupes" `Quick test_repro_flaky_list_dedupes;
  ]
