(* The campaign executor: parallel == sequential, journal resume, and
   signature clustering (ISSUE 1 acceptance criteria). *)

module Engine = Conferr.Engine
module Profile = Conferr.Profile
module Outcome = Conferr.Outcome
module Executor = Conferr_exec.Executor
module Journal = Conferr_exec.Journal
module Signature = Conferr_exec.Signature
module Progress = Conferr_exec.Progress
module Json = Conferr_exec.Json
module Scenario = Errgen.Scenario

let sut = Suts.Mini_pg.sut

let base () =
  match Engine.parse_default_config sut with
  | Ok base -> base
  | Error msg -> Alcotest.failf "postgres default config: %s" msg

(* Regenerating with the same seed gives the same faultload — the
   scenario list itself is deterministic, so campaigns are comparable. *)
let scenarios base =
  Conferr.Campaign.typo_scenarios
    ~rng:(Conferr_util.Rng.create 7)
    ~faultload:Conferr.Campaign.paper_faultload sut base

let silent (_ : Progress.event) = ()

let profile_ids (p : Profile.t) =
  List.map (fun (e : Profile.entry) -> e.Profile.scenario_id) p.entries

let temp_journal () =
  let path = Filename.temp_file "conferr_exec_test" ".jsonl" in
  Sys.remove path;
  path

(* -------------------------------------------------------------- *)
(* (a) parallel profile equals sequential profile                  *)
(* -------------------------------------------------------------- *)

let test_parallel_equals_sequential () =
  let base = base () in
  let scenarios = scenarios base in
  let seq = Engine.run_from ~jobs:1 ~sut ~base ~scenarios () in
  let par, snapshot =
    Executor.run_from
      ~settings:{ Executor.default_settings with jobs = 4 }
      ~on_event:silent ~sut ~base ~scenarios ()
  in
  Alcotest.(check string) "rendered profiles identical" (Profile.render seq)
    (Profile.render par);
  Alcotest.(check string) "csv identical" (Profile.to_csv seq) (Profile.to_csv par);
  Alcotest.(check (list string)) "entry order identical" (profile_ids seq)
    (profile_ids par);
  Alcotest.(check int) "all scenarios executed" (List.length scenarios)
    snapshot.Progress.finished

(* -------------------------------------------------------------- *)
(* (b) a journal written by a killed run resumes to the same profile *)
(* -------------------------------------------------------------- *)

let test_journal_resume () =
  let base = base () in
  let scenarios = scenarios base in
  let n = List.length scenarios in
  Alcotest.(check bool) "faultload is non-trivial" true (n > 20);
  let reference, _ =
    Executor.run_from ~on_event:silent ~sut ~base ~scenarios ()
  in
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (* "kill" the first run after half the campaign: only feed it the
         first half of the scenario list *)
      let half = List.filteri (fun i _ -> i < n / 2) scenarios in
      let _ =
        Executor.run_from
          ~settings:{ Executor.default_settings with journal_path = Some path }
          ~on_event:silent ~sut ~base ~scenarios:half ()
      in
      (* simulate the torn final line of a crash mid-append *)
      let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
      output_string oc "{\"id\":\"typo-9999\",\"class\":\"ty";
      close_out oc;
      let resumed, snapshot =
        Executor.run_from
          ~settings:
            {
              Executor.default_settings with
              jobs = 2;
              journal_path = Some path;
              resume = true;
            }
          ~on_event:silent ~sut ~base ~scenarios ()
      in
      Alcotest.(check int) "first half resumed from journal" (n / 2)
        snapshot.Progress.resumed;
      Alcotest.(check int) "second half executed" (n - (n / 2))
        snapshot.Progress.finished;
      Alcotest.(check string) "resumed profile equals uninterrupted run"
        (Profile.render reference) (Profile.render resumed);
      Alcotest.(check (list string)) "entry order preserved"
        (profile_ids reference) (profile_ids resumed);
      (* the checkpoint compacted the journal: every scenario exactly once *)
      let entries = Journal.load path in
      Alcotest.(check int) "journal holds the whole campaign" n
        (List.length entries);
      Alcotest.(check (list string)) "journal in scenario order"
        (List.map (fun (s : Scenario.t) -> s.id) scenarios)
        (List.map (fun (e : Journal.entry) -> e.Journal.scenario_id) entries))

(* -------------------------------------------------------------- *)
(* (c) signature clustering is stable under entry reordering       *)
(* -------------------------------------------------------------- *)

let cluster_testable =
  Alcotest.testable
    (fun fmt (c : Signature.cluster) ->
      Format.fprintf fmt "%d x %s/%s/%s [%s]" c.count c.key.class_name
        c.key.label c.key.message
        (String.concat "," c.scenario_ids))
    ( = )

let test_signature_stability () =
  let base = base () in
  let profile, _ =
    Executor.run_from ~on_event:silent ~sut ~base ~scenarios:(scenarios base) ()
  in
  let entries = profile.Profile.entries in
  let forward = Signature.clusters entries in
  let reversed = Signature.clusters (List.rev entries) in
  let shuffled =
    Signature.clusters (Conferr_util.Rng.shuffle (Conferr_util.Rng.create 3) entries)
  in
  Alcotest.(check (list cluster_testable)) "reversal invariant" forward reversed;
  Alcotest.(check (list cluster_testable)) "shuffle invariant" forward shuffled;
  (* clusters compress: far fewer signatures than entries, none empty *)
  Alcotest.(check bool) "compresses the profile" true
    (List.length forward < List.length entries / 2);
  List.iter
    (fun (c : Signature.cluster) ->
      Alcotest.(check int) "count matches members" c.count
        (List.length c.scenario_ids))
    forward

let test_normalize () =
  Alcotest.(check string) "masks digits and quotes"
    (Signature.normalize "unknown key \"Prot\" on line 42")
    (Signature.normalize "unknown key 'listen2'   on line 7");
  Alcotest.(check string) "collapses whitespace" "a b"
    (Signature.normalize "  A \t B  ");
  (* size literals with unit suffixes are one volatile token, so value
     typos differing only in magnitude or unit cluster together *)
  Alcotest.(check string) "masks unit-suffixed sizes"
    (Signature.normalize "invalid value 16M for shared_buffers")
    (Signature.normalize "invalid value 512kB for shared_buffers");
  Alcotest.(check string) "masks durations"
    (Signature.normalize "statement timed out after 30s")
    (Signature.normalize "statement timed out after 5min");
  Alcotest.(check string) "masks decimal fractions with units"
    (Signature.normalize "checkpoint took 2.5s")
    (Signature.normalize "checkpoint took 150ms");
  (* hex literals: 0x-prefixed always, bare runs only when they carry a
     digit (so ordinary words built from a-f survive) *)
  Alcotest.(check string) "masks 0x literals"
    (Signature.normalize "bad flags 0xDEAD12")
    (Signature.normalize "bad flags 0x7f3a99");
  Alcotest.(check string) "masks bare hex runs"
    (Signature.normalize "token 7f3a9b01 rejected")
    (Signature.normalize "token 00ffa0aa rejected");
  Alcotest.(check string) "digit-free hex-alphabet words survive"
    "dead beef facade"
    (Signature.normalize "dead beef facade");
  Alcotest.(check string) "unit suffix requires a known unit" "#nd attempt"
    (Signature.normalize "42nd attempt")

(* -------------------------------------------------------------- *)
(* Supporting machinery                                            *)
(* -------------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("id", Json.Str "typo-0001");
        ("weird", Json.Str "a\"b\\c\nd\te\x07f");
        ("n", Json.Num 3.25);
        ("xs", Json.Arr [ Json.Str "x"; Json.Str "y" ]);
        ("flag", Json.Bool true);
        ("nothing", Json.Null);
      ]
  in
  let text = Json.to_string v in
  Alcotest.(check bool) "one line" false (String.contains text '\n');
  (match Json.of_string text with
   | Ok v' -> Alcotest.(check bool) "roundtrips" true (v = v')
   | Error e -> Alcotest.failf "parse: %s" e);
  (match Json.of_string "{\"torn\":" with
   | Ok _ -> Alcotest.fail "torn JSON must not parse"
   | Error _ -> ())

let test_journal_entry_roundtrip () =
  List.iter
    (fun (outcome, votes) ->
      let e =
        {
          Journal.scenario_id = "typo-0042";
          class_name = "typo/value";
          description = "substitute 'x' in \"key\"";
          seed = -3482680871274110419L;
          outcome;
          elapsed_ms = 0.25;
          attempts = 3;
          votes;
          phase_ms = [];
        }
      in
      match Journal.entry_of_json (Journal.entry_to_json e) with
      | Ok e' -> Alcotest.(check bool) "entry roundtrips" true (e = e')
      | Error msg -> Alcotest.failf "decode: %s" msg)
    [
      (Outcome.Passed, []);
      (Outcome.Startup_failure "bad directive", []);
      (Outcome.Test_failure [ "t1 failed"; "t2 failed" ], []);
      (Outcome.Not_applicable "inexpressible", []);
      ( Outcome.Crashed
          {
            cause = Outcome.Uncaught "Failure(\"boom\")";
            phase = Outcome.Boot;
            backtrace = "Raised at line 1\nCalled from line 2";
          },
        [
          Outcome.Crashed
            { cause = Outcome.Stack_overflow_crash; phase = Outcome.Test;
              backtrace = "" };
          Outcome.Passed;
        ] );
      ( Outcome.Crashed
          { cause = Outcome.Timeout 0.5; phase = Outcome.Harness; backtrace = "" },
        [] );
    ]

let test_scenario_seed_deterministic () =
  let a = Executor.scenario_seed ~campaign_seed:42 "typo-0001" in
  let b = Executor.scenario_seed ~campaign_seed:42 "typo-0001" in
  let c = Executor.scenario_seed ~campaign_seed:42 "typo-0002" in
  let d = Executor.scenario_seed ~campaign_seed:43 "typo-0001" in
  Alcotest.(check bool) "stable" true (a = b);
  Alcotest.(check bool) "id-sensitive" true (a <> c);
  Alcotest.(check bool) "seed-sensitive" true (a <> d)

let test_pool_map () =
  let input = Array.init 100 Fun.id in
  let seq = Conferr_pool.map ~jobs:1 (fun i x -> i * x) input in
  let par = Conferr_pool.map ~jobs:4 (fun i x -> i * x) input in
  Alcotest.(check bool) "deterministic slots" true (seq = par);
  Alcotest.(check bool) "empty input" true (Conferr_pool.map ~jobs:4 (fun _ x -> x) [||] = [||])

let test_pool_timeout () =
  (match Conferr_pool.with_timeout ~timeout_s:5.0 (fun () -> 1 + 1) with
   | Some 2 -> ()
   | Some n -> Alcotest.failf "unexpected %d" n
   | None -> Alcotest.fail "fast work must not time out");
  match
    Conferr_pool.with_timeout ~timeout_s:0.05 (fun () ->
        Thread.delay 5.0;
        0)
  with
  | None -> ()
  | Some _ -> Alcotest.fail "sleeping work must time out"

let test_executor_timeout_classified () =
  let base = base () in
  let hang =
    Scenario.make ~id:"hang-0001" ~class_name:"test/hang"
      ~description:"pathological mutation that never terminates" (fun _ ->
        Thread.delay 60.0;
        Error "unreachable")
  in
  let events = ref [] in
  let profile, snapshot =
    Executor.run_from
      ~settings:{ Executor.default_settings with timeout_s = Some 0.05 }
      ~on_event:(fun e -> events := e :: !events)
      ~sut ~base ~scenarios:[ hang ] ()
  in
  Alcotest.(check int) "timeout counted" 1 snapshot.Progress.timeouts;
  (* a scenario that exhausts its timeout budget is a harness crash
     (the SUT never answered), not a functional failure of the SUT *)
  (match (Profile.summarize profile).Profile.crashed with
   | 1 -> ()
   | n -> Alcotest.failf "expected 1 crashed, got %d" n);
  match profile.Profile.entries with
  | [ { outcome = Outcome.Crashed { cause = Outcome.Timeout _; phase = Outcome.Harness; _ }; _ } ] ->
    ()
  | _ -> Alcotest.fail "expected Crashed (Timeout) in harness phase"

let suite =
  [
    Alcotest.test_case "parallel equals sequential" `Quick
      test_parallel_equals_sequential;
    Alcotest.test_case "journal resume" `Quick test_journal_resume;
    Alcotest.test_case "signature stability" `Quick test_signature_stability;
    Alcotest.test_case "signature normalization" `Quick test_normalize;
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "journal entry roundtrip" `Quick test_journal_entry_roundtrip;
    Alcotest.test_case "scenario seeds deterministic" `Quick
      test_scenario_seed_deterministic;
    Alcotest.test_case "pool map" `Quick test_pool_map;
    Alcotest.test_case "pool timeout" `Quick test_pool_timeout;
    Alcotest.test_case "executor classifies timeouts" `Quick
      test_executor_timeout_classified;
  ]
