(* Constraint inference (ISSUE 7): mining recorded campaigns back into
   lint rules.  The acceptance bar: on the paper faultloads the pipeline
   recovers at least half of the hand-written rule ids for mini_pg and
   mini_bind with zero contradicted rules, and every rendering is
   byte-identical for any jobs count.  Plus unit coverage of the
   config-tree differ, the rule-file codec (emitted rules must lint the
   stock configuration clean), and qcheck properties of the template
   miner. *)

module Engine = Conferr.Engine
module Checker = Conferr_lint.Checker
module Rule_file = Conferr_lint.Rule_file
module Pipeline = Conferr_infer.Pipeline
module Infer_report = Conferr_infer.Infer_report
module Edit = Conferr_infer.Edit
module Template = Conferr_infer.Template
module Node = Conftree.Node
module Config_set = Conftree.Config_set

let nearest = Conferr.Suggest.nearest

let rules_of (sut : Suts.Sut.t) =
  match Suts.Lint_rules.for_sut sut.sut_name with
  | Some rules -> rules
  | None -> Alcotest.failf "no rule set for %s" sut.sut_name

let base_of (sut : Suts.Sut.t) =
  match Engine.parse_default_config sut with
  | Ok b -> b
  | Error m -> Alcotest.failf "%s: %s" sut.sut_name m

(* The scenario sets `conferr infer` regenerates at --seed 42: the paper
   typo faultload, plus the RFC 1912 semantic scenarios for bind. *)
let pg_scenarios base =
  Conferr.Campaign.typo_scenarios
    ~rng:(Conferr_util.Rng.create 42)
    ~faultload:Conferr.Campaign.paper_faultload Suts.Mini_pg.sut base

let bind_scenarios base =
  Conferr.Campaign.typo_scenarios
    ~rng:(Conferr_util.Rng.create 42)
    ~faultload:Conferr.Campaign.paper_faultload Suts.Mini_bind.sut base
  @ (Dnsmodel.Rfc1912.scenarios
       ~codec:(Dnsmodel.Codec.bind ~zones:Suts.Mini_bind.zones)
       ~faults:Dnsmodel.Rfc1912.all_faults base
    |> Errgen.Scenario.relabel_ids ~prefix:"semantic")

let silent (_ : Conferr_exec.Progress.event) = ()

(* Run the campaign once through the real executor + journal codec and
   keep (base, scenarios, entries); each is reused by several tests. *)
let campaign sut scenarios_of =
  lazy
    (let base = base_of sut in
     let scenarios = scenarios_of base in
     let path = Filename.temp_file "conferr_infer_test" ".jsonl" in
     Fun.protect
       ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
       (fun () ->
         let settings =
           {
             Conferr_exec.Executor.default_settings with
             journal_path = Some path;
           }
         in
         let _ =
           Conferr_exec.Executor.run_from ~settings ~on_event:silent ~sut
             ~base ~scenarios ()
         in
         (base, scenarios, Conferr_exec.Journal.load path)))

let pg_campaign = campaign Suts.Mini_pg.sut pg_scenarios
let bind_campaign = campaign Suts.Mini_bind.sut bind_scenarios

let infer ?(jobs = 1) sut (base, scenarios, entries) =
  Pipeline.run ~jobs ~nearest ~sut ~rules:(rules_of sut) ~scenarios ~entries
    ~base ~thresholds:Conferr_infer.Confidence.default ()

let check_recovered what result must_recover =
  let diff = result.Pipeline.diff in
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s recovered (got: %s)" what id
           (String.concat ", " diff.Conferr_infer.Differ.recovered))
        true
        (List.mem id diff.Conferr_infer.Differ.recovered))
    must_recover;
  Alcotest.(check (list string))
    (what ^ ": no contradicted hand-written rules") []
    diff.Conferr_infer.Differ.contradicted;
  Alcotest.(check bool)
    (what ^ ": majority of hand-written ids recovered")
    true
    (Infer_report.majority result)

(* ---------------- acceptance: paper faultloads ---------------- *)

let test_pg_acceptance () =
  let result = infer Suts.Mini_pg.sut (Lazy.force pg_campaign) in
  (* 4 of the 6 postgres ids; PG-SYNTAX and PG-DUP stay
     missed-by-inference (no faultload scenario exercises them) *)
  check_recovered "pg" result
    [ "PG-UNKNOWN"; "PG-VALUE"; "PG-REQUIRED"; "PG-CROSS" ];
  Alcotest.(check (list string))
    "pg: nothing inferred that the hand set lacks entirely" []
    result.Pipeline.diff.Conferr_infer.Differ.missed_by_hand

let test_bind_acceptance () =
  let result = infer Suts.Mini_bind.sut (Lazy.force bind_campaign) in
  check_recovered "bind" result
    [ "BD-CONF"; "BD-FILE"; "BD-LOAD"; "BD-ZONE"; "BD-SOA" ]

let test_deterministic_across_jobs () =
  let c = Lazy.force pg_campaign in
  let r1 = infer ~jobs:1 Suts.Mini_pg.sut c in
  let r4 = infer ~jobs:4 Suts.Mini_pg.sut c in
  Alcotest.(check string) "render byte-identical for jobs 1 vs 4"
    (Infer_report.render r1) (Infer_report.render r4);
  Alcotest.(check string) "json byte-identical for jobs 1 vs 4"
    (Conferr_obsv.Json.to_string (Infer_report.to_json r1))
    (Conferr_obsv.Json.to_string (Infer_report.to_json r4))

(* ---------------- emitted rule files ---------------- *)

let test_rule_file_roundtrip () =
  let result = infer Suts.Mini_pg.sut (Lazy.force pg_campaign) in
  let specs = Infer_report.rule_specs result in
  Alcotest.(check bool) "pg emits expressible rules" true (specs <> []);
  match Rule_file.load (Rule_file.save ~sut:"postgres" specs) with
  | Error m -> Alcotest.failf "round trip failed: %s" m
  | Ok specs' ->
    Alcotest.(check int) "same rule count" (List.length specs)
      (List.length specs');
    Alcotest.(check bool) "specs survive save/load byte-for-byte" true
      (specs = specs')

let test_rule_file_rejects_junk () =
  List.iter
    (fun text ->
      match Rule_file.load text with
      | Ok _ -> Alcotest.failf "accepted junk rule file: %s" text
      | Error _ -> ())
    [
      "";
      "not json";
      "{}";
      "{\"conferr_rules\":2,\"rules\":[]}";
      "{\"conferr_rules\":1,\"rules\":[{\"id\":\"X\"}]}";
    ]

let test_emitted_rules_stock_clean () =
  (* The mined constraints describe what the SUT accepts, so the SUT's
     own stock configuration must satisfy every one of them. *)
  List.iter
    (fun (sut, campaign) ->
      let base, _, _ = Lazy.force campaign in
      let result = infer sut (Lazy.force campaign) in
      let rules =
        List.map Rule_file.to_rule (Infer_report.rule_specs result)
      in
      let findings = Checker.run ~nearest ~rules base in
      Alcotest.(check int)
        (Printf.sprintf "%s: emitted rules lint stock clean (got: %s)"
           sut.Suts.Sut.sut_name
           (String.concat "; "
              (List.map
                 (fun (f : Conferr_lint.Finding.t) -> f.rule_id ^ " " ^ f.message)
                 findings)))
        0 (List.length findings))
    [
      (Suts.Mini_pg.sut, pg_campaign);
      (Suts.Mini_bind.sut, bind_campaign);
    ]

(* ---------------- the config-tree differ ---------------- *)

let pg_base_text = "a = 1\nb = two\nc = 3\n"

let parse_pg text =
  match Formats.Pgconf.parse text with
  | Ok tree -> Config_set.of_list [ ("postgresql.conf", tree) ]
  | Error e -> Alcotest.failf "parse: %s" (Formats.Parse_error.to_string e)

let diff_pg mutated_text =
  Edit.diff ~base:(parse_pg pg_base_text) ~mutated:(parse_pg mutated_text)

let check_edit msg (edit : Edit.t) ~name ~kind =
  Alcotest.(check string) (msg ^ ": name") name edit.name;
  Alcotest.(check string) (msg ^ ": kind") kind (Edit.kind_label edit.kind)

let test_edit_diff () =
  (match diff_pg "a = 1\nb = two\nc = 4\n" with
  | [ e ] ->
    check_edit "value change" e ~name:"c" ~kind:"value-changed";
    (match e.kind with
    | Edit.Value_changed { from_; to_ } ->
      Alcotest.(check string) "old value" "3" from_;
      Alcotest.(check string) "new value" "4" to_
    | _ -> assert false)
  | es -> Alcotest.failf "value change: expected 1 edit, got %d" (List.length es));
  (match diff_pg "a = 1\nc = 3\n" with
  | [ e ] -> check_edit "deletion" e ~name:"b" ~kind:"deleted"
  | es -> Alcotest.failf "deletion: expected 1 edit, got %d" (List.length es));
  (match diff_pg "a = 1\nb = two\nc = 3\nd = 4\n" with
  | [ e ] -> check_edit "insertion" e ~name:"d" ~kind:"inserted"
  | es -> Alcotest.failf "insertion: expected 1 edit, got %d" (List.length es));
  (match diff_pg "a = 1\nbb = two\nc = 3\n" with
  | [ e ] ->
    check_edit "rename" e ~name:"b" ~kind:"renamed";
    (match e.kind with
    | Edit.Renamed { from_; to_ } ->
      Alcotest.(check string) "rename from" "b" from_;
      Alcotest.(check string) "rename to" "bb" to_
    | _ -> assert false)
  | es -> Alcotest.failf "rename: expected 1 edit, got %d" (List.length es));
  Alcotest.(check int) "identical sets produce no edits" 0
    (List.length (diff_pg pg_base_text))

(* ---------------- template miner properties ---------------- *)

let printable_gen = QCheck2.Gen.(string_size ~gen:printable (int_range 0 60))

let word_gen =
  QCheck2.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 8))

let prop_mine_idempotent =
  QCheck2.Test.make ~count:500 ~name:"template: mine is idempotent"
    printable_gen
    (fun s -> Template.mine (Template.mine s) = Template.mine s)

let prop_mine_masks_volatile_spans =
  (* Two messages that differ only in a quoted token and a line number
     must mine to the same template — the ConfInLog premise. *)
  QCheck2.Test.make ~count:500
    ~name:"template: messages differing only in masked spans share a template"
    QCheck2.Gen.(tup4 word_gen word_gen nat nat)
    (fun (w1, w2, n1, n2) ->
      let msg w n = Printf.sprintf "unknown key \"%s\" on line %d" w n in
      Template.mine (msg w1 n1) = Template.mine (msg w2 n2))

let suite =
  [
    Alcotest.test_case "inference acceptance: mini_pg paper faultload" `Quick
      test_pg_acceptance;
    Alcotest.test_case "inference acceptance: mini_bind paper faultload" `Quick
      test_bind_acceptance;
    Alcotest.test_case "inference deterministic across jobs" `Quick
      test_deterministic_across_jobs;
    Alcotest.test_case "rule file save/load round trip" `Quick
      test_rule_file_roundtrip;
    Alcotest.test_case "rule file rejects malformed input" `Quick
      test_rule_file_rejects_junk;
    Alcotest.test_case "emitted rules lint stock configs clean" `Quick
      test_emitted_rules_stock_clean;
    Alcotest.test_case "config-tree differ classifies edits" `Quick
      test_edit_diff;
    QCheck_alcotest.to_alcotest prop_mine_idempotent;
    QCheck_alcotest.to_alcotest prop_mine_masks_volatile_spans;
  ]
