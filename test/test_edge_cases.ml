(* Cross-cutting edge cases and determinism guarantees. *)

module Rng = Conferr_util.Rng
module Node = Conftree.Node

let contains needle msg = Conferr_util.Strutil.contains_substring ~needle msg

(* --- engine determinism: the replayability the paper's benchmark use
       case needs --- *)

let profile_fingerprint seed =
  let sut = Suts.Mini_mysql.sut in
  let rng = Rng.create seed in
  match Conferr.Engine.parse_default_config sut with
  | Error msg -> Alcotest.fail msg
  | Ok base ->
    let scenarios =
      Conferr.Campaign.typo_scenarios ~rng
        ~faultload:Conferr.Campaign.paper_faultload sut base
    in
    let profile = Conferr.Engine.run_from ~sut ~base ~scenarios () in
    List.map
      (fun (e : Conferr.Profile.entry) ->
        (e.scenario_id, Conferr.Outcome.label e.outcome))
      profile.Conferr.Profile.entries

let test_campaign_replayable () =
  Alcotest.(check (list (pair string string)))
    "same seed, same profile" (profile_fingerprint 77) (profile_fingerprint 77)

(* --- empty and degenerate configurations --- *)

let test_empty_config_mysql () =
  match Suts.Mini_mysql.sut.Suts.Sut.boot [ ("my.cnf", "") ] with
  | Ok instance ->
    Alcotest.(check bool) "all defaults work" true
      (Suts.Sut.all_passed (instance.Suts.Sut.run_tests ()))
  | Error msg -> Alcotest.failf "empty config must boot on defaults: %s" msg

let test_empty_config_pg () =
  match Suts.Mini_pg.sut.Suts.Sut.boot [ ("postgresql.conf", "") ] with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "empty config must boot on defaults: %s" msg

let test_empty_config_apache_refused () =
  (* no Listen -> no sockets *)
  match
    Suts.Mini_apache.sut.Suts.Sut.boot [ ("httpd.conf", ""); ("ssl.conf", "") ]
  with
  | Error msg -> Alcotest.(check bool) "no sockets" true (contains "sockets" msg)
  | Ok _ -> Alcotest.fail "apache without Listen must refuse startup"

let test_comment_only_configs () =
  List.iter
    (fun (sut, file) ->
      match (List.assoc sut [ ("mysql", Suts.Mini_mysql.sut); ("postgres", Suts.Mini_pg.sut) ]).Suts.Sut.boot
              [ (file, "# nothing but comments\n# more\n") ]
      with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%s: %s" sut msg)
    [ ("mysql", "my.cnf"); ("postgres", "postgresql.conf") ]

(* --- huge values and odd characters --- *)

let test_long_values_survive () =
  let long = String.make 4096 'x' in
  let config = Printf.sprintf "[mysqld]\nsocket = /%s\n" long in
  match Suts.Mini_mysql.sut.Suts.Sut.boot [ ("my.cnf", config) ] with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "long path rejected: %s" msg

let test_unicode_bytes_in_values () =
  (* bytes above 127 in a freeform Apache value must not crash anything *)
  let httpd = List.assoc "httpd.conf" Suts.Mini_apache.sut.Suts.Sut.default_config in
  let config = httpd ^ "ServerAdmin caf\xc3\xa9@example.com\n" in
  match
    Suts.Mini_apache.sut.Suts.Sut.boot
      [ ("httpd.conf", config);
        ("ssl.conf", List.assoc "ssl.conf" Suts.Mini_apache.sut.Suts.Sut.default_config) ]
  with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "utf-8 value rejected: %s" msg

(* --- parser robustness over random bytes (never raise) --- *)

let prop_formats_never_raise =
  let fmt_gen = QCheck2.Gen.oneofl Formats.Registry.all in
  QCheck2.Test.make ~count:300 ~name:"formats: parse never raises on random input"
    QCheck2.Gen.(pair fmt_gen (string_size (int_range 0 200)))
    (fun (fmt, text) ->
      match fmt.Formats.Registry.parse text with Ok _ | Error _ -> true)

let prop_sut_boot_never_raises =
  let sut_gen =
    QCheck2.Gen.oneofl
      [ Suts.Mini_mysql.sut; Suts.Mini_pg.sut; Suts.Mini_djbdns.sut ]
  in
  QCheck2.Test.make ~count:200 ~name:"suts: boot never raises on random single-file input"
    QCheck2.Gen.(pair sut_gen (string_size (int_range 0 200)))
    (fun (sut, text) ->
      let files =
        List.map (fun (f, _) -> (f, text)) sut.Suts.Sut.config_files
      in
      match sut.Suts.Sut.boot files with Ok _ | Error _ -> true)

(* --- variations property --- *)

let prop_variations_preserve_directive_multiset =
  let class_gen =
    QCheck2.Gen.oneofl
      [ Errgen.Variations.Reorder_sections; Errgen.Variations.Reorder_directives ]
  in
  QCheck2.Test.make ~count:100
    ~name:"variations: reordering preserves the directive multiset"
    QCheck2.Gen.(pair class_gen (pair int Gen.ini_tree_gen))
    (fun (class_, (seed, tree)) ->
      let set = Conftree.Config_set.of_list [ ("f", tree) ] in
      let rng = Rng.create seed in
      match Errgen.Variations.scenarios ~rng ~count:1 class_ ~file:"f" set with
      | [] -> true (* class not applicable to this tree *)
      | s :: _ ->
        (match s.Errgen.Scenario.apply set with
         | Error _ -> false
         | Ok set' ->
           let names t =
             Node.find_all (fun n -> n.Node.kind = Node.kind_directive) t
             |> List.map (fun (_, (n : Node.t)) -> n.name)
             |> List.sort compare
           in
           (match Conftree.Config_set.find set' "f" with
            | None -> false
            | Some tree' -> names tree = names tree')))

(* --- minisql property --- *)

let prop_minisql_insert_select =
  QCheck2.Test.make ~count:100 ~name:"minisql: inserted rows are all selectable"
    QCheck2.Gen.(list_size (int_range 0 20) (pair small_int (string_size ~gen:(char_range 'a' 'z') (int_range 0 8))))
    (fun rows ->
      let e = Minisql.Engine.create () in
      let ok sql =
        match Minisql.Engine.run e sql with
        | Minisql.Engine.Done | Minisql.Engine.Rows _ -> true
        | Minisql.Engine.Sql_error _ -> false
      in
      ok "CREATE DATABASE d"
      && ok "CREATE TABLE t (id INT, name TEXT)"
      && List.for_all
           (fun (i, s) ->
             ok (Printf.sprintf "INSERT INTO t VALUES (%d, '%s')" i s))
           rows
      &&
      match Minisql.Engine.run e "SELECT * FROM t" with
      | Minisql.Engine.Rows rs -> List.length rs.Minisql.Engine.rows = List.length rows
      | _ -> false)

let suite =
  [
    Alcotest.test_case "campaign replayable" `Slow test_campaign_replayable;
    Alcotest.test_case "empty config mysql" `Quick test_empty_config_mysql;
    Alcotest.test_case "empty config postgres" `Quick test_empty_config_pg;
    Alcotest.test_case "empty config apache" `Quick test_empty_config_apache_refused;
    Alcotest.test_case "comment-only configs" `Quick test_comment_only_configs;
    Alcotest.test_case "long values" `Quick test_long_values_survive;
    Alcotest.test_case "non-ascii bytes" `Quick test_unicode_bytes_in_values;
    QCheck_alcotest.to_alcotest prop_formats_never_raise;
    QCheck_alcotest.to_alcotest prop_sut_boot_never_raises;
    QCheck_alcotest.to_alcotest prop_variations_preserve_directive_multiset;
    QCheck_alcotest.to_alcotest prop_minisql_insert_select;
  ]
