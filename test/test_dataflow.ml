(* Corpus-level analysis (ISSUE 10): the abstract lattice is sound on
   the stock sets (concretization contains the value the SUT runs
   with), every stock configuration analyzes clean under the deepened
   rule set, the paper's pg cross-parameter fault is caught statically
   as a relation violation naming both ConfPaths where the base linter
   misses it, relation rules round-trip through the rule-file format
   (with malformed inputs rejected), the deep scan is byte-identical
   for any --jobs, silent acceptances predicted by gap-claiming rules
   reclassify as agreements, and the reference graph finds cycles. *)

module Engine = Conferr.Engine
module Finding = Conferr_lint.Finding
module Rule = Conferr_lint.Rule
module Rule_file = Conferr_lint.Rule_file
module Checker = Conferr_lint.Checker
module Gap = Conferr_lint.Gap
module Absval = Conferr_lint.Absval
module Dataflow = Conferr_lint.Dataflow
module Refgraph = Conferr_lint.Refgraph
module Sarif = Conferr_lint.Sarif
module Df_rules = Suts.Dataflow_rules

let all_suts =
  [
    Suts.Mini_pg.sut;
    Suts.Mini_mysql.sut;
    Suts.Mini_apache.sut;
    Suts.Mini_bind.sut;
    Suts.Mini_djbdns.sut;
    Suts.Mini_appserver.sut;
  ]

let nearest = Conferr.Suggest.nearest

let stock_set (sut : Suts.Sut.t) =
  match Engine.parse_default_config sut with
  | Ok set -> set
  | Error msg -> Alcotest.failf "%s: %s" sut.sut_name msg

let deep_rules_of (sut : Suts.Sut.t) =
  match Suts.Lint_rules.for_sut sut.sut_name with
  | Some rules -> Df_rules.deepen sut.sut_name rules
  | None -> Alcotest.failf "no rule set for %s" sut.sut_name

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Substitute one directive's value in a stock text, line-oriented. *)
let set_value text name value =
  String.split_on_char '\n' text
  |> List.map (fun line ->
         let prefix = name ^ " = " in
         if
           String.length line >= String.length prefix
           && String.sub line 0 (String.length prefix) = prefix
         then prefix ^ value
         else line)
  |> String.concat "\n"

let pg_with assignments =
  let sut = Suts.Mini_pg.sut in
  let text =
    List.fold_left
      (fun t (n, v) -> set_value t n v)
      (List.assoc "postgresql.conf" sut.default_config)
      assignments
  in
  match Engine.parse_config sut [ ("postgresql.conf", text) ] with
  | Ok set -> set
  | Error msg -> Alcotest.failf "pg parse: %s" msg

(* 1. Zero findings on every stock configuration set. *)
let test_stock_clean () =
  List.iter
    (fun (sut : Suts.Sut.t) ->
      let findings =
        Checker.run ~nearest ~rules:(deep_rules_of sut) (stock_set sut)
      in
      Alcotest.(check int)
        (sut.sut_name ^ " stock analyzes clean")
        0 (List.length findings))
    all_suts

(* 2. Soundness on stock: every binding's abstract value contains the
   concrete value the SUT runs with, and none is tainted. *)
let test_stock_soundness () =
  List.iter
    (fun (sut : Suts.Sut.t) ->
      let env =
        Dataflow.env_of_set
          ~specs:(Df_rules.specs sut.sut_name)
          ~canon:(Df_rules.canon sut.sut_name)
          (stock_set sut)
      in
      List.iter
        (fun (b : Dataflow.binding) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s abstract value contains %S" sut.sut_name
               b.b_name b.b_effective)
            true
            (Absval.contains_string b.b_abs b.b_effective);
          Alcotest.(check bool)
            (sut.sut_name ^ ": " ^ b.b_name ^ " untainted")
            true
            (b.b_taint = Dataflow.T_explicit))
        env)
    all_suts

(* 3. QCheck: for random in-range pairs, PG-REL-FSM fires exactly when
   the relation is violated — no false positives on valid pairs. *)
let prop_fsm_relation =
  QCheck2.Test.make ~count:100
    ~name:"dataflow: PG-REL-FSM fires iff max_fsm_pages < 16 * relations"
    QCheck2.Gen.(pair (int_range 1000 200000) (int_range 100 12500))
    (fun (pages, relations) ->
      let set =
        pg_with
          [
            ("max_fsm_pages", string_of_int pages);
            ("max_fsm_relations", string_of_int relations);
          ]
      in
      let findings =
        Checker.run ~nearest ~rules:(deep_rules_of Suts.Mini_pg.sut) set
      in
      let fired =
        List.exists (fun f -> f.Finding.rule_id = "PG-REL-FSM") findings
      in
      fired = (pages < 16 * relations))

(* 4. QCheck soundness: random in-range pg values keep the lattice
   sound — the abstract value of each binding contains the effective
   value and explicit in-range values are never tainted. *)
let prop_pg_soundness =
  QCheck2.Test.make ~count:100
    ~name:"dataflow: abstract env stays sound on random in-range pg values"
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 100 10000))
    (fun (conns, relations) ->
      let set =
        pg_with
          [
            ("max_connections", string_of_int conns);
            ("max_fsm_relations", string_of_int relations);
          ]
      in
      let env =
        Dataflow.env_of_set ~specs:(Df_rules.specs "postgres")
          ~canon:(Df_rules.canon "postgres") set
      in
      env <> []
      && List.for_all
           (fun (b : Dataflow.binding) ->
             Absval.contains_string b.b_abs b.b_effective)
           env)

(* 5. The paper's cross-parameter fault: both values individually in
   range, mutually inconsistent.  The strongest *serializable* rule the
   mined format could previously express — implies-present over the
   pair — misses it (both directives are present), while the relation
   rule reports it with BOTH ConfPaths. *)
let cross_fault_set () =
  pg_with
    [ ("max_fsm_pages", "1500"); ("max_fsm_relations", "20000") ]

let test_cross_fault_static () =
  let set = cross_fault_set () in
  let mined_rule =
    Rule_file.to_rule
      {
        Rule_file.id = "M-CROSS";
        severity = Finding.Warning;
        doc = "configured (and failing) together";
        claim = Rule.Agreement;
        body =
          Rule_file.F_implies_present
            {
              file = Some "postgresql.conf";
              section = None;
              names = [ "max_fsm_pages"; "max_fsm_relations" ];
            };
      }
  in
  Alcotest.(check int) "the pre-relation mined rule misses the cross fault" 0
    (List.length (Checker.run ~nearest ~rules:[ mined_rule ] set));
  let deep = Checker.run ~nearest ~rules:(deep_rules_of Suts.Mini_pg.sut) set in
  match List.filter (fun f -> f.Finding.rule_id = "PG-REL-FSM") deep with
  | [ f ] ->
    Alcotest.(check string) "anchored at max_fsm_pages" "/max_fsm_pages"
      f.Finding.address;
    Alcotest.(check (list (pair string string)))
      "related carries the second ConfPath"
      [ ("postgresql.conf", "/max_fsm_relations") ]
      f.Finding.related;
    Alcotest.(check bool) "message names the relation" true
      (contains ~needle:"max_fsm_pages >= 16 * max_fsm_relations"
         f.Finding.message)
  | fs -> Alcotest.failf "expected one PG-REL-FSM finding, got %d" (List.length fs)

(* 6. Determinism: a per-rule parallel shard merged with the standard
   comparator equals the sequential run, byte for byte. *)
let test_jobs_byte_identical () =
  let set = cross_fault_set () in
  let rules = deep_rules_of Suts.Mini_pg.sut in
  let file_order = [ "postgresql.conf" ] in
  let seq =
    List.sort_uniq
      (Finding.compare ~file_order)
      (Checker.run ~nearest ~rules set)
  in
  let par =
    Conferr_pool.map ~jobs:4
      (fun _ rule -> Checker.run ~nearest ~rules:[ rule ] set)
      (Array.of_list rules)
    |> Array.to_list |> List.concat
    |> List.sort_uniq (Finding.compare ~file_order)
  in
  Alcotest.(check string)
    "jobs 1 and jobs 4 render byte-identically"
    (Checker.render_text seq) (Checker.render_text par);
  Alcotest.(check string)
    "and serialize byte-identically"
    (Conferr_obsv.Json.to_string (Checker.to_json seq))
    (Conferr_obsv.Json.to_string (Checker.to_json par))

(* 7. prepare/run_prepared is the same analysis as run. *)
let test_prepared_equals_run () =
  let set = cross_fault_set () in
  let rules = deep_rules_of Suts.Mini_pg.sut in
  let direct = Checker.run ~nearest ~rules set in
  let prepared = Checker.prepare ~nearest rules in
  Alcotest.(check int) "same findings through the prepared checker"
    (List.length direct)
    (List.length (Checker.run_prepared prepared set));
  List.iter2
    (fun (a : Finding.t) (b : Finding.t) ->
      Alcotest.(check string) "same rendering" (Finding.to_text a)
        (Finding.to_text b))
    direct
    (Checker.run_prepared prepared set)

(* 8. Relation rules round-trip through the rule-file format, and the
   compiled rule actually checks. *)
let relation_spec =
  {
    Rule_file.id = "T-REL";
    severity = Finding.Error;
    doc = "pages at least 16x relations";
    claim = Rule.Agreement;
    body =
      Rule_file.F_relation
        {
          file = Some "postgresql.conf";
          section = None;
          op = Rule.Rge;
          lhs =
            {
              Rule_file.fl_const = 0;
              fl_terms =
                [
                  {
                    Rule_file.ft_coeff = 1;
                    ft_name = "max_fsm_pages";
                    ft_unit = "count";
                    ft_default = 153600;
                  };
                ];
            };
          rhs =
            {
              Rule_file.fl_const = 0;
              fl_terms =
                [
                  {
                    Rule_file.ft_coeff = 16;
                    ft_name = "max_fsm_relations";
                    ft_unit = "count";
                    ft_default = 1000;
                  };
                ];
            };
          per_file = false;
        };
  }

let test_rule_file_roundtrip () =
  let text = Rule_file.save ~sut:"postgres" [ relation_spec ] in
  (match Rule_file.load text with
  | Error msg -> Alcotest.failf "reload failed: %s" msg
  | Ok [ spec ] ->
    Alcotest.(check bool) "round-trips structurally" true (spec = relation_spec)
  | Ok specs -> Alcotest.failf "expected 1 spec, got %d" (List.length specs));
  let rule = Rule_file.to_rule relation_spec in
  let findings = Checker.run ~nearest ~rules:[ rule ] (cross_fault_set ()) in
  (match findings with
  | [ f ] ->
    Alcotest.(check string) "compiled relation fires" "T-REL" f.Finding.rule_id;
    Alcotest.(check bool) "both sites reported" true (f.Finding.related <> [])
  | fs -> Alcotest.failf "expected 1 finding, got %d" (List.length fs));
  Alcotest.(check int) "compiled relation passes stock" 0
    (List.length
       (Checker.run ~nearest ~rules:[ rule ] (stock_set Suts.Mini_pg.sut)))

let test_rule_file_rejects_malformed () =
  let mk body_fields =
    Printf.sprintf
      {|{"conferr_rules":1,"rules":[{"id":"X","severity":"error","doc":"d","claim":"agreement","body":{"kind":"relation",%s}}]}|}
      body_fields
  in
  let term = {|{"coeff":1,"name":"a","unit":"count","default":0}|} in
  List.iter
    (fun (label, text) ->
      match Rule_file.load text with
      | Ok _ -> Alcotest.failf "%s: malformed relation accepted" label
      | Error _ -> ())
    [
      ( "unknown op",
        mk
          (Printf.sprintf
             {|"op":"~=","lhs":{"const":0,"terms":[%s]},"rhs":{"const":1,"terms":[]}|}
             term) );
      ( "unknown unit",
        mk
          {|"op":"<=","lhs":{"const":0,"terms":[{"coeff":1,"name":"a","unit":"furlongs","default":0}]},"rhs":{"const":1,"terms":[]}|} );
      ( "no terms on either side",
        mk {|"op":"<=","lhs":{"const":0,"terms":[]},"rhs":{"const":1,"terms":[]}|} );
    ]

(* 9. Silent-default taint: a mysql value the lenient parser masks is
   reported, and the environment carries the taint. *)
let test_mysql_taint () =
  let sut = Suts.Mini_mysql.sut in
  let text =
    set_value (List.assoc "my.cnf" sut.default_config) "sort_buffer_size"
      "banana"
  in
  let set =
    match Engine.parse_config sut [ ("my.cnf", text) ] with
    | Ok set -> set
    | Error msg -> Alcotest.failf "mysql parse: %s" msg
  in
  let env =
    Dataflow.env_of_set ~specs:(Df_rules.specs "mysql")
      ~canon:(Df_rules.canon "mysql") set
  in
  let tainted = Dataflow.tainted env in
  Alcotest.(check int) "exactly one tainted binding" 1 (List.length tainted);
  let b = List.hd tainted in
  Alcotest.(check string) "the masked directive" "sort_buffer_size" b.Dataflow.b_name;
  let findings = Checker.run ~nearest ~rules:(deep_rules_of sut) set in
  Alcotest.(check bool) "MY-TAINT reported" true
    (List.exists
       (fun f ->
         f.Finding.rule_id = "MY-TAINT"
         && contains ~needle:"silently replaced" f.Finding.message)
       findings)

(* 10. classify_deep: a gap-claiming finding turns a silent acceptance
   into an agreement; everything else is unchanged. *)
let test_classify_deep () =
  Alcotest.(check string) "predicted silent acceptance reclassifies"
    (Gap.kind_label Gap.Agree_detected)
    (Gap.kind_label
       (Gap.classify_deep ~static:(Gap.Flagged Finding.Warning)
          ~gap_claimed:true ~outcome_label:"ignored"));
  Alcotest.(check string) "unpredicted silent acceptance stays"
    (Gap.kind_label Gap.Silent_acceptance)
    (Gap.kind_label
       (Gap.classify_deep ~static:(Gap.Flagged Finding.Warning)
          ~gap_claimed:false ~outcome_label:"ignored"));
  Alcotest.(check string) "non-gap rows are untouched"
    (Gap.kind_label
       (Gap.classify ~static:(Gap.Flagged Finding.Error)
          ~outcome_label:"startup"))
    (Gap.kind_label
       (Gap.classify_deep ~static:(Gap.Flagged Finding.Error)
          ~gap_claimed:true ~outcome_label:"startup"))

(* 11. Reference graph: dangling targets and canonicalized cycles. *)
let test_refgraph () =
  let set =
    Conftree.Config_set.of_list
      [
        ("a.conf", Conftree.Node.root []);
        ("b.conf", Conftree.Node.root []);
        ("c.conf", Conftree.Node.root []);
      ]
  in
  let e file target =
    { Refgraph.e_file = file; e_path = []; e_what = "include"; e_target = target }
  in
  let g =
    Refgraph.build set
      [ e "a.conf" "b.conf"; e "b.conf" "c.conf"; e "c.conf" "a.conf";
        e "a.conf" "missing.conf" ]
  in
  Alcotest.(check int) "one dangling edge" 1 (List.length (Refgraph.dangling g));
  Alcotest.(check int) "one cycle" 1 (List.length (Refgraph.cycles g));
  (match Refgraph.cycles g with
  | [ (first :: _ as cycle) ] ->
    Alcotest.(check string) "rotated to the smallest member" "a.conf" first;
    Alcotest.(check (list string)) "all members present"
      [ "a.conf"; "b.conf"; "c.conf" ]
      (List.sort compare cycle)
  | cs -> Alcotest.failf "unexpected cycles: %d" (List.length cs));
  (* rotation-invariant: same canonical cycle whatever edge order *)
  let g' =
    Refgraph.build set
      [ e "c.conf" "a.conf"; e "a.conf" "b.conf"; e "b.conf" "c.conf" ]
  in
  Alcotest.(check (list (list string))) "canonical under reordering"
    (Refgraph.cycles g) (Refgraph.cycles g');
  Alcotest.(check string) "summary" "reference graph: 3 file(s), 4 edge(s), 1 dangling, 1 cycle(s)"
    (Refgraph.summarize g)

(* 12. SARIF: schema-tagged 2.1.0 with the relation's related location. *)
let test_sarif () =
  let findings =
    Checker.run ~nearest
      ~rules:(deep_rules_of Suts.Mini_pg.sut)
      (cross_fault_set ())
  in
  let sarif = Sarif.render findings in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains ~needle sarif))
    [
      {|"version":"2.1.0"|};
      "sarif-2.1.0";
      {|"ruleId":"PG-REL-FSM"|};
      "relatedLocations";
      "/max_fsm_relations";
    ];
  Alcotest.(check string) "empty findings still render a run"
    sarif (Sarif.render findings);
  Alcotest.(check bool) "clean render has no results" true
    (contains ~needle:{|"results":[]|} (Sarif.render []))

(* 13. The deepened apache profile catches cross-file shadowing. *)
let test_apache_shadowing () =
  let sut = Suts.Mini_apache.sut in
  let extra = List.assoc "ssl.conf" sut.default_config ^ "\nTimeout 10\n" in
  let files =
    List.map
      (fun (n, t) -> if n = "ssl.conf" then (n, extra) else (n, t))
      sut.default_config
  in
  let set =
    match Engine.parse_config sut files with
    | Ok set -> set
    | Error msg -> Alcotest.failf "apache parse: %s" msg
  in
  let findings = Checker.run ~nearest ~rules:(deep_rules_of sut) set in
  Alcotest.(check bool) "AP-XFILE flags the shadowed site" true
    (List.exists
       (fun f ->
         f.Finding.rule_id = "AP-XFILE"
         && contains ~needle:"shadowed" f.Finding.message)
       findings)

let suite =
  [
    Alcotest.test_case "stock sets analyze clean" `Quick test_stock_clean;
    Alcotest.test_case "stock abstract env is sound and untainted" `Quick
      test_stock_soundness;
    QCheck_alcotest.to_alcotest prop_fsm_relation;
    QCheck_alcotest.to_alcotest prop_pg_soundness;
    Alcotest.test_case "pg cross fault caught statically with both paths"
      `Quick test_cross_fault_static;
    Alcotest.test_case "per-rule sharding is byte-identical" `Quick
      test_jobs_byte_identical;
    Alcotest.test_case "prepared checker equals run" `Quick
      test_prepared_equals_run;
    Alcotest.test_case "relation rules round-trip the rule file" `Quick
      test_rule_file_roundtrip;
    Alcotest.test_case "malformed relation JSON is rejected" `Quick
      test_rule_file_rejects_malformed;
    Alcotest.test_case "mysql silent-default taint" `Quick test_mysql_taint;
    Alcotest.test_case "claim-aware gap classification" `Quick
      test_classify_deep;
    Alcotest.test_case "reference graph cycles and dangling" `Quick
      test_refgraph;
    Alcotest.test_case "sarif output" `Quick test_sarif;
    Alcotest.test_case "apache cross-file shadowing" `Quick
      test_apache_shadowing;
  ]
