(* Repair synthesis (ISSUE 9): from detection to fix.  The acceptance
   bar: on the paper faultloads `conferr repair` fixes the majority of
   injected errors back to a lint-clean, SUT-accepted configuration
   (most of them byte-equal to stock), at least one repair is a
   multi-edit candidate driven by a Conferr_infer.Cooccur cluster, and
   every rendering is byte-identical for any jobs count.  Plus unit
   coverage of the edit algebra (order-independent application), the
   reverse typo generator, and a qcheck property that an applied repair
   always lints clean and never edits an untouched ConfPath. *)

module Engine = Conferr.Engine
module Checker = Conferr_lint.Checker
module Finding = Conferr_lint.Finding
module Pipeline = Conferr_repair.Pipeline
module Generate = Conferr_repair.Generate
module Redit = Conferr_repair.Redit
module Validate = Conferr_repair.Validate
module Repair_report = Conferr_repair.Repair_report
module Edit = Conferr_infer.Edit
module Node = Conftree.Node
module Config_set = Conftree.Config_set

let nearest = Conferr.Suggest.nearest

let rules_of (sut : Suts.Sut.t) =
  match Suts.Lint_rules.for_sut sut.sut_name with
  | Some rules -> rules
  | None -> Alcotest.failf "no rule set for %s" sut.sut_name

let base_of (sut : Suts.Sut.t) =
  match Engine.parse_default_config sut with
  | Ok b -> b
  | Error m -> Alcotest.failf "%s: %s" sut.sut_name m

let parse_pg text =
  match
    Engine.parse_config Suts.Mini_pg.sut [ ("postgresql.conf", text) ]
  with
  | Ok set -> set
  | Error m -> Alcotest.failf "parse_pg: %s" m

let pg_stock = lazy (base_of Suts.Mini_pg.sut)

let repair_one ?specs sut broken =
  Pipeline.run ?specs ~nearest ~sut ~rules:(rules_of sut)
    ~stock:(base_of sut)
    [ Pipeline.file_target ~id:"t" broken ]

let the_repair (result : Pipeline.result) =
  match result.repairs with
  | [ r ] -> r
  | rs -> Alcotest.failf "expected 1 repair, got %d" (List.length rs)

(* ---------------- edit algebra ---------------- *)

let test_apply_order_independent () =
  let stock = Lazy.force pg_stock in
  let tree =
    match Config_set.find stock "postgresql.conf" with
    | Some t -> t
    | None -> Alcotest.fail "no postgresql.conf in stock"
  in
  let inserted =
    match Node.get tree [ 1 ] with
    | Some n -> n
    | None -> Alcotest.fail "no node at /1"
  in
  let edits =
    [
      { Redit.file = "postgresql.conf"; path = [ 1 ]; op = Redit.Delete };
      {
        Redit.file = "postgresql.conf";
        path = [];
        op = Redit.Insert { index = 5; node = inserted };
      };
      {
        Redit.file = "postgresql.conf";
        path = [ 3 ];
        op = Redit.Set_value (Some "42");
      };
    ]
  in
  let applied order =
    match Redit.apply stock order with
    | Ok set -> set
    | Error m -> Alcotest.failf "apply: %s" m
  in
  let a = applied edits and b = applied (List.rev edits) in
  Alcotest.(check bool)
    "application result is independent of edit list order" true
    (Config_set.equal a b);
  (* the insert lands at original index 5; the delete at /1 then shifts
     everything after it down one slot, leaving the copy at /4 *)
  let tree' =
    match Config_set.find a "postgresql.conf" with
    | Some t -> t
    | None -> Alcotest.fail "no postgresql.conf after apply"
  in
  Alcotest.(check (option string))
    "node moved to slot 4"
    (Some inserted.Node.name)
    (Option.map (fun n -> n.Node.name) (Node.get tree' [ 4 ]))

let test_restore_file_covers_missing_file () =
  let stock = Lazy.force pg_stock in
  let tree =
    match Config_set.find stock "postgresql.conf" with
    | Some t -> t
    | None -> Alcotest.fail "no postgresql.conf in stock"
  in
  let edit =
    { Redit.file = "postgresql.conf"; path = []; op = Redit.Restore_file tree }
  in
  match Redit.apply Config_set.empty [ edit ] with
  | Error m -> Alcotest.failf "restore into empty set: %s" m
  | Ok set ->
    Alcotest.(check bool)
      "whole-file restore recreates the file in an empty set" true
      (Config_set.equal set
         (Config_set.add Config_set.empty "postgresql.conf" tree))

let test_restore_file_ranks_last () =
  let stock = Lazy.force pg_stock in
  let tree =
    match Config_set.find stock "postgresql.conf" with
    | Some t -> t
    | None -> Alcotest.fail "no postgresql.conf"
  in
  let restore =
    { Redit.file = "postgresql.conf"; path = []; op = Redit.Restore_file tree }
  in
  let rename =
    { Redit.file = "postgresql.conf"; path = [ 1 ]; op = Redit.Rename "x" }
  in
  Alcotest.(check bool)
    "whole-file restoration costs more than a targeted rename" true
    (Redit.cost ~broken:stock restore > Redit.cost ~broken:stock rename)

(* ---------------- reverse typo generation ---------------- *)

let test_typo_corrections () =
  let vocabulary =
    [ "max_connections"; "shared_buffers"; "datestyle"; "listen_addresses" ]
  in
  (match Errgen.Typo.corrections ~vocabulary "max_connektions" with
  | (best, d) :: _ ->
    Alcotest.(check string) "nearest vocabulary word first" "max_connections" best;
    Alcotest.(check int) "at damerau distance 1" 1 d
  | [] -> Alcotest.fail "no corrections for max_connektions");
  Alcotest.(check bool)
    "a vocabulary word is never its own correction" true
    (Errgen.Typo.corrections ~vocabulary "datestyle"
    |> List.for_all (fun (w, _) -> w <> "datestyle"))

(* ---------------- file-mode repairs ---------------- *)

let broken_typo =
  String.concat "\n"
    [
      "# PostgreSQL configuration file";
      "max_connektions = 100";
      "shared_buffers = 24MB";
      "max_fsm_pages = 153600";
      "max_fsm_relations = 1000";
      "datestyle = 'iso, mdy'";
      "lc_messages = 'en_US.UTF-8'";
      "log_timezone = 'UTC'";
      "listen_addresses = 'localhost'";
      "";
    ]

let test_pg_typo_repaired () =
  let r = the_repair (repair_one Suts.Mini_pg.sut (parse_pg broken_typo)) in
  Alcotest.(check string) "status" "repaired" (Pipeline.status_label r.r_status);
  Alcotest.(check bool) "repaired back to stock" true r.r_matches_stock;
  match r.r_chosen with
  | None -> Alcotest.fail "no chosen verdict"
  | Some v ->
    Alcotest.(check int) "a single character was transposed away" 1
      v.Validate.distance;
    Alcotest.(check int) "one edit" 1
      (List.length v.Validate.candidate.Generate.edits)

(* Both values are individually in range, but max_fsm_pages must be at
   least 16 * max_fsm_relations (rule PG-CROSS): restoring either
   directive alone still violates the constraint, so the only minimal
   repair is the two-edit candidate grouped by the co-occurrence
   cluster mined from the failure message. *)
let broken_cross =
  String.concat "\n"
    [
      "# PostgreSQL configuration file";
      "max_connections = 100";
      "shared_buffers = 24MB";
      "max_fsm_pages = 1500";
      "max_fsm_relations = 20000";
      "datestyle = 'iso, mdy'";
      "lc_messages = 'en_US.UTF-8'";
      "log_timezone = 'UTC'";
      "listen_addresses = 'localhost'";
      "";
    ]

let test_pg_cross_needs_cluster () =
  let r = the_repair (repair_one Suts.Mini_pg.sut (parse_pg broken_cross)) in
  Alcotest.(check string) "status" "repaired" (Pipeline.status_label r.r_status);
  Alcotest.(check bool) "repaired back to stock" true r.r_matches_stock;
  match r.r_chosen with
  | None -> Alcotest.fail "no chosen verdict"
  | Some v ->
    Alcotest.(check (list string))
      "driven by the mined co-occurrence cluster"
      [ "max_fsm_pages"; "max_fsm_relations" ]
      (List.sort compare v.Validate.candidate.Generate.cluster);
    Alcotest.(check int) "a multi-edit repair" 2
      (List.length v.Validate.candidate.Generate.edits)

(* ---------------- journal-mode acceptance ---------------- *)

let silent (_ : Conferr_exec.Progress.event) = ()

(* Run the campaign once through the real executor + journal codec over
   the shared faultload regenerator — exactly what `conferr repair
   --journal` replays. *)
let campaign (sut : Suts.Sut.t) =
  lazy
    (let base = base_of sut in
     let scenarios = Conferr.Faultload.journal_scenarios ~seed:42 sut base in
     let path = Filename.temp_file "conferr_repair_test" ".jsonl" in
     Fun.protect
       ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
       (fun () ->
         let settings =
           {
             Conferr_exec.Executor.default_settings with
             journal_path = Some path;
           }
         in
         let _ =
           Conferr_exec.Executor.run_from ~settings ~on_event:silent ~sut
             ~base ~scenarios ()
         in
         (base, scenarios, Conferr_exec.Journal.load path)))

let pg_campaign = campaign Suts.Mini_pg.sut
let bind_campaign = campaign Suts.Mini_bind.sut

let repair_journal ?(jobs = 1) ?ids sut (stock, scenarios, entries) =
  Pipeline.run ~jobs ~nearest ~sut ~rules:(rules_of sut) ~stock
    (Pipeline.journal_targets ?ids ~scenarios ~stock entries)

let test_pg_journal_acceptance () =
  let result = repair_journal ~jobs:4 Suts.Mini_pg.sut (Lazy.force pg_campaign) in
  let repaired, clean, unrepaired, skipped = Pipeline.counts result in
  Alcotest.(check int) "every scenario regenerated" 0 skipped;
  Alcotest.(check int) "pg: no unrepairable faults" 0 unrepaired;
  Alcotest.(check bool) "pg: majority of injected errors repaired" true
    (Pipeline.majority_repaired result);
  Alcotest.(check bool)
    (Printf.sprintf "pg: more repaired (%d) than merely harmless (%d)"
       repaired clean)
    true (repaired > clean);
  (* most repairs restore the stock text exactly, not just any accepted
     configuration *)
  let back_to_stock =
    List.length
      (List.filter
         (fun (r : Pipeline.repair) ->
           r.r_status = Pipeline.Repaired && r.r_matches_stock)
         result.repairs)
  in
  Alcotest.(check bool)
    (Printf.sprintf "pg: majority of repairs are byte-equal to stock (%d/%d)"
       back_to_stock repaired)
    true
    (2 * back_to_stock > repaired)

let test_bind_journal_acceptance () =
  let result =
    repair_journal ~jobs:4 Suts.Mini_bind.sut (Lazy.force bind_campaign)
  in
  let _, _, _, skipped = Pipeline.counts result in
  Alcotest.(check int) "every scenario regenerated" 0 skipped;
  Alcotest.(check bool) "bind: majority of injected errors repaired" true
    (Pipeline.majority_repaired result)

let test_deterministic_across_jobs () =
  let c = Lazy.force pg_campaign in
  let ids = [ "typo-0001"; "typo-0002"; "typo-0003"; "typo-0010" ] in
  let r1 = repair_journal ~jobs:1 ~ids Suts.Mini_pg.sut c in
  let r4 = repair_journal ~jobs:4 ~ids Suts.Mini_pg.sut c in
  Alcotest.(check string) "render byte-identical for jobs 1 vs 4"
    (Repair_report.render r1) (Repair_report.render r4);
  Alcotest.(check string) "json byte-identical for jobs 1 vs 4"
    (Conferr_obsv.Json.to_string (Repair_report.to_json r1))
    (Conferr_obsv.Json.to_string (Repair_report.to_json r4))

(* ---------------- property: repairs are surgical ---------------- *)

(* Applying a chosen repair must (a) leave the configuration lint-clean
   and (b) change nothing outside the declared edit sites: the diff
   between the broken and repaired sets may only mention directives an
   edit explicitly targeted. *)
let touched_names ~broken (edits : Redit.t list) =
  List.fold_left
    (fun (files, names) (e : Redit.t) ->
      let name_at path =
        match Config_set.find broken e.file with
        | None -> []
        | Some tree ->
          (match Node.get tree path with
          | Some n -> [ String.lowercase_ascii n.Node.name ]
          | None -> [])
      in
      match e.op with
      | Redit.Restore_file _ -> (e.file :: files, names)
      | Redit.Insert { node; _ } ->
        (files, String.lowercase_ascii node.Node.name :: names)
      | Redit.Rename to_ ->
        (files, (String.lowercase_ascii to_ :: name_at e.path) @ names)
      | Redit.Set_value _ | Redit.Delete -> (files, name_at e.path @ names))
    ([], []) edits

let prop_repair_is_surgical =
  QCheck2.Test.make ~count:25
    ~name:"repair: applied repair lints clean, touches only declared sites"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun salt ->
      let sut = Suts.Mini_pg.sut in
      let stock = Lazy.force pg_stock in
      let scenarios = Conferr.Faultload.journal_scenarios ~seed:42 sut stock in
      let scenario = List.nth scenarios (salt mod List.length scenarios) in
      match scenario.Errgen.Scenario.apply stock with
      | Error _ -> true
      | Ok broken ->
        let r = the_repair (repair_one sut broken) in
        (match r.Pipeline.r_chosen with
        | None -> true
        | Some v ->
          let repaired =
            match v.Validate.repaired with
            | Some set -> set
            | None -> QCheck2.Test.fail_report "chosen verdict has no set"
          in
          let clean =
            not
              (Checker.exceeds ~threshold:Finding.Warning
                 (Checker.run ~nearest ~rules:(rules_of sut) repaired))
          in
          if not clean then
            QCheck2.Test.fail_reportf "%s: repaired set still has findings"
              scenario.Errgen.Scenario.id;
          let files, names =
            touched_names ~broken v.Validate.candidate.Generate.edits
          in
          Edit.diff ~base:broken ~mutated:repaired
          |> List.for_all (fun (d : Edit.t) ->
                 List.mem d.Edit.file files
                 || List.mem (String.lowercase_ascii d.Edit.name) names
                 ||
                 (QCheck2.Test.fail_reportf
                    "%s: collateral edit to %s '%s' (declared: %s)"
                    scenario.Errgen.Scenario.id d.Edit.file d.Edit.name
                    (String.concat ", " names)
                  : bool))))

(* ---------------- shared faultload regenerator ---------------- *)

(* The extracted Conferr.Faultload.journal_scenarios must derive exactly
   what gaps/infer derived inline before: the paper typo faultload at
   the seed, plus the relabelled RFC 1912 semantic scenarios for the
   DNS SUTs (and only for them). *)
let test_faultload_matches_inline_derivation () =
  let check sut expected_semantic =
    let base = base_of sut in
    let typo =
      Conferr.Campaign.typo_scenarios
        ~rng:(Conferr_util.Rng.create 42)
        ~faultload:Conferr.Campaign.paper_faultload sut base
    in
    let regenerated = Conferr.Faultload.journal_scenarios ~seed:42 sut base in
    let ids l = List.map (fun (s : Errgen.Scenario.t) -> s.id) l in
    let semantic =
      List.filteri (fun i _ -> i >= List.length typo) regenerated
    in
    Alcotest.(check (list string))
      (sut.Suts.Sut.sut_name ^ ": typo prefix matches the campaign derivation")
      (ids typo)
      (List.filteri (fun i _ -> i < List.length typo) regenerated |> ids);
    Alcotest.(check bool)
      (sut.Suts.Sut.sut_name ^ ": semantic suffix present iff a DNS SUT")
      expected_semantic (semantic <> []);
    List.iter
      (fun id ->
        Alcotest.(check bool)
          (id ^ " relabelled like `conferr semantic`")
          true
          (String.length id >= 9 && String.sub id 0 9 = "semantic-"))
      (ids semantic)
  in
  check Suts.Mini_pg.sut false;
  check Suts.Mini_bind.sut true;
  check Suts.Mini_djbdns.sut true

let suite =
  [
    Alcotest.test_case "redit: apply order-independent" `Quick
      test_apply_order_independent;
    Alcotest.test_case "redit: restore covers missing file" `Quick
      test_restore_file_covers_missing_file;
    Alcotest.test_case "redit: whole-file restore ranks last" `Quick
      test_restore_file_ranks_last;
    Alcotest.test_case "typo: reverse corrections" `Quick test_typo_corrections;
    Alcotest.test_case "pg file mode: typo repaired to stock" `Quick
      test_pg_typo_repaired;
    Alcotest.test_case "pg file mode: cross-parameter fault needs cluster"
      `Quick test_pg_cross_needs_cluster;
    Alcotest.test_case "pg journal: majority repaired" `Slow
      test_pg_journal_acceptance;
    Alcotest.test_case "bind journal: majority repaired" `Slow
      test_bind_journal_acceptance;
    Alcotest.test_case "deterministic across jobs" `Slow
      test_deterministic_across_jobs;
    Alcotest.test_case "faultload: shared regenerator" `Quick
      test_faultload_matches_inline_derivation;
    QCheck_alcotest.to_alcotest prop_repair_is_surgical;
  ]
