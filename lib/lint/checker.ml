module Node = Conftree.Node
module Config_set = Conftree.Config_set

type nearest = vocabulary:string list -> string -> (string * int) option

(* One traversal per file: every node with its path, the name of its
   innermost enclosing section (lowercased, "" at top level) and the
   path of that section (scope key for duplicate detection). *)
type site = {
  s_path : Conftree.Path.t;
  s_node : Node.t;
  s_section : string;
  s_scope : Conftree.Path.t;
}

let collect root =
  let acc = ref [] in
  let rec go path section scope (node : Node.t) =
    acc := { s_path = path; s_node = node; s_section = section; s_scope = scope } :: !acc;
    let section, scope =
      if node.kind = Node.kind_section then
        (String.lowercase_ascii node.name, path)
      else (section, scope)
    in
    List.iteri (fun i c -> go (path @ [ i ]) section scope c) node.children
  in
  go [] "" [] root;
  List.rev !acc

let target_ok (t : Rule.target) ~file ~section =
  (match t.in_file with None -> true | Some f -> f = file)
  && match t.in_section with None -> true | Some s -> s = section

let check_vtype ~name value = function
  | Rule.Int_range (lo, hi) -> (
    match int_of_string_opt (String.trim value) with
    | Some n when n >= lo && n <= hi -> None
    | Some n ->
      Some
        (Printf.sprintf "value %d of '%s' is outside the valid range [%d, %d]"
           n name lo hi)
    | None ->
      Some
        (Printf.sprintf "value '%s' of '%s' is not an integer (expected %d..%d)"
           value name lo hi))
  | Rule.Bool_word ->
    let v = String.lowercase_ascii (String.trim value) in
    if List.mem v [ "on"; "off"; "true"; "false"; "yes"; "no"; "1"; "0" ] then
      None
    else
      Some (Printf.sprintf "value '%s' of '%s' is not a boolean word" value name)
  | Rule.Enum { allowed; ci } ->
    let v = if ci then String.lowercase_ascii value else value in
    let mem =
      List.exists
        (fun a -> (if ci then String.lowercase_ascii a else a) = v)
        allowed
    in
    if mem then None
    else
      Some
        (Printf.sprintf "value '%s' of '%s' is not one of {%s}" value name
           (String.concat ", " allowed))
  | Rule.Custom { expect = _; check } -> check value

let file_sites set =
  List.map (fun (file, root) -> (file, root, collect root)) (Config_set.to_list set)

let finding_at ~rule ~file ~root ~path ?suggestion message =
  Finding.make ?suggestion ~rule_id:rule.Rule.id ~severity:rule.Rule.severity
    ~file ~root ~path message

let eval_rule ?nearest set sites (rule : Rule.t) =
  let out = ref [] in
  let emit f = out := f :: !out in
  (match rule.body with
  | Value { target; name; canon; vtype; missing } ->
    let want = canon name in
    List.iter
      (fun (file, root, nodes) ->
        List.iter
          (fun s ->
            if
              s.s_node.Node.kind = Node.kind_directive
              && canon s.s_node.name = want
              && target_ok target ~file ~section:s.s_section
            then
              match s.s_node.value with
              | None -> (
                match missing with
                | None -> ()
                | Some m ->
                  emit (finding_at ~rule ~file ~root ~path:s.s_path m))
              | Some v -> (
                match check_vtype ~name:s.s_node.name v vtype with
                | None -> ()
                | Some m ->
                  emit (finding_at ~rule ~file ~root ~path:s.s_path m)))
          nodes)
      sites
  | Required { target; file; name; canon } -> (
    let want = canon name in
    match List.find_opt (fun (f, _, _) -> f = file) sites with
    | None ->
      emit
        {
          Finding.rule_id = rule.id;
          severity = rule.severity;
          file;
          path = [];
          address = "/";
          message =
            Printf.sprintf "file '%s' is missing from the configuration set"
              file;
          suggestion = None;
          related = [];
        }
    | Some (_, root, nodes) ->
      let present =
        List.exists
          (fun s ->
            s.s_node.Node.kind = Node.kind_directive
            && canon s.s_node.name = want
            && target_ok target ~file ~section:s.s_section)
          nodes
      in
      if not present then
        emit
          (finding_at ~rule ~file ~root ~path:[]
             (Printf.sprintf
                "required directive '%s' is missing; the built-in default \
                 applies silently"
                name)))
  | No_duplicates { target; names; canon } ->
    let wanted =
      Option.map (fun l -> List.map canon l) names
    in
    List.iter
      (fun (file, root, nodes) ->
        (* group matched directives by (scope, canonical name) *)
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun s ->
            if
              s.s_node.Node.kind = Node.kind_directive
              && target_ok target ~file ~section:s.s_section
            then begin
              let cname = canon s.s_node.name in
              let matched =
                match wanted with None -> true | Some l -> List.mem cname l
              in
              if matched then begin
                let key = (s.s_scope, cname) in
                let prev = try Hashtbl.find tbl key with Not_found -> [] in
                Hashtbl.replace tbl key (s :: prev)
              end
            end)
          nodes;
        Hashtbl.iter
          (fun (_, cname) occs ->
            let occs = List.rev occs in
            let n = List.length occs in
            if n > 1 then
              List.iteri
                (fun i s ->
                  if i > 0 then
                    emit
                      (finding_at ~rule ~file ~root ~path:s.s_path
                         (Printf.sprintf
                            "duplicate directive '%s' in the same scope (%d \
                             occurrences); replicas are silently merged"
                            cname n)))
                occs)
          tbl)
      sites
  | Unknown { target; kind; known; vocabulary; what } ->
    List.iter
      (fun (file, root, nodes) ->
        List.iter
          (fun s ->
            if
              s.s_node.Node.kind = kind
              && target_ok target ~file ~section:s.s_section
              && not (known s.s_node.name)
            then begin
              let suggestion =
                match (nearest, vocabulary) with
                | Some f, _ :: _ -> (
                  match f ~vocabulary s.s_node.name with
                  | Some (cand, d) when d <= 3 -> Some cand
                  | _ -> None)
                | _ -> None
              in
              emit
                (finding_at ~rule ~file ~root ~path:s.s_path ?suggestion
                   (Printf.sprintf "unknown %s '%s'" what s.s_node.name))
            end)
          nodes)
      sites
  | Implies { target; anchor; check; canon } ->
    List.iter
      (fun (file, root, nodes) ->
        if match target.in_file with None -> true | Some f -> f = file then begin
          let matched =
            List.filter
              (fun s ->
                s.s_node.Node.kind = Node.kind_directive
                && target_ok target ~file ~section:s.s_section)
              nodes
          in
          if matched <> [] then begin
            let lookup name =
              let want = canon name in
              List.fold_left
                (fun acc s ->
                  if canon s.s_node.Node.name = want then
                    Some (Node.value_or ~default:"" s.s_node)
                  else acc)
                None matched
            in
            match check ~lookup with
            | None -> ()
            | Some msg ->
              let path =
                match anchor with
                | None -> []
                | Some a -> (
                  let want = canon a in
                  match
                    List.find_opt
                      (fun s -> canon s.s_node.Node.name = want)
                      matched
                  with
                  | Some s -> s.s_path
                  | None -> [])
              in
              emit (finding_at ~rule ~file ~root ~path msg)
          end
        end)
      sites
  | Reference { target; name; canon; what; exists } ->
    let want = canon name in
    List.iter
      (fun (file, root, nodes) ->
        List.iter
          (fun s ->
            if
              s.s_node.Node.kind = Node.kind_directive
              && canon s.s_node.name = want
              && target_ok target ~file ~section:s.s_section
            then
              match s.s_node.value with
              | None -> ()
              | Some v ->
                if not (exists v) then
                  emit
                    (finding_at ~rule ~file ~root ~path:s.s_path
                       (Printf.sprintf "dangling %s reference: '%s'" what v)))
          nodes)
      sites
  | Relation { target; canon; op; lhs; rhs; describe; per_file; harvest } ->
    (* Ordered bindings within the evaluation scope: directives in
       document order (files in set order), then harvested
       pseudo-directives per file; last occurrence of a name wins, the
       same resolution the SUT applies. *)
    let scope_bindings (file, root, nodes) =
      if match target.Rule.in_file with None -> true | Some f -> f = file
      then begin
        let directives =
          List.filter_map
            (fun s ->
              if
                s.s_node.Node.kind = Node.kind_directive
                && target_ok target ~file ~section:s.s_section
              then
                Some
                  ( canon s.s_node.Node.name,
                    (file, root, s.s_path, s.s_node.Node.value) )
              else None)
            nodes
        in
        let harvested =
          match harvest with
          | None -> []
          | Some h ->
            List.map
              (fun (name, path, v) -> (canon name, (file, root, path, Some v)))
              (h file root)
        in
        directives @ harvested
      end
      else []
    in
    let eval_scope bindings =
      if bindings <> [] then begin
        let lookup name =
          List.fold_left
            (fun acc (n, b) -> if n = name then Some b else acc)
            None bindings
        in
        (* The value that flows into the relation is the one the SUT
           would run with: the parsed written value, or the built-in
           default when the directive is absent, unreadable, or masked
           (silently rejected and defaulted). *)
        let resolve (t : Rule.term) =
          match lookup (canon t.t_name) with
          | None -> (t, None, t.t_default, true)
          | Some (bfile, broot, bpath, vopt) -> (
            let site = Some (bfile, broot, bpath) in
            match vopt with
            | None -> (t, site, t.t_default, true)
            | Some v ->
              if t.t_masked v then (t, site, t.t_default, true)
              else (
                match t.t_read v with
                | Some n -> (t, site, n, false)
                | None -> (t, site, t.t_default, true)))
        in
        let eval_linexp (e : Rule.linexp) =
          let rs = List.map resolve e.Rule.l_terms in
          let v =
            List.fold_left
              (fun acc ((t : Rule.term), _, v, _) -> acc + (t.Rule.t_coeff * v))
              e.Rule.l_const rs
          in
          (v, rs)
        in
        let lv, lres = eval_linexp lhs in
        let rv, rres = eval_linexp rhs in
        let resolved = lres @ rres in
        let any_bound = List.exists (fun (_, s, _, _) -> s <> None) resolved in
        if any_bound && not (Rule.rel_holds op lv rv) then begin
          let bound =
            List.filter_map
              (fun (t, s, v, d) ->
                match s with Some si -> Some (t, si, v, d) | None -> None)
              resolved
          in
          match bound with
          | [] -> ()
          | (_, (afile, aroot, apath), _, _) :: rest ->
            let related =
              List.map
                (fun (_, (f, r, p), _, _) -> (f, Finding.address_of_path r p))
                rest
            in
            let detail =
              String.concat ", "
                (List.map
                   (fun ((t : Rule.term), _, v, defaulted) ->
                     Printf.sprintf "%s = %d%s" t.Rule.t_name v
                       (if defaulted then " (default)" else ""))
                   resolved)
            in
            emit
              (Finding.make ~related ~rule_id:rule.Rule.id
                 ~severity:rule.Rule.severity ~file:afile ~root:aroot
                 ~path:apath
                 (Printf.sprintf "relation violated: %s (%s)" describe detail))
        end
      end
    in
    if per_file then List.iter (fun fr -> eval_scope (scope_bindings fr)) sites
    else eval_scope (List.concat_map scope_bindings sites)
  | Check_set f ->
    List.iter
      (fun (raw : Rule.raw) ->
        match Config_set.find set raw.raw_file with
        | Some root ->
          emit
            (finding_at ~rule ~file:raw.raw_file ~root ~path:raw.raw_path
               ?suggestion:raw.raw_suggestion raw.raw_message)
        | None ->
          emit
            {
              Finding.rule_id = rule.id;
              severity = rule.severity;
              file = raw.raw_file;
              path = raw.raw_path;
              address = "/";
              message = raw.raw_message;
              suggestion = raw.raw_suggestion;
              related = [];
            })
      (f set));
  List.rev !out

let run ?nearest ~rules set =
  let sites = file_sites set in
  let findings = List.concat_map (eval_rule ?nearest set sites) rules in
  let file_order = Config_set.names set in
  List.sort_uniq (Finding.compare ~file_order) findings

(* A rule set resolved once and reused across many configuration sets
   (the replay loop evaluates the same rules against every journal
   entry; [prepare] hoists the rule-list construction out of it). *)
type prepared = { p_nearest : nearest option; p_rules : Rule.t list }

let prepare ?nearest rules = { p_nearest = nearest; p_rules = rules }

let run_prepared p set =
  match p.p_nearest with
  | None -> run ~rules:p.p_rules set
  | Some nearest -> run ~nearest ~rules:p.p_rules set

let exceeds ~threshold findings =
  List.exists (fun f -> Finding.at_least ~threshold f.Finding.severity) findings

let summary findings =
  List.fold_left
    (fun (e, w, i) (f : Finding.t) ->
      match f.severity with
      | Finding.Error -> (e + 1, w, i)
      | Finding.Warning -> (e, w + 1, i)
      | Finding.Info -> (e, w, i + 1))
    (0, 0, 0) findings

let render_text findings =
  match findings with
  | [] -> "no findings\n"
  | _ ->
    let buf = Buffer.create 256 in
    List.iter
      (fun f ->
        Buffer.add_string buf (Finding.to_text f);
        Buffer.add_char buf '\n')
      findings;
    let e, w, i = summary findings in
    Buffer.add_string buf
      (Printf.sprintf "%d finding(s): %d error(s), %d warning(s), %d info\n"
         (List.length findings) e w i);
    Buffer.contents buf

let to_json findings =
  let open Conferr_obsv.Json in
  let e, w, i = summary findings in
  Obj
    [
      ("findings", Arr (List.map Finding.to_json findings));
      ("errors", Num (float_of_int e));
      ("warnings", Num (float_of_int w));
      ("info", Num (float_of_int i));
    ]
