type severity = Info | Warning | Error

let severity_label = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_of_label = function
  | "info" -> Some Info
  | "warning" -> Some Warning
  | "error" -> Some Error
  | _ -> None

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

let at_least ~threshold s = severity_rank s >= severity_rank threshold

type t = {
  rule_id : string;
  severity : severity;
  file : string;
  path : Conftree.Path.t;
  address : string;
  message : string;
  suggestion : string option;
  related : (string * string) list;
}

(* A node name usable verbatim as a ConfPath step: lexes as one IDENT
   (no leading digit, only name characters) and is not a keyword. *)
let step_name_ok name =
  name <> "" && name <> "and" && name <> "or"
  && (match name.[0] with '0' .. '9' -> false | _ -> true)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
         | _ -> false)
       name

let address_of_path root path =
  let buf = Buffer.create 32 in
  let rec walk (node : Conftree.Node.t) = function
    | [] -> ()
    | i :: rest ->
      let child = List.nth node.children i in
      (if step_name_ok child.name then begin
         (* positional predicate among same-named siblings, 1-based;
            omitted when the name is unique at this level *)
         let same =
           List.filter
             (fun (c : Conftree.Node.t) -> c.name = child.name)
             node.children
         in
         Buffer.add_char buf '/';
         Buffer.add_string buf child.name;
         if List.length same > 1 then begin
           let pos =
             let rec count k = function
               | [] -> k
               | (c : Conftree.Node.t) :: tl ->
                 if c == child then k + 1
                 else count (if c.name = child.name then k + 1 else k) tl
             in
             count 0 node.children
           in
           Buffer.add_string buf (Printf.sprintf "[%d]" pos)
         end
       end
       else Buffer.add_string buf (Printf.sprintf "/*[%d]" (i + 1)));
      walk child rest
  in
  walk root path;
  if Buffer.length buf = 0 then "/" else Buffer.contents buf

let make ?suggestion ?(related = []) ~rule_id ~severity ~file ~root ~path
    message =
  {
    rule_id;
    severity;
    file;
    path;
    address = address_of_path root path;
    message;
    suggestion;
    related;
  }

let compare ~file_order a b =
  let file_key f =
    let rec index i = function
      | [] -> None
      | x :: tl -> if x = f then Some i else index (i + 1) tl
    in
    match index 0 file_order with
    | Some i -> (i, "")
    | None -> (List.length file_order, f)
  in
  let c = Stdlib.compare (file_key a.file) (file_key b.file) in
  if c <> 0 then c
  else
    let c = Conftree.Path.compare a.path b.path in
    if c <> 0 then c
    else
      let c = String.compare a.rule_id b.rule_id in
      if c <> 0 then c else String.compare a.message b.message

let max_severity = function
  | [] -> None
  | findings ->
    Some
      (List.fold_left
         (fun acc f -> if severity_rank f.severity > severity_rank acc then f.severity else acc)
         Info findings)

let to_text f =
  let hint =
    match f.suggestion with
    | None -> ""
    | Some s -> Printf.sprintf " (did you mean '%s'?)" s
  in
  let rel =
    match f.related with
    | [] -> ""
    | sites ->
      Printf.sprintf " (with %s)"
        (String.concat ", "
           (List.map (fun (file, addr) -> file ^ ":" ^ addr) sites))
  in
  Printf.sprintf "%s:%s: %s: [%s] %s%s%s" f.file f.address
    (severity_label f.severity) f.rule_id f.message hint rel

let to_json f =
  let open Conferr_obsv.Json in
  let base =
    [
      ("rule", Str f.rule_id);
      ("severity", Str (severity_label f.severity));
      ("file", Str f.file);
      ("path", Str (Conftree.Path.to_string f.path));
      ("address", Str f.address);
      ("message", Str f.message);
    ]
  in
  let tail =
    match f.suggestion with None -> [] | Some s -> [ ("suggestion", Str s) ]
  in
  let rel =
    match f.related with
    | [] -> []
    | sites ->
      [
        ( "related",
          Arr
            (List.map
               (fun (file, addr) ->
                 Obj [ ("file", Str file); ("address", Str addr) ])
               sites) );
      ]
  in
  Obj (base @ tail @ rel)
