(** Validator-gap scan: replay a campaign journal through the static
    checker and diff the static verdict against each journaled dynamic
    outcome (doc/lint.md).

    Each journal entry is matched back to its generating scenario by id
    (the scenario's recorded provenance); the mutation is re-applied to
    the base configuration, serialized, re-parsed with the SUT's native
    formats — so the linter sees exactly the bytes the SUT saw — and
    linted.  Rows come back in journal order and the whole report is
    byte-identical for any [jobs] value. *)

module Journal = Conferr_exec.Journal
module Finding = Conferr_lint.Finding
module Gap = Conferr_lint.Gap
module Checker = Conferr_lint.Checker
module Rule = Conferr_lint.Rule

type row = {
  entry : Journal.entry;
  static : Gap.static_verdict;
  findings : Finding.t list;
  gap : Gap.kind;
}

type report = {
  sut_name : string;
  rows : row list;  (** journal order *)
  unmatched : string list;
      (** journal entry ids with no regenerated scenario, in order *)
}

let static_of ~checker ~sut ~base (sc : Errgen.Scenario.t) =
  match sc.apply base with
  | Error m -> (Gap.Inexpressible m, [])
  | Ok mutated -> (
    match Conferr.Engine.serialize_config sut mutated with
    | Error m -> (Gap.Inexpressible m, [])
    | Ok files -> (
      match Conferr.Engine.parse_config sut files with
      | Error m -> (Gap.Unparseable m, [])
      | Ok set ->
        let findings = Checker.run_prepared checker set in
        (Gap.verdict_of_findings findings, findings)))

let scan ?jobs ?nearest ?(deep = false) ~sut ~rules ~scenarios ~entries ~base
    () =
  let by_id = Hashtbl.create (List.length scenarios * 2) in
  List.iter
    (fun (sc : Errgen.Scenario.t) ->
      if not (Hashtbl.mem by_id sc.id) then Hashtbl.add by_id sc.id sc)
    scenarios;
  let rules =
    if deep then Suts.Dataflow_rules.deepen sut.Suts.Sut.sut_name rules
    else rules
  in
  (* The rule set and nearest oracle are resolved once here, not per
     journal entry: every worker lints against the same prepared
     checker. *)
  let checker = Checker.prepare ?nearest rules in
  (* claim of each rule id, for the deep (claim-aware) classification;
     rules sharing an id share a claim by construction *)
  let claim_of =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun (r : Rule.t) ->
        if not (Hashtbl.mem tbl r.Rule.id) then
          Hashtbl.add tbl r.Rule.id r.Rule.claim)
      rules;
    fun id -> Hashtbl.find_opt tbl id
  in
  let gap_claimed findings =
    List.exists
      (fun (f : Finding.t) ->
        Finding.at_least ~threshold:Finding.Warning f.severity
        && claim_of f.rule_id = Some Rule.Gap)
      findings
  in
  let arr = Array.of_list entries in
  let rows =
    Conferr_pool.map ?jobs
      (fun _ (entry : Journal.entry) ->
        let outcome_label = Conferr.Outcome.label entry.outcome in
        match Hashtbl.find_opt by_id entry.scenario_id with
        | None ->
          let static = Gap.Inexpressible "scenario not regenerated" in
          ( { entry; static; findings = []; gap = Gap.Not_comparable },
            true )
        | Some sc ->
          let static, findings = static_of ~checker ~sut ~base sc in
          let gap =
            if deep then
              Gap.classify_deep ~static ~gap_claimed:(gap_claimed findings)
                ~outcome_label
            else Gap.classify ~static ~outcome_label
          in
          ({ entry; static; findings; gap }, false))
      arr
  in
  let rows = Array.to_list rows in
  let unmatched =
    List.filter_map
      (fun (r, missing) ->
        if missing then Some r.entry.Journal.scenario_id else None)
      rows
  in
  { sut_name = sut.Suts.Sut.sut_name; rows = List.map fst rows; unmatched }

let count kind report =
  List.length (List.filter (fun r -> r.gap = kind) report.rows)

(* Distinct gap clusters for one kind: (fault class, rule id) pairs in
   first-appearance order, with occurrence count and one example.  The
   rule id is the first finding's (["syntax"] for unparseable mutants,
   ["-"] when the static side was clean). *)
type cluster = {
  c_class : string;
  c_rule : string;
  c_count : int;
  c_example_id : string;
  c_example : string;
}

let cluster_rule r =
  match r.static with
  | Gap.Unparseable _ -> "syntax"
  | _ -> (
    match r.findings with
    | f :: _ -> f.Finding.rule_id
    | [] -> "-")

let clusters kind report =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun r ->
      if r.gap = kind then begin
        let key = (r.entry.Journal.class_name, cluster_rule r) in
        match Hashtbl.find_opt tbl key with
        | Some c -> Hashtbl.replace tbl key { c with c_count = c.c_count + 1 }
        | None ->
          let example =
            match r.findings with
            | f :: _ -> f.Finding.message
            | [] -> (
              match r.static with
              | Gap.Unparseable m -> m
              | _ -> r.entry.Journal.description)
          in
          order := key :: !order;
          Hashtbl.add tbl key
            {
              c_class = fst key;
              c_rule = snd key;
              c_count = 1;
              c_example_id = r.entry.Journal.scenario_id;
              c_example = example;
            }
      end)
    report.rows;
  List.rev_map (fun key -> Hashtbl.find tbl key) !order

let gap_total report =
  List.length (List.filter (fun r -> Gap.is_gap r.gap) report.rows)

let render report =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "validator-gap scan: %s\n" report.sut_name;
  Printf.bprintf buf "journal entries: %d (unmatched: %d)\n\n"
    (List.length report.rows)
    (List.length report.unmatched);
  Buffer.add_string buf "gap kinds:\n";
  List.iter
    (fun kind ->
      Printf.bprintf buf "  %-18s %d\n" (Gap.kind_label kind)
        (count kind report))
    Gap.all_kinds;
  List.iter
    (fun kind ->
      let cs = clusters kind report in
      if cs <> [] then begin
        Printf.bprintf buf "\n%s clusters (%d distinct):\n"
          (Gap.kind_label kind) (List.length cs);
        List.iter
          (fun c ->
            Printf.bprintf buf "  %s x %s  %d  e.g. %s: %s\n" c.c_class
              c.c_rule c.c_count c.c_example_id c.c_example)
          cs
      end)
    [ Gap.Silent_acceptance; Gap.Late_failure; Gap.Over_strict ];
  Buffer.contents buf

let row_to_json r =
  let open Conferr_obsv.Json in
  Obj
    [
      ("id", Str r.entry.Journal.scenario_id);
      ("class", Str r.entry.Journal.class_name);
      ("static", Str (Gap.static_label r.static));
      ("outcome", Str (Conferr.Outcome.label r.entry.Journal.outcome));
      ("gap", Str (Gap.kind_label r.gap));
      ("findings", Arr (List.map Finding.to_json r.findings));
    ]

let cluster_to_json c =
  let open Conferr_obsv.Json in
  Obj
    [
      ("class", Str c.c_class);
      ("rule", Str c.c_rule);
      ("count", Num (float_of_int c.c_count));
      ("example_id", Str c.c_example_id);
      ("example", Str c.c_example);
    ]

let to_json report =
  let open Conferr_obsv.Json in
  Obj
    [
      ("sut", Str report.sut_name);
      ("entries", Num (float_of_int (List.length report.rows)));
      ("unmatched", Arr (List.map (fun id -> Str id) report.unmatched));
      ( "kinds",
        Obj
          (List.map
             (fun kind ->
               (Gap.kind_label kind, Num (float_of_int (count kind report))))
             Gap.all_kinds) );
      (* machine-readable mirror of the text report's cluster tables:
         one array per gap kind, first-appearance order *)
      ( "clusters",
        Obj
          (List.filter_map
             (fun kind ->
               match clusters kind report with
               | [] -> None
               | cs ->
                 Some (Gap.kind_label kind, Arr (List.map cluster_to_json cs)))
             [ Gap.Silent_acceptance; Gap.Late_failure; Gap.Over_strict ]) );
      ("rows", Arr (List.map row_to_json report.rows));
    ]

let record_metrics ?(dataflow_ids = []) metrics report =
  let module M = Conferr_obsv.Metrics in
  M.declare ~help:"Validator-gap rows by kind" metrics M.Counter
    "conferr_gap_total";
  M.declare ~help:"Static lint findings over replayed mutants by severity"
    metrics M.Counter "conferr_lint_findings_total";
  if dataflow_ids <> [] then
    M.declare ~help:"Corpus-level (dataflow) findings by rule" metrics
      M.Counter "conferr_dataflow_findings_total";
  List.iter
    (fun r ->
      M.inc
        ~labels:
          [ ("sut", report.sut_name); ("gap", Gap.kind_label r.gap) ]
        metrics "conferr_gap_total";
      List.iter
        (fun (f : Finding.t) ->
          M.inc
            ~labels:
              [
                ("severity", Finding.severity_label f.severity);
                ("sut", report.sut_name);
              ]
            metrics "conferr_lint_findings_total";
          if List.mem f.rule_id dataflow_ids then
            M.inc
              ~labels:[ ("rule", f.rule_id); ("sut", report.sut_name) ]
              metrics "conferr_dataflow_findings_total")
        r.findings)
    report.rows

let dashboard_rows report =
  List.filter_map
    (fun r ->
      if r.gap = Gap.Not_comparable then None
      else
        Some
          {
            Conferr_obsv.Report.gap_id = r.entry.Journal.scenario_id;
            gap_class = r.entry.Journal.class_name;
            gap_static = Gap.static_label r.static;
            gap_outcome = Conferr.Outcome.label r.entry.Journal.outcome;
            gap_kind = Gap.kind_label r.gap;
            gap_detail =
              (match r.findings with
              | f :: _ -> f.Finding.message
              | [] -> (
                match r.static with
                | Gap.Unparseable m -> m
                | _ -> ""));
          }
    )
    report.rows
