type shape = Sh_any | Sh_word | Sh_path | Sh_empty

type t =
  | Bot
  | Ival of int * int
  | Eset of string list
  | Bval of bool option
  | Sval of shape
  | Top

let bot = Bot
let top = Top

let ival lo hi = if lo > hi then Bot else Ival (lo, hi)
let point n = Ival (n, n)

let eset members =
  match List.sort_uniq compare (List.map String.lowercase_ascii members) with
  | [] -> Bot
  | ms -> Eset ms

let bval b = Bval (Some b)
let any_bool = Bval None

let shape_label = function
  | Sh_any -> "string"
  | Sh_word -> "word"
  | Sh_path -> "path"
  | Sh_empty -> "empty"

let classify_shape s =
  if s = "" then Sh_empty
  else if String.contains s '/' then Sh_path
  else if String.exists (fun c -> c = ' ' || c = '\t') s then Sh_any
  else Sh_word

let sval s = Sval (classify_shape s)

let shape_join a b =
  if a = b then a
  else
    match (a, b) with
    | Sh_empty, x | x, Sh_empty -> if x = Sh_empty then Sh_empty else Sh_any
    | _ -> Sh_any

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Top, _ | _, Top -> Top
  | Ival (l1, h1), Ival (l2, h2) -> Ival (min l1 l2, max h1 h2)
  | Eset m1, Eset m2 -> Eset (List.sort_uniq compare (m1 @ m2))
  | Bval b1, Bval b2 -> if b1 = b2 then Bval b1 else Bval None
  | Sval s1, Sval s2 -> Sval (shape_join s1 s2)
  | _ -> Top

let leq a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Top -> true
  | Top, _ -> false
  | _, Bot -> false
  | Ival (l1, h1), Ival (l2, h2) -> l2 <= l1 && h1 <= h2
  | Eset m1, Eset m2 -> List.for_all (fun m -> List.mem m m2) m1
  | Bval _, Bval None -> true
  | Bval b1, Bval b2 -> b1 = b2
  | Sval s1, Sval s2 -> s1 = s2 || s2 = Sh_any
  | _ -> false

let contains_int v n =
  match v with
  | Top -> true
  | Ival (lo, hi) -> lo <= n && n <= hi
  | _ -> false

let contains_string v s =
  match v with
  | Top -> true
  | Bot -> false
  | Ival _ -> ( match int_of_string_opt (String.trim s) with
    | Some n -> contains_int v n
    | None -> false)
  | Eset ms -> List.mem (String.lowercase_ascii s) ms
  | Bval None ->
    List.mem
      (String.lowercase_ascii s)
      [ "on"; "off"; "true"; "false"; "yes"; "no"; "1"; "0" ]
  | Bval (Some true) -> List.mem (String.lowercase_ascii s) [ "on"; "true"; "yes"; "1" ]
  | Bval (Some false) ->
    List.mem (String.lowercase_ascii s) [ "off"; "false"; "no"; "0" ]
  | Sval sh -> shape_join sh (classify_shape s) = sh

let to_string = function
  | Bot -> "bot"
  | Top -> "top"
  | Ival (lo, hi) -> if lo = hi then string_of_int lo else Printf.sprintf "[%d, %d]" lo hi
  | Eset ms -> "{" ^ String.concat ", " ms ^ "}"
  | Bval None -> "bool"
  | Bval (Some true) -> "true"
  | Bval (Some false) -> "false"
  | Sval sh -> shape_label sh
