(** Abstract interpretation over a whole configuration set.

    Maps every specified directive to an {!Absval.t} describing the
    value the SUT would actually run with — unit suffixes normalized,
    silently-defaulted (masked) values replaced by their built-in
    default — so relation checks and taint reports reason about
    effective values, not written text.  The substrate behind
    [conferr analyze] and [conferr lint --deep]. *)

(** {1 Unit-suffix parsers}

    Generic normalizing readers used by rule-file-compiled relation
    terms (SUT-native rule sets plug in their own parsers, e.g.
    [Mini_pg.parse_mem]). *)

val read_count : string -> int option
(** Plain decimal integer, no suffix. *)

val read_kb : string -> int option
(** Size normalized to kB; accepts [B/kB/MB/GB/TB] (case-insensitive),
    bare numbers are kB. *)

val read_ms : string -> int option
(** Duration normalized to ms; accepts [ms/s/min/h/d], bare numbers are
    ms. *)

val unit_labels : string list
(** [\["count"; "kb"; "ms"\]] — the unit classes {!read_of_unit}
    understands; also the vocabulary [Rule_file] serializes. *)

val read_of_unit : string -> string -> int option
(** [read_of_unit u] is {!read_kb} for ["kb"], {!read_ms} for ["ms"],
    {!read_count} otherwise. *)

(** {1 Directive value specifications} *)

type vkind =
  | Vnum of {
      n_read : string -> int option;
      n_lo : int;
      n_hi : int;
      n_default : int;
      n_lenient : bool;
          (** [true]: the SUT silently clamps/defaults bad values
              (the MySQL-class flaw) — masked sites become taint
              findings *)
    }
  | Venum of string list
  | Vbool
  | Vstring

type vspec = { v_name : string; v_kind : vkind }

val num :
  ?lenient:bool -> read:(string -> int option) -> lo:int -> hi:int ->
  default:int -> string -> vspec

val enum : string -> string list -> vspec
val boolean : string -> vspec
val str : string -> vspec

(** {1 Abstract environment} *)

(** Whether the abstract value reflects the written text ([T_explicit])
    or the built-in default that silently replaces it ([T_masked]:
    parse failure, out-of-range, or bare directive). *)
type taint = T_explicit | T_masked

type binding = {
  b_name : string;  (** canonicalized directive name *)
  b_file : string;
  b_path : Conftree.Path.t;
  b_written : string;  (** written value, [""] for bare directives *)
  b_abs : Absval.t;
  b_taint : taint;
  b_effective : string;
      (** rendering of the concrete value the SUT runs with; the
          soundness property checks [Absval.contains_string b_abs
          b_effective] *)
}

val env_of_set :
  specs:vspec list -> canon:(string -> string) -> Conftree.Config_set.t ->
  binding list
(** One binding per specified directive occurrence, in file order of
    the set then document order — deterministic. *)

val tainted : binding list -> binding list

val summarize : binding list -> string
(** ["dataflow: N directive(s) bound, M tainted"]. *)

(** {1 Silent-default taint rule} *)

val taint_rule :
  ?id:string -> ?severity:Finding.severity -> canon:(string -> string) ->
  specs:vspec list -> string -> Rule.t
(** [taint_rule ~canon ~specs doc] is a {!Rule.body.Check_set} rule
    flagging every site whose written value a lenient ([n_lenient])
    numeric spec would silently replace with its default.  [id]
    defaults to ["DF-TAINT"], [severity] to [Info]. *)
