(** Rule evaluation engine over configuration trees.

    Evaluates a {!Rule.t} list against a {!Conftree.Config_set.t} and
    returns deterministic, byte-stable diagnostics: findings are sorted
    by (file order in the set, document order, rule id, message) and
    rendered without any wall-clock or environment dependence, so two
    runs over the same input produce identical bytes. *)

type nearest = vocabulary:string list -> string -> (string * int) option
(** Nearest-name oracle for "did you mean" hints on unknown-name
    findings; wire {!Conferr.Suggest.nearest} here.  Injected rather
    than imported so [conferr_lint] stays below [lib/core] in the
    dependency order. *)

val run :
  ?nearest:nearest -> rules:Rule.t list -> Conftree.Config_set.t ->
  Finding.t list
(** Evaluate every rule; the result is sorted and duplicate-free.
    Suggestions are attached to {!Rule.Unknown} findings when the
    nearest vocabulary name is within edit distance 3. *)

type prepared
(** A rule set resolved once for evaluation against many configuration
    sets — the replay loop's per-entry lint verdicts reuse one
    [prepared] value instead of rebuilding the rule list per entry. *)

val prepare : ?nearest:nearest -> Rule.t list -> prepared

val run_prepared : prepared -> Conftree.Config_set.t -> Finding.t list
(** Identical findings to {!run} with the same rules and nearest oracle
    (asserted by [test_dataflow]). *)

val exceeds : threshold:Finding.severity -> Finding.t list -> bool
(** At least one finding at or above the threshold. *)

val summary : Finding.t list -> int * int * int
(** [(errors, warnings, info)] counts. *)

val render_text : Finding.t list -> string
(** One line per finding plus a trailing count line; ["no findings\n"]
    when the list is empty. *)

val to_json : Finding.t list -> Conferr_obsv.Json.t
(** [{"findings":[...],"errors":E,"warnings":W,"info":I}]. *)
