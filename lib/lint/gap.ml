type static_verdict =
  | Clean
  | Flagged of Finding.severity
  | Unparseable of string
  | Inexpressible of string

let verdict_of_findings findings =
  match Finding.max_severity findings with
  | Some sev when Finding.at_least ~threshold:Finding.Warning sev -> Flagged sev
  | _ -> Clean

let static_label = function
  | Clean -> "clean"
  | Flagged sev -> Finding.severity_label sev
  | Unparseable _ -> "syntax"
  | Inexpressible _ -> "n/a"

let flagged = function
  | Flagged sev -> Finding.at_least ~threshold:Finding.Warning sev
  | Unparseable _ -> true
  | Clean | Inexpressible _ -> false

type kind =
  | Silent_acceptance
  | Late_failure
  | Over_strict
  | Agree_detected
  | Agree_clean
  | Lint_miss
  | Not_comparable

let all_kinds =
  [
    Silent_acceptance;
    Late_failure;
    Over_strict;
    Agree_detected;
    Agree_clean;
    Lint_miss;
    Not_comparable;
  ]

let kind_label = function
  | Silent_acceptance -> "silent-acceptance"
  | Late_failure -> "late-failure"
  | Over_strict -> "over-strict"
  | Agree_detected -> "agree-detected"
  | Agree_clean -> "agree-clean"
  | Lint_miss -> "lint-miss"
  | Not_comparable -> "not-comparable"

let is_gap = function
  | Silent_acceptance | Late_failure | Over_strict -> true
  | Agree_detected | Agree_clean | Lint_miss | Not_comparable -> false

let classify ~static ~outcome_label =
  match static with
  | Inexpressible _ -> Not_comparable
  | _ -> (
    match outcome_label with
    | "n/a" | "crashed" -> Not_comparable
    | "ignored" -> if flagged static then Silent_acceptance else Agree_clean
    | "functional" -> if flagged static then Late_failure else Lint_miss
    | "startup" -> if flagged static then Agree_detected else Over_strict
    | _ -> Not_comparable)

let classify_deep ~static ~gap_claimed ~outcome_label =
  match classify ~static ~outcome_label with
  | Silent_acceptance when gap_claimed ->
    (* A Gap-claim rule predicted the validator would swallow this
       mutant, and the journal confirms it did: static and dynamic
       evidence agree, so the pair is no longer an open disagreement. *)
    Agree_detected
  | k -> k
