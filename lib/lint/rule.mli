(** Declarative constraint IR for static configuration analysis.

    A rule set captures, ahead of execution, the constraints a SUT's own
    validator enforces {e and} the ones it silently omits — the flaw
    tables of the paper's §5 expressed as checkable data.  Rules are
    evaluated by {!Checker} against a {!Conftree.Config_set.t}; each
    violation becomes a {!Finding.t} with a ConfPath address.

    The IR is deliberately small: scoped value checks, required and
    duplicate directives, unknown-name detection with vocabulary-based
    suggestions, cross-directive implications, dangling references, and
    an escape hatch for whole-set semantic analyses (DNS zone
    consistency, XML attribute schemas). *)

(** Where a structural rule applies within a configuration set. *)
type target = {
  in_file : string option;
      (** restrict to this file of the set; [None] = every file *)
  in_section : string option;
      (** restrict by enclosing section name (lowercased); [Some ""]
          means top level only (no enclosing section); [None] =
          anywhere *)
}

val anywhere : target
val top_level : target
val in_file : string -> target
val in_section : ?file:string -> string -> target

(** Expected shape of a directive's value. *)
type vtype =
  | Int_range of int * int  (** decimal integer within bounds, inclusive *)
  | Bool_word  (** on/off, true/false, yes/no, 1/0 (case-insensitive) *)
  | Enum of { allowed : string list; ci : bool }
  | Custom of { expect : string; check : string -> string option }
      (** [expect] describes valid values for documentation; [check]
          returns a violation message, [None] when the value is fine *)

(* Raw finding emitted by a [Check_set] analysis: location plus message,
   before the checker attaches rule id and severity. *)
type raw = {
  raw_file : string;
  raw_path : Conftree.Path.t;
  raw_message : string;
  raw_suggestion : string option;
}

(** Comparison operator of a {!body.Relation} constraint. *)
type rel_op = Rle | Rlt | Rge | Rgt | Req | Rne

val rel_op_label : rel_op -> string
(** ["<="], ["<"], [">="], [">"], ["=="], ["!="]. *)

val rel_op_of_label : string -> rel_op option

val rel_holds : rel_op -> int -> int -> bool

(** One directive reference inside a linear expression.  The term reads
    the directive's written value with [t_read] (a unit-normalizing
    parser: bytes to kB, durations to ms, ...); when the directive is
    absent, or [t_masked] says the SUT would silently fall back to its
    built-in default (the MySQL-class flaw), [t_default] flows into the
    relation instead of the written value. *)
type term = {
  t_coeff : int;  (** multiplier, e.g. 16 in [pages >= 16 * relations] *)
  t_name : string;  (** canonicalized directive name *)
  t_unit : string;  (** unit class label: ["count"], ["kb"], ["ms"] *)
  t_read : string -> int option;
  t_default : int;
  t_masked : string -> bool;
}

(** Linear expression [l_const + sum(coeff_i * value_i)]. *)
type linexp = { l_const : int; l_terms : term list }

val linexp : ?const:int -> term list -> linexp

val term :
  ?coeff:int -> ?unit_label:string -> ?masked:(string -> bool) ->
  read:(string -> int option) -> default:int -> string -> term

type body =
  | Value of {
      target : target;
      name : string;
      canon : string -> string;
          (** name normalization applied to both sides before comparing
              (identity, lowercase, dash-folding, ...) *)
      vtype : vtype;
      missing : string option;
          (** violation message when the directive carries no value;
              [None] = a bare directive is acceptable *)
    }
  | Required of { target : target; file : string; name : string; canon : string -> string }
      (** the directive must appear in [file] (within [target.in_section]
          when set) — deletions silently fall back to built-in defaults *)
  | No_duplicates of {
      target : target;
      names : string list option;
          (** restrict to these (canonicalized) names; [None] = all *)
      canon : string -> string;
    }
  | Unknown of {
      target : target;
      kind : string;  (** node kind to check, e.g. [Node.kind_directive] *)
      known : string -> bool;
      vocabulary : string list;
          (** candidate names for "did you mean" suggestions *)
      what : string;  (** message noun: "directive", "element", ... *)
    }
  | Implies of {
      target : target;
      anchor : string option;
          (** directive name to anchor the finding on (first match);
              falls back to the file root *)
      check : lookup:(string -> string option) -> string option;
          (** [lookup] resolves a canonicalized directive name to its
              last value within the target scope; returns the violation
              message *)
      canon : string -> string;
    }
  | Reference of {
      target : target;
      name : string;
      canon : string -> string;
      what : string;  (** "file", "directory", "zone file", ... *)
      exists : string -> bool;
    }
  | Relation of {
      target : target;
      canon : string -> string;
      op : rel_op;
      lhs : linexp;
      rhs : linexp;
      describe : string;
          (** human statement of the constraint, e.g.
              ["max_fsm_pages >= 16 * max_fsm_relations"] *)
      per_file : bool;
          (** [true]: evaluate independently within each file of the set
              (zone-file SOA timers); [false]: evaluate once over the
              whole set with last-occurrence-wins resolution *)
      harvest :
        (string -> Conftree.Node.t -> (string * Conftree.Path.t * string) list)
        option;
          (** extra pseudo-directive bindings mined from a file's tree
              (name, site path, raw value) — lets a relation range over
              values that are not directives, e.g. SOA rdata fields *)
    }
      (** linear/ordering constraint between directives, checked
          statically: violated when [lhs op rhs] is false under the
          values the SUT would actually run with *)
  | Check_set of (Conftree.Config_set.t -> raw list)
      (** whole-set analysis; used for cross-file and semantic rules *)

(** What a rule asserts about the SUT's own validator: [Agreement]
    mirrors a check the validator performs itself (a violation is
    rejected at startup), [Gap] encodes a check the validator omits (a
    violation is accepted silently).  The claim is what makes rules
    falsifiable against campaign journals: an [Agreement]-claim error
    rule firing on a mutant the SUT accepted is contradicted by the
    evidence ([lib/infer]'s differ). *)
type claim = Agreement | Gap | Unspecified

val claim_label : claim -> string
(** ["agreement"], ["gap"], ["unspecified"]. *)

val claim_of_label : string -> claim option

val claim_of_doc : string -> claim
(** Derive the claim from a rule's one-line doc: the existing rule sets
    end each doc with ["(agreement)"] or ["(gap)"]; anything else is
    [Unspecified]. *)

type t = {
  id : string;
  severity : Finding.severity;
  doc : string;  (** one-line statement of the constraint *)
  claim : claim;
  body : body;
}

val make :
  ?claim:claim -> id:string -> severity:Finding.severity -> doc:string ->
  body -> t
(** [claim] defaults to {!claim_of_doc} applied to [doc]. *)

val id_string : string -> string
(** Identity; convenience canonicalizer for case-sensitive rule sets. *)

val lower : string -> string
(** [String.lowercase_ascii]. *)
