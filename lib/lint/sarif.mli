(** Minimal SARIF 2.1.0 emitter for lint findings.

    Renders a {!Finding.t} list as a single-run SARIF log so findings
    load in standard viewers: one [result] per finding with the rule
    id, severity mapped to [error]/[warning]/[note], the file as the
    artifact location and the ConfPath address as the fully-qualified
    logical location; a relation finding's other sites become
    [relatedLocations].  Deterministic — byte-identical output for
    identical findings. *)

val to_json : ?tool:string -> Finding.t list -> Conferr_obsv.Json.t
(** [tool] is the driver name, default ["conferr"]. *)

val render : ?tool:string -> Finding.t list -> string
(** The SARIF log followed by a newline. *)
