module Json = Conferr_obsv.Json

let level_of_severity = function
  | Finding.Error -> "error"
  | Finding.Warning -> "warning"
  | Finding.Info -> "note"

let location ~file ~address =
  Json.Obj
    [
      ( "physicalLocation",
        Json.Obj [ ("artifactLocation", Json.Obj [ ("uri", Json.Str file) ]) ]
      );
      ( "logicalLocations",
        Json.Arr [ Json.Obj [ ("fullyQualifiedName", Json.Str address) ] ] );
    ]

let result (f : Finding.t) =
  let message =
    match f.suggestion with
    | None -> f.message
    | Some s -> Printf.sprintf "%s (did you mean '%s'?)" f.message s
  in
  let base =
    [
      ("ruleId", Json.Str f.rule_id);
      ("level", Json.Str (level_of_severity f.severity));
      ("message", Json.Obj [ ("text", Json.Str message) ]);
      ("locations", Json.Arr [ location ~file:f.file ~address:f.address ]);
    ]
  in
  let related =
    match f.related with
    | [] -> []
    | sites ->
      [
        ( "relatedLocations",
          Json.Arr
            (List.map
               (fun (file, address) -> location ~file ~address)
               sites) );
      ]
  in
  Json.Obj (base @ related)

let to_json ?(tool = "conferr") findings =
  let rule_ids =
    List.sort_uniq compare (List.map (fun f -> f.Finding.rule_id) findings)
  in
  Json.Obj
    [
      ("$schema", Json.Str "https://json.schemastore.org/sarif-2.1.0.json");
      ("version", Json.Str "2.1.0");
      ( "runs",
        Json.Arr
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.Str tool);
                            ( "rules",
                              Json.Arr
                                (List.map
                                   (fun id ->
                                     Json.Obj [ ("id", Json.Str id) ])
                                   rule_ids) );
                          ] );
                    ] );
                ("results", Json.Arr (List.map result findings));
              ];
          ] );
    ]

let render ?tool findings = Json.to_string (to_json ?tool findings) ^ "\n"
