(** Small abstract-value lattice for corpus-level config analysis.

    Each directive is mapped to an element describing the set of
    concrete values it may denote: integer intervals (after
    unit-suffix normalization — sizes to kB, durations to ms), enum
    member sets, three-valued booleans, coarse string shapes, plus
    [Bot]/[Top].  Soundness contract: the concretization of a
    directive's abstract value contains the concrete value the SUT
    runs with (tested by QCheck in [test_dataflow]). *)

(** Coarse shape of an uninterpreted string value. *)
type shape = Sh_any | Sh_word | Sh_path | Sh_empty

type t =
  | Bot  (** no value / contradiction *)
  | Ival of int * int  (** integers in an inclusive range *)
  | Eset of string list  (** lowercased, sorted, deduplicated members *)
  | Bval of bool option  (** [Some b] = known truth value; [None] = either *)
  | Sval of shape
  | Top  (** any value *)

val bot : t
val top : t

val ival : int -> int -> t
(** [ival lo hi] is [Bot] when [lo > hi]. *)

val point : int -> t

val eset : string list -> t
(** Members are lowercased and deduplicated; empty list is [Bot]. *)

val bval : bool -> t
val any_bool : t

val classify_shape : string -> shape
val sval : string -> t

val join : t -> t -> t
(** Least upper bound. *)

val leq : t -> t -> bool
(** Lattice order: [leq a b] iff every concrete value of [a] is one of
    [b].  [join] is the lub for this order. *)

val contains_int : t -> int -> bool
val contains_string : t -> string -> bool

val to_string : t -> string
(** Compact deterministic rendering for messages and dumps. *)
