(** Diagnostics produced by the static configuration checker.

    A finding pins a violated rule to a node of a configuration tree,
    addressed both by its raw {!Conftree.Path.t} and by a ConfPath
    query that selects exactly that node — the same addressing language
    the mutation engine uses for targets (paper §3.3), so a diagnostic
    can be fed back into any tool that speaks ConfPath. *)

type severity = Info | Warning | Error

val severity_label : severity -> string
(** ["info"], ["warning"], ["error"]. *)

val severity_of_label : string -> severity option

val severity_rank : severity -> int
(** [Info] = 0, [Warning] = 1, [Error] = 2. *)

val at_least : threshold:severity -> severity -> bool

type t = {
  rule_id : string;
  severity : severity;
  file : string;          (** file name within the configuration set *)
  path : Conftree.Path.t; (** location inside that file's tree *)
  address : string;       (** ConfPath query selecting exactly [path] *)
  message : string;
  suggestion : string option;
      (** nearest known name, for unknown-name findings *)
  related : (string * string) list;
      (** other sites ([file], ConfPath address) that participate in the
          violation — the second ConfPath of a relation finding, the
          shadowing occurrence of a cross-file duplicate *)
}

val address_of_path : Conftree.Node.t -> Conftree.Path.t -> string
(** A ConfPath query for the node at [path] under the given root: each
    step is the node's name with a 1-based positional predicate among
    same-named siblings (["zone[2]"]), or ["*\[k\]"] when the name is
    empty or not expressible as a ConfPath identifier.  The root path is
    rendered as ["/"].  The query compiles and selects exactly the
    addressed node (property-tested). *)

val make :
  ?suggestion:string -> ?related:(string * string) list -> rule_id:string ->
  severity:severity -> file:string -> root:Conftree.Node.t ->
  path:Conftree.Path.t -> string -> t
(** [make ~rule_id ~severity ~file ~root ~path message] computes the
    ConfPath address from [root]/[path].  [related] defaults to []. *)

val compare : file_order:string list -> t -> t -> int
(** Deterministic ordering: position of [file] in [file_order] (files
    not listed sort last, alphabetically), then document order of
    [path], then [rule_id], then [message]. *)

val max_severity : t list -> severity option

val to_text : t -> string
(** One line: [file:address: severity: \[rule\] message (did you mean
    'x'?)]. *)

val to_json : t -> Conferr_obsv.Json.t
