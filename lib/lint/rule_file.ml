module Json = Conferr_obsv.Json

type vspec =
  | F_int_range of int * int
  | F_bool
  | F_enum of { allowed : string list; ci : bool }

type body =
  | F_value of {
      file : string option;
      section : string option;
      name : string;
      vspec : vspec;
    }
  | F_required of { file : string; section : string option; name : string }
  | F_unknown of {
      file : string option;
      section : string option;
      node_kind : string;
      vocabulary : string list;
      what : string;
    }
  | F_no_duplicates of {
      file : string option;
      section : string option;
      names : string list option;
    }
  | F_implies_present of {
      file : string option;
      section : string option;
      names : string list;
    }
  | F_relation of {
      file : string option;
      section : string option;
      op : Rule.rel_op;
      lhs : flinexp;
      rhs : flinexp;
      per_file : bool;
    }

and fterm = {
  ft_coeff : int;
  ft_name : string;
  ft_unit : string;
  ft_default : int;
}

and flinexp = { fl_const : int; fl_terms : fterm list }

type spec = {
  id : string;
  severity : Finding.severity;
  doc : string;
  claim : Rule.claim;
  body : body;
}

(* ---------------------------------------------------------------- *)
(* Compilation to the checker IR *)

let target ~file ~section = { Rule.in_file = file; in_section = section }

let vtype_of_vspec = function
  | F_int_range (lo, hi) -> Rule.Int_range (lo, hi)
  | F_bool -> Rule.Bool_word
  | F_enum { allowed; ci } -> Rule.Enum { allowed; ci }

let to_rule spec =
  let body =
    match spec.body with
    | F_value { file; section; name; vspec } ->
      Rule.Value
        {
          target = target ~file ~section;
          name;
          canon = Rule.lower;
          vtype = vtype_of_vspec vspec;
          missing = None;
        }
    | F_required { file; section; name } ->
      Rule.Required
        { target = target ~file:(Some file) ~section; file; name;
          canon = Rule.lower }
    | F_unknown { file; section; node_kind; vocabulary; what } ->
      let known_set =
        List.sort_uniq compare (List.map Rule.lower vocabulary)
      in
      Rule.Unknown
        {
          target = target ~file ~section;
          kind = node_kind;
          known = (fun n -> List.mem (Rule.lower n) known_set);
          vocabulary;
          what;
        }
    | F_no_duplicates { file; section; names } ->
      Rule.No_duplicates
        {
          target = target ~file ~section;
          names = Option.map (List.map Rule.lower) names;
          canon = Rule.lower;
        }
    | F_relation { file; section; op; lhs; rhs; per_file } ->
      let term_of ft =
        Rule.term ~coeff:ft.ft_coeff ~unit_label:ft.ft_unit
          ~read:(Dataflow.read_of_unit ft.ft_unit) ~default:ft.ft_default
          ft.ft_name
      in
      let linexp_of fl =
        Rule.linexp ~const:fl.fl_const (List.map term_of fl.fl_terms)
      in
      let render fl =
        let parts =
          (if fl.fl_const <> 0 || fl.fl_terms = [] then
             [ string_of_int fl.fl_const ]
           else [])
          @ List.map
              (fun ft ->
                if ft.ft_coeff = 1 then ft.ft_name
                else Printf.sprintf "%d * %s" ft.ft_coeff ft.ft_name)
              fl.fl_terms
        in
        String.concat " + " parts
      in
      Rule.Relation
        {
          target = target ~file ~section;
          canon = Rule.lower;
          op;
          lhs = linexp_of lhs;
          rhs = linexp_of rhs;
          describe =
            Printf.sprintf "%s %s %s" (render lhs) (Rule.rel_op_label op)
              (render rhs);
          per_file;
          harvest = None;
        }
    | F_implies_present { file; section; names } ->
      let anchor = match names with n :: _ -> Some n | [] -> None in
      Rule.Implies
        {
          target = target ~file ~section;
          anchor;
          canon = Rule.lower;
          check =
            (fun ~lookup ->
              let present = List.filter (fun n -> lookup n <> None) names in
              let absent = List.filter (fun n -> lookup n = None) names in
              if present <> [] && absent <> [] then
                Some
                  (Printf.sprintf
                     "directives {%s} are configured together in observed \
                      campaigns; {%s} missing here"
                     (String.concat ", " names)
                     (String.concat ", " absent))
              else None);
        }
  in
  Rule.make ~claim:spec.claim ~id:spec.id ~severity:spec.severity
    ~doc:spec.doc body

(* ---------------------------------------------------------------- *)
(* JSON codec *)

let opt_str = function None -> Json.Null | Some s -> Json.Str s

let json_of_vspec = function
  | F_int_range (lo, hi) ->
    Json.Obj
      [
        ("kind", Json.Str "int-range");
        ("min", Json.Num (float_of_int lo));
        ("max", Json.Num (float_of_int hi));
      ]
  | F_bool -> Json.Obj [ ("kind", Json.Str "bool") ]
  | F_enum { allowed; ci } ->
    Json.Obj
      [
        ("kind", Json.Str "enum");
        ("allowed", Json.Arr (List.map (fun s -> Json.Str s) allowed));
        ("ci", Json.Bool ci);
      ]

let json_of_body = function
  | F_value { file; section; name; vspec } ->
    Json.Obj
      [
        ("kind", Json.Str "value");
        ("file", opt_str file);
        ("section", opt_str section);
        ("name", Json.Str name);
        ("vtype", json_of_vspec vspec);
      ]
  | F_required { file; section; name } ->
    Json.Obj
      [
        ("kind", Json.Str "required");
        ("file", Json.Str file);
        ("section", opt_str section);
        ("name", Json.Str name);
      ]
  | F_unknown { file; section; node_kind; vocabulary; what } ->
    Json.Obj
      [
        ("kind", Json.Str "unknown");
        ("file", opt_str file);
        ("section", opt_str section);
        ("node-kind", Json.Str node_kind);
        ("vocabulary", Json.Arr (List.map (fun s -> Json.Str s) vocabulary));
        ("what", Json.Str what);
      ]
  | F_no_duplicates { file; section; names } ->
    Json.Obj
      [
        ("kind", Json.Str "no-duplicates");
        ("file", opt_str file);
        ("section", opt_str section);
        ( "names",
          match names with
          | None -> Json.Null
          | Some l -> Json.Arr (List.map (fun s -> Json.Str s) l) );
      ]
  | F_implies_present { file; section; names } ->
    Json.Obj
      [
        ("kind", Json.Str "implies-present");
        ("file", opt_str file);
        ("section", opt_str section);
        ("names", Json.Arr (List.map (fun s -> Json.Str s) names));
      ]
  | F_relation { file; section; op; lhs; rhs; per_file } ->
    let json_of_term ft =
      Json.Obj
        [
          ("coeff", Json.Num (float_of_int ft.ft_coeff));
          ("name", Json.Str ft.ft_name);
          ("unit", Json.Str ft.ft_unit);
          ("default", Json.Num (float_of_int ft.ft_default));
        ]
    in
    let json_of_linexp fl =
      Json.Obj
        [
          ("const", Json.Num (float_of_int fl.fl_const));
          ("terms", Json.Arr (List.map json_of_term fl.fl_terms));
        ]
    in
    Json.Obj
      [
        ("kind", Json.Str "relation");
        ("file", opt_str file);
        ("section", opt_str section);
        ("op", Json.Str (Rule.rel_op_label op));
        ("lhs", json_of_linexp lhs);
        ("rhs", json_of_linexp rhs);
        ("per-file", Json.Bool per_file);
      ]

let json_of_spec spec =
  Json.Obj
    [
      ("id", Json.Str spec.id);
      ("severity", Json.Str (Finding.severity_label spec.severity));
      ("doc", Json.Str spec.doc);
      ("claim", Json.Str (Rule.claim_label spec.claim));
      ("body", json_of_body spec.body);
    ]

let to_json ?sut specs =
  let head = [ ("conferr_rules", Json.Num 1.) ] in
  let head =
    match sut with None -> head | Some s -> head @ [ ("sut", Json.Str s) ]
  in
  Json.Obj (head @ [ ("rules", Json.Arr (List.map json_of_spec specs)) ])

(* -- decoding ---------------------------------------------------- *)

let ( let* ) = Result.bind

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let str_field name j =
  let* v = field name j in
  match Json.str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S: expected a string" name)

let opt_str_field name j =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
    match Json.str v with
    | Some s -> Ok (Some s)
    | None -> Error (Printf.sprintf "field %S: expected a string or null" name))

let str_list_field name j =
  let* v = field name j in
  match Json.str_list v with
  | Some l -> Ok l
  | None -> Error (Printf.sprintf "field %S: expected an array of strings" name)

let int_field name j =
  let* v = field name j in
  match Json.num v with
  (* [float_of_int max_int] rounds up to 2^62, whose [int_of_float] wraps
     negative; clamp so an open-ended mined range survives the round trip *)
  | Some f when f >= float_of_int max_int -> Ok max_int
  | Some f when f <= float_of_int min_int -> Ok min_int
  | Some f when Float.is_integer f -> Ok (int_of_float f)
  | _ -> Error (Printf.sprintf "field %S: expected an integer" name)

let vspec_of_json j =
  let* kind = str_field "kind" j in
  match kind with
  | "int-range" ->
    let* lo = int_field "min" j in
    let* hi = int_field "max" j in
    Ok (F_int_range (lo, hi))
  | "bool" -> Ok F_bool
  | "enum" ->
    let* allowed = str_list_field "allowed" j in
    let ci = match Json.member "ci" j with Some (Json.Bool b) -> b | _ -> false in
    Ok (F_enum { allowed; ci })
  | k -> Error (Printf.sprintf "unknown vtype kind %S" k)

let body_of_json j =
  let* kind = str_field "kind" j in
  let* file = opt_str_field "file" j in
  let* section = opt_str_field "section" j in
  match kind with
  | "value" ->
    let* name = str_field "name" j in
    let* vj = field "vtype" j in
    let* vspec = vspec_of_json vj in
    Ok (F_value { file; section; name; vspec })
  | "required" ->
    let* file = str_field "file" j in
    let* name = str_field "name" j in
    Ok (F_required { file; section; name })
  | "unknown" ->
    let* node_kind = str_field "node-kind" j in
    let* vocabulary = str_list_field "vocabulary" j in
    let* what = str_field "what" j in
    Ok (F_unknown { file; section; node_kind; vocabulary; what })
  | "no-duplicates" ->
    let* names =
      match Json.member "names" j with
      | None | Some Json.Null -> Ok None
      | Some v -> (
        match Json.str_list v with
        | Some l -> Ok (Some l)
        | None -> Error "field \"names\": expected an array of strings or null")
    in
    Ok (F_no_duplicates { file; section; names })
  | "implies-present" ->
    let* names = str_list_field "names" j in
    if names = [] then Error "implies-present: empty name list"
    else Ok (F_implies_present { file; section; names })
  | "relation" ->
    let term_of_json tj =
      let* coeff = int_field "coeff" tj in
      let* name = str_field "name" tj in
      let* unit = str_field "unit" tj in
      let* default = int_field "default" tj in
      if not (List.mem unit Dataflow.unit_labels) then
        Error
          (Printf.sprintf "relation term: unknown unit %S (want one of %s)"
             unit
             (String.concat "/" Dataflow.unit_labels))
      else
        Ok { ft_coeff = coeff; ft_name = name; ft_unit = unit;
             ft_default = default }
    in
    let linexp_of_json name =
      let* lj = field name j in
      let const =
        match Option.bind (Json.member "const" lj) Json.num with
        | Some f when Float.is_integer f -> int_of_float f
        | _ -> 0
      in
      let* terms =
        match Json.member "terms" lj with
        | Some (Json.Arr items) ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | item :: rest -> (
              match term_of_json item with
              | Ok t -> go (t :: acc) rest
              | Error e -> Error e)
          in
          go [] items
        | _ ->
          Error (Printf.sprintf "field %S: expected an object with terms" name)
      in
      Ok { fl_const = const; fl_terms = terms }
    in
    let* op_label = str_field "op" j in
    let* op =
      match Rule.rel_op_of_label op_label with
      | Some op -> Ok op
      | None -> Error (Printf.sprintf "relation: unknown operator %S" op_label)
    in
    let* lhs = linexp_of_json "lhs" in
    let* rhs = linexp_of_json "rhs" in
    if lhs.fl_terms = [] && rhs.fl_terms = [] then
      Error "relation: no terms on either side"
    else
      let per_file =
        match Json.member "per-file" j with
        | Some (Json.Bool b) -> b
        | _ -> false
      in
      Ok (F_relation { file; section; op; lhs; rhs; per_file })
  | k -> Error (Printf.sprintf "unknown body kind %S" k)

let spec_of_json j =
  let* id = str_field "id" j in
  let* sev = str_field "severity" j in
  let* severity =
    match Finding.severity_of_label sev with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "unknown severity %S" sev)
  in
  let* doc = str_field "doc" j in
  let* claim =
    match Json.member "claim" j with
    | None -> Ok (Rule.claim_of_doc doc)
    | Some v -> (
      match Option.bind (Json.str v) Rule.claim_of_label with
      | Some c -> Ok c
      | None -> Error "field \"claim\": expected agreement/gap/unspecified")
  in
  let* body_json = field "body" j in
  let* body = body_of_json body_json in
  Ok { id; severity; doc; claim; body }

let of_json j =
  let* version = field "conferr_rules" j in
  let* () =
    match Json.num version with
    | Some 1. -> Ok ()
    | _ -> Error "unsupported rule-file version (want conferr_rules: 1)"
  in
  let* rules = field "rules" j in
  match rules with
  | Json.Arr items ->
    let rec go acc i = function
      | [] -> Ok (List.rev acc)
      | item :: rest -> (
        match spec_of_json item with
        | Ok spec -> go (spec :: acc) (i + 1) rest
        | Error e -> Error (Printf.sprintf "rule %d: %s" i e))
    in
    go [] 0 items
  | _ -> Error "field \"rules\": expected an array"

let save ?sut specs = Json.to_string (to_json ?sut specs) ^ "\n"

let load text =
  match Json.of_string (String.trim text) with
  | Error e -> Error (Printf.sprintf "not valid JSON: %s" e)
  | Ok j -> of_json j
