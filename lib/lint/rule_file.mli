(** Serializable subset of the {!Rule} IR (doc/infer.md).

    The full IR embeds OCaml closures (custom value checks, whole-set
    analyses), so it cannot round-trip through a file.  This module
    defines the data-only subset that can: typed value checks, required
    directives, unknown-name detection with an explicit vocabulary,
    duplicate detection, and presence-co-occurrence implications.  It is
    the format [conferr infer --emit-rules] writes and
    [conferr lint --rules FILE] loads.

    The file is a single JSON object:
    {v
    { "conferr_rules": 1,
      "sut": "postgres",
      "rules": [ { "id": ..., "severity": ..., "doc": ...,
                   "claim": ..., "body": { "kind": ..., ... } }, ... ] }
    v} *)

(** Serializable value shape (no [Custom] — that is a closure). *)
type vspec =
  | F_int_range of int * int
  | F_bool
  | F_enum of { allowed : string list; ci : bool }

(** Serializable rule body.  [file]/[section] express the {!Rule.target}
    scope ([None] = anywhere; [Some ""] for [section] = top level). *)
type body =
  | F_value of {
      file : string option;
      section : string option;
      name : string;
      vspec : vspec;
    }
  | F_required of { file : string; section : string option; name : string }
  | F_unknown of {
      file : string option;
      section : string option;
      node_kind : string;  (** {!Conftree.Node.kind_directive}, ... *)
      vocabulary : string list;
      what : string;
    }
  | F_no_duplicates of {
      file : string option;
      section : string option;
      names : string list option;
    }
  | F_implies_present of {
      file : string option;
      section : string option;
      names : string list;
          (** directives observed to be configured (and to fail) together;
              flagged when some but not all are present *)
    }
  | F_relation of {
      file : string option;
      section : string option;
      op : Rule.rel_op;
      lhs : flinexp;
      rhs : flinexp;
      per_file : bool;
    }
      (** linear/ordering constraint between directives, compiled to
          {!Rule.body.Relation} with the generic unit parsers of
          {!Dataflow.read_of_unit} *)

(** Serializable relation term; [ft_unit] is one of
    {!Dataflow.unit_labels}. *)
and fterm = {
  ft_coeff : int;
  ft_name : string;
  ft_unit : string;
  ft_default : int;
}

and flinexp = { fl_const : int; fl_terms : fterm list }

type spec = {
  id : string;
  severity : Finding.severity;
  doc : string;
  claim : Rule.claim;
  body : body;
}

val to_rule : spec -> Rule.t
(** Compile to the checker IR.  Name matching is case-insensitive
    ({!Rule.lower}), matching how the inference pipeline canonicalizes
    mined names. *)

val json_of_body : body -> Conferr_obsv.Json.t
(** The body alone, as embedded in the file format — also used by
    [conferr infer --format json] to render candidate specs. *)

val to_json : ?sut:string -> spec list -> Conferr_obsv.Json.t

val of_json : Conferr_obsv.Json.t -> (spec list, string) result

val save : ?sut:string -> spec list -> string
(** One JSON object followed by a newline. *)

val load : string -> (spec list, string) result
(** Parse the contents of a rule file. *)
