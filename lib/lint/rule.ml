type target = { in_file : string option; in_section : string option }

let anywhere = { in_file = None; in_section = None }
let top_level = { in_file = None; in_section = Some "" }
let in_file f = { in_file = Some f; in_section = None }

let in_section ?file s =
  { in_file = file; in_section = Some (String.lowercase_ascii s) }

type vtype =
  | Int_range of int * int
  | Bool_word
  | Enum of { allowed : string list; ci : bool }
  | Custom of { expect : string; check : string -> string option }

type raw = {
  raw_file : string;
  raw_path : Conftree.Path.t;
  raw_message : string;
  raw_suggestion : string option;
}

type body =
  | Value of {
      target : target;
      name : string;
      canon : string -> string;
      vtype : vtype;
      missing : string option;
    }
  | Required of {
      target : target;
      file : string;
      name : string;
      canon : string -> string;
    }
  | No_duplicates of {
      target : target;
      names : string list option;
      canon : string -> string;
    }
  | Unknown of {
      target : target;
      kind : string;
      known : string -> bool;
      vocabulary : string list;
      what : string;
    }
  | Implies of {
      target : target;
      anchor : string option;
      check : lookup:(string -> string option) -> string option;
      canon : string -> string;
    }
  | Reference of {
      target : target;
      name : string;
      canon : string -> string;
      what : string;
      exists : string -> bool;
    }
  | Check_set of (Conftree.Config_set.t -> raw list)

type t = { id : string; severity : Finding.severity; doc : string; body : body }

let make ~id ~severity ~doc body = { id; severity; doc; body }

let id_string s = s

let lower = String.lowercase_ascii
