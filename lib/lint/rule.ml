type target = { in_file : string option; in_section : string option }

let anywhere = { in_file = None; in_section = None }
let top_level = { in_file = None; in_section = Some "" }
let in_file f = { in_file = Some f; in_section = None }

let in_section ?file s =
  { in_file = file; in_section = Some (String.lowercase_ascii s) }

type vtype =
  | Int_range of int * int
  | Bool_word
  | Enum of { allowed : string list; ci : bool }
  | Custom of { expect : string; check : string -> string option }

type raw = {
  raw_file : string;
  raw_path : Conftree.Path.t;
  raw_message : string;
  raw_suggestion : string option;
}

type rel_op = Rle | Rlt | Rge | Rgt | Req | Rne

let rel_op_label = function
  | Rle -> "<="
  | Rlt -> "<"
  | Rge -> ">="
  | Rgt -> ">"
  | Req -> "=="
  | Rne -> "!="

let rel_op_of_label = function
  | "<=" -> Some Rle
  | "<" -> Some Rlt
  | ">=" -> Some Rge
  | ">" -> Some Rgt
  | "==" -> Some Req
  | "!=" -> Some Rne
  | _ -> None

let rel_holds op lhs rhs =
  match op with
  | Rle -> lhs <= rhs
  | Rlt -> lhs < rhs
  | Rge -> lhs >= rhs
  | Rgt -> lhs > rhs
  | Req -> lhs = rhs
  | Rne -> lhs <> rhs

type term = {
  t_coeff : int;
  t_name : string;
  t_unit : string;
  t_read : string -> int option;
  t_default : int;
  t_masked : string -> bool;
}

type linexp = { l_const : int; l_terms : term list }

let linexp ?(const = 0) terms = { l_const = const; l_terms = terms }

let term ?(coeff = 1) ?(unit_label = "count") ?(masked = fun _ -> false)
    ~read ~default name =
  {
    t_coeff = coeff;
    t_name = name;
    t_unit = unit_label;
    t_read = read;
    t_default = default;
    t_masked = masked;
  }

type body =
  | Value of {
      target : target;
      name : string;
      canon : string -> string;
      vtype : vtype;
      missing : string option;
    }
  | Required of {
      target : target;
      file : string;
      name : string;
      canon : string -> string;
    }
  | No_duplicates of {
      target : target;
      names : string list option;
      canon : string -> string;
    }
  | Unknown of {
      target : target;
      kind : string;
      known : string -> bool;
      vocabulary : string list;
      what : string;
    }
  | Implies of {
      target : target;
      anchor : string option;
      check : lookup:(string -> string option) -> string option;
      canon : string -> string;
    }
  | Reference of {
      target : target;
      name : string;
      canon : string -> string;
      what : string;
      exists : string -> bool;
    }
  | Relation of {
      target : target;
      canon : string -> string;
      op : rel_op;
      lhs : linexp;
      rhs : linexp;
      describe : string;
      per_file : bool;
      harvest :
        (string -> Conftree.Node.t -> (string * Conftree.Path.t * string) list)
        option;
    }
  | Check_set of (Conftree.Config_set.t -> raw list)

type claim = Agreement | Gap | Unspecified

let claim_label = function
  | Agreement -> "agreement"
  | Gap -> "gap"
  | Unspecified -> "unspecified"

let claim_of_label = function
  | "agreement" -> Some Agreement
  | "gap" -> Some Gap
  | "unspecified" -> Some Unspecified
  | _ -> None

type t = {
  id : string;
  severity : Finding.severity;
  doc : string;
  claim : claim;
  body : body;
}

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let claim_of_doc doc =
  let doc = String.trim doc in
  if ends_with ~suffix:"(agreement)" doc then Agreement
  else if ends_with ~suffix:"(gap)" doc then Gap
  else Unspecified

let make ?claim ~id ~severity ~doc body =
  let claim = match claim with Some c -> c | None -> claim_of_doc doc in
  { id; severity; doc; claim; body }

let id_string s = s

let lower = String.lowercase_ascii
