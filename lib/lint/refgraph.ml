module Config_set = Conftree.Config_set

type edge = {
  e_file : string;
  e_path : Conftree.Path.t;
  e_what : string;
  e_target : string;
}

type t = { g_files : string list; g_edges : edge list }

let build set edges = { g_files = Config_set.names set; g_edges = edges }

let dangling g =
  List.filter (fun e -> not (List.mem e.e_target g.g_files)) g.g_edges

(* Adjacency restricted to files of the set, successors in edge order. *)
let successors g file =
  List.filter_map
    (fun e ->
      if e.e_file = file && List.mem e.e_target g.g_files then Some e.e_target
      else None)
    g.g_edges
  |> List.sort_uniq compare

(* File-level reference cycles, deterministically ordered: every cycle
   is reported once, rotated to start at its smallest member, found by
   DFS from each file in set order. *)
let cycles g =
  let found = ref [] in
  let canonical cycle =
    let smallest = List.fold_left min (List.hd cycle) cycle in
    let rec rotate = function
      | [] -> []
      | x :: tl when x = smallest -> (x :: tl) @ []
      | x :: tl -> rotate (tl @ [ x ])
    in
    rotate cycle
  in
  let record cycle =
    let c = canonical cycle in
    if not (List.mem c !found) then found := c :: !found
  in
  let rec dfs trail file =
    match
      let rec split acc = function
        | [] -> None
        | x :: tl -> if x = file then Some (List.rev (x :: acc)) else split (x :: acc) tl
      in
      split [] (List.rev trail)
    with
    | Some cycle -> record cycle
    | None -> List.iter (dfs (trail @ [ file ])) (successors g file)
  in
  List.iter (fun f -> dfs [] f) g.g_files;
  List.sort compare !found

let summarize g =
  Printf.sprintf "reference graph: %d file(s), %d edge(s), %d dangling, %d cycle(s)"
    (List.length g.g_files) (List.length g.g_edges)
    (List.length (dangling g))
    (List.length (cycles g))

let dangling_rule ~id ~severity ~doc edges_of =
  Rule.make ~id ~severity ~doc
    (Rule.Check_set
       (fun set ->
         let g = build set (edges_of set) in
         List.map
           (fun e ->
             {
               Rule.raw_file = e.e_file;
               raw_path = e.e_path;
               raw_message =
                 Printf.sprintf
                   "dangling %s reference: '%s' is not part of the \
                    configuration set"
                   e.e_what e.e_target;
               raw_suggestion = None;
             })
           (dangling g)))

let cycle_rule ~id ~severity ~doc edges_of =
  Rule.make ~id ~severity ~doc
    (Rule.Check_set
       (fun set ->
         let g = build set (edges_of set) in
         List.map
           (fun cycle ->
             let first = List.hd cycle in
             {
               Rule.raw_file = first;
               raw_path = [];
               raw_message =
                 Printf.sprintf "reference cycle: %s"
                   (String.concat " -> " (cycle @ [ first ]));
               raw_suggestion = None;
             })
           (cycles g)))
