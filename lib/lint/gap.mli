(** Validator-gap taxonomy: static verdict × dynamic outcome.

    The paper's headline findings are validator gaps — misconfigurations
    the SUT accepts silently or rejects only at run time.  This module
    classifies each (static lint verdict, journaled dynamic outcome)
    pair into the taxonomy the gap report and dashboard panel use. *)

(** What the static pass concluded about one mutant. *)
type static_verdict =
  | Clean  (** no finding at Warning or above *)
  | Flagged of Finding.severity
      (** maximum severity across findings (Warning or Error) *)
  | Unparseable of string
      (** the serialized mutant does not parse in the native format *)
  | Inexpressible of string
      (** the mutation could not be applied or serialized at all *)

val verdict_of_findings : Finding.t list -> static_verdict
(** [Clean] when nothing reaches Warning; [Flagged max] otherwise. *)

val static_label : static_verdict -> string
(** ["clean"], ["warning"], ["error"], ["syntax"], ["n/a"]. *)

val flagged : static_verdict -> bool
(** True for [Flagged Warning], [Flagged Error] and [Unparseable] — the
    static pass predicts the configuration is bad. *)

type kind =
  | Silent_acceptance
      (** lint flags the mutant, the SUT started and passed — the
          validator gap the paper's flaw tables catalogue *)
  | Late_failure
      (** lint flags the mutant, the SUT started but failed its
          functional tests — detected, but only at run time *)
  | Over_strict
      (** lint saw nothing, the SUT refused to start — either a lint
          blind spot or an overly strict validator *)
  | Agree_detected  (** both flag the mutant (SUT refused to start) *)
  | Agree_clean  (** both accept the mutant *)
  | Lint_miss
      (** lint saw nothing, the functional tests failed — the static
          pass itself has a gap *)
  | Not_comparable
      (** inexpressible scenarios, crashes, unmatched journal entries *)

val all_kinds : kind list
(** In report order. *)

val kind_label : kind -> string
(** ["silent-acceptance"], ["late-failure"], ["over-strict"],
    ["agree-detected"], ["agree-clean"], ["lint-miss"],
    ["not-comparable"]. *)

val is_gap : kind -> bool
(** The three headline disagreement kinds: silent acceptance, late
    failure, over-strict. *)

val classify : static:static_verdict -> outcome_label:string -> kind
(** [outcome_label] is {!Conferr.Outcome.label}: ["startup"],
    ["functional"], ["ignored"], ["n/a"], ["crashed"]. *)

val classify_deep :
  static:static_verdict -> gap_claimed:bool -> outcome_label:string -> kind
(** Claim-aware refinement used by [conferr gaps --deep]: when the
    flagging rules include one with a {!Rule.claim.Gap} claim
    ([gap_claimed]) and the SUT indeed accepted the mutant silently,
    the pair counts as [Agree_detected] — the rule {e predicted} the
    silent acceptance and the journal confirms it — instead of
    [Silent_acceptance].  All other pairs classify as {!classify}. *)
