(** Cross-file reference graph over a configuration set.

    Nodes are the files of the set; edges are file-to-file references
    mined from the trees (zone declarations, include-style directives,
    {!Rule.body.Reference}-shaped pointers).  The analyses report
    dangling targets and reference cycles — the cross-file half of
    [conferr analyze]. *)

type edge = {
  e_file : string;  (** referencing file (a member of the set) *)
  e_path : Conftree.Path.t;  (** site of the reference inside it *)
  e_what : string;  (** "zone file", "include", ... *)
  e_target : string;  (** referenced file name *)
}

type t

val build : Conftree.Config_set.t -> edge list -> t

val dangling : t -> edge list
(** Edges whose target is not a file of the set, in edge order. *)

val cycles : t -> string list list
(** File-level reference cycles.  Each cycle appears once, rotated to
    start at its lexicographically smallest member; the list is sorted —
    deterministic for any edge order. *)

val summarize : t -> string
(** ["reference graph: F file(s), E edge(s), D dangling, C cycle(s)"]. *)

val dangling_rule :
  id:string -> severity:Finding.severity -> doc:string ->
  (Conftree.Config_set.t -> edge list) -> Rule.t
(** A {!Rule.body.Check_set} rule reporting every dangling edge at its
    reference site. *)

val cycle_rule :
  id:string -> severity:Finding.severity -> doc:string ->
  (Conftree.Config_set.t -> edge list) -> Rule.t
(** A {!Rule.body.Check_set} rule reporting each cycle once, anchored at
    its first file's root. *)
