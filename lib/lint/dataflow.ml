module Node = Conftree.Node
module Config_set = Conftree.Config_set

(* --- unit-suffix parsers ------------------------------------------- *)

let split_suffix s =
  let s = String.trim s in
  let n = String.length s in
  let rec digits i =
    if
      i < n
      &&
      match s.[i] with '0' .. '9' -> true | '-' -> i = 0 | _ -> false
    then digits (i + 1)
    else i
  in
  let d = digits 0 in
  if d = 0 || (d = 1 && s.[0] = '-') then None
  else
    let num = String.sub s 0 d in
    let suffix = String.lowercase_ascii (String.trim (String.sub s d (n - d))) in
    match int_of_string_opt num with None -> None | Some v -> Some (v, suffix)

let read_count s =
  match split_suffix s with Some (v, "") -> Some v | _ -> None

let read_kb s =
  match split_suffix s with
  | None -> None
  | Some (v, suffix) -> (
    match suffix with
    | "" | "kb" | "k" -> Some v
    | "b" -> Some (v / 1024)
    | "mb" | "m" -> Some (v * 1024)
    | "gb" | "g" -> Some (v * 1024 * 1024)
    | "tb" | "t" -> Some (v * 1024 * 1024 * 1024)
    | _ -> None)

let read_ms s =
  match split_suffix s with
  | None -> None
  | Some (v, suffix) -> (
    match suffix with
    | "" | "ms" -> Some v
    | "s" | "sec" -> Some (v * 1000)
    | "min" -> Some (v * 60_000)
    | "h" -> Some (v * 3_600_000)
    | "d" -> Some (v * 86_400_000)
    | _ -> None)

let unit_labels = [ "count"; "kb"; "ms" ]

let read_of_unit = function
  | "kb" -> read_kb
  | "ms" -> read_ms
  | _ -> read_count

(* --- directive value specifications -------------------------------- *)

type vkind =
  | Vnum of {
      n_read : string -> int option;
      n_lo : int;
      n_hi : int;
      n_default : int;
      n_lenient : bool;
    }
  | Venum of string list
  | Vbool
  | Vstring

type vspec = { v_name : string; v_kind : vkind }

let num ?(lenient = false) ~read ~lo ~hi ~default name =
  {
    v_name = name;
    v_kind =
      Vnum
        { n_read = read; n_lo = lo; n_hi = hi; n_default = default;
          n_lenient = lenient };
  }

let enum name allowed = { v_name = name; v_kind = Venum allowed }
let boolean name = { v_name = name; v_kind = Vbool }
let str name = { v_name = name; v_kind = Vstring }

(* --- abstract environment ------------------------------------------ *)

type taint = T_explicit | T_masked

type binding = {
  b_name : string;
  b_file : string;
  b_path : Conftree.Path.t;
  b_written : string;
  b_abs : Absval.t;
  b_taint : taint;
  b_effective : string;
}

let true_words = [ "on"; "true"; "yes"; "1" ]
let false_words = [ "off"; "false"; "no"; "0" ]

let abstract_value kind written =
  match kind with
  | Vnum { n_read; n_lo; n_hi; n_default; n_lenient = _ } -> (
    match Option.bind written n_read with
    | Some n when n >= n_lo && n <= n_hi ->
      (Absval.point n, T_explicit, string_of_int n)
    | _ ->
      (* parse failure, out-of-range, or bare directive: the SUT runs
         with its built-in default — the written value is masked *)
      (Absval.point n_default, T_masked, string_of_int n_default))
  | Venum allowed ->
    let v = Option.value ~default:"" written in
    if
      List.exists
        (fun a -> String.lowercase_ascii a = String.lowercase_ascii v)
        allowed
    then (Absval.eset [ v ], T_explicit, v)
    else (Absval.sval v, T_explicit, v)
  | Vbool ->
    let v = Option.value ~default:"" written in
    let w = String.lowercase_ascii (String.trim v) in
    if List.mem w true_words then (Absval.bval true, T_explicit, v)
    else if List.mem w false_words then (Absval.bval false, T_explicit, v)
    else (Absval.sval v, T_explicit, v)
  | Vstring ->
    let v = Option.value ~default:"" written in
    (Absval.sval v, T_explicit, v)

let env_of_set ~specs ~canon set =
  let table = List.map (fun sp -> (canon sp.v_name, sp.v_kind)) specs in
  Config_set.fold_nodes
    (fun file path (node : Node.t) acc ->
      if node.kind = Node.kind_directive then (
        let name = canon node.name in
        match List.assoc_opt name table with
        | None -> acc
        | Some kind ->
          let abs, taint, effective = abstract_value kind node.value in
          {
            b_name = name;
            b_file = file;
            b_path = path;
            b_written = Option.value ~default:"" node.value;
            b_abs = abs;
            b_taint = taint;
            b_effective = effective;
          }
          :: acc)
      else acc)
    set []
  |> List.rev

let tainted env = List.filter (fun b -> b.b_taint = T_masked) env

let summarize env =
  Printf.sprintf "dataflow: %d directive(s) bound, %d tainted"
    (List.length env)
    (List.length (tainted env))

(* --- silent-default taint rule ------------------------------------- *)

let taint_raws ~specs ~canon set =
  let lenient =
    List.filter_map
      (fun sp ->
        match sp.v_kind with
        | Vnum { n_read; n_lo; n_hi; n_default; n_lenient = true } ->
          Some (canon sp.v_name, (n_read, n_lo, n_hi, n_default))
        | _ -> None)
      specs
  in
  Config_set.fold_nodes
    (fun file path (node : Node.t) acc ->
      if node.kind = Node.kind_directive then (
        match List.assoc_opt (canon node.name) lenient with
        | None -> acc
        | Some (n_read, n_lo, n_hi, n_default) -> (
          match node.value with
          | None -> acc
          | Some v -> (
            match n_read v with
            | Some n when n >= n_lo && n <= n_hi -> acc
            | _ ->
              {
                Rule.raw_file = file;
                raw_path = path;
                raw_message =
                  Printf.sprintf
                    "value '%s' of '%s' is silently replaced by the built-in \
                     default %d; the written value is masked"
                    v node.name n_default;
                raw_suggestion = None;
              }
              :: acc)))
      else acc)
    set []
  |> List.rev

let taint_rule ?(id = "DF-TAINT") ?(severity = Finding.Info) ~canon ~specs doc =
  Rule.make ~id ~severity ~doc (Rule.Check_set (taint_raws ~specs ~canon))
