let max_line_bytes = 8192
let max_headers = 128
let max_body_bytes = 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Readers                                                             *)
(* ------------------------------------------------------------------ *)

(* A pull reader: [pending.[off..]] is buffered unconsumed input and
   [more ()] fetches the next slab ("" = end of stream).  Socket errors
   are folded into end-of-stream: to the parser a dying peer and a
   closing peer look the same, and both yield a 4xx or a clean [`Eof]. *)
type reader = {
  more : unit -> string;
  mutable pending : string;
  mutable off : int;
}

let reader_of_string s = { more = (fun () -> ""); pending = s; off = 0 }

let reader_of_fd fd =
  let scratch = Bytes.create 8192 in
  let more () =
    match Unix.read fd scratch 0 (Bytes.length scratch) with
    | 0 -> ""
    | n -> Bytes.sub_string scratch 0 n
    | exception Unix.Unix_error _ -> ""
    | exception Sys_error _ -> ""
  in
  { more; pending = ""; off = 0 }

let refill r =
  if r.off >= String.length r.pending then begin
    r.pending <- r.more ();
    r.off <- 0
  end;
  r.off < String.length r.pending

(* One line, up to [limit] bytes, terminated by LF (a preceding CR is
   dropped).  [`Line s] | [`Eof] (nothing buffered) | [`Truncated s]
   (stream ended mid-line) | [`Overflow]. *)
let read_line ?(limit = max_line_bytes) r =
  let buf = Buffer.create 64 in
  let rec loop () =
    if Buffer.length buf > limit then `Overflow
    else if not (refill r) then
      if Buffer.length buf = 0 then `Eof else `Truncated (Buffer.contents buf)
    else
      match String.index_from_opt r.pending r.off '\n' with
      | Some i when i - r.off + Buffer.length buf <= limit ->
        Buffer.add_substring buf r.pending r.off (i - r.off);
        r.off <- i + 1;
        let line = Buffer.contents buf in
        let n = String.length line in
        `Line (if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line)
      | Some _ -> `Overflow
      | None ->
        Buffer.add_substring buf r.pending r.off (String.length r.pending - r.off);
        r.off <- String.length r.pending;
        loop ()
  in
  loop ()

let read_exact r n =
  let buf = Buffer.create n in
  let rec loop () =
    if Buffer.length buf >= n then Some (Buffer.contents buf)
    else if not (refill r) then None
    else begin
      let take = min (n - Buffer.length buf) (String.length r.pending - r.off) in
      Buffer.add_substring buf r.pending r.off take;
      r.off <- r.off + take;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type request = {
  meth : string;
  target : string;
  path : string;
  query : (string * string) list;
  version : string;
  headers : (string * string) list;
  body : string;
}

let header req name = List.assoc_opt name req.headers

let keep_alive req =
  match (req.version, Option.map String.lowercase_ascii (header req "connection")) with
  | _, Some "close" -> false
  | "HTTP/1.0", c -> c = Some "keep-alive"
  | _, _ -> true

let hex_val = function
  | '0' .. '9' as c -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' as c -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' as c -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

(* %XX and (in queries) '+' decoding; a malformed escape is kept
   verbatim rather than rejected — it can only ever mis-route to 404. *)
let percent_decode ?(plus = false) s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec loop i =
    if i < n then begin
      (match s.[i] with
       | '%' when i + 2 < n -> (
         match (hex_val s.[i + 1], hex_val s.[i + 2]) with
         | Some hi, Some lo ->
           Buffer.add_char buf (Char.chr ((hi * 16) + lo));
           loop (i + 3) |> ignore
         | _ ->
           Buffer.add_char buf '%';
           loop (i + 1) |> ignore)
       | '+' when plus ->
         Buffer.add_char buf ' ';
         loop (i + 1) |> ignore
       | c ->
         Buffer.add_char buf c;
         loop (i + 1) |> ignore)
    end
  in
  loop 0;
  Buffer.contents buf

let split_target target =
  let path, query_text =
    match String.index_opt target '?' with
    | None -> (target, "")
    | Some i ->
      ( String.sub target 0 i,
        String.sub target (i + 1) (String.length target - i - 1) )
  in
  let query =
    if query_text = "" then []
    else
      String.split_on_char '&' query_text
      |> List.filter_map (fun pair ->
             if pair = "" then None
             else
               match String.index_opt pair '=' with
               | None -> Some (percent_decode ~plus:true pair, "")
               | Some i ->
                 Some
                   ( percent_decode ~plus:true (String.sub pair 0 i),
                     percent_decode ~plus:true
                       (String.sub pair (i + 1) (String.length pair - i - 1)) ))
  in
  (percent_decode path, query)

let is_token_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9'
  | '!' | '#' | '$' | '%' | '&' | '\'' | '*' | '+' | '-' | '.' | '^' | '_'
  | '`' | '|' | '~' ->
    true
  | _ -> false

let is_token s = s <> "" && String.for_all is_token_char s

let parse_headers r =
  let rec loop acc count =
    if count > max_headers then Error (431, "too many headers")
    else
      match read_line r with
      | `Eof | `Truncated _ -> Error (400, "truncated headers")
      | `Overflow -> Error (431, "header line too long")
      | `Line "" -> Ok (List.rev acc)
      | `Line line -> (
        match String.index_opt line ':' with
        | None -> Error (400, "malformed header line")
        | Some i ->
          let name = String.sub line 0 i in
          let value =
            String.trim (String.sub line (i + 1) (String.length line - i - 1))
          in
          if not (is_token name) then Error (400, "malformed header name")
          else loop ((String.lowercase_ascii name, value) :: acc) (count + 1))
  in
  loop [] 0

let content_length headers =
  match List.filter (fun (k, _) -> k = "content-length") headers with
  | [] -> Ok 0
  | (_, v) :: rest ->
    if List.exists (fun (_, v') -> v' <> v) rest then
      Error (400, "conflicting content-length")
    else if v = "" || not (String.for_all (function '0' .. '9' -> true | _ -> false) v)
    then Error (400, "malformed content-length")
    else if String.length v > 9 then Error (413, "body too large")
    else
      let n = int_of_string v in
      if n > max_body_bytes then Error (413, "body too large") else Ok n

let parse_request r =
  (* tolerate a little CRLF padding between pipelined requests *)
  let rec request_line skips =
    match read_line r with
    | `Eof -> `Eof
    | `Truncated _ -> `Error (400, "truncated request line")
    | `Overflow -> `Error (414, "request line too long")
    | `Line "" -> if skips < 8 then request_line (skips + 1) else `Error (400, "malformed request")
    | `Line line -> `Line line
  in
  match request_line 0 with
  | `Eof -> `Eof
  | `Error _ as e -> e
  | `Line line -> (
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ meth; target; version ] ->
      if not (is_token meth) then `Error (400, "malformed method")
      else if version <> "HTTP/1.1" && version <> "HTTP/1.0" then
        `Error (505, "http version not supported")
      else if not (String.length target > 0 && (target.[0] = '/' || target = "*"))
      then `Error (400, "malformed request target")
      else (
        match parse_headers r with
        | Error (status, msg) -> `Error (status, msg)
        | Ok headers ->
          if List.mem_assoc "transfer-encoding" headers then
            `Error (501, "transfer-encoding requests not supported")
          else (
            match content_length headers with
            | Error (status, msg) -> `Error (status, msg)
            | Ok len -> (
              match if len = 0 then Some "" else read_exact r len with
              | None -> `Error (400, "truncated body")
              | Some body ->
                let path, query = split_target target in
                `Ok
                  {
                    meth = String.uppercase_ascii meth;
                    target;
                    path;
                    query;
                    version;
                    headers;
                    body;
                  })))
    | _ -> `Error (400, "malformed request line"))

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

let status_reason = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 409 -> "Conflict"
  | 413 -> "Payload Too Large"
  | 414 -> "URI Too Long"
  | 429 -> "Too Many Requests"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | 505 -> "HTTP Version Not Supported"
  | _ -> "Status"

let response ?(headers = []) ?(content_type = "text/plain; charset=utf-8") status
    body =
  {
    status;
    reason = status_reason status;
    resp_headers = ("content-type", content_type) :: headers;
    resp_body = body;
  }

let json_response ?(status = 200) json =
  response ~content_type:"application/json" status
    (Conferr_obsv.Json.to_string json ^ "\n")

let write_all fd s =
  let bytes = Bytes.unsafe_of_string s in
  let n = Bytes.length bytes in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd bytes !written (n - !written)
  done

let render_head status reason headers =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "HTTP/1.1 %d %s\r\n" status reason);
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string buf "\r\n";
  Buffer.contents buf

let write_response fd ~keep_alive resp =
  let headers =
    resp.resp_headers
    @ [
        ("content-length", string_of_int (String.length resp.resp_body));
        ("connection", if keep_alive then "keep-alive" else "close");
      ]
  in
  write_all fd (render_head resp.status resp.reason headers ^ resp.resp_body)

(* ------------------------------------------------------------------ *)
(* Connection loop                                                     *)
(* ------------------------------------------------------------------ *)

type handler =
  request ->
  [ `Response of response
  | `Stream of (string * string) list * ((string -> unit) -> unit) ]

let write_chunk fd data =
  if data <> "" then
    write_all fd (Printf.sprintf "%x\r\n" (String.length data) ^ data ^ "\r\n")

let serve_connection handler fd =
  let r = reader_of_fd fd in
  let rec loop () =
    match parse_request r with
    | `Eof -> ()
    | `Error (status, msg) ->
      (* answer the parse error, then close: after a framing error the
         byte stream can no longer be trusted for pipelining *)
      write_response fd ~keep_alive:false (response status (msg ^ "\n"))
    | `Ok req -> (
      let result =
        try handler req
        with exn ->
          `Response (response 500 (Printexc.to_string exn ^ "\n"))
      in
      match result with
      | `Response resp ->
        let keep = keep_alive req && resp.status < 500 in
        write_response fd ~keep_alive:keep resp;
        if keep then loop ()
      | `Stream (headers, produce) ->
        write_all fd
          (render_head 200 (status_reason 200)
             (headers
             @ [ ("transfer-encoding", "chunked"); ("connection", "close") ]));
        (try produce (write_chunk fd)
         with
         | Unix.Unix_error _ | Sys_error _ -> ()
         | exn -> write_chunk fd (Printexc.to_string exn ^ "\n"));
        write_all fd "0\r\n\r\n")
  in
  try loop () with Unix.Unix_error _ | Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Client-side helpers                                                 *)
(* ------------------------------------------------------------------ *)

let parse_response_head r =
  match read_line r with
  | `Eof | `Truncated _ -> Error "truncated response"
  | `Overflow -> Error "status line too long"
  | `Line line -> (
    match String.split_on_char ' ' line with
    | version :: status :: _
      when String.length version >= 5 && String.sub version 0 5 = "HTTP/" -> (
      match int_of_string_opt status with
      | None -> Error "malformed status"
      | Some status -> (
        match parse_headers r with
        | Error (_, msg) -> Error msg
        | Ok headers -> Ok (status, headers)))
    | _ -> Error "malformed status line")

let read_chunked r ~on_chunk =
  let rec chunk () =
    match read_line r with
    | `Eof | `Truncated _ -> Error "truncated chunked body"
    | `Overflow -> Error "chunk size line too long"
    | `Line line -> (
      let size_text =
        match String.index_opt line ';' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      match int_of_string_opt ("0x" ^ String.trim size_text) with
      | None -> Error "malformed chunk size"
      | Some 0 -> (
        (* swallow optional trailers up to the final blank line *)
        let rec trailers () =
          match read_line r with
          | `Line "" | `Eof -> Ok ()
          | `Line _ -> trailers ()
          | `Truncated _ | `Overflow -> Error "truncated trailers"
        in
        trailers ())
      | Some n when n < 0 || n > max_body_bytes -> Error "chunk too large"
      | Some n -> (
        match read_exact r n with
        | None -> Error "truncated chunk"
        | Some data -> (
          on_chunk data;
          match read_line r with
          | `Line "" -> chunk ()
          | _ -> Error "malformed chunk terminator")))
  in
  chunk ()

let read_body r ~headers ~on_chunk =
  let is_chunked =
    match List.assoc_opt "transfer-encoding" headers with
    | Some v -> String.lowercase_ascii (String.trim v) = "chunked"
    | None -> false
  in
  if is_chunked then read_chunked r ~on_chunk
  else
    match content_length headers with
    | Error (_, msg) -> Error msg
    | Ok 0 ->
      if List.mem_assoc "content-length" headers then Ok ()
      else begin
        (* no framing: body runs to end of stream *)
        let rec drain () =
          if refill r then begin
            on_chunk
              (String.sub r.pending r.off (String.length r.pending - r.off));
            r.off <- String.length r.pending;
            drain ()
          end
        in
        drain ();
        Ok ()
      end
    | Ok n -> (
      match read_exact r n with
      | None -> Error "truncated body"
      | Some data ->
        on_chunk data;
        Ok ())
