(** The [conferr serve] campaign service (doc/serve.md).

    One daemon owns one {!Conferr_pool.Scheduler} pool of worker
    domains; every submitted campaign becomes a scheduler tenant, so
    concurrent campaigns share the domains with round-robin fairness
    instead of oversubscribing the machine with private pools.  Each
    campaign journals to its own file under the state directory with
    the same checkpoint discipline as the one-shot CLI — the journals
    are byte-identical modulo wall-clock fields (the determinism
    contract; [conferr journal-diff] checks it).

    {!handle} is the complete HTTP surface as a plain function over
    {!Http.request}, so tests drive the daemon without sockets;
    {!listen} is the accept loop that puts it on a port. *)

type t

type campaign

val create :
  ?jobs:int ->
  ?max_campaigns:int ->
  ?segment_bytes:int ->
  ?journal_io:(string -> Conferr_harden.Diskchaos.io option) ->
  state_dir:string ->
  unit ->
  t
(** Start the pool ([jobs] worker domains, default 1) and create
    [state_dir] if needed.  [max_campaigns] (default 4) bounds the
    campaigns that may be queued or running at once — the submission
    queue whose overflow {!handle} answers with 429.

    [segment_bytes] makes every campaign journal a v3 segmented store
    ([<id>.v3] directories instead of [<id>.jsonl] files, doc/exec.md).
    [journal_io] maps a campaign id to the storage layer under its
    journal writer — the storage-chaos seam ([conferr serve
    --inject-disk-fault] and the durability tests fault exactly one
    campaign's disk with it).  A journal storage fault fails only that
    campaign: status [failed], a terminal event carrying the error, a
    [conferr_journal_faults_total] tick and the
    [conferr_serve_disk_faults] gauge — co-tenant campaigns are
    untouched (per-tenant failure isolation in the scheduler). *)

val jobs : t -> int

val registry : t -> Conferr_obsv.Metrics.t
(** The daemon's metrics registry: service counters
    ([conferr_serve_*]) plus the executor families of every campaign.
    [GET /metrics] exposes it. *)

(** {1 Campaign lifecycle} *)

type submit_error =
  | Bad_request of string  (** unknown SUT, invalid policy/seed field *)
  | Busy                   (** at [max_campaigns] — HTTP 429 *)
  | Unavailable            (** draining — HTTP 503 *)

val submit : t -> Conferr_obsv.Json.t -> (campaign, submit_error) result
(** Accept a submission object — members [sut] (required), [seed]
    (default 42) and the {!Conferr_harden.Policy} fields — generate its
    scenario list, register a tenant, and start the campaign on its own
    thread.  The campaign is visible in {!campaigns} immediately. *)

val campaigns : t -> campaign list
(** All campaigns, oldest first. *)

val find : t -> string -> campaign option

val campaign_id : campaign -> string

val status_label : campaign -> string
(** [queued] / [running] / [done] / [interrupted] / [cancelled] /
    [failed]. *)

val finished : campaign -> bool
(** The campaign reached a terminal status and its journal is
    checkpointed. *)

val cancel : t -> campaign -> int
(** Drop the campaign's queued scenarios (running ones finish) and mark
    it cancelled; returns the number dropped.  Idempotent; 0 once the
    campaign is terminal. *)

val wait : t -> campaign -> unit
(** Block until the campaign is terminal.  Test/bench helper — the HTTP
    surface streams [/events] instead. *)

val summary_json : campaign -> Conferr_obsv.Json.t
(** The list/status object: id, sut, seed, status, total, finished,
    events, policy, journal path. *)

val events_after : t -> campaign -> int -> string list * bool
(** Under the daemon lock: event JSON lines strictly after the given
    index, and whether the stream is closed (terminal event written).
    Building block of the [/events] chunked stream. *)

(** {1 HTTP surface} *)

val handle : t -> Http.handler
(** Routes: [GET /healthz], [GET /metrics], [GET /dashboard],
    [POST /campaigns], [GET /campaigns], [GET /campaigns/ID],
    [POST /campaigns/ID/cancel], [GET /campaigns/ID/events] (chunked
    JSON-lines stream), [GET /campaigns/ID/results],
    [GET /campaigns/ID/journal].  Unknown paths 404, known paths with
    the wrong method 405, full daemon 429 with [Retry-After]. *)

val drain : t -> unit
(** Graceful stop: refuse new submissions, drop every queued scenario,
    let in-flight scenarios finish, wait for every campaign thread to
    checkpoint its journal and go terminal (partial campaigns become
    [interrupted]), then join the worker domains.  Idempotent. *)

val listen :
  t -> port:int -> ?port_file:string -> ?banner:(int -> unit) -> unit -> unit
(** Bind [127.0.0.1:port] ([port = 0] picks an ephemeral port), write
    the bound port to [port_file] if given, call [banner] with it, and
    accept connections (one systhread each) until SIGTERM or SIGINT.
    On signal: stop accepting, {!drain}, return — the caller exits 0.
    SIGPIPE is ignored for the process (dead peers must not kill the
    daemon). *)
