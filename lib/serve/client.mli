(** Minimal HTTP client for the [conferr serve] daemon (doc/serve.md).

    Backs the CLI subcommands ([conferr submit]/[status]/[watch]/…) and
    the serve smoke test.  One request per connection — the daemon's
    keep-alive is for external clients; the CLI has no use for it. *)

val request :
  ?host:string -> port:int -> meth:string -> path:string -> ?body:string ->
  unit ->
  (int * (string * string) list * string, string) result
(** Send one request and read the whole response.  [body], when given,
    is sent as [application/json] with a [Content-Length].  Returns
    status, headers (names lowercased) and body; [Error] is a transport
    or framing failure (connection refused, truncated response). *)

val stream :
  ?host:string -> port:int -> path:string -> on_line:(string -> unit) ->
  unit ->
  (int, string) result
(** GET a streaming endpoint and deliver each line of the (chunked)
    body through [on_line] as it arrives.  Returns the response status
    once the stream ends. *)

val get_json :
  ?host:string -> port:int -> path:string -> unit ->
  (int * Conferr_obsv.Json.t, string) result

val post_json :
  ?host:string -> port:int -> path:string -> Conferr_obsv.Json.t -> unit ->
  (int * Conferr_obsv.Json.t, string) result
